module soundboost

go 1.22
