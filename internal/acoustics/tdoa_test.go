package acoustics

import (
	"math"
	"testing"

	"soundboost/internal/mathx"
)

// singleRotorRecording renders a recording where only one rotor spins, so
// TDoA localization has a single dominant source.
func singleRotorRecording(t *testing.T, rotor int, cfg SynthConfig) *Recording {
	t.Helper()
	var speed [NumRotors]float64
	speed[rotor] = cfg.HoverSpeed * 1.1
	frames := []RotorFrame{
		{Time: 0, Speed: speed},
		{Time: 1.0, Speed: speed},
	}
	rec, err := RenderFlight(frames, cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestMeasureTDoAAntisymmetric(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.AmbientStd = 0.001
	rec := singleRotorRecording(t, 0, cfg)
	res, err := MeasureTDoA(rec, 1000, 8192, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumMics; i++ {
		if res.Delay[i][i] != 0 {
			t.Errorf("self-delay [%d][%d] = %v", i, i, res.Delay[i][i])
		}
		for j := 0; j < NumMics; j++ {
			if math.Abs(res.Delay[i][j]+res.Delay[j][i]) > 1e-12 {
				t.Errorf("delay not antisymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasureTDoABounds(t *testing.T) {
	cfg := DefaultSynthConfig()
	rec := singleRotorRecording(t, 0, cfg)
	if _, err := MeasureTDoA(rec, -1, 100, 0.01); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := MeasureTDoA(rec, 0, rec.Samples()+1, 0.01); err == nil {
		t.Error("overlong segment accepted")
	}
	if _, err := MeasureTDoA(nil, 0, 10, 0.01); err == nil {
		t.Error("nil recording accepted")
	}
}

// The §II-D claim: with an off-centre array, each rotor can be identified
// from its TDoA signature.
func TestLocalizeIdentifiesRotors(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.AmbientStd = 0.001
	cfg.WindNoiseCoeff = 0
	arr := DefaultArrayConfig(0.25)
	for rotor := 0; rotor < NumRotors; rotor++ {
		rec := singleRotorRecording(t, rotor, cfg)
		res, err := MeasureTDoA(rec, 2000, 8192, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		pos, err := LocalizeSource(arr, res, 0.4, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		got, dist := IdentifyRotor(arr, pos)
		if got != rotor {
			t.Errorf("rotor %d localized to %v -> identified as rotor %d (%.2f m off)", rotor, pos, got, dist)
		}
	}
}

func TestLocalizeSourceValidation(t *testing.T) {
	if _, err := LocalizeSource(DefaultArrayConfig(0.25), TDoAResult{}, 0, 0.01); err == nil {
		t.Error("zero half-span accepted")
	}
	if _, err := LocalizeSource(DefaultArrayConfig(0.25), TDoAResult{}, 0.4, 0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestIdentifyRotorNearest(t *testing.T) {
	arr := DefaultArrayConfig(0.25)
	for r := 0; r < NumRotors; r++ {
		// A point slightly displaced from rotor r must map back to r.
		p := arr.RotorPositions[r].Add(mathx.Vec3{X: 0.02, Y: -0.01})
		got, dist := IdentifyRotor(arr, p)
		if got != r {
			t.Errorf("point near rotor %d identified as %d", r, got)
		}
		if dist > 0.05 {
			t.Errorf("distance %v too large", dist)
		}
	}
}
