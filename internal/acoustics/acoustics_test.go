package acoustics

import (
	"math"
	"testing"

	"soundboost/internal/dsp"
)

func hoverFrames(speed float64, seconds float64) []RotorFrame {
	frames := make([]RotorFrame, 0, int(seconds*100)+1)
	for t := 0.0; t <= seconds; t += 0.01 {
		frames = append(frames, RotorFrame{
			Time:  t,
			Speed: [NumRotors]float64{speed, speed, speed, speed},
		})
	}
	return frames
}

func TestSynthConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SynthConfig)
		wantOK bool
	}{
		{"default", func(c *SynthConfig) {}, true},
		{"zero rate", func(c *SynthConfig) { c.SampleRate = 0 }, false},
		{"aero above nyquist", func(c *SynthConfig) { c.AeroFreq = 9000 }, false},
		{"zero blades", func(c *SynthConfig) { c.Blades = 0 }, false},
		{"zero hover speed", func(c *SynthConfig) { c.HoverSpeed = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultSynthConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

// The headline property behind Fig. 2a: the synthesised spectrum
// concentrates energy in the three paper frequency groups.
func TestSpectrumHasThreeGroups(t *testing.T) {
	cfg := DefaultSynthConfig()
	rec, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 2), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dsp.STFT(rec.Channels[0], cfg.SampleRate, dsp.STFTConfig{WindowSize: 4096, HopSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	mean := spec.MeanSpectrum()
	bandMean := func(lo, hi float64) float64 {
		a := dsp.FrequencyBin(lo, spec.NFFT, cfg.SampleRate)
		b := dsp.FrequencyBin(hi, spec.NFFT, cfg.SampleRate)
		s := 0.0
		for k := a; k <= b && k < len(mean); k++ {
			s += mean[k]
		}
		return s / float64(b-a+1)
	}
	blade := bandMean(150, 450)
	mech := bandMean(1900, 2900)
	aero := bandMean(4800, 6200)
	gapLow := bandMean(800, 1500)
	gapHigh := bandMean(6800, 7600)
	for name, pair := range map[string][2]float64{
		"blade vs 0.8-1.5k gap": {blade, gapLow},
		"mech vs 0.8-1.5k gap":  {mech, gapLow},
		"aero vs 6.8-7.6k gap":  {aero, gapHigh},
	} {
		if pair[0] < 3*pair[1] {
			t.Errorf("%s: group %g not dominant over gap %g", name, pair[0], pair[1])
		}
	}
}

// Fig. 2b-d property: aerodynamic band amplitude rises with rotor speed.
func TestAeroBandTracksRotorSpeed(t *testing.T) {
	cfg := DefaultSynthConfig()
	arr := DefaultArrayConfig(0.25)
	bandAmp := func(speed float64) float64 {
		rec, err := RenderFlight(hoverFrames(speed, 1), cfg, arr)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := dsp.STFT(rec.Channels[0], cfg.SampleRate, dsp.STFTConfig{WindowSize: 2048, HopSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		energies := spec.BandEnergies([]dsp.Band{{Low: 4800, High: 6200}})
		var sum float64
		for _, row := range energies {
			sum += row[0]
		}
		return sum / float64(len(energies))
	}
	slow := bandAmp(cfg.HoverSpeed * 0.8)
	hover := bandAmp(cfg.HoverSpeed)
	fast := bandAmp(cfg.HoverSpeed * 1.2)
	if !(slow < hover && hover < fast) {
		t.Errorf("aero band amplitude not monotone in rotor speed: %g, %g, %g", slow, hover, fast)
	}
	// Cubic scaling: 1.2x speed ~ 1.7x amplitude at least.
	if fast < hover*1.4 {
		t.Errorf("aero band amplitude %g at 1.2x speed vs %g at hover: scaling too weak", fast, hover)
	}
}

func TestBladePassingFrequencyMatchesSpeed(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.AmbientStd = 0
	cfg.AeroAmp = 0 // isolate the tonal component
	cfg.MechAmp = 0
	rec, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 2), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := dsp.STFT(rec.Channels[0], cfg.SampleRate, dsp.STFTConfig{WindowSize: 8192, HopSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := spec.PeakBin(1, 100, 1000)
	got := dsp.BinFrequency(bin, spec.NFFT, cfg.SampleRate)
	want := float64(cfg.Blades) * cfg.HoverSpeed / (2 * math.Pi)
	if math.Abs(got-want) > 15 {
		t.Errorf("blade-passing peak at %g Hz, want ~%g", got, want)
	}
}

func TestMicArrayOffCenterGains(t *testing.T) {
	cfg := DefaultSynthConfig()
	arr, err := NewMicArray(DefaultArrayConfig(0.25), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := arr.Gains()
	// The array sits front-right, so every mic must hear the front-right
	// rotor (0) louder than the rear-left rotor (1).
	for m := 0; m < NumMics; m++ {
		if g[m][0] <= g[m][1] {
			t.Errorf("mic %d: front-right gain %g <= rear-left gain %g", m, g[m][0], g[m][1])
		}
	}
	// Distinct rotors must give distinct gain signatures on at least one mic.
	for r1 := 0; r1 < NumRotors; r1++ {
		for r2 := r1 + 1; r2 < NumRotors; r2++ {
			distinct := false
			for m := 0; m < NumMics; m++ {
				if math.Abs(g[m][r1]-g[m][r2]) > 1e-6 {
					distinct = true
				}
			}
			if !distinct {
				t.Errorf("rotors %d and %d have identical gain signatures", r1, r2)
			}
		}
	}
}

func TestArrayConfigValidate(t *testing.T) {
	cfg := DefaultArrayConfig(0.25)
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := cfg
	bad.RefDistance = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ref distance accepted")
	}
	bad = cfg
	bad.MicPositions[0] = bad.RotorPositions[0]
	if err := bad.Validate(); err == nil {
		t.Error("mic on rotor accepted")
	}
}

func TestRecordingCloneIndependent(t *testing.T) {
	cfg := DefaultSynthConfig()
	rec, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 0.2), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	clone := rec.Clone()
	clone.Channels[0][0] += 100
	if rec.Channels[0][0] == clone.Channels[0][0] {
		t.Error("Clone shares storage")
	}
	if clone.Duration() != rec.Duration() {
		t.Error("Clone changed duration")
	}
}

func TestExternalSourceInterferenceWeakAtDistance(t *testing.T) {
	cfg := DefaultSynthConfig()
	frames := hoverFrames(cfg.HoverSpeed, 1)
	clean, err := RenderFlight(frames, cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := SecondUAVSignal(cfg, cfg.HoverSpeed, clean.Samples(), 99)
	if err != nil {
		t.Fatal(err)
	}
	noisy := clean.Clone()
	ExternalSourceInterference{Signal: sig, Distance: 2.0, RefDistance: 0.25, IntensityLossFactor: 0.46}.Apply(noisy)
	// Interference from 2 m away adds little energy relative to own rotors
	// ~0.2 m away: RMS must change by well under 10%.
	r0 := dsp.RMS(clean.Channels[0])
	r1 := dsp.RMS(noisy.Channels[0])
	if math.Abs(r1-r0)/r0 > 0.10 {
		t.Errorf("distant interference changed RMS by %.1f%%", 100*math.Abs(r1-r0)/r0)
	}
}

func TestExternalSourceInterferenceNoop(t *testing.T) {
	cfg := DefaultSynthConfig()
	rec, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 0.2), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	before := rec.Channels[0][100]
	ExternalSourceInterference{Signal: nil, Distance: 1}.Apply(rec)
	ExternalSourceInterference{Signal: []float64{1, 2}, Distance: 0}.Apply(rec)
	if rec.Channels[0][100] != before {
		t.Error("no-op interference mutated the recording")
	}
}

func TestPhaseSyncedBandAttackScalesAeroBand(t *testing.T) {
	cfg := DefaultSynthConfig()
	frames := hoverFrames(cfg.HoverSpeed, 1)
	clean, err := RenderFlight(frames, cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	bandEnergy := func(rec *Recording, ch int) float64 {
		spec, err := dsp.STFT(rec.Channels[ch], cfg.SampleRate, dsp.STFTConfig{WindowSize: 2048, HopSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		energies := spec.BandEnergies([]dsp.Band{{Low: 5000, High: 6000}})
		var sum float64
		for _, row := range energies {
			sum += row[0]
		}
		return sum
	}
	tests := []struct {
		name      string
		amplitude float64
		check     func(clean, attacked float64) bool
	}{
		{"cancel", 0.0, func(c, a float64) bool { return a < 0.4*c }},
		{"half", 0.5, func(c, a float64) bool { return a > 0.3*c && a < 0.8*c }},
		{"amplify", 2.0, func(c, a float64) bool { return a > 1.5*c }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			attacked := clean.Clone()
			PhaseSyncedBandAttack{Channels: []int{0}, Amplitude: tt.amplitude}.Apply(attacked)
			c := bandEnergy(clean, 0)
			a := bandEnergy(attacked, 0)
			if !tt.check(c, a) {
				t.Errorf("amplitude %g: clean %g, attacked %g", tt.amplitude, c, a)
			}
			// Untouched channel stays identical.
			for i := range clean.Channels[1] {
				if clean.Channels[1][i] != attacked.Channels[1][i] {
					t.Fatal("untouched channel modified")
				}
			}
		})
	}
}

func TestPhaseSyncedBandAttackLeavesOtherBands(t *testing.T) {
	cfg := DefaultSynthConfig()
	clean, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 1), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	attacked := clean.Clone()
	PhaseSyncedBandAttack{Channels: []int{0}, Amplitude: 0}.Apply(attacked)
	specC, err := dsp.STFT(clean.Channels[0], cfg.SampleRate, dsp.STFTConfig{WindowSize: 2048, HopSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	specA, err := dsp.STFT(attacked.Channels[0], cfg.SampleRate, dsp.STFTConfig{WindowSize: 2048, HopSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	band := []dsp.Band{{Low: 150, High: 450}}
	ec := specC.BandEnergies(band)
	ea := specA.BandEnergies(band)
	var sumC, sumA float64
	for i := range ec {
		sumC += ec[i][0]
		sumA += ea[i][0]
	}
	if math.Abs(sumA-sumC)/sumC > 0.15 {
		t.Errorf("blade band changed by %.1f%% under aero-band attack", 100*math.Abs(sumA-sumC)/sumC)
	}
}

func TestAmbientNoiseBurst(t *testing.T) {
	cfg := DefaultSynthConfig()
	rec, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 0.5), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	before := rec.Clone()
	AmbientNoiseBurst{StartSample: 100, Samples: 200, Std: 1, Seed: 3}.Apply(rec)
	changed := false
	for i := 100; i < 300; i++ {
		if rec.Channels[0][i] != before.Channels[0][i] {
			changed = true
		}
	}
	if !changed {
		t.Error("burst did not modify samples")
	}
	if rec.Channels[0][50] != before.Channels[0][50] {
		t.Error("burst modified samples outside its range")
	}
}

func TestSourceSignalsEmpty(t *testing.T) {
	synth, err := NewSynthesizer(DefaultSynthConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := synth.SourceSignals(nil); got != nil {
		t.Errorf("SourceSignals(nil) = %v, want nil", got)
	}
}

func TestRecordingDuration(t *testing.T) {
	cfg := DefaultSynthConfig()
	rec, err := RenderFlight(hoverFrames(cfg.HoverSpeed, 1), cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.Duration()-1) > 0.02 {
		t.Errorf("Duration = %v, want ~1", rec.Duration())
	}
	empty := &Recording{}
	if empty.Duration() != 0 {
		t.Errorf("empty Duration = %v, want 0", empty.Duration())
	}
}

func TestRenderFlightDeterministic(t *testing.T) {
	cfg := DefaultSynthConfig()
	frames := hoverFrames(cfg.HoverSpeed, 0.3)
	a, err := RenderFlight(frames, cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderFlight(frames, cfg, DefaultArrayConfig(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Channels[0] {
		if a.Channels[0][i] != b.Channels[0][i] {
			t.Fatalf("sample %d differs between identical renders", i)
		}
	}
}
