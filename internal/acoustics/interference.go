package acoustics

import (
	"math"
	"math/rand"

	"soundboost/internal/dsp"
)

// ExternalSourceInterference mixes the sound of an external source (second
// UAV or speaker) into every channel with distance attenuation. Because the
// source is not phase-synchronised with the target UAV's rotors, its energy
// adds incoherently — the paper's real-world experiments (§IV-D) find this
// has no measurable effect on predictions.
type ExternalSourceInterference struct {
	// Signal is the interfering waveform at the source, sampled at the
	// recording's rate.
	Signal []float64
	// Distance from the array centre (m).
	Distance float64
	// RefDistance normalises the gain (same convention as ArrayConfig).
	RefDistance float64
	// IntensityLossFactor models additional diffusion loss observed in the
	// paper (sound at 0.5 m arrives at ~46% of source intensity). 1 = none.
	IntensityLossFactor float64
}

// Apply implements Interference.
func (e ExternalSourceInterference) Apply(rec *Recording) {
	if e.Distance <= 0 || len(e.Signal) == 0 {
		return
	}
	ref := e.RefDistance
	if ref <= 0 {
		ref = 0.25
	}
	loss := e.IntensityLossFactor
	if loss <= 0 {
		loss = 1
	}
	gain := ref / e.Distance * loss
	delay := int(math.Round(e.Distance / SpeedOfSound * rec.SampleRate))
	n := rec.Samples()
	for m := range rec.Channels {
		ch := rec.Channels[m]
		for i := 0; i < n; i++ {
			j := i - delay
			if j >= 0 && j < len(e.Signal) {
				ch[i] += gain * e.Signal[j]
			}
		}
	}
}

// SecondUAVSignal synthesises the sound of an interfering UAV of the same
// model hovering nearby, for the real-world interference experiment.
func SecondUAVSignal(cfg SynthConfig, hoverSpeed float64, samples int, seed int64) ([]float64, error) {
	cfg.Seed = seed
	synth, err := NewSynthesizer(cfg)
	if err != nil {
		return nil, err
	}
	frames := []RotorFrame{
		{Time: 0, Speed: [NumRotors]float64{hoverSpeed, hoverSpeed, hoverSpeed, hoverSpeed}},
		{Time: float64(samples) / cfg.SampleRate, Speed: [NumRotors]float64{hoverSpeed, hoverSpeed, hoverSpeed, hoverSpeed}},
	}
	src := synth.SourceSignals(frames)
	out := make([]float64, len(src))
	for i, s := range src {
		out[i] = (s[0] + s[1] + s[2] + s[3]) / 4
	}
	return out, nil
}

// ReplaySignal models a record-and-replay speaker attack: a previously
// recorded single-channel UAV sound played at a volume cap. The paper caps
// attacker hardware at ~100 dB portable speakers.
type ReplaySignal struct {
	// Recording is the replayed waveform.
	Recording []float64
	// VolumeGain scales the replay relative to the original recording.
	VolumeGain float64
}

// Signal returns the replayed waveform after gain.
func (r ReplaySignal) Signal() []float64 {
	out := make([]float64, len(r.Recording))
	for i, v := range r.Recording {
		out[i] = v * r.VolumeGain
	}
	return out
}

// PhaseSyncedBandAttack is the idealised adversary of Tab. III: an attacker
// with perfect phase synchronisation that multiplies the aerodynamic
// frequency band on selected channels by an amplitude factor
// (0 = full cancellation, 2 = 200% amplification). Real attackers cannot
// achieve this (§IV-D), but it bounds the worst case.
type PhaseSyncedBandAttack struct {
	// Channels lists the attacked microphone indices (0-based).
	Channels []int
	// Amplitude is the target band amplitude as a fraction of the original
	// (1 = untouched).
	Amplitude float64
	// BandCenter and BandQ select the attacked band; zero values default to
	// the aerodynamic group (5.5 kHz, Q 2).
	BandCenter float64
	BandQ      float64
}

// Apply implements Interference: it extracts the band content with a
// band-pass filter and adds (Amplitude-1) times it back, exactly scaling
// the band while leaving the rest of the spectrum untouched.
func (p PhaseSyncedBandAttack) Apply(rec *Recording) {
	center := p.BandCenter
	if center == 0 {
		center = 5500
	}
	q := p.BandQ
	if q == 0 {
		q = 2
	}
	for _, m := range p.Channels {
		if m < 0 || m >= NumMics {
			continue
		}
		// Forward-backward filtering for (near) zero-phase band extraction,
		// so the injected anti-signal stays phase-aligned.
		f1, err := dsp.NewBandPass(center, q, rec.SampleRate)
		if err != nil {
			return
		}
		fwd := f1.ProcessAll(rec.Channels[m])
		reverse(fwd)
		f1.Reset()
		band := f1.ProcessAll(fwd)
		reverse(band)
		scale := p.Amplitude - 1
		ch := rec.Channels[m]
		for i := range ch {
			ch[i] += scale * band[i]
		}
	}
}

func reverse(x []float64) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// AmbientNoiseBurst adds wideband noise bursts (e.g. passing vehicles) for
// robustness testing of the signature pipeline.
type AmbientNoiseBurst struct {
	// StartSample and Samples bound the burst.
	StartSample int
	Samples     int
	// Std is the burst noise amplitude.
	Std float64
	// Seed drives the noise.
	Seed int64
}

// Apply implements Interference.
func (a AmbientNoiseBurst) Apply(rec *Recording) {
	rng := rand.New(rand.NewSource(a.Seed))
	end := a.StartSample + a.Samples
	for m := range rec.Channels {
		ch := rec.Channels[m]
		for i := a.StartSample; i < end && i < len(ch); i++ {
			if i >= 0 {
				ch[i] += rng.NormFloat64() * a.Std
			}
		}
	}
}

// Verify interface compliance.
var (
	_ Interference = ExternalSourceInterference{}
	_ Interference = PhaseSyncedBandAttack{}
	_ Interference = AmbientNoiseBurst{}
)
