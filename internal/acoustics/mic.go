package acoustics

import (
	"fmt"
	"math"
	"math/rand"

	"soundboost/internal/mathx"
)

// NumMics is the channel count of the ReSpeaker-class array.
const NumMics = 4

// ArrayConfig describes the microphone array geometry in the body frame.
type ArrayConfig struct {
	// MicPositions are the microphone locations (m, body frame).
	MicPositions [NumMics]mathx.Vec3
	// RotorPositions are the rotor hub locations (m, body frame).
	RotorPositions [NumRotors]mathx.Vec3
	// RefDistance normalises the 1/r gain so a source at RefDistance has
	// unit gain.
	RefDistance float64
}

// DefaultArrayConfig places a 4-mic square array off-centre on the frame
// (paper §II-D: off-centre placement makes per-rotor distances distinct, so
// each rotor maps to a distinct channel-gain signature).
func DefaultArrayConfig(armLength float64) ArrayConfig {
	d := armLength / math.Sqrt2
	// Array centred 8 cm forward, 5 cm right of the hub, 3 cm mic spacing.
	cx, cy := 0.08, 0.05
	const s = 0.03
	return ArrayConfig{
		MicPositions: [NumMics]mathx.Vec3{
			{X: cx + s, Y: cy + s, Z: -0.02},
			{X: cx + s, Y: cy - s, Z: -0.02},
			{X: cx - s, Y: cy + s, Z: -0.02},
			{X: cx - s, Y: cy - s, Z: -0.02},
		},
		RotorPositions: [NumRotors]mathx.Vec3{
			{X: d, Y: d},
			{X: -d, Y: -d},
			{X: d, Y: -d},
			{X: -d, Y: d},
		},
		RefDistance: 0.25,
	}
}

// Validate reports geometry errors.
func (c ArrayConfig) Validate() error {
	if c.RefDistance <= 0 {
		return fmt.Errorf("acoustics: reference distance %g must be positive", c.RefDistance)
	}
	for m := range c.MicPositions {
		for r := range c.RotorPositions {
			if c.MicPositions[m].Dist(c.RotorPositions[r]) < 1e-3 {
				return fmt.Errorf("acoustics: mic %d coincides with rotor %d", m, r)
			}
		}
	}
	return nil
}

// Recording is multi-channel audio with its sample rate.
type Recording struct {
	// Channels[m][i] is sample i of microphone m.
	Channels [NumMics][]float64
	// SampleRate in Hz.
	SampleRate float64
}

// Samples returns the per-channel sample count (0 when empty).
func (r *Recording) Samples() int { return len(r.Channels[0]) }

// Duration returns the recording length in seconds.
func (r *Recording) Duration() float64 {
	if r.SampleRate == 0 {
		return 0
	}
	return float64(r.Samples()) / r.SampleRate
}

// Clone deep-copies the recording; interference experiments mutate copies.
func (r *Recording) Clone() *Recording {
	out := &Recording{SampleRate: r.SampleRate}
	for m := range r.Channels {
		out.Channels[m] = append([]float64(nil), r.Channels[m]...)
	}
	return out
}

// Interference injects additional sound into the microphone channels.
// Implementations model second-UAV noise, record-and-replay speakers, or
// the idealised phase-synchronised attacker of Tab. III.
type Interference interface {
	// Apply mutates the recording in place.
	Apply(rec *Recording)
}

// MicArray mixes rotor source signals down to microphone channels with
// per-path geometric attenuation and propagation delay, then adds ambient
// and wind noise.
type MicArray struct {
	cfg   ArrayConfig
	synth SynthConfig
	rng   *rand.Rand

	gain [NumMics][NumRotors]float64
	// delayInt + delayFrac represent the propagation delay in samples;
	// the fractional part is rendered by linear interpolation so the
	// array's TDoA structure survives at small apertures.
	delayInt  [NumMics][NumRotors]int
	delayFrac [NumMics][NumRotors]float64
}

// NewMicArray precomputes the mixing matrix from geometry.
func NewMicArray(cfg ArrayConfig, synth SynthConfig) (*MicArray, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := synth.Validate(); err != nil {
		return nil, err
	}
	a := &MicArray{cfg: cfg, synth: synth, rng: rand.New(rand.NewSource(synth.Seed + 7919))}
	for m := 0; m < NumMics; m++ {
		for r := 0; r < NumRotors; r++ {
			d := cfg.MicPositions[m].Dist(cfg.RotorPositions[r])
			a.gain[m][r] = cfg.RefDistance / d
			delay := d / SpeedOfSound * synth.SampleRate
			a.delayInt[m][r] = int(math.Floor(delay))
			a.delayFrac[m][r] = delay - math.Floor(delay)
		}
	}
	return a, nil
}

// Gains exposes the mixing gains (tests verify off-centre asymmetry).
func (a *MicArray) Gains() [NumMics][NumRotors]float64 { return a.gain }

// Record mixes per-rotor source signals (from Synthesizer.SourceSignals)
// into a multi-channel recording. windSpeed supplies the low-frequency
// rumble level per sample block; pass nil for still air.
func (a *MicArray) Record(sources [][NumRotors]float64, windSpeed []float64) *Recording {
	n := len(sources)
	rec := &Recording{SampleRate: a.synth.SampleRate}
	for m := range rec.Channels {
		rec.Channels[m] = make([]float64, n)
	}
	// Wind rumble: a slow random walk low-passed heavily, shared by all
	// mics (the gust field is large relative to the array).
	rumble := 0.0
	for i := 0; i < n; i++ {
		ws := 0.0
		if windSpeed != nil {
			idx := i * len(windSpeed) / n
			if idx >= len(windSpeed) {
				idx = len(windSpeed) - 1
			}
			ws = windSpeed[idx]
		}
		rumble = 0.999*rumble + 0.001*a.rng.NormFloat64()*a.synth.WindNoiseCoeff*ws*50
		for m := 0; m < NumMics; m++ {
			var s float64
			for r := 0; r < NumRotors; r++ {
				j := i - a.delayInt[m][r]
				if j >= 1 {
					frac := a.delayFrac[m][r]
					s += a.gain[m][r] * ((1-frac)*sources[j][r] + frac*sources[j-1][r])
				}
			}
			s += a.rng.NormFloat64() * a.synth.AmbientStd
			s += rumble
			rec.Channels[m][i] = s
		}
	}
	return rec
}

// RenderFlight is the one-call path from rotor frames to a recording,
// applying any interference stages in order.
func RenderFlight(frames []RotorFrame, synthCfg SynthConfig, arrayCfg ArrayConfig, interference ...Interference) (*Recording, error) {
	synth, err := NewSynthesizer(synthCfg)
	if err != nil {
		return nil, err
	}
	array, err := NewMicArray(arrayCfg, synthCfg)
	if err != nil {
		return nil, err
	}
	sources := synth.SourceSignals(frames)
	wind := make([]float64, len(frames))
	for i, f := range frames {
		wind[i] = f.WindSpeed
	}
	rec := array.Record(sources, wind)
	for _, itf := range interference {
		itf.Apply(rec)
	}
	return rec, nil
}
