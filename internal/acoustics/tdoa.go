package acoustics

import (
	"fmt"
	"math"

	"soundboost/internal/dsp"
	"soundboost/internal/mathx"
)

// TDoAResult holds the pairwise time differences of arrival measured
// between microphone channels for one analysis segment.
type TDoAResult struct {
	// Delay[i][j] is the arrival delay of channel j relative to channel i
	// in seconds (antisymmetric up to estimation noise).
	Delay [NumMics][NumMics]float64
}

// MeasureTDoA estimates pairwise TDoAs over the recording segment
// [startSample, startSample+samples) using GCC-PHAT. maxSeconds bounds the
// physically-possible delay (array aperture / speed of sound).
func MeasureTDoA(rec *Recording, startSample, samples int, maxSeconds float64) (TDoAResult, error) {
	var out TDoAResult
	if rec == nil || rec.Samples() == 0 {
		return out, fmt.Errorf("acoustics: empty recording")
	}
	if startSample < 0 || samples <= 0 || startSample+samples > rec.Samples() {
		return out, fmt.Errorf("acoustics: TDoA segment [%d, %d) outside recording of %d samples",
			startSample, startSample+samples, rec.Samples())
	}
	for i := 0; i < NumMics; i++ {
		for j := i + 1; j < NumMics; j++ {
			a := rec.Channels[i][startSample : startSample+samples]
			b := rec.Channels[j][startSample : startSample+samples]
			d, err := dsp.EstimateTDoA(a, b, rec.SampleRate, maxSeconds)
			if err != nil {
				return out, err
			}
			out.Delay[i][j] = d
			out.Delay[j][i] = -d
		}
	}
	return out, nil
}

// LocalizeSource estimates the position of a dominant sound source in the
// array's (body) frame from pairwise TDoAs by grid search over candidate
// positions: the paper's §II-D propeller localization. The search plane is
// z = 0 (rotor plane); halfSpan bounds the search square and step sets its
// resolution.
func LocalizeSource(cfg ArrayConfig, tdoa TDoAResult, halfSpan, step float64) (mathx.Vec3, error) {
	if halfSpan <= 0 || step <= 0 {
		return mathx.Vec3{}, fmt.Errorf("acoustics: invalid search grid (halfSpan %g, step %g)", halfSpan, step)
	}
	best := mathx.Vec3{}
	bestCost := math.Inf(1)
	for x := -halfSpan; x <= halfSpan; x += step {
		for y := -halfSpan; y <= halfSpan; y += step {
			p := mathx.Vec3{X: x, Y: y}
			cost := 0.0
			for i := 0; i < NumMics; i++ {
				for j := i + 1; j < NumMics; j++ {
					di := p.Dist(cfg.MicPositions[i])
					dj := p.Dist(cfg.MicPositions[j])
					predicted := (dj - di) / SpeedOfSound
					e := predicted - tdoa.Delay[i][j]
					cost += e * e
				}
			}
			if cost < bestCost {
				bestCost = cost
				best = p
			}
		}
	}
	return best, nil
}

// IdentifyRotor maps a localized source position to the nearest configured
// rotor index and the distance to it.
func IdentifyRotor(cfg ArrayConfig, source mathx.Vec3) (rotor int, dist float64) {
	dist = math.Inf(1)
	for r := 0; r < NumRotors; r++ {
		if d := source.Dist(cfg.RotorPositions[r]); d < dist {
			dist = d
			rotor = r
		}
	}
	return rotor, dist
}
