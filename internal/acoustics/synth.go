// Package acoustics synthesises the UAV's acoustic emissions and the
// onboard microphone array that records them.
//
// The physical model follows §II-D of the paper. Each rotor emits three
// noise families whose strength rides on rotor speed:
//
//   - blade-passing noise: tonal, at blades*rev-rate (~200 Hz group at
//     hover) plus harmonics, amplitude ∝ thrust;
//   - mechanical/ESC noise: tonal, mid-frequency (~2.5 kHz group), pitch
//     and amplitude track motor speed;
//   - aerodynamic noise: broadband (~5.5 kHz group), amplitude rises
//     steeply (cubically) with rotor speed — the paper's counterfactual
//     analysis finds this band carries most of the acceleration signal.
//
// A 4-microphone array placed off-centre on the frame receives each rotor
// with geometric (1/r) attenuation and propagation delay, so channel
// amplitude differences encode which rotor is working hardest — the basis
// for inferring 3-axis acceleration from sound.
package acoustics

import (
	"fmt"
	"math"
	"math/rand"

	"soundboost/internal/dsp"
)

// SpeedOfSound in air at 20°C (m/s).
const SpeedOfSound = 343.0

// NumRotors matches the quad airframe.
const NumRotors = 4

// RotorFrame is one control-rate snapshot of the rotor state feeding the
// synthesiser. It is deliberately independent of the sim package: the
// acoustic channel reads *physical* rotor speeds only, never sensor values,
// which is what makes it spoof-resistant.
type RotorFrame struct {
	// Time is the snapshot timestamp (s).
	Time float64
	// Speed holds rotor angular velocities (rad/s).
	Speed [NumRotors]float64
	// WindSpeed is the airspeed magnitude (m/s) used for wind noise.
	WindSpeed float64
}

// SynthConfig parameterises the source model.
type SynthConfig struct {
	// SampleRate of the produced audio (Hz). The paper's pipeline keeps
	// everything below 6 kHz, so 16 kHz sampling is comfortable.
	SampleRate float64
	// Blades is the propeller blade count.
	Blades int
	// HoverSpeed is the rotor speed (rad/s) that normalises amplitudes.
	HoverSpeed float64
	// MechFreq is the mechanical-noise carrier at hover (Hz).
	MechFreq float64
	// AeroFreq is the aerodynamic band centre (Hz).
	AeroFreq float64
	// AeroBandwidth is the aerodynamic band half-width factor (Q inverse).
	AeroQ float64
	// BladeAmp, MechAmp, AeroAmp scale the three families at hover.
	BladeAmp float64
	MechAmp  float64
	AeroAmp  float64
	// AmbientStd is the white ambient-noise floor standard deviation.
	AmbientStd float64
	// WindNoiseCoeff scales low-frequency wind rumble per m/s of airspeed.
	WindNoiseCoeff float64
	// Seed drives the stochastic noise components.
	Seed int64
}

// DefaultSynthConfig matches the paper's observed spectrum: blade-passing
// ~210 Hz at hover, mechanical group near 2.5 kHz, aerodynamic group near
// 5.5 kHz, with the aerodynamic band dominant.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		SampleRate:     16000,
		Blades:         2,
		HoverSpeed:     660,
		MechFreq:       2500,
		AeroFreq:       5500,
		AeroQ:          4,
		BladeAmp:       0.5,
		MechAmp:        0.35,
		AeroAmp:        1.0,
		AmbientStd:     0.02,
		WindNoiseCoeff: 0.01,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c SynthConfig) Validate() error {
	switch {
	case c.SampleRate <= 0:
		return fmt.Errorf("acoustics: sample rate %g must be positive", c.SampleRate)
	case c.AeroFreq >= c.SampleRate/2:
		return fmt.Errorf("acoustics: aero band %g Hz above Nyquist %g", c.AeroFreq, c.SampleRate/2)
	case c.Blades < 1:
		return fmt.Errorf("acoustics: blade count %d must be >= 1", c.Blades)
	case c.HoverSpeed <= 0:
		return fmt.Errorf("acoustics: hover speed %g must be positive", c.HoverSpeed)
	default:
		return nil
	}
}

// rotorVoice holds the per-rotor oscillator and noise state.
type rotorVoice struct {
	bladePhase float64
	mechPhase  float64
	// Aerodynamic broadband noise: white noise shaped by a cascaded
	// band-pass, giving the sharp-skirted "5.5 kHz group" of Fig. 2a.
	aeroFilter dsp.FilterChain
}

// Synthesizer turns rotor-state frames into per-rotor source signals.
type Synthesizer struct {
	cfg    SynthConfig
	rng    *rand.Rand
	voices [NumRotors]rotorVoice
}

// NewSynthesizer builds a source synthesiser.
func NewSynthesizer(cfg SynthConfig) (*Synthesizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Synthesizer{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := range s.voices {
		var chain dsp.FilterChain
		for stage := 0; stage < 2; stage++ {
			bp, err := dsp.NewBandPass(cfg.AeroFreq, cfg.AeroQ, cfg.SampleRate)
			if err != nil {
				return nil, err
			}
			chain = append(chain, bp)
		}
		s.voices[i].aeroFilter = chain
	}
	return s, nil
}

// step produces one source sample per rotor for rotor speeds w.
func (s *Synthesizer) step(w [NumRotors]float64, windSpeed float64) [NumRotors]float64 {
	c := s.cfg
	dt := 1 / c.SampleRate
	var out [NumRotors]float64
	for i := 0; i < NumRotors; i++ {
		v := &s.voices[i]
		rel := w[i] / c.HoverSpeed
		if rel < 0 {
			rel = 0
		}

		// Blade-passing: fundamental at blades * rev rate, with two
		// harmonics. Amplitude follows thrust (w^2).
		bpf := float64(c.Blades) * w[i] / (2 * math.Pi)
		v.bladePhase += 2 * math.Pi * bpf * dt
		if v.bladePhase > 2*math.Pi {
			v.bladePhase -= 2 * math.Pi
		}
		blade := c.BladeAmp * rel * rel *
			(math.Sin(v.bladePhase) + 0.4*math.Sin(2*v.bladePhase) + 0.15*math.Sin(3*v.bladePhase))

		// Mechanical/ESC: carrier whose pitch and amplitude track speed.
		mechF := c.MechFreq * (0.8 + 0.2*rel)
		v.mechPhase += 2 * math.Pi * mechF * dt
		if v.mechPhase > 2*math.Pi {
			v.mechPhase -= 2 * math.Pi
		}
		mech := c.MechAmp * math.Pow(rel, 1.5) *
			(math.Sin(v.mechPhase) + 0.3*math.Sin(2*v.mechPhase))

		// Aerodynamic: white noise through a cascaded band-pass at the aero
		// band centre; amplitude rises cubically with rotor speed so the
		// band is the most acceleration-informative feature.
		white := s.rng.NormFloat64()
		aero := c.AeroAmp * rel * rel * rel * v.aeroFilter.Process(white*4)

		out[i] = blade + mech + aero
	}
	_ = windSpeed // wind rumble is added at the microphone (propagation) stage
	return out
}

// SourceSignals renders the full flight into per-rotor source waveforms.
// frames must be time-ordered; rotor speeds are held between frames
// (zero-order hold). The returned signal length is duration * SampleRate.
func (s *Synthesizer) SourceSignals(frames []RotorFrame) [][NumRotors]float64 {
	if len(frames) == 0 {
		return nil
	}
	c := s.cfg
	duration := frames[len(frames)-1].Time - frames[0].Time
	n := int(duration * c.SampleRate)
	out := make([][NumRotors]float64, n)
	fi := 0
	t0 := frames[0].Time
	for i := 0; i < n; i++ {
		t := t0 + float64(i)/c.SampleRate
		for fi+1 < len(frames) && frames[fi+1].Time <= t {
			fi++
		}
		out[i] = s.step(frames[fi].Speed, frames[fi].WindSpeed)
	}
	return out
}
