package stream

import (
	"testing"

	"soundboost/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a goroutine — an engine
// consumer that never saw its bus close, a replay stuck on a full
// subscription.
func TestMain(m *testing.M) { leakcheck.Main(m) }
