package stream

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"soundboost/internal/acoustics"
	"soundboost/internal/chaos"
	"soundboost/internal/dataset"
	"soundboost/internal/mavbus"
)

// FrameLen is the per-frame sample count for a frame length in seconds
// at an audio sample rate: the nearest integer, minimum 1. Rounding
// matters — truncation drops a sample per frame whenever the product
// lands just under an integer in float64 (0.29 s at 100 Hz is
// 28.999999999999996), which skews every frame boundary after the
// first. Replay and api.ChunkFlight both cut frames with it, keeping
// the replay-identical guarantee: a chunked upload reproduces the
// replayed stream exactly.
func FrameLen(frameSeconds, rate float64) int {
	n := int(math.Round(frameSeconds * rate))
	if n < 1 {
		n = 1
	}
	return n
}

// ReplayConfig tunes dataset replay onto a bus.
type ReplayConfig struct {
	// Speed is the wall-clock speed factor: 1 replays in real time, 2 at
	// double speed, 0 replays as fast as the bus accepts (no sleeping).
	Speed float64
	// FrameSeconds is the audio chunking interval (default 0.05 s —
	// a 50 ms capture buffer, typical for a companion-computer ALSA feed).
	FrameSeconds float64
	// DropRate is the per-message drop probability for IMU and GPS
	// messages, simulating a lossy telemetry link. 0 disables. Drops are
	// injected through a chaos.Injector built from Seed — the same code
	// path the chaos soak uses — not a bespoke replay-only RNG.
	DropRate float64
	// AudioDropRate is the per-frame drop probability for audio frames,
	// creating dropouts the engine must gap-fill over. 0 disables.
	AudioDropRate float64
	// Seed drives the fault injection (deterministic for a given seed).
	Seed int64
	// Chaos, when set, is the full fault schedule to replay through —
	// corruption, freeze, skew, reordering, everything the chaos package
	// offers. DropRate/AudioDropRate are folded into it as per-topic drop
	// rates (explicit PerTopic entries in Chaos win), and a zero
	// Chaos.Seed inherits Seed.
	Chaos *chaos.Config
	// AudioTopic, IMUTopic, GPSTopic override the default topic names.
	AudioTopic string
	IMUTopic   string
	GPSTopic   string
}

// injector builds the replay's fault schedule: the shared chaos types,
// seeded from the config, with the legacy drop-rate knobs folded in as
// per-topic drop rates.
func (c ReplayConfig) injector() *chaos.Injector {
	var ccfg chaos.Config
	if c.Chaos != nil {
		ccfg = *c.Chaos
	}
	if ccfg.Seed == 0 {
		ccfg.Seed = c.Seed
	}
	perTopic := make(map[string]chaos.Rates, len(ccfg.PerTopic)+3)
	if c.AudioDropRate > 0 {
		perTopic[c.AudioTopic] = chaos.Rates{Drop: c.AudioDropRate}
	}
	if c.DropRate > 0 {
		perTopic[c.IMUTopic] = chaos.Rates{Drop: c.DropRate}
		perTopic[c.GPSTopic] = chaos.Rates{Drop: c.DropRate}
	}
	for t, r := range ccfg.PerTopic {
		perTopic[t] = r
	}
	ccfg.PerTopic = perTopic
	return chaos.NewInjector(ccfg, CorruptPayload)
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.FrameSeconds <= 0 {
		c.FrameSeconds = 0.05
	}
	if c.AudioTopic == "" {
		c.AudioTopic = TopicAudio
	}
	if c.IMUTopic == "" {
		c.IMUTopic = TopicIMU
	}
	if c.GPSTopic == "" {
		c.GPSTopic = TopicGPS
	}
	return c
}

// replayEvent is one timed publication.
type replayEvent struct {
	t   float64
	msg mavbus.Message
}

// Replay publishes a recorded flight onto the bus as the live streams the
// engine consumes: the audio recording chunked into frames (each
// published at its capture-complete time) and one IMU plus one GPS
// message per telemetry row. With Speed > 0 publication is paced to
// scaled real time; Speed == 0 publishes as fast as possible. The caller
// owns the bus and typically closes it when Replay returns so consumers
// see end-of-stream.
func Replay(ctx context.Context, bus *mavbus.Bus, f *dataset.Flight, cfg ReplayConfig) error {
	if f == nil || f.Audio == nil || f.Audio.Samples() == 0 {
		return fmt.Errorf("stream: nothing to replay")
	}
	cfg = cfg.withDefaults()
	rate := f.Audio.SampleRate
	frameN := FrameLen(cfg.FrameSeconds, rate)

	var events []replayEvent
	total := f.Audio.Samples()
	for o := 0; o < total; o += frameN {
		end := o + frameN
		if end > total {
			end = total
		}
		samples := make([][]float64, acoustics.NumMics)
		for m := range samples {
			samples[m] = f.Audio.Channels[m][o:end]
		}
		frame := AudioFrame{Start: float64(o) / rate, Rate: rate, Samples: samples}
		endT := float64(end) / rate
		events = append(events, replayEvent{
			t:   endT, // a frame exists once its last sample is captured
			msg: mavbus.Message{Topic: cfg.AudioTopic, Time: endT, Payload: frame},
		})
	}
	for _, s := range f.Telemetry {
		events = append(events, replayEvent{
			t: s.Time,
			msg: mavbus.Message{Topic: cfg.IMUTopic, Time: s.Time, Payload: IMUSample{
				Time: s.Time, Accel: s.IMUAccel, Gyro: s.IMUGyro, Att: s.EstAtt,
			}},
		})
		events = append(events, replayEvent{
			t: s.Time,
			msg: mavbus.Message{Topic: cfg.GPSTopic, Time: s.Time, Payload: GPSSample{
				Time: s.Time, Pos: s.GPSPos, Vel: s.GPSVel,
			}},
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].t < events[j].t })

	inj := cfg.injector()
	pub := inj.Publisher(bus.Publish)
	prev := 0.0
	for _, ev := range events {
		if cfg.Speed > 0 && ev.t > prev {
			d := time.Duration(float64(time.Second) * (ev.t - prev) / cfg.Speed)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
			prev = ev.t
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := pub(ev.msg); err != nil {
			return err
		}
	}
	return inj.Flush(bus.Publish)
}
