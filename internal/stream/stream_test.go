package stream

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"soundboost/internal/attack"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/mavbus"
	"soundboost/internal/sim"
)

// testGenConfig mirrors the reduced-rate configuration the core tests
// use, so the fixture stays fast while keeping the sample arithmetic
// representative (4 kHz audio, 0.25 s hops → exact sample counts).
func testGenConfig(mission sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	cfg.World.Controller.MaxVel = 3.0
	return cfg
}

type fixture struct {
	calib    []*dataset.Flight
	analyzer *soundboost.Analyzer
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		f := &fixture{}
		missions := []sim.Mission{
			sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
			sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
			}),
			sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
			}),
		}
		var train []*dataset.Flight
		seed := int64(400)
		for rep := 0; rep < 2; rep++ {
			for _, m := range missions {
				fl, err := dataset.Generate(testGenConfig(m, seed))
				if err != nil {
					fixErr = err
					return
				}
				train = append(train, fl)
				seed += 7
			}
		}
		for _, m := range missions {
			fl, err := dataset.Generate(testGenConfig(m, seed))
			if err != nil {
				fixErr = err
				return
			}
			f.calib = append(f.calib, fl)
			seed += 7
		}
		sig := soundboost.DefaultSignatureConfig(testGenConfig(missions[0], 0).Synth)
		mcfg := soundboost.DefaultMappingConfig(sig)
		mcfg.Hidden = 48
		mcfg.Train.Epochs = 100
		model, _, err := soundboost.TrainModel(train, nil, mcfg)
		if err != nil {
			fixErr = err
			return
		}
		an, err := soundboost.NewAnalyzer(model, f.calib)
		if err != nil {
			fixErr = err
			return
		}
		f.analyzer = an
		fix = f
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func imuAttackFlight(t *testing.T, seed int64) *dataset.Flight {
	t.Helper()
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, seed)
	cfg.Scenario = attack.Scenario{Name: "imu-dos", IMU: &attack.IMUBiaser{
		Window:    attack.Window{Start: 5, End: 11},
		Mode:      attack.IMUAccelDoS,
		Axis:      mathx.Vec3{Z: 1},
		Magnitude: 3,
		Rng:       rand.New(rand.NewSource(seed)),
	}}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func gpsAttackFlight(t *testing.T, seed int64) *dataset.Flight {
	t.Helper()
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 20}, seed)
	cfg.Scenario = attack.Scenario{Name: "gps-drift", GPS: &attack.GPSSpoofer{
		Window:      attack.Window{Start: 6, End: 18},
		Mode:        attack.GPSSpoofDrift,
		SpoofOffset: mathx.Vec3{X: 24},
	}}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runStream replays a flight through a bus into a fresh engine and
// returns the streaming report.
func runStream(t *testing.T, an *soundboost.Analyzer, f *dataset.Flight, rcfg ReplayConfig) (soundboost.Report, *Engine) {
	t.Helper()
	bus := mavbus.NewBus(0)
	eng, err := New(an, f.Audio.SampleRate, WithBuffer(1<<15), WithFlightName(f.Name))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(bus); err != nil {
		t.Fatal(err)
	}
	replayErr := make(chan error, 1)
	go func() {
		replayErr <- Replay(context.Background(), bus, f, rcfg)
		bus.Close()
	}()
	report, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	if err := <-replayErr; err != nil {
		t.Fatalf("replay: %v", err)
	}
	if d := bus.Dropped(); d != 0 {
		t.Fatalf("bus shed %d messages; buffer too small for a faithful replay", d)
	}
	return report, eng
}

func closeTo(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// TestStreamEquivalence is the engine's core contract: on a clean,
// in-order, lossless replay the streaming verdict matches batch Analyze
// — on benign flights and on attacked ones (where the live KF-variant
// switch must land on the same stage-2 verdict as the batch selection).
func TestStreamEquivalence(t *testing.T) {
	fx := getFixture(t)
	flights := []*dataset.Flight{
		fx.calib[0],
		fx.calib[1],
		imuAttackFlight(t, 4100),
		gpsAttackFlight(t, 4200),
	}
	for _, f := range flights {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			batch, err := fx.analyzer.Analyze(f)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := runStream(t, fx.analyzer, f, ReplayConfig{Speed: 0})

			if got.Cause != batch.Cause {
				t.Errorf("cause = %q, batch %q", got.Cause, batch.Cause)
			}
			if got.GPSMode != batch.GPSMode {
				t.Errorf("GPS mode = %q, batch %q", got.GPSMode, batch.GPSMode)
			}
			if got.IMU.Attacked != batch.IMU.Attacked ||
				got.IMU.WindowsTested != batch.IMU.WindowsTested ||
				got.IMU.WindowsRejected != batch.IMU.WindowsRejected {
				t.Errorf("IMU verdict = %+v, batch %+v", got.IMU, batch.IMU)
			}
			if !closeTo(got.IMU.DetectionTime, batch.IMU.DetectionTime, 1e-9) ||
				!closeTo(got.IMU.AttackStd, batch.IMU.AttackStd, 1e-9) {
				t.Errorf("IMU timing/std = (%v, %v), batch (%v, %v)",
					got.IMU.DetectionTime, got.IMU.AttackStd, batch.IMU.DetectionTime, batch.IMU.AttackStd)
			}
			if got.GPS.Attacked != batch.GPS.Attacked {
				t.Errorf("GPS attacked = %v, batch %v", got.GPS.Attacked, batch.GPS.Attacked)
			}
			if !closeTo(got.GPS.PeakError, batch.GPS.PeakError, 1e-9) {
				t.Errorf("GPS peak error = %v, batch %v", got.GPS.PeakError, batch.GPS.PeakError)
			}
			if !closeTo(got.GPS.DetectionTime, batch.GPS.DetectionTime, 1e-9) {
				t.Errorf("GPS detection time = %v, batch %v", got.GPS.DetectionTime, batch.GPS.DetectionTime)
			}
			if !closeTo(got.GPS.Threshold, batch.GPS.Threshold, 1e-12) {
				t.Errorf("GPS threshold = %v, batch %v", got.GPS.Threshold, batch.GPS.Threshold)
			}
		})
	}
}

// TestStreamTelemetryDropRobustness injects a 5% telemetry message drop:
// the engine must neither crash nor raise a false alarm on a benign
// flight.
func TestStreamTelemetryDropRobustness(t *testing.T) {
	fx := getFixture(t)
	report, _ := runStream(t, fx.analyzer, fx.calib[0], ReplayConfig{Speed: 0, DropRate: 0.05, Seed: 99})
	if report.Cause != soundboost.CauseNone {
		t.Errorf("benign flight with 5%% telemetry drop attributed cause %q (IMU %+v, GPS %+v)",
			report.Cause, report.IMU, report.GPS)
	}
	if report.IMU.WindowsTested == 0 {
		t.Error("engine processed no periods despite mostly-intact telemetry")
	}
}

// TestStreamAudioDropoutSkipsWindows drops whole audio frames: affected
// windows must be skipped (not synthesized from silence) and the verdict
// must stay benign.
func TestStreamAudioDropoutSkipsWindows(t *testing.T) {
	fx := getFixture(t)
	report, eng := runStream(t, fx.analyzer, fx.calib[0], ReplayConfig{Speed: 0, AudioDropRate: 0.05, Seed: 7})
	if report.Cause != soundboost.CauseNone {
		t.Errorf("benign flight with audio dropouts attributed cause %q", report.Cause)
	}
	st := eng.Status()
	if st.Skipped == 0 {
		t.Error("no windows skipped despite injected audio dropouts")
	}
	if st.Windows == 0 {
		t.Error("no windows processed at all")
	}
}

// TestStreamDegradedTelemetry hand-publishes malformed traffic — NaN
// rows, out-of-order audio and telemetry, wrong payload types — and
// expects a clean shutdown with a benign report.
func TestStreamDegradedTelemetry(t *testing.T) {
	fx := getFixture(t)
	bus := mavbus.NewBus(0)
	eng, err := New(fx.analyzer, 4000, WithBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(bus); err != nil {
		t.Fatal(err)
	}
	go func() {
		mk := func(n int) [][]float64 {
			chans := make([][]float64, 4)
			for m := range chans {
				chans[m] = make([]float64, n)
			}
			return chans
		}
		// Frame at t=0.05 first (creates a gap), then the t=0 frame late
		// (dropped as out-of-order), then one with NaN samples.
		f2 := mk(200)
		bus.Publish(mavbus.Message{Topic: TopicAudio, Payload: AudioFrame{Start: 0.05, Rate: 4000, Samples: f2}})
		bus.Publish(mavbus.Message{Topic: TopicAudio, Payload: AudioFrame{Start: 0, Rate: 4000, Samples: mk(200)}})
		f3 := mk(200)
		f3[1][10] = math.NaN()
		bus.Publish(mavbus.Message{Topic: TopicAudio, Payload: AudioFrame{Start: 0.1, Rate: 4000, Samples: f3}})
		// Malformed frames: wrong rate, wrong channel count, bogus start.
		bus.Publish(mavbus.Message{Topic: TopicAudio, Payload: AudioFrame{Start: 0.2, Rate: 8000, Samples: mk(200)}})
		bus.Publish(mavbus.Message{Topic: TopicAudio, Payload: AudioFrame{Start: 0.2, Rate: 4000, Samples: mk(200)[:2]}})
		bus.Publish(mavbus.Message{Topic: TopicAudio, Payload: AudioFrame{Start: math.NaN(), Rate: 4000, Samples: mk(200)}})
		// Telemetry: NaN row, out-of-order rows, wrong payload type.
		bus.Publish(mavbus.Message{Topic: TopicIMU, Payload: IMUSample{Time: 0.1, Accel: mathx.Vec3{Z: math.NaN()}}})
		bus.Publish(mavbus.Message{Topic: TopicIMU, Payload: IMUSample{Time: 0.2, Att: mathx.Quat{W: 1}}})
		bus.Publish(mavbus.Message{Topic: TopicIMU, Payload: IMUSample{Time: 0.1, Att: mathx.Quat{W: 1}}})
		bus.Publish(mavbus.Message{Topic: TopicIMU, Payload: "not an imu sample"})
		bus.Publish(mavbus.Message{Topic: TopicGPS, Payload: GPSSample{Time: 0.2}})
		bus.Publish(mavbus.Message{Topic: TopicGPS, Payload: GPSSample{Time: 0.1, Vel: mathx.Vec3{X: math.Inf(1)}}})
		bus.Close()
	}()
	report, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if report.Cause != soundboost.CauseNone {
		t.Errorf("degenerate stream attributed cause %q", report.Cause)
	}
}

// TestStreamContextCancel verifies a cancelled engine returns promptly
// with the context error and a best-effort report.
func TestStreamContextCancel(t *testing.T) {
	fx := getFixture(t)
	bus := mavbus.NewBus(0)
	eng, err := New(fx.analyzer, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(bus); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx); err != context.Canceled {
		t.Errorf("Run under cancelled ctx = %v, want context.Canceled", err)
	}
	bus.Close()
}

func TestNewEngineValidation(t *testing.T) {
	fx := getFixture(t)
	if _, err := New(nil, 4000); err == nil {
		t.Error("nil analyzer accepted")
	}
	if _, err := New(fx.analyzer, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := New(fx.analyzer, 4000); err != nil {
		t.Errorf("valid engine rejected: %v", err)
	}
	if _, err := New(fx.analyzer, 4000, WithPrecision("float16")); err == nil {
		t.Error("unknown precision accepted")
	}
	eng, _ := New(fx.analyzer, 4000)
	if _, err := eng.Run(context.Background()); err == nil {
		t.Error("Run without Attach accepted")
	}
}
