// Package stream is SoundBoost's online RCA engine: it subscribes to the
// mavbus telemetry topics a companion computer sees in flight
// ("audio-frame", "imu", "gps") and runs the calibrated two-stage
// analysis incrementally — a ring-buffered windower emits acoustic
// signatures as each hop of audio completes, an incremental monitor
// re-runs the IMU Kolmogorov-Smirnov verdict per pooled period, and two
// stepwise Kalman error monitors mirror the batch GPS detector sample by
// sample, with the active KF variant switching live when the IMU verdict
// flips.
//
// The engine's contract with the batch pipeline is equivalence: on a
// clean, in-order, lossless stream, the final verdict (root cause, IMU
// and GPS verdicts) is identical to Analyzer.Analyze over the same
// recorded flight, because both paths share the same feature kernel
// (SignatureConfig.AcousticWindow), the same model inference, and the
// same detector recursions in the same order. Under degraded input —
// out-of-order, dropped, or NaN telemetry, audio dropouts — the engine
// degrades gracefully: corrupt samples are shed and counted, audio gaps
// are zero-filled to preserve timing with the affected windows skipped,
// and memory stays bounded by the lag horizon.
package stream

import (
	soundboost "soundboost/internal/core"
	"soundboost/internal/mathx"
	"soundboost/internal/obs"
)

// Default topic names, matching the MAVLink-style streams the bus carries.
const (
	// TopicAudio carries AudioFrame payloads.
	TopicAudio = "audio-frame"
	// TopicIMU carries IMUSample payloads.
	TopicIMU = "imu"
	// TopicGPS carries GPSSample payloads.
	TopicGPS = "gps"
)

// AudioFrame is one contiguous chunk of the microphone-array recording.
// Frames are expected in order; the windower tolerates duplicates,
// overlaps, and gaps (see Engine).
type AudioFrame struct {
	// Start is the capture time of the first sample (flight seconds).
	Start float64
	// Rate is the sample rate in Hz.
	Rate float64
	// Samples holds the per-microphone sample chunks (equal lengths).
	Samples [][]float64
}

// IMUSample is one logged inertial row, published at the IMU rate.
type IMUSample struct {
	// Time is the flight timestamp (s).
	Time float64
	// Accel is the accelerometer specific force (body frame).
	Accel mathx.Vec3
	// Gyro is the gyroscope rate (body frame).
	Gyro mathx.Vec3
	// Att is the autopilot attitude estimate (trusted per threat model).
	Att mathx.Quat
}

// GPSSample is one GPS fix (NED).
type GPSSample struct {
	// Time is the flight timestamp (s).
	Time float64
	// Pos and Vel are the reported NED position and velocity.
	Pos mathx.Vec3
	Vel mathx.Vec3
}

// Config tunes the streaming engine. The zero value selects the
// defaults noted on each field.
type Config struct {
	// AudioTopic, IMUTopic, GPSTopic name the bus topics to subscribe
	// to (defaults: TopicAudio, TopicIMU, TopicGPS).
	AudioTopic string
	IMUTopic   string
	GPSTopic   string
	// Buffer is the per-subscription channel depth (default 1024). The
	// bus sheds the oldest message when a buffer overflows, so size this
	// to the burstiness of the link, not the flight length.
	Buffer int
	// MaxLagSeconds bounds how far the audio stream may run ahead of the
	// telemetry watermark before a pending window is skipped as starved
	// (default 10 s). This is what bounds engine memory when a telemetry
	// stream stalls.
	MaxLagSeconds float64
	// GapFill processes windows overlapping an audio dropout using the
	// zero-filled gap samples instead of skipping them. Default false:
	// a window built from silence produces an untrustworthy signature,
	// so dropout windows are skipped (and counted) unless opted in.
	GapFill bool
	// DisableTriage runs the full pipeline on every window even when the
	// analyzer carries a screening tier — the streaming -no-triage
	// escape hatch.
	DisableTriage bool
	// FlightName labels the produced report.
	FlightName string
	// Precision overrides the arithmetic of the signature/inference hot
	// path for this stream: the engine derives a threshold-preserving
	// precision clone of the analyzer (Analyzer.WithPrecision) before
	// processing. The zero value keeps the analyzer's own mode —
	// Float64 unless the model opted in.
	Precision soundboost.Precision
}

func (c Config) withDefaults() Config {
	if c.AudioTopic == "" {
		c.AudioTopic = TopicAudio
	}
	if c.IMUTopic == "" {
		c.IMUTopic = TopicIMU
	}
	if c.GPSTopic == "" {
		c.GPSTopic = TopicGPS
	}
	if c.Buffer <= 0 {
		c.Buffer = 1024
	}
	if c.MaxLagSeconds <= 0 {
		c.MaxLagSeconds = 10
	}
	return c
}

// Per-stage metrics, resolved once at init and gated by obs.Enable.
// stream.windows.emitted counts fully processed windows;
// stream.windows.skipped_gap / skipped_starved / rejected count the three
// skip reasons (audio dropout, telemetry starvation, too-short window).
var (
	framesTotal        = obs.Default.Counter("stream.frames")
	framesOutOfOrder   = obs.Default.Counter("stream.frames.out_of_order")
	framesMalformed    = obs.Default.Counter("stream.frames.malformed")
	gapSamplesFilled   = obs.Default.Counter("stream.audio.gap_samples")
	nonFiniteSamples   = obs.Default.Counter("stream.audio.nonfinite_samples")
	telemetryIMU       = obs.Default.Counter("stream.telemetry.imu")
	telemetryGPS       = obs.Default.Counter("stream.telemetry.gps")
	telemetryNaN       = obs.Default.Counter("stream.telemetry.nan_dropped")
	telemetryReordered = obs.Default.Counter("stream.telemetry.out_of_order")
	telemetryEvicted   = obs.Default.Counter("stream.telemetry.evicted")
	windowsEmitted     = obs.Default.Counter("stream.windows.emitted")
	windowsSkippedGap  = obs.Default.Counter("stream.windows.skipped_gap")
	windowsStarved     = obs.Default.Counter("stream.windows.skipped_starved")
	windowsRejected    = obs.Default.Counter("stream.windows.rejected")
	windowsScreened    = obs.Default.Counter("stream.windows.screened")
	triageEscalations  = obs.Default.Counter("stream.triage.escalations")
	triageFastReports  = obs.Default.Counter("stream.triage.fast_reports")
	gpsSegments        = obs.Default.Counter("stream.gps.segments")
	featureTimer       = obs.Default.Timer("stream.window.features")
	imuPeriodTimer     = obs.Default.Timer("stream.imu.period")
	gpsStepTimer       = obs.Default.Timer("stream.gps.step")
	audioBufferGauge   = obs.Default.Gauge("stream.audio.buffer_seconds")
	lagGauge           = obs.Default.Gauge("stream.lag_seconds")
)
