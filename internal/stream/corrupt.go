package stream

import (
	"math"
	"math/rand"

	"soundboost/internal/chaos"
)

// CorruptPayload is the chaos.CorruptFunc for the engine's payload types
// (AudioFrame, IMUSample, GPSSample): the one place chaos faults learn
// how to mutate typed telemetry. The chaos package stays payload-agnostic
// so Replay (this package) and the soak (cmd/soundboost) inject through
// one code path without an import cycle.
//
// Mutations never write through to the input payloads — audio frames
// share their sample slices with the recorded flight, and a message may
// be duplicated after corruption — so every mutated slice is copied
// first.
func CorruptPayload(rng *rand.Rand, kind chaos.Corruption, cur, prev any, dt float64) (any, bool) {
	switch p := cur.(type) {
	case AudioFrame:
		return corruptAudio(rng, kind, p, prev, dt)
	case IMUSample:
		return corruptIMU(rng, kind, p, prev, dt)
	case GPSSample:
		return corruptGPS(rng, kind, p, prev, dt)
	}
	return cur, false
}

// mantissaBit picks a bit position within the float64 mantissa (0–51).
// Flipping an exponent or sign bit would turn an ordinary sample into a
// ±1e300-scale value — finite, so it sails past the non-finite input
// guards, but large enough to overflow downstream arithmetic into NaN
// deep inside analysis. A mantissa flip perturbs the value by at most
// ~2x: corrupted-but-plausible data, which is the failure mode a sensor
// bitflip is meant to model.
func mantissaBit(rng *rand.Rand) uint {
	return uint(rng.Intn(52))
}

// copyChannel clones one mic channel of a frame so the mutation cannot
// reach the recording the frame was sliced from.
func copyChannel(f AudioFrame, m int) AudioFrame {
	samples := make([][]float64, len(f.Samples))
	copy(samples, f.Samples)
	ch := make([]float64, len(f.Samples[m]))
	copy(ch, f.Samples[m])
	samples[m] = ch
	f.Samples = samples
	return f
}

func corruptAudio(rng *rand.Rand, kind chaos.Corruption, f AudioFrame, prev any, dt float64) (any, bool) {
	n := 0
	if len(f.Samples) > 0 {
		n = len(f.Samples[0])
	}
	switch kind {
	case chaos.CorruptNaN:
		if n == 0 {
			return f, false
		}
		m, i := rng.Intn(len(f.Samples)), rng.Intn(n)
		f = copyChannel(f, m)
		f.Samples[m][i] = math.NaN()
		return f, true
	case chaos.CorruptTruncate:
		if n < 2 {
			return f, false
		}
		// Lose the tail; re-slicing shares storage but mutates nothing.
		samples := make([][]float64, len(f.Samples))
		for m := range f.Samples {
			samples[m] = f.Samples[m][:n/2]
		}
		f.Samples = samples
		return f, true
	case chaos.CorruptBitFlip:
		if n == 0 {
			return f, false
		}
		m, i := rng.Intn(len(f.Samples)), rng.Intn(n)
		bit := mantissaBit(rng)
		f = copyChannel(f, m)
		f.Samples[m][i] = math.Float64frombits(math.Float64bits(f.Samples[m][i]) ^ (1 << bit))
		return f, true
	case chaos.CorruptFreeze:
		pf, ok := prev.(AudioFrame)
		if !ok || len(pf.Samples) == 0 {
			return f, false
		}
		// Stuck-at capture buffer: the previous frame's samples replayed
		// at the current frame's clock.
		f.Samples = pf.Samples
		return f, true
	case chaos.CorruptRetime:
		f.Start += dt
		return f, true
	}
	return f, false
}

func corruptIMU(rng *rand.Rand, kind chaos.Corruption, s IMUSample, prev any, dt float64) (any, bool) {
	switch kind {
	case chaos.CorruptNaN:
		switch rng.Intn(3) {
		case 0:
			s.Accel.X = math.NaN()
		case 1:
			s.Accel.Z = math.NaN()
		default:
			s.Att.W = math.NaN()
		}
		return s, true
	case chaos.CorruptBitFlip:
		bit := mantissaBit(rng)
		switch rng.Intn(3) {
		case 0:
			s.Accel.X = math.Float64frombits(math.Float64bits(s.Accel.X) ^ (1 << bit))
		case 1:
			s.Accel.Y = math.Float64frombits(math.Float64bits(s.Accel.Y) ^ (1 << bit))
		default:
			s.Accel.Z = math.Float64frombits(math.Float64bits(s.Accel.Z) ^ (1 << bit))
		}
		return s, true
	case chaos.CorruptFreeze:
		ps, ok := prev.(IMUSample)
		if !ok {
			return s, false
		}
		ps.Time = s.Time // values latch, the clock advances
		return ps, true
	case chaos.CorruptRetime:
		s.Time += dt
		return s, true
	}
	return s, false // truncation is meaningless for a fixed-size row
}

func corruptGPS(rng *rand.Rand, kind chaos.Corruption, s GPSSample, prev any, dt float64) (any, bool) {
	switch kind {
	case chaos.CorruptNaN:
		if rng.Intn(2) == 0 {
			s.Vel.X = math.NaN()
		} else {
			s.Pos.Z = math.NaN()
		}
		return s, true
	case chaos.CorruptBitFlip:
		bit := mantissaBit(rng)
		switch rng.Intn(3) {
		case 0:
			s.Vel.X = math.Float64frombits(math.Float64bits(s.Vel.X) ^ (1 << bit))
		case 1:
			s.Vel.Y = math.Float64frombits(math.Float64bits(s.Vel.Y) ^ (1 << bit))
		default:
			s.Vel.Z = math.Float64frombits(math.Float64bits(s.Vel.Z) ^ (1 << bit))
		}
		return s, true
	case chaos.CorruptFreeze:
		ps, ok := prev.(GPSSample)
		if !ok {
			return s, false
		}
		ps.Time = s.Time
		return ps, true
	case chaos.CorruptRetime:
		s.Time += dt
		return s, true
	}
	return s, false
}
