package stream

import (
	"context"
	"fmt"
	"math"
	"sync"

	"soundboost/internal/acoustics"
	"soundboost/internal/chaos"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dsp"
	"soundboost/internal/faults"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/mavbus"
	"soundboost/internal/sensors"
	"soundboost/internal/triage"
)

// maxGapFillSeconds caps how much audio silence a single timestamp jump
// may inject: a frame claiming to start further ahead than this is
// treated as malformed rather than allocated as a gap, so one corrupt
// timestamp cannot balloon the ring buffer.
const maxGapFillSeconds = 30

// maxTelemetryBuffer caps the per-stream telemetry backlog retained while
// windows cannot advance (e.g. the audio feed stalled). Past it the
// oldest samples are evicted and counted.
const maxTelemetryBuffer = 1 << 17

// maxFastpathBacklogWindows caps how many screened windows the triage
// fast path may retain for a potential escalation replay before memory
// wins over speed: past it the engine escalates (runs the backlog
// through the full pipeline) purely to release the buffers. At the
// default 0.25 s hop this is ~4 minutes of stream — far beyond the
// flights the service sees, so real streams fast-path end to end.
const maxFastpathBacklogWindows = 1 << 10

// sampleRange is a half-open range [start, end) of absolute sample
// indices whose content is gap-filled or otherwise untrustworthy.
type sampleRange struct{ start, end int }

// Status is a point-in-time snapshot of the engine for live display.
type Status struct {
	// LastWindowEnd is the end time (s) of the newest processed window.
	LastWindowEnd float64
	// Windows counts fully processed windows; Skipped counts windows
	// dropped for gaps, starvation, or rejection.
	Windows int
	Skipped int
	// IMUAttacked and GPSAttacked are the verdicts so far (GPS per the
	// currently active KF variant).
	IMUAttacked bool
	GPSAttacked bool
	// ActiveMode is the KF variant currently trusted for the GPS verdict
	// — it switches from audio+IMU to audio-only the moment the IMU
	// verdict flips to attacked.
	ActiveMode kalman.Mode
	// RunningError and PeakError expose the active GPS monitor state.
	RunningError float64
	PeakError    float64
	Threshold    float64
}

// Engine is the online RCA engine. It consumes AudioFrame, IMUSample,
// and GPSSample messages from a mavbus and incrementally runs the same
// calibrated two-stage analysis as Analyzer.Analyze; on a clean, ordered,
// lossless stream the final Report is equivalent to the batch one.
//
// Typical use:
//
//	eng, _ := stream.New(analyzer, rate)
//	eng.Attach(bus)
//	go func() { stream.Replay(ctx, bus, flight, rcfg); bus.Close() }()
//	report, err := eng.Run(ctx)
//
// Attach must happen before the first Publish or early messages are
// missed (the bus does not replay into live subscriptions).
type Engine struct {
	an   *soundboost.Analyzer
	cfg  Config
	sig  soundboost.SignatureConfig
	rate float64

	subAudio *mavbus.Subscription
	subIMU   *mavbus.Subscription
	subGPS   *mavbus.Subscription

	// Audio ring: filtered samples [base, written) per mic, plus the
	// invalid (gap-filled / non-finite) ranges still overlapping it.
	filters [acoustics.NumMics]*dsp.Biquad
	buf     [acoustics.NumMics][]float64
	base    int
	written int
	invalid []sampleRange

	// Telemetry buffers, time-sorted, with high-water marks. done flags
	// flip when the corresponding bus channel closes.
	imuBuf   []IMUSample
	gpsBuf   []GPSSample
	imuWM    float64
	gpsWM    float64
	imuDone  bool
	gpsDone  bool
	imuEvict int
	gpsEvict int

	// nextWin is the index of the next unprocessed signature window
	// (start time nextWin*HopSeconds, exactly as batch WindowStarts).
	nextWin int

	// Triage fast path. While active (tri non-nil and not escalated),
	// ready windows are screened by the cheap tier instead of running the
	// full pipeline, and every full-pipeline input from window triFullWin
	// onward is retained so that any doubt can escalate by replaying the
	// screened backlog — reproducing, bit for bit, the engine state the
	// full pipeline would have reached. Escalation is permanent for the
	// stream; a stream that never escalates finalizes with the cheap
	// path-independent benign report.
	tri          *triage.Model
	triFullWin   int
	triEscalated bool

	imuMon  *imuMonitor
	gpsAO   *gpsMonitor // audio-only KF, trusted when the IMU is flagged
	gpsAI   *gpsMonitor // audio+IMU KF, trusted otherwise
	gravity mathx.Vec3

	err error

	mu     sync.Mutex
	status Status
}

// ErrNotAttached is returned by Run when the engine was never attached
// to a bus. It aliases faults.ErrEngineDetached, the repository-wide
// error set, so errors.Is matches under either name.
var ErrNotAttached = faults.ErrEngineDetached

// New builds an engine around a calibrated analyzer for streams at the
// given audio sample rate, configured by functional options:
//
//	eng, err := stream.New(analyzer, rate,
//		stream.WithBuffer(1<<14),
//		stream.WithLagHorizon(5),
//		stream.WithFlightName("incident-17"))
func New(an *soundboost.Analyzer, sampleRate float64, opts ...Option) (*Engine, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return newEngine(an, sampleRate, cfg)
}

func newEngine(an *soundboost.Analyzer, sampleRate float64, cfg Config) (*Engine, error) {
	if an == nil || an.Model == nil || an.IMU == nil || an.GPSAudioOnly == nil || an.GPSAudioIMU == nil {
		return nil, fmt.Errorf("stream: nil or incomplete analyzer")
	}
	if cfg.Precision != "" {
		var err error
		an, err = an.WithPrecision(cfg.Precision)
		if err != nil {
			return nil, fmt.Errorf("stream: %w", err)
		}
	}
	if an.IMU.Config().Stream != 0 {
		return nil, fmt.Errorf("stream: only the primary IMU stream (0) is supported online, analyzer uses stream %d", an.IMU.Config().Stream)
	}
	sig := an.Model.Config().Signature
	if err := sig.ValidateForRate(sampleRate); err != nil {
		return nil, err
	}
	e := &Engine{
		an:      an,
		cfg:     cfg.withDefaults(),
		sig:     sig,
		rate:    sampleRate,
		imuWM:   math.Inf(-1),
		gpsWM:   math.Inf(-1),
		gravity: mathx.Vec3{Z: sensors.Gravity},
	}
	// Mirror NewExtractor's per-channel low-pass: a causal biquad fed
	// sample by sample is bit-identical to the batch ProcessAll.
	if sig.LowPassHz > 0 && sig.LowPassHz < sampleRate/2 {
		for m := range e.filters {
			lp, err := dsp.NewLowPass(sig.LowPassHz, sampleRate)
			if err != nil {
				return nil, fmt.Errorf("stream: low-pass: %w", err)
			}
			e.filters[m] = lp
		}
	}
	if !e.cfg.DisableTriage {
		e.tri = an.Triage
	}
	e.imuMon = newIMUMonitor(an.IMU, sig.WindowSeconds)
	e.gpsAO = newGPSMonitor(an.GPSAudioOnly, sig.HopSeconds)
	e.gpsAI = newGPSMonitor(an.GPSAudioIMU, sig.HopSeconds)
	e.status.ActiveMode = an.GPSAudioIMU.Mode()
	e.status.Threshold = an.GPSAudioIMU.Threshold()
	return e, nil
}

// Attach subscribes the engine to its topics on the bus. It must be
// called before publishing begins and before Run.
func (e *Engine) Attach(bus *mavbus.Bus) error {
	var err error
	if e.subAudio, err = bus.Subscribe(e.cfg.AudioTopic, e.cfg.Buffer); err != nil {
		return err
	}
	if e.subIMU, err = bus.Subscribe(e.cfg.IMUTopic, e.cfg.Buffer); err != nil {
		return err
	}
	if e.subGPS, err = bus.Subscribe(e.cfg.GPSTopic, e.cfg.Buffer); err != nil {
		return err
	}
	return nil
}

// Run consumes the attached subscriptions until all three channels close
// (bus closed) or the context is cancelled, then flushes the remaining
// ready windows and returns the final report. A context cancellation
// still returns the best-effort report alongside ctx.Err().
func (e *Engine) Run(ctx context.Context) (soundboost.Report, error) {
	if e.subAudio == nil || e.subIMU == nil || e.subGPS == nil {
		return soundboost.Report{}, ErrNotAttached
	}
	audioC, imuC, gpsC := e.subAudio.C, e.subIMU.C, e.subGPS.C
	for audioC != nil || imuC != nil || gpsC != nil {
		// Block for at least one message (or closure, or cancellation).
		select {
		case <-ctx.Done():
			e.cancelSubs()
			e.advance(true)
			report, _ := e.finalize()
			return report, ctx.Err()
		case m, ok := <-audioC:
			e.dispatchAudio(m, ok, &audioC)
		case m, ok := <-imuC:
			e.dispatchIMU(m, ok, &imuC)
		case m, ok := <-gpsC:
			e.dispatchGPS(m, ok, &gpsC)
		}
		// Drain everything already queued before judging window
		// readiness: a bursty publisher delivers the three streams at
		// very different message rates, and deciding starvation while
		// telemetry sits unread in its channel would skip healthy
		// windows.
		for drained := true; drained; {
			drained = false
			if audioC != nil {
				select {
				case m, ok := <-audioC:
					e.dispatchAudio(m, ok, &audioC)
					drained = true
				default:
				}
			}
			if imuC != nil {
				select {
				case m, ok := <-imuC:
					e.dispatchIMU(m, ok, &imuC)
					drained = true
				default:
				}
			}
			if gpsC != nil {
				select {
				case m, ok := <-gpsC:
					e.dispatchGPS(m, ok, &gpsC)
					drained = true
				default:
				}
			}
		}
		e.advance(false)
	}
	e.advance(true)
	return e.finalize()
}

// checkPoison treats a chaos.PoisonPill payload as an engine-integrity
// fault and panics. This is the deliberate crash-test trigger for the
// fault-injection harness: the panic must be contained by the engine's
// owner (the server's per-session isolation domain), never by the engine
// itself — swallowing it here would hide exactly the failure the soak
// exists to exercise.
func checkPoison(m mavbus.Message) {
	if _, bad := m.Payload.(chaos.PoisonPill); bad {
		panic(fmt.Sprintf("stream: poison pill on %q at t=%.3f", m.Topic, m.Time))
	}
}

func (e *Engine) dispatchAudio(m mavbus.Message, ok bool, c *<-chan mavbus.Message) {
	if !ok {
		*c = nil
		return
	}
	checkPoison(m)
	if f, good := m.Payload.(AudioFrame); good {
		e.onAudio(f)
	}
}

func (e *Engine) dispatchIMU(m mavbus.Message, ok bool, c *<-chan mavbus.Message) {
	if !ok {
		*c = nil
		e.imuDone = true
		return
	}
	checkPoison(m)
	if s, good := m.Payload.(IMUSample); good {
		e.onIMU(s)
	}
}

func (e *Engine) dispatchGPS(m mavbus.Message, ok bool, c *<-chan mavbus.Message) {
	if !ok {
		*c = nil
		e.gpsDone = true
		return
	}
	checkPoison(m)
	if s, good := m.Payload.(GPSSample); good {
		e.onGPS(s)
	}
}

// cancelSubs detaches all subscriptions (used on context cancellation).
func (e *Engine) cancelSubs() {
	e.subAudio.Cancel()
	e.subIMU.Cancel()
	e.subGPS.Cancel()
}

// Close detaches the engine from its bus by cancelling its
// subscriptions. A concurrent Run drains what is already queued, flushes
// the remaining ready windows, and returns its final report — this is
// how an owner (a server session, a supervisor) ends a stream without
// closing a bus other consumers may share. Close is idempotent and a
// no-op on a never-attached engine; Attach must have completed
// (happened-before) for Close to observe the subscriptions.
func (e *Engine) Close() {
	if e.subAudio != nil {
		e.subAudio.Cancel()
	}
	if e.subIMU != nil {
		e.subIMU.Cancel()
	}
	if e.subGPS != nil {
		e.subGPS.Cancel()
	}
}

// Status returns a snapshot of the engine state for live display. It is
// safe to call concurrently with Run.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.status
}

// onAudio ingests one audio frame: out-of-order overlap is trimmed,
// gaps are zero-filled through the filters (preserving window timing)
// and marked invalid, non-finite samples are zeroed and marked invalid.
func (e *Engine) onAudio(f AudioFrame) {
	framesTotal.Inc()
	if len(f.Samples) != acoustics.NumMics || len(f.Samples[0]) == 0 || f.Rate != e.rate {
		framesMalformed.Inc()
		return
	}
	n := len(f.Samples[0])
	for _, ch := range f.Samples[1:] {
		if len(ch) != n {
			framesMalformed.Inc()
			return
		}
	}
	if math.IsNaN(f.Start) || math.IsInf(f.Start, 0) || f.Start < 0 {
		framesMalformed.Inc()
		return
	}
	startIdx := int(math.Round(f.Start * e.rate))
	skip := 0
	if startIdx < e.written {
		// Duplicate or late frame: drop the part already ingested.
		framesOutOfOrder.Inc()
		skip = e.written - startIdx
		if skip >= n {
			return
		}
	} else if gap := startIdx - e.written; gap > 0 {
		if float64(gap)/e.rate > maxGapFillSeconds {
			framesMalformed.Inc()
			return
		}
		// Dropout: zero-fill through the filters so later windows keep
		// their absolute timing, and mark the span untrustworthy.
		e.invalid = append(e.invalid, sampleRange{e.written, startIdx})
		gapSamplesFilled.Add(int64(gap))
		for i := 0; i < gap; i++ {
			for m := range e.buf {
				e.buf[m] = append(e.buf[m], e.filterSample(m, 0))
			}
		}
		e.written = startIdx
	}
	for i := skip; i < n; i++ {
		finite := true
		for m := 0; m < acoustics.NumMics; m++ {
			v := f.Samples[m][i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
			}
		}
		if !finite {
			nonFiniteSamples.Inc()
			e.markInvalid(e.written, e.written+1)
		}
		for m := range e.buf {
			v := f.Samples[m][i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			e.buf[m] = append(e.buf[m], e.filterSample(m, v))
		}
		e.written++
	}
	audioBufferGauge.Set(float64(e.written-e.base) / e.rate)
}

func (e *Engine) filterSample(m int, v float64) float64 {
	if e.filters[m] != nil {
		return e.filters[m].Process(v)
	}
	return v
}

// markInvalid records [start, end) as untrustworthy, merging with a
// directly adjacent previous range.
func (e *Engine) markInvalid(start, end int) {
	if n := len(e.invalid); n > 0 && e.invalid[n-1].end == start {
		e.invalid[n-1].end = end
		return
	}
	e.invalid = append(e.invalid, sampleRange{start, end})
}

// onIMU ingests one IMU row: NaN rows are shed, out-of-order rows are
// sorted in if their window is still pending and dropped otherwise.
func (e *Engine) onIMU(s IMUSample) {
	telemetryIMU.Inc()
	if !finiteTime(s.Time) || !s.Accel.IsFinite() || !finiteQuat(s.Att) {
		telemetryNaN.Inc()
		return
	}
	if s.Time >= e.imuWM {
		e.imuBuf = append(e.imuBuf, s)
		e.imuWM = s.Time
	} else {
		telemetryReordered.Inc()
		if s.Time < float64(e.nextWin)*e.sig.HopSeconds {
			return // its windows were already decided
		}
		i := len(e.imuBuf)
		for i > 0 && e.imuBuf[i-1].Time > s.Time {
			i--
		}
		e.imuBuf = append(e.imuBuf, IMUSample{})
		copy(e.imuBuf[i+1:], e.imuBuf[i:])
		e.imuBuf[i] = s
	}
	if len(e.imuBuf) > maxTelemetryBuffer {
		// Evicting a row the escalation replay might need would break
		// replay exactness: leave the fast path first (which prunes the
		// backlog), then evict only if the buffer is still over.
		e.escalate()
		if len(e.imuBuf) > maxTelemetryBuffer {
			e.imuBuf = e.imuBuf[1:]
			e.imuEvict++
			telemetryEvicted.Inc()
		}
	}
}

// onGPS ingests one GPS fix; the first finite fix seeds both KF variants
// (the batch pipeline's v0 = Telemetry[0].GPSVel).
func (e *Engine) onGPS(s GPSSample) {
	telemetryGPS.Inc()
	if !finiteTime(s.Time) || !s.Vel.IsFinite() || !s.Pos.IsFinite() {
		telemetryNaN.Inc()
		return
	}
	if e.gpsAO.est == nil {
		if err := e.gpsAO.init(s.Vel); err != nil && e.err == nil {
			e.err = err
		}
		if err := e.gpsAI.init(s.Vel); err != nil && e.err == nil {
			e.err = err
		}
	}
	if s.Time >= e.gpsWM {
		e.gpsBuf = append(e.gpsBuf, s)
		e.gpsWM = s.Time
	} else {
		telemetryReordered.Inc()
		if s.Time < float64(e.nextWin)*e.sig.HopSeconds {
			return
		}
		i := len(e.gpsBuf)
		for i > 0 && e.gpsBuf[i-1].Time > s.Time {
			i--
		}
		e.gpsBuf = append(e.gpsBuf, GPSSample{})
		copy(e.gpsBuf[i+1:], e.gpsBuf[i:])
		e.gpsBuf[i] = s
	}
	if len(e.gpsBuf) > maxTelemetryBuffer {
		e.escalate()
		if len(e.gpsBuf) > maxTelemetryBuffer {
			e.gpsBuf = e.gpsBuf[1:]
			e.gpsEvict++
			telemetryEvicted.Inc()
		}
	}
}

// advance processes every window that has become decidable. A window is
// audio-ready under exactly the batch predicate (its samples are all
// written AND t0+window fits the duration streamed so far) and
// telemetry-ready when both telemetry watermarks passed its end (or the
// stream closed). flush forces pending audio-ready windows through with
// whatever telemetry arrived — used at end of stream, where the buffers
// hold everything that will ever arrive.
func (e *Engine) advance(flush bool) {
	win := e.sig.WindowSeconds
	hop := e.sig.HopSeconds
	total := int(win * e.rate)
	for {
		t0 := float64(e.nextWin) * hop
		start := int(t0 * e.rate)
		endT := t0 + win
		if start+total > e.written || endT > float64(e.written)/e.rate {
			break // audio not complete for this window yet (or ever)
		}
		if !flush {
			telReady := (e.imuDone || e.imuWM >= endT) && (e.gpsDone || e.gpsWM >= endT)
			if !telReady {
				lag := float64(e.written)/e.rate - endT
				lagGauge.Set(lag)
				if lag <= e.cfg.MaxLagSeconds {
					break // wait for telemetry to catch up
				}
				// Telemetry starved beyond the horizon: skip the window
				// so the audio ring stays bounded. Starvation is doubt —
				// the fast path hands the stream to the full pipeline
				// first so the skip happens in full-pipeline state.
				e.escalate()
				windowsStarved.Inc()
				e.bumpSkipped()
				e.nextWin++
				e.prune()
				continue
			}
		}
		if e.fastpath() {
			if e.nextWin-e.triFullWin < maxFastpathBacklogWindows && e.screenWindow(t0, start, total) {
				windowsScreened.Inc()
				e.mu.Lock()
				e.status.Windows++
				e.status.LastWindowEnd = endT
				e.mu.Unlock()
				e.nextWin++
				e.prune()
				continue
			}
			// Doubt (or backlog bound): replay the screened backlog
			// through the full pipeline, then process this window there.
			e.escalate()
		}
		e.processWindow(e.nextWin, t0, start, total)
		e.nextWin++
		e.prune()
	}
}

// fastpath reports whether the triage screening tier is deciding
// windows (attached and not yet escalated).
func (e *Engine) fastpath() bool { return e.tri != nil && !e.triEscalated }

// screenWindow runs the triage tier over one ready window; false means
// the window — and with it the stream — must escalate. Every condition
// the full pipeline treats specially (pending engine error, dropout
// overlap, missing IMU rows, unusable features) is doubt.
func (e *Engine) screenWindow(t0 float64, start, total int) bool {
	if e.err != nil || e.overlapsInvalid(start, start+total) {
		return false
	}
	endT := t0 + e.sig.WindowSeconds
	imuWin := e.imuWindow(t0, endT)
	if len(imuWin) == 0 {
		return false
	}
	gpsWin := e.gpsWindow(t0, endT)
	imu := make([]triage.IMUPoint, len(imuWin))
	for i, s := range imuWin {
		imu[i] = triage.IMUPoint{Accel: s.Accel, Gyro: s.Gyro}
	}
	gps := make([]triage.GPSPoint, len(gpsWin))
	for i, s := range gpsWin {
		gps[i] = triage.GPSPoint{Time: s.Time, Pos: s.Pos, Vel: s.Vel}
	}
	off := start - e.base
	features := e.tri.Config().Features.Features
	if e.sig.Precision == soundboost.Float32 {
		features = e.tri.Config().Features.Features32
	}
	feat := features(e.buf[0][off:off+total], e.rate, imu, gps)
	return e.tri.Classify(feat).Benign
}

// escalate permanently abandons the fast path: every screened window is
// replayed through the full pipeline from the retained buffers. The
// screened backlog is frozen — late telemetry for decided windows is
// rejected at ingest and dropout ranges only ever grow at the write
// head — so the replay reproduces exactly the state the full pipeline
// would have reached had it run from the start. A no-op once escalated
// or when no tier is attached.
func (e *Engine) escalate() {
	if !e.fastpath() {
		return
	}
	e.triEscalated = true
	triageEscalations.Inc()
	total := int(e.sig.WindowSeconds * e.rate)
	for w := e.triFullWin; w < e.nextWin; w++ {
		t0 := float64(w) * e.sig.HopSeconds
		e.processWindow(w, t0, int(t0*e.rate), total)
	}
	e.triFullWin = e.nextWin
	e.prune()
}

// processWindow runs one signature window (index winIdx, start time t0)
// through both RCA stages. Live processing passes winIdx = e.nextWin;
// an escalation replay passes the historical index.
func (e *Engine) processWindow(winIdx int, t0 float64, start, total int) {
	endT := t0 + e.sig.WindowSeconds
	if !e.cfg.GapFill && e.overlapsInvalid(start, start+total) {
		windowsSkippedGap.Inc()
		e.bumpSkipped()
		return
	}
	span := featureTimer.Start()
	var chans [acoustics.NumMics][]float64
	off := start - e.base
	for m := range chans {
		chans[m] = e.buf[m][off : off+total]
	}
	feat := e.sig.AcousticWindow(chans, e.rate)
	span.Stop()
	if feat == nil {
		windowsRejected.Inc()
		e.bumpSkipped()
		return
	}
	imuWin := e.imuWindow(t0, endT)
	if len(imuWin) == 0 {
		// The batch pipeline skips telemetry-less windows in both stages.
		windowsRejected.Inc()
		e.bumpSkipped()
		return
	}
	if e.sig.AttitudeFeatures {
		var roll, pitch float64
		for _, s := range imuWin {
			r, p, _ := s.Att.Euler()
			roll += r
			pitch += p
		}
		n := float64(len(imuWin))
		feat = append(feat, roll/n, pitch/n)
	}
	pred := e.an.Model.Predict(feat)

	// Stage 1: per-sample z-axis residuals into the KS period monitor.
	vals := make([]float64, len(imuWin))
	for i, s := range imuWin {
		vals[i] = pred.Z - s.Accel.Z
	}
	e.imuMon.addWindow(t0, vals)

	// Stage 2: window-mean observation into both KF variants. Both run
	// from the start so the verdict can switch variants retroactively
	// cleanly — exactly the batch selection semantics.
	if gpsWin := e.gpsWindow(t0, endT); len(gpsWin) > 0 {
		att := imuWin[len(imuWin)/2].Att
		var imuSum mathx.Vec3
		for _, s := range imuWin {
			imuSum = imuSum.Add(s.Accel)
		}
		imuBody := imuSum.Scale(1 / float64(len(imuWin)))
		var gpsSum mathx.Vec3
		for _, s := range gpsWin {
			gpsSum = gpsSum.Add(s.Vel)
		}
		o := gpsObs{
			winIdx:   winIdx,
			t:        endT,
			audioNED: att.Rotate(pred).Add(e.gravity),
			imuNED:   att.Rotate(imuBody).Add(e.gravity),
			gpsVel:   gpsSum.Scale(1 / float64(len(gpsWin))),
		}
		e.gpsAO.add(o)
		e.gpsAI.add(o)
	}
	windowsEmitted.Inc()

	e.mu.Lock()
	e.status.Windows++
	e.status.LastWindowEnd = endT
	e.status.IMUAttacked = e.imuMon.verdict.Attacked
	active := e.gpsAI
	e.status.ActiveMode = e.an.GPSAudioIMU.Mode()
	if e.imuMon.verdict.Attacked {
		active = e.gpsAO
		e.status.ActiveMode = e.an.GPSAudioOnly.Mode()
	}
	e.status.GPSAttacked = active.verdict.Attacked
	e.status.RunningError = active.monitor.Mean()
	e.status.PeakError = active.verdict.PeakError
	e.status.Threshold = active.threshold
	e.mu.Unlock()
}

func (e *Engine) bumpSkipped() {
	e.mu.Lock()
	e.status.Skipped++
	e.mu.Unlock()
}

// imuWindow returns the buffered IMU samples with time in [t0, t1) —
// the same half-open interval as dataset.Flight.TelemetryBetween.
func (e *Engine) imuWindow(t0, t1 float64) []IMUSample {
	var out []IMUSample
	for _, s := range e.imuBuf {
		if s.Time >= t1 {
			break
		}
		if s.Time >= t0 {
			out = append(out, s)
		}
	}
	return out
}

func (e *Engine) gpsWindow(t0, t1 float64) []GPSSample {
	var out []GPSSample
	for _, s := range e.gpsBuf {
		if s.Time >= t1 {
			break
		}
		if s.Time >= t0 {
			out = append(out, s)
		}
	}
	return out
}

// overlapsInvalid reports whether [start, end) intersects a gap-filled or
// non-finite sample range.
func (e *Engine) overlapsInvalid(start, end int) bool {
	for _, r := range e.invalid {
		if r.start < end && start < r.end {
			return true
		}
	}
	return false
}

// prune discards buffered audio and telemetry no window can need again:
// everything strictly before the next window's start — or, while the
// triage fast path is active, before the first window the full pipeline
// has not consumed, since an escalation replay needs the screened
// backlog intact. This (plus the starvation skip in advance and the
// fast-path backlog bound) is what bounds engine memory.
func (e *Engine) prune() {
	pruneWin := e.nextWin
	if e.fastpath() && e.triFullWin < pruneWin {
		pruneWin = e.triFullWin
	}
	t0 := float64(pruneWin) * e.sig.HopSeconds
	newBase := int(t0 * e.rate)
	if cut := newBase - e.base; cut > 0 {
		for m := range e.buf {
			e.buf[m] = append(e.buf[m][:0:0], e.buf[m][cut:]...)
		}
		e.base = newBase
	}
	keep := e.invalid[:0]
	for _, r := range e.invalid {
		if r.end > e.base {
			keep = append(keep, r)
		}
	}
	e.invalid = keep
	cutIMU := 0
	for cutIMU < len(e.imuBuf) && e.imuBuf[cutIMU].Time < t0 {
		cutIMU++
	}
	if cutIMU > 0 {
		e.imuBuf = append(e.imuBuf[:0:0], e.imuBuf[cutIMU:]...)
	}
	cutGPS := 0
	for cutGPS < len(e.gpsBuf) && e.gpsBuf[cutGPS].Time < t0 {
		cutGPS++
	}
	if cutGPS > 0 {
		e.gpsBuf = append(e.gpsBuf[:0:0], e.gpsBuf[cutGPS:]...)
	}
}

// finalize assembles the report with the batch pipeline's stage-2
// selection and cause attribution. A stream that screened at least one
// window and never escalated finalizes with the cheap path-independent
// benign report; a zero-window or errored fast-path stream escalates
// first so the report matches the triage-disabled engine exactly.
func (e *Engine) finalize() (soundboost.Report, error) {
	if e.fastpath() {
		if e.err == nil && e.nextWin > e.triFullWin {
			triageFastReports.Inc()
			e.mu.Lock()
			e.status.IMUAttacked = false
			e.status.GPSAttacked = false
			e.status.ActiveMode = e.an.GPSAudioIMU.Mode()
			e.status.Threshold = e.an.GPSAudioIMU.Threshold()
			e.mu.Unlock()
			return soundboost.FastBenignReport(e.cfg.FlightName, e.an), nil
		}
		e.escalate()
	}
	imuV := e.imuMon.finalize()
	gps := e.gpsAI
	mode := e.an.GPSAudioIMU.Mode()
	if imuV.Attacked {
		gps = e.gpsAO
		mode = e.an.GPSAudioOnly.Mode()
	}
	gpsV, gpsErr := gps.finalize()
	if gpsErr != nil && e.err == nil {
		e.err = gpsErr
	}
	report := soundboost.Report{
		Flight:    e.cfg.FlightName,
		IMU:       imuV,
		GPS:       gpsV,
		GPSMode:   mode,
		Precision: e.an.Precision(),
	}
	switch {
	case imuV.Attacked && gpsV.Attacked:
		report.Cause = soundboost.CauseIMUAndGPS
	case imuV.Attacked:
		report.Cause = soundboost.CauseIMU
	case gpsV.Attacked:
		report.Cause = soundboost.CauseGPS
	default:
		report.Cause = soundboost.CauseNone
	}
	e.mu.Lock()
	e.status.IMUAttacked = imuV.Attacked
	e.status.GPSAttacked = gpsV.Attacked
	e.status.ActiveMode = mode
	e.status.PeakError = gpsV.PeakError
	e.status.Threshold = gpsV.Threshold
	e.mu.Unlock()
	return report, e.err
}

func finiteTime(t float64) bool { return !math.IsNaN(t) && !math.IsInf(t, 0) }

func finiteQuat(q mathx.Quat) bool {
	return !math.IsNaN(q.W+q.X+q.Y+q.Z) && !math.IsInf(q.W+q.X+q.Y+q.Z, 0)
}
