package stream

import soundboost "soundboost/internal/core"

// Option configures the streaming engine built by New. Options are
// applied in order over the zero Config, so later options win and the
// documented Config defaults fill whatever no option sets.
type Option func(*Config)

// WithTopics overrides the bus topic names the engine subscribes to.
// Empty strings keep the defaults (TopicAudio, TopicIMU, TopicGPS).
func WithTopics(audio, imu, gps string) Option {
	return func(c *Config) {
		c.AudioTopic = audio
		c.IMUTopic = imu
		c.GPSTopic = gps
	}
}

// WithBuffer sets the per-subscription channel depth. The bus sheds the
// oldest message when a buffer overflows, so size this to the burstiness
// of the link, not the flight length (default 1024).
func WithBuffer(depth int) Option {
	return func(c *Config) { c.Buffer = depth }
}

// WithLagHorizon bounds how far (seconds) the audio stream may run ahead
// of the telemetry watermark before a pending window is skipped as
// starved (default 10 s). This is what bounds engine memory when a
// telemetry stream stalls.
func WithLagHorizon(seconds float64) Option {
	return func(c *Config) { c.MaxLagSeconds = seconds }
}

// WithGapFill processes windows overlapping an audio dropout using the
// zero-filled gap samples instead of skipping them (default false).
func WithGapFill(process bool) Option {
	return func(c *Config) { c.GapFill = process }
}

// WithFlightName labels the produced report.
func WithFlightName(name string) Option {
	return func(c *Config) { c.FlightName = name }
}

// WithTriageDisabled forces the full pipeline on every window even when
// the analyzer carries a screening tier (the -no-triage escape hatch).
func WithTriageDisabled(disabled bool) Option {
	return func(c *Config) { c.DisableTriage = disabled }
}

// WithPrecision runs the stream's signature/inference hot path under the
// given precision: New derives a threshold-preserving precision clone of
// the analyzer (Analyzer.WithPrecision), so verdict thresholds are
// unchanged and the report records the mode it ran under. The zero value
// keeps the analyzer's own configured mode.
func WithPrecision(p soundboost.Precision) Option {
	return func(c *Config) { c.Precision = p }
}
