package stream

import (
	soundboost "soundboost/internal/core"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/stats"
)

// maxRejectedVals bounds the residual pool retained for the AttackStd
// estimate on an endless attacked stream; past it the spread estimate
// freezes on the first samples rather than growing without bound.
const maxRejectedVals = 1 << 20

// imuMonitor is the incremental mirror of IMUDetector.Detect: it holds a
// ring of the last PeriodWindows window-residual sets and emits one
// KS-test period per completed window, applying the same pooling,
// thresholds, consecutive-period logic, and attack-spread accounting as
// the batch sweep. On an identical window sequence its verdict is
// identical to the batch detector's.
type imuMonitor struct {
	cfg     soundboost.IMUDetectorConfig
	benign  stats.Normal
	statThr float64
	stdThr  float64
	winSec  float64

	ring        []imuWindow
	consecutive int
	verdict     soundboost.IMUVerdict
	// rejectedVals pools residuals of rejected periods (with the batch
	// sweep's overlap duplicates) for the final AttackStd.
	rejectedVals []float64
}

type imuWindow struct {
	start float64
	vals  []float64
}

func newIMUMonitor(d *soundboost.IMUDetector, winSec float64) *imuMonitor {
	cfg := d.Config()
	if cfg.PeriodWindows < 1 {
		cfg.PeriodWindows = 1
	}
	return &imuMonitor{
		cfg:     cfg,
		benign:  d.BenignDistribution(),
		statThr: d.StatThreshold(),
		stdThr:  d.StdThreshold(),
		winSec:  winSec,
	}
}

// addWindow feeds the residuals of one completed signature window
// (window start time and per-IMU-sample prediction residuals).
func (m *imuMonitor) addWindow(start float64, vals []float64) {
	span := imuPeriodTimer.Start()
	defer span.Stop()
	m.ring = append(m.ring, imuWindow{start: start, vals: vals})
	if len(m.ring) > m.cfg.PeriodWindows {
		m.ring = m.ring[1:]
	}
	if len(m.ring) < m.cfg.PeriodWindows {
		return
	}
	var pool []float64
	for _, w := range m.ring {
		pool = append(pool, w.vals...)
	}
	// Same skip conditions as the batch periodStats: a too-small or
	// untestable pool emits no period and does not reset the
	// consecutive-rejection counter.
	if len(pool) < m.cfg.MinResiduals {
		return
	}
	res, err := stats.KSTestNormal(pool, m.benign)
	if err != nil {
		return
	}
	std := stats.StdDev(pool)
	m.verdict.WindowsTested++
	if res.Statistic > m.statThr || std > m.stdThr {
		m.verdict.WindowsRejected++
		m.consecutive++
		if len(m.rejectedVals) < maxRejectedVals {
			m.rejectedVals = append(m.rejectedVals, pool...)
		}
		if m.consecutive >= m.cfg.DetectPeriods && !m.verdict.Attacked {
			m.verdict.Attacked = true
			m.verdict.DetectionTime = start + m.winSec
		}
	} else {
		m.consecutive = 0
	}
}

// finalize returns the accumulated verdict.
func (m *imuMonitor) finalize() soundboost.IMUVerdict {
	v := m.verdict
	if v.Attacked && len(m.rejectedVals) > 1 {
		v.AttackStd = stats.StdDev(m.rejectedVals)
	}
	return v
}

// gpsObs is one per-window observation of the GPS stage — the batch
// runFlight's windowObs plus the window index, which lets the monitor
// detect holes left by skipped windows (audio dropouts, starvation) and
// restart its analysis segment across them.
type gpsObs struct {
	winIdx   int
	t        float64
	audioNED mathx.Vec3
	imuNED   mathx.Vec3
	gpsVel   mathx.Vec3
}

// gpsMonitor is the incremental mirror of GPSDetector.runFlight + Detect:
// it buffers observations through the alignment phase, estimates the
// constant acceleration biases against GPS velocity deltas exactly as the
// batch code does, then replays the buffer and continues stepping the KF,
// the bias EWMA, and the running-mean error monitor live. On an identical
// observation sequence its verdict is identical to the batch detector's.
type gpsMonitor struct {
	cfg       soundboost.GPSDetectorConfig
	threshold float64
	hop       float64

	est     *kalman.VelocityEstimator
	monitor stats.RunningMean
	aligned bool
	buf     []gpsObs
	alignN  int

	audioBias  mathx.Vec3
	imuBias    mathx.Vec3
	idx        int
	prevGPSVel mathx.Vec3

	// seen/lastWinIdx detect holes in the observation sequence (skipped
	// windows). The error monitor is calibrated on contiguous benign
	// windows, so a hole ends the current analysis segment rather than
	// stepping the KF across it with a distorted timebase.
	seen       bool
	lastWinIdx int

	verdict soundboost.GPSVerdict
	err     error
}

func newGPSMonitor(d *soundboost.GPSDetector, hop float64) *gpsMonitor {
	return &gpsMonitor{
		cfg:       d.Config(),
		threshold: d.Threshold(),
		hop:       hop,
	}
}

// init seeds the KF from the first GPS fix (pre-attack per the threat
// model), mirroring the batch v0 = Telemetry[0].GPSVel.
func (g *gpsMonitor) init(v0 mathx.Vec3) error {
	if g.est != nil {
		return nil
	}
	est, err := kalman.NewVelocityEstimator(g.cfg.Velocity, v0)
	if err != nil {
		return err
	}
	g.est = est
	g.monitor = stats.RunningMean{Alpha: g.cfg.ErrorAlpha}
	g.verdict.Threshold = g.threshold
	return nil
}

// add feeds one window observation in window order. A hole in the
// window sequence (audio dropout or starvation skip) pauses the monitor:
// the current segment is closed with batch semantics and a fresh
// alignment phase begins on the next contiguous run, re-anchored at its
// first GPS reading. The verdict accumulates across segments. A clean
// stream is one segment, bit-identical to the batch recursion.
func (g *gpsMonitor) add(o gpsObs) {
	span := gpsStepTimer.Start()
	defer span.Stop()
	if g.err != nil {
		return
	}
	if g.seen && o.winIdx > g.lastWinIdx+1 {
		g.restartSegment(o)
		if g.err != nil {
			return
		}
	}
	g.seen = true
	g.lastWinIdx = o.winIdx
	if !g.aligned {
		if g.cfg.AlignSeconds > 0 {
			if len(g.buf) == 0 || o.t-g.buf[0].t <= g.cfg.AlignSeconds {
				g.buf = append(g.buf, o)
				return
			}
			// o is the first observation past the alignment horizon:
			// finalize the bias estimate and catch up.
			g.finishAlign()
		} else {
			g.aligned = true
		}
	}
	g.step(o)
}

// finishAlign computes the alignment-phase biases from the buffered
// observations (the batch alignN loop verbatim) and replays the buffer
// through the KF. During the replayed steps the error monitor stays off,
// exactly as the batch main loop gates on i >= alignN.
func (g *gpsMonitor) finishAlign() {
	g.aligned = true
	g.alignN = len(g.buf)
	if g.cfg.AlignSeconds > 0 && g.alignN > 1 {
		var audioInt, imuInt mathx.Vec3
		for _, o := range g.buf {
			audioInt = audioInt.Add(o.audioNED.Scale(g.hop))
			imuInt = imuInt.Add(o.imuNED.Scale(g.hop))
		}
		alignT := float64(g.alignN) * g.hop
		dv := g.buf[g.alignN-1].gpsVel.Sub(g.buf[0].gpsVel)
		g.audioBias = audioInt.Sub(dv).Scale(1 / alignT)
		g.imuBias = imuInt.Sub(dv).Scale(1 / alignT)
	}
	for _, o := range g.buf {
		g.step(o)
	}
	g.buf = nil
}

func (g *gpsMonitor) step(o gpsObs) {
	if g.est == nil || g.err != nil {
		// No GPS fix was ever seen: there is nothing to fuse against.
		return
	}
	i := g.idx
	if g.cfg.BiasTauSeconds > 0 && i >= 1 && i >= g.alignN {
		gpsAccel := o.gpsVel.Sub(g.prevGPSVel).Scale(1 / g.hop)
		alpha := g.hop / g.cfg.BiasTauSeconds
		g.audioBias = g.audioBias.Add(o.audioNED.Sub(gpsAccel).Sub(g.audioBias).Scale(alpha))
		g.imuBias = g.imuBias.Add(o.imuNED.Sub(gpsAccel).Sub(g.imuBias).Scale(alpha))
	}
	if err := g.est.Step(o.audioNED.Sub(g.audioBias), o.imuNED.Sub(g.imuBias), g.hop); err != nil {
		g.err = err
		return
	}
	if i >= g.alignN {
		running := g.monitor.Add(g.est.Velocity().Sub(o.gpsVel).Norm())
		if running > g.verdict.PeakError {
			g.verdict.PeakError = running
		}
		if running > g.threshold && !g.verdict.Attacked {
			g.verdict.Attacked = true
			g.verdict.DetectionTime = o.t
		}
	}
	g.prevGPSVel = o.gpsVel
	g.idx++
}

// restartSegment closes the segment interrupted by a window hole (a
// partial alignment phase finishes batch-style, with monitoring off) and
// re-enters alignment for the next contiguous run, re-anchoring the KF
// at the new segment's first GPS reading. The accumulated verdict is
// kept; the running-mean monitor restarts because its calibration only
// covers contiguous windows.
func (g *gpsMonitor) restartSegment(o gpsObs) {
	if !g.aligned {
		g.finishAlign()
	}
	if g.err != nil {
		return
	}
	gpsSegments.Inc()
	g.aligned = false
	g.buf = nil
	g.alignN = 0
	g.idx = 0
	g.audioBias = mathx.Vec3{}
	g.imuBias = mathx.Vec3{}
	g.prevGPSVel = mathx.Vec3{}
	g.monitor.Reset()
	if g.est != nil {
		est, err := kalman.NewVelocityEstimator(g.cfg.Velocity, o.gpsVel)
		if err != nil {
			g.err = err
			return
		}
		g.est = est
	}
}

// flush finalizes a stream that ended inside the alignment phase (the
// batch equivalent: a flight shorter than AlignSeconds still steps the
// KF with monitoring off).
func (g *gpsMonitor) flush() {
	if !g.aligned {
		g.finishAlign()
	}
}

// finalize returns the accumulated verdict and any KF error.
func (g *gpsMonitor) finalize() (soundboost.GPSVerdict, error) {
	g.flush()
	v := g.verdict
	v.Threshold = g.threshold
	return v, g.err
}
