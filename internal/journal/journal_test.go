package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soundboost/api"
)

func chunk(seq int, close bool) api.FramesRequest {
	return api.FramesRequest{
		Seq:   seq,
		IMU:   []api.IMUSample{{TimeSeconds: float64(seq)}},
		Close: close,
	}
}

func writeSession(t *testing.T, st *Store, id string, n int) *Session {
	t.Helper()
	sj, err := st.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := sj.WriteMeta(Meta{ID: id, State: api.SessionOpen, Req: api.SessionRequest{Flight: id, SampleRateHz: 4000}}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := sj.AppendChunk(chunk(i, false)); err != nil {
			t.Fatal(err)
		}
	}
	return sj
}

// TestRoundTrip pins the append → load cycle: every appended chunk comes
// back in order, the meta snapshot survives rewrites, and ids load in
// sorted order.
func TestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := writeSession(t, st, "s-00000002", 2)
	a := writeSession(t, st, "s-00000001", 3)
	if err := a.WriteMeta(Meta{ID: "s-00000001", State: api.SessionDraining, LastSeq: 3}); err != nil {
		t.Fatal(err)
	}
	a.CloseChunks()
	b.CloseChunks()

	recs, errs := st.Load()
	if len(errs) != 0 {
		t.Fatalf("load errs: %v", errs)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d sessions, want 2", len(recs))
	}
	if recs[0].Meta.ID != "s-00000001" || recs[1].Meta.ID != "s-00000002" {
		t.Fatalf("load order %q, %q; want sorted ids", recs[0].Meta.ID, recs[1].Meta.ID)
	}
	if recs[0].Meta.State != api.SessionDraining || recs[0].Meta.LastSeq != 3 {
		t.Fatalf("meta rewrite lost: %+v", recs[0].Meta)
	}
	if len(recs[0].Chunks) != 3 || len(recs[1].Chunks) != 2 {
		t.Fatalf("chunks = %d, %d; want 3, 2", len(recs[0].Chunks), len(recs[1].Chunks))
	}
	for i, c := range recs[0].Chunks {
		if c.Seq != i+1 {
			t.Fatalf("chunk %d has seq %d", i, c.Seq)
		}
	}
	if recs[0].Corrupt != "" || recs[1].Corrupt != "" {
		t.Fatalf("clean logs flagged corrupt: %q, %q", recs[0].Corrupt, recs[1].Corrupt)
	}
}

// TestTornTailTolerated pins the crash-mid-append contract: a garbage
// FINAL line is end-of-log — the chunk was never acknowledged — and the
// session is NOT corrupt.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSession(t, st, "s-00000001", 2).CloseChunks()
	f, err := os.OpenFile(st.ChunksPath("s-00000001"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"imu":[{"time_se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec, err := st.LoadSession("s-00000001")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt != "" {
		t.Fatalf("torn tail flagged corrupt: %q", rec.Corrupt)
	}
	if len(rec.Chunks) != 2 {
		t.Fatalf("recovered %d chunks, want 2 (torn tail dropped)", len(rec.Chunks))
	}
}

// TestMidLogCorruptionSurfaced is the regression test for the silent
// truncation hole: damage BEFORE the final line means acknowledged
// chunks are unreadable, and the load must say so instead of silently
// replaying a prefix.
func TestMidLogCorruptionSurfaced(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSession(t, st, "s-00000001", 4).CloseChunks()

	// Smash chunk 2 in place: the log now has a valid line, garbage, then
	// two more valid lines.
	path := st.ChunksPath("s-00000001")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("fixture has %d lines, want 4", len(lines))
	}
	lines[1] = lines[1][:len(lines[1])/2] // torn in the middle of the log
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := st.LoadSession("s-00000001")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt == "" {
		t.Fatal("mid-log corruption not surfaced")
	}
	if !strings.Contains(rec.Corrupt, "line 2") {
		t.Fatalf("corruption cause %q does not name the damaged line", rec.Corrupt)
	}
	if len(rec.Chunks) != 1 {
		t.Fatalf("recovered %d chunks before the damage, want 1", len(rec.Chunks))
	}
}

// TestRemove deletes both files so an evicted session cannot be
// resurrected by the next recovery.
func TestRemove(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sj := writeSession(t, st, "s-00000001", 1)
	sj.Remove()
	if _, err := os.Stat(st.MetaPath("s-00000001")); !os.IsNotExist(err) {
		t.Fatalf("meta still present: %v", err)
	}
	if _, err := os.Stat(st.ChunksPath("s-00000001")); !os.IsNotExist(err) {
		t.Fatalf("chunks still present: %v", err)
	}
	recs, errs := st.Load()
	if len(recs) != 0 || len(errs) != 0 {
		t.Fatalf("load after remove: %d recs, errs %v", len(recs), errs)
	}
}

// TestAppendAfterClose keeps the lifecycle strict: appends after
// CloseChunks must error, not silently write nowhere.
func TestAppendAfterClose(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sj := writeSession(t, st, "s-00000001", 1)
	sj.CloseChunks()
	if err := sj.AppendChunk(chunk(2, false)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestPresenceMatrix pins how every combination of meta and chunk-log
// presence loads. The load-bearing rows are the partially-created ones:
// an empty meta or an orphan chunk log is the debris of a crash inside
// session creation and must read as ErrEmptyJournal (a clean new
// session), never as corruption — and a valid meta with no chunk log at
// all is simply a session that never saw frames.
func TestPresenceMatrix(t *testing.T) {
	const id = "s-00000001"
	validMeta := func(st *Store) {
		sj, err := st.Session(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := sj.WriteMeta(Meta{ID: id, State: api.SessionOpen, Req: api.SessionRequest{Flight: id, SampleRateHz: 4000}}); err != nil {
			t.Fatal(err)
		}
		sj.CloseChunks()
		// Session() creates the chunk log; rows that want it absent or
		// reshaped overwrite below.
	}
	cases := []struct {
		name      string
		setup     func(st *Store)
		wantEmpty bool
		wantErr   bool // a non-empty load error
		wantRecs  int  // sessions recovered by Load
		wantChunk int  // chunks on the recovered session
	}{
		{
			name:  "meta valid, chunk log absent",
			setup: func(st *Store) { validMeta(st); os.Remove(st.ChunksPath(id)) },
			// A session that never saw frames: loads clean with zero chunks.
			wantRecs: 1,
		},
		{
			name:     "meta valid, chunk log empty",
			setup:    func(st *Store) { validMeta(st) },
			wantRecs: 1,
		},
		{
			name: "meta valid, chunk log populated",
			setup: func(st *Store) {
				sj := writeSession(t, st, id, 2)
				sj.CloseChunks()
			},
			wantRecs:  1,
			wantChunk: 2,
		},
		{
			name: "meta empty, chunk log absent",
			setup: func(st *Store) {
				if err := os.WriteFile(st.MetaPath(id), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantEmpty: true,
		},
		{
			name: "meta empty, chunk log present",
			setup: func(st *Store) {
				if err := os.WriteFile(st.MetaPath(id), []byte(" \n"), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(st.ChunksPath(id), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantEmpty: true,
		},
		{
			name: "meta absent, chunk log present",
			setup: func(st *Store) {
				if err := os.WriteFile(st.ChunksPath(id), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantEmpty: true,
		},
		{
			name:  "meta absent, chunk log absent",
			setup: func(st *Store) {},
			// Not a session at all: LoadSession reports not-found, Load
			// reports nothing.
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			tc.setup(st)

			rec, err := st.LoadSession(id)
			switch {
			case tc.wantEmpty:
				if !errors.Is(err, ErrEmptyJournal) {
					t.Fatalf("LoadSession err = %v, want ErrEmptyJournal", err)
				}
				var emptyErr *EmptyJournalError
				if !errors.As(err, &emptyErr) || emptyErr.ID != id {
					t.Fatalf("LoadSession err = %v, want EmptyJournalError carrying %q", err, id)
				}
			case tc.wantErr:
				if err == nil {
					t.Fatalf("LoadSession succeeded: %+v", rec)
				}
				if errors.Is(err, ErrEmptyJournal) {
					t.Fatalf("missing session misreported as empty journal: %v", err)
				}
			default:
				if err != nil {
					t.Fatalf("LoadSession: %v", err)
				}
				if rec.Corrupt != "" {
					t.Fatalf("clean journal flagged corrupt: %q", rec.Corrupt)
				}
				if len(rec.Chunks) != tc.wantChunk {
					t.Fatalf("chunks = %d, want %d", len(rec.Chunks), tc.wantChunk)
				}
			}

			recs, errs := st.Load()
			if len(recs) != tc.wantRecs {
				t.Fatalf("Load recovered %d sessions, want %d (errs %v)", len(recs), tc.wantRecs, errs)
			}
			gotEmpty := false
			for _, lerr := range errs {
				if errors.Is(lerr, ErrEmptyJournal) {
					gotEmpty = true
				}
			}
			if gotEmpty != tc.wantEmpty {
				t.Fatalf("Load empty-journal report = %v, want %v (errs %v)", gotEmpty, tc.wantEmpty, errs)
			}
		})
	}
}

// TestRemoveSession cleans up an empty journal by id — no Session handle
// needed.
func TestRemoveSession(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.MetaPath("s-00000009"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.ChunksPath("s-00000009"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st.RemoveSession("s-00000009")
	if _, err := os.Stat(st.MetaPath("s-00000009")); !os.IsNotExist(err) {
		t.Fatalf("meta still present: %v", err)
	}
	if _, err := os.Stat(st.ChunksPath("s-00000009")); !os.IsNotExist(err) {
		t.Fatalf("chunks still present: %v", err)
	}
}

// TestUnreadableMetaReported keeps the per-session error contract: a
// damaged meta skips that session but reports it.
func TestUnreadableMetaReported(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeSession(t, st, "s-00000001", 1).CloseChunks()
	if err := os.WriteFile(filepath.Join(dir, "s-00000002.meta.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, errs := st.Load()
	if len(recs) != 1 || recs[0].Meta.ID != "s-00000001" {
		t.Fatalf("recs = %+v, want just s-00000001", recs)
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want exactly one", errs)
	}
}
