// Package journal is the durable session-state format shared by the RCA
// service and the fleet gateway: a per-session write-ahead chunk log plus
// an atomically-rewritten meta snapshot. `internal/server` writes it to
// survive crashes (see DESIGN.md "Crash-safe session journal");
// `internal/fleet` reads it back as the transfer format when a session
// migrates or fails over between replicas — the chunk log replayed
// through a fresh engine's normal publish path reproduces the original
// verdict byte-identically.
//
// Two files per session under one directory:
//
//   - <id>.meta.json — the session's identity and lifecycle: the original
//     SessionRequest, current state, highest accepted sequence number,
//     failure cause, and (once finished) the final report. Rewritten
//     atomically (temp file + rename) on every transition, so the file is
//     always a complete, parseable snapshot.
//   - <id>.chunks.jsonl — the write-ahead chunk log: each accepted
//     FramesRequest appended as one JSON line and fsynced BEFORE the
//     chunk is published to the session bus (and so before the client
//     sees its 200). A torn trailing line — the crash arriving mid-write
//     — is treated as end-of-log: the chunk was never acknowledged, so
//     the client will resend it. A malformed line anywhere BEFORE the
//     tail is different: those chunks were acknowledged, so losing them
//     silently would change the verdict — the load surfaces it as a
//     corruption cause and the session must be recovered as failed.
package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"soundboost/api"
)

// ErrEmptyJournal marks a session journal that exists on disk but holds
// no usable state: a zero-byte (or whitespace-only) meta snapshot, or a
// chunk log with no meta beside it. Both are the debris of a crash
// landing inside session creation — before the first atomic meta write
// completed — so nothing was ever acknowledged and nothing is lost.
// Callers must treat the session as a clean new one (recovery skips it,
// a gateway failover replays zero chunks), NOT as corrupt: corruption
// means acknowledged state is unreadable, which this is not.
var ErrEmptyJournal = errors.New("empty session journal")

// EmptyJournalError carries the session id of an empty journal so
// recovery can clean up its leftover files. It matches ErrEmptyJournal
// under errors.Is.
type EmptyJournalError struct{ ID string }

func (e *EmptyJournalError) Error() string {
	return fmt.Sprintf("journal %s: %s", e.ID, ErrEmptyJournal)
}

func (e *EmptyJournalError) Unwrap() error { return ErrEmptyJournal }

// Meta is the durable per-session snapshot.
type Meta struct {
	ID        string             `json:"id"`
	Req       api.SessionRequest `json:"request"`
	State     string             `json:"state"`
	LastSeq   int                `json:"last_seq"`
	FailCause string             `json:"fail_cause,omitempty"`
	// Report holds the final verdict once the session is done — the one
	// piece of state cheaper to persist than to recompute.
	Report *api.Report `json:"report,omitempty"`
	// Engine is the janitor's periodic progress checkpoint. Informational
	// (recovery replays the chunk log rather than trusting it): it lets an
	// operator see how far a crashed session had gotten.
	Engine api.EngineStatus `json:"engine"`
}

// Recovered is one journaled session as read back from disk.
type Recovered struct {
	Meta   Meta
	Chunks []api.FramesRequest
	// Corrupt, when non-empty, records that the chunk log is damaged
	// before its tolerated torn tail: one or more ACKNOWLEDGED chunks are
	// unreadable, so a replay cannot reproduce the session. The owner must
	// surface the session as failed with this cause rather than silently
	// replaying a truncated log.
	Corrupt string
}

// Store is one directory of session journals.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a journal directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// MetaPath returns the meta snapshot path for a session id.
func (s *Store) MetaPath(id string) string { return filepath.Join(s.dir, id+".meta.json") }

// ChunksPath returns the chunk-log path for a session id.
func (s *Store) ChunksPath(id string) string { return filepath.Join(s.dir, id+".chunks.jsonl") }

// Session creates (or reopens for append) a session's journal files.
func (s *Store) Session(id string) (*Session, error) {
	f, err := os.OpenFile(s.ChunksPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal chunks: %w", err)
	}
	return &Session{store: s, id: id, chunks: f}, nil
}

// Load reads every journaled session, in id order. A session whose meta
// is unreadable is skipped (reported in errs) rather than blocking the
// rest of the recovery; chunk-log damage is reported per session via
// Recovered.Corrupt (see the package comment for the torn-tail
// exception). Empty journals — a blank meta, or an orphan chunk log
// whose meta never landed — are reported as EmptyJournalError so the
// caller can clean them up as never-started sessions.
func (s *Store) Load() (sessions []Recovered, errs []error) {
	metas, err := filepath.Glob(filepath.Join(s.dir, "*.meta.json"))
	if err != nil {
		return nil, []error{err}
	}
	sort.Strings(metas)
	seen := make(map[string]bool, len(metas))
	for _, path := range metas {
		seen[strings.TrimSuffix(filepath.Base(path), ".meta.json")] = true
		rec, err := s.loadMeta(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		sessions = append(sessions, rec)
	}
	// Orphan chunk logs: a crash between Session() creating the chunk
	// file and the first WriteMeta leaves a log with no meta. Nothing in
	// it was ever acknowledged (meta lands before the first chunk ack),
	// so surface each as an empty journal, not silently skip the file.
	chunkLogs, err := filepath.Glob(filepath.Join(s.dir, "*.chunks.jsonl"))
	if err != nil {
		return sessions, append(errs, err)
	}
	sort.Strings(chunkLogs)
	for _, path := range chunkLogs {
		id := strings.TrimSuffix(filepath.Base(path), ".chunks.jsonl")
		if !seen[id] {
			errs = append(errs, &EmptyJournalError{ID: id})
		}
	}
	return sessions, errs
}

// LoadSession reads one journaled session by id — the fleet gateway's
// failover path, which transfers a single session rather than a whole
// replica's table. A journal that exists but holds no usable state (see
// ErrEmptyJournal) is reported as such, distinct from both a missing
// session and a corrupt one.
func (s *Store) LoadSession(id string) (Recovered, error) {
	rec, err := s.loadMeta(s.MetaPath(id))
	if err != nil && errors.Is(err, os.ErrNotExist) {
		// No meta: an orphan chunk log beside it means session creation
		// was interrupted before the first meta write — an empty journal,
		// not a missing session.
		if _, serr := os.Stat(s.ChunksPath(id)); serr == nil {
			return Recovered{}, &EmptyJournalError{ID: id}
		}
	}
	return rec, err
}

func (s *Store) loadMeta(path string) (Recovered, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Recovered{}, fmt.Errorf("journal %s: %w", filepath.Base(path), err)
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		// A blank snapshot: the crash landed before the first atomic meta
		// write (or the file was truncated by something outside the
		// atomic-rename protocol). Nothing acknowledged lives here.
		return Recovered{}, &EmptyJournalError{ID: strings.TrimSuffix(filepath.Base(path), ".meta.json")}
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return Recovered{}, fmt.Errorf("journal %s: %w", filepath.Base(path), err)
	}
	if meta.ID == "" {
		return Recovered{}, fmt.Errorf("journal %s: missing session id", filepath.Base(path))
	}
	rec := Recovered{Meta: meta}
	rec.Chunks, rec.Corrupt = readChunkLog(s.ChunksPath(meta.ID))
	return rec, nil
}

// RemoveSession deletes a session's journal files by id — recovery's
// cleanup path for empty journals, which have no Session handle to call
// Remove on.
func (s *Store) RemoveSession(id string) {
	_ = os.Remove(s.MetaPath(id))
	_ = os.Remove(s.ChunksPath(id))
}

// readChunkLog parses a chunk log, distinguishing the tolerated torn
// tail (the final non-empty line fails to parse: the crash landed
// mid-append, nothing acknowledged was lost) from mid-log corruption
// (an earlier line fails: acknowledged chunks are gone — corrupt
// carries the cause and parsing stops at the damage).
func readChunkLog(path string) (chunks []api.FramesRequest, corrupt string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "" // no chunk log at all: a session that never saw frames
	}
	lines := bytes.Split(raw, []byte{'\n'})
	// Find the index of the last non-empty line so a parse failure there
	// can be classified as the torn tail.
	lastNonEmpty := -1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) > 0 {
			lastNonEmpty = i
		}
	}
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var req api.FramesRequest
		if err := json.Unmarshal(line, &req); err != nil {
			if i == lastNonEmpty {
				// Torn tail from a crash mid-append: the chunk was never
				// acknowledged, so dropping it loses nothing the client
				// believes was accepted.
				return chunks, ""
			}
			return chunks, fmt.Sprintf("chunk log corrupt at line %d (before the torn-tail window): %v", i+1, err)
		}
		chunks = append(chunks, req)
	}
	return chunks, ""
}

// Session is one session's writable handle on the journal. Meta writes
// and chunk appends are serialized by mu; the chunk file stays open for
// the session's accepting lifetime.
type Session struct {
	store *Store
	id    string

	mu     sync.Mutex
	chunks *os.File
}

// ID returns the session id this handle journals.
func (sj *Session) ID() string { return sj.id }

// WriteMeta atomically replaces the session's meta snapshot.
func (sj *Session) WriteMeta(m Meta) error {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := sj.store.MetaPath(sj.id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself survives power loss.
	if d, err := os.Open(sj.store.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// AppendChunk durably logs one accepted FramesRequest. It must return
// before the chunk is published or acknowledged — the write-ahead
// ordering is what makes "accepted" mean "survives a crash".
func (sj *Session) AppendChunk(req api.FramesRequest) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.chunks == nil {
		return fmt.Errorf("journal chunk log closed")
	}
	if _, err := sj.chunks.Write(append(raw, '\n')); err != nil {
		return err
	}
	return sj.chunks.Sync()
}

// CloseChunks releases the chunk-log handle once the session stops
// accepting frames (the file itself stays for recovery until Remove).
func (sj *Session) CloseChunks() {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.chunks != nil {
		sj.chunks.Close()
		sj.chunks = nil
	}
}

// Remove deletes the session's journal files (eviction: the session is
// gone from the table, so recovering it would resurrect a ghost).
func (sj *Session) Remove() {
	sj.CloseChunks()
	_ = os.Remove(sj.store.MetaPath(sj.id))
	_ = os.Remove(sj.store.ChunksPath(sj.id))
}
