// Package faults is SoundBoost's documented error set: the sentinel
// errors shared by the analysis pipeline (internal/core), the telemetry
// bus (internal/mavbus), the streaming engine (internal/stream), and the
// RCA service (internal/server). Consolidating them in one leaf package
// gives every layer a single vocabulary that callers can match with
// errors.Is, and gives the HTTP layer a stable mapping from failure kind
// to status code without string inspection.
//
// Each error below documents the condition it names and, where the
// server returns it over the wire, the HTTP status it maps to. Packages
// re-export the sentinels relevant to their own API (core.ErrNoFlight,
// mavbus.ErrClosed, stream.ErrNotAttached) as aliases of the same
// values, so errors.Is matches across layers no matter which name a
// caller imported.
package faults

import "errors"

var (
	// ErrNoFlight is returned by Analyzer.Analyze when given a nil
	// flight or one with no telemetry and no audio — there is nothing to
	// attribute a cause to. HTTP: 422 Unprocessable Entity.
	ErrNoFlight = errors.New("soundboost: nil or empty flight")

	// ErrBusClosed is returned when publishing to or subscribing on a
	// closed mavbus. A server session whose bus has been closed reports
	// it for late frame posts. HTTP: 409 Conflict.
	ErrBusClosed = errors.New("mavbus: bus closed")

	// ErrEngineDetached is returned by stream.Engine.Run when the engine
	// was never attached to a bus, so there are no subscriptions to
	// consume. HTTP: 500 (an internal wiring invariant, never a client
	// fault).
	ErrEngineDetached = errors.New("stream: engine not attached to a bus")

	// ErrSessionNotFound is returned for session ids that do not exist,
	// were evicted, or expired and were swept. HTTP: 404 Not Found.
	ErrSessionNotFound = errors.New("server: session not found")

	// ErrSessionClosed is returned when frames are posted to a session
	// whose stream has already been closed (explicitly, by idle timeout,
	// or by its hard deadline). HTTP: 409 Conflict.
	ErrSessionClosed = errors.New("server: session already closed")

	// ErrSessionOpen is returned when a final report is requested from a
	// session that is still streaming — close the session first. HTTP:
	// 409 Conflict.
	ErrSessionOpen = errors.New("server: session still open")

	// ErrCapacity is returned when the session table is full of live
	// sessions or the batch worker pool has no free slot. HTTP: 429 Too
	// Many Requests with Retry-After.
	ErrCapacity = errors.New("server: at capacity")

	// ErrUnprocessable wraps payloads that parsed as a request but do
	// not decode into a usable flight or frame set. HTTP: 422
	// Unprocessable Entity.
	ErrUnprocessable = errors.New("server: unprocessable payload")

	// ErrBadChunk is returned by api.ChunkFlight for a zero or negative
	// chunk size — the caller asked for an impossible slicing rather than
	// the "single request" behavior (which is an explicit choice, not a
	// degenerate chunk size). Never served over the wire; CLI-side only.
	ErrBadChunk = errors.New("api: chunk seconds must be positive")

	// ErrSeqGap is returned when a frames request carries a sequence
	// number that skips ahead of the session's accepted prefix — an
	// earlier chunk was lost, so accepting this one would silently corrupt
	// the stream. The client must back up to last_seq + 1. HTTP: 409
	// Conflict.
	ErrSeqGap = errors.New("server: frames sequence gap")

	// ErrSessionFailed is returned for any operation on a session whose
	// engine goroutine panicked or died fatally. The failure is isolated
	// to the one session; its cause is recorded in the session status.
	// HTTP: 500 with code "session_failed".
	ErrSessionFailed = errors.New("server: session failed")

	// ErrTimeout is returned when a batch analysis exceeds its request
	// deadline (client disconnect or server-side cap) and the handler
	// abandons it. HTTP: 503 with code "timeout" — the work was shed, not
	// wrong, so the client may retry. The worker-pool slot is released
	// only when the abandoned analysis actually returns.
	ErrTimeout = errors.New("server: analysis timed out")
)
