package soundboost

import "soundboost/internal/obs"

// Stage metrics for the RCA pipeline, resolved once at init and gated
// by obs.Enable. Timer semantics the tests rely on:
//
//   - core.extract.filter fires once per NewExtractor (per-recording
//     low-pass filtering).
//   - core.signature.window fires exactly once per Features call, i.e.
//     once per extracted signature window (including augmented and
//     rejected windows).
//   - core.predict fires once per AcousticModel prediction.
//   - core.rca.imu.detect / core.rca.gps.detect fire once per flight
//     per stage; core.rca.analyze wraps the full two-stage RCA.
//   - core.calibrate.* time the one-off detector calibrations.
var (
	extractFilterTimer = obs.Default.Timer("core.extract.filter")
	windowTimer        = obs.Default.Timer("core.signature.window")
	windowsRejected    = obs.Default.Counter("core.signature.windows_rejected")
	predictTimer       = obs.Default.Timer("core.predict")
	imuDetectTimer     = obs.Default.Timer("core.rca.imu.detect")
	gpsDetectTimer     = obs.Default.Timer("core.rca.gps.detect")
	analyzeTimer       = obs.Default.Timer("core.rca.analyze")
	imuCalibTimer      = obs.Default.Timer("core.calibrate.imu")
	gpsCalibTimer      = obs.Default.Timer("core.calibrate.gps")
	analyzerCalibTimer = obs.Default.Timer("core.calibrate.analyzer")
	reportsIMU         = obs.Default.Counter("core.rca.reports_imu")
	reportsGPS         = obs.Default.Counter("core.rca.reports_gps")
	// core.triage.* cover the screening tier's batch adapter: train fires
	// once per TrainTriage, screen once per screened flight, and fastpath
	// counts flights that short-circuited with the cheap benign verdict.
	triageTrainTimer  = obs.Default.Timer("core.triage.train")
	triageScreenTimer = obs.Default.Timer("core.triage.screen")
	reportsFastpath   = obs.Default.Counter("core.rca.reports_fastpath")
)
