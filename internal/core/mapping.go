package soundboost

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"soundboost/internal/acoustics"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/nn"
	"soundboost/internal/parallel"
)

// MappingConfig controls the sensory-mapping (training) stage (§III-B).
type MappingConfig struct {
	// Signature is the acoustic signature layout.
	Signature SignatureConfig
	// Model selects the regressor family (the paper's best: MobileNetV2,
	// stood in for by ModelMLP).
	Model nn.ModelKind
	// Hidden is the regressor width.
	Hidden int
	// AugmentFactors lists the time-shift augmentation window multipliers
	// (the paper's best configuration: 5x of the 0.5 s window). Each
	// factor > 1 adds one augmented copy of every training window.
	AugmentFactors []float64
	// Train configures the optimisation loop.
	Train nn.TrainConfig
	// Seed drives weight initialisation.
	Seed int64
}

// DefaultMappingConfig returns the paper-tuned configuration.
func DefaultMappingConfig(sig SignatureConfig) MappingConfig {
	return MappingConfig{
		Signature:      sig,
		Model:          nn.ModelMLP,
		Hidden:         64,
		AugmentFactors: []float64{5},
		Train:          nn.TrainConfig{Epochs: 60, BatchSize: 32, LR: 2e-3, Seed: 1},
		Seed:           1,
	}
}

// normalizer standardises features and labels.
type normalizer struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

func fitNormalizer(xs [][]float64) normalizer {
	if len(xs) == 0 {
		return normalizer{}
	}
	dim := len(xs[0])
	n := normalizer{Mean: make([]float64, dim), Std: make([]float64, dim)}
	for _, x := range xs {
		for i, v := range x {
			n.Mean[i] += v
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(len(xs))
	}
	for _, x := range xs {
		for i, v := range x {
			d := v - n.Mean[i]
			n.Std[i] += d * d
		}
	}
	for i := range n.Std {
		n.Std[i] = sqrt(n.Std[i] / float64(len(xs)))
		if n.Std[i] < 1e-9 {
			n.Std[i] = 1
		}
	}
	return n
}

func (n normalizer) apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - n.Mean[i]) / n.Std[i]
	}
	return out
}

func (n normalizer) invert(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v*n.Std[i] + n.Mean[i]
	}
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// AcousticModel is the trained signature → acceleration regressor plus the
// normalisation needed to apply it.
type AcousticModel struct {
	cfg      MappingConfig
	net      *nn.Sequential
	featNorm normalizer
	labNorm  normalizer
	f32      *model32
}

// model32 holds the lazily compiled float32 inference state. One
// holder is shared by every precision clone of a model (WithPrecision
// copies the pointer), so the network is lowered at most once per
// trained model regardless of how many sessions or replicas opt in.
type model32 struct {
	once       sync.Once
	net        *nn.Net32
	featMean   []float32
	featInvStd []float32
}

// compile lowers the float64 network and normalizer once. net stays
// nil when the network has a layer the float32 path cannot lower;
// Predict then falls back to float64 arithmetic.
func (h *model32) compile(m *AcousticModel) {
	h.once.Do(func() {
		n32, err := nn.Compile32(m.net)
		if err != nil {
			return
		}
		h.featMean = make([]float32, len(m.featNorm.Mean))
		h.featInvStd = make([]float32, len(m.featNorm.Std))
		for i, v := range m.featNorm.Mean {
			h.featMean[i] = float32(v)
		}
		for i, v := range m.featNorm.Std {
			h.featInvStd[i] = float32(1 / v)
		}
		h.net = n32
	})
}

// Config returns the model's mapping configuration.
func (m *AcousticModel) Config() MappingConfig { return m.cfg }

// Precision returns the model's hot-path arithmetic mode (the zero
// value reads as the float64 default).
func (m *AcousticModel) Precision() Precision { return m.cfg.Signature.Precision }

// WithPrecision returns a model sharing this model's weights and
// normalisation but computing signatures and predictions under the
// given precision. The receiver is unchanged; clones share one lazily
// compiled float32 lowering.
func (m *AcousticModel) WithPrecision(p Precision) (*AcousticModel, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	// The zero value and Float64 are the same mode: never clone (or
	// stamp an explicit "float64" into the config, which would change
	// the saved-model JSON) when the mode is not actually changing.
	cur := m.cfg.Signature.Precision
	if cur == p || (cur == "" && p == Float64) || (cur == Float64 && p == "") {
		return m, nil
	}
	clone := *m
	clone.cfg.Signature.Precision = p
	return &clone, nil
}

// WindowSample is one aligned (signature, IMU label) training pair.
type WindowSample struct {
	// FlightIndex identifies the source flight.
	FlightIndex int
	// Start is the window start time in flight seconds.
	Start float64
	// Features is the acoustic signature.
	Features []float64
	// Label is the mean IMU specific force (body frame) over the window.
	Label mathx.Vec3
}

// windowFeatures builds the full feature vector for a window: the acoustic
// signature plus, when configured, the window-mean attitude (roll, pitch)
// from the telemetry. Returns nil when the window is unusable.
func windowFeatures(ex *Extractor, f *dataset.Flight, t0, windowSeconds float64) []float64 {
	feat := ex.Features(t0, windowSeconds)
	if feat == nil {
		return nil
	}
	cfg := ex.Config()
	if !cfg.AttitudeFeatures {
		return feat
	}
	tel := f.TelemetryBetween(t0, t0+cfg.WindowSeconds)
	if len(tel) == 0 {
		return nil
	}
	var roll, pitch float64
	for _, s := range tel {
		r, p, _ := s.EstAtt.Euler()
		roll += r
		pitch += p
	}
	n := float64(len(tel))
	return append(feat, roll/n, pitch/n)
}

// BuildWindows extracts aligned windows from a flight. augment > 1 extracts
// the stretched-window variant instead of the base window (time-shift
// augmentation); the label stays the IMU mean over the base window, since
// the stretched window represents the same actuation seen under headwind.
func BuildWindows(f *dataset.Flight, cfg SignatureConfig, flightIndex int, augment float64) ([]WindowSample, error) {
	ex, err := NewExtractor(f.Audio, cfg)
	if err != nil {
		return nil, err
	}
	if augment <= 0 {
		augment = 1
	}
	baseWin := cfg.WindowSeconds
	exWin := baseWin * augment
	// Windows are independent reads of the shared extractor and telemetry;
	// fan them out and keep results in start-time order so the parallel
	// path is byte-identical to the serial one.
	starts := ex.WindowStarts(exWin)
	samples := parallel.Map(0, len(starts), func(i int) *WindowSample {
		t0 := starts[i]
		feat := windowFeatures(ex, f, t0, exWin)
		if feat == nil {
			return nil
		}
		// Label: mean IMU accel over the *base* window at the start of the
		// stretched window (the actuation outcome the sound leads to).
		tel := f.TelemetryBetween(t0, t0+baseWin)
		if len(tel) == 0 {
			return nil
		}
		var sum mathx.Vec3
		for _, s := range tel {
			sum = sum.Add(s.IMUAccel)
		}
		return &WindowSample{
			FlightIndex: flightIndex,
			Start:       t0,
			Features:    feat,
			Label:       sum.Scale(1 / float64(len(tel))),
		}
	})
	var out []WindowSample
	for _, s := range samples {
		if s != nil {
			out = append(out, *s)
		}
	}
	return out, nil
}

// ExtractTrainingWindows extracts the (feature, label) pairs of one flight
// under the mapping config, including its augmented copies. Callers that
// cannot hold a whole corpus in memory stream flights through this and
// train with TrainModelFromSamples.
func ExtractTrainingWindows(f *dataset.Flight, cfg MappingConfig, flightIndex int) (xs, ys [][]float64, err error) {
	add := func(factor float64) error {
		windows, err := BuildWindows(f, cfg.Signature, flightIndex, factor)
		if err != nil {
			return err
		}
		for _, w := range windows {
			xs = append(xs, w.Features)
			ys = append(ys, w.Label.Slice())
		}
		return nil
	}
	if err := add(1); err != nil {
		return nil, nil, err
	}
	for _, factor := range cfg.AugmentFactors {
		// A 1x factor duplicates the base windows (the paper's "w/ 1x"
		// Tab. I row); other factors extract stretched windows.
		if err := add(factor); err != nil {
			return nil, nil, fmt.Errorf("soundboost: augment %gx: %w", factor, err)
		}
	}
	return xs, ys, nil
}

// TrainModelFromSamples fits the acoustic model on pre-extracted raw
// (feature, label) pairs. Validation pairs are optional.
func TrainModelFromSamples(xs, ys, valX, valY [][]float64, cfg MappingConfig) (*AcousticModel, nn.TrainHistory, error) {
	if err := cfg.Signature.Validate(); err != nil {
		return nil, nn.TrainHistory{}, err
	}
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, nn.TrainHistory{}, fmt.Errorf("soundboost: bad training set: %d features, %d labels", len(xs), len(ys))
	}
	featNorm := fitNormalizer(xs)
	labNorm := fitNormalizer(ys)
	normX := make([][]float64, len(xs))
	normY := make([][]float64, len(ys))
	for i := range xs {
		normX[i] = featNorm.apply(xs[i])
		normY[i] = labNorm.apply(ys[i])
	}
	trainCfg := cfg.Train
	if len(valX) > 0 {
		vx := make([][]float64, len(valX))
		vy := make([][]float64, len(valY))
		for i := range valX {
			vx[i] = featNorm.apply(valX[i])
			vy[i] = labNorm.apply(valY[i])
		}
		trainCfg.ValX = vx
		trainCfg.ValY = vy
	}
	hidden := cfg.Hidden
	if hidden <= 0 {
		hidden = 64
	}
	net, err := nn.NewRegressor(cfg.Model, cfg.Signature.FeatureDim(), hidden, 3, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, nn.TrainHistory{}, err
	}
	hist, err := nn.Train(net, normX, normY, trainCfg)
	if err != nil {
		return nil, nn.TrainHistory{}, err
	}
	return &AcousticModel{cfg: cfg, net: net, featNorm: featNorm, labNorm: labNorm, f32: &model32{}}, hist, nil
}

// TrainModel fits the acoustic model on benign training flights, applying
// the configured time-shift augmentation. valFlights (optional) provide
// the validation MSE reported in the returned history.
func TrainModel(trainFlights, valFlights []*dataset.Flight, cfg MappingConfig) (*AcousticModel, nn.TrainHistory, error) {
	var xs, ys [][]float64
	for i, f := range trainFlights {
		fx, fy, err := ExtractTrainingWindows(f, cfg, i)
		if err != nil {
			return nil, nn.TrainHistory{}, fmt.Errorf("soundboost: flight %d: %w", i, err)
		}
		xs = append(xs, fx...)
		ys = append(ys, fy...)
	}
	var valX, valY [][]float64
	for i, f := range valFlights {
		windows, err := BuildWindows(f, cfg.Signature, i, 1)
		if err != nil {
			return nil, nn.TrainHistory{}, err
		}
		for _, w := range windows {
			valX = append(valX, w.Features)
			valY = append(valY, w.Label.Slice())
		}
	}
	return TrainModelFromSamples(xs, ys, valX, valY, cfg)
}

// Predict maps a raw signature to the predicted body-frame specific force.
// It goes through the network's cache-free inference path and is safe for
// concurrent use. Under the float32 precision mode it runs the fused
// normalize+infer float32 program when the network lowers; otherwise
// (and by default) it uses exact float64 arithmetic.
func (m *AcousticModel) Predict(features []float64) mathx.Vec3 {
	span := predictTimer.Start()
	defer span.Stop()
	if m.cfg.Signature.Precision == Float32 && m.f32 != nil {
		m.f32.compile(m)
		if h := m.f32; h.net != nil {
			x := make([]float32, len(features))
			for i, v := range features {
				x[i] = (float32(v) - h.featMean[i]) * h.featInvStd[i]
			}
			out := h.net.Infer(x)
			return mathx.Vec3{
				X: float64(out[0])*m.labNorm.Std[0] + m.labNorm.Mean[0],
				Y: float64(out[1])*m.labNorm.Std[1] + m.labNorm.Mean[1],
				Z: float64(out[2])*m.labNorm.Std[2] + m.labNorm.Mean[2],
			}
		}
	}
	out := m.labNorm.invert(m.net.Infer(m.featNorm.apply(features)))
	return mathx.Vec3{X: out[0], Y: out[1], Z: out[2]}
}

// PredictMasked predicts with the given feature indices zeroed (in
// normalised space) — the counterfactual band-removal analysis of §IV-A.
func (m *AcousticModel) PredictMasked(features []float64, masked []int) mathx.Vec3 {
	x := m.featNorm.apply(features)
	for _, i := range masked {
		if i >= 0 && i < len(x) {
			x[i] = 0
		}
	}
	out := m.labNorm.invert(m.net.Infer(x))
	return mathx.Vec3{X: out[0], Y: out[1], Z: out[2]}
}

// EvaluateMSEBandRemoved computes the model's MSE over a flight set after
// removing a frequency band from the audio *signal* (zero-phase band-stop
// on every channel) — the counterfactual feature-importance analysis of
// §IV-A, which removes frequency groups rather than feature columns.
func EvaluateMSEBandRemoved(m *AcousticModel, flights []*dataset.Flight, centerHz, q float64) (float64, error) {
	var total float64
	var count int
	for i, f := range flights {
		stripped := &dataset.Flight{
			Name:      f.Name,
			Mission:   f.Mission,
			Scenario:  f.Scenario,
			Telemetry: f.Telemetry,
			Audio:     f.Audio.Clone(),
		}
		cancel := acoustics.PhaseSyncedBandAttack{
			Channels:   []int{0, 1, 2, 3},
			Amplitude:  0,
			BandCenter: centerHz,
			BandQ:      q,
		}
		cancel.Apply(stripped.Audio)
		windows, err := BuildWindows(stripped, m.cfg.Signature, i, 1)
		if err != nil {
			return 0, err
		}
		for _, w := range windows {
			pred := m.Predict(w.Features)
			total += pred.Sub(w.Label).NormSq()
			count += 3
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("soundboost: no evaluation windows")
	}
	return total / float64(count), nil
}

// EvaluateMSE computes the model's MSE over a flight set (per-axis mean,
// matching the paper's Tab. I metric).
func EvaluateMSE(m *AcousticModel, flights []*dataset.Flight) (float64, error) {
	var total float64
	var count int
	for i, f := range flights {
		windows, err := BuildWindows(f, m.cfg.Signature, i, 1)
		if err != nil {
			return 0, err
		}
		for _, w := range windows {
			pred := m.Predict(w.Features)
			d := pred.Sub(w.Label)
			total += d.NormSq()
			count += 3
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("soundboost: no evaluation windows")
	}
	return total / float64(count), nil
}

// modelFile is the serialised AcousticModel.
type modelFile struct {
	Cfg      MappingConfig   `json:"config"`
	FeatNorm normalizer      `json:"feat_norm"`
	LabNorm  normalizer      `json:"label_norm"`
	Net      json.RawMessage `json:"net"`
}

// Save writes the model to w as JSON.
func (m *AcousticModel) Save(w io.Writer) error {
	var netBuf bytes.Buffer
	hidden := m.cfg.Hidden
	if hidden <= 0 {
		hidden = 64
	}
	if err := nn.SaveRegressor(&netBuf, m.net, m.cfg.Model, m.cfg.Signature.FeatureDim(), hidden, 3); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(modelFile{
		Cfg:      m.cfg,
		FeatNorm: m.featNorm,
		LabNorm:  m.labNorm,
		Net:      json.RawMessage(netBuf.Bytes()),
	})
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*AcousticModel, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("soundboost: decode model: %w", err)
	}
	net, _, err := nn.LoadRegressor(bytes.NewReader(mf.Net))
	if err != nil {
		return nil, err
	}
	return &AcousticModel{cfg: mf.Cfg, net: net, featNorm: mf.FeatNorm, labNorm: mf.LabNorm, f32: &model32{}}, nil
}
