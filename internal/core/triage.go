package soundboost

import (
	"fmt"
	"math"

	"soundboost/internal/dataset"
	"soundboost/internal/dsp"
	"soundboost/internal/mathx"
	"soundboost/internal/triage"
)

// triageGPSOnsetSeconds bounds the post-onset region of a GPS attack
// whose windows train as anomalous. A spoof is acoustically and (for the
// cross-check features) telemetrically loud only while the KF state is
// being pulled; later windows look quiet again, and labelling them
// anomalous would smear the anomalous class across the benign manifold.
// Post-onset windows are excluded from training entirely — the
// flight-level policy (one escalated window escalates the flight) makes
// a hot onset sufficient.
const triageGPSOnsetSeconds = 2.0

// triageWindow is one screening window of a flight on the batch path.
type triageWindow struct {
	t0, t1 float64
	// feat is the raw triage feature vector; nil when the window is
	// unusable (too short, non-finite audio, no IMU rows) — the screen
	// must escalate such windows.
	feat []float64
}

// forEachTriageWindow enumerates the flight's screening windows exactly
// as the streaming engine decides them: the same window grid, the same
// per-mic causal low-pass on the primary mic, and the same half-open
// [t0, t1) telemetry selection with non-finite rows shed at ingest.
// Mirroring the stream bit for bit keeps batch, streamed, and served
// triage decisions identical for the same flight. fn returns false to
// stop early.
func forEachTriageWindow(f *dataset.Flight, sig SignatureConfig, fc triage.FeatureConfig, fn func(w triageWindow) bool) error {
	rec := f.Audio
	if rec == nil || rec.Samples() == 0 {
		return fmt.Errorf("soundboost: triage: flight %q has no audio", f.Name)
	}
	rate := rec.SampleRate
	if err := sig.ValidateForRate(rate); err != nil {
		return err
	}
	// The fast path filters only the primary mic — a quarter of the full
	// extractor's filtering work.
	audio := rec.Channels[0]
	if sig.LowPassHz > 0 && sig.LowPassHz < rate/2 {
		lp, err := dsp.NewLowPass(sig.LowPassHz, rate)
		if err != nil {
			return err
		}
		audio = lp.ProcessAll(audio)
	}

	// Shed non-finite telemetry rows with the stream's ingest predicates
	// (onIMU / onGPS): time+accel+attitude finite for IMU rows, time+
	// pos+vel finite for GPS rows. Rows are already time-sorted.
	imuRows := make([]triage.IMUPoint, 0, len(f.Telemetry))
	imuTimes := make([]float64, 0, len(f.Telemetry))
	gpsRows := make([]triage.GPSPoint, 0, len(f.Telemetry))
	for _, s := range f.Telemetry {
		if finite(s.Time) && s.IMUAccel.IsFinite() && finiteQuat(s.EstAtt) {
			imuRows = append(imuRows, triage.IMUPoint{Accel: s.IMUAccel, Gyro: s.IMUGyro})
			imuTimes = append(imuTimes, s.Time)
		}
		if finite(s.Time) && s.GPSVel.IsFinite() && s.GPSPos.IsFinite() {
			gpsRows = append(gpsRows, triage.GPSPoint{Time: s.Time, Pos: s.GPSPos, Vel: s.GPSVel})
		}
	}

	// The screen runs under the signature precision: Float32 swaps in the
	// real-input float32 spectral kernel, everything else (window grid,
	// telemetry shedding, escalation predicates) is shared code.
	features := fc.Features
	if sig.Precision == Float32 {
		features = fc.Features32
	}

	win := sig.WindowSeconds
	hop := sig.HopSeconds
	total := int(win * rate)
	written := len(audio)
	imuLo, gpsLo := 0, 0
	for i := 0; ; i++ {
		t0 := float64(i) * hop
		start := int(t0 * rate)
		t1 := t0 + win
		if start+total > written || t1 > float64(written)/rate {
			return nil
		}
		for imuLo < len(imuRows) && imuTimes[imuLo] < t0 {
			imuLo++
		}
		imuHi := imuLo
		for imuHi < len(imuRows) && imuTimes[imuHi] < t1 {
			imuHi++
		}
		for gpsLo < len(gpsRows) && gpsRows[gpsLo].Time < t0 {
			gpsLo++
		}
		gpsHi := gpsLo
		for gpsHi < len(gpsRows) && gpsRows[gpsHi].Time < t1 {
			gpsHi++
		}
		w := triageWindow{t0: t0, t1: t1}
		if imuHi > imuLo {
			w.feat = features(audio[start:start+total], rate, imuRows[imuLo:imuHi], gpsRows[gpsLo:gpsHi])
		}
		if !fn(w) {
			return nil
		}
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finiteQuat(q mathx.Quat) bool {
	return !math.IsNaN(q.W+q.X+q.Y+q.Z) && !math.IsInf(q.W+q.X+q.Y+q.Z, 0)
}

// screenFlight runs the triage tier over a whole flight. The flight
// fast-paths only when every window screens confident-benign; any
// unusable or doubtful window escalates. maxDist is the largest
// neighbour distance among benign-screened windows — the verification
// pass tightens the radius to just below it to force a flight off the
// fast path.
func (a *Analyzer) screenFlight(f *dataset.Flight) (benign bool, maxDist float64) {
	if a.Triage == nil {
		return false, 0
	}
	span := triageScreenTimer.Start()
	defer span.Stop()
	sig := a.Model.Config().Signature
	benign = true
	windows := 0
	err := forEachTriageWindow(f, sig, a.Triage.Config().Features, func(w triageWindow) bool {
		windows++
		d := a.Triage.Classify(w.feat)
		if !d.Benign {
			benign = false
			return false
		}
		if d.Distance > maxDist {
			maxDist = d.Distance
		}
		return true
	})
	if err != nil || windows == 0 {
		return false, maxDist
	}
	return benign, maxDist
}

// FastBenignReport is the cheap verdict emitted when the triage tier
// screens an entire flight benign. It is built identically on the
// batch, streaming, and served paths, so a screened flight's report is
// path-independent: cause "none", the default (audio+IMU) KF variant,
// and its calibrated threshold, with no per-window detector detail —
// the full pipeline never ran.
func FastBenignReport(flight string, a *Analyzer) Report {
	return Report{
		Flight:    flight,
		Cause:     CauseNone,
		GPSMode:   a.GPSAudioIMU.Mode(),
		GPS:       GPSVerdict{Threshold: a.GPSAudioIMU.Threshold()},
		Precision: a.Precision(),
	}
}

// WithoutTriage returns an analyzer identical to the receiver but with
// the screening tier detached — every flight takes the full pipeline.
// The receiver is unchanged (shallow clone, like WithGPSMargin); when
// no tier is attached the receiver itself is returned.
func (a *Analyzer) WithoutTriage() *Analyzer {
	if a.Triage == nil {
		return a
	}
	clone := *a
	clone.Triage = nil
	return &clone
}

// triageLabel assigns the training label for a window [t0, t1) of a
// flight with the given scenario. Only windows fully inside the attack
// region train as anomalous; windows straddling an attack edge are
// mixed content and dropped (include=false), as are GPS post-onset
// windows (neither cleanly benign nor usefully anomalous). An edge
// window labelled anomalous would plant an anomalous prototype deep in
// the benign manifold and poison the zero-anomalous-neighbour vote for
// ordinary benign windows.
func triageLabel(meta dataset.ScenarioMeta, t0, t1 float64) (anomalous, include bool) {
	if !meta.IsAttack() {
		return false, true
	}
	w := meta.Window
	switch meta.Kind {
	case "gps-static", "gps-drift":
		if t0 >= w.Start && t1 <= w.Start+triageGPSOnsetSeconds {
			return true, true
		}
		if (t1 > w.Start && t0 < w.End) || t0 >= w.End {
			return false, false
		}
		return false, true
	default:
		// IMU injection (and any future kind): anomalous when fully
		// inside the attack window, benign when fully outside it.
		if t0 >= w.Start && t1 <= w.End {
			return true, true
		}
		if t1 > w.Start && t0 < w.End {
			return false, false
		}
		return false, true
	}
}

// TrainTriage fits the screening tier from a labelled corpus — the same
// flights that train and calibrate the full pipeline, benign and
// attacked alike (an all-benign corpus yields a one-class model).
// Windows are labelled from scenario metadata: benign flights
// contribute benign windows, IMU attacks mark their whole attack window
// anomalous, GPS attacks mark only the spoof onset (and drop the quiet
// post-onset tail).
func TrainTriage(flights []*dataset.Flight, sig SignatureConfig, cfg triage.Config) (*triage.Model, error) {
	span := triageTrainTimer.Start()
	defer span.Stop()
	if len(cfg.Features.Bands) == 0 {
		cfg.Features.Bands = sig.Bands
	}
	var samples []triage.Sample
	for _, f := range flights {
		if f.Audio == nil || f.Audio.Samples() == 0 {
			continue
		}
		err := forEachTriageWindow(f, sig, cfg.Features, func(w triageWindow) bool {
			if w.feat == nil {
				return true
			}
			if anom, include := triageLabel(f.Scenario, w.t0, w.t1); include {
				samples = append(samples, triage.Sample{Features: w.feat, Anomalous: anom})
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("soundboost: triage training on %q: %w", f.Name, err)
		}
	}
	return triage.Train(samples, cfg)
}

// VerifyTriage enforces the zero verdict-flip guarantee on a corpus: for
// every flight whose full-pipeline cause is not "none", the screening
// tier must escalate. Any violating flight has the benign radius
// tightened to just below its largest window distance, which flips that
// flight off the fast path without ever doing the reverse (Tighten is
// one-directional). Returns the fast-path / escalated flight counts
// after enforcement. An error means the guarantee cannot be enforced by
// radius alone (degenerate zero-distance windows) — callers should drop
// the tier rather than ship it.
func (a *Analyzer) VerifyTriage(flights []*dataset.Flight) (fastpath, escalated int, err error) {
	if a.Triage == nil {
		return 0, 0, fmt.Errorf("soundboost: VerifyTriage: no triage tier attached")
	}
	full := a.WithoutTriage()
	for _, f := range flights {
		report, aerr := full.Analyze(f)
		if aerr != nil {
			// The full pipeline cannot analyse this flight; the screen
			// must not fast-path it either.
			for {
				benign, maxDist := a.screenFlight(f)
				if !benign {
					break
				}
				if maxDist <= 0 {
					return 0, 0, fmt.Errorf("soundboost: VerifyTriage: flight %q screens benign at zero distance", f.Name)
				}
				a.Triage.Tighten(maxDist * 0.999)
			}
			continue
		}
		if report.Cause == CauseNone {
			continue
		}
		for {
			benign, maxDist := a.screenFlight(f)
			if !benign {
				break
			}
			if maxDist <= 0 {
				return 0, 0, fmt.Errorf("soundboost: VerifyTriage: flight %q screens benign at zero distance", f.Name)
			}
			// One tighten flips the arg-max window: its distance now
			// exceeds the (possibly SNR-shrunk) radius.
			a.Triage.Tighten(maxDist * 0.999)
		}
	}
	for _, f := range flights {
		if benign, _ := a.screenFlight(f); benign {
			fastpath++
		} else {
			escalated++
		}
	}
	return fastpath, escalated, nil
}
