package soundboost

import (
	"fmt"
	"strings"

	"soundboost/internal/dataset"
	"soundboost/internal/faults"
	"soundboost/internal/kalman"
	"soundboost/internal/parallel"
	"soundboost/internal/triage"
)

// ErrNoFlight is returned by Analyze when given a nil flight or one with
// no telemetry and no audio — there is nothing to attribute a cause to.
// It aliases faults.ErrNoFlight, the repository-wide error set, so
// errors.Is matches under either name.
var ErrNoFlight = faults.ErrNoFlight

// RootCause is the outcome category of a full RCA run.
type RootCause string

const (
	// CauseNone: no sensor compromise found; the failure (if any) was not
	// attack-induced.
	CauseNone RootCause = "none"
	// CauseIMU: the IMU was compromised.
	CauseIMU RootCause = "imu"
	// CauseGPS: the GPS was compromised.
	CauseGPS RootCause = "gps"
	// CauseIMUAndGPS: both sensors were flagged.
	CauseIMUAndGPS RootCause = "imu+gps"
)

// Report is the result of SoundBoost's two-stage post-incident RCA.
type Report struct {
	// Flight names the analysed flight.
	Flight string
	// Cause is the attributed root cause.
	Cause RootCause
	// IMU is the stage-1 verdict.
	IMU IMUVerdict
	// GPS is the stage-2 verdict.
	GPS GPSVerdict
	// GPSMode records which KF variant stage 2 used (audio-only when the
	// IMU was flagged, audio+IMU otherwise).
	GPSMode kalman.Mode
	// Precision records the arithmetic the signature/inference hot path
	// ran under. The zero value means the bitwise-pinned Float64 default;
	// Float32 marks a report produced by the opt-in fast path, whose
	// per-feature error bound is Precision.Tolerance().
	Precision Precision
}

// String renders a human-readable RCA summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RCA report for flight %q\n", r.Flight)
	fmt.Fprintf(&b, "  root cause: %s\n", r.Cause)
	if r.IMU.Attacked {
		fmt.Fprintf(&b, "  IMU: ATTACKED (detected at t=%.1fs, %d/%d windows rejected, attack residual std %.2f)\n",
			r.IMU.DetectionTime, r.IMU.WindowsRejected, r.IMU.WindowsTested, r.IMU.AttackStd)
	} else {
		fmt.Fprintf(&b, "  IMU: intact (%d/%d windows rejected)\n", r.IMU.WindowsRejected, r.IMU.WindowsTested)
	}
	if r.GPS.Attacked {
		fmt.Fprintf(&b, "  GPS: SPOOFED (detected at t=%.1fs via %s KF, peak error %.2f > threshold %.2f)\n",
			r.GPS.DetectionTime, r.GPSMode, r.GPS.PeakError, r.GPS.Threshold)
	} else {
		fmt.Fprintf(&b, "  GPS: clean (peak error %.2f <= threshold %.2f via %s KF)\n",
			r.GPS.PeakError, r.GPS.Threshold, r.GPSMode)
	}
	return b.String()
}

// Analyzer bundles the trained model with calibrated detectors and runs
// the full RCA pipeline: first decide whether the IMU can be trusted, then
// run GPS detection with the strongest admissible KF variant.
type Analyzer struct {
	// Model is the trained acoustic model.
	Model *AcousticModel
	// IMU is the stage-1 detector.
	IMU *IMUDetector
	// GPSAudioOnly is used when the IMU is flagged compromised.
	GPSAudioOnly *GPSDetector
	// GPSAudioIMU is used when the IMU is trusted.
	GPSAudioIMU *GPSDetector
	// Triage is the optional screening tier (WithTriage). When attached,
	// flights whose every window screens confident-benign short-circuit
	// Analyze with FastBenignReport instead of running the detectors;
	// any doubt escalates to the full pipeline. Nil disables screening.
	Triage *triage.Model
}

// NewAnalyzer calibrates all detectors from benign flights. The three
// calibrations are independent and run concurrently on the worker pool.
// Functional options (WithWorkers, WithIMUConfig, WithKFVariant)
// customize the calibration; with none the defaults reproduce the
// historical two-argument behaviour, so existing call sites compile and
// behave unchanged.
func NewAnalyzer(model *AcousticModel, benignFlights []*dataset.Flight, opts ...AnalyzerOption) (*Analyzer, error) {
	if model == nil {
		return nil, fmt.Errorf("soundboost: nil model")
	}
	o := defaultAnalyzerOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if o.precisionSet {
		var err error
		model, err = model.WithPrecision(o.precision)
		if err != nil {
			return nil, err
		}
	}
	span := analyzerCalibTimer.Start()
	defer span.Stop()
	var (
		imu                 *IMUDetector
		audioOnly, audioIMU *GPSDetector
	)
	err := parallel.Run(o.workers,
		func() error {
			var err error
			imu, err = NewIMUDetector(model, benignFlights, o.imuCfg)
			if err != nil {
				return fmt.Errorf("soundboost: IMU detector: %w", err)
			}
			return nil
		},
		func() error {
			var err error
			audioOnly, err = NewGPSDetector(model, benignFlights, o.gpsCfgs[kalman.ModeAudioOnly])
			if err != nil {
				return fmt.Errorf("soundboost: audio-only GPS detector: %w", err)
			}
			return nil
		},
		func() error {
			var err error
			audioIMU, err = NewGPSDetector(model, benignFlights, o.gpsCfgs[kalman.ModeAudioIMU])
			if err != nil {
				return fmt.Errorf("soundboost: audio+IMU GPS detector: %w", err)
			}
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	return &Analyzer{Model: model, IMU: imu, GPSAudioOnly: audioOnly, GPSAudioIMU: audioIMU, Triage: o.triage}, nil
}

// WithGPSMargin returns a shallow copy of the analyzer whose GPS
// detector for the named KF variant runs at a different threshold
// margin (see GPSDetector.WithMargin — the rescale is exact, no
// recalibration). The other variant, the IMU detector, and the model
// are shared with the receiver, which stays usable unchanged. Sweeps
// derive one analyzer per (variant, margin) grid cell this way.
func (a *Analyzer) WithGPSMargin(mode kalman.Mode, margin float64) (*Analyzer, error) {
	clone := *a
	switch mode {
	case kalman.ModeAudioOnly:
		d, err := a.GPSAudioOnly.WithMargin(margin)
		if err != nil {
			return nil, err
		}
		clone.GPSAudioOnly = d
	case kalman.ModeAudioIMU:
		d, err := a.GPSAudioIMU.WithMargin(margin)
		if err != nil {
			return nil, err
		}
		clone.GPSAudioIMU = d
	default:
		return nil, fmt.Errorf("soundboost: WithGPSMargin: KF variant must be %q or %q, got %q",
			kalman.ModeAudioOnly, kalman.ModeAudioIMU, mode)
	}
	return &clone, nil
}

// Precision reports the arithmetic mode the analyzer's model runs
// under (the zero value of the model config reads back as Float64).
func (a *Analyzer) Precision() Precision {
	if a.Model == nil {
		return Float64
	}
	if p := a.Model.Precision(); p != "" {
		return p
	}
	return Float64
}

// WithPrecision returns a shallow copy of the analyzer whose signature
// extraction and inference hot path runs under the given precision. The
// calibrated thresholds are preserved exactly — no recalibration — so
// the copy is directly comparable to the receiver: the float32 path is
// verified corpus-wide to flip zero verdicts against float64 under the
// per-feature bound p.Tolerance(). The receiver stays usable unchanged;
// detector clones share everything but the re-precisioned model.
func (a *Analyzer) WithPrecision(p Precision) (*Analyzer, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	model, err := a.Model.WithPrecision(p)
	if err != nil {
		return nil, err
	}
	if model == a.Model {
		return a, nil
	}
	clone := *a
	clone.Model = model
	if a.IMU != nil {
		imu := *a.IMU
		imu.model = model
		clone.IMU = &imu
	}
	if a.GPSAudioOnly != nil {
		d := *a.GPSAudioOnly
		d.model = model
		clone.GPSAudioOnly = &d
	}
	if a.GPSAudioIMU != nil {
		d := *a.GPSAudioIMU
		d.model = model
		clone.GPSAudioIMU = &d
	}
	return &clone, nil
}

// Analyze runs the full two-stage RCA over a flight. A nil or empty
// flight returns ErrNoFlight. On a stage error the partial report still
// carries a coherent GPSMode: the variant stage 2 would have used given
// what stage 1 concluded (audio+IMU until the IMU is flagged).
func (a *Analyzer) Analyze(f *dataset.Flight) (Report, error) {
	span := analyzeTimer.Start()
	defer span.Stop()
	if f == nil || (len(f.Telemetry) == 0 && (f.Audio == nil || f.Audio.Samples() == 0)) {
		return Report{GPSMode: a.GPSAudioIMU.Mode(), Precision: a.Precision()}, ErrNoFlight
	}
	// Screening tier: a flight whose every window is confident-benign
	// skips both detector stages. The screen only ever concludes "none",
	// so the verdict cannot flip relative to the full pipeline.
	if a.Triage != nil {
		if benign, _ := a.screenFlight(f); benign {
			reportsFastpath.Inc()
			return FastBenignReport(f.Name, a), nil
		}
	}
	report := Report{Flight: f.Name, GPSMode: a.GPSAudioIMU.Mode(), Precision: a.Precision()}

	imuVerdict, err := a.IMU.Detect(f)
	if err != nil {
		return report, fmt.Errorf("soundboost: IMU stage: %w", err)
	}
	report.IMU = imuVerdict

	// Stage 2: pick the KF variant by stage-1 outcome (paper §III-C2).
	gps := a.GPSAudioIMU
	if imuVerdict.Attacked {
		gps = a.GPSAudioOnly
	}
	report.GPSMode = gps.Mode()
	gpsVerdict, err := gps.Detect(f)
	if err != nil {
		return report, fmt.Errorf("soundboost: GPS stage: %w", err)
	}
	report.GPS = gpsVerdict

	switch {
	case imuVerdict.Attacked && gpsVerdict.Attacked:
		report.Cause = CauseIMUAndGPS
		reportsIMU.Inc()
		reportsGPS.Inc()
	case imuVerdict.Attacked:
		report.Cause = CauseIMU
		reportsIMU.Inc()
	case gpsVerdict.Attacked:
		report.Cause = CauseGPS
		reportsGPS.Inc()
	default:
		report.Cause = CauseNone
	}
	return report, nil
}
