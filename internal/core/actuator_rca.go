package soundboost

import (
	"fmt"

	"soundboost/internal/dataset"
	"soundboost/internal/sensors"
)

// ActuatorDetectorConfig tunes the actuator-DoS RCA extension (paper
// §V-B): when actuators stop mid-air, the rotors go quiet and the
// acoustic model predicts a thrust magnitude no airborne vehicle can
// have — a physical-plausibility violation that needs no calibration
// beyond the constant of gravity.
type ActuatorDetectorConfig struct {
	// MinThrustFraction is the minimum plausible |predicted specific
	// force| as a fraction of g for an airborne multirotor; windows below
	// it are implausible.
	MinThrustFraction float64
	// DetectWindows is how many consecutive implausible windows alarm.
	DetectWindows int
}

// DefaultActuatorDetectorConfig returns the tuned configuration.
func DefaultActuatorDetectorConfig() ActuatorDetectorConfig {
	return ActuatorDetectorConfig{MinThrustFraction: 0.5, DetectWindows: 2}
}

// ActuatorVerdict is the outcome of the actuator RCA check on one flight.
type ActuatorVerdict struct {
	// Attacked reports whether an actuator outage was flagged.
	Attacked bool
	// DetectionTime is the flight time (s) of the first alarmed window.
	DetectionTime float64
	// MinPredictedG is the smallest predicted |specific force| seen,
	// in g units.
	MinPredictedG float64
}

// ActuatorDetector flags actuator denial-of-service outages from the
// acoustic channel alone.
type ActuatorDetector struct {
	cfg   ActuatorDetectorConfig
	model *AcousticModel
}

// NewActuatorDetector builds the detector.
func NewActuatorDetector(model *AcousticModel, cfg ActuatorDetectorConfig) (*ActuatorDetector, error) {
	if cfg.MinThrustFraction <= 0 || cfg.MinThrustFraction >= 1 {
		return nil, fmt.Errorf("soundboost: thrust fraction %g out of (0, 1)", cfg.MinThrustFraction)
	}
	if cfg.DetectWindows < 1 {
		cfg.DetectWindows = 1
	}
	return &ActuatorDetector{cfg: cfg, model: model}, nil
}

// Detect runs the actuator plausibility check over a flight.
func (d *ActuatorDetector) Detect(f *dataset.Flight) (ActuatorVerdict, error) {
	ex, err := NewExtractor(f.Audio, d.model.cfg.Signature)
	if err != nil {
		return ActuatorVerdict{}, err
	}
	win := d.model.cfg.Signature.WindowSeconds
	verdict := ActuatorVerdict{MinPredictedG: 1e9}
	consecutive := 0
	for _, t0 := range ex.WindowStarts(win) {
		feat := windowFeatures(ex, f, t0, win)
		if feat == nil {
			continue
		}
		pred := d.model.Predict(feat)
		g := pred.Norm() / sensors.Gravity
		if g < verdict.MinPredictedG {
			verdict.MinPredictedG = g
		}
		if g < d.cfg.MinThrustFraction {
			consecutive++
			if consecutive >= d.cfg.DetectWindows && !verdict.Attacked {
				verdict.Attacked = true
				verdict.DetectionTime = t0 + win
			}
		} else {
			consecutive = 0
		}
	}
	if verdict.MinPredictedG == 1e9 {
		return verdict, fmt.Errorf("soundboost: flight too short for actuator RCA")
	}
	return verdict, nil
}
