package soundboost

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"soundboost/internal/stats"
	"soundboost/internal/triage"
)

// analyzerFile is the serialised form of a fully-calibrated Analyzer:
// the trained model plus every detector's calibrated thresholds. Saving it
// lets the post-incident workflow skip recalibration (paper §III-D:
// parameters are tuned once per UAV model).
type analyzerFile struct {
	Model json.RawMessage `json:"model"`

	IMUCfg           IMUDetectorConfig `json:"imu_config"`
	IMUBenign        stats.Normal      `json:"imu_benign"`
	IMUStatThreshold float64           `json:"imu_stat_threshold"`
	IMUStdThreshold  float64           `json:"imu_std_threshold"`

	AudioOnlyCfg       GPSDetectorConfig `json:"audio_only_config"`
	AudioOnlyThreshold float64           `json:"audio_only_threshold"`
	AudioIMUCfg        GPSDetectorConfig `json:"audio_imu_config"`
	AudioIMUThreshold  float64           `json:"audio_imu_threshold"`

	// Triage is the optional screening tier in its own schema-versioned
	// format (triage/v1); absent in files written before the tier
	// existed, so older analyzers load unchanged with screening off.
	Triage json.RawMessage `json:"triage,omitempty"`
}

// Save writes the calibrated analyzer to w as JSON.
func (a *Analyzer) Save(w io.Writer) error {
	if a.Model == nil || a.IMU == nil || a.GPSAudioOnly == nil || a.GPSAudioIMU == nil {
		return fmt.Errorf("soundboost: cannot save partially-initialised analyzer")
	}
	var modelBuf bytes.Buffer
	if err := a.Model.Save(&modelBuf); err != nil {
		return err
	}
	var triageRaw json.RawMessage
	if a.Triage != nil {
		blob, err := json.Marshal(a.Triage)
		if err != nil {
			return fmt.Errorf("soundboost: save triage tier: %w", err)
		}
		triageRaw = blob
	}
	return json.NewEncoder(w).Encode(analyzerFile{
		Triage:             triageRaw,
		Model:              json.RawMessage(modelBuf.Bytes()),
		IMUCfg:             a.IMU.cfg,
		IMUBenign:          a.IMU.benign,
		IMUStatThreshold:   a.IMU.statThreshold,
		IMUStdThreshold:    a.IMU.stdThreshold,
		AudioOnlyCfg:       a.GPSAudioOnly.cfg,
		AudioOnlyThreshold: a.GPSAudioOnly.threshold,
		AudioIMUCfg:        a.GPSAudioIMU.cfg,
		AudioIMUThreshold:  a.GPSAudioIMU.threshold,
	})
}

// LoadAnalyzer reads an analyzer written by Save: the model and all
// calibrated thresholds are restored without needing benign flights.
func LoadAnalyzer(r io.Reader) (*Analyzer, error) {
	var af analyzerFile
	if err := json.NewDecoder(r).Decode(&af); err != nil {
		return nil, fmt.Errorf("soundboost: decode analyzer: %w", err)
	}
	model, err := LoadModel(bytes.NewReader(af.Model))
	if err != nil {
		return nil, err
	}
	if af.IMUBenign.Sigma <= 0 {
		return nil, fmt.Errorf("soundboost: analyzer file has degenerate benign sigma %g", af.IMUBenign.Sigma)
	}
	var tri *triage.Model
	if len(af.Triage) > 0 {
		tri = new(triage.Model)
		if err := json.Unmarshal(af.Triage, tri); err != nil {
			return nil, fmt.Errorf("soundboost: analyzer triage tier: %w", err)
		}
	}
	return &Analyzer{
		Triage: tri,
		Model:  model,
		IMU: &IMUDetector{
			cfg:           af.IMUCfg,
			model:         model,
			benign:        af.IMUBenign,
			statThreshold: af.IMUStatThreshold,
			stdThreshold:  af.IMUStdThreshold,
		},
		GPSAudioOnly: &GPSDetector{cfg: af.AudioOnlyCfg, model: model, threshold: af.AudioOnlyThreshold},
		GPSAudioIMU:  &GPSDetector{cfg: af.AudioIMUCfg, model: model, threshold: af.AudioIMUThreshold},
	}, nil
}
