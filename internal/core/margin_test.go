package soundboost

import (
	"math"
	"testing"

	"soundboost/internal/kalman"
)

// TestGPSDetectorWithMargin pins the exact-rescale contract: the
// calibrated threshold is benign-quantile × margin, so WithMargin must
// reproduce precisely the threshold a fresh calibration at the new
// margin would have produced, and must leave the receiver untouched.
func TestGPSDetectorWithMargin(t *testing.T) {
	cfg := DefaultGPSDetectorConfig(kalman.ModeAudioIMU) // ThresholdMargin 1.1
	base := 0.42                                         // the calibrated benign quantile
	d := &GPSDetector{cfg: cfg, threshold: base * cfg.ThresholdMargin}

	for _, margin := range []float64{0.9, 1.0, 1.1, 1.5} {
		d2, err := d.WithMargin(margin)
		if err != nil {
			t.Fatalf("WithMargin(%g): %v", margin, err)
		}
		if got, want := d2.Threshold(), base*margin; math.Abs(got-want) > 1e-15 {
			t.Errorf("WithMargin(%g): threshold %g, want %g", margin, got, want)
		}
		if d2.Config().ThresholdMargin != margin {
			t.Errorf("WithMargin(%g): cfg margin %g", margin, d2.Config().ThresholdMargin)
		}
		if d2.Mode() != d.Mode() {
			t.Errorf("WithMargin(%g): mode changed to %q", margin, d2.Mode())
		}
	}
	// Receiver unchanged, and invalid margins rejected.
	if got := d.Threshold(); math.Abs(got-base*1.1) > 1e-15 {
		t.Errorf("receiver threshold mutated: %g", got)
	}
	for _, bad := range []float64{0, -1} {
		if _, err := d.WithMargin(bad); err == nil {
			t.Errorf("WithMargin(%g): want error", bad)
		}
	}
}

// TestAnalyzerWithGPSMargin checks the per-variant derivation: only the
// named variant's detector is replaced, the rest is shared, and unknown
// modes fail loudly.
func TestAnalyzerWithGPSMargin(t *testing.T) {
	mkDet := func(mode kalman.Mode, base float64) *GPSDetector {
		cfg := DefaultGPSDetectorConfig(mode)
		return &GPSDetector{cfg: cfg, threshold: base * cfg.ThresholdMargin}
	}
	a := &Analyzer{
		GPSAudioOnly: mkDet(kalman.ModeAudioOnly, 0.5),
		GPSAudioIMU:  mkDet(kalman.ModeAudioIMU, 0.3),
	}
	derived, err := a.WithGPSMargin(kalman.ModeAudioIMU, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := derived.GPSAudioIMU.Threshold(), 0.3*2.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("derived audio+imu threshold %g, want %g", got, want)
	}
	if derived.GPSAudioOnly != a.GPSAudioOnly {
		t.Error("audio-only detector should be shared, not copied")
	}
	if a.GPSAudioIMU.Config().ThresholdMargin != 1.1 {
		t.Error("receiver's audio+imu detector mutated")
	}
	if _, err := a.WithGPSMargin(kalman.Mode("imu-only"), 1.2); err == nil {
		t.Error("unknown KF variant: want error")
	}
	if _, err := a.WithGPSMargin(kalman.ModeAudioOnly, -1); err == nil {
		t.Error("negative margin: want error")
	}
}
