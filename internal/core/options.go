package soundboost

import (
	"fmt"

	"soundboost/internal/kalman"
	"soundboost/internal/triage"
)

// AnalyzerOption configures NewAnalyzer's calibration. The zero option
// set reproduces the historical behaviour: default detector configs and
// the process-wide worker count.
type AnalyzerOption func(*analyzerOptions)

type analyzerOptions struct {
	workers      int
	imuCfg       IMUDetectorConfig
	gpsCfgs      map[kalman.Mode]GPSDetectorConfig
	triage       *triage.Model
	precision    Precision
	precisionSet bool
}

func defaultAnalyzerOptions() analyzerOptions {
	return analyzerOptions{
		imuCfg: DefaultIMUDetectorConfig(),
		gpsCfgs: map[kalman.Mode]GPSDetectorConfig{
			kalman.ModeAudioOnly: DefaultGPSDetectorConfig(kalman.ModeAudioOnly),
			kalman.ModeAudioIMU:  DefaultGPSDetectorConfig(kalman.ModeAudioIMU),
		},
	}
}

// WithWorkers sets the worker count for the calibration fan-out
// (0 = the process-wide default from parallel.SetDefaultWorkers).
func WithWorkers(n int) AnalyzerOption {
	return func(o *analyzerOptions) { o.workers = n }
}

// WithIMUConfig overrides the stage-1 IMU detector configuration.
func WithIMUConfig(cfg IMUDetectorConfig) AnalyzerOption {
	return func(o *analyzerOptions) { o.imuCfg = cfg }
}

// WithKFVariant overrides the GPS detector configuration for the KF
// variant named by cfg.Mode (kalman.ModeAudioOnly or
// kalman.ModeAudioIMU); the other variant keeps its default. Passing an
// unknown mode makes NewAnalyzer fail with a descriptive error.
func WithKFVariant(cfg GPSDetectorConfig) AnalyzerOption {
	return func(o *analyzerOptions) { o.gpsCfgs[cfg.Mode] = cfg }
}

// WithTriage attaches a trained screening tier (see internal/triage) to
// the analyzer: flights whose every window screens confident-benign
// skip the full two-stage pipeline. Run VerifyTriage on the calibration
// corpus afterwards to enforce the zero verdict-flip guarantee. Nil
// leaves screening disabled (the default).
func WithTriage(m *triage.Model) AnalyzerOption {
	return func(o *analyzerOptions) { o.triage = m }
}

// WithPrecision selects the arithmetic of the signature/inference hot
// path for the analyzer being calibrated. It applies BEFORE
// calibration, so the detector thresholds are fitted under the same
// arithmetic Analyze will run — the analyzer is self-consistent. To
// re-precision an already calibrated analyzer while preserving its
// thresholds exactly (the equivalence-testing shape), use
// Analyzer.WithPrecision instead. The default leaves the model's own
// configured precision in force (Float64 unless the model opts in).
func WithPrecision(p Precision) AnalyzerOption {
	return func(o *analyzerOptions) {
		o.precision = p
		o.precisionSet = true
	}
}

// validate rejects option combinations the analyzer cannot calibrate.
func (o *analyzerOptions) validate() error {
	if o.precisionSet {
		if err := o.precision.validate(); err != nil {
			return err
		}
	}
	for mode := range o.gpsCfgs {
		if mode != kalman.ModeAudioOnly && mode != kalman.ModeAudioIMU {
			return fmt.Errorf("soundboost: WithKFVariant: analyzer KF variant must be %q or %q, got %q",
				kalman.ModeAudioOnly, kalman.ModeAudioIMU, mode)
		}
	}
	return nil
}
