package soundboost

import (
	"fmt"

	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/parallel"
	"soundboost/internal/sensors"
	"soundboost/internal/stats"
)

// GPSDetectorConfig tunes the GPS-spoofing RCA stage (§III-C2).
type GPSDetectorConfig struct {
	// Mode selects the KF variant (audio-only / audio+IMU / imu-only).
	Mode kalman.Mode
	// ThresholdMargin scales the calibrated benign threshold (>= 1).
	ThresholdMargin float64
	// PeakQuantile sets the threshold at this quantile of the benign
	// per-flight peak errors before the margin. The paper thresholds at
	// "the maximum running mean error of the benign cases after removing
	// outliers" — and its own benign false-positive rates (0.10-0.23)
	// show the removed 'outliers' are the top of the benign distribution,
	// i.e. the threshold sits inside it.
	PeakQuantile float64
	// ErrorAlpha is the exponential running-mean weight of the error
	// monitor.
	ErrorAlpha float64
	// AlignSeconds is the alignment phase at the start of each analysed
	// period: the constant bias of the audio (and IMU) acceleration stream
	// is estimated against GPS velocity deltas and removed before
	// integration. Per the threat model, attacks begin after take-off, so
	// the opening seconds are trustworthy; without alignment, an
	// acceleration bias of b m/s^2 drifts the velocity estimate by b*T
	// over a T-second period and swamps the spoofing signal.
	AlignSeconds float64
	// BiasTauSeconds continues tracking the slow acceleration bias after
	// alignment with this EWMA time constant, using GPS velocity
	// *derivatives* as the reference. Differentiation makes the tracker
	// transparent to the constant velocity offset a drift spoof injects
	// (it differentiates to zero) while absorbing slowly-varying benign
	// bias such as wind drag. 0 disables tracking.
	BiasTauSeconds float64
	// Velocity configures the underlying Kalman fusion.
	Velocity kalman.VelocityConfig
}

// DefaultGPSDetectorConfig returns the tuned configuration for a mode.
func DefaultGPSDetectorConfig(mode kalman.Mode) GPSDetectorConfig {
	return GPSDetectorConfig{
		Mode:            mode,
		ThresholdMargin: 1.1,
		PeakQuantile:    0.8,
		ErrorAlpha:      0.05,
		AlignSeconds:    5,
		BiasTauSeconds:  8,
		Velocity:        kalman.DefaultVelocityConfig(mode),
	}
}

// GPSTrace is the per-window diagnostic series of one flight's GPS RCA —
// the raw material for Fig. 7.
type GPSTrace struct {
	// Time is the window end time (s).
	Time []float64
	// FusedVel is the KF velocity estimate (NED).
	FusedVel []mathx.Vec3
	// GPSVel is the reported GPS velocity (NED).
	GPSVel []mathx.Vec3
	// FusedPos integrates FusedVel (SoundBoost's position estimate).
	FusedPos []mathx.Vec3
	// RunningError is the monitored running-mean velocity error.
	RunningError []float64
}

// GPSVerdict is the outcome of the GPS RCA stage on one flight period.
type GPSVerdict struct {
	// Attacked reports whether GPS spoofing was flagged.
	Attacked bool
	// DetectionTime is the flight time (s) when the running error first
	// crossed the threshold (valid when Attacked).
	DetectionTime float64
	// PeakError is the maximum running-mean error observed.
	PeakError float64
	// Threshold is the detector threshold used.
	Threshold float64
}

// GPSDetector flags GPS spoofing by fusing audio (and optionally IMU)
// acceleration into a velocity estimate and monitoring the running mean of
// its disagreement with GPS-reported velocity.
type GPSDetector struct {
	cfg       GPSDetectorConfig
	model     *AcousticModel
	threshold float64
}

// runFlight produces the error trace of one flight under the detector's KF.
func (d *GPSDetector) runFlight(f *dataset.Flight) (*GPSTrace, error) {
	ex, err := NewExtractor(f.Audio, d.model.cfg.Signature)
	if err != nil {
		return nil, err
	}
	win := d.model.cfg.Signature.WindowSeconds
	hop := d.model.cfg.Signature.HopSeconds
	starts := ex.WindowStarts(win)
	if len(starts) == 0 {
		return nil, fmt.Errorf("soundboost: flight too short for GPS RCA")
	}

	// Initial velocity from the first GPS fix (pre-attack per threat model).
	v0 := mathx.Vec3{}
	if len(f.Telemetry) > 0 {
		v0 = f.Telemetry[0].GPSVel
	}
	est, err := kalman.NewVelocityEstimator(d.cfg.Velocity, v0)
	if err != nil {
		return nil, err
	}
	monitor := stats.RunningMean{Alpha: d.cfg.ErrorAlpha}
	trace := &GPSTrace{}
	pos := mathx.Vec3{}
	if len(f.Telemetry) > 0 {
		pos = f.Telemetry[0].GPSPos
	}
	gravity := mathx.Vec3{Z: sensors.Gravity}

	// Per-window NED acceleration streams and aligned GPS velocities.
	type windowObs struct {
		t        float64
		audioNED mathx.Vec3
		imuNED   mathx.Vec3
		gpsVel   mathx.Vec3
	}
	// Observation building (feature extraction + prediction per window) is
	// embarrassingly parallel; only the KF recursion below is sequential.
	// Results keep window order, so the trace matches the serial loop.
	perWindow := parallel.Map(0, len(starts), func(i int) *windowObs {
		t0 := starts[i]
		feat := windowFeatures(ex, f, t0, win)
		if feat == nil {
			return nil
		}
		tel := f.TelemetryBetween(t0, t0+win)
		if len(tel) == 0 {
			return nil
		}
		// Mean attitude/IMU/GPS over the window.
		att := tel[len(tel)/2].EstAtt
		var imuSum mathx.Vec3
		for _, s := range tel {
			imuSum = imuSum.Add(s.IMUAccel)
		}
		imuBody := imuSum.Scale(1 / float64(len(tel)))
		predBody := d.model.Predict(feat)
		// Window-mean GPS velocity: the fused estimate integrates
		// window-mean accelerations, so the reference must share its
		// timebase or turns read as spurious error.
		var gpsSum mathx.Vec3
		for _, s := range tel {
			gpsSum = gpsSum.Add(s.GPSVel)
		}
		return &windowObs{
			t:        t0 + win,
			audioNED: att.Rotate(predBody).Add(gravity),
			imuNED:   att.Rotate(imuBody).Add(gravity),
			gpsVel:   gpsSum.Scale(1 / float64(len(tel))),
		}
	})
	var obs []windowObs
	for _, o := range perWindow {
		if o != nil {
			obs = append(obs, *o)
		}
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("soundboost: no usable windows for GPS RCA")
	}

	// Alignment phase (attacks begin after take-off): estimate the
	// constant acceleration bias of each stream against GPS velocity
	// deltas over the opening seconds, then remove it.
	var audioBias, imuBias mathx.Vec3
	alignN := 0
	if d.cfg.AlignSeconds > 0 {
		t0 := obs[0].t
		var audioInt, imuInt mathx.Vec3
		for i, o := range obs {
			if o.t-t0 > d.cfg.AlignSeconds {
				break
			}
			audioInt = audioInt.Add(o.audioNED.Scale(hop))
			imuInt = imuInt.Add(o.imuNED.Scale(hop))
			alignN = i + 1
		}
		if alignN > 1 {
			alignT := float64(alignN) * hop
			dv := obs[alignN-1].gpsVel.Sub(obs[0].gpsVel)
			audioBias = audioInt.Sub(dv).Scale(1 / alignT)
			imuBias = imuInt.Sub(dv).Scale(1 / alignT)
		}
	}

	for i, o := range obs {
		if d.cfg.BiasTauSeconds > 0 && i >= 1 && i >= alignN {
			// Slow bias tracking against the GPS velocity derivative.
			gpsAccel := o.gpsVel.Sub(obs[i-1].gpsVel).Scale(1 / hop)
			alpha := hop / d.cfg.BiasTauSeconds
			audioBias = audioBias.Add(o.audioNED.Sub(gpsAccel).Sub(audioBias).Scale(alpha))
			imuBias = imuBias.Add(o.imuNED.Sub(gpsAccel).Sub(imuBias).Scale(alpha))
		}
		if err := est.Step(o.audioNED.Sub(audioBias), o.imuNED.Sub(imuBias), hop); err != nil {
			return nil, err
		}
		fused := est.Velocity()
		pos = pos.Add(fused.Scale(hop))
		var running float64
		if i >= alignN {
			running = monitor.Add(fused.Sub(o.gpsVel).Norm())
		}
		trace.Time = append(trace.Time, o.t)
		trace.FusedVel = append(trace.FusedVel, fused)
		trace.GPSVel = append(trace.GPSVel, o.gpsVel)
		trace.FusedPos = append(trace.FusedPos, pos)
		trace.RunningError = append(trace.RunningError, running)
	}
	return trace, nil
}

// NewGPSDetector calibrates the detection threshold on benign flights:
// the maximum benign running-mean error after outlier removal, scaled by
// the margin.
func NewGPSDetector(model *AcousticModel, benignFlights []*dataset.Flight, cfg GPSDetectorConfig) (*GPSDetector, error) {
	if cfg.ThresholdMargin < 1 {
		cfg.ThresholdMargin = 1
	}
	if len(benignFlights) == 0 {
		return nil, fmt.Errorf("soundboost: GPS detector needs benign calibration flights")
	}
	if cfg.PeakQuantile <= 0 || cfg.PeakQuantile > 1 {
		cfg.PeakQuantile = 0.75
	}
	d := &GPSDetector{cfg: cfg, model: model}
	span := gpsCalibTimer.Start()
	defer span.Stop()
	peaks, err := parallel.MapErr(0, len(benignFlights), func(i int) (float64, error) {
		trace, err := d.runFlight(benignFlights[i])
		if err != nil {
			return 0, err
		}
		return stats.Max(trace.RunningError), nil
	})
	if err != nil {
		return nil, err
	}
	d.threshold = stats.Quantile(peaks, cfg.PeakQuantile) * cfg.ThresholdMargin
	if d.threshold <= 0 {
		return nil, fmt.Errorf("soundboost: degenerate GPS threshold %g", d.threshold)
	}
	return d, nil
}

// Threshold returns the calibrated alarm threshold.
func (d *GPSDetector) Threshold() float64 { return d.threshold }

// WithMargin returns a copy of the detector operating at a different
// threshold margin, re-derived exactly from the calibrated base: the
// threshold is benign-quantile × margin, so rescaling by
// margin/cfg.ThresholdMargin reproduces what a fresh calibration at the
// new margin would have produced — without re-running the benign
// flights. Sweeps use it to walk an operating curve from one
// calibration. margin must be positive (margins below 1 deliberately
// trade false positives for detection latency; NewGPSDetector clamps
// them, WithMargin does not).
func (d *GPSDetector) WithMargin(margin float64) (*GPSDetector, error) {
	if margin <= 0 {
		return nil, fmt.Errorf("soundboost: WithMargin: margin must be positive, got %g", margin)
	}
	d2 := *d
	d2.threshold = d.threshold / d.cfg.ThresholdMargin * margin
	d2.cfg.ThresholdMargin = margin
	return &d2, nil
}

// Config returns the detector's configuration (after calibration-time
// normalisation). The streaming engine mirrors the batch detector from it.
func (d *GPSDetector) Config() GPSDetectorConfig { return d.cfg }

// Mode returns the detector's KF mode.
func (d *GPSDetector) Mode() kalman.Mode { return d.cfg.Mode }

// Detect runs GPS RCA over a flight and returns the verdict.
func (d *GPSDetector) Detect(f *dataset.Flight) (GPSVerdict, error) {
	span := gpsDetectTimer.Start()
	defer span.Stop()
	trace, err := d.runFlight(f)
	if err != nil {
		return GPSVerdict{}, err
	}
	v := GPSVerdict{Threshold: d.threshold}
	for i, e := range trace.RunningError {
		if e > v.PeakError {
			v.PeakError = e
		}
		if e > d.threshold && !v.Attacked {
			v.Attacked = true
			v.DetectionTime = trace.Time[i]
		}
	}
	return v, nil
}

// Trace exposes the full diagnostic series (Fig. 7).
func (d *GPSDetector) Trace(f *dataset.Flight) (*GPSTrace, error) {
	return d.runFlight(f)
}
