package soundboost

import (
	"fmt"

	"soundboost/internal/dataset"
	"soundboost/internal/parallel"
	"soundboost/internal/stats"
)

// IMUDetectorConfig tunes the IMU-attack RCA stage (§III-C1).
type IMUDetectorConfig struct {
	// StatMargin scales the calibrated benign KS-statistic threshold
	// (>= 1). Residuals within one window share the window's prediction
	// error, so the detector pools residuals over a sliding period of
	// windows and calibrates the KS statistic empirically on benign
	// periods rather than relying on the i.i.d. p-value.
	StatMargin float64
	// TrimSigma removes benign-statistic outliers before taking the max.
	TrimSigma float64
	// PeriodWindows is how many consecutive signature windows pool into
	// one KS detection period (window-level prediction offsets average
	// out across a period; attack shifts persist).
	PeriodWindows int
	// DetectPeriods is how many consecutive periods must exceed the
	// threshold before an alarm — suppresses isolated turbulence.
	DetectPeriods int
	// MinResiduals is the minimum residual count for a valid KS test.
	MinResiduals int
	// Stream selects the analysed IMU: 0 is the primary, k > 0 is
	// redundant unit k-1. Vehicles with multiple IMUs run one detector per
	// stream with separately learned thresholds (paper §V-B), so a
	// resonant injection tuned to one sensor model is attributed to that
	// unit alone.
	Stream int
}

// DefaultIMUDetectorConfig returns the tuned configuration.
func DefaultIMUDetectorConfig() IMUDetectorConfig {
	return IMUDetectorConfig{StatMargin: 1.1, TrimSigma: 4, PeriodWindows: 8, DetectPeriods: 2, MinResiduals: 20}
}

// IMUDetector flags IMU biasing attacks by comparing audio acceleration
// predictions against logged IMU measurements: benign residuals follow the
// normal distribution fitted at calibration; attack residuals deviate, and
// the per-window Kolmogorov-Smirnov statistic crosses the calibrated
// benign ceiling.
type IMUDetector struct {
	cfg    IMUDetectorConfig
	model  *AcousticModel
	benign stats.Normal
	// statThreshold is the alarm level on the per-period KS statistic.
	statThreshold float64
	// stdThreshold is the alarm level on the per-period residual standard
	// deviation. DoS-style injections widen the residual distribution
	// without shifting it; the KS statistic alone is weak against pure
	// variance inflation at realistic benign jitter, so both statistics
	// are calibrated (Fig. 6's signature is exactly sigma inflation).
	stdThreshold float64
}

// windowResiduals computes per-IMU-sample prediction residuals for every
// signature window of a flight; the per-window outputs preserve timing.
type windowResiduals struct {
	Start float64
	Vals  []float64
}

func flightResiduals(model *AcousticModel, f *dataset.Flight) ([]windowResiduals, error) {
	return flightResidualsStream(model, f, 0)
}

// flightResidualsStream computes residuals against the selected IMU
// stream (0 = primary, k > 0 = redundant unit k-1).
func flightResidualsStream(model *AcousticModel, f *dataset.Flight, stream int) ([]windowResiduals, error) {
	ex, err := NewExtractor(f.Audio, model.cfg.Signature)
	if err != nil {
		return nil, err
	}
	accelZ := func(s dataset.TelemetrySample) (float64, bool) {
		if stream == 0 {
			return s.IMUAccel.Z, true
		}
		if stream-1 < len(s.AuxIMUAccel) {
			return s.AuxIMUAccel[stream-1].Z, true
		}
		return 0, false
	}
	win := model.cfg.Signature.WindowSeconds
	// Per-window extraction and prediction fan out across the worker pool;
	// results stay in window order, so the output matches the serial loop.
	starts := ex.WindowStarts(win)
	perWindow := parallel.Map(0, len(starts), func(i int) *windowResiduals {
		t0 := starts[i]
		feat := windowFeatures(ex, f, t0, win)
		if feat == nil {
			return nil
		}
		pred := model.Predict(feat)
		tel := f.TelemetryBetween(t0, t0+win)
		if len(tel) == 0 {
			return nil
		}
		// z-axis (downward) residuals only: the thrust axis is the one the
		// acoustic channel predicts in every flight regime, and it is the
		// axis the paper's IMU attacks tamper with (Fig. 6). Horizontal
		// residuals shift with airspeed-dependent drag and would alias
		// aggressive-but-benign maneuvers into attacks.
		wr := &windowResiduals{Start: t0, Vals: make([]float64, 0, len(tel))}
		for _, s := range tel {
			if z, ok := accelZ(s); ok {
				wr.Vals = append(wr.Vals, pred.Z-z)
			}
		}
		if len(wr.Vals) == 0 {
			return nil
		}
		return wr
	})
	var out []windowResiduals
	for _, wr := range perWindow {
		if wr != nil {
			out = append(out, *wr)
		}
	}
	return out, nil
}

// periodStats slides the pooling period over a flight's window residuals
// and returns the KS statistic, residual standard deviation, and end time
// of each period.
func (d *IMUDetector) periodStats(rs []windowResiduals) (stat, std, endTime []float64) {
	k := d.cfg.PeriodWindows
	if k < 1 {
		k = 1
	}
	for i := 0; i+k <= len(rs); i++ {
		var pool []float64
		for j := i; j < i+k; j++ {
			pool = append(pool, rs[j].Vals...)
		}
		if len(pool) < d.cfg.MinResiduals {
			continue
		}
		res, err := stats.KSTestNormal(pool, d.benign)
		if err != nil {
			continue
		}
		stat = append(stat, res.Statistic)
		std = append(std, stats.StdDev(pool))
		endTime = append(endTime, rs[i+k-1].Start+d.model.cfg.Signature.WindowSeconds)
	}
	return stat, std, endTime
}

// NewIMUDetector calibrates the benign residual distribution and the
// benign per-period KS-statistic ceiling from benign flights. The benign
// set should span the mission diversity expected at analysis time.
func NewIMUDetector(model *AcousticModel, benignFlights []*dataset.Flight, cfg IMUDetectorConfig) (*IMUDetector, error) {
	if cfg.StatMargin < 1 {
		return nil, fmt.Errorf("soundboost: KS stat margin %g must be >= 1", cfg.StatMargin)
	}
	if cfg.DetectPeriods < 1 {
		cfg.DetectPeriods = 1
	}
	span := imuCalibTimer.Start()
	defer span.Stop()
	perFlight, err := parallel.MapErr(0, len(benignFlights), func(i int) ([]windowResiduals, error) {
		return flightResidualsStream(model, benignFlights[i], cfg.Stream)
	})
	if err != nil {
		return nil, err
	}
	var pool []float64
	for _, rs := range perFlight {
		for _, wr := range rs {
			pool = append(pool, wr.Vals...)
		}
	}
	benign, err := stats.FitNormal(pool)
	if err != nil {
		return nil, fmt.Errorf("soundboost: fit benign residuals: %w", err)
	}
	d := &IMUDetector{cfg: cfg, model: model, benign: benign}

	var ksStats, stds []float64
	for _, rs := range perFlight {
		s, sd, _ := d.periodStats(rs)
		ksStats = append(ksStats, s...)
		stds = append(stds, sd...)
	}
	if len(ksStats) == 0 {
		return nil, fmt.Errorf("soundboost: no benign periods for KS calibration")
	}
	d.statThreshold = stats.Max(stats.TrimOutliers(ksStats, cfg.TrimSigma)) * cfg.StatMargin
	d.stdThreshold = stats.Max(stats.TrimOutliers(stds, cfg.TrimSigma)) * cfg.StatMargin
	return d, nil
}

// BenignDistribution returns the calibrated benign residual normal.
func (d *IMUDetector) BenignDistribution() stats.Normal { return d.benign }

// Config returns the detector's configuration (after calibration-time
// normalisation). The streaming engine mirrors the batch detector from it.
func (d *IMUDetector) Config() IMUDetectorConfig { return d.cfg }

// StatThreshold returns the calibrated per-period KS-statistic ceiling.
func (d *IMUDetector) StatThreshold() float64 { return d.statThreshold }

// StdThreshold returns the calibrated per-period residual-sigma ceiling.
func (d *IMUDetector) StdThreshold() float64 { return d.stdThreshold }

// IMUVerdict is the outcome of the IMU RCA stage on one flight.
type IMUVerdict struct {
	// Attacked reports whether an IMU attack was flagged.
	Attacked bool
	// DetectionTime is the flight time (s) of the first alarmed window
	// (valid when Attacked).
	DetectionTime float64
	// WindowsTested and WindowsRejected summarise the KS sweep.
	WindowsTested   int
	WindowsRejected int
	// AttackStd is the residual standard deviation over rejected windows
	// (Fig. 6's widened distribution), 0 when benign.
	AttackStd float64
}

// Detect runs the IMU RCA stage over a flight.
func (d *IMUDetector) Detect(f *dataset.Flight) (IMUVerdict, error) {
	span := imuDetectTimer.Start()
	defer span.Stop()
	rs, err := flightResidualsStream(d.model, f, d.cfg.Stream)
	if err != nil {
		return IMUVerdict{}, err
	}
	statSeries, stdSeries, endTimes := d.periodStats(rs)
	var verdict IMUVerdict
	consecutive := 0
	verdict.WindowsTested = len(statSeries)
	rejected := make([]bool, len(statSeries))
	for i := range statSeries {
		if statSeries[i] > d.statThreshold || stdSeries[i] > d.stdThreshold {
			rejected[i] = true
			verdict.WindowsRejected++
			consecutive++
			if consecutive >= d.cfg.DetectPeriods && !verdict.Attacked {
				verdict.Attacked = true
				verdict.DetectionTime = endTimes[i]
			}
		} else {
			consecutive = 0
		}
	}
	if verdict.Attacked {
		// Residual spread over the rejected span (Fig. 6's widened sigma).
		var rejectedVals []float64
		k := d.cfg.PeriodWindows
		for i, r := range rejected {
			if r && i+k <= len(rs) {
				for j := i; j < i+k; j++ {
					rejectedVals = append(rejectedVals, rs[j].Vals...)
				}
			}
		}
		if len(rejectedVals) > 1 {
			verdict.AttackStd = stats.StdDev(rejectedVals)
		}
	}
	return verdict, nil
}

// ResidualHistogram builds the Fig. 6 residual histogram (z-axis residuals
// pooled over the whole flight).
func (d *IMUDetector) ResidualHistogram(f *dataset.Flight, lo, hi float64, bins int) (*stats.Histogram, error) {
	rs, err := flightResiduals(d.model, f)
	if err != nil {
		return nil, err
	}
	h := stats.NewHistogram(lo, hi, bins)
	for _, wr := range rs {
		for _, v := range wr.Vals {
			h.Add(v)
		}
	}
	return h, nil
}
