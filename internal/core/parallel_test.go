package soundboost

import (
	"math"
	"testing"

	"soundboost/internal/parallel"
	"soundboost/internal/sim"
)

// TestValidateForRate covers the Nyquist check that plain Validate cannot
// perform (SignatureConfig carries no sample rate).
func TestValidateForRate(t *testing.T) {
	good := testSignatureConfig()
	synth := testGenConfig(sim.HoverMission{Seconds: 1}, 0).Synth
	if err := good.ValidateForRate(synth.SampleRate); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := good.ValidateForRate(0); err == nil {
		t.Error("zero sample rate accepted")
	}
	// A band entirely above Nyquist can never see energy.
	bad := testSignatureConfig()
	bad.Bands[0].Low = synth.SampleRate
	bad.Bands[0].High = synth.SampleRate * 2
	if err := bad.ValidateForRate(synth.SampleRate); err == nil {
		t.Error("band entirely above Nyquist accepted")
	}
	// A band whose upper edge merely crosses Nyquist is clamped, not fatal.
	edge := testSignatureConfig()
	edge.Bands[0].High = synth.SampleRate // low edge stays below Nyquist
	if err := edge.ValidateForRate(synth.SampleRate); err != nil {
		t.Errorf("Nyquist-crossing band rejected: %v", err)
	}
}

// TestWindowStartsLongRecordingNoDrift is the regression test for the
// float-accumulation bug: with a hop that is not exactly representable in
// binary (0.1 s), repeated `t += hop` drifts after thousands of windows,
// shifting starts and dropping the final windows. Starts must equal
// i*hop exactly for the whole recording.
func TestWindowStartsLongRecordingNoDrift(t *testing.T) {
	cfg := testSignatureConfig()
	cfg.WindowSeconds = 0.2
	cfg.HopSeconds = 0.1
	const (
		rate = 100.0
		dur  = 7200.0 // two hours
	)
	e := &Extractor{cfg: cfg, rate: rate}
	for m := range e.filtered {
		e.filtered[m] = make([]float64, int(dur*rate))
	}
	starts := e.WindowStarts(cfg.WindowSeconds)
	// floor((dur-window)/hop)+1 windows, computed without accumulation.
	want := 0
	for i := 0; ; i++ {
		if float64(i)*cfg.HopSeconds+cfg.WindowSeconds > dur {
			break
		}
		want = i + 1
	}
	if len(starts) != want {
		t.Fatalf("window count %d, want %d", len(starts), want)
	}
	for i, s := range starts {
		if s != float64(i)*cfg.HopSeconds {
			t.Fatalf("start %d = %v, want exactly %v (drift %g)", i, s, float64(i)*cfg.HopSeconds, s-float64(i)*cfg.HopSeconds)
		}
	}
	last := starts[len(starts)-1]
	if last+cfg.WindowSeconds > dur {
		t.Errorf("last window [%g, %g] exceeds recording", last, last+cfg.WindowSeconds)
	}
}

// withWorkers runs fn under a fixed default worker count, restoring the
// previous default afterwards.
func withWorkers(n int, fn func()) {
	prev := parallel.DefaultWorkers()
	parallel.SetDefaultWorkers(n)
	defer parallel.SetDefaultWorkers(prev)
	fn()
}

// TestBuildWindowsParallelMatchesSerial is the tentpole equivalence
// guarantee at the feature level: the parallel window builder must be
// bitwise identical to the serial path (workers=1).
func TestBuildWindowsParallelMatchesSerial(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	var serial, par []WindowSample
	var serialErr, parErr error
	withWorkers(1, func() { serial, serialErr = BuildWindows(f, cfg, 0, 1) })
	withWorkers(4, func() { par, parErr = BuildWindows(f, cfg, 0, 1) })
	if serialErr != nil || parErr != nil {
		t.Fatalf("serial err %v, parallel err %v", serialErr, parErr)
	}
	if len(serial) == 0 || len(serial) != len(par) {
		t.Fatalf("window counts differ: serial %d, parallel %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Start != par[i].Start || serial[i].Label != par[i].Label {
			t.Fatalf("window %d metadata differs", i)
		}
		for j := range serial[i].Features {
			if serial[i].Features[j] != par[i].Features[j] {
				t.Fatalf("window %d feature %d: serial %v != parallel %v",
					i, j, serial[i].Features[j], par[i].Features[j])
			}
		}
	}
}

// TestAnalyzerParallelMatchesSerial is the tentpole equivalence guarantee
// end to end: calibrating and running the full RCA pipeline with a worker
// pool must produce Reports identical to the serial path.
func TestAnalyzerParallelMatchesSerial(t *testing.T) {
	fx := getFixture(t)
	run := func() []Report {
		an, err := NewAnalyzer(fx.model, fx.calib)
		if err != nil {
			t.Fatal(err)
		}
		var reports []Report
		for _, f := range fx.heldout {
			r, err := an.Analyze(f)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, r)
		}
		return reports
	}
	var serial, par []Report
	withWorkers(1, func() { serial = run() })
	withWorkers(4, func() { par = run() })
	if len(serial) != len(par) {
		t.Fatalf("report counts differ")
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Errorf("flight %d: serial report %+v != parallel report %+v", i, serial[i], par[i])
		}
	}
}

// TestExtractorRejectsNyquistBand wires ValidateForRate into construction.
func TestExtractorRejectsNyquistBand(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	cfg.Bands[0].Low = f.Audio.SampleRate
	cfg.Bands[0].High = f.Audio.SampleRate * 2
	if _, err := NewExtractor(f.Audio, cfg); err == nil {
		t.Error("extractor accepted band entirely above Nyquist")
	}
}

// TestFeaturesDeterministicAcrossCalls guards the pooled-scratch rewrite:
// repeated extraction of the same window must be bitwise stable even after
// buffers cycle through the arena.
func TestFeaturesDeterministicAcrossCalls(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	ex, err := NewExtractor(f.Audio, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := ex.Features(1.0, cfg.WindowSeconds)
	if first == nil {
		t.Fatal("no features")
	}
	for trial := 0; trial < 5; trial++ {
		again := ex.Features(1.0, cfg.WindowSeconds)
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d feature %d: %v != %v", trial, i, again[i], first[i])
			}
		}
	}
	for _, v := range first {
		if math.IsNaN(v) {
			t.Fatal("NaN feature")
		}
	}
}
