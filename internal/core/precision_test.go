package soundboost

import (
	"math"
	"testing"
)

func TestParsePrecision(t *testing.T) {
	cases := []struct {
		in      string
		want    Precision
		wantErr bool
	}{
		{"", Float64, false},
		{"float64", Float64, false},
		{"float32", Float32, false},
		{"float16", "", true},
		{"FLOAT32", "", true},
		{"f32", "", true},
	}
	for _, tc := range cases {
		got, err := ParsePrecision(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParsePrecision(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("ParsePrecision(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPrecisionToleranceAndString(t *testing.T) {
	if got := Float64.Tolerance(); got != 0 {
		t.Errorf("Float64 tolerance = %g, want 0", got)
	}
	if got := Precision("").Tolerance(); got != 0 {
		t.Errorf("zero-value tolerance = %g, want 0", got)
	}
	if got := Float32.Tolerance(); got != Float32Tolerance {
		t.Errorf("Float32 tolerance = %g, want %g", got, Float32Tolerance)
	}
	if got := Precision("").String(); got != "float64" {
		t.Errorf("zero-value String() = %q, want float64", got)
	}
}

// TestAcousticWindowFloat32Tolerance is the per-feature half of the
// tolerance contract: over every signature window of a real generated
// flight, the float32 kernel must track the float64 kernel within
// Float32Tolerance on every normalized (log-domain) feature.
func TestAcousticWindowFloat32Tolerance(t *testing.T) {
	fx := getFixture(t)
	cfg := fx.model.Config().Signature
	cfg32 := cfg
	cfg32.Precision = Float32

	windows := 0
	var maxErr float64
	for _, f := range append(fx.calib, fx.heldout...) {
		e64, err := NewExtractor(f.Audio, cfg)
		if err != nil {
			t.Fatalf("%s: float64 extractor: %v", f.Name, err)
		}
		e32, err := NewExtractor(f.Audio, cfg32)
		if err != nil {
			t.Fatalf("%s: float32 extractor: %v", f.Name, err)
		}
		for _, t0 := range e64.WindowStarts(cfg.WindowSeconds) {
			f64 := e64.Features(t0, cfg.WindowSeconds)
			f32 := e32.Features(t0, cfg.WindowSeconds)
			if (f64 == nil) != (f32 == nil) {
				t.Fatalf("%s t0=%g: window validity disagrees across precisions", f.Name, t0)
			}
			if f64 == nil {
				continue
			}
			if len(f32) != len(f64) {
				t.Fatalf("%s t0=%g: dim %d vs %d", f.Name, t0, len(f32), len(f64))
			}
			windows++
			for i := range f64 {
				d := math.Abs(f32[i] - f64[i])
				if d > maxErr {
					maxErr = d
				}
				if d > Float32Tolerance {
					t.Errorf("%s t0=%g feature %d: |%g - %g| = %g exceeds Float32Tolerance %g",
						f.Name, t0, i, f32[i], f64[i], d, Float32Tolerance)
				}
			}
		}
	}
	if windows == 0 {
		t.Fatal("no signature windows compared — the tolerance check is vacuous")
	}
	t.Logf("compared %d windows, max per-feature error %.3g (bound %g)", windows, maxErr, Float32Tolerance)
}

// TestAnalyzerWithPrecision pins the threshold-preserving clone
// semantics: re-precisioning an analyzer must keep every calibrated
// threshold bit-identical (only the hot-path arithmetic switches),
// Float64 must be a no-op returning the receiver, and the clone must
// not mutate the original.
func TestAnalyzerWithPrecision(t *testing.T) {
	fx := getFixture(t)
	an, err := NewAnalyzer(fx.model, fx.calib)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Precision(); got != Float64 {
		t.Fatalf("fresh analyzer precision = %q, want %q", got, Float64)
	}
	if same, err := an.WithPrecision(Float64); err != nil || same != an {
		t.Errorf("WithPrecision(Float64) = (%p, %v), want the receiver %p", same, err, an)
	}
	if _, err := an.WithPrecision("float16"); err == nil {
		t.Error("unknown precision accepted")
	}

	an32, err := an.WithPrecision(Float32)
	if err != nil {
		t.Fatal(err)
	}
	if an32 == an {
		t.Fatal("WithPrecision(Float32) returned the receiver")
	}
	if got := an32.Precision(); got != Float32 {
		t.Errorf("clone precision = %q, want %q", got, Float32)
	}
	if got := an.Precision(); got != Float64 {
		t.Errorf("original mutated: precision now %q", got)
	}
	if an32.IMU.StatThreshold() != an.IMU.StatThreshold() ||
		an32.IMU.StdThreshold() != an.IMU.StdThreshold() {
		t.Errorf("IMU thresholds changed: (%g, %g) vs (%g, %g)",
			an32.IMU.StatThreshold(), an32.IMU.StdThreshold(),
			an.IMU.StatThreshold(), an.IMU.StdThreshold())
	}
	if an32.GPSAudioOnly.Threshold() != an.GPSAudioOnly.Threshold() ||
		an32.GPSAudioIMU.Threshold() != an.GPSAudioIMU.Threshold() {
		t.Error("GPS thresholds changed across re-precisioning")
	}

	// The construction-time option calibrates under float32 features
	// (self-consistent thresholds) and must stamp reports the same way.
	anOpt, err := NewAnalyzer(fx.model, fx.calib, WithPrecision(Float32))
	if err != nil {
		t.Fatal(err)
	}
	if got := anOpt.Precision(); got != Float32 {
		t.Errorf("option-built analyzer precision = %q, want %q", got, Float32)
	}

	r64, err := an.Analyze(fx.heldout[0])
	if err != nil {
		t.Fatal(err)
	}
	r32, err := an32.Analyze(fx.heldout[0])
	if err != nil {
		t.Fatal(err)
	}
	if r64.Precision != Float64 || r32.Precision != Float32 {
		t.Errorf("report precisions = (%q, %q), want (float64, float32)", r64.Precision, r32.Precision)
	}
	if r64.Cause != r32.Cause {
		t.Errorf("verdict flipped across precisions: %q vs %q", r64.Cause, r32.Cause)
	}
}
