// Package soundboost implements the paper's primary contribution: the
// SoundBoost post-incident RCA framework. It turns microphone-array
// recordings into acoustic signatures (§III-A), learns the signature →
// acceleration mapping (§III-B), and runs the two-stage root cause
// analysis — IMU attack detection by Kolmogorov-Smirnov testing of
// prediction residuals (§III-C1) and GPS spoofing detection by Kalman
// velocity fusion with a running-mean error monitor (§III-C2).
package soundboost

import (
	"fmt"
	"math"
	"sync"

	"soundboost/internal/acoustics"
	"soundboost/internal/dsp"
	"soundboost/internal/parallel"
)

// SignatureConfig controls acoustic signature generation (paper §III-A).
type SignatureConfig struct {
	// WindowSeconds is the signature window (the paper's tuned value:
	// 0.5 s; swept in §IV-A).
	WindowSeconds float64
	// HopSeconds is the stride between consecutive windows.
	HopSeconds float64
	// SubFrames splits each window temporally so the signature captures
	// actuation dynamics, not just average loudness.
	SubFrames int
	// LowPassHz removes everything above the aerodynamic group (6 kHz in
	// the paper) — including any ultrasonic IMU-injection energy.
	LowPassHz float64
	// Bands are the analysis bands (blade-passing / mechanical /
	// aerodynamic split).
	Bands []dsp.Band
	// AttitudeFeatures appends the window-mean roll and pitch (from the
	// autopilot's attitude estimate, trusted per the threat model and
	// already required for the NED transform) to each signature. Tilt
	// determines steady-state aerodynamic drag, the one body-frame force
	// component rotor sound alone cannot resolve.
	AttitudeFeatures bool
	// Precision selects the hot-path arithmetic. The zero value is the
	// bitwise-pinned Float64 default; Float32 opts into the
	// single-precision fast path (see Precision). omitempty keeps
	// models saved before the field existed byte-identical on re-save.
	Precision Precision `json:",omitempty"`
}

// DefaultSignatureConfig derives the analysis layout from the synthesiser
// configuration so reduced-rate test setups get coherent bands.
func DefaultSignatureConfig(synth acoustics.SynthConfig) SignatureConfig {
	bladeCenter := float64(synth.Blades) * synth.HoverSpeed / (2 * math.Pi)
	lp := synth.AeroFreq * 1.12
	nyquist := synth.SampleRate / 2
	if lp >= nyquist {
		lp = nyquist * 0.95
	}
	return SignatureConfig{
		WindowSeconds:    0.5,
		HopSeconds:       0.25,
		SubFrames:        4,
		AttitudeFeatures: true,
		LowPassHz:        lp,
		Bands: []dsp.Band{
			{Name: "blade", Low: bladeCenter * 0.5, High: bladeCenter * 2.2},
			{Name: "mech", Low: synth.MechFreq * 0.72, High: synth.MechFreq * 1.28},
			{Name: "aero-lo", Low: synth.AeroFreq * 0.82, High: synth.AeroFreq},
			{Name: "aero-hi", Low: synth.AeroFreq, High: synth.AeroFreq * 1.12},
		},
	}
}

// Validate reports configuration errors.
func (c SignatureConfig) Validate() error {
	switch {
	case c.WindowSeconds <= 0:
		return fmt.Errorf("soundboost: window %g s must be positive", c.WindowSeconds)
	case c.HopSeconds <= 0:
		return fmt.Errorf("soundboost: hop %g s must be positive", c.HopSeconds)
	case c.HopSeconds > c.WindowSeconds:
		return fmt.Errorf("soundboost: hop %g s exceeds window %g s (windows would skip audio)", c.HopSeconds, c.WindowSeconds)
	case c.SubFrames < 1:
		return fmt.Errorf("soundboost: sub-frames %d must be >= 1", c.SubFrames)
	case len(c.Bands) == 0:
		return fmt.Errorf("soundboost: no analysis bands")
	}
	for _, b := range c.Bands {
		if b.Low < 0 {
			return fmt.Errorf("soundboost: band %q has negative low edge %g Hz", b.Name, b.Low)
		}
		if b.High <= b.Low {
			return fmt.Errorf("soundboost: band %q is empty or inverted (%g..%g Hz)", b.Name, b.Low, b.High)
		}
	}
	return c.Precision.validate()
}

// ValidateForRate validates the config against a concrete sample rate:
// beyond Validate, it rejects bands that lie entirely at or above the
// Nyquist frequency, where no spectral content can exist. A band whose
// upper edge merely crosses Nyquist is allowed — BandEnergy clamps it to
// the spectrum.
func (c SignatureConfig) ValidateForRate(sampleRate float64) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if sampleRate <= 0 {
		return fmt.Errorf("soundboost: sample rate %g Hz must be positive", sampleRate)
	}
	nyquist := sampleRate / 2
	for _, b := range c.Bands {
		if b.Low >= nyquist {
			return fmt.Errorf("soundboost: band %q (%g..%g Hz) lies entirely above Nyquist %g Hz", b.Name, b.Low, b.High, nyquist)
		}
	}
	return nil
}

// FeatureDim returns the signature vector length: per mic, per sub-frame,
// every band energy plus a broadband RMS term, plus the attitude features
// when enabled.
func (c SignatureConfig) FeatureDim() int {
	n := acoustics.NumMics * c.SubFrames * (len(c.Bands) + 1)
	if c.AttitudeFeatures {
		n += 2
	}
	return n
}

// AcousticDim returns the acoustic-only part of the feature vector.
func (c SignatureConfig) AcousticDim() int {
	return acoustics.NumMics * c.SubFrames * (len(c.Bands) + 1)
}

// BandFeatureIndices returns the feature-vector indices occupied by the
// named band across all mics and sub-frames — used by the counterfactual
// frequency-importance analysis (§IV-A).
func (c SignatureConfig) BandFeatureIndices(name string) []int {
	perFrame := len(c.Bands) + 1
	var out []int
	for b, band := range c.Bands {
		if band.Name != name {
			continue
		}
		for m := 0; m < acoustics.NumMics; m++ {
			for s := 0; s < c.SubFrames; s++ {
				out = append(out, (m*c.SubFrames+s)*perFrame+b)
			}
		}
	}
	return out
}

// Extractor computes acoustic signatures from one recording. It low-pass
// filters each channel once at construction, then serves windows.
type Extractor struct {
	cfg      SignatureConfig
	rate     float64
	filtered [acoustics.NumMics][]float64

	// f32sub memoizes per-sub-frame float32 features (log band energies
	// plus log RMS) keyed by exact integer sample offsets. Consecutive
	// signature windows overlap (hop < window), so their sub-frame grids
	// land on identical sample ranges; recomputing those FFTs yields
	// bit-identical values, making the cache a pure dedupe. Float32-mode
	// only — the float64 path stays byte-for-byte untouched.
	f32mu  sync.Mutex
	f32sub map[subFrameKey][]float64
}

// subFrameKey identifies one cached sub-frame: mic index, absolute
// start sample, and sub-frame length in samples (augmented/stretched
// windows use a different length and therefore a different key).
type subFrameKey struct {
	mic, start, sub int
}

// NewExtractor prepares signature extraction for a recording.
func NewExtractor(rec *acoustics.Recording, cfg SignatureConfig) (*Extractor, error) {
	if rec == nil || rec.Samples() == 0 {
		return nil, fmt.Errorf("soundboost: empty recording")
	}
	if err := cfg.ValidateForRate(rec.SampleRate); err != nil {
		return nil, err
	}
	e := &Extractor{cfg: cfg, rate: rec.SampleRate}
	span := extractFilterTimer.Start()
	defer span.Stop()
	// Each channel filters independently; fan the four mics out across the
	// worker pool. Filter state is per-channel, so results are identical to
	// the serial loop.
	channels, err := parallel.MapErr(0, len(rec.Channels), func(m int) ([]float64, error) {
		ch := rec.Channels[m]
		if cfg.LowPassHz > 0 && cfg.LowPassHz < rec.SampleRate/2 {
			lp, err := dsp.NewLowPass(cfg.LowPassHz, rec.SampleRate)
			if err != nil {
				return nil, fmt.Errorf("soundboost: low-pass: %w", err)
			}
			return lp.ProcessAll(ch), nil
		}
		return append([]float64(nil), ch...), nil
	})
	if err != nil {
		return nil, err
	}
	copy(e.filtered[:], channels)
	return e, nil
}

// Config returns the extractor's signature configuration.
func (e *Extractor) Config() SignatureConfig { return e.cfg }

// Duration returns the usable recording length in seconds.
func (e *Extractor) Duration() float64 {
	return float64(len(e.filtered[0])) / e.rate
}

// Features computes the signature for the window starting at t0 (seconds)
// spanning windowSeconds. Passing a window larger than cfg.WindowSeconds
// with the same sub-frame count implements the paper's time-shift
// augmentation (a stretched window simulates headwind-lengthened
// actuation). Returns nil when the window falls outside the recording.
func (e *Extractor) Features(t0, windowSeconds float64) []float64 {
	span := windowTimer.Start()
	defer span.Stop()
	start := int(t0 * e.rate)
	total := int(windowSeconds * e.rate)
	if start < 0 || total <= 0 || start+total > len(e.filtered[0]) {
		windowsRejected.Inc()
		return nil
	}
	var out []float64
	if e.cfg.Precision == Float32 {
		// The extractor-backed fast path memoizes sub-frames across
		// overlapping windows; the stateless kernel below recomputes them.
		out = e.acousticWindow32Cached(start, total)
	} else {
		var chans [acoustics.NumMics][]float64
		for m := range chans {
			chans[m] = e.filtered[m][start : start+total]
		}
		out = e.cfg.AcousticWindow(chans, e.rate)
	}
	if out == nil {
		windowsRejected.Inc()
	}
	return out
}

// AcousticWindow computes the acoustic part of the signature directly from
// per-mic low-pass-filtered sample windows (all the same length). It is
// the shared kernel of the batch Extractor and the online streaming
// windower: both paths must produce bit-identical features so that
// streaming verdicts are equivalent to post hoc Analyze. Returns nil when
// the window is too short for the configured sub-frame count.
func (c SignatureConfig) AcousticWindow(chans [acoustics.NumMics][]float64, rate float64) []float64 {
	total := len(chans[0])
	if total <= 0 {
		return nil
	}
	sub := total / c.SubFrames
	if sub < 8 {
		return nil
	}
	if c.Precision == Float32 {
		return c.acousticWindow32(chans, rate, sub)
	}
	nfft := dsp.NextPow2(sub)
	perFrame := len(c.Bands) + 1
	// Acoustic part only; attitude features (when configured) are appended
	// by the window builders, which have telemetry access.
	out := make([]float64, c.AcousticDim())
	plan := dsp.PlanFFT(nfft)
	buf := dsp.AcquireComplex(nfft)
	defer dsp.ReleaseComplex(buf)
	win := dsp.CachedHann(sub)
	for m := 0; m < acoustics.NumMics; m++ {
		ch := chans[m]
		for s := 0; s < c.SubFrames; s++ {
			off := s * sub
			for i := range buf {
				buf[i] = 0
			}
			for i := 0; i < sub; i++ {
				buf[i] = complex(ch[off+i]*win[i], 0)
			}
			plan.Forward(buf)
			mags := dsp.Magnitudes(buf[:nfft/2+1])
			base := (m*c.SubFrames + s) * perFrame
			var rms float64
			for i := 0; i < sub; i++ {
				v := ch[off+i]
				rms += v * v
			}
			rms = math.Sqrt(rms / float64(sub))
			for b, band := range c.Bands {
				// Normalise band energy by sqrt(nfft) so augmented
				// (longer) windows remain comparable to the base window.
				energy := dsp.BandEnergy(mags, nfft, rate, band) / math.Sqrt(float64(nfft))
				out[base+b] = math.Log1p(energy)
			}
			out[base+len(c.Bands)] = math.Log1p(rms)
		}
	}
	return out
}

// acousticWindow32 is the float32 fast path of AcousticWindow: one
// fused pass per sub-frame converts, Hann-windows and accumulates the
// RMS of the samples into a pooled float32 buffer, a packed real-input
// FFT produces the half spectrum at half the butterfly work, and band
// powers sum squared bins directly off the complex64 spectrum — no
// magnitude slice, one square root per band instead of one per bin.
// Feature layout and normalisation match the float64 kernel exactly;
// values differ only within the documented Float32Tolerance.
func (c SignatureConfig) acousticWindow32(chans [acoustics.NumMics][]float64, rate float64, sub int) []float64 {
	nfft := dsp.NextPow2(sub)
	perFrame := len(c.Bands) + 1
	out := make([]float64, c.AcousticDim())
	plan := dsp.PlanFFT32(nfft)
	re := dsp.AcquireFloats32(nfft)
	defer dsp.ReleaseFloats32(re)
	spec := dsp.AcquireComplex64(plan.SpectrumLen())
	defer dsp.ReleaseComplex64(spec)
	win := dsp.CachedHann32(sub)
	invSqrtN := 1 / math.Sqrt(float64(nfft))
	for m := 0; m < acoustics.NumMics; m++ {
		ch := chans[m]
		for s := 0; s < c.SubFrames; s++ {
			off := s * sub
			base := (m*c.SubFrames + s) * perFrame
			spec = c.subFrame32(ch[off:off+sub], nfft, rate, plan, re, spec, win, invSqrtN, out[base:base+perFrame])
		}
	}
	return out
}

// subFrame32 computes one sub-frame's features — log band energies
// followed by log RMS — into dst, using the caller's pooled transform
// buffers. re[len(ch):] must already be zero (the arena hands buffers
// out zeroed and ForwardReal leaves its input untouched). Returns the
// (possibly regrown) spectrum slice.
func (c SignatureConfig) subFrame32(ch []float64, nfft int, rate float64, plan *dsp.Plan32, re []float32, spec []complex64, win []float32, invSqrtN float64, dst []float64) []complex64 {
	sub := len(ch)
	var sumSq float32
	for i, v32 := range ch {
		v := float32(v32)
		sumSq += v * v
		re[i] = v * win[i]
	}
	spec = plan.ForwardReal(re, spec)
	for b, band := range c.Bands {
		energy := dsp.BandPower32(spec, nfft, rate, band) * invSqrtN
		dst[b] = math.Log1p(energy)
	}
	dst[len(c.Bands)] = math.Log1p(math.Sqrt(float64(sumSq) / float64(sub)))
	return spec
}

// acousticWindow32Cached is the float32 kernel fed through the
// extractor's sub-frame memo: every (mic, start sample, sub length)
// grid cell is transformed at most once per recording. Because hop <
// window, consecutive windows share sub-frames at identical sample
// offsets, and each RCA detector walks the same grid — both dedupes
// return bit-identical values, so cached and recomputed signatures are
// indistinguishable. Two goroutines racing on the same missing key both
// compute the same values; the second store is a harmless overwrite.
func (e *Extractor) acousticWindow32Cached(start, total int) []float64 {
	c := e.cfg
	sub := total / c.SubFrames
	if sub < 8 {
		return nil
	}
	nfft := dsp.NextPow2(sub)
	perFrame := len(c.Bands) + 1
	out := make([]float64, c.AcousticDim())
	plan := dsp.PlanFFT32(nfft)
	re := dsp.AcquireFloats32(nfft)
	defer dsp.ReleaseFloats32(re)
	spec := dsp.AcquireComplex64(plan.SpectrumLen())
	defer dsp.ReleaseComplex64(spec)
	win := dsp.CachedHann32(sub)
	invSqrtN := 1 / math.Sqrt(float64(nfft))
	for m := 0; m < acoustics.NumMics; m++ {
		ch := e.filtered[m]
		for s := 0; s < c.SubFrames; s++ {
			off := start + s*sub
			base := (m*c.SubFrames + s) * perFrame
			key := subFrameKey{mic: m, start: off, sub: sub}
			e.f32mu.Lock()
			cached, ok := e.f32sub[key]
			e.f32mu.Unlock()
			if !ok {
				cached = make([]float64, perFrame)
				spec = c.subFrame32(ch[off:off+sub], nfft, e.rate, plan, re, spec, win, invSqrtN, cached)
				e.f32mu.Lock()
				if e.f32sub == nil {
					e.f32sub = make(map[subFrameKey][]float64)
				}
				e.f32sub[key] = cached
				e.f32mu.Unlock()
			}
			copy(out[base:base+perFrame], cached)
		}
	}
	return out
}

// WindowStarts enumerates the start times of all complete signature
// windows of the given size with the configured hop. Each start is
// computed as i*hop from an integer counter rather than by repeated
// addition, so long recordings do not accumulate float rounding drift
// (repeated `t += hop` loses windows and shifts starts after thousands
// of hops).
func (e *Extractor) WindowStarts(windowSeconds float64) []float64 {
	var out []float64
	dur := e.Duration()
	for i := 0; ; i++ {
		t := float64(i) * e.cfg.HopSeconds
		if t+windowSeconds > dur {
			break
		}
		out = append(out, t)
	}
	return out
}
