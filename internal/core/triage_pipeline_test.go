package soundboost

import (
	"testing"

	"soundboost/internal/attack"
	"soundboost/internal/dataset"
	"soundboost/internal/triage"
)

// trainedTriageAnalyzer calibrates an analyzer over the fixture corpus
// with a triage tier trained on the calibration flights plus one attack
// flight per family, and verifies the zero-flip guarantee on that
// training corpus.
func trainedTriageAnalyzer(t *testing.T) (*Analyzer, []*dataset.Flight) {
	t.Helper()
	fx := getFixture(t)
	// The tier needs benign breadth beyond the three calibration flights,
	// or fresh-seed hover flights land outside the learned radius and the
	// fast path degenerates to "escalate everything".
	corpus := append([]*dataset.Flight(nil), fx.train...)
	corpus = append(corpus, fx.calib...)
	corpus = append(corpus,
		gpsAttackFlight(t, 3001),
		imuAttackFlight(t, attack.IMUSideSwing, 3002),
		imuAttackFlight(t, attack.IMUAccelDoS, 3003),
	)
	tier, err := TrainTriage(corpus, testSignatureConfig(), triage.Config{})
	if err != nil {
		t.Fatalf("TrainTriage: %v", err)
	}
	an, err := NewAnalyzer(fx.model, fx.calib, WithTriage(tier))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := an.VerifyTriage(corpus); err != nil {
		t.Fatalf("VerifyTriage: %v", err)
	}
	return an, corpus
}

// fastpathed reports whether the analyzer short-circuited the flight:
// the fast benign report is bitwise-distinguishable from any full-path
// report (the full path always populates the IMU window counts).
func fastpathed(t *testing.T, an *Analyzer, f *dataset.Flight) bool {
	t.Helper()
	rep, err := an.Analyze(f)
	if err != nil {
		t.Fatalf("Analyze %s: %v", f.Name, err)
	}
	return rep == FastBenignReport(f.Name, an)
}

// TestTriageZeroFlipOnCorpus is the batch-path zero verdict-flip
// guarantee: over the whole training corpus, the triage-on analyzer
// must attribute exactly the cause the triage-off analyzer does.
func TestTriageZeroFlipOnCorpus(t *testing.T) {
	an, corpus := trainedTriageAnalyzer(t)
	full := an.WithoutTriage()
	if full.Triage != nil || an.Triage == nil {
		t.Fatal("WithoutTriage did not detach the tier (or mutated the receiver)")
	}
	for _, f := range corpus {
		with, err := an.Analyze(f)
		if err != nil {
			t.Fatalf("triage-on Analyze %s: %v", f.Name, err)
		}
		without, err := full.Analyze(f)
		if err != nil {
			t.Fatalf("triage-off Analyze %s: %v", f.Name, err)
		}
		if with.Cause != without.Cause {
			t.Errorf("%s: verdict flipped: triage-on %q vs triage-off %q", f.Name, with.Cause, without.Cause)
		}
	}
}

// TestTriageEscalationAccuracyDisjoint is the leakage-honesty check:
// escalation accuracy is scored on flights generated from seeds the
// tier never trained on. Every held-out attack must escalate into the
// full pipeline (the conservative direction the zero-flip guarantee
// depends on), and the benign fast-path must not be degenerate.
func TestTriageEscalationAccuracyDisjoint(t *testing.T) {
	an, _ := trainedTriageAnalyzer(t)
	fx := getFixture(t)

	attacks := []struct {
		name   string
		flight *dataset.Flight
	}{
		{"gps-drift", gpsAttackFlight(t, 4001)},
		{"imu-side-swing", imuAttackFlight(t, attack.IMUSideSwing, 4002)},
		{"imu-accel-dos", imuAttackFlight(t, attack.IMUAccelDoS, 4003)},
	}
	for _, tc := range attacks {
		t.Run(tc.name, func(t *testing.T) {
			if fastpathed(t, an, tc.flight) {
				t.Errorf("held-out %s attack took the fast path", tc.name)
			}
		})
	}

	fast := 0
	for _, f := range fx.heldout {
		if fastpathed(t, an, f) {
			fast++
		}
	}
	t.Logf("held-out benign fast-path: %d/%d", fast, len(fx.heldout))
	if fast == 0 {
		t.Error("no held-out benign flight took the fast path — the tier screens nothing")
	}
}
