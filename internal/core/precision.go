package soundboost

import "fmt"

// Precision selects the arithmetic of the signature/inference hot path.
// The zero value means Float64, the bitwise-pinned default: batch,
// stream and fleet paths all produce bit-identical features and
// verdicts under it, and every equivalence test in the repo pins that.
// Float32 is the opt-in fast path — real-input FFTs over float32
// buffers and float32 network inference — verified corpus-wide to
// produce identical verdicts within the documented per-feature
// tolerance (see DESIGN.md, "Precision & tolerance contract").
type Precision string

const (
	// Float64 is the exact default.
	Float64 Precision = "float64"
	// Float32 is the opt-in single-precision fast path.
	Float32 Precision = "float32"
)

// Float32Tolerance is the documented per-feature absolute error bound
// of the float32 path relative to float64, on normalized (log-domain)
// signature features. Measured corpus-wide by the equivalence suite
// with an order-of-magnitude safety margin; see DESIGN.md.
const Float32Tolerance = 1e-3

// ParsePrecision converts a wire/flag string to a Precision. The empty
// string parses as Float64.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", Float64:
		return Float64, nil
	case Float32:
		return Float32, nil
	}
	return "", fmt.Errorf("soundboost: unknown precision %q (want %q or %q)", s, Float64, Float32)
}

// validate accepts the zero value and the two named precisions.
func (p Precision) validate() error {
	switch p {
	case "", Float64, Float32:
		return nil
	}
	return fmt.Errorf("soundboost: unknown precision %q (want %q or %q)", p, Float64, Float32)
}

// Tolerance returns the documented per-feature error bound of the
// precision mode: 0 for the exact float64 default, Float32Tolerance
// for the float32 fast path.
func (p Precision) Tolerance() float64 {
	if p == Float32 {
		return Float32Tolerance
	}
	return 0
}

// String returns the wire spelling, with the zero value rendered as
// the float64 default.
func (p Precision) String() string {
	if p == "" {
		return string(Float64)
	}
	return string(p)
}
