package soundboost

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"soundboost/internal/attack"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// testGenConfig is the reduced-rate configuration all core tests share.
func testGenConfig(mission sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	// Cap the velocity envelope at the mission cruise speed (standard PX4
	// practice) so attack-induced chases stay inside the trained regime.
	cfg.World.Controller.MaxVel = 3.0
	return cfg
}

func testSignatureConfig() SignatureConfig {
	cfg := testGenConfig(sim.HoverMission{Seconds: 1}, 0)
	return DefaultSignatureConfig(cfg.Synth)
}

// fixture builds a small corpus and trained model once for all tests.
type fixture struct {
	train   []*dataset.Flight
	calib   []*dataset.Flight // mission-diverse benign calibration flights
	heldout []*dataset.Flight // unseen benign flights for FP checks
	model   *AcousticModel
}

// benign returns calibration + held-out flights (diverse benign pool).
func (f *fixture) benign() []*dataset.Flight {
	return append(append([]*dataset.Flight(nil), f.calib...), f.heldout...)
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		f := &fixture{}
		missions := []sim.Mission{
			sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
			sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
			}),
			sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
			}),
		}
		seed := int64(100)
		for rep := 0; rep < 2; rep++ {
			for _, m := range missions {
				fl, err := dataset.Generate(testGenConfig(m, seed))
				if err != nil {
					fixErr = err
					return
				}
				f.train = append(f.train, fl)
				seed += 7
			}
		}
		// Calibration must span the mission diversity the analyser will
		// see (a hover-only calibration mislabels benign maneuvers).
		for _, m := range missions {
			fl, err := dataset.Generate(testGenConfig(m, seed))
			if err != nil {
				fixErr = err
				return
			}
			f.calib = append(f.calib, fl)
			seed += 7
		}
		for i := 0; i < 2; i++ {
			fl, err := dataset.Generate(testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, seed))
			if err != nil {
				fixErr = err
				return
			}
			f.heldout = append(f.heldout, fl)
			seed += 7
		}
		mcfg := DefaultMappingConfig(testSignatureConfig())
		mcfg.Hidden = 48
		mcfg.Train.Epochs = 100
		model, _, err := TrainModel(f.train, nil, mcfg)
		if err != nil {
			fixErr = err
			return
		}
		f.model = model
		fix = f
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func TestSignatureConfigValidate(t *testing.T) {
	good := testSignatureConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*SignatureConfig)
	}{
		{"zero window", func(c *SignatureConfig) { c.WindowSeconds = 0 }},
		{"zero hop", func(c *SignatureConfig) { c.HopSeconds = 0 }},
		{"hop exceeds window", func(c *SignatureConfig) { c.HopSeconds = c.WindowSeconds * 2 }},
		{"zero subframes", func(c *SignatureConfig) { c.SubFrames = 0 }},
		{"no bands", func(c *SignatureConfig) { c.Bands = nil }},
		{"inverted band", func(c *SignatureConfig) { c.Bands[0].Low, c.Bands[0].High = c.Bands[0].High, c.Bands[0].Low }},
		{"empty band", func(c *SignatureConfig) { c.Bands[1].High = c.Bands[1].Low }},
		{"negative band edge", func(c *SignatureConfig) { c.Bands[0].Low = -5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := testSignatureConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestFeatureDimAndBandIndices(t *testing.T) {
	cfg := testSignatureConfig()
	wantDim := 4*cfg.SubFrames*(len(cfg.Bands)+1) + 2 // +2 attitude features
	if got := cfg.FeatureDim(); got != wantDim {
		t.Errorf("FeatureDim = %d, want %d", got, wantDim)
	}
	if got := cfg.AcousticDim(); got != wantDim-2 {
		t.Errorf("AcousticDim = %d, want %d", got, wantDim-2)
	}
	idx := cfg.BandFeatureIndices("blade")
	if len(idx) != 4*cfg.SubFrames {
		t.Errorf("blade indices = %d, want %d", len(idx), 4*cfg.SubFrames)
	}
	for _, i := range idx {
		if i < 0 || i >= wantDim {
			t.Errorf("index %d out of range", i)
		}
	}
	if got := cfg.BandFeatureIndices("nonexistent"); len(got) != 0 {
		t.Errorf("unknown band indices = %v", got)
	}
}

func TestExtractorFeatures(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	ex, err := NewExtractor(f.Audio, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feat := ex.Features(1.0, cfg.WindowSeconds)
	if len(feat) != cfg.AcousticDim() {
		t.Fatalf("acoustic feature dim %d, want %d", len(feat), cfg.AcousticDim())
	}
	for i, v := range feat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d is %v", i, v)
		}
	}
	// Out-of-range windows return nil.
	if ex.Features(-1, cfg.WindowSeconds) != nil {
		t.Error("negative start accepted")
	}
	if ex.Features(1e6, cfg.WindowSeconds) != nil {
		t.Error("past-end window accepted")
	}
	// Augmented (stretched) windows keep the same dimension.
	aug := ex.Features(1.0, cfg.WindowSeconds*5)
	if len(aug) != cfg.AcousticDim() {
		t.Errorf("augmented dim %d, want %d", len(aug), cfg.AcousticDim())
	}
}

func TestExtractorEmptyRecording(t *testing.T) {
	if _, err := NewExtractor(nil, testSignatureConfig()); err == nil {
		t.Error("nil recording accepted")
	}
}

func TestWindowStarts(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	ex, err := NewExtractor(f.Audio, cfg)
	if err != nil {
		t.Fatal(err)
	}
	starts := ex.WindowStarts(cfg.WindowSeconds)
	if len(starts) == 0 {
		t.Fatal("no windows")
	}
	for i := 1; i < len(starts); i++ {
		if math.Abs(starts[i]-starts[i-1]-cfg.HopSeconds) > 1e-9 {
			t.Fatalf("hop irregular at %d", i)
		}
	}
	last := starts[len(starts)-1]
	if last+cfg.WindowSeconds > ex.Duration()+1e-9 {
		t.Error("window exceeds recording")
	}
}

// The central learning claim: the acoustic model predicts IMU acceleration
// with small error on unseen benign data, and the z-axis residuals centre
// near zero (Fig. 6, blue histogram).
func TestModelPredictsAcceleration(t *testing.T) {
	fx := getFixture(t)
	mse, err := EvaluateMSE(fx.model, fx.benign())
	if err != nil {
		t.Fatal(err)
	}
	// Labels include gravity (z ~ -9.8): an unconditional mean predictor
	// would score far worse than 1.0 here.
	if mse > 1.0 {
		t.Errorf("held-out MSE = %v, want < 1.0", mse)
	}
	// Residual mean near zero.
	windows, err := BuildWindows(fx.heldout[0], fx.model.cfg.Signature, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum mathx.Vec3
	for _, w := range windows {
		sum = sum.Add(fx.model.Predict(w.Features).Sub(w.Label))
	}
	mean := sum.Scale(1 / float64(len(windows)))
	if math.Abs(mean.Z) > 0.5 {
		t.Errorf("z residual mean = %v, want ~0", mean.Z)
	}
}

// Counterfactual frequency importance (§IV-A): removing the aerodynamic
// group from the signal must hurt much more than removing the blade group.
func TestFrequencyImportanceOrdering(t *testing.T) {
	fx := getFixture(t)
	base, err := EvaluateMSE(fx.model, fx.benign())
	if err != nil {
		t.Fatal(err)
	}
	gen := testGenConfig(sim.HoverMission{Seconds: 1}, 0)
	noAero, err := EvaluateMSEBandRemoved(fx.model, fx.benign(), gen.Synth.AeroFreq, 3)
	if err != nil {
		t.Fatal(err)
	}
	bladeCenter := float64(gen.Synth.Blades) * gen.Synth.HoverSpeed / (2 * math.Pi)
	noBlade, err := EvaluateMSEBandRemoved(fx.model, fx.benign(), bladeCenter, 3)
	if err != nil {
		t.Fatal(err)
	}
	if noAero <= base {
		t.Errorf("removing aero did not hurt: %v <= %v", noAero, base)
	}
	if noAero <= noBlade {
		t.Errorf("aero removal (%v) should hurt more than blade removal (%v)", noAero, noBlade)
	}
}

// PredictMasked zeroes feature columns in normalised space; masking all
// features must change the prediction toward the label mean.
func TestPredictMasked(t *testing.T) {
	fx := getFixture(t)
	windows, err := BuildWindows(fx.heldout[0], fx.model.cfg.Signature, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := windows[0]
	all := make([]int, len(w.Features))
	for i := range all {
		all[i] = i
	}
	masked := fx.model.PredictMasked(w.Features, all)
	unmasked := fx.model.Predict(w.Features)
	if masked == unmasked {
		t.Error("masking all features did not change the prediction")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	fx := getFixture(t)
	var buf bytes.Buffer
	if err := fx.model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := BuildWindows(fx.heldout[0], fx.model.cfg.Signature, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range windows[:5] {
		a := fx.model.Predict(w.Features)
		b := loaded.Predict(w.Features)
		if a.Sub(b).Norm() > 1e-9 {
			t.Fatalf("prediction mismatch after round trip: %v vs %v", a, b)
		}
	}
}

func TestLoadModelCorrupt(t *testing.T) {
	if _, err := LoadModel(bytes.NewBufferString("{")); err == nil {
		t.Error("corrupt model accepted")
	}
}

func imuAttackFlight(t *testing.T, mode attack.IMUBiasMode, seed int64) *dataset.Flight {
	t.Helper()
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, seed)
	biaser := &attack.IMUBiaser{
		Window: attack.Window{Start: 5, End: 11},
		Mode:   mode,
		Axis:   mathx.Vec3{Z: 1},
	}
	switch mode {
	case attack.IMUSideSwing:
		biaser.Axis = mathx.Vec3{X: 1}
		biaser.Magnitude = 1.2
		biaser.RampSeconds = 1
		biaser.OscillateHz = 0.9
	case attack.IMUAccelDoS:
		biaser.Magnitude = 3
		biaser.Rng = rand.New(rand.NewSource(seed))
	}
	cfg.Scenario = attack.Scenario{Name: string(mode), IMU: biaser}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestIMUDetectorFlagsAttacks(t *testing.T) {
	fx := getFixture(t)
	det, err := NewIMUDetector(fx.model, fx.calib, DefaultIMUDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []attack.IMUBiasMode{attack.IMUAccelDoS, attack.IMUSideSwing} {
		t.Run(string(mode), func(t *testing.T) {
			f := imuAttackFlight(t, mode, 900+int64(len(mode)))
			v, err := det.Detect(f)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Attacked {
				t.Fatalf("attack not detected: %+v", v)
			}
			if v.DetectionTime < 5 || v.DetectionTime > 13 {
				t.Errorf("detection at t=%v, attack window [5,11)", v.DetectionTime)
			}
		})
	}
}

func TestIMUDetectorQuietOnBenign(t *testing.T) {
	fx := getFixture(t)
	det, err := NewIMUDetector(fx.model, fx.calib, DefaultIMUDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Detect(fx.heldout[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Attacked {
		t.Errorf("false positive on benign flight: %+v", v)
	}
}

func TestIMUDetectorInvalidMargin(t *testing.T) {
	fx := getFixture(t)
	cfg := DefaultIMUDetectorConfig()
	cfg.StatMargin = 0.5
	if _, err := NewIMUDetector(fx.model, fx.calib, cfg); err == nil {
		t.Error("margin below 1 accepted")
	}
	if _, err := NewIMUDetector(fx.model, nil, DefaultIMUDetectorConfig()); err == nil {
		t.Error("no calibration flights accepted")
	}
}

func TestResidualHistogramWidensUnderAttack(t *testing.T) {
	fx := getFixture(t)
	det, err := NewIMUDetector(fx.model, fx.calib, DefaultIMUDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	benignHist, err := det.ResidualHistogram(fx.heldout[0], -6, 6, 40)
	if err != nil {
		t.Fatal(err)
	}
	attackHist, err := det.ResidualHistogram(imuAttackFlight(t, attack.IMUAccelDoS, 777), -6, 6, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Attack mass in the tails (|r| > 2) must exceed benign tail mass.
	tailMass := func(h interface {
		BinCenter(int) float64
		Density(int) float64
	}, bins int) float64 {
		var m float64
		for i := 0; i < bins; i++ {
			if c := h.BinCenter(i); c < -2 || c > 2 {
				m += h.Density(i)
			}
		}
		return m
	}
	if tailMass(attackHist, 40) <= tailMass(benignHist, 40) {
		t.Error("attack histogram tails not heavier than benign")
	}
}

func gpsAttackFlight(t *testing.T, seed int64) *dataset.Flight {
	t.Helper()
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 20}, seed)
	// Drift-mode takeover: real spoofers drag the reported position away
	// gradually (a 10 m static jump would be shed by the EKF's innovation
	// gate, and full trust in it produces an unphysical runaway).
	cfg.Scenario = attack.Scenario{
		Name: "gps",
		GPS: &attack.GPSSpoofer{
			Window:      attack.Window{Start: 6, End: 18},
			Mode:        attack.GPSSpoofDrift,
			SpoofOffset: mathx.Vec3{X: 24}, // 2 m/s pull
		},
	}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGPSDetectorFlagsSpoofing(t *testing.T) {
	fx := getFixture(t)
	for _, mode := range []kalman.Mode{kalman.ModeAudioOnly, kalman.ModeAudioIMU} {
		t.Run(string(mode), func(t *testing.T) {
			det, err := NewGPSDetector(fx.model, fx.calib, DefaultGPSDetectorConfig(mode))
			if err != nil {
				t.Fatal(err)
			}
			f := gpsAttackFlight(t, 1200+int64(len(mode)))
			v, err := det.Detect(f)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Attacked {
				t.Fatalf("spoof not detected (peak %v, threshold %v)", v.PeakError, v.Threshold)
			}
			if v.DetectionTime < 6 {
				t.Errorf("detection at t=%v before attack onset", v.DetectionTime)
			}
		})
	}
}

func TestGPSDetectorQuietOnBenign(t *testing.T) {
	fx := getFixture(t)
	det, err := NewGPSDetector(fx.model, fx.calib, DefaultGPSDetectorConfig(kalman.ModeAudioIMU))
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Detect(fx.heldout[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Attacked {
		t.Errorf("false positive on benign flight: %+v", v)
	}
}

func TestGPSDetectorNeedsCalibration(t *testing.T) {
	fx := getFixture(t)
	if _, err := NewGPSDetector(fx.model, nil, DefaultGPSDetectorConfig(kalman.ModeAudioIMU)); err == nil {
		t.Error("no calibration flights accepted")
	}
}

func TestGPSTraceShape(t *testing.T) {
	fx := getFixture(t)
	det, err := NewGPSDetector(fx.model, fx.calib, DefaultGPSDetectorConfig(kalman.ModeAudioIMU))
	if err != nil {
		t.Fatal(err)
	}
	f := gpsAttackFlight(t, 1500)
	trace, err := det.Trace(f)
	if err != nil {
		t.Fatal(err)
	}
	n := len(trace.Time)
	if n == 0 || len(trace.FusedVel) != n || len(trace.GPSVel) != n ||
		len(trace.FusedPos) != n || len(trace.RunningError) != n {
		t.Fatalf("ragged trace: %d/%d/%d/%d/%d", n, len(trace.FusedVel), len(trace.GPSVel), len(trace.FusedPos), len(trace.RunningError))
	}
	// During the spoof the fused and GPS velocities must diverge (Fig. 7).
	var maxGap float64
	for i, tm := range trace.Time {
		if tm > 8 && tm < 18 {
			if gap := trace.FusedVel[i].Sub(trace.GPSVel[i]).Norm(); gap > maxGap {
				maxGap = gap
			}
		}
	}
	if maxGap < 0.3 {
		t.Errorf("fused-vs-GPS velocity gap %v during spoof, want > 0.3", maxGap)
	}
}

func TestAnalyzerRootCauses(t *testing.T) {
	fx := getFixture(t)
	an, err := NewAnalyzer(fx.model, fx.calib)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("benign", func(t *testing.T) {
		r, err := an.Analyze(fx.heldout[0])
		if err != nil {
			t.Fatal(err)
		}
		if r.Cause != CauseNone {
			t.Errorf("benign cause = %v", r.Cause)
		}
		if r.GPSMode != kalman.ModeAudioIMU {
			t.Errorf("benign GPS mode = %v, want audio+imu", r.GPSMode)
		}
	})
	t.Run("imu attack", func(t *testing.T) {
		r, err := an.Analyze(imuAttackFlight(t, attack.IMUAccelDoS, 2100))
		if err != nil {
			t.Fatal(err)
		}
		if r.Cause != CauseIMU && r.Cause != CauseIMUAndGPS {
			t.Errorf("imu attack cause = %v", r.Cause)
		}
		if !r.IMU.Attacked {
			t.Error("IMU verdict not attacked")
		}
		if r.GPSMode != kalman.ModeAudioOnly {
			t.Errorf("GPS mode = %v, want audio-only after IMU flag", r.GPSMode)
		}
	})
	t.Run("gps attack", func(t *testing.T) {
		r, err := an.Analyze(gpsAttackFlight(t, 2200))
		if err != nil {
			t.Fatal(err)
		}
		if r.Cause != CauseGPS {
			t.Errorf("gps attack cause = %v", r.Cause)
		}
		if r.GPSMode != kalman.ModeAudioIMU {
			t.Errorf("GPS mode = %v, want audio+imu with intact IMU", r.GPSMode)
		}
	})
}

func TestAnalyzerNilModel(t *testing.T) {
	if _, err := NewAnalyzer(nil, nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Flight:  "f1",
		Cause:   CauseGPS,
		GPS:     GPSVerdict{Attacked: true, DetectionTime: 42, PeakError: 3, Threshold: 1},
		GPSMode: kalman.ModeAudioIMU,
	}
	s := r.String()
	for _, want := range []string{"f1", "gps", "SPOOFED", "42.0"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestTrainModelNoWindows(t *testing.T) {
	cfg := DefaultMappingConfig(testSignatureConfig())
	if _, _, err := TrainModel(nil, nil, cfg); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestActuatorDetector(t *testing.T) {
	fx := getFixture(t)
	det, err := NewActuatorDetector(fx.model, DefaultActuatorDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Benign flight: predicted thrust stays near 1 g the whole time.
	v, err := det.Detect(fx.heldout[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Attacked {
		t.Errorf("benign flight flagged as actuator outage: %+v", v)
	}
	if v.MinPredictedG < 0.7 {
		t.Errorf("benign min predicted thrust %.2f g implausibly low", v.MinPredictedG)
	}

	// Actuator DoS flight: block waveform idles all motors 60%% of each
	// second — the rotors go quiet and the model predicts sub-flight
	// thrust (paper §V-B).
	cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -30}, Seconds: 12}, 3100)
	cfg.Scenario = attack.Scenario{
		Name: "actuator",
		Actuator: &attack.ActuatorDoS{
			Window:        attack.Window{Start: 4, End: 10},
			PeriodSeconds: 1.2,
			DutyOff:       0.6,
			IdleSpeed:     120,
		},
	}
	f, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario.Kind != "actuator-dos" {
		t.Fatalf("Kind = %q", f.Scenario.Kind)
	}
	v, err = det.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attacked {
		t.Fatalf("actuator outage missed: min predicted %.2f g", v.MinPredictedG)
	}
	if v.DetectionTime < 4 || v.DetectionTime > 11 {
		t.Errorf("detection at t=%.1f, attack window [4,10)", v.DetectionTime)
	}
}

func TestActuatorDetectorConfigValidation(t *testing.T) {
	fx := getFixture(t)
	cfg := DefaultActuatorDetectorConfig()
	cfg.MinThrustFraction = 0
	if _, err := NewActuatorDetector(fx.model, cfg); err == nil {
		t.Error("zero thrust fraction accepted")
	}
	cfg.MinThrustFraction = 1.5
	if _, err := NewActuatorDetector(fx.model, cfg); err == nil {
		t.Error("thrust fraction above 1 accepted")
	}
}

func TestAnalyzerSaveLoadRoundTrip(t *testing.T) {
	fx := getFixture(t)
	an, err := NewAnalyzer(fx.model, fx.calib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := an.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAnalyzer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds survive exactly.
	if loaded.IMU.StatThreshold() != an.IMU.StatThreshold() ||
		loaded.IMU.StdThreshold() != an.IMU.StdThreshold() {
		t.Error("IMU thresholds changed in round trip")
	}
	if loaded.GPSAudioOnly.Threshold() != an.GPSAudioOnly.Threshold() ||
		loaded.GPSAudioIMU.Threshold() != an.GPSAudioIMU.Threshold() {
		t.Error("GPS thresholds changed in round trip")
	}
	// Verdicts agree on a real flight.
	f := gpsAttackFlight(t, 4200)
	r1, err := an.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cause != r2.Cause {
		t.Errorf("cause changed in round trip: %v vs %v", r1.Cause, r2.Cause)
	}
}

func TestAnalyzerSavePartial(t *testing.T) {
	an := &Analyzer{}
	var buf bytes.Buffer
	if err := an.Save(&buf); err == nil {
		t.Error("partial analyzer saved")
	}
	if _, err := LoadAnalyzer(bytes.NewBufferString("{")); err == nil {
		t.Error("corrupt analyzer loaded")
	}
}

// Paper §V-B: on a vehicle with redundant IMUs, per-stream detectors with
// separately learned thresholds attribute a primary-tuned injection to the
// primary unit while the redundant unit stays clean.
func TestMultiIMUAttribution(t *testing.T) {
	fx := getFixture(t)
	gen := func(seed int64, attacked bool) *dataset.Flight {
		cfg := testGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14}, seed)
		cfg.World.AuxIMUs = 1
		if attacked {
			cfg.Scenario = attack.Scenario{IMU: &attack.IMUBiaser{
				Window:    attack.Window{Start: 5, End: 11},
				Mode:      attack.IMUAccelDoS,
				Axis:      mathx.Vec3{Z: 1},
				Magnitude: 3,
				Rng:       rand.New(rand.NewSource(seed)),
			}}
		}
		f, err := dataset.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Calibrate one detector per stream on benign multi-IMU flights.
	var calib []*dataset.Flight
	for i := int64(0); i < 3; i++ {
		calib = append(calib, gen(5000+i*7, false))
	}
	primaryCfg := DefaultIMUDetectorConfig()
	primary, err := NewIMUDetector(fx.model, calib, primaryCfg)
	if err != nil {
		t.Fatal(err)
	}
	auxCfg := DefaultIMUDetectorConfig()
	auxCfg.Stream = 1
	aux, err := NewIMUDetector(fx.model, calib, auxCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds are learned separately per unit.
	if primary.StatThreshold() == aux.StatThreshold() && primary.StdThreshold() == aux.StdThreshold() {
		t.Error("per-stream thresholds identical; expected separate calibration")
	}

	attacked := gen(6000, true)
	vPrimary, err := primary.Detect(attacked)
	if err != nil {
		t.Fatal(err)
	}
	vAux, err := aux.Detect(attacked)
	if err != nil {
		t.Fatal(err)
	}
	if !vPrimary.Attacked {
		t.Error("primary-stream detector missed the injection")
	}
	if vAux.Attacked {
		t.Error("redundant-stream detector alarmed on an honest unit")
	}
}
