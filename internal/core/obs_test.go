package soundboost

import (
	"testing"

	"soundboost/internal/obs"
)

// withObs enables the observability layer for one test and restores
// the prior state afterwards.
func withObs(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.Enable()
	t.Cleanup(func() {
		if !prev {
			obs.Disable()
		}
	})
}

// TestStageTimersFireOncePerWindow pins the instrumentation contract:
// the window stage timer records exactly one span per extracted
// signature window, and the filter stage exactly one per extractor.
func TestStageTimersFireOncePerWindow(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	withObs(t)

	winTimer := obs.Default.Timer("core.signature.window")
	filterTimer := obs.Default.Timer("core.extract.filter")
	winBefore, filterBefore := winTimer.Count(), filterTimer.Count()

	ex, err := NewExtractor(f.Audio, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := filterTimer.Count() - filterBefore; got != 1 {
		t.Errorf("filter timer fired %d times for one extractor, want 1", got)
	}

	starts := ex.WindowStarts(cfg.WindowSeconds)
	if len(starts) == 0 {
		t.Fatal("no windows in fixture flight")
	}
	for _, t0 := range starts {
		ex.Features(t0, cfg.WindowSeconds)
	}
	if got := winTimer.Count() - winBefore; got != int64(len(starts)) {
		t.Errorf("window timer fired %d times for %d windows", got, len(starts))
	}

	// The contract holds on the parallel path too: BuildWindows fans
	// Features out across the pool but still calls it once per window.
	winBefore = winTimer.Count()
	if _, err := BuildWindows(f, cfg, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := winTimer.Count() - winBefore; got != int64(len(starts)) {
		t.Errorf("BuildWindows fired window timer %d times for %d windows", got, len(starts))
	}
}

// TestDetectorStageTimers pins one span per flight per RCA stage and
// one prediction span per analysed window.
func TestDetectorStageTimers(t *testing.T) {
	fx := getFixture(t)
	withObs(t)

	imuTimer := obs.Default.Timer("core.rca.imu.detect")
	predictTimer := obs.Default.Timer("core.predict")

	imu, err := NewIMUDetector(fx.model, fx.benign(), DefaultIMUDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if obs.Default.Timer("core.calibrate.imu").Count() == 0 {
		t.Error("IMU calibration span not recorded")
	}

	f := fx.heldout[0]
	imuBefore, predBefore := imuTimer.Count(), predictTimer.Count()
	if _, err := imu.Detect(f); err != nil {
		t.Fatal(err)
	}
	if got := imuTimer.Count() - imuBefore; got != 1 {
		t.Errorf("IMU detect timer fired %d times for one flight, want 1", got)
	}

	ex, err := NewExtractor(f.Audio, fx.model.Config().Signature)
	if err != nil {
		t.Fatal(err)
	}
	// Detect predicts once per usable window; rejected windows (nil
	// features or empty telemetry) predict zero times.
	usable := 0
	win := fx.model.Config().Signature.WindowSeconds
	for _, t0 := range ex.WindowStarts(win) {
		if windowFeatures(ex, f, t0, win) != nil && len(f.TelemetryBetween(t0, t0+win)) > 0 {
			usable++
		}
	}
	if got := predictTimer.Count() - predBefore; got != int64(usable) {
		t.Errorf("predict timer fired %d times for %d usable windows", got, usable)
	}
}

// TestDisabledLayerRecordsNothing pins the zero-cost contract's
// observable half: with the layer off, pipeline runs leave no trace.
func TestDisabledLayerRecordsNothing(t *testing.T) {
	f := getFixture(t).train[0]
	cfg := testSignatureConfig()
	if obs.Enabled() {
		t.Skip("obs layer enabled by another harness")
	}

	winTimer := obs.Default.Timer("core.signature.window")
	before := winTimer.Count()
	ex, err := NewExtractor(f.Audio, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, t0 := range ex.WindowStarts(cfg.WindowSeconds) {
		ex.Features(t0, cfg.WindowSeconds)
	}
	if got := winTimer.Count() - before; got != 0 {
		t.Errorf("disabled layer recorded %d spans", got)
	}
}
