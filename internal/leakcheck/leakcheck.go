// Package leakcheck is a hand-rolled goroutine-leak detector for test
// suites and soaks: snapshot the live goroutines, run the workload, and
// assert the set returned to baseline. It parses runtime.Stack output
// rather than trusting a bare runtime.NumGoroutine delta — the count can
// coincidentally match while one goroutine leaked and another (say a
// finished test helper) exited — and it retries with backoff because
// goroutine teardown is asynchronous: a Close() returns before the
// goroutines it stops have fully unwound.
//
// Wire it into a package with a TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// which fails the whole run if goroutines survive after every test
// finished, or assert per test with Check(t). The chaos soak uses
// Snapshot/Wait directly (no testing.T in a CLI).
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignored matches goroutines that are part of the runtime or test
// harness rather than the code under test. Matching is against the
// goroutine's full stack block, so both function names and states work.
var ignored = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests",
	"runtime.goexit0",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.gcBgMarkWorker",
	"runtime.ReadTrace",
	"runtime/trace.Start",
	"signal.signal_recv",
	"os/signal.loop",
	"os/signal.signal_recv",
	"leakcheck.interesting",
	"leakcheck.Snapshot",
}

// interesting reports whether one goroutine stack block belongs to code
// under test.
func interesting(block string) bool {
	if strings.TrimSpace(block) == "" {
		return false
	}
	for _, p := range ignored {
		if strings.Contains(block, p) {
			return false
		}
	}
	return true
}

// Snapshot captures the stacks of all interesting live goroutines, one
// string per goroutine, sorted for stable comparison.
func Snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		if interesting(block) {
			out = append(out, block)
		}
	}
	sort.Strings(out)
	return out
}

// leaked returns the goroutines present now but not in before.
func leaked(before []string) []string {
	base := make(map[string]int, len(before))
	for _, b := range before {
		// Key on the stack below the header line: goroutine ids and
		// states ("running" vs "runnable") churn between snapshots.
		base[stackKey(b)]++
	}
	var out []string
	for _, g := range Snapshot() {
		k := stackKey(g)
		if base[k] > 0 {
			base[k]--
			continue
		}
		out = append(out, g)
	}
	return out
}

// stackKey strips the "goroutine N [state]:" header so two captures of
// the same goroutine compare equal.
func stackKey(block string) string {
	if i := strings.Index(block, "\n"); i >= 0 {
		return block[i+1:]
	}
	return block
}

// Wait polls until every goroutine not in before has exited, or the
// timeout expires; it returns the stragglers (nil on success). Teardown
// is asynchronous, so one immediate check would flag goroutines that are
// already unwinding.
func Wait(before []string, timeout time.Duration) []string {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	delay := time.Millisecond
	for {
		extra := leaked(before)
		if len(extra) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return extra
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// Check snapshots at call time and asserts at test cleanup that every
// goroutine started since has exited.
func Check(t *testing.T) {
	t.Helper()
	before := Snapshot()
	t.Cleanup(func() {
		if extra := Wait(before, 5*time.Second); len(extra) != 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n%s",
				len(extra), strings.Join(extra, "\n\n"))
		}
	})
}

// Main wraps a package's TestMain: it runs the tests, then fails the
// process if goroutines survive the whole suite. The baseline is
// whatever is live before any test runs (init-started goroutines are
// not leaks).
func Main(m *testing.M) {
	before := Snapshot()
	code := m.Run()
	if code == 0 {
		if extra := Wait(before, 5*time.Second); len(extra) != 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked after all tests:\n%s\n",
				len(extra), strings.Join(extra, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
