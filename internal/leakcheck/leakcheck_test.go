package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestSnapshotStable(t *testing.T) {
	a := Snapshot()
	b := Snapshot()
	if len(a) != len(b) {
		t.Fatalf("idle snapshots differ: %d vs %d goroutines", len(a), len(b))
	}
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	before := Snapshot()
	block := make(chan struct{})
	go func() { <-block }()
	extra := Wait(before, 50*time.Millisecond)
	if len(extra) != 1 {
		t.Fatalf("Wait found %d leaked goroutine(s), want 1:\n%s",
			len(extra), strings.Join(extra, "\n\n"))
	}
	if !strings.Contains(extra[0], "leakcheck.TestDetectsLeakedGoroutine") {
		t.Fatalf("leak report does not name the leaking function:\n%s", extra[0])
	}
	close(block)
	if extra := Wait(before, 5*time.Second); len(extra) != 0 {
		t.Fatalf("goroutine released but still reported leaked:\n%s",
			strings.Join(extra, "\n\n"))
	}
}

func TestWaitToleratesSlowTeardown(t *testing.T) {
	before := Snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond) // teardown lag, not a leak
		close(done)
	}()
	if extra := Wait(before, 5*time.Second); len(extra) != 0 {
		t.Fatalf("slow-exiting goroutine reported as a leak:\n%s",
			strings.Join(extra, "\n\n"))
	}
	<-done
}

func TestIgnoresHarnessGoroutines(t *testing.T) {
	for _, g := range Snapshot() {
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "testing.(*M).") {
			t.Fatalf("harness goroutine leaked into snapshot:\n%s", g)
		}
	}
}

func TestStackKeyStripsHeader(t *testing.T) {
	a := "goroutine 7 [running]:\nmain.leak()\n\t/x/main.go:10"
	b := "goroutine 99 [chan receive]:\nmain.leak()\n\t/x/main.go:10"
	if stackKey(a) != stackKey(b) {
		t.Fatalf("same stack, different keys:\n%q\n%q", stackKey(a), stackKey(b))
	}
}
