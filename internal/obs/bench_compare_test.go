package obs

import (
	"strings"
	"testing"
)

// throughputReport is goodReport plus a healthy throughput section.
func throughputReport() *BenchReport {
	r := goodReport()
	r.Throughput = &BenchThroughput{
		Flights:                  9,
		CleanFraction:            8.0 / 9,
		BaselineFPS:              1.2,
		TriageFPS:                3.6,
		Speedup:                  3.0,
		FastpathRatio:            8.0 / 9,
		BaselineP99FlightSeconds: 1.1,
		P99FlightSeconds:         0.9,
	}
	return r
}

func TestThroughputSectionValidate(t *testing.T) {
	if err := throughputReport().Validate(); err != nil {
		t.Fatalf("good throughput section rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchThroughput)
	}{
		{"zero flights", func(tp *BenchThroughput) { tp.Flights = 0 }},
		{"clean fraction above 1", func(tp *BenchThroughput) { tp.CleanFraction = 1.5 }},
		{"zero baseline fps", func(tp *BenchThroughput) { tp.BaselineFPS = 0 }},
		{"negative triage fps", func(tp *BenchThroughput) { tp.TriageFPS = -1 }},
		{"fastpath ratio above 1", func(tp *BenchThroughput) { tp.FastpathRatio = 2 }},
		{"zero baseline p99", func(tp *BenchThroughput) { tp.BaselineP99FlightSeconds = 0 }},
		{"triage fps without p99", func(tp *BenchThroughput) { tp.P99FlightSeconds = 0 }},
	}
	for _, tc := range cases {
		r := throughputReport()
		tc.mutate(r.Throughput)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt throughput section", tc.name)
		}
	}
}

// TestCompareBenchReports pins the bench-gate semantics: small drift
// passes, a synthetic regression beyond tolerance fails on the right
// metric, and a metric-free artifact cannot pass by omission.
func TestCompareBenchReports(t *testing.T) {
	base := throughputReport()

	t.Run("identical passes", func(t *testing.T) {
		if err := CompareBenchReports(base, throughputReport(), 0.15); err != nil {
			t.Fatalf("identical reports failed the gate: %v", err)
		}
	})
	t.Run("small drift passes", func(t *testing.T) {
		n := throughputReport()
		n.Throughput.TriageFPS *= 0.90 // -10% < 15% tolerance
		n.Throughput.P99FlightSeconds *= 1.10
		if err := CompareBenchReports(base, n, 0.15); err != nil {
			t.Fatalf("within-tolerance drift failed the gate: %v", err)
		}
	})
	t.Run("fps regression fails", func(t *testing.T) {
		n := throughputReport()
		n.Throughput.TriageFPS *= 0.5 // synthetic 2x slowdown
		err := CompareBenchReports(base, n, 0.15)
		if err == nil || !strings.Contains(err.Error(), "throughput regressed") {
			t.Fatalf("synthetic fps regression passed the gate: %v", err)
		}
	})
	t.Run("p99 regression fails", func(t *testing.T) {
		n := throughputReport()
		n.Throughput.P99FlightSeconds *= 2
		err := CompareBenchReports(base, n, 0.15)
		if err == nil || !strings.Contains(err.Error(), "p99") {
			t.Fatalf("synthetic p99 regression passed the gate: %v", err)
		}
	})
	t.Run("improvement passes", func(t *testing.T) {
		n := throughputReport()
		n.Throughput.TriageFPS *= 2
		n.Throughput.P99FlightSeconds /= 2
		if err := CompareBenchReports(base, n, 0.15); err != nil {
			t.Fatalf("improvement failed the gate: %v", err)
		}
	})
	t.Run("missing section fails", func(t *testing.T) {
		n := throughputReport()
		n.Throughput = nil
		if err := CompareBenchReports(base, n, 0.15); err == nil {
			t.Fatal("gate passed without a throughput section")
		}
		if err := CompareBenchReports(n, base, 0.15); err == nil {
			t.Fatal("gate passed against a section-free baseline")
		}
	})
	t.Run("baseline-only reports compare on baseline fps", func(t *testing.T) {
		old := throughputReport()
		old.Throughput.TriageFPS = 0
		old.Throughput.Speedup = 0
		old.Throughput.P99FlightSeconds = 0
		n := throughputReport()
		// Triage-on new vs triage-off old: the gate demands the new
		// operative fps beat the old baseline, which a real triage tier
		// does by construction.
		if err := CompareBenchReports(old, n, 0.15); err != nil {
			t.Fatalf("triage-on vs baseline-only failed: %v", err)
		}
	})
	t.Run("bad tolerance", func(t *testing.T) {
		if err := CompareBenchReports(base, throughputReport(), 1.5); err == nil {
			t.Fatal("tolerance 1.5 accepted")
		}
	})
}
