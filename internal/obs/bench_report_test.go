package obs

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goodReport returns a minimal schema-valid report.
func goodReport() *BenchReport {
	return &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Tool:          "benchtab",
		Scale:         "bench",
		Runs:          []string{"timing"},
		Workers:       4,
		GoVersion:     "go1.22.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		NumCPU:        4,
		UnixTime:      1754300000,
		WallSeconds:   12.5,
		Stages: []BenchStage{
			{Name: "core.rca.imu.detect", Count: 3, TotalSeconds: 0.9, MeanSeconds: 0.3,
				P50Seconds: 0.3, P95Seconds: 0.4, P99Seconds: 0.4, MinSeconds: 0.2, MaxSeconds: 0.4},
			{Name: "dsp.fft.transform", Count: 100, TotalSeconds: 0.1, MeanSeconds: 0.001,
				P50Seconds: 0.001, P95Seconds: 0.002, P99Seconds: 0.002, MinSeconds: 0.0005, MaxSeconds: 0.002},
		},
	}
}

func TestBenchReportValidate(t *testing.T) {
	if err := goodReport().Validate(); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*BenchReport)
	}{
		{"wrong schema version", func(r *BenchReport) { r.SchemaVersion = 99 }},
		{"missing tool", func(r *BenchReport) { r.Tool = "" }},
		{"missing scale", func(r *BenchReport) { r.Scale = "" }},
		{"missing go version", func(r *BenchReport) { r.GoVersion = "" }},
		{"bad cpu count", func(r *BenchReport) { r.NumCPU = 0 }},
		{"zero wall time", func(r *BenchReport) { r.WallSeconds = 0 }},
		{"no stages", func(r *BenchReport) { r.Stages = nil }},
		{"unnamed stage", func(r *BenchReport) { r.Stages[0].Name = "" }},
		{"zero-count stage", func(r *BenchReport) { r.Stages[0].Count = 0 }},
		{"negative timing", func(r *BenchReport) { r.Stages[0].TotalSeconds = -1 }},
		{"max below min", func(r *BenchReport) { r.Stages[0].MaxSeconds = 0.01 }},
		{"unsorted stages", func(r *BenchReport) {
			r.Stages[0], r.Stages[1] = r.Stages[1], r.Stages[0]
		}},
	}
	for _, tc := range cases {
		r := goodReport()
		tc.mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: invalid report accepted", tc.name)
		}
	}
}

func TestParseBenchReportStrict(t *testing.T) {
	data, err := json.Marshal(goodReport())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBenchReport(data); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}

	unknown := strings.Replace(string(data), `"tool"`, `"bogus_field":1,"tool"`, 1)
	if _, err := ParseBenchReport([]byte(unknown)); err == nil {
		t.Error("payload with unknown field accepted")
	}
	if _, err := ParseBenchReport(append(data, data...)); err == nil {
		t.Error("payload with trailing data accepted")
	}
	if _, err := ParseBenchReport([]byte("not json")); err == nil {
		t.Error("non-JSON payload accepted")
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	want := goodReport()
	if err := WriteBenchFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != want.Scale || got.WallSeconds != want.WallSeconds || len(got.Stages) != len(want.Stages) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, want)
	}
	if got.Stages[0] != want.Stages[0] {
		t.Errorf("stage round trip mismatch: %+v vs %+v", got.Stages[0], want.Stages[0])
	}
}

func TestWriteBenchFileRejectsInvalid(t *testing.T) {
	bad := goodReport()
	bad.Stages = nil
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := WriteBenchFile(path, bad); err == nil {
		t.Fatal("invalid report written without error")
	}
}

func TestStartBenchCollect(t *testing.T) {
	prev := Enabled()
	t.Cleanup(func() {
		if !prev {
			Disable()
		}
		Default.Reset()
	})

	b := StartBench()
	tm := Default.Timer("test.bench.stage")
	tm.Observe(10 * time.Millisecond)
	tm.Observe(30 * time.Millisecond)
	Default.Counter("test.bench.items").Add(7)

	report := b.Collect(BenchMeta{Tool: "benchtab", Scale: "quick", Runs: []string{"timing"}, Workers: 2})
	if err := report.Validate(); err != nil {
		t.Fatalf("collected report invalid: %v", err)
	}
	var stage *BenchStage
	for i := range report.Stages {
		if report.Stages[i].Name == "test.bench.stage" {
			stage = &report.Stages[i]
		}
	}
	if stage == nil {
		t.Fatal("collected report missing recorded stage")
	}
	if stage.Count != 2 || stage.TotalSeconds < 0.039 || stage.TotalSeconds > 0.041 {
		t.Errorf("stage stats = %+v", stage)
	}
	if report.Counters["test.bench.items"] != 7 {
		t.Errorf("counter = %d, want 7", report.Counters["test.bench.items"])
	}
	if report.WallSeconds <= 0 || report.GoVersion == "" {
		t.Errorf("environment fields missing: %+v", report)
	}
	// Stage list must be sorted for stable diffs.
	for i := 1; i < len(report.Stages); i++ {
		if report.Stages[i-1].Name >= report.Stages[i].Name {
			t.Errorf("stages unsorted: %q then %q", report.Stages[i-1].Name, report.Stages[i].Name)
		}
	}
}
