// Package obs is the repository's dependency-free observability layer:
// atomic counters, float gauges, streaming histograms with quantile
// estimation, and named stage timers, collected in a process-wide
// registry with JSON snapshot export.
//
// The layer is off by default and every handle is nil-safe, so
// instrumentation sites cost a single atomic bool load (plus a nil
// check) on the disabled path — the uninstrumented hot path is within
// measurement noise of code compiled without the calls. Call Enable
// (the CLIs do this when -debug-addr or -bench-json is given) to start
// recording.
//
// Typical instrumentation site:
//
//	var fftTimer = obs.Default.Timer("dsp.fft")
//
//	func (p *Plan) Transform(x []complex128, inverse bool) {
//		span := fftTimer.Start() // no-op Span when disabled
//		defer span.Stop()
//		...
//	}
//
// Metric handles are created once at package init; Start/Add/Set/Observe
// all early-return while the layer is disabled.
package obs

import "sync/atomic"

// enabled gates every recording path. Handles stay registered while
// disabled; they just refuse to record.
var enabled atomic.Bool

// Enable turns recording on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns recording off process-wide. Already-recorded values are
// kept (use Default.Reset to clear them).
func Disable() { enabled.Store(false) }

// Enabled reports whether the layer is recording.
func Enabled() bool { return enabled.Load() }

// Default is the process-wide registry. The instrumented packages and
// the debug HTTP endpoint all use it.
var Default = NewRegistry()
