package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is unusable; obtain counters from a Registry. A nil Counter is a
// valid no-op handle.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n when the layer is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one when the layer is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value (queue depth, utilization,
// configuration). A nil Gauge is a valid no-op handle.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set stores v when the layer is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta when the layer is enabled.
func (g *Gauge) Add(delta float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: geometric buckets growing by histGrowth per
// step from histMin, so a quantile estimate (geometric mean of its
// bucket's bounds) is within ~9% of the true value across the full
// ns-to-hours range the pipeline produces. Values below histMin (and
// <= 0) land in bucket 0; values off the top land in the last bucket.
const (
	histMin     = 1e-9
	histBuckets = 280
)

// histGrowth is 2^(1/4): four buckets per doubling, ~70 doublings of
// range (1e-9 .. ~1e12).
var (
	histGrowth    = math.Pow(2, 0.25)
	histInvLogG   = 1 / math.Log(histGrowth)
	histLogMin    = math.Log(histMin)
	histBoundsTab = func() [histBuckets + 1]float64 {
		var b [histBuckets + 1]float64
		for i := range b {
			b[i] = histMin * math.Pow(histGrowth, float64(i))
		}
		return b
	}()
)

// Histogram is a fixed-layout streaming histogram safe for concurrent
// Observe calls. It tracks count, sum, min and max exactly and
// estimates quantiles from its geometric buckets. A nil Histogram is a
// valid no-op handle.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits
	maxBits atomic.Uint64 // float64 bits
	buckets [histBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v <= histMin || math.IsNaN(v) {
		return 0
	}
	i := int((math.Log(v) - histLogMin) * histInvLogG)
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one sample when the layer is enabled. NaN samples
// are dropped — they would poison the sum and the min/max extremes.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() || math.IsNaN(v) {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// samples. The estimate is exact at the recorded min/max and within one
// geometric bucket (~±9%) elsewhere. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return math.Float64frombits(h.minBits.Load())
	}
	if q >= 1 {
		return math.Float64frombits(h.maxBits.Load())
	}
	// Rank of the wanted sample, 1-based.
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			lo, hi := histBoundsTab[i], histBoundsTab[i+1]
			// Clamp the bucket to the exact extremes so estimates never
			// leave the observed range.
			if min := math.Float64frombits(h.minBits.Load()); lo < min {
				lo = min
			}
			if max := math.Float64frombits(h.maxBits.Load()); hi > max {
				hi = max
			}
			if hi <= lo {
				return lo
			}
			return math.Sqrt(lo * hi)
		}
	}
	return math.Float64frombits(h.maxBits.Load())
}

// stats returns a consistent-enough summary for snapshots. Concurrent
// Observe calls may skew count vs sum by a sample; snapshots are
// diagnostics, not ledgers.
func (h *Histogram) stats() HistogramStats {
	s := HistogramStats{Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
		s.Mean = s.Sum / float64(s.Count)
		s.P50 = h.Quantile(0.50)
		s.P95 = h.Quantile(0.95)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// HistogramStats is the JSON summary of a histogram or timer.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Timer measures named pipeline stages as a histogram of seconds. A nil
// Timer is a valid no-op handle.
type Timer struct {
	h *Histogram
}

// Name returns the timer's registered name.
func (t *Timer) Name() string {
	if t == nil {
		return ""
	}
	return t.h.Name()
}

// Start opens a timing span. On the disabled path it returns the zero
// Span, whose Stop is a no-op — the cost is one atomic load.
func (t *Timer) Start() Span {
	if t == nil || !enabled.Load() {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Observe records a completed duration directly.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Count returns the number of recorded spans.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.h.Count()
}

// TotalSeconds returns the accumulated stage time.
func (t *Timer) TotalSeconds() float64 {
	if t == nil {
		return 0
	}
	return t.h.Sum()
}

// Quantile estimates a duration quantile in seconds.
func (t *Timer) Quantile(q float64) float64 {
	if t == nil {
		return 0
	}
	return t.h.Quantile(q)
}

// Span is one in-flight stage measurement. The zero Span is valid and
// Stop on it does nothing.
type Span struct {
	t     *Timer
	start time.Time
}

// Stop closes the span and records its duration.
func (s Span) Stop() {
	if s.t == nil {
		return
	}
	s.t.h.Observe(time.Since(s.start).Seconds())
}
