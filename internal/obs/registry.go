package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Registry is a named collection of metrics. Lookup is get-or-create
// and safe for concurrent use; instrumented packages resolve their
// handles once at init and never look up on the hot path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		timers:     map[string]*Timer{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(name)
		r.histograms[name] = h
	}
	return h
}

// Timer returns the named stage timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{h: newHistogram(name)}
		r.timers[name] = t
	}
	return t
}

// Reset zeroes every registered metric in place, so handles held by
// instrumented packages keep working.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
	for _, t := range r.timers {
		t.h.reset()
	}
}

// reset zeroes a histogram in place.
func (h *Histogram) reset() {
	fresh := newHistogram(h.name)
	h.count.Store(0)
	h.sumBits.Store(0)
	h.minBits.Store(fresh.minBits.Load())
	h.maxBits.Store(fresh.maxBits.Load())
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot is a point-in-time JSON-serialisable view of a registry.
// Map keys are metric names; TimerStats durations are in seconds.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Timers     map[string]HistogramStats `json:"timers,omitempty"`
}

// Snapshot captures the registry's current values. Metrics keep
// recording concurrently; the snapshot is internally consistent per
// metric, not across metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramStats, len(r.histograms)),
		Timers:     make(map[string]HistogramStats, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.stats()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.h.stats()
	}
	return s
}

// TimerNames returns the registered timer names in sorted order.
func (r *Registry) TimerNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.timers))
	for name := range r.timers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the registry snapshot to w as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
