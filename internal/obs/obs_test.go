package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs the test body with recording on and restores the
// previous state afterwards.
func withEnabled(t *testing.T) {
	t.Helper()
	prev := Enabled()
	Enable()
	t.Cleanup(func() {
		if !prev {
			Disable()
		}
	})
}

func TestHistogramQuantileAccuracyUniform(t *testing.T) {
	withEnabled(t)
	h := newHistogram("uniform")
	// 1..10000 in shuffled order: quantiles are known exactly.
	rng := rand.New(rand.NewSource(1))
	vals := rng.Perm(10000)
	for _, v := range vals {
		h.Observe(float64(v + 1))
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("count = %d, want 10000", got)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 5000}, {0.95, 9500}, {0.99, 9900}, {1, 10000},
	} {
		got := h.Quantile(tc.q)
		relErr := math.Abs(got-tc.want) / tc.want
		if relErr > 0.10 {
			t.Errorf("q%.2f = %.1f, want %.1f (rel err %.3f > 0.10)", tc.q, got, tc.want, relErr)
		}
	}
}

func TestHistogramQuantileAccuracyLogNormal(t *testing.T) {
	withEnabled(t)
	h := newHistogram("lognormal")
	rng := rand.New(rand.NewSource(7))
	n := 20000
	samples := make([]float64, n)
	for i := range samples {
		// Heavy-tailed microsecond-to-second scale, like stage timings.
		samples[i] = 1e-5 * math.Exp(rng.NormFloat64()*1.5)
		h.Observe(samples[i])
	}
	sorted := append([]float64(nil), samples...)
	for i := range sorted {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := sorted[int(math.Ceil(q*float64(n)))-1]
		got := h.Quantile(q)
		relErr := math.Abs(got-want) / want
		if relErr > 0.10 {
			t.Errorf("q%.2f = %g, want %g (rel err %.3f > 0.10)", q, got, want, relErr)
		}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	if math.Abs(h.Sum()-sum) > 1e-9*math.Abs(sum) {
		t.Errorf("sum = %g, want %g", h.Sum(), sum)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	withEnabled(t)
	h := newHistogram("edge")
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	// All land in the underflow bucket; quantiles stay within the
	// clamped [min, max] range and are finite.
	if q := h.Quantile(0.5); math.IsNaN(q) || math.IsInf(q, 0) {
		t.Errorf("degenerate quantile = %g", q)
	}
}

func TestCounterConcurrent(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("depth")
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
}

func TestTimerConcurrent(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	tm := r.Timer("stage")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				span := tm.Start()
				span.Stop()
			}
		}()
	}
	wg.Wait()
	if got := tm.Count(); got != workers*per {
		t.Errorf("timer count = %d, want %d", got, workers*per)
	}
	if tot := tm.TotalSeconds(); tot < 0 {
		t.Errorf("total = %g, want >= 0", tot)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	h := r.Histogram("conc")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) + 1)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("count = %d, want %d", got, workers*per)
	}
	want := float64(workers*per) * float64(workers*per+1) / 2
	if math.Abs(h.Sum()-want) > 1e-6*want {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestDisabledRecordsNothingAndNilSafe(t *testing.T) {
	prev := Enabled()
	Disable()
	t.Cleanup(func() {
		if prev {
			Enable()
		}
	})
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tm := r.Timer("t")
	c.Inc()
	c.Add(10)
	g.Set(3)
	g.Add(2)
	h.Observe(1)
	tm.Start().Stop()
	tm.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Errorf("disabled layer recorded: counter %d gauge %g hist %d timer %d",
			c.Value(), g.Value(), h.Count(), tm.Count())
	}

	// Nil handles are valid no-ops.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	var nt *Timer
	nc.Inc()
	nc.Add(5)
	ng.Set(1)
	ng.Add(1)
	nh.Observe(1)
	nt.Start().Stop()
	nt.Observe(time.Second)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nt.Count() != 0 || nh.Quantile(0.5) != 0 {
		t.Error("nil handles recorded values")
	}
	if nc.Name() != "" || nt.Name() != "" {
		t.Error("nil handle names non-empty")
	}
	Span{}.Stop() // zero Span must be safe
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter lookup not stable")
	}
	if r.Timer("y") != r.Timer("y") {
		t.Error("timer lookup not stable")
	}
	names := r.TimerNames()
	if len(names) != 1 || names[0] != "y" {
		t.Errorf("TimerNames = %v, want [y]", names)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("windows").Add(42)
	r.Gauge("queue").Set(3.5)
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	tm := r.Timer("stage")
	tm.Observe(25 * time.Millisecond)
	tm.Observe(75 * time.Millisecond)

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot round trip mismatch:\n  out: %+v\n  in:  %+v", snap, back)
	}
	if back.Counters["windows"] != 42 {
		t.Errorf("counter = %d, want 42", back.Counters["windows"])
	}
	if got := back.Timers["stage"]; got.Count != 2 || got.Sum <= 0 {
		t.Errorf("timer stats = %+v", got)
	}
	if got := back.Histograms["lat"]; got.Count != 100 || got.Min != 0.001 || got.Max != 0.1 {
		t.Errorf("hist stats = %+v", got)
	}
}

func TestRegistryReset(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(5)
	h.Observe(1)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("reset left counter %d hist %d", c.Value(), h.Count())
	}
	// Handles keep working after reset.
	c.Inc()
	h.Observe(2)
	if c.Value() != 1 || h.Count() != 1 {
		t.Errorf("post-reset recording broken: counter %d hist %d", c.Value(), h.Count())
	}
	if got := h.Quantile(0.5); math.Abs(got-2) > 0.25 {
		t.Errorf("post-reset quantile = %g, want ~2", got)
	}
}

func TestDebugHandler(t *testing.T) {
	withEnabled(t)
	Default.Counter("test.handler.hits").Inc()
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return sb.String()
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/debug/metrics")), &snap); err != nil {
		t.Fatalf("/debug/metrics is not snapshot JSON: %v", err)
	}
	if _, ok := snap.Counters["test.handler.hits"]; !ok {
		t.Error("/debug/metrics missing registered counter")
	}
	if body := get("/debug/vars"); !strings.Contains(body, "soundboost") {
		t.Error("/debug/vars missing soundboost key")
	}
	if body := get("/"); !strings.Contains(body, "/debug/metrics") {
		t.Error("index page missing endpoint listing")
	}
}
