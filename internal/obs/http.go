package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-shot expvar publication of the default
// registry (expvar.Publish panics on duplicate names).
var expvarOnce sync.Once

// publishExpvar exposes the default registry under the "soundboost"
// expvar key, so /debug/vars carries the metrics next to the runtime's
// memstats.
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("soundboost", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}

// Handler returns the debug mux: registry JSON at /debug/metrics,
// expvar at /debug/vars, and the pprof suite at /debug/pprof/.
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := Default.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "soundboost debug endpoint: /debug/metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// Serve enables recording and serves the debug handler on addr in a
// background goroutine. It returns the bound address (useful with
// ":0") once the listener is up. The server lives for the remainder of
// the process, matching the CLIs' usage.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	Enable()
	srv := &http.Server{Handler: Handler()}
	go func() {
		// The listener closes only at process exit; Serve's error is
		// uninteresting then.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
