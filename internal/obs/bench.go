package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// BenchSchemaVersion identifies the BENCH_*.json layout. Bump it on
// any breaking change to BenchReport; additive changes keep it.
const BenchSchemaVersion = 1

// BenchReport is the machine-readable benchmark artifact emitted by
// `benchtab -bench-json`. The layout is schema-versioned and stable so
// successive BENCH_<n>.json files are directly diffable and CI can
// validate them.
type BenchReport struct {
	// SchemaVersion is BenchSchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`
	// Tool names the producing command ("benchtab").
	Tool string `json:"tool"`
	// Scale is the experiment scale the run used.
	Scale string `json:"scale"`
	// Runs lists the experiment sections that executed.
	Runs []string `json:"runs"`
	// Workers is the effective worker-pool size.
	Workers int `json:"workers"`
	// GoVersion, GOOS, GOARCH and NumCPU pin the environment.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// UnixTime is the report's creation time (seconds since epoch).
	UnixTime int64 `json:"unix_time"`
	// WallSeconds is the end-to-end run time.
	WallSeconds float64 `json:"wall_seconds"`
	// AllocBytes, Mallocs and NumGC are deltas over the run.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	NumGC      uint32 `json:"num_gc"`
	// Stages are the per-stage timings, sorted by name for stable
	// diffs. Durations are seconds.
	Stages []BenchStage `json:"stages"`
	// Counters and Gauges carry the remaining registry state.
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	// Throughput carries the flights/sec section when the run included
	// it (additive in schema v1; absent in older artifacts).
	Throughput *BenchThroughput `json:"throughput,omitempty"`
}

// BenchThroughput is the batch-RCA throughput section of a bench
// report: flights/sec over a clean-majority corpus with and without
// the triage tier. It is what the CI bench-gate compares across
// commits.
type BenchThroughput struct {
	// Flights is the corpus size; CleanFraction its benign share.
	Flights       int     `json:"flights"`
	CleanFraction float64 `json:"clean_fraction"`
	// BaselineFPS is flights/sec through the full pipeline; TriageFPS
	// with the screening tier (0 when the run skipped it).
	BaselineFPS float64 `json:"baseline_flights_per_sec"`
	TriageFPS   float64 `json:"triage_flights_per_sec"`
	// Speedup is TriageFPS/BaselineFPS; FastpathRatio the fraction of
	// flights the tier short-circuited.
	Speedup       float64 `json:"speedup"`
	FastpathRatio float64 `json:"fastpath_ratio"`
	// Per-flight p99 latencies (seconds) of the two paths.
	BaselineP99FlightSeconds float64 `json:"baseline_p99_flight_seconds"`
	P99FlightSeconds         float64 `json:"p99_flight_seconds"`
	// Float32 rows repeat the measurements under the float32 fast path
	// (additive in schema v1; absent, and zero, in older artifacts).
	// Float32Speedup is float32-baseline over float64-baseline — the
	// precision win the bench gate holds above its committed floor.
	Float32BaselineFPS              float64 `json:"float32_baseline_flights_per_sec,omitempty"`
	Float32TriageFPS                float64 `json:"float32_triage_flights_per_sec,omitempty"`
	Float32Speedup                  float64 `json:"float32_speedup,omitempty"`
	Float32BaselineP99FlightSeconds float64 `json:"float32_baseline_p99_flight_seconds,omitempty"`
	Float32P99FlightSeconds         float64 `json:"float32_p99_flight_seconds,omitempty"`
}

// FPS returns the report's operative flights/sec: the triage-path
// number when the run measured it, the full-pipeline baseline
// otherwise.
func (t *BenchThroughput) FPS() float64 {
	if t.TriageFPS > 0 {
		return t.TriageFPS
	}
	return t.BaselineFPS
}

// P99 returns the per-flight p99 latency matching FPS.
func (t *BenchThroughput) P99() float64 {
	if t.TriageFPS > 0 {
		return t.P99FlightSeconds
	}
	return t.BaselineP99FlightSeconds
}

// BenchStage is one named stage's timing summary (seconds).
type BenchStage struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	P50Seconds   float64 `json:"p50_seconds"`
	P95Seconds   float64 `json:"p95_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// BenchMeta carries the run parameters the registry cannot know.
type BenchMeta struct {
	Tool    string
	Scale   string
	Runs    []string
	Workers int
}

// BenchStart marks the beginning of a measured run: it enables
// recording, clears the registry, and captures the baseline memory
// stats. Finish the run with Collect on the returned state.
type BenchStart struct {
	start time.Time
	mem   runtime.MemStats
}

// StartBench begins a measured run against the default registry.
func StartBench() *BenchStart {
	Enable()
	Default.Reset()
	b := &BenchStart{start: time.Now()}
	runtime.ReadMemStats(&b.mem)
	return b
}

// Collect assembles the BenchReport for a run begun with StartBench.
func (b *BenchStart) Collect(meta BenchMeta) *BenchReport {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	snap := Default.Snapshot()

	report := &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		Tool:          meta.Tool,
		Scale:         meta.Scale,
		Runs:          append([]string(nil), meta.Runs...),
		Workers:       meta.Workers,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		UnixTime:      time.Now().Unix(),
		WallSeconds:   time.Since(b.start).Seconds(),
		AllocBytes:    mem.TotalAlloc - b.mem.TotalAlloc,
		Mallocs:       mem.Mallocs - b.mem.Mallocs,
		NumGC:         mem.NumGC - b.mem.NumGC,
		Counters:      snap.Counters,
		Gauges:        snap.Gauges,
	}
	for name, st := range snap.Timers {
		if st.Count == 0 {
			continue
		}
		report.Stages = append(report.Stages, BenchStage{
			Name:         name,
			Count:        st.Count,
			TotalSeconds: st.Sum,
			MeanSeconds:  st.Mean,
			P50Seconds:   st.P50,
			P95Seconds:   st.P95,
			P99Seconds:   st.P99,
			MinSeconds:   st.Min,
			MaxSeconds:   st.Max,
		})
	}
	sort.Slice(report.Stages, func(i, j int) bool { return report.Stages[i].Name < report.Stages[j].Name })
	return report
}

// Validate reports schema violations in the report.
func (r *BenchReport) Validate() error {
	switch {
	case r.SchemaVersion != BenchSchemaVersion:
		return fmt.Errorf("obs: bench schema version %d, want %d", r.SchemaVersion, BenchSchemaVersion)
	case r.Tool == "":
		return fmt.Errorf("obs: bench report has no tool name")
	case r.Scale == "":
		return fmt.Errorf("obs: bench report has no scale")
	case r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "":
		return fmt.Errorf("obs: bench report is missing environment fields")
	case r.NumCPU < 1:
		return fmt.Errorf("obs: bench report NumCPU %d", r.NumCPU)
	case r.WallSeconds <= 0:
		return fmt.Errorf("obs: bench report wall time %g must be positive", r.WallSeconds)
	case len(r.Stages) == 0:
		return fmt.Errorf("obs: bench report has no stage timings")
	}
	for i, s := range r.Stages {
		if s.Name == "" {
			return fmt.Errorf("obs: stage %d has no name", i)
		}
		if s.Count < 1 {
			return fmt.Errorf("obs: stage %q count %d must be >= 1", s.Name, s.Count)
		}
		if s.TotalSeconds < 0 || s.MinSeconds < 0 {
			return fmt.Errorf("obs: stage %q has negative timings", s.Name)
		}
		if s.MaxSeconds+1e-12 < s.MinSeconds {
			return fmt.Errorf("obs: stage %q max %g below min %g", s.Name, s.MaxSeconds, s.MinSeconds)
		}
		if i > 0 && r.Stages[i-1].Name >= s.Name {
			return fmt.Errorf("obs: stages not sorted by name at %q", s.Name)
		}
	}
	if t := r.Throughput; t != nil {
		switch {
		case t.Flights < 1:
			return fmt.Errorf("obs: throughput section covers %d flights", t.Flights)
		case t.CleanFraction < 0 || t.CleanFraction > 1:
			return fmt.Errorf("obs: throughput clean fraction %g outside [0,1]", t.CleanFraction)
		case t.BaselineFPS <= 0:
			return fmt.Errorf("obs: throughput baseline %g flights/sec must be positive", t.BaselineFPS)
		case t.TriageFPS < 0 || t.Speedup < 0:
			return fmt.Errorf("obs: throughput triage numbers are negative")
		case t.FastpathRatio < 0 || t.FastpathRatio > 1:
			return fmt.Errorf("obs: throughput fastpath ratio %g outside [0,1]", t.FastpathRatio)
		case t.BaselineP99FlightSeconds <= 0:
			return fmt.Errorf("obs: throughput baseline p99 %g must be positive", t.BaselineP99FlightSeconds)
		case t.TriageFPS > 0 && t.P99FlightSeconds <= 0:
			return fmt.Errorf("obs: throughput triage p99 %g must be positive", t.P99FlightSeconds)
		case t.Float32BaselineFPS < 0 || t.Float32TriageFPS < 0 || t.Float32Speedup < 0:
			return fmt.Errorf("obs: throughput float32 numbers are negative")
		case t.Float32BaselineFPS > 0 && t.Float32BaselineP99FlightSeconds <= 0:
			return fmt.Errorf("obs: throughput float32 baseline p99 %g must be positive", t.Float32BaselineP99FlightSeconds)
		case t.Float32BaselineFPS > 0 && t.Float32Speedup <= 0:
			return fmt.Errorf("obs: throughput float32 row is missing its speedup")
		}
	}
	return nil
}

// CompareBenchReports is the perf-regression gate: it fails when the
// new report's flights/sec falls more than tolerance below the old
// one's, or its p99 per-flight latency rises more than tolerance above
// (tolerance 0.15 = 15%). Both reports must carry a throughput section
// — a gate that silently passes on a metric-free artifact is no gate.
func CompareBenchReports(oldR, newR *BenchReport, tolerance float64) error {
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("obs: compare tolerance %g outside [0,1)", tolerance)
	}
	if oldR.Throughput == nil || newR.Throughput == nil {
		return fmt.Errorf("obs: both reports need a throughput section (run benchtab -run throughput -bench-json)")
	}
	oldFPS, newFPS := oldR.Throughput.FPS(), newR.Throughput.FPS()
	if newFPS < oldFPS*(1-tolerance) {
		return fmt.Errorf("obs: throughput regressed: %.2f flights/sec vs baseline %.2f (-%.1f%%, tolerance %.0f%%)",
			newFPS, oldFPS, 100*(1-newFPS/oldFPS), 100*tolerance)
	}
	oldP99, newP99 := oldR.Throughput.P99(), newR.Throughput.P99()
	if newP99 > oldP99*(1+tolerance) {
		return fmt.Errorf("obs: p99 per-flight latency regressed: %.3fs vs baseline %.3fs (+%.1f%%, tolerance %.0f%%)",
			newP99, oldP99, 100*(newP99/oldP99-1), 100*tolerance)
	}
	// The float32 rows gate like-for-like once both artifacts carry them;
	// against an older float64-only baseline the floor check below is the
	// only float32 gate.
	oldF32, newF32 := oldR.Throughput.Float32BaselineFPS, newR.Throughput.Float32BaselineFPS
	if oldF32 > 0 && newF32 > 0 && newF32 < oldF32*(1-tolerance) {
		return fmt.Errorf("obs: float32 throughput regressed: %.2f flights/sec vs baseline %.2f (-%.1f%%, tolerance %.0f%%)",
			newF32, oldF32, 100*(1-newF32/oldF32), 100*tolerance)
	}
	return nil
}

// CheckFloat32Speedup enforces the committed floor on the float32
// precision win: the report must carry float32 rows and their speedup
// over the float64 baseline must not fall below minSpeedup. A floor of
// 0 disables the check (for gating artifacts predating the rows).
func CheckFloat32Speedup(r *BenchReport, minSpeedup float64) error {
	if minSpeedup <= 0 {
		return nil
	}
	if r.Throughput == nil {
		return fmt.Errorf("obs: report has no throughput section to check the float32 speedup in")
	}
	t := r.Throughput
	if t.Float32BaselineFPS <= 0 {
		return fmt.Errorf("obs: report has no float32 throughput rows (speedup floor %.2fx is enforced)", minSpeedup)
	}
	if t.Float32Speedup < minSpeedup {
		return fmt.Errorf("obs: float32 speedup %.2fx fell below the committed floor %.2fx (%.2f vs %.2f flights/sec)",
			t.Float32Speedup, minSpeedup, t.Float32BaselineFPS, t.BaselineFPS)
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBenchFile validates the report and writes it to path.
func WriteBenchFile(path string, r *BenchReport) error {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ParseBenchReport strictly decodes and validates a BENCH_*.json
// payload: unknown fields are schema violations, as is trailing data.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r BenchReport
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: decode bench report: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("obs: trailing data after bench report")
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadBenchFile reads and validates a BENCH_*.json file.
func ReadBenchFile(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseBenchReport(data)
}
