// Package sensors models the UAV's navigation sensors: a MEMS-class IMU
// (accelerometer + gyroscope), a GPS receiver, and a compass. Each model
// converts ground-truth kinematics into noisy, rate-limited measurements
// and exposes an interception hook through which the attack package injects
// spoofed values — mirroring the paper's firmware-level injection point.
package sensors

import (
	"math"
	"math/rand"

	"soundboost/internal/mathx"
)

// Gravity is standard gravity in m/s^2 (NED: positive down).
const Gravity = 9.80665

// IMUMeasurement is one IMU output sample.
type IMUMeasurement struct {
	// Time is the sample timestamp in seconds.
	Time float64
	// Accel is the measured specific force in the body frame (m/s^2).
	// A vehicle at rest measures (0, 0, -Gravity) in NED body coordinates.
	Accel mathx.Vec3
	// Gyro is the measured body angular velocity (rad/s).
	Gyro mathx.Vec3
}

// IMUInterceptor rewrites an IMU measurement in flight; attacks implement
// it. A nil interceptor passes measurements through unchanged.
type IMUInterceptor interface {
	InterceptIMU(m IMUMeasurement) IMUMeasurement
}

// IMUConfig describes the stochastic error model of an IMU.
type IMUConfig struct {
	// SampleRate is the output rate in Hz.
	SampleRate float64
	// AccelNoiseStd is the accelerometer white-noise standard deviation
	// (m/s^2 per sample).
	AccelNoiseStd float64
	// GyroNoiseStd is the gyroscope white-noise standard deviation
	// (rad/s per sample).
	GyroNoiseStd float64
	// AccelBiasWalk is the accelerometer bias random-walk rate
	// (m/s^2 per sqrt(s)).
	AccelBiasWalk float64
	// GyroBiasWalk is the gyroscope bias random-walk rate
	// (rad/s per sqrt(s)).
	GyroBiasWalk float64
	// InitialAccelBias seeds the constant part of the accel bias (m/s^2).
	InitialAccelBias float64
	// InitialGyroBias seeds the constant part of the gyro bias (rad/s).
	InitialGyroBias float64
	// VibRectCoeff is the vibration-rectification coefficient (m/s^2 per
	// unit of normalised vibration level): MEMS accelerometers on
	// multirotors exhibit a thrust-dependent bias from rectified rotor
	// vibration, so the accel bias wanders with actuation. This is a key
	// in-flight error source that pure-inertial dead reckoning cannot
	// calibrate away.
	VibRectCoeff float64
}

// DefaultIMUConfig returns a consumer MEMS IMU error model comparable to the
// class of sensor on the paper's Holybro X500 (ICM-42688 family).
func DefaultIMUConfig() IMUConfig {
	return IMUConfig{
		SampleRate:       200,
		AccelNoiseStd:    0.05,
		GyroNoiseStd:     0.002,
		AccelBiasWalk:    0.002,
		GyroBiasWalk:     0.0002,
		InitialAccelBias: 0.02,
		InitialGyroBias:  0.001,
		VibRectCoeff:     0.5,
	}
}

// IMU simulates an inertial measurement unit.
type IMU struct {
	cfg         IMUConfig
	rng         *rand.Rand
	accelBias   mathx.Vec3
	gyroBias    mathx.Vec3
	vibAxis     mathx.Vec3
	vibration   float64
	interceptor IMUInterceptor
	lastSample  float64
	hasSampled  bool
}

// NewIMU builds an IMU with the given config. rng must be non-nil; it owns
// all stochastic behaviour so experiments stay reproducible.
func NewIMU(cfg IMUConfig, rng *rand.Rand) *IMU {
	randUnit := func() mathx.Vec3 {
		return mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	// The vibration-rectification axis is a fixed property of the mount:
	// mostly along the thrust axis with a random lateral component.
	vibAxis := mathx.Vec3{
		X: rng.NormFloat64() * 0.3,
		Y: rng.NormFloat64() * 0.3,
		Z: 1,
	}.Normalized()
	return &IMU{
		cfg:       cfg,
		rng:       rng,
		accelBias: randUnit().Scale(cfg.InitialAccelBias),
		gyroBias:  randUnit().Scale(cfg.InitialGyroBias),
		vibAxis:   vibAxis,
		vibration: 1,
	}
}

// SetVibration updates the normalised vibration level (1 = hover) that
// drives the rectification bias; the flight loop calls it each step from
// the rotor state.
func (s *IMU) SetVibration(level float64) { s.vibration = level }

// SetInterceptor installs (or clears, with nil) the attack hook.
func (s *IMU) SetInterceptor(i IMUInterceptor) { s.interceptor = i }

// SampleRate returns the configured output rate in Hz.
func (s *IMU) SampleRate() float64 { return s.cfg.SampleRate }

// Due reports whether a new sample should be produced at time t.
func (s *IMU) Due(t float64) bool {
	if !s.hasSampled {
		return true
	}
	return t-s.lastSample >= 1/s.cfg.SampleRate-1e-9
}

// Sample produces a measurement at time t given the true specific force
// (body frame, m/s^2) and true body angular velocity (rad/s). The caller is
// responsible for calling it at the configured rate (see Due).
func (s *IMU) Sample(t float64, trueSpecificForce, trueAngVel mathx.Vec3) IMUMeasurement {
	dt := 1 / s.cfg.SampleRate
	if s.hasSampled {
		dt = t - s.lastSample
		if dt < 0 {
			dt = 0
		}
	}
	s.lastSample = t
	s.hasSampled = true

	walk := func(rate float64) mathx.Vec3 {
		if rate == 0 || dt == 0 {
			return mathx.Vec3{}
		}
		scale := rate * sqrt(dt)
		return mathx.Vec3{
			X: s.rng.NormFloat64() * scale,
			Y: s.rng.NormFloat64() * scale,
			Z: s.rng.NormFloat64() * scale,
		}
	}
	s.accelBias = s.accelBias.Add(walk(s.cfg.AccelBiasWalk))
	s.gyroBias = s.gyroBias.Add(walk(s.cfg.GyroBiasWalk))

	noise := func(std float64) mathx.Vec3 {
		return mathx.Vec3{
			X: s.rng.NormFloat64() * std,
			Y: s.rng.NormFloat64() * std,
			Z: s.rng.NormFloat64() * std,
		}
	}
	accel := trueSpecificForce.Add(s.accelBias).Add(noise(s.cfg.AccelNoiseStd))
	if s.cfg.VibRectCoeff != 0 {
		// Rectified vibration bias: scales with the deviation of the
		// vibration level from the hover reference, so it wanders with
		// actuation rather than staying calibratable.
		accel = accel.Add(s.vibAxis.Scale(s.cfg.VibRectCoeff * (s.vibration - 1)))
	}
	m := IMUMeasurement{
		Time:  t,
		Accel: accel,
		Gyro:  trueAngVel.Add(s.gyroBias).Add(noise(s.cfg.GyroNoiseStd)),
	}
	if s.interceptor != nil {
		m = s.interceptor.InterceptIMU(m)
	}
	return m
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
