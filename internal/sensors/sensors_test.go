package sensors

import (
	"math"
	"math/rand"
	"testing"

	"soundboost/internal/mathx"
)

func TestIMUSampleUnbiasedMean(t *testing.T) {
	cfg := DefaultIMUConfig()
	cfg.InitialAccelBias = 0
	cfg.InitialGyroBias = 0
	cfg.AccelBiasWalk = 0
	cfg.GyroBiasWalk = 0
	imu := NewIMU(cfg, rand.New(rand.NewSource(1)))
	trueForce := mathx.Vec3{X: 0, Y: 0, Z: -Gravity}
	trueRate := mathx.Vec3{X: 0.1, Y: -0.2, Z: 0.05}
	var sumA, sumG mathx.Vec3
	const n = 5000
	for i := 0; i < n; i++ {
		m := imu.Sample(float64(i)/cfg.SampleRate, trueForce, trueRate)
		sumA = sumA.Add(m.Accel)
		sumG = sumG.Add(m.Gyro)
	}
	meanA := sumA.Scale(1.0 / n)
	meanG := sumG.Scale(1.0 / n)
	if meanA.Sub(trueForce).Norm() > 0.01 {
		t.Errorf("accel mean %v far from true %v", meanA, trueForce)
	}
	if meanG.Sub(trueRate).Norm() > 0.001 {
		t.Errorf("gyro mean %v far from true %v", meanG, trueRate)
	}
}

func TestIMUNoiseMagnitude(t *testing.T) {
	cfg := DefaultIMUConfig()
	cfg.InitialAccelBias = 0
	cfg.AccelBiasWalk = 0
	imu := NewIMU(cfg, rand.New(rand.NewSource(2)))
	var sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		m := imu.Sample(float64(i)/cfg.SampleRate, mathx.Vec3{}, mathx.Vec3{})
		sumSq += m.Accel.X * m.Accel.X
	}
	std := math.Sqrt(sumSq / n)
	if std < cfg.AccelNoiseStd*0.8 || std > cfg.AccelNoiseStd*1.2 {
		t.Errorf("accel noise std %v, want ~%v", std, cfg.AccelNoiseStd)
	}
}

func TestIMUBiasWalkGrows(t *testing.T) {
	cfg := DefaultIMUConfig()
	cfg.AccelNoiseStd = 0
	cfg.InitialAccelBias = 0
	cfg.AccelBiasWalk = 0.1
	imu := NewIMU(cfg, rand.New(rand.NewSource(3)))
	first := imu.Sample(0, mathx.Vec3{}, mathx.Vec3{})
	var last IMUMeasurement
	for i := 1; i <= 2000; i++ {
		last = imu.Sample(float64(i)/cfg.SampleRate, mathx.Vec3{}, mathx.Vec3{})
	}
	if last.Accel.Sub(first.Accel).Norm() == 0 {
		t.Error("bias walk produced no drift")
	}
}

func TestIMUDue(t *testing.T) {
	cfg := DefaultIMUConfig()
	cfg.SampleRate = 100
	imu := NewIMU(cfg, rand.New(rand.NewSource(4)))
	if !imu.Due(0) {
		t.Error("fresh IMU not due")
	}
	imu.Sample(0, mathx.Vec3{}, mathx.Vec3{})
	if imu.Due(0.005) {
		t.Error("due only 5ms after a 100 Hz sample")
	}
	if !imu.Due(0.010) {
		t.Error("not due 10ms after a 100 Hz sample")
	}
}

type addBiasIMU struct{ bias mathx.Vec3 }

func (a addBiasIMU) InterceptIMU(m IMUMeasurement) IMUMeasurement {
	m.Accel = m.Accel.Add(a.bias)
	return m
}

func TestIMUInterceptor(t *testing.T) {
	cfg := DefaultIMUConfig()
	cfg.AccelNoiseStd = 0
	cfg.InitialAccelBias = 0
	cfg.AccelBiasWalk = 0
	imu := NewIMU(cfg, rand.New(rand.NewSource(5)))
	imu.SetInterceptor(addBiasIMU{bias: mathx.Vec3{Z: 5}})
	m := imu.Sample(0, mathx.Vec3{}, mathx.Vec3{})
	if math.Abs(m.Accel.Z-5) > 1e-9 {
		t.Errorf("intercepted accel Z = %v, want 5", m.Accel.Z)
	}
	imu.SetInterceptor(nil)
	m = imu.Sample(0.01, mathx.Vec3{}, mathx.Vec3{})
	if m.Accel.Z != 0 {
		t.Errorf("after clearing interceptor, accel Z = %v, want 0", m.Accel.Z)
	}
}

func TestGPSFixNearTruth(t *testing.T) {
	cfg := DefaultGPSConfig()
	gps := NewGPS(cfg, rand.New(rand.NewSource(6)))
	truePos := mathx.Vec3{X: 100, Y: -50, Z: -30}
	trueVel := mathx.Vec3{X: 2, Y: 1, Z: 0}
	var sumPosErr, sumVelErr float64
	const n = 1000
	for i := 0; i < n; i++ {
		f := gps.Fix(float64(i)/cfg.SampleRate, truePos, trueVel)
		if !f.Valid {
			t.Fatal("fix invalid")
		}
		sumPosErr += f.Pos.Sub(truePos).Norm()
		sumVelErr += f.Vel.Sub(trueVel).Norm()
	}
	if mean := sumPosErr / n; mean > 5 {
		t.Errorf("mean position error %v m too large", mean)
	}
	if mean := sumVelErr / n; mean > 1 {
		t.Errorf("mean velocity error %v m/s too large", mean)
	}
}

type shiftGPS struct{ offset mathx.Vec3 }

func (s shiftGPS) InterceptGPS(f GPSFix) GPSFix {
	f.Pos = f.Pos.Add(s.offset)
	return f
}

func TestGPSInterceptor(t *testing.T) {
	cfg := DefaultGPSConfig()
	cfg.HorizontalStd = 0
	cfg.VerticalStd = 0
	cfg.WalkStd = 0
	gps := NewGPS(cfg, rand.New(rand.NewSource(7)))
	gps.SetInterceptor(shiftGPS{offset: mathx.Vec3{X: 10}})
	f := gps.Fix(0, mathx.Vec3{}, mathx.Vec3{})
	if math.Abs(f.Pos.X-10) > 1e-9 {
		t.Errorf("spoofed X = %v, want 10", f.Pos.X)
	}
}

func TestGPSDue(t *testing.T) {
	gps := NewGPS(DefaultGPSConfig(), rand.New(rand.NewSource(8)))
	if !gps.Due(0) {
		t.Error("fresh GPS not due")
	}
	gps.Fix(0, mathx.Vec3{}, mathx.Vec3{})
	if gps.Due(0.05) {
		t.Error("due only 50ms after a 10 Hz fix")
	}
	if !gps.Due(0.1) {
		t.Error("not due 100ms after a 10 Hz fix")
	}
}

func TestGPSWanderIsCorrelated(t *testing.T) {
	cfg := DefaultGPSConfig()
	cfg.HorizontalStd = 0
	cfg.VerticalStd = 0
	cfg.VelStd = 0
	cfg.WalkStd = 1
	cfg.WalkTau = 10
	gps := NewGPS(cfg, rand.New(rand.NewSource(9)))
	prev := gps.Fix(0, mathx.Vec3{}, mathx.Vec3{})
	var maxStep float64
	for i := 1; i < 500; i++ {
		f := gps.Fix(float64(i)*0.1, mathx.Vec3{}, mathx.Vec3{})
		if step := f.Pos.Sub(prev.Pos).Norm(); step > maxStep {
			maxStep = step
		}
		prev = f
	}
	// Correlated wander moves in small steps, never jumping by sigma at once.
	if maxStep > 1.0 {
		t.Errorf("wander step %v too large for correlated process", maxStep)
	}
}

func TestCompassHeading(t *testing.T) {
	c := NewCompass(0.02, rand.New(rand.NewSource(10)))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sum += c.Heading(1.0)
	}
	if mean := sum / n; math.Abs(mean-1.0) > 0.01 {
		t.Errorf("heading mean %v, want ~1.0", mean)
	}
}

func TestIMUDeterministicWithSeed(t *testing.T) {
	run := func() []IMUMeasurement {
		imu := NewIMU(DefaultIMUConfig(), rand.New(rand.NewSource(42)))
		out := make([]IMUMeasurement, 10)
		for i := range out {
			out[i] = imu.Sample(float64(i)*0.005, mathx.Vec3{Z: -Gravity}, mathx.Vec3{})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
}

func TestIMUVibrationRectificationBias(t *testing.T) {
	cfg := DefaultIMUConfig()
	cfg.AccelNoiseStd = 0
	cfg.InitialAccelBias = 0
	cfg.AccelBiasWalk = 0
	cfg.VibRectCoeff = 0.5
	imu := NewIMU(cfg, rand.New(rand.NewSource(11)))

	// At the hover reference level (1) there is no rectification bias.
	imu.SetVibration(1)
	m := imu.Sample(0, mathx.Vec3{}, mathx.Vec3{})
	if m.Accel.Norm() > 1e-9 {
		t.Errorf("bias at hover vibration = %v, want 0", m.Accel)
	}
	// Above hover the bias grows along the (mostly thrust-axis) vib axis.
	imu.SetVibration(1.4)
	m = imu.Sample(0.01, mathx.Vec3{}, mathx.Vec3{})
	if got := m.Accel.Norm(); math.Abs(got-0.5*0.4) > 1e-9 {
		t.Errorf("bias magnitude = %v, want %v", got, 0.5*0.4)
	}
	if m.Accel.Z <= 0 {
		t.Errorf("vibration bias z = %v, want dominant positive component", m.Accel.Z)
	}
	// Disabling the coefficient removes the effect entirely.
	cfg.VibRectCoeff = 0
	clean := NewIMU(cfg, rand.New(rand.NewSource(11)))
	clean.SetVibration(2)
	m = clean.Sample(0, mathx.Vec3{}, mathx.Vec3{})
	if m.Accel.Norm() != 0 {
		t.Errorf("bias with zero coefficient = %v", m.Accel)
	}
}
