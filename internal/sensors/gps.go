package sensors

import (
	"math/rand"

	"soundboost/internal/mathx"
)

// GPSFix is one GPS receiver output.
type GPSFix struct {
	// Time is the fix timestamp in seconds.
	Time float64
	// Pos is the measured position in local NED coordinates (m).
	Pos mathx.Vec3
	// Vel is the measured velocity in NED (m/s).
	Vel mathx.Vec3
	// Valid mirrors receiver fix validity; spoofers keep it true.
	Valid bool
}

// GPSInterceptor rewrites a GPS fix in flight; GPS spoofing attacks
// implement it.
type GPSInterceptor interface {
	InterceptGPS(f GPSFix) GPSFix
}

// GPSConfig describes the GPS receiver error model.
type GPSConfig struct {
	// SampleRate is the fix rate in Hz (consumer receivers: 5-10 Hz).
	SampleRate float64
	// HorizontalStd and VerticalStd are position noise sigmas (m).
	HorizontalStd float64
	VerticalStd   float64
	// VelStd is the velocity noise sigma (m/s).
	VelStd float64
	// WalkStd adds a slowly-varying correlated position error (m), modelling
	// multipath / atmospheric wander.
	WalkStd float64
	// WalkTau is the correlation time of the wander in seconds.
	WalkTau float64
}

// DefaultGPSConfig models a u-blox M8/M9-class receiver.
func DefaultGPSConfig() GPSConfig {
	return GPSConfig{
		SampleRate:    10,
		HorizontalStd: 0.4,
		VerticalStd:   0.8,
		VelStd:        0.1,
		WalkStd:       0.6,
		WalkTau:       30,
	}
}

// GPS simulates a GPS receiver in a local NED frame.
type GPS struct {
	cfg         GPSConfig
	rng         *rand.Rand
	wander      mathx.Vec3
	interceptor GPSInterceptor
	lastFix     float64
	hasFixed    bool
}

// NewGPS builds a GPS receiver model; rng must be non-nil.
func NewGPS(cfg GPSConfig, rng *rand.Rand) *GPS {
	return &GPS{cfg: cfg, rng: rng}
}

// SetInterceptor installs (or clears, with nil) the attack hook.
func (g *GPS) SetInterceptor(i GPSInterceptor) { g.interceptor = i }

// SampleRate returns the fix rate in Hz.
func (g *GPS) SampleRate() float64 { return g.cfg.SampleRate }

// Due reports whether a new fix should be produced at time t.
func (g *GPS) Due(t float64) bool {
	if !g.hasFixed {
		return true
	}
	return t-g.lastFix >= 1/g.cfg.SampleRate-1e-9
}

// Fix produces a measurement at time t from true position and velocity.
func (g *GPS) Fix(t float64, truePos, trueVel mathx.Vec3) GPSFix {
	dt := 1 / g.cfg.SampleRate
	if g.hasFixed {
		dt = t - g.lastFix
		if dt < 0 {
			dt = 0
		}
	}
	g.lastFix = t
	g.hasFixed = true

	// Ornstein-Uhlenbeck wander: decays toward zero, driven by white noise.
	if g.cfg.WalkTau > 0 {
		decay := 1 - dt/g.cfg.WalkTau
		if decay < 0 {
			decay = 0
		}
		drive := g.cfg.WalkStd * sqrt(2*dt/g.cfg.WalkTau)
		g.wander = g.wander.Scale(decay).Add(mathx.Vec3{
			X: g.rng.NormFloat64() * drive,
			Y: g.rng.NormFloat64() * drive,
			Z: g.rng.NormFloat64() * drive,
		})
	}
	f := GPSFix{
		Time: t,
		Pos: truePos.Add(g.wander).Add(mathx.Vec3{
			X: g.rng.NormFloat64() * g.cfg.HorizontalStd,
			Y: g.rng.NormFloat64() * g.cfg.HorizontalStd,
			Z: g.rng.NormFloat64() * g.cfg.VerticalStd,
		}),
		Vel: trueVel.Add(mathx.Vec3{
			X: g.rng.NormFloat64() * g.cfg.VelStd,
			Y: g.rng.NormFloat64() * g.cfg.VelStd,
			Z: g.rng.NormFloat64() * g.cfg.VelStd,
		}),
		Valid: true,
	}
	if g.interceptor != nil {
		f = g.interceptor.InterceptGPS(f)
	}
	return f
}

// Compass models a magnetometer-derived heading source. The paper's threat
// model does not attack the compass, so the model is noise-only.
type Compass struct {
	// NoiseStd is the heading noise sigma in radians.
	NoiseStd float64
	rng      *rand.Rand
}

// NewCompass builds a compass model; rng must be non-nil.
func NewCompass(noiseStd float64, rng *rand.Rand) *Compass {
	return &Compass{NoiseStd: noiseStd, rng: rng}
}

// Heading returns a noisy yaw measurement (radians) from the true yaw.
func (c *Compass) Heading(trueYaw float64) float64 {
	return trueYaw + c.rng.NormFloat64()*c.NoiseStd
}
