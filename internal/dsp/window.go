package dsp

import "math"

// WindowFunc generates an analysis window of length n. Implementations
// return a fresh slice each call.
type WindowFunc func(n int) []float64

// Hann returns the Hann (raised-cosine) window of length n. For n <= 1 a
// rectangular window of the requested length is returned.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Hamming returns the Hamming window of length n.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Rectangular returns the all-ones window of length n.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Blackman returns the Blackman window of length n, useful when stronger
// sidelobe suppression is needed to separate nearby rotor harmonics.
func Blackman(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
	}
	return w
}

// ApplyWindow multiplies x element-wise by window w into a new slice.
// The shorter length wins, so mismatched lengths truncate rather than panic.
func ApplyWindow(x, w []float64) []float64 {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = x[i] * w[i]
	}
	return out
}
