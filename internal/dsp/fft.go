// Package dsp implements the signal-processing substrate SoundBoost needs:
// a radix-2 FFT with Bluestein fallback for arbitrary lengths, analysis
// windows, short-time Fourier transforms, frequency-band energy extraction
// (the paper's blade-passing / mechanical / aerodynamic groups), biquad
// filters, and the Goertzel single-bin DFT.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x and returns a new slice.
// Power-of-two lengths use an in-place iterative radix-2 Cooley-Tukey;
// other lengths fall back to Bluestein's chirp-z algorithm. Length 0 returns
// an empty slice.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse DFT of x (including the 1/N normalization).
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTReal computes the DFT of a real-valued signal.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// radix2 is an iterative in-place Cooley-Tukey FFT for power-of-two n.
// When inverse is true the twiddle sign is flipped; normalization is the
// caller's responsibility.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein implements the chirp-z transform reduction of an arbitrary-length
// DFT to a power-of-two convolution.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	// Chirp w[k] = exp(sign*i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k can overflow for huge n; mod 2n keeps the phase identical.
		kk := (int64(k) * int64(k)) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// Magnitudes returns |X[k]| for each bin.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, c := range x {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// PowerSpectrum returns |X[k]|^2 for each bin.
func PowerSpectrum(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, c := range x {
		re, im := real(c), imag(c)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the center frequency in Hz of FFT bin k for a
// transform of length n over samples taken at sampleRate Hz.
func BinFrequency(k, n int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index whose center frequency is closest
// to freq, clamped to the valid half-spectrum range [0, n/2].
func FrequencyBin(freq float64, n int, sampleRate float64) int {
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Goertzel evaluates the DFT magnitude of x at a single target frequency
// using the Goertzel recurrence. It is cheaper than a full FFT when only a
// handful of bins are needed (e.g. tracking the blade-passing line).
func Goertzel(x []float64, targetFreq, sampleRate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := targetFreq * float64(n) / sampleRate
	omega := 2 * math.Pi * k / float64(n)
	coeff := 2 * math.Cos(omega)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// Validate reports an error when a transform length would be pathological.
func Validate(n int) error {
	if n < 0 {
		return fmt.Errorf("dsp: negative transform length %d", n)
	}
	return nil
}
