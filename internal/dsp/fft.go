// Package dsp implements the signal-processing substrate SoundBoost needs:
// a radix-2 FFT with Bluestein fallback for arbitrary lengths, analysis
// windows, short-time Fourier transforms, frequency-band energy extraction
// (the paper's blade-passing / mechanical / aerodynamic groups), biquad
// filters, and the Goertzel single-bin DFT. Transforms run over cached
// per-size plans (see Plan); the free functions below are thin wrappers
// that allocate an output slice and delegate.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x and returns a new slice.
// Power-of-two lengths use an in-place iterative radix-2 Cooley-Tukey;
// other lengths fall back to Bluestein's chirp-z algorithm. Length 0 returns
// an empty slice.
//
// Deprecated: the transform surface is consolidated on the Plan API —
// hold a Plan and use Forward/Inverse/ForwardReal/InverseReal on
// pooled scratch. This shim allocates a fresh output slice per call.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	PlanFFT(len(x)).Transform(out, false)
	return out
}

// IFFT computes the inverse DFT of x (including the 1/N normalization).
//
// Deprecated: use Plan.Inverse (or Plan.InverseReal for conjugate-
// symmetric spectra of real signals) on pooled scratch.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	PlanFFT(len(x)).Transform(out, true)
	return out
}

// FFTReal computes the full n-bin DFT of a real-valued signal.
//
// Deprecated: use Plan.ForwardReal, which computes only the n/2+1
// non-redundant bins of the conjugate-symmetric spectrum at half the
// butterfly work. This shim reconstructs the redundant upper half for
// compatibility.
func FFTReal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return []complex128{}
	}
	c := make([]complex128, n)
	spec := AcquireComplex(n/2 + 1)
	defer ReleaseComplex(spec)
	spec = PlanFFT(n).ForwardReal(x, spec)
	copy(c, spec)
	for k := n/2 + 1; k < n; k++ {
		c[k] = cmplx.Conj(spec[n-k])
	}
	return c
}

// Magnitudes returns |X[k]| for each bin.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, c := range x {
		out[i] = cmplx.Abs(c)
	}
	return out
}

// PowerSpectrum returns |X[k]|^2 for each bin.
func PowerSpectrum(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, c := range x {
		re, im := real(c), imag(c)
		out[i] = re*re + im*im
	}
	return out
}

// BinFrequency returns the center frequency in Hz of FFT bin k for a
// transform of length n over samples taken at sampleRate Hz.
func BinFrequency(k, n int, sampleRate float64) float64 {
	return float64(k) * sampleRate / float64(n)
}

// FrequencyBin returns the FFT bin index whose center frequency is closest
// to freq, clamped to the valid half-spectrum range [0, n/2].
func FrequencyBin(freq float64, n int, sampleRate float64) int {
	k := int(math.Round(freq * float64(n) / sampleRate))
	if k < 0 {
		k = 0
	}
	if k > n/2 {
		k = n / 2
	}
	return k
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Goertzel evaluates the DFT magnitude of x at a single target frequency
// using the generalized Goertzel recurrence (Sysel & Rajmic 2012). Unlike
// the classic integer-bin formulation, the final complex correction term
// is exact for *fractional* bins too, so the magnitude matches a direct
// DFT at any target frequency — the common case when tracking the
// blade-passing line, which rarely sits on a bin center. It is cheaper
// than a full FFT when only a handful of bins are needed.
func Goertzel(x []float64, targetFreq, sampleRate float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := targetFreq * float64(n) / sampleRate
	omega := 2 * math.Pi * k / float64(n)
	coeff := 2 * math.Cos(omega)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// y[N-1] = s[N-1] - e^{-i*omega} s[N-2] equals e^{i*omega(N-1)} X(omega)
	// for any omega; the unit phasor drops out of the magnitude. The classic
	// power formula s1^2 + s2^2 - coeff*s1*s2 is only its square when omega
	// corresponds to an integer bin.
	re := s1 - s2*math.Cos(omega)
	im := s2 * math.Sin(omega)
	return math.Hypot(re, im)
}

// Validate reports an error when a transform length would be pathological.
func Validate(n int) error {
	if n < 0 {
		return fmt.Errorf("dsp: negative transform length %d", n)
	}
	return nil
}
