package dsp

import (
	"errors"
	"math"
	"testing"
)

func sine(freq, sampleRate float64, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / sampleRate)
	}
	return x
}

func TestSTFTShape(t *testing.T) {
	const sampleRate = 8000.0
	x := sine(440, sampleRate, 8000)
	spec, err := STFT(x, sampleRate, STFTConfig{WindowSize: 1024, HopSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := (8000-1024)/512 + 1
	if spec.Frames() != wantFrames {
		t.Errorf("Frames() = %d, want %d", spec.Frames(), wantFrames)
	}
	if spec.Bins() != 1024/2+1 {
		t.Errorf("Bins() = %d, want %d", spec.Bins(), 513)
	}
}

func TestSTFTPadUsesNextPow2(t *testing.T) {
	x := sine(100, 8000, 4000)
	spec, err := STFT(x, 8000, STFTConfig{WindowSize: 1000, HopSize: 500, Pad: true})
	if err != nil {
		t.Fatal(err)
	}
	if spec.NFFT != 1024 {
		t.Errorf("NFFT = %d, want 1024", spec.NFFT)
	}
}

func TestSTFTInvalidConfig(t *testing.T) {
	tests := []struct {
		name string
		cfg  STFTConfig
	}{
		{"zero window", STFTConfig{WindowSize: 0, HopSize: 1}},
		{"zero hop", STFTConfig{WindowSize: 16, HopSize: 0}},
		{"negative window", STFTConfig{WindowSize: -4, HopSize: 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := STFT([]float64{1, 2, 3}, 8000, tt.cfg); !errors.Is(err, ErrBadSTFTConfig) {
				t.Errorf("err = %v, want ErrBadSTFTConfig", err)
			}
		})
	}
}

func TestSTFTPeakTracksSine(t *testing.T) {
	const sampleRate = 16000.0
	x := sine(2500, sampleRate, 16000)
	spec, err := STFT(x, sampleRate, STFTConfig{WindowSize: 2048, HopSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < spec.Frames(); i++ {
		bin, _ := spec.PeakBin(i, 100, 7000)
		freq := BinFrequency(bin, spec.NFFT, sampleRate)
		if math.Abs(freq-2500) > 2*sampleRate/float64(spec.NFFT) {
			t.Fatalf("frame %d: peak at %g Hz, want ~2500", i, freq)
		}
	}
}

func TestBandEnergySelectivity(t *testing.T) {
	const sampleRate = 16000.0
	// Signal with energy at 200 Hz only.
	x := sine(200, sampleRate, 16000)
	spec, err := STFT(x, sampleRate, STFTConfig{WindowSize: 4096, HopSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	low := Band{Name: "blade", Low: 100, High: 400}
	high := Band{Name: "aero", Low: 5000, High: 6000}
	energies := spec.BandEnergies([]Band{low, high})
	for i, row := range energies {
		if row[0] < 10*row[1] {
			t.Errorf("frame %d: in-band %g not dominant over out-of-band %g", i, row[0], row[1])
		}
	}
}

func TestBandContains(t *testing.T) {
	b := Band{Low: 100, High: 300}
	for _, tt := range []struct {
		f    float64
		want bool
	}{{99, false}, {100, true}, {200, true}, {300, true}, {301, false}} {
		if got := b.Contains(tt.f); got != tt.want {
			t.Errorf("Contains(%g) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestMeanSpectrum(t *testing.T) {
	x := sine(1000, 8000, 8192)
	spec, err := STFT(x, 8000, STFTConfig{WindowSize: 1024, HopSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	mean := spec.MeanSpectrum()
	if len(mean) != spec.Bins() {
		t.Fatalf("MeanSpectrum length = %d, want %d", len(mean), spec.Bins())
	}
	peak := 0
	for k := range mean {
		if mean[k] > mean[peak] {
			peak = k
		}
	}
	freq := BinFrequency(peak, spec.NFFT, 8000)
	if math.Abs(freq-1000) > 20 {
		t.Errorf("mean spectrum peak at %g Hz, want ~1000", freq)
	}
}

func TestMeanSpectrumEmpty(t *testing.T) {
	s := &Spectrogram{}
	if got := s.MeanSpectrum(); got != nil {
		t.Errorf("MeanSpectrum of empty = %v, want nil", got)
	}
	if s.Bins() != 0 {
		t.Errorf("Bins of empty = %d, want 0", s.Bins())
	}
}

func TestFrameTime(t *testing.T) {
	s := &Spectrogram{HopSize: 400, SampleRate: 8000}
	if got := s.FrameTime(2); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("FrameTime(2) = %v, want 0.1", got)
	}
}

func TestWindows(t *testing.T) {
	tests := []struct {
		name string
		fn   WindowFunc
	}{
		{"hann", Hann},
		{"hamming", Hamming},
		{"blackman", Blackman},
		{"rect", Rectangular},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := tt.fn(64)
			if len(w) != 64 {
				t.Fatalf("len = %d, want 64", len(w))
			}
			for i, v := range w {
				if v < -1e-12 || v > 1+1e-12 {
					t.Errorf("w[%d] = %v out of [0,1]", i, v)
				}
			}
			// One-sample windows must be usable.
			if one := tt.fn(1); len(one) != 1 || one[0] != 1 {
				t.Errorf("window(1) = %v, want [1]", one)
			}
		})
	}
}

func TestHannSymmetry(t *testing.T) {
	w := Hann(101)
	for i := 0; i < len(w)/2; i++ {
		if math.Abs(w[i]-w[len(w)-1-i]) > 1e-12 {
			t.Fatalf("asymmetric at %d", i)
		}
	}
	if math.Abs(w[50]-1) > 1e-12 {
		t.Errorf("Hann center = %v, want 1", w[50])
	}
}

func TestApplyWindowTruncates(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	w := []float64{0.5, 0.5}
	got := ApplyWindow(x, w)
	if len(got) != 2 || got[0] != 0.5 || got[1] != 1 {
		t.Errorf("ApplyWindow = %v, want [0.5 1]", got)
	}
}
