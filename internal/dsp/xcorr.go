package dsp

import (
	"fmt"
	"math/cmplx"
)

// CrossCorrelate returns the circular cross-correlation of a and b via the
// frequency domain: r[τ] = Σ a[t] b[t+τ]. Both inputs are zero-padded to
// the next power of two at least len(a)+len(b)-1, so linear lags up to
// ±(len-1) are unaliased. Both signals are real, so only the
// non-redundant half spectra are transformed and multiplied.
func CrossCorrelate(a, b []float64) []float64 {
	n := NextPow2(len(a) + len(b) - 1)
	plan := PlanFFT(n)
	fa := AcquireFloats(n)
	defer ReleaseFloats(fa)
	fb := AcquireFloats(n)
	defer ReleaseFloats(fb)
	copy(fa, a)
	copy(fb, b)
	A := AcquireComplex(plan.SpectrumLen())
	defer ReleaseComplex(A)
	B := AcquireComplex(plan.SpectrumLen())
	defer ReleaseComplex(B)
	A = plan.ForwardReal(fa, A)
	B = plan.ForwardReal(fb, B)
	for i := range A {
		A[i] = cmplx.Conj(A[i]) * B[i]
	}
	return plan.InverseReal(A, make([]float64, n))
}

// GCCPHAT computes the Generalized Cross-Correlation with Phase Transform
// between two signals — the standard TDoA estimator for microphone arrays
// (the paper's §II-D locates each propeller by TDoA). The PHAT weighting
// whitens the spectrum so the correlation peak sharpens to the true delay
// even for broadband rotor noise.
func GCCPHAT(a, b []float64) []float64 {
	n := NextPow2(len(a) + len(b) - 1)
	plan := PlanFFT(n)
	fa := AcquireFloats(n)
	defer ReleaseFloats(fa)
	fb := AcquireFloats(n)
	defer ReleaseFloats(fb)
	copy(fa, a)
	copy(fb, b)
	A := AcquireComplex(plan.SpectrumLen())
	defer ReleaseComplex(A)
	B := AcquireComplex(plan.SpectrumLen())
	defer ReleaseComplex(B)
	A = plan.ForwardReal(fa, A)
	B = plan.ForwardReal(fb, B)
	for i := range A {
		c := cmplx.Conj(A[i]) * B[i]
		mag := cmplx.Abs(c)
		if mag > 1e-12 {
			c /= complex(mag, 0)
		}
		A[i] = c
	}
	return plan.InverseReal(A, make([]float64, n))
}

// PeakLag finds the lag (in samples, possibly negative) of the maximum of
// a circular correlation sequence, searching only |lag| <= maxLag.
// Positive lag means b is delayed relative to a.
func PeakLag(corr []float64, maxLag int) (lag int, value float64) {
	n := len(corr)
	if n == 0 {
		return 0, 0
	}
	if maxLag <= 0 || maxLag >= n/2 {
		maxLag = n/2 - 1
	}
	best := corr[0]
	bestLag := 0
	for l := 1; l <= maxLag; l++ {
		if corr[l] > best {
			best, bestLag = corr[l], l
		}
		if corr[n-l] > best {
			best, bestLag = corr[n-l], -l
		}
	}
	return bestLag, best
}

// PeakLagInterp refines PeakLag to sub-sample resolution by fitting a
// parabola through the peak and its neighbours — necessary for small
// microphone arrays whose full delay range spans only a few samples.
func PeakLagInterp(corr []float64, maxLag int) float64 {
	n := len(corr)
	if n < 3 {
		return 0
	}
	lag, _ := PeakLag(corr, maxLag)
	at := func(l int) float64 { return corr[((l%n)+n)%n] }
	ym, y0, yp := at(lag-1), at(lag), at(lag+1)
	den := ym - 2*y0 + yp
	if den == 0 {
		return float64(lag)
	}
	delta := 0.5 * (ym - yp) / den
	if delta > 0.5 {
		delta = 0.5
	}
	if delta < -0.5 {
		delta = -0.5
	}
	return float64(lag) + delta
}

// EstimateTDoA returns the time-difference-of-arrival of b relative to a
// in seconds, via GCC-PHAT with sub-sample peak interpolation, limited to
// |tdoa| <= maxSeconds.
func EstimateTDoA(a, b []float64, sampleRate, maxSeconds float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("dsp: empty TDoA inputs")
	}
	if sampleRate <= 0 {
		return 0, fmt.Errorf("dsp: sample rate %g must be positive", sampleRate)
	}
	corr := GCCPHAT(a, b)
	maxLag := int(maxSeconds * sampleRate)
	return PeakLagInterp(corr, maxLag) / sampleRate, nil
}
