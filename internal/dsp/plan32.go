package dsp

import (
	"math"
	"sync"
	"sync/atomic"

	"soundboost/internal/obs"
)

// Float32 transform plans for the opt-in single-precision hot path.
// Power-of-two sizes run a complex64 radix-2 butterfly over float32
// twiddle tables — half the memory traffic of the complex128 path on
// top of the real-input packing. Other sizes promote to the float64
// plan on pooled scratch and demote the result; the precision-critical
// callers (signature extraction, triage screening) always use
// NextPow2 sizes, so the fallback is an API completeness path, not a
// hot one. Like PlanFFT, the cache is process-wide: every session,
// stream engine and fleet replica in the process shares one table set
// per size.

// Plan32 is the float32 analogue of Plan. Plans are immutable after
// construction and safe for concurrent use.
type Plan32 struct {
	n int

	// radix-2 path (power-of-two n).
	bitrev  []int
	twidFwd []complex64 // exp(-2*pi*i*k/n), k < n/2
	rsub    *Plan32     // half-length plan driving ForwardReal

	// All other sizes promote through the float64 plan.
	fallback *Plan
}

// plan32Cache maps transform size -> *Plan32.
var plan32Cache sync.Map

// PlanFFT32 returns the cached float32 transform plan for size n,
// building it on first use. The returned plan is shared and read-only.
func PlanFFT32(n int) *Plan32 {
	if p, ok := plan32Cache.Load(n); ok {
		return p.(*Plan32)
	}
	p := newPlan32(n)
	actual, _ := plan32Cache.LoadOrStore(n, p)
	fftPlanCount.Inc()
	return actual.(*Plan32)
}

func newPlan32(n int) *Plan32 {
	p := &Plan32{n: n}
	if n <= 1 {
		return p
	}
	if n&(n-1) != 0 {
		p.fallback = PlanFFT(n)
		return p
	}
	base := PlanFFT(n) // shares the float64 bitrev/twiddle derivation
	p.bitrev = base.bitrev
	p.twidFwd = make([]complex64, len(base.twidFwd))
	for k, w := range base.twidFwd {
		p.twidFwd[k] = complex64(w)
	}
	p.rsub = PlanFFT32(n / 2)
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan32) Size() int { return p.n }

// SpectrumLen returns the number of non-redundant real-input spectrum
// bins: Size()/2 + 1.
func (p *Plan32) SpectrumLen() int { return p.n/2 + 1 }

// Forward computes the in-place DFT of x, which must have length
// Size().
func (p *Plan32) Forward(x []complex64) {
	if len(x) != p.n {
		panic("dsp: plan/input size mismatch")
	}
	if p.n <= 1 {
		return
	}
	if p.fallback != nil {
		buf := AcquireComplex(p.n)
		defer ReleaseComplex(buf)
		for i, v := range x {
			buf[i] = complex128(v)
		}
		p.fallback.Transform(buf, false)
		for i, v := range buf {
			x[i] = complex64(v)
		}
		return
	}
	span := fftTimer.Start()
	defer span.Stop()
	p.radix2(x)
}

// radix2 is the iterative in-place forward Cooley-Tukey butterfly —
// the same flat loop structure as the float64 plan at half the memory
// traffic. The butterfly is spelled out in float32 component
// arithmetic because the compiler evaluates complex64 multiplication
// through complex128, which would forfeit the single-precision
// speedup.
func (p *Plan32) radix2(x []complex64) {
	n := p.n
	for i, j := range p.bitrev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	twid := p.twidFwd
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half]
				w := twid[k*stride]
				br, bi := real(b), imag(b)
				wr, wi := real(w), imag(w)
				tr := br*wr - bi*wi
				ti := br*wi + bi*wr
				ar, ai := real(a), imag(a)
				x[start+k] = complex(ar+tr, ai+ti)
				x[start+k+half] = complex(ar-tr, ai-ti)
			}
		}
	}
}

// ForwardReal computes the DFT of the real signal x (length Size()),
// returning the non-redundant half spectrum X[0..n/2] — the float32
// analogue of Plan.ForwardReal, packing even/odd samples into one
// half-length complex64 transform. The result is written into out when
// cap(out) >= SpectrumLen(), otherwise a fresh slice is allocated.
func (p *Plan32) ForwardReal(x []float32, out []complex64) []complex64 {
	if len(x) != p.n {
		panic("dsp: plan/input size mismatch")
	}
	if cap(out) >= p.SpectrumLen() {
		out = out[:p.SpectrumLen()]
	} else {
		out = make([]complex64, p.SpectrumLen())
	}
	n := p.n
	if n <= 1 {
		if n == 1 {
			out[0] = complex(x[0], 0)
		}
		return out
	}
	if p.fallback != nil {
		xf := AcquireFloats(n)
		defer ReleaseFloats(xf)
		for i, v := range x {
			xf[i] = float64(v)
		}
		spec := AcquireComplex(p.SpectrumLen())
		defer ReleaseComplex(spec)
		spec = p.fallback.ForwardReal(xf, spec)
		for i, v := range spec {
			out[i] = complex64(v)
		}
		return out
	}
	span := fftTimer.Start()
	defer span.Stop()
	h := n / 2
	z := AcquireComplex64(h)
	defer ReleaseComplex64(z)
	for k := 0; k < h; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	p.rsub.radix2(z)
	re0, im0 := real(z[0]), imag(z[0])
	out[0] = complex(re0+im0, 0)
	out[h] = complex(re0-im0, 0)
	for k := 1; k < h; k++ {
		zr, zi := real(z[k]), imag(z[k])
		cr, ci := real(z[h-k]), -imag(z[h-k])
		fer, fei := (zr+cr)*0.5, (zi+ci)*0.5
		// Fo = (Z[k]-conj(Z[h-k]))/2i
		for_, foi := (zi-ci)*0.5, (cr-zr)*0.5
		w := p.twidFwd[k]
		wr, wi := real(w), imag(w)
		out[k] = complex(fer+for_*wr-foi*wi, fei+for_*wi+foi*wr)
	}
	return out
}

// BandPower32 sums spectral power over a band of a half spectrum
// produced by Plan32.ForwardReal and returns the band magnitude
// sqrt(sum |X[k]|^2) — the float32 counterpart of Magnitudes +
// BandEnergy fused into one pass with no intermediate slice and one
// square root per band instead of one per bin.
func BandPower32(spec []complex64, nfft int, sampleRate float64, b Band) float64 {
	lo := FrequencyBin(b.Low, nfft, sampleRate)
	hi := FrequencyBin(b.High, nfft, sampleRate)
	if hi >= len(spec) {
		hi = len(spec) - 1
	}
	var sum float32
	for k := lo; k <= hi; k++ {
		re, im := real(spec[k]), imag(spec[k])
		sum += re*re + im*im
	}
	return math.Sqrt(float64(sum))
}

// --- Float32 scratch arenas.

var (
	complex64Pools sync.Map // int -> *sync.Pool of *[]complex64
	float32Pools   sync.Map // int -> *sync.Pool of *[]float32
)

// AcquireComplex64 returns a zeroed scratch []complex64 of length n
// from the arena. Release it with ReleaseComplex64 when done.
func AcquireComplex64(n int) []complex64 {
	arenaAcquire(8 * n)
	poolAny, ok := complex64Pools.Load(n)
	if !ok {
		poolAny, _ = complex64Pools.LoadOrStore(n, &sync.Pool{})
	}
	if v := poolAny.(*sync.Pool).Get(); v != nil {
		buf := *(v.(*[]complex64))
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]complex64, n)
}

// ReleaseComplex64 returns a buffer obtained from AcquireComplex64 to
// the arena. The caller must not use the slice afterwards.
func ReleaseComplex64(buf []complex64) {
	if buf == nil {
		return
	}
	arenaRelease(8 * len(buf))
	if poolAny, ok := complex64Pools.Load(len(buf)); ok {
		poolAny.(*sync.Pool).Put(&buf)
	}
}

// AcquireFloats32 returns a zeroed scratch []float32 of length n from
// the arena. Release it with ReleaseFloats32 when done.
func AcquireFloats32(n int) []float32 {
	arenaAcquire(4 * n)
	poolAny, ok := float32Pools.Load(n)
	if !ok {
		poolAny, _ = float32Pools.LoadOrStore(n, &sync.Pool{})
	}
	if v := poolAny.(*sync.Pool).Get(); v != nil {
		buf := *(v.(*[]float32))
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]float32, n)
}

// ReleaseFloats32 returns a buffer obtained from AcquireFloats32 to the
// arena.
func ReleaseFloats32(buf []float32) {
	if buf == nil {
		return
	}
	arenaRelease(4 * len(buf))
	if poolAny, ok := float32Pools.Load(len(buf)); ok {
		poolAny.(*sync.Pool).Put(&buf)
	}
}

// --- Arena byte accounting.
//
// Every Acquire*/Release* pair adjusts the in-use byte count, exposed
// as obs gauges so a serving process (or a bench run) can watch its
// scratch-allocation budget: dsp.arena.in_use_bytes is the live
// balance, dsp.arena.peak_bytes the high-water mark since start. The
// counts are process-wide — with per-size sync.Pools the peak bounds
// what a session mix can pin.

var (
	arenaInUse      atomic.Int64
	arenaPeak       atomic.Int64
	arenaInUseGauge = obs.Default.Gauge("dsp.arena.in_use_bytes")
	arenaPeakGauge  = obs.Default.Gauge("dsp.arena.peak_bytes")
)

func arenaAcquire(bytes int) {
	v := arenaInUse.Add(int64(bytes))
	arenaInUseGauge.Set(float64(v))
	for {
		peak := arenaPeak.Load()
		if v <= peak {
			return
		}
		if arenaPeak.CompareAndSwap(peak, v) {
			arenaPeakGauge.Set(float64(v))
			return
		}
	}
}

func arenaRelease(bytes int) {
	v := arenaInUse.Add(-int64(bytes))
	arenaInUseGauge.Set(float64(v))
}

// ArenaInUseBytes returns the live scratch-arena byte balance.
func ArenaInUseBytes() int64 { return arenaInUse.Load() }

// ArenaPeakBytes returns the scratch-arena high-water mark.
func ArenaPeakBytes() int64 { return arenaPeak.Load() }

// --- Cached float32 analysis windows.

// hann32Cache maps window length -> shared float32 Hann table.
var hann32Cache sync.Map

// CachedHann32 returns the shared float32 Hann window table of length
// n, derived by narrowing the float64 table so both precisions window
// with the same curve. The slice is cached and must be treated as
// read-only.
func CachedHann32(n int) []float32 {
	if w, ok := hann32Cache.Load(n); ok {
		return w.([]float32)
	}
	src := CachedHann(n)
	w := make([]float32, n)
	for i, v := range src {
		w[i] = float32(v)
	}
	actual, _ := hann32Cache.LoadOrStore(n, w)
	return actual.([]float32)
}
