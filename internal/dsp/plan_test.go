package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 100, 128, 257} {
		x := randComplex(rng, n)
		got := make([]complex128, n)
		copy(got, x)
		PlanFFT(n).Forward(got)
		want := naiveDFT(x)
		if !complexSliceApproxEq(got, want, 1e-7*float64(n)) {
			t.Errorf("n=%d: plan Forward disagrees with naive DFT", n)
		}
	}
}

func TestPlanInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 8, 15, 64, 100, 1024} {
		x := randComplex(rng, n)
		buf := make([]complex128, n)
		copy(buf, x)
		p := PlanFFT(n)
		p.Forward(buf)
		p.Inverse(buf)
		if !complexSliceApproxEq(buf, x, 1e-8*float64(n)) {
			t.Errorf("n=%d: Inverse(Forward(x)) != x", n)
		}
	}
}

func TestPlanCacheReturnsSameInstance(t *testing.T) {
	if PlanFFT(256) != PlanFFT(256) {
		t.Error("PlanFFT(256) not cached")
	}
	if PlanFFT(256).Size() != 256 {
		t.Error("wrong plan size")
	}
}

func TestPlanSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	PlanFFT(8).Forward(make([]complex128, 4))
}

func TestPlanConcurrentUseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 96 // non power of two: exercises the shared Bluestein path
	inputs := make([][]complex128, 32)
	want := make([][]complex128, len(inputs))
	for i := range inputs {
		inputs[i] = randComplex(rng, n)
		want[i] = FFT(inputs[i])
	}
	p := PlanFFT(n)
	var wg sync.WaitGroup
	got := make([][]complex128, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]complex128, n)
			copy(buf, inputs[i])
			p.Forward(buf)
			got[i] = buf
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		for k := range got[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("input %d bin %d: concurrent %v != serial %v", i, k, got[i][k], want[i][k])
			}
		}
	}
}

func TestScratchArenaZeroesBuffers(t *testing.T) {
	buf := AcquireComplex(64)
	for i := range buf {
		buf[i] = complex(1, 1)
	}
	ReleaseComplex(buf)
	again := AcquireComplex(64)
	defer ReleaseComplex(again)
	for i, v := range again {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	f := AcquireFloats(32)
	f[5] = 3
	ReleaseFloats(f)
	f2 := AcquireFloats(32)
	defer ReleaseFloats(f2)
	if f2[5] != 0 {
		t.Fatal("reused float buffer not zeroed")
	}
}

func TestCachedHannMatchesHann(t *testing.T) {
	for _, n := range []int{1, 8, 125, 256} {
		got := CachedHann(n)
		want := Hann(n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length mismatch", n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: CachedHann[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		if CachedHann(n)[0] != got[0] || &CachedHann(n)[0] != &got[0] {
			t.Fatalf("n=%d: CachedHann not cached", n)
		}
	}
}

// TestGoertzelOffBinMatchesDirectDFT is the regression test for the
// fractional-bin bias: the generalized Goertzel must match a direct DFT
// evaluation within 1e-9 relative error both on and off bin centers.
func TestGoertzelOffBinMatchesDirectDFT(t *testing.T) {
	const (
		sampleRate = 8000.0
		n          = 1000
	)
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / sampleRate
		x[i] = math.Sin(2*math.Pi*212.3*ti) + 0.5*math.Cos(2*math.Pi*987.1*ti) + 0.1*rng.NormFloat64()
	}
	directDFT := func(freq float64) float64 {
		var s complex128
		for m, v := range x {
			angle := -2 * math.Pi * freq * float64(m) / sampleRate
			s += complex(v, 0) * cmplx.Exp(complex(0, angle))
		}
		return cmplx.Abs(s)
	}
	// Bin spacing is 8 Hz: 200 and 1000 are on-bin, the rest fractional.
	for _, freq := range []float64{200, 1000, 212.3, 987.1, 3.7, 123.456, 3999.1} {
		want := directDFT(freq)
		got := Goertzel(x, freq, sampleRate)
		rel := math.Abs(got-want) / math.Max(want, 1e-30)
		if rel > 1e-9 {
			t.Errorf("freq %g: Goertzel %v vs direct DFT %v (rel err %.3g)", freq, got, want, rel)
		}
	}
}

func BenchmarkPlanForward1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 1024)
	p := PlanFFT(1024)
	buf := make([]complex128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}

func BenchmarkFFTWrapper1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkPlanBluestein1000(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randComplex(rng, 1000)
	p := PlanFFT(1000)
	buf := make([]complex128, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		p.Forward(buf)
	}
}
