package dsp

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadSTFTConfig is returned when an STFT configuration is unusable.
var ErrBadSTFTConfig = errors.New("dsp: invalid STFT configuration")

// STFTConfig describes a short-time Fourier transform.
type STFTConfig struct {
	// WindowSize is the number of samples per analysis frame.
	WindowSize int
	// HopSize is the number of samples the frame advances between columns.
	HopSize int
	// Window generates the analysis window; nil means Hann.
	Window WindowFunc
	// Pad, when true, zero-pads each frame to the next power of two before
	// the transform (cheaper radix-2 path, finer bin spacing).
	Pad bool
}

func (c STFTConfig) validate() error {
	if c.WindowSize <= 0 {
		return fmt.Errorf("%w: window size %d", ErrBadSTFTConfig, c.WindowSize)
	}
	if c.HopSize <= 0 {
		return fmt.Errorf("%w: hop size %d", ErrBadSTFTConfig, c.HopSize)
	}
	return nil
}

// Spectrogram holds the magnitude STFT of a signal.
type Spectrogram struct {
	// Mag[frame][bin] is the magnitude of the given FFT bin.
	Mag [][]float64
	// NFFT is the transform length used per frame.
	NFFT int
	// SampleRate is the sample rate of the analysed signal in Hz.
	SampleRate float64
	// HopSize is the frame advance in samples.
	HopSize int
}

// STFT computes the magnitude spectrogram of x sampled at sampleRate.
func STFT(x []float64, sampleRate float64, cfg STFTConfig) (*Spectrogram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var win []float64
	if cfg.Window != nil {
		win = cfg.Window(cfg.WindowSize)
	} else {
		win = CachedHann(cfg.WindowSize)
	}
	nfft := cfg.WindowSize
	if cfg.Pad {
		nfft = NextPow2(cfg.WindowSize)
	}
	var frames [][]float64
	plan := PlanFFT(nfft)
	buf := AcquireComplex(nfft)
	defer ReleaseComplex(buf)
	for start := 0; start+cfg.WindowSize <= len(x); start += cfg.HopSize {
		for i := range buf {
			buf[i] = 0
		}
		for i := 0; i < cfg.WindowSize; i++ {
			buf[i] = complex(x[start+i]*win[i], 0)
		}
		plan.Forward(buf)
		frames = append(frames, Magnitudes(buf[:nfft/2+1]))
	}
	return &Spectrogram{Mag: frames, NFFT: nfft, SampleRate: sampleRate, HopSize: cfg.HopSize}, nil
}

// Frames returns the number of time frames.
func (s *Spectrogram) Frames() int { return len(s.Mag) }

// Bins returns the number of frequency bins per frame.
func (s *Spectrogram) Bins() int {
	if len(s.Mag) == 0 {
		return 0
	}
	return len(s.Mag[0])
}

// FrameTime returns the start time in seconds of frame i.
func (s *Spectrogram) FrameTime(i int) float64 {
	return float64(i*s.HopSize) / s.SampleRate
}

// Band is a closed frequency interval in Hz.
type Band struct {
	Name string
	Low  float64
	High float64
}

// Contains reports whether f lies within the band.
func (b Band) Contains(f float64) bool { return f >= b.Low && f <= b.High }

// BandEnergy integrates |X|^2 over the band for a single magnitude frame and
// returns the square root (an RMS-like band amplitude). Frames outside the
// band contribute nothing.
func BandEnergy(frame []float64, nfft int, sampleRate float64, b Band) float64 {
	lo := FrequencyBin(b.Low, nfft, sampleRate)
	hi := FrequencyBin(b.High, nfft, sampleRate)
	if hi >= len(frame) {
		hi = len(frame) - 1
	}
	sum := 0.0
	for k := lo; k <= hi; k++ {
		sum += frame[k] * frame[k]
	}
	return math.Sqrt(sum)
}

// BandEnergies computes BandEnergy for each band over each frame,
// returning [frame][band].
func (s *Spectrogram) BandEnergies(bands []Band) [][]float64 {
	out := make([][]float64, len(s.Mag))
	for i, frame := range s.Mag {
		row := make([]float64, len(bands))
		for j, b := range bands {
			row[j] = BandEnergy(frame, s.NFFT, s.SampleRate, b)
		}
		out[i] = row
	}
	return out
}

// PeakBin returns the bin index and magnitude of the strongest component in
// frame i within [lowHz, highHz].
func (s *Spectrogram) PeakBin(i int, lowHz, highHz float64) (bin int, mag float64) {
	frame := s.Mag[i]
	lo := FrequencyBin(lowHz, s.NFFT, s.SampleRate)
	hi := FrequencyBin(highHz, s.NFFT, s.SampleRate)
	if hi >= len(frame) {
		hi = len(frame) - 1
	}
	bin = lo
	for k := lo; k <= hi; k++ {
		if frame[k] > mag {
			mag, bin = frame[k], k
		}
	}
	return bin, mag
}

// MeanSpectrum averages the magnitude across all frames, giving the overall
// frequency distribution of the signal (paper Fig. 2a).
func (s *Spectrogram) MeanSpectrum() []float64 {
	if len(s.Mag) == 0 {
		return nil
	}
	out := make([]float64, len(s.Mag[0]))
	for _, frame := range s.Mag {
		for k, v := range frame {
			out[k] += v
		}
	}
	inv := 1 / float64(len(s.Mag))
	for k := range out {
		out[k] *= inv
	}
	return out
}
