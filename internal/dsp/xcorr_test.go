package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// delayed returns x shifted right by d samples (zero-filled).
func delayed(x []float64, d int) []float64 {
	out := make([]float64, len(x))
	for i := d; i < len(x); i++ {
		out[i] = x[i-d]
	}
	return out
}

func TestCrossCorrelatePeakAtDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, d := range []int{0, 3, 17, 50} {
		y := delayed(x, d)
		corr := CrossCorrelate(x, y)
		lag, _ := PeakLag(corr, 100)
		if lag != d {
			t.Errorf("delay %d: peak at lag %d", d, lag)
		}
	}
}

func TestCrossCorrelateNegativeLag(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := delayed(x, 9)
	// Correlating (delayed, original) flips the sign.
	corr := CrossCorrelate(y, x)
	lag, _ := PeakLag(corr, 50)
	if lag != -9 {
		t.Errorf("peak at lag %d, want -9", lag)
	}
}

func TestGCCPHATSharperThanPlain(t *testing.T) {
	// For a narrow-band (tonal) source, plain correlation has ambiguous
	// periodic peaks; PHAT whitening still peaks at the true delay when
	// some broadband content exists.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 2048)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*200*float64(i)/8000) + 0.5*rng.NormFloat64()
	}
	y := delayed(x, 12)
	corr := GCCPHAT(x, y)
	lag, _ := PeakLag(corr, 60)
	if lag != 12 {
		t.Errorf("GCC-PHAT peak at %d, want 12", lag)
	}
}

func TestEstimateTDoA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const rate = 16000.0
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := delayed(x, 23)
	tdoa, err := EstimateTDoA(x, y, rate, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := 23.0 / rate
	// Sub-sample interpolation may deviate by a small fraction of a
	// sample even for exact integer delays.
	if math.Abs(tdoa-want) > 0.1/rate {
		t.Errorf("TDoA = %v, want %v", tdoa, want)
	}
}

func TestEstimateTDoAErrors(t *testing.T) {
	if _, err := EstimateTDoA(nil, []float64{1}, 8000, 0.01); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := EstimateTDoA([]float64{1}, []float64{1}, 0, 0.01); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestPeakLagEmpty(t *testing.T) {
	if lag, v := PeakLag(nil, 10); lag != 0 || v != 0 {
		t.Errorf("PeakLag(nil) = %d, %v", lag, v)
	}
}
