package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation for correctness checks.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

func complexSliceApproxEq(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 100, 128, 257} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if !complexSliceApproxEq(got, want, 1e-7*float64(n)) {
			t.Errorf("n=%d: FFT disagrees with naive DFT", n)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Errorf("FFT(nil) = %v, want empty", got)
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 8, 15, 64, 100, 1024} {
		x := randComplex(rng, n)
		got := IFFT(FFT(x))
		if !complexSliceApproxEq(got, x, 1e-8*float64(n)) {
			t.Errorf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

// Property: Parseval's theorem — sum |x|^2 == (1/N) sum |X|^2.
func TestFFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 << (uint(rng.Intn(4)))
		x := randComplex(rng, n)
		spec := FFT(x)
		var timeE, freqE float64
		for i := range x {
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			freqE += real(spec[i])*real(spec[i]) + imag(spec[i])*imag(spec[i])
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) < 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 64
		a := randComplex(rng, n)
		b := randComplex(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = 2*a[i] + 3*b[i]
		}
		fa, fb, fsum := FFT(a), FFT(b), FFT(sum)
		for i := range fsum {
			want := 2*fa[i] + 3*fb[i]
			if cmplx.Abs(fsum[i]-want) > 1e-8 {
				t.Fatalf("linearity violated at bin %d", i)
			}
		}
	}
}

func TestFFTRealSineLocatesPeak(t *testing.T) {
	const (
		sampleRate = 8000.0
		freq       = 440.0
		n          = 4096
	)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / sampleRate)
	}
	mags := Magnitudes(FFTReal(x))
	peak := 0
	for k := 1; k < n/2; k++ {
		if mags[k] > mags[peak] {
			peak = k
		}
	}
	got := BinFrequency(peak, n, sampleRate)
	if math.Abs(got-freq) > sampleRate/float64(n)+1 {
		t.Errorf("peak at %g Hz, want ~%g Hz", got, freq)
	}
}

func TestFrequencyBinClamping(t *testing.T) {
	tests := []struct {
		freq float64
		want int
	}{
		{-100, 0},
		{0, 0},
		{1000, 512},   // 1000 * 8192 / 16000 = 512
		{8000, 4096},  // Nyquist
		{20000, 4096}, // beyond Nyquist clamps
	}
	for _, tt := range tests {
		if got := FrequencyBin(tt.freq, 8192, 16000); got != tt.want {
			t.Errorf("FrequencyBin(%g) = %d, want %d", tt.freq, got, tt.want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const (
		sampleRate = 8000.0
		n          = 1024
	)
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*200*float64(i)/sampleRate) + 0.1*rng.NormFloat64()
	}
	// Bin 25.6 -> use an exact bin frequency for the comparison.
	k := 26
	freq := BinFrequency(k, n, sampleRate)
	want := Magnitudes(FFTReal(x))[k]
	got := Goertzel(x, freq, sampleRate)
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Errorf("Goertzel = %v, FFT bin = %v", got, want)
	}
}

func TestGoertzelEmpty(t *testing.T) {
	if got := Goertzel(nil, 100, 8000); got != 0 {
		t.Errorf("Goertzel(nil) = %v, want 0", got)
	}
}

func TestPowerSpectrum(t *testing.T) {
	x := []complex128{complex(3, 4), complex(0, 0), complex(1, 0)}
	got := PowerSpectrum(x)
	want := []float64{25, 0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("PowerSpectrum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(-1); err == nil {
		t.Error("Validate(-1) = nil, want error")
	}
	if err := Validate(16); err != nil {
		t.Errorf("Validate(16) = %v, want nil", err)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randComplex(rng, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkGoertzel4096(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Goertzel(x, 200, 8000)
	}
}
