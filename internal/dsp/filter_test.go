package dsp

import (
	"errors"
	"math"
	"testing"
)

// gainAt measures the steady-state gain of filter f at the given frequency
// by running a long sine through it and comparing RMS after the transient.
func gainAt(t *testing.T, f *Biquad, freq, sampleRate float64) float64 {
	t.Helper()
	f.Reset()
	n := int(sampleRate) // one second
	x := sine(freq, sampleRate, n)
	y := f.ProcessAll(x)
	// Skip the first quarter to let transients settle.
	return RMS(y[n/4:]) / RMS(x[n/4:])
}

func TestLowPassGain(t *testing.T) {
	const sampleRate = 16000.0
	f, err := NewLowPass(6000, sampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if g := gainAt(t, f, 200, sampleRate); g < 0.95 {
		t.Errorf("passband gain at 200 Hz = %v, want ~1", g)
	}
	if g := gainAt(t, f, 7800, sampleRate); g > 0.5 {
		t.Errorf("stopband gain at 7800 Hz = %v, want attenuated", g)
	}
}

func TestHighPassGain(t *testing.T) {
	const sampleRate = 16000.0
	f, err := NewHighPass(1000, sampleRate)
	if err != nil {
		t.Fatal(err)
	}
	if g := gainAt(t, f, 4000, sampleRate); g < 0.9 {
		t.Errorf("passband gain at 4 kHz = %v, want ~1", g)
	}
	if g := gainAt(t, f, 100, sampleRate); g > 0.1 {
		t.Errorf("stopband gain at 100 Hz = %v, want attenuated", g)
	}
}

func TestBandPassGain(t *testing.T) {
	const sampleRate = 16000.0
	f, err := NewBandPass(2500, 2, sampleRate)
	if err != nil {
		t.Fatal(err)
	}
	center := gainAt(t, f, 2500, sampleRate)
	low := gainAt(t, f, 200, sampleRate)
	high := gainAt(t, f, 7000, sampleRate)
	if center < 0.9 {
		t.Errorf("center gain = %v, want ~1", center)
	}
	if low > center/3 || high > center/3 {
		t.Errorf("out-of-band gains %v, %v not attenuated vs center %v", low, high, center)
	}
}

func TestFilterDesignErrors(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	tests := []struct {
		name string
		fn   func() error
	}{
		{"lowpass zero cutoff", func() error { _, err := NewLowPass(0, 8000); return err }},
		{"lowpass at nyquist", func() error { _, err := NewLowPass(4000, 8000); return err }},
		{"lowpass above nyquist", func() error { _, err := NewLowPass(5000, 8000); return err }},
		{"lowpass NaN cutoff", func() error { _, err := NewLowPass(nan, 8000); return err }},
		{"lowpass Inf cutoff", func() error { _, err := NewLowPass(inf, 8000); return err }},
		{"lowpass NaN rate", func() error { _, err := NewLowPass(1000, nan); return err }},
		{"lowpass zero rate", func() error { _, err := NewLowPass(1000, 0); return err }},
		{"highpass negative", func() error { _, err := NewHighPass(-10, 8000); return err }},
		{"highpass at nyquist", func() error { _, err := NewHighPass(4000, 8000); return err }},
		{"highpass NaN cutoff", func() error { _, err := NewHighPass(nan, 8000); return err }},
		{"highpass Inf rate", func() error { _, err := NewHighPass(1000, inf); return err }},
		{"bandpass zero q", func() error { _, err := NewBandPass(1000, 0, 8000); return err }},
		{"bandpass NaN q", func() error { _, err := NewBandPass(1000, nan, 8000); return err }},
		{"bandpass Inf q", func() error { _, err := NewBandPass(1000, inf, 8000); return err }},
		{"bandpass at nyquist", func() error { _, err := NewBandPass(4000, 1, 8000); return err }},
		{"bandpass above nyquist", func() error { _, err := NewBandPass(5000, 1, 8000); return err }},
		{"bandpass NaN center", func() error { _, err := NewBandPass(nan, 1, 8000); return err }},
		{"bandpass NaN rate", func() error { _, err := NewBandPass(1000, 1, nan); return err }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.fn()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !errors.Is(err, ErrBadFilterConfig) {
				t.Errorf("error %v does not wrap ErrBadFilterConfig", err)
			}
		})
	}
}

// TestFilterDesignFiniteCoefficients pins the bug the typed errors fix:
// NaN parameters used to pass the range checks (NaN comparisons are all
// false) and produce a filter full of NaN coefficients.
func TestFilterDesignFiniteCoefficients(t *testing.T) {
	f, err := NewLowPass(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if y := f.Process(1); math.IsNaN(y) {
		t.Error("valid filter produced NaN")
	}
}

func TestBiquadReset(t *testing.T) {
	f, err := NewLowPass(1000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	first := f.Process(1)
	f.Process(1)
	f.Reset()
	if got := f.Process(1); got != first {
		t.Errorf("after Reset, Process(1) = %v, want %v", got, first)
	}
}

func TestFilterChain(t *testing.T) {
	const sampleRate = 16000.0
	f1, err := NewLowPass(6000, sampleRate)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewLowPass(6000, sampleRate)
	if err != nil {
		t.Fatal(err)
	}
	chain := FilterChain{f1, f2}
	x := sine(7800, sampleRate, 16000)
	y := chain.ProcessAll(x)
	// Two cascaded stages attenuate more than one.
	single, err := NewLowPass(6000, sampleRate)
	if err != nil {
		t.Fatal(err)
	}
	y1 := single.ProcessAll(x)
	if RMS(y[4000:]) >= RMS(y1[4000:]) {
		t.Errorf("cascade RMS %v >= single-stage RMS %v", RMS(y[4000:]), RMS(y1[4000:]))
	}
	chain.Reset()
	if got := chain.Process(0); got != 0 {
		t.Errorf("Process(0) after reset = %v, want 0", got)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v, want 0", got)
	}
	x := []float64{1, -1, 1, -1}
	if got := RMS(x); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMS = %v, want 1", got)
	}
	s := sine(100, 8000, 8000)
	if got := RMS(s); math.Abs(got-1/math.Sqrt2) > 1e-3 {
		t.Errorf("sine RMS = %v, want %v", got, 1/math.Sqrt2)
	}
}
