package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"

	"soundboost/internal/obs"
)

// Stage metrics, resolved once at init. Recording is gated by
// obs.Enable, so the disabled path costs one atomic load per transform.
var (
	fftTimer      = obs.Default.Timer("dsp.fft.transform")
	fftPlanCount  = obs.Default.Counter("dsp.fft.plans_built")
	fftBluesteins = obs.Default.Counter("dsp.fft.bluestein_transforms")
)

// Plan holds everything size-dependent an FFT of length n needs: the
// bit-reversal permutation, forward and inverse twiddle-factor tables, and
// (for non-power-of-two lengths) the precomputed Bluestein chirp and its
// transformed convolution kernel. Plans are immutable after construction
// and safe for concurrent use; PlanFFT caches one plan per size, so the
// whole pipeline shares tables instead of recomputing cmplx.Exp chains on
// every window.
type Plan struct {
	n int

	// radix-2 path (power-of-two n).
	bitrev  []int
	twidFwd []complex128 // exp(-2*pi*i*k/n), k < n/2
	twidInv []complex128 // exp(+2*pi*i*k/n), k < n/2
	rsub    *Plan        // half-length plan driving ForwardReal/InverseReal

	// Bluestein path (all other n).
	bs *bluesteinPlan
}

// bluesteinPlan precomputes the chirp-z reduction of an n-point DFT to an
// m-point power-of-two convolution.
type bluesteinPlan struct {
	m       int
	sub     *Plan        // radix-2 plan of size m
	wFwd    []complex128 // chirp exp(-i*pi*k^2/n)
	wInv    []complex128 // chirp exp(+i*pi*k^2/n)
	kernFwd []complex128 // FFT of the conjugate forward chirp, padded to m
	kernInv []complex128 // FFT of the conjugate inverse chirp, padded to m
}

// planCache maps transform size -> *Plan.
var planCache sync.Map

// PlanFFT returns the cached transform plan for size n, building it on
// first use. The returned plan is shared and read-only.
func PlanFFT(n int) *Plan {
	if p, ok := planCache.Load(n); ok {
		return p.(*Plan)
	}
	p := newPlan(n)
	actual, _ := planCache.LoadOrStore(n, p)
	fftPlanCount.Inc()
	return actual.(*Plan)
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	if n <= 1 {
		return p
	}
	if n&(n-1) == 0 {
		shift := 64 - uint(bits.TrailingZeros(uint(n)))
		p.bitrev = make([]int, n)
		for i := 0; i < n; i++ {
			p.bitrev[i] = int(bits.Reverse64(uint64(i)) >> shift)
		}
		half := n / 2
		p.twidFwd = make([]complex128, half)
		p.twidInv = make([]complex128, half)
		for k := 0; k < half; k++ {
			angle := 2 * math.Pi * float64(k) / float64(n)
			p.twidFwd[k] = cmplx.Exp(complex(0, -angle))
			p.twidInv[k] = cmplx.Exp(complex(0, angle))
		}
		// Safe recursion: newPlan runs outside the cache LoadOrStore.
		p.rsub = PlanFFT(half)
		return p
	}
	p.bs = newBluesteinPlan(n)
	return p
}

func newBluesteinPlan(n int) *bluesteinPlan {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	bp := &bluesteinPlan{m: m, sub: PlanFFT(m)}
	bp.wFwd = make([]complex128, n)
	bp.wInv = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k can overflow for huge n; mod 2n keeps the phase identical.
		kk := (int64(k) * int64(k)) % int64(2*n)
		angle := math.Pi * float64(kk) / float64(n)
		bp.wFwd[k] = cmplx.Exp(complex(0, -angle))
		bp.wInv[k] = cmplx.Exp(complex(0, angle))
	}
	kernel := func(w []complex128) []complex128 {
		b := make([]complex128, m)
		for k := 0; k < n; k++ {
			b[k] = cmplx.Conj(w[k])
		}
		for k := 1; k < n; k++ {
			b[m-k] = cmplx.Conj(w[k])
		}
		bp.sub.radix2(b, false)
		return b
	}
	bp.kernFwd = kernel(bp.wFwd)
	bp.kernInv = kernel(bp.wInv)
	return bp
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place DFT of x, which must have length Size().
func (p *Plan) Forward(x []complex128) { p.Transform(x, false) }

// Inverse computes the in-place inverse DFT of x (including the 1/N
// normalization). x must have length Size().
func (p *Plan) Inverse(x []complex128) { p.Transform(x, true) }

// Transform runs the planned transform in place. Inverse transforms
// include the 1/N normalization.
func (p *Plan) Transform(x []complex128, inverse bool) {
	if len(x) != p.n {
		panic("dsp: plan/input size mismatch")
	}
	if p.n <= 1 {
		return
	}
	span := fftTimer.Start()
	defer span.Stop()
	if p.bs == nil {
		p.radix2(x, inverse)
	} else {
		fftBluesteins.Inc()
		p.bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(p.n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// radix2 is the iterative in-place Cooley-Tukey butterfly over the
// precomputed tables. Normalization is the caller's responsibility.
func (p *Plan) radix2(x []complex128, inverse bool) {
	n := p.n
	for i, j := range p.bitrev {
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	twid := p.twidFwd
	if inverse {
		twid = p.twidInv
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * twid[k*stride]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluestein runs the chirp-z reduction through the plan's power-of-two
// sub-plan, using the scratch arena for the convolution buffer.
func (p *Plan) bluestein(x []complex128, inverse bool) {
	bp := p.bs
	w, kern := bp.wFwd, bp.kernFwd
	if inverse {
		w, kern = bp.wInv, bp.kernInv
	}
	a := AcquireComplex(bp.m)
	defer ReleaseComplex(a)
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * w[k]
	}
	bp.sub.radix2(a, false)
	for i := range a {
		a[i] *= kern[i]
	}
	bp.sub.radix2(a, true)
	scale := complex(1/float64(bp.m), 0)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// --- Scratch-buffer arena.

// complexPools and floatPools hold per-size sync.Pools of scratch slices.
// Transform sizes in a run form a tiny set (a few window/NFFT sizes), so a
// map keyed by length stays small.
var (
	complexPools sync.Map // int -> *sync.Pool of *[]complex128
	floatPools   sync.Map // int -> *sync.Pool of *[]float64
)

// AcquireComplex returns a zeroed scratch []complex128 of length n from
// the arena. Release it with ReleaseComplex when done.
func AcquireComplex(n int) []complex128 {
	arenaAcquire(16 * n)
	poolAny, ok := complexPools.Load(n)
	if !ok {
		poolAny, _ = complexPools.LoadOrStore(n, &sync.Pool{})
	}
	pool := poolAny.(*sync.Pool)
	if v := pool.Get(); v != nil {
		buf := *(v.(*[]complex128))
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]complex128, n)
}

// ReleaseComplex returns a buffer obtained from AcquireComplex to the
// arena. The caller must not use the slice afterwards.
func ReleaseComplex(buf []complex128) {
	if buf == nil {
		return
	}
	arenaRelease(16 * len(buf))
	if poolAny, ok := complexPools.Load(len(buf)); ok {
		poolAny.(*sync.Pool).Put(&buf)
	}
}

// AcquireFloats returns a zeroed scratch []float64 of length n from the
// arena. Release it with ReleaseFloats when done.
func AcquireFloats(n int) []float64 {
	arenaAcquire(8 * n)
	poolAny, ok := floatPools.Load(n)
	if !ok {
		poolAny, _ = floatPools.LoadOrStore(n, &sync.Pool{})
	}
	pool := poolAny.(*sync.Pool)
	if v := pool.Get(); v != nil {
		buf := *(v.(*[]float64))
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]float64, n)
}

// ReleaseFloats returns a buffer obtained from AcquireFloats to the arena.
func ReleaseFloats(buf []float64) {
	if buf == nil {
		return
	}
	arenaRelease(8 * len(buf))
	if poolAny, ok := floatPools.Load(len(buf)); ok {
		poolAny.(*sync.Pool).Put(&buf)
	}
}

// --- Cached analysis windows.

// hannCache maps window length -> shared Hann table.
var hannCache sync.Map

// CachedHann returns the shared Hann window table of length n. The slice
// is cached and must be treated as read-only; use Hann for a private copy.
func CachedHann(n int) []float64 {
	if w, ok := hannCache.Load(n); ok {
		return w.([]float64)
	}
	w, _ := hannCache.LoadOrStore(n, Hann(n))
	return w.([]float64)
}
