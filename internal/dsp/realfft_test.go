package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// randSignal returns a deterministic pseudo-random real signal.
func randSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestForwardRealMatchesComplexFFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256, 2048, 12, 100} {
		x := randSignal(n, int64(n))
		want := FFTReal(x) // full spectrum via the deprecated shim
		plan := PlanFFT(n)
		got := plan.ForwardReal(x, nil)
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: spectrum length %d, want %d", n, len(got), n/2+1)
		}
		// Cross-check against a direct DFT of the first bins.
		for k := range got {
			var re, im float64
			for i, v := range x {
				angle := -2 * math.Pi * float64(k) * float64(i) / float64(n)
				re += v * math.Cos(angle)
				im += v * math.Sin(angle)
			}
			if math.Abs(real(got[k])-re) > 1e-8*float64(n) || math.Abs(imag(got[k])-im) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: ForwardReal %v, direct DFT (%g,%g)", n, k, got[k], re, im)
			}
			if math.Abs(real(got[k])-real(want[k])) > 1e-9*float64(n) || math.Abs(imag(got[k])-imag(want[k])) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: ForwardReal %v, FFTReal %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestInverseRealRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 1024, 12, 100} {
		x := randSignal(n, int64(n)+7)
		plan := PlanFFT(n)
		spec := plan.ForwardReal(x, nil)
		back := plan.InverseReal(spec, nil)
		if len(back) != n {
			t.Fatalf("n=%d: round-trip length %d", n, len(back))
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d sample %d: round-trip %g, want %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestForwardRealReusesOutput(t *testing.T) {
	x := randSignal(64, 3)
	plan := PlanFFT(64)
	buf := make([]complex128, plan.SpectrumLen())
	out := plan.ForwardReal(x, buf)
	if &out[0] != &buf[0] {
		t.Error("ForwardReal allocated despite sufficient capacity")
	}
	fbuf := make([]float64, 64)
	back := plan.InverseReal(out, fbuf)
	if &back[0] != &fbuf[0] {
		t.Error("InverseReal allocated despite sufficient capacity")
	}
}

func TestPlan32ForwardRealTolerance(t *testing.T) {
	for _, n := range []int{2, 8, 256, 2048, 12} {
		x64 := randSignal(n, int64(n)+13)
		x32 := make([]float32, n)
		for i, v := range x64 {
			x32[i] = float32(v)
		}
		ref := PlanFFT(n).ForwardReal(x64, nil)
		got := PlanFFT32(n).ForwardReal(x32, nil)
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: spectrum length %d", n, len(got))
		}
		// Scale-relative bound: float32 FFT error grows ~sqrt(n)*eps
		// relative to the spectrum magnitude.
		var scale float64
		for _, c := range ref {
			if m := math.Hypot(real(c), imag(c)); m > scale {
				scale = m
			}
		}
		tol := 1e-5 * scale * math.Sqrt(float64(n))
		for k := range got {
			dr := math.Abs(float64(real(got[k])) - real(ref[k]))
			di := math.Abs(float64(imag(got[k])) - imag(ref[k]))
			if dr > tol || di > tol {
				t.Fatalf("n=%d bin %d: float32 %v vs float64 %v (tol %g)", n, k, got[k], ref[k], tol)
			}
		}
	}
}

func TestPlan32ForwardMatchesFloat64(t *testing.T) {
	n := 128
	x64 := randSignal(n, 99)
	buf64 := make([]complex128, n)
	buf32 := make([]complex64, n)
	for i, v := range x64 {
		buf64[i] = complex(v, 0)
		buf32[i] = complex(float32(v), 0)
	}
	PlanFFT(n).Forward(buf64)
	PlanFFT32(n).Forward(buf32)
	for k := range buf64 {
		if math.Abs(float64(real(buf32[k]))-real(buf64[k])) > 1e-3 ||
			math.Abs(float64(imag(buf32[k]))-imag(buf64[k])) > 1e-3 {
			t.Fatalf("bin %d: %v vs %v", k, buf32[k], buf64[k])
		}
	}
}

func TestBandPower32MatchesBandEnergy(t *testing.T) {
	const n, rate = 1024, 8000.0
	x64 := randSignal(n, 5)
	x32 := make([]float32, n)
	for i, v := range x64 {
		x32[i] = float32(v)
	}
	spec64 := PlanFFT(n).ForwardReal(x64, nil)
	mags := Magnitudes(spec64)
	spec32 := PlanFFT32(n).ForwardReal(x32, nil)
	for _, band := range []Band{{Name: "low", Low: 100, High: 900}, {Name: "mid", Low: 900, High: 2500}, {Name: "high", Low: 2500, High: 4000}} {
		want := BandEnergy(mags, n, rate, band)
		got := BandPower32(spec32, n, rate, band)
		if math.Abs(got-want) > 1e-3*(1+want) {
			t.Errorf("band %s: BandPower32 %g, BandEnergy %g", band.Name, got, want)
		}
	}
}

func TestFloat32ArenaReuse(t *testing.T) {
	a := AcquireComplex64(512)
	for i := range a {
		a[i] = complex(float32(i), 0)
	}
	ReleaseComplex64(a)
	b := AcquireComplex64(512)
	defer ReleaseComplex64(b)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("reused complex64 buffer not zeroed at %d: %v", i, v)
		}
	}
	f := AcquireFloats32(256)
	for i := range f {
		f[i] = 1
	}
	ReleaseFloats32(f)
	g := AcquireFloats32(256)
	defer ReleaseFloats32(g)
	for i, v := range g {
		if v != 0 {
			t.Fatalf("reused float32 buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaByteAccounting(t *testing.T) {
	before := ArenaInUseBytes()
	buf := AcquireComplex64(1024) // 8 KiB
	if got := ArenaInUseBytes() - before; got != 8*1024 {
		t.Errorf("in-use delta %d after acquire, want 8192", got)
	}
	if ArenaPeakBytes() < ArenaInUseBytes() {
		t.Errorf("peak %d below in-use %d", ArenaPeakBytes(), ArenaInUseBytes())
	}
	ReleaseComplex64(buf)
	if got := ArenaInUseBytes(); got != before {
		t.Errorf("in-use %d after release, want %d", got, before)
	}
}

func TestCachedHann32MatchesFloat64(t *testing.T) {
	w64 := CachedHann(401)
	w32 := CachedHann32(401)
	if len(w32) != len(w64) {
		t.Fatalf("length %d, want %d", len(w32), len(w64))
	}
	for i := range w64 {
		if math.Abs(float64(w32[i])-w64[i]) > 1e-6 {
			t.Fatalf("index %d: %g vs %g", i, w32[i], w64[i])
		}
	}
	if &CachedHann32(401)[0] != &w32[0] {
		t.Error("CachedHann32 not cached")
	}
}

func BenchmarkForwardReal(b *testing.B) {
	const n = 2048
	x := randSignal(n, 1)
	plan := PlanFFT(n)
	out := make([]complex128, plan.SpectrumLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = plan.ForwardReal(x, out)
	}
}

func BenchmarkForwardComplex(b *testing.B) {
	const n = 2048
	x := randSignal(n, 1)
	buf := make([]complex128, n)
	plan := PlanFFT(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, v := range x {
			buf[j] = complex(v, 0)
		}
		plan.Forward(buf)
	}
}

func BenchmarkForwardReal32(b *testing.B) {
	const n = 2048
	x64 := randSignal(n, 1)
	x := make([]float32, n)
	for i, v := range x64 {
		x[i] = float32(v)
	}
	plan := PlanFFT32(n)
	out := make([]complex64, plan.SpectrumLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = plan.ForwardReal(x, out)
	}
}
