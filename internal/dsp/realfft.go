package dsp

import "math/cmplx"

// Real-input transforms on the Plan API. A real signal's spectrum is
// conjugate-symmetric, so only the n/2+1 non-redundant bins are
// computed and returned. For power-of-two sizes the transform packs the
// even/odd samples into one complex FFT of half the length — the
// classic split that halves butterfly work and memory traffic versus
// transforming the real signal as complex data with zero imaginary
// parts. Other sizes fall back to the plan's full complex transform on
// pooled scratch.

// SpectrumLen returns the number of non-redundant spectrum bins a
// real-input transform of the plan's size produces: Size()/2 + 1.
func (p *Plan) SpectrumLen() int { return p.n/2 + 1 }

// ForwardReal computes the DFT of the real signal x (length Size()),
// returning the non-redundant half spectrum X[0..n/2]. The result is
// written into out when cap(out) >= SpectrumLen(), otherwise a fresh
// slice is allocated. x is left untouched.
func (p *Plan) ForwardReal(x []float64, out []complex128) []complex128 {
	if len(x) != p.n {
		panic("dsp: plan/input size mismatch")
	}
	if cap(out) >= p.SpectrumLen() {
		out = out[:p.SpectrumLen()]
	} else {
		out = make([]complex128, p.SpectrumLen())
	}
	n := p.n
	if n <= 1 {
		if n == 1 {
			out[0] = complex(x[0], 0)
		}
		return out
	}
	if p.bs != nil || n&(n-1) != 0 {
		// Non-power-of-two: full complex transform on pooled scratch.
		buf := AcquireComplex(n)
		defer ReleaseComplex(buf)
		for i, v := range x {
			buf[i] = complex(v, 0)
		}
		p.Transform(buf, false)
		copy(out, buf[:p.SpectrumLen()])
		return out
	}
	span := fftTimer.Start()
	defer span.Stop()
	h := n / 2
	z := AcquireComplex(h)
	defer ReleaseComplex(z)
	for k := 0; k < h; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	p.rsub.radix2(z, false)
	// Untangle: with Z the half-length FFT of the packed signal,
	// Fe[k] = (Z[k]+conj(Z[h-k]))/2 and Fo[k] = (Z[k]-conj(Z[h-k]))/2i
	// are the spectra of the even and odd samples, and
	// X[k] = Fe[k] + exp(-2*pi*i*k/n)*Fo[k]. twidFwd is exactly that
	// twiddle table.
	re0, im0 := real(z[0]), imag(z[0])
	out[0] = complex(re0+im0, 0)
	out[h] = complex(re0-im0, 0)
	for k := 1; k < h; k++ {
		zk, znk := z[k], cmplx.Conj(z[h-k])
		fe := (zk + znk) * 0.5
		fo := (zk - znk) * complex(0, -0.5)
		out[k] = fe + p.twidFwd[k]*fo
	}
	return out
}

// InverseReal reconstructs the real signal (length Size()) from the
// half spectrum produced by ForwardReal, including the 1/N
// normalization. The result is written into out when cap(out) >=
// Size(), otherwise a fresh slice is allocated. spec is left untouched.
func (p *Plan) InverseReal(spec []complex128, out []float64) []float64 {
	if len(spec) != p.SpectrumLen() {
		panic("dsp: plan/spectrum size mismatch")
	}
	if cap(out) >= p.n {
		out = out[:p.n]
	} else {
		out = make([]float64, p.n)
	}
	n := p.n
	if n <= 1 {
		if n == 1 {
			out[0] = real(spec[0])
		}
		return out
	}
	if p.bs != nil || n&(n-1) != 0 {
		// Non-power-of-two: expand to the full conjugate-symmetric
		// spectrum and run the complex inverse on pooled scratch.
		buf := AcquireComplex(n)
		defer ReleaseComplex(buf)
		copy(buf, spec)
		for k := p.SpectrumLen(); k < n; k++ {
			buf[k] = cmplx.Conj(spec[n-k])
		}
		p.Transform(buf, true)
		for i := range out {
			out[i] = real(buf[i])
		}
		return out
	}
	span := fftTimer.Start()
	defer span.Stop()
	h := n / 2
	z := AcquireComplex(h)
	defer ReleaseComplex(z)
	// Re-tangle: invert the ForwardReal untangling, then one inverse
	// half-length FFT whose 1/(n/2) normalization is exactly the 1/N
	// the packed pair of real samples per bin needs.
	for k := 0; k < h; k++ {
		xk, xnk := spec[k], cmplx.Conj(spec[h-k])
		fe := (xk + xnk) * 0.5
		fo := (xk - xnk) * 0.5 * p.twidInv[k]
		z[k] = fe + fo*complex(0, 1)
	}
	p.rsub.radix2(z, true)
	scale := 1 / float64(h)
	for k := 0; k < h; k++ {
		out[2*k] = real(z[k]) * scale
		out[2*k+1] = imag(z[k]) * scale
	}
	return out
}
