package dsp

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadFilterConfig is the sentinel wrapped by every filter-design
// error, mirroring ErrBadSTFTConfig so callers can branch with
// errors.Is instead of string matching.
var ErrBadFilterConfig = errors.New("dsp: invalid filter configuration")

// Biquad is a second-order IIR filter section in direct form II transposed.
// SoundBoost uses a low-pass biquad to discard everything above the
// aerodynamic frequency group (6 kHz in the paper), which also removes any
// ultrasonic IMU-injection energy by construction.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewLowPass designs a Butterworth-style low-pass biquad with the given
// cutoff (Hz) at sampleRate (Hz). Cutoff must lie in (0, sampleRate/2).
func NewLowPass(cutoff, sampleRate float64) (*Biquad, error) {
	if err := checkFilterRate(sampleRate); err != nil {
		return nil, fmt.Errorf("%w: low-pass: %v", ErrBadFilterConfig, err)
	}
	if !isFinite(cutoff) || cutoff <= 0 || cutoff >= sampleRate/2 {
		return nil, fmt.Errorf("%w: low-pass cutoff %g Hz outside (0, %g)", ErrBadFilterConfig, cutoff, sampleRate/2)
	}
	w0 := 2 * math.Pi * cutoff / sampleRate
	q := math.Sqrt2 / 2
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cosw) / 2 / a0,
		b1: (1 - cosw) / a0,
		b2: (1 - cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewHighPass designs a Butterworth-style high-pass biquad.
func NewHighPass(cutoff, sampleRate float64) (*Biquad, error) {
	if err := checkFilterRate(sampleRate); err != nil {
		return nil, fmt.Errorf("%w: high-pass: %v", ErrBadFilterConfig, err)
	}
	if !isFinite(cutoff) || cutoff <= 0 || cutoff >= sampleRate/2 {
		return nil, fmt.Errorf("%w: high-pass cutoff %g Hz outside (0, %g)", ErrBadFilterConfig, cutoff, sampleRate/2)
	}
	w0 := 2 * math.Pi * cutoff / sampleRate
	q := math.Sqrt2 / 2
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 + cosw) / 2 / a0,
		b1: -(1 + cosw) / a0,
		b2: (1 + cosw) / 2 / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewBandPass designs a constant-peak band-pass biquad centered at center Hz
// with the given quality factor q.
func NewBandPass(center, q, sampleRate float64) (*Biquad, error) {
	if err := checkFilterRate(sampleRate); err != nil {
		return nil, fmt.Errorf("%w: band-pass: %v", ErrBadFilterConfig, err)
	}
	if !isFinite(center) || center <= 0 || center >= sampleRate/2 {
		return nil, fmt.Errorf("%w: band-pass center %g Hz outside (0, %g)", ErrBadFilterConfig, center, sampleRate/2)
	}
	if !isFinite(q) || q <= 0 {
		return nil, fmt.Errorf("%w: band-pass q %g must be a positive finite number", ErrBadFilterConfig, q)
	}
	w0 := 2 * math.Pi * center / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: alpha / a0,
		b1: 0,
		b2: -alpha / a0,
		a1: -2 * cosw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// checkFilterRate rejects non-finite and non-positive sample rates.
// NaN in particular would sail through the range comparisons (every NaN
// comparison is false) and poison the biquad coefficients.
func checkFilterRate(sampleRate float64) error {
	if !isFinite(sampleRate) || sampleRate <= 0 {
		return fmt.Errorf("sample rate %g must be a positive finite number", sampleRate)
	}
	return nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Process filters one sample, advancing internal state.
func (f *Biquad) Process(x float64) float64 {
	y := f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y
}

// ProcessAll filters a whole signal into a new slice.
func (f *Biquad) ProcessAll(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// Reset clears the filter state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// FilterChain applies filters in sequence.
type FilterChain []*Biquad

// Process runs one sample through every stage.
func (c FilterChain) Process(x float64) float64 {
	for _, f := range c {
		x = f.Process(x)
	}
	return x
}

// ProcessAll filters a whole signal through every stage into a new slice.
func (c FilterChain) ProcessAll(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = c.Process(v)
	}
	return out
}

// Reset clears all stages.
func (c FilterChain) Reset() {
	for _, f := range c {
		f.Reset()
	}
}

// RMS returns the root-mean-square amplitude of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(x)))
}
