// Package sweep is the grid runner behind `soundboost sweep`: it
// expands comma-separated grids over detector margins, KF variants,
// chunk/frame sizes, and attack families/intensities into a trial
// matrix, synthesizes each cell's flight, and drives every trial
// through a live /v1 server over real HTTP — either self-hosted
// in-process servers (one per derived analyzer) or an external
// `soundboost serve` instance. Each trial emits one schema-versioned
// JSONL record; the rollup aggregates them into pooled and
// session-disjoint confusion matrices, attribution accuracy, and a
// GPS ROC/AUC. A fixed seed produces a byte-identical sweep (JSONL and
// rollup), which is what makes a small sweep usable as a CI gate on
// detection accuracy. See DESIGN.md "Sweep workload".
package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SchemaVersion names the record schema emitted by this package.
// Adding a field is backward compatible; renaming, removing, or
// changing the meaning of one requires bumping the version (the same
// contract the /v1 wire schema follows). sweep/v2 added the triage
// axis to Params and the CSV summary.
const SchemaVersion = "sweep/v2"

// KFServer is the Params.KF sentinel recorded in external-server mode,
// where the analyzer — and therefore the variant/margin calibration —
// belongs to the server and cannot be swept.
const KFServer = "server"

// Params pins one grid cell: every axis value the trial ran under.
type Params struct {
	// KF names the variant whose GPS detector was rescaled to Margin
	// ("audio-only" or "audio+imu"), or KFServer in external mode.
	KF string `json:"kf"`
	// Margin is the GPS threshold margin the cell's analyzer runs at
	// (0 in external mode: the server's own calibration applies).
	Margin float64 `json:"margin"`
	// Triage reports whether the cell's analyzer screened windows
	// through the KNN triage tier (always false in external mode: the
	// server's own analyzer decides).
	Triage bool `json:"triage"`
	// ChunkSeconds is the flight seconds carried per frames request.
	ChunkSeconds float64 `json:"chunk_seconds"`
	// FrameSeconds is the audio frame length inside each request.
	FrameSeconds float64 `json:"frame_seconds"`
	// Attack is the attack family ("benign" for clean flights).
	Attack string `json:"attack"`
	// Intensity scales the family's canonical attack magnitude.
	Intensity float64 `json:"intensity"`
	// Rep distinguishes repeated flights of the same attack cell (wind
	// conditions cycle per rep).
	Rep int `json:"rep"`
}

// Truth is the generator-side ground truth of the trial's flight.
type Truth struct {
	// Attack reports whether the flight contains an attack.
	Attack bool `json:"attack"`
	// Kind is the dataset scenario kind ("benign", "gps-drift",
	// "imu-accel-dos", ...).
	Kind string `json:"kind"`
	// StartSeconds / EndSeconds bound the attack window (0 for benign).
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
}

// Verdict is the server's RCA outcome for the trial.
type Verdict struct {
	// Cause is the attributed root cause ("none", "imu", "gps",
	// "imu+gps").
	Cause string `json:"cause"`
	// IMUAttacked / GPSAttacked are the per-stage flags.
	IMUAttacked bool `json:"imu_attacked"`
	GPSAttacked bool `json:"gps_attacked"`
	// GPSMode is the KF variant stage 2 actually used.
	GPSMode string `json:"gps_mode"`
	// DetectionSeconds is the earliest detection time among flagged
	// stages (0 when nothing was flagged).
	DetectionSeconds float64 `json:"detection_seconds"`
	// PeakError and Threshold are the GPS stage's score and decision
	// level — the operating point the ROC rollup sweeps.
	PeakError float64 `json:"peak_error"`
	Threshold float64 `json:"threshold"`
}

// Record is one trial's JSONL line. Field order is the byte layout of
// the sweep output; it only changes with a schema version bump.
type Record struct {
	SchemaVersion string `json:"schema_version"`
	// Trial is the trial's index in the deterministic grid enumeration.
	Trial int `json:"trial"`
	// Flight names the synthesized flight (shared across every grid
	// cell that reuses it — the key the session-disjoint rollup groups
	// by).
	Flight  string  `json:"flight"`
	Params  Params  `json:"params"`
	Truth   Truth   `json:"truth"`
	Verdict Verdict `json:"verdict"`
	// Correct reports strict cause-family agreement: benign flights
	// must yield "none", gps-* attacks "gps", imu-* attacks "imu"
	// (a partial "imu+gps" attribution does not count).
	Correct bool `json:"correct"`
	// Chunks counts the frames requests the trial pushed.
	Chunks int `json:"chunks"`
	// Shed counts bus messages the session dropped under backpressure
	// (deterministically 0 when the server capacity covers the sweep
	// concurrency).
	Shed int `json:"shed"`
	// Retries counts data-path HTTP retries (0 against a healthy
	// server; nonzero values mean wall-clock luck entered the sweep).
	Retries int64 `json:"retries"`
	// PhaseSeconds holds wall-clock phase timings ("push", "drain",
	// "report"), recorded only when Config.Timings is set — wall time
	// is nondeterministic, so it is off by default to keep same-seed
	// sweeps byte-identical.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// truthFamily maps a scenario kind to the cause family the analyzer
// must attribute for the trial to count as correct.
func truthFamily(kind string) string {
	switch {
	case kind == "" || kind == "benign":
		return "none"
	case strings.HasPrefix(kind, "gps-"):
		return "gps"
	case strings.HasPrefix(kind, "imu-"):
		return "imu"
	default:
		return kind
	}
}

// WriteJSONL writes one canonical JSON line per record. Encoding is
// deterministic: struct field order fixes the key order, and the only
// map field marshals with sorted keys.
func WriteJSONL(w io.Writer, records []Record) error {
	for i := range records {
		line, err := json.Marshal(&records[i])
		if err != nil {
			return fmt.Errorf("sweep: marshal trial %d: %w", records[i].Trial, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ParseRecords reads a JSONL stream written by WriteJSONL back into
// records, strictly: unknown fields and any schema version other than
// the current one are errors, so a consumer built against sweep/v2
// fails loudly on v1 archives (or a future v3) instead of silently
// zero-filling the fields that changed.
func ParseRecords(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var out []Record
	for line := 0; ; line++ {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("sweep: record %d: %w", line, err)
		}
		if rec.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("sweep: record %d: schema %q (this build reads %q)",
				line, rec.SchemaVersion, SchemaVersion)
		}
		out = append(out, rec)
	}
}

// csvHeader is the column order of the per-trial CSV summary.
var csvHeader = []string{
	"trial", "flight", "kf", "margin", "triage", "chunk_seconds", "frame_seconds",
	"attack", "intensity", "rep", "truth_kind", "cause", "correct",
	"detection_seconds", "peak_error", "threshold", "chunks", "shed", "retries",
}

// WriteCSV writes the per-trial summary table (one row per record,
// phase timings omitted — they are JSONL-only).
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range records {
		r := &records[i]
		row := []string{
			strconv.Itoa(r.Trial), r.Flight, r.Params.KF, g(r.Params.Margin),
			strconv.FormatBool(r.Params.Triage),
			g(r.Params.ChunkSeconds), g(r.Params.FrameSeconds),
			r.Params.Attack, g(r.Params.Intensity), strconv.Itoa(r.Params.Rep),
			r.Truth.Kind, r.Verdict.Cause, strconv.FormatBool(r.Correct),
			g(r.Verdict.DetectionSeconds), g(r.Verdict.PeakError), g(r.Verdict.Threshold),
			strconv.Itoa(r.Chunks), strconv.Itoa(r.Shed), strconv.FormatInt(r.Retries, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
