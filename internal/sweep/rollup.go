package sweep

import (
	"soundboost/internal/stats"
)

// Confusion is a serializable confusion matrix with its derived rates.
type Confusion struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	TN int `json:"tn"`
	FN int `json:"fn"`
	// TPR / FPR are the detection and false-alarm rates (0 when the
	// corresponding class is absent).
	TPR float64 `json:"tpr"`
	FPR float64 `json:"fpr"`
}

func confusionFrom(c stats.ConfusionCounts) Confusion {
	return Confusion{TP: c.TP, FP: c.FP, TN: c.TN, FN: c.FN, TPR: c.TPR(), FPR: c.FPR()}
}

// Attribution scores strict root-cause agreement over trials.
type Attribution struct {
	Correct  int     `json:"correct"`
	Total    int     `json:"total"`
	Accuracy float64 `json:"accuracy"`
}

// Rollup aggregates a sweep's records. It reports detection two ways
// because the grid reuses flights across cells:
//
//   - Pooled counts every (flight, cell) trial. It shows how accuracy
//     moves across the grid, but its sample size is inflated — the
//     same synthesized flight is scored once per detector/transport
//     cell, and those outcomes are strongly correlated.
//   - SessionDisjoint counts each distinct flight exactly once (its
//     first trial in grid order), so no flight contributes more than
//     one outcome. This is the honest sample size; quoting pooled
//     rates as if trials were independent is the leakage mistake the
//     split exists to guard against.
//
// GPSAUC integrates the ROC of the GPS stage's peak-error score over
// the session-disjoint benign vs GPS-attack flights (IMU-attack
// flights are excluded: peak error is not their detection score). It
// is 0 when either class is absent.
type Rollup struct {
	SchemaVersion string `json:"schema_version"`
	Trials        int    `json:"trials"`
	// Flights counts the distinct synthesized flights behind the
	// trials.
	Flights         int         `json:"flights"`
	Pooled          Confusion   `json:"pooled"`
	SessionDisjoint Confusion   `json:"session_disjoint"`
	Attribution     Attribution `json:"attribution"`
	GPSAUC          float64     `json:"gps_auc"`
}

// BuildRollup folds records (in grid order) into the sweep summary.
func BuildRollup(records []Record) Rollup {
	var pooled, disjoint stats.ConfusionCounts
	seen := map[string]bool{}
	correct := 0
	var benignPeaks, gpsPeaks []float64
	for i := range records {
		r := &records[i]
		alerted := r.Verdict.Cause != "" && r.Verdict.Cause != "none"
		pooled.Record(r.Truth.Attack, alerted)
		if r.Correct {
			correct++
		}
		if seen[r.Flight] {
			continue
		}
		seen[r.Flight] = true
		disjoint.Record(r.Truth.Attack, alerted)
		switch truthFamily(r.Truth.Kind) {
		case "none":
			benignPeaks = append(benignPeaks, r.Verdict.PeakError)
		case "gps":
			gpsPeaks = append(gpsPeaks, r.Verdict.PeakError)
		}
	}
	roll := Rollup{
		SchemaVersion:   SchemaVersion,
		Trials:          len(records),
		Flights:         len(seen),
		Pooled:          confusionFrom(pooled),
		SessionDisjoint: confusionFrom(disjoint),
		Attribution:     Attribution{Correct: correct, Total: len(records)},
	}
	if roll.Attribution.Total > 0 {
		roll.Attribution.Accuracy = float64(correct) / float64(roll.Attribution.Total)
	}
	if len(benignPeaks) > 0 && len(gpsPeaks) > 0 {
		roll.GPSAUC = stats.AUC(stats.ROC(benignPeaks, gpsPeaks))
	}
	return roll
}
