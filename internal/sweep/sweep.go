package sweep

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/obs"
	"soundboost/internal/parallel"
	"soundboost/internal/server"
)

// Sweep-wide metrics (gated by obs.Enable, served via -debug-addr).
var (
	trialsRun     = obs.Default.Counter("sweep.trials")
	trialsCorrect = obs.Default.Counter("sweep.trials.correct")
	trialRetries  = obs.Default.Counter("sweep.retries")
)

// Config assembles one sweep. Zero values take the documented defaults
// via normalized(); the exported fields map one-to-one onto the
// `soundboost sweep` flags.
type Config struct {
	// Analyzer is the calibrated analyzer self-hosted cells derive
	// from. Required unless Addr is set.
	Analyzer *soundboost.Analyzer
	// Addr, when set, targets a running server at this base URL
	// (e.g. "http://127.0.0.1:8713") instead of self-hosting. The
	// server owns its analyzer, so the KFModes and Margins axes must be
	// empty — those cells would silently not vary anything.
	Addr string
	// KFModes lists the KF variants whose GPS detector each margin is
	// applied to (default: audio+imu). Self-hosted only.
	KFModes []kalman.Mode
	// Margins lists GPS threshold margins to sweep (default: 1.1, the
	// calibration default). Self-hosted only.
	Margins []float64
	// Triage lists the triage-tier settings to sweep (true = screen
	// windows through the analyzer's KNN tier, false = full pipeline on
	// every window). Default: whatever the analyzer carries — [true]
	// when it has a tier, [false] when it does not, so the default grid
	// shape is unchanged. Self-hosted only; true requires an analyzer
	// with a trained tier.
	Triage []bool
	// ChunkSeconds lists flight seconds per frames request (default: 2).
	ChunkSeconds []float64
	// FrameSeconds lists audio frame lengths (default: 0.05).
	FrameSeconds []float64
	// Attacks lists attack families (default: benign, gps-drift).
	Attacks []string
	// Intensities lists attack magnitude scale factors (default: 1).
	Intensities []float64
	// Reps is the number of flights per attack x intensity cell
	// (default 1; wind cycles calm/breezy/gusty per rep).
	Reps int
	// Seconds is the flight duration (default 20; minimum 12 so the
	// attack window fits after the detector's alignment phase).
	Seconds float64
	// Seed pins the whole sweep: flight synthesis and retry backoff
	// draws all derive from it, so the same seed reproduces the same
	// records byte for byte.
	Seed int64
	// Preset selects the synthesis rates (PresetFast or PresetPaper;
	// default fast). It must match the analyzer's training corpus.
	Preset string
	// Concurrency bounds trials in flight at once (default 4).
	Concurrency int
	// Buffer is the per-topic session buffer depth (default 1<<16,
	// large enough that no trial sheds under backpressure).
	Buffer int
	// Timings records wall-clock phase timings per trial. Off by
	// default: wall time is nondeterministic and would break the
	// byte-identity contract.
	Timings bool
	// Logf, when set, receives progress lines (sent to stderr by the
	// CLI so stdout stays diffable).
	Logf func(format string, a ...any)
}

// Result is a finished sweep: the per-trial records in grid order plus
// their rollup.
type Result struct {
	Records []Record
	Rollup  Rollup
}

// normalized returns a validated copy with defaults applied.
func (c Config) normalized() (Config, error) {
	if c.Addr == "" {
		if c.Analyzer == nil {
			return c, fmt.Errorf("sweep: self-hosted sweep needs an analyzer (or set Addr)")
		}
		if len(c.KFModes) == 0 {
			c.KFModes = []kalman.Mode{kalman.ModeAudioIMU}
		}
		if len(c.Margins) == 0 {
			c.Margins = []float64{1.1}
		}
		for _, m := range c.KFModes {
			if m != kalman.ModeAudioOnly && m != kalman.ModeAudioIMU {
				return c, fmt.Errorf("sweep: KF variant must be %q or %q, got %q",
					kalman.ModeAudioOnly, kalman.ModeAudioIMU, m)
			}
		}
		for _, m := range c.Margins {
			if m <= 0 {
				return c, fmt.Errorf("sweep: margin must be positive, got %g", m)
			}
		}
		if len(c.Triage) == 0 {
			c.Triage = []bool{c.Analyzer.Triage != nil}
		}
		for _, t := range c.Triage {
			if t && c.Analyzer.Triage == nil {
				return c, fmt.Errorf("sweep: triage=true cells need an analyzer with a trained triage tier (calibrate with -triage)")
			}
		}
	} else if len(c.KFModes) != 0 || len(c.Margins) != 0 || len(c.Triage) != 0 {
		return c, fmt.Errorf("sweep: the kf/margin/triage axes sweep the analyzer's calibration, which an external server owns — drop them or self-host")
	}
	if len(c.ChunkSeconds) == 0 {
		c.ChunkSeconds = []float64{2}
	}
	if len(c.FrameSeconds) == 0 {
		c.FrameSeconds = []float64{0.05}
	}
	if len(c.Attacks) == 0 {
		c.Attacks = []string{"benign", "gps-drift"}
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{1}
	}
	for _, v := range c.ChunkSeconds {
		if v <= 0 {
			return c, fmt.Errorf("sweep: chunk seconds must be positive, got %g", v)
		}
	}
	for _, v := range c.FrameSeconds {
		if v <= 0 {
			return c, fmt.Errorf("sweep: frame seconds must be positive, got %g", v)
		}
	}
	for _, a := range c.Attacks {
		if !knownFamily(a) {
			return c, fmt.Errorf("sweep: unknown attack family %q (want one of %v)", a, attackFamilies)
		}
	}
	for _, v := range c.Intensities {
		if v <= 0 {
			return c, fmt.Errorf("sweep: intensity must be positive, got %g", v)
		}
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Seconds == 0 {
		c.Seconds = 20
	}
	if c.Seconds < 12 {
		return c, fmt.Errorf("sweep: flights must be at least 12 s (attack window starts after the 5 s alignment phase), got %g", c.Seconds)
	}
	if c.Preset == "" {
		c.Preset = PresetFast
	}
	if c.Preset != PresetFast && c.Preset != PresetPaper {
		return c, fmt.Errorf("sweep: preset must be %q or %q, got %q", PresetFast, PresetPaper, c.Preset)
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Buffer <= 0 {
		c.Buffer = 1 << 16
	}
	return c, nil
}

func (c *Config) logf(format string, a ...any) {
	if c.Logf != nil {
		c.Logf(format, a...)
	}
}

// host is one live server a subset of trials targets: either the
// external Addr or a self-hosted in-process server bound to a loopback
// port, holding the (kf, margin)-derived analyzer.
type host struct {
	base     string
	shutdown func(context.Context) error
}

// startHost brings up one in-process server over the derived analyzer,
// listening on an ephemeral loopback port — trials reach it through
// the same HTTP plane an external server exposes.
func (c *Config) startHost(analyzer *soundboost.Analyzer) (*host, error) {
	svc, err := server.New(analyzer, server.Config{
		// Concurrency bounds live sessions per host; finished sessions
		// are LRU-evicted on demand, so a small table suffices for any
		// trial count.
		MaxSessions:   c.Concurrency + 2,
		SessionBuffer: c.Buffer,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: svc}
	done := make(chan struct{})
	go func() { defer close(done); _ = httpSrv.Serve(ln) }()
	return &host{
		base: "http://" + ln.Addr().String(),
		shutdown: func(ctx context.Context) error {
			if err := svc.Shutdown(ctx); err != nil {
				return err
			}
			if err := httpSrv.Shutdown(ctx); err != nil {
				return err
			}
			<-done
			return nil
		},
	}, nil
}

// hostCell pairs a host with the (kf, margin, triage) params its trials
// record.
type hostCell struct {
	kf     string
	margin float64
	triage bool
	host   *host
}

// cell is one enumerated trial before it runs.
type cell struct {
	idx    int
	host   int
	flight int
	params Params
}

// Run executes the sweep: synthesize the distinct flights, bring up the
// per-(kf, margin) servers (or point at Addr), fan the trial matrix out
// under the concurrency limiter, and roll the records up. Trials are
// enumerated in a fixed nested order (kf, margin, triage, chunk, frame,
// attack, intensity, rep) and collected by index, so the output order — and
// with a fixed seed, every output byte — is deterministic regardless of
// scheduling.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	c, err := cfg.normalized()
	if err != nil {
		return nil, err
	}

	// Distinct flights, in stable key order; cells that differ only in
	// detector or transport axes share them.
	var keys []flightKey
	for _, a := range c.Attacks {
		for _, in := range c.Intensities {
			for r := 0; r < c.Reps; r++ {
				keys = append(keys, flightKey{attack: a, intensity: in, rep: r})
			}
		}
	}
	c.logf("sweep: synthesizing %d flight(s) (%.0f s, preset %s)", len(keys), c.Seconds, c.Preset)
	flights, err := parallel.MapErr(0, len(keys), func(i int) (*dataset.Flight, error) {
		return c.buildFlight(keys[i], i)
	})
	if err != nil {
		return nil, err
	}

	// Hosts: one per (kf, margin) cell self-hosted, or the external
	// server for the whole grid.
	var hosts []hostCell
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, h := range hosts {
			if h.host.shutdown != nil {
				if err := h.host.shutdown(shutdownCtx); err != nil {
					c.logf("sweep: host shutdown: %v", err)
				}
			}
		}
	}()
	if c.Addr != "" {
		hosts = append(hosts, hostCell{kf: KFServer, margin: 0, host: &host{base: c.Addr}})
	} else {
		for _, kf := range c.KFModes {
			for _, margin := range c.Margins {
				for _, tri := range c.Triage {
					derived, err := c.Analyzer.WithGPSMargin(kf, margin)
					if err != nil {
						return nil, err
					}
					if !tri {
						derived = derived.WithoutTriage()
					}
					h, err := c.startHost(derived)
					if err != nil {
						return nil, err
					}
					hosts = append(hosts, hostCell{kf: string(kf), margin: margin, triage: tri, host: h})
				}
			}
		}
		c.logf("sweep: %d in-process server(s) up", len(hosts))
	}

	// The trial matrix, in its canonical order.
	var cells []cell
	for hi, h := range hosts {
		for _, chunk := range c.ChunkSeconds {
			for _, frame := range c.FrameSeconds {
				for ki, key := range keys {
					cells = append(cells, cell{
						idx:    len(cells),
						host:   hi,
						flight: ki,
						params: Params{
							KF: h.kf, Margin: h.margin, Triage: h.triage,
							ChunkSeconds: chunk, FrameSeconds: frame,
							Attack: key.attack, Intensity: key.intensity, Rep: key.rep,
						},
					})
				}
			}
		}
	}
	c.logf("sweep: %d trial(s) across %d host(s), concurrency %d", len(cells), len(hosts), c.Concurrency)

	// Fan out under the limiter; results land at their trial index so
	// completion order never shows in the output.
	limiter := parallel.NewLimiter("sweep", c.Concurrency)
	records := make([]Record, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i := range cells {
		if err := limiter.Acquire(ctx); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(cl cell) {
			defer wg.Done()
			defer limiter.Release()
			rec, err := c.runTrial(hosts[cl.host].host.base, cl.idx, cl.params, flights[cl.flight])
			if err != nil {
				errs[cl.idx] = err
				return
			}
			records[cl.idx] = rec
			trialsRun.Inc()
			if rec.Correct {
				trialsCorrect.Inc()
			}
			trialRetries.Add(rec.Retries)
		}(cells[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return &Result{Records: records, Rollup: BuildRollup(records)}, nil
}
