package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFloats parses one comma-separated grid axis ("1, 2,4") into its
// values. Whitespace around tokens is trimmed and empty tokens are
// ignored (so trailing commas are harmless); any non-numeric token
// fails immediately with the axis name in the error.
func ParseFloats(name, s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: bad grid value %q", name, tok)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseBools parses a comma-separated boolean axis ("on,off",
// "true,false", "1,0") with the same trimming rules as ParseFloats.
func ParseBools(name, s string) ([]bool, error) {
	var out []bool
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		switch strings.ToLower(tok) {
		case "on":
			out = append(out, true)
		case "off":
			out = append(out, false)
		default:
			v, err := strconv.ParseBool(tok)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s: bad grid value %q", name, tok)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// ParseStrings splits a comma-separated axis into trimmed, non-empty
// tokens.
func ParseStrings(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
