package sweep

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// testGenConfig mirrors the reduced-rate corpus layout the server and
// stream tests use (4 kHz audio, 125 Hz telemetry) — the same layout
// PresetFast synthesizes, so the fixture analyzer accepts sweep
// flights.
func testGenConfig(mission sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.World.Controller.MaxVel = 3
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	return cfg
}

var (
	fixOnce     sync.Once
	fixAnalyzer *soundboost.Analyzer
	fixErr      error
)

// getAnalyzer trains the fixture analyzer once per test binary, with
// the same corpus and model size the server tests use — strong enough
// that benign flights keep the IMU stage quiet, which the margin
// plumb-through assertion depends on (a falsely-flagged IMU makes
// stage 2 fall back to the audio-only variant the sweep didn't
// rescale).
func getAnalyzer(t *testing.T) *soundboost.Analyzer {
	t.Helper()
	fixOnce.Do(func() {
		missions := []sim.Mission{
			sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
			sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
			}),
			sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
			}),
		}
		var train, calib []*dataset.Flight
		seed := int64(700)
		for rep := 0; rep < 2; rep++ {
			for _, m := range missions {
				f, err := dataset.Generate(testGenConfig(m, seed))
				if err != nil {
					fixErr = err
					return
				}
				train = append(train, f)
				seed += 7
			}
		}
		for _, m := range missions {
			f, err := dataset.Generate(testGenConfig(m, seed))
			if err != nil {
				fixErr = err
				return
			}
			calib = append(calib, f)
			seed += 7
		}
		sig := soundboost.DefaultSignatureConfig(testGenConfig(missions[0], 0).Synth)
		mcfg := soundboost.DefaultMappingConfig(sig)
		mcfg.Hidden = 48
		mcfg.Train.Epochs = 100
		model, _, err := soundboost.TrainModel(train, nil, mcfg)
		if err != nil {
			fixErr = err
			return
		}
		fixAnalyzer, fixErr = soundboost.NewAnalyzer(model, calib)
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixAnalyzer
}

// TestSweepSeedByteIdentical is the determinism contract: the same
// Config (same seed) run twice — flight synthesis, in-process servers,
// concurrent trials over real HTTP, rollup — must produce byte-for-byte
// identical JSONL, CSV, and rollup. This is what lets a sweep pin a
// confusion matrix in CI.
func TestSweepSeedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep end-to-end is too slow for -short")
	}
	cfg := Config{
		Analyzer:    getAnalyzer(t),
		Margins:     []float64{1.0, 1.3},
		Attacks:     []string{"benign", "gps-drift"},
		Seconds:     14,
		Seed:        42,
		Concurrency: 3,
	}
	run := func() (*Result, []byte, []byte) {
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var jsonl, csv bytes.Buffer
		if err := WriteJSONL(&jsonl, res.Records); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&csv, res.Records); err != nil {
			t.Fatal(err)
		}
		return res, jsonl.Bytes(), csv.Bytes()
	}

	res1, jsonl1, csv1 := run()
	res2, jsonl2, _ := run()

	if !bytes.Equal(jsonl1, jsonl2) {
		t.Errorf("same-seed sweeps produced different JSONL:\nrun1:\n%srun2:\n%s", jsonl1, jsonl2)
	}
	if res1.Rollup != res2.Rollup {
		t.Errorf("same-seed rollups differ:\nrun1: %+v\nrun2: %+v", res1.Rollup, res2.Rollup)
	}

	// Shape: 2 margins x 2 attacks = 4 trials over 2 distinct flights,
	// enumerated margin-major.
	if len(res1.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(res1.Records))
	}
	wantParams := []struct {
		margin float64
		attack string
	}{{1.0, "benign"}, {1.0, "gps-drift"}, {1.3, "benign"}, {1.3, "gps-drift"}}
	for i, r := range res1.Records {
		if r.Trial != i {
			t.Errorf("record %d: trial index %d", i, r.Trial)
		}
		if r.SchemaVersion != SchemaVersion {
			t.Errorf("record %d: schema %q", i, r.SchemaVersion)
		}
		if r.Params.Margin != wantParams[i].margin || r.Params.Attack != wantParams[i].attack {
			t.Errorf("record %d: params (%g, %s), want (%g, %s)", i,
				r.Params.Margin, r.Params.Attack, wantParams[i].margin, wantParams[i].attack)
		}
		if r.Params.KF != string(kalman.ModeAudioIMU) {
			t.Errorf("record %d: kf %q, want default %q", i, r.Params.KF, kalman.ModeAudioIMU)
		}
		if r.Shed != 0 {
			t.Errorf("record %d: %d messages shed — determinism is void", i, r.Shed)
		}
		if r.Retries != 0 {
			t.Errorf("record %d: %d data-path retries against a healthy in-process server", i, r.Retries)
		}
		if r.PhaseSeconds != nil {
			t.Errorf("record %d: phase timings recorded without Timings", i)
		}
		if r.Chunks == 0 {
			t.Errorf("record %d: no chunks pushed", i)
		}
	}
	// The two margin cells share flights: same flight name, and the
	// benign/attack ground truth rides along.
	if res1.Records[0].Flight != res1.Records[2].Flight {
		t.Errorf("margin cells did not share the benign flight: %q vs %q",
			res1.Records[0].Flight, res1.Records[2].Flight)
	}
	if res1.Records[1].Truth.Kind != "gps-drift" || !res1.Records[1].Truth.Attack {
		t.Errorf("gps-drift trial truth = %+v", res1.Records[1].Truth)
	}
	if res1.Records[0].Truth.Attack {
		t.Errorf("benign trial marked as attack")
	}
	// A lower margin means a lower threshold, exactly rescaled. The
	// check requires stage 2 to have run the swept (audio+imu) variant
	// — i.e. the IMU stage stayed quiet on these IMU-clean flights.
	for _, i := range []int{1, 3} {
		if got := res1.Records[i].Verdict.GPSMode; got != string(kalman.ModeAudioIMU) {
			t.Errorf("record %d: gps_mode %q — IMU stage falsely flagged, margin cell unexercised", i, got)
		}
	}
	lo, hi := res1.Records[1].Verdict.Threshold, res1.Records[3].Verdict.Threshold
	if !(lo < hi) {
		t.Errorf("margin 1.0 threshold %g not below margin 1.3 threshold %g", lo, hi)
	}
	if got := res1.Rollup; got.Trials != 4 || got.Flights != 2 {
		t.Errorf("rollup trials/flights = %d/%d, want 4/2", got.Trials, got.Flights)
	}
	pooledN := res1.Rollup.Pooled.TP + res1.Rollup.Pooled.FP + res1.Rollup.Pooled.TN + res1.Rollup.Pooled.FN
	disjointN := res1.Rollup.SessionDisjoint.TP + res1.Rollup.SessionDisjoint.FP +
		res1.Rollup.SessionDisjoint.TN + res1.Rollup.SessionDisjoint.FN
	if pooledN != 4 || disjointN != 2 {
		t.Errorf("pooled/disjoint totals = %d/%d, want 4/2", pooledN, disjointN)
	}
	if !bytes.HasPrefix(csv1, []byte("trial,flight,kf,margin")) {
		t.Errorf("csv header missing: %q", bytes.SplitN(csv1, []byte("\n"), 2)[0])
	}
}

// TestRollupSessionDisjoint pins the leakage guard on synthetic
// records: pooled counts every (flight, cell) trial, while the
// session-disjoint matrix scores each distinct flight once — its first
// trial in grid order — so correlated re-trials of one flight cannot
// inflate the reported rates.
func TestRollupSessionDisjoint(t *testing.T) {
	mk := func(trial int, flight, kind, cause string, peak float64) Record {
		r := Record{
			SchemaVersion: SchemaVersion,
			Trial:         trial,
			Flight:        flight,
			Truth:         Truth{Attack: kind != "benign", Kind: kind},
			Verdict:       Verdict{Cause: cause, PeakError: peak},
		}
		r.Correct = cause == truthFamily(kind)
		return r
	}
	records := []Record{
		// Cell A: both flights scored correctly.
		mk(0, "benign-i1-r0", "benign", "none", 0.2),
		mk(1, "gps-drift-i1-r0", "gps-drift", "gps", 0.9),
		// Cell B re-runs the same flights and gets both wrong.
		mk(2, "benign-i1-r0", "benign", "gps", 0.2),
		mk(3, "gps-drift-i1-r0", "gps-drift", "none", 0.9),
	}
	roll := BuildRollup(records)
	if roll.Trials != 4 || roll.Flights != 2 {
		t.Fatalf("trials/flights = %d/%d, want 4/2", roll.Trials, roll.Flights)
	}
	// Pooled sees 4 correlated outcomes: 1 TP, 1 FN, 1 TN, 1 FP.
	if want := (Confusion{TP: 1, FP: 1, TN: 1, FN: 1, TPR: 0.5, FPR: 0.5}); roll.Pooled != want {
		t.Errorf("pooled = %+v, want %+v", roll.Pooled, want)
	}
	// Session-disjoint keeps only each flight's first trial: perfect.
	if want := (Confusion{TP: 1, TN: 1, TPR: 1, FPR: 0}); roll.SessionDisjoint != want {
		t.Errorf("session_disjoint = %+v, want %+v", roll.SessionDisjoint, want)
	}
	if roll.Attribution.Correct != 2 || roll.Attribution.Accuracy != 0.5 {
		t.Errorf("attribution = %+v, want 2/4", roll.Attribution)
	}
	// Benign peak 0.2 vs gps peak 0.9 separate perfectly.
	if roll.GPSAUC != 1 {
		t.Errorf("gps_auc = %g, want 1", roll.GPSAUC)
	}
}

func TestGridParsing(t *testing.T) {
	got, err := ParseFloats("margins", " 1.0, 1.3 ,2,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1.0 || got[1] != 1.3 || got[2] != 2 {
		t.Errorf("ParseFloats = %v", got)
	}
	if _, err := ParseFloats("margins", "1.0,abc"); err == nil ||
		!strings.Contains(err.Error(), "margins") {
		t.Errorf("bad token error = %v, want axis name in it", err)
	}
	if s := ParseStrings(" benign , gps-drift ,,"); len(s) != 2 || s[0] != "benign" || s[1] != "gps-drift" {
		t.Errorf("ParseStrings = %v", s)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Addr: "http://127.0.0.1:1"}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"margins with external server", func(c *Config) { c.Margins = []float64{1.0, 1.2} }, "external server"},
		{"kf with external server", func(c *Config) { c.KFModes = []kalman.Mode{kalman.ModeAudioOnly} }, "external server"},
		{"unknown attack", func(c *Config) { c.Attacks = []string{"gps-teleport"} }, "unknown attack family"},
		{"short flight", func(c *Config) { c.Seconds = 5 }, "at least 12"},
		{"bad chunk", func(c *Config) { c.ChunkSeconds = []float64{0} }, "chunk seconds"},
		{"bad intensity", func(c *Config) { c.Intensities = []float64{-1} }, "intensity"},
		{"bad preset", func(c *Config) { c.Preset = "slow" }, "preset"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := cfg.normalized(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// No analyzer and no addr is unusable.
	if _, err := (Config{}).normalized(); err == nil {
		t.Error("empty config: want error")
	}
	// A valid external config defaults the sentinel axes lazily (Run
	// substitutes KFServer); normalized itself must accept it.
	if _, err := base.normalized(); err != nil {
		t.Errorf("external config rejected: %v", err)
	}
	// Self-hosted invalid KF variant.
	bad := Config{Analyzer: &soundboost.Analyzer{}, KFModes: []kalman.Mode{kalman.ModeIMUOnly}}
	if _, err := bad.normalized(); err == nil || !strings.Contains(err.Error(), "KF variant") {
		t.Errorf("imu-only variant: err = %v", err)
	}
}
