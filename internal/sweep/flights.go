package sweep

import (
	"fmt"
	"math/rand"

	"soundboost/internal/attack"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// Flight synthesis presets. PresetFast is the reduced-rate layout every
// smoke and test corpus uses (4 kHz audio, 250 Hz physics, acoustic
// plan scaled into the Nyquist range); PresetPaper keeps the full-rate
// defaults. The preset must match the analyzer's training corpus — the
// server rejects sessions whose sample rate does not fit the model.
const (
	PresetFast  = "fast"
	PresetPaper = "paper"
)

// Attack families a sweep can synthesize, with their canonical
// (intensity 1) magnitudes. The values mirror cmd/flightgen so a sweep
// cell at intensity 1 reproduces the corpus the smokes already pin.
var attackFamilies = []string{"benign", "gps-static", "gps-drift", "imu-side-swing", "imu-dos"}

func knownFamily(name string) bool {
	for _, f := range attackFamilies {
		if f == name {
			return true
		}
	}
	return false
}

// flightKey identifies one distinct synthesized flight. Grid cells that
// differ only in detector or transport axes (kf, margin, chunk, frame)
// share the flight — the whole point of the session-disjoint rollup.
type flightKey struct {
	attack    string
	intensity float64
	rep       int
}

// winds cycles per rep so repeated flights of the same attack cell see
// different benign disturbance, not just a different seed.
var winds = []func() sim.WindConfig{sim.CalmWind, sim.BreezyWind, sim.GustyWind}

// buildFlight synthesizes the flight for one key. idx is the key's
// position in the stable key enumeration; together with the master
// seed it pins the whole generation, so the same Config reproduces the
// same corpus byte for byte.
func (c *Config) buildFlight(key flightKey, idx int) (*dataset.Flight, error) {
	// Distinct flights must not share simulation seeds: stride past the
	// handful of derived seeds DefaultGenConfig and the attack builders
	// consume per flight.
	seed := c.Seed + int64(idx)*101
	mission := sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: c.Seconds}
	cfg := dataset.DefaultGenConfig(mission, seed)
	if c.Preset == PresetFast {
		// The flightgen -fast layout: 4 kHz audio with the acoustic plan
		// scaled under Nyquist, reduced physics/telemetry rates.
		cfg.World.PhysicsRate = 250
		cfg.World.ControlRate = 125
		cfg.World.IMU.SampleRate = 125
		cfg.World.Controller.MaxVel = 3
		cfg.Synth.SampleRate = 4000
		cfg.Synth.MechFreq = 900
		cfg.Synth.AeroFreq = 1500
	}
	cfg.World.Wind = winds[key.rep%len(winds)]()

	// Attacks start after the GPS detector's alignment phase (the threat
	// model: attacks begin after take-off) and end before the flight
	// does, so detection latency is measurable.
	window := attack.Window{Start: 6, End: c.Seconds - 2}
	scenario, err := buildScenario(key.attack, key.intensity, window, seed)
	if err != nil {
		return nil, err
	}
	cfg.Scenario = scenario
	cfg.Name = fmt.Sprintf("%s-i%s-r%d", key.attack, trimFloat(key.intensity), key.rep)
	f, err := dataset.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("sweep: synthesize %s: %w", cfg.Name, err)
	}
	return f, nil
}

// buildScenario constructs the attack for a family at an intensity
// scale. Intensity multiplies the family's canonical magnitude (GPS
// spoof offset in metres, IMU bias in m/s^2); benign ignores it.
func buildScenario(family string, intensity float64, window attack.Window, seed int64) (attack.Scenario, error) {
	switch family {
	case "benign":
		return attack.Scenario{}, nil
	case "gps-static":
		return attack.Scenario{Name: family, GPS: &attack.GPSSpoofer{
			Window: window, Mode: attack.GPSSpoofStatic,
			SpoofOffset: mathx.Vec3{X: 12 * intensity}, ReportZeroVel: true,
		}}, nil
	case "gps-drift":
		return attack.Scenario{Name: family, GPS: &attack.GPSSpoofer{
			Window: window, Mode: attack.GPSSpoofDrift,
			SpoofOffset: mathx.Vec3{X: 24 * intensity},
		}}, nil
	case "imu-side-swing":
		return attack.Scenario{Name: family, IMU: &attack.IMUBiaser{
			Window: window, Mode: attack.IMUSideSwing, Axis: mathx.Vec3{X: 1},
			Magnitude: 1.2 * intensity, RampSeconds: 1, OscillateHz: 0.9,
		}}, nil
	case "imu-dos":
		return attack.Scenario{Name: family, IMU: &attack.IMUBiaser{
			Window: window, Mode: attack.IMUAccelDoS, Axis: mathx.Vec3{Z: 1},
			Magnitude: 3 * intensity, Rng: rand.New(rand.NewSource(seed + 1)),
		}}, nil
	default:
		return attack.Scenario{}, fmt.Errorf("sweep: unknown attack family %q (want one of %v)", family, attackFamilies)
	}
}

// trimFloat renders an intensity compactly for flight names (1 -> "1",
// 0.5 -> "0.5").
func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
