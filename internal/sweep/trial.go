package sweep

import (
	"encoding/json"
	"fmt"
	"time"

	"soundboost/api"
	"soundboost/internal/dataset"
	"soundboost/internal/httpretry"
)

// runTrial drives one grid cell's flight through a live server over
// real HTTP: create a session, push the chunked frame stream, wait for
// the terminal state, fetch the report, and fold everything into the
// trial's record. Sessions are labelled "sweep/trial-NNNN" so the
// server's per-group metrics attribute them to the sweep workload.
func (c *Config) runTrial(base string, idx int, p Params, f *dataset.Flight) (Record, error) {
	rec := Record{
		SchemaVersion: SchemaVersion,
		Trial:         idx,
		Flight:        f.Name,
		Params:        p,
		Truth: Truth{
			Attack:       f.Scenario.IsAttack(),
			Kind:         f.Scenario.Kind,
			StartSeconds: f.Scenario.Window.Start,
			EndSeconds:   f.Scenario.Window.End,
		},
	}

	// Data path and status polling use separate retry clients (the
	// chaos soak's split): poll counts depend on engine drain timing,
	// and must not contaminate the data-path retry count the record
	// reports. Seeds derive from the master seed and trial index, so
	// backoff draws are reproducible even when retries do happen.
	client := httpretry.New(nil, 8, 100*time.Millisecond, c.Seed+int64(idx)*2+1)
	poll := httpretry.New(nil, 8, 100*time.Millisecond, c.Seed+int64(idx)*2+2)

	reqs, err := api.ChunkFlight(f, p.FrameSeconds, p.ChunkSeconds)
	if err != nil {
		return rec, fmt.Errorf("sweep: trial %d: chunk: %w", idx, err)
	}
	rec.Chunks = len(reqs)

	var created api.SessionResponse
	body, err := json.Marshal(api.SessionRequest{
		Flight:       fmt.Sprintf("sweep/trial-%04d", idx),
		SampleRateHz: f.Audio.SampleRate,
		Buffer:       c.Buffer,
	})
	if err != nil {
		return rec, err
	}
	if err := client.Do("POST", base+"/v1/sessions", body, &created); err != nil {
		return rec, fmt.Errorf("sweep: trial %d: create session: %w", idx, err)
	}
	sessURL := base + "/v1/sessions/" + created.ID

	phase := phaseClock(c.Timings)
	for i, r := range reqs {
		raw, err := json.Marshal(r)
		if err != nil {
			return rec, err
		}
		var resp api.FramesResponse
		if err := client.Do("POST", sessURL+"/frames", raw, &resp); err != nil {
			return rec, fmt.Errorf("sweep: trial %d: frames %d/%d: %w", idx, i+1, len(reqs), err)
		}
	}
	phase.mark("push")

	// Wait for the terminal state; the last chunk carried Close, so the
	// session drains to done (or failed) on its own.
	var status api.SessionStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if err := poll.Do("GET", sessURL+"/status", nil, &status); err != nil {
			return rec, fmt.Errorf("sweep: trial %d: status: %w", idx, err)
		}
		if status.State == api.SessionDone || status.State == api.SessionFailed {
			break
		}
		if time.Now().After(deadline) {
			return rec, fmt.Errorf("sweep: trial %d: session %s stuck in state %q", idx, created.ID, status.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	phase.mark("drain")
	if status.State == api.SessionFailed {
		return rec, fmt.Errorf("sweep: trial %d: session failed: %s", idx, status.FailCause)
	}
	rec.Shed = status.Shed

	var report api.Report
	if err := client.Do("GET", sessURL+"/report", nil, &report); err != nil {
		return rec, fmt.Errorf("sweep: trial %d: report: %w", idx, err)
	}
	phase.mark("report")

	rec.Verdict = verdictFrom(report)
	rec.Correct = rec.Verdict.Cause == truthFamily(rec.Truth.Kind)
	rec.Retries = client.Retries()
	rec.PhaseSeconds = phase.seconds
	return rec, nil
}

// verdictFrom folds the wire report into the record's verdict.
// DetectionSeconds is the earliest flagged stage's time: the sweep's
// latency measure is "when did RCA first know", whichever sensor
// tripped first.
func verdictFrom(r api.Report) Verdict {
	v := Verdict{
		Cause:       r.Cause,
		IMUAttacked: r.IMU.Attacked,
		GPSAttacked: r.GPS.Attacked,
		GPSMode:     r.GPSMode,
		PeakError:   r.GPS.PeakError,
		Threshold:   r.GPS.Threshold,
	}
	switch {
	case r.IMU.Attacked && r.GPS.Attacked:
		v.DetectionSeconds = r.IMU.DetectionSeconds
		if r.GPS.DetectionSeconds < v.DetectionSeconds {
			v.DetectionSeconds = r.GPS.DetectionSeconds
		}
	case r.IMU.Attacked:
		v.DetectionSeconds = r.IMU.DetectionSeconds
	case r.GPS.Attacked:
		v.DetectionSeconds = r.GPS.DetectionSeconds
	}
	return v
}

// phases measures per-phase wall time when enabled; disabled it stays
// nil everywhere, keeping records free of nondeterministic fields.
type phases struct {
	seconds map[string]float64
	last    time.Time
}

func phaseClock(enabled bool) *phases {
	if !enabled {
		return &phases{}
	}
	return &phases{seconds: map[string]float64{}, last: time.Now()}
}

// mark closes the current phase under the given name.
func (p *phases) mark(name string) {
	if p.seconds == nil {
		return
	}
	now := time.Now()
	p.seconds[name] = now.Sub(p.last).Seconds()
	p.last = now
}
