package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseRecordsRoundTrip pins the strict JSONL decode contract:
// WriteJSONL output reads back exactly, while unknown fields, foreign
// schema versions (a sweep/v1 archive), and truncated lines all fail
// loudly instead of zero-filling.
func TestParseRecordsRoundTrip(t *testing.T) {
	records := []Record{
		{
			SchemaVersion: SchemaVersion,
			Trial:         0,
			Flight:        "benign-i1-r0",
			Params: Params{
				KF: "audio+imu", Margin: 1.1, Triage: true,
				ChunkSeconds: 2, FrameSeconds: 0.05,
				Attack: "benign", Intensity: 1,
			},
			Truth:   Truth{Kind: "benign"},
			Verdict: Verdict{Cause: "none", GPSMode: "audio+imu", Threshold: 0.4},
			Correct: true,
			Chunks:  7,
		},
		{
			SchemaVersion: SchemaVersion,
			Trial:         1,
			Flight:        "gps-drift-i1-r0",
			Params: Params{
				KF: "audio+imu", Margin: 1.1, Triage: false,
				ChunkSeconds: 2, FrameSeconds: 0.05,
				Attack: "gps-drift", Intensity: 1,
			},
			Truth:   Truth{Attack: true, Kind: "gps-drift", StartSeconds: 6, EndSeconds: 10},
			Verdict: Verdict{Cause: "gps", GPSAttacked: true, GPSMode: "audio+imu", DetectionSeconds: 6.5, PeakError: 0.9, Threshold: 0.4},
			Correct: true,
			Chunks:  7,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ParseRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseRecords: %v", err)
	}
	if len(got) != len(records) {
		t.Fatalf("got %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i].Params != records[i].Params || got[i].Truth != records[i].Truth ||
			got[i].Verdict != records[i].Verdict || got[i].Correct != records[i].Correct {
			t.Errorf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], records[i])
		}
	}

	for name, doctor := range map[string]func(string) string{
		"unknown field": func(line string) string {
			return strings.Replace(line, `"trial":0`, `"trial":0,"bogus":1`, 1)
		},
		"old schema": func(line string) string {
			return strings.Replace(line, SchemaVersion, "sweep/v1", 1)
		},
		"truncated": func(line string) string {
			return line[:len(line)/2]
		},
	} {
		lines := strings.SplitN(buf.String(), "\n", 2)
		bad := doctor(lines[0]) + "\n" + lines[1]
		if _, err := ParseRecords(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: ParseRecords accepted a corrupt stream", name)
		}
	}
}
