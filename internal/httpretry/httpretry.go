// Package httpretry is the fault-tolerant JSON/HTTP client shared by
// every CLI-side path that talks to the RCA service (push, chaos, and
// the sweep runner): requests are retried with exponential backoff and
// seeded jitter on transport errors and on retryable statuses (429 and
// the gateway-ish 502/503/504), a server-supplied Retry-After overrides
// the computed backoff, and bodies are held as []byte so every resend is
// byte-identical. A plain 500 is never retried — the server uses it for
// permanent outcomes (session_failed), where a retry can only waste the
// budget.
//
// Retrying a frames post is safe because chunks carry sequence numbers:
// a resend whose original ack was lost comes back Duplicate, not
// double-published.
package httpretry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soundboost/api"
)

// Client retries JSON round trips against the /v1 service.
type Client struct {
	// Sleep waits out one backoff delay; override (e.g. with a no-op) to
	// keep deterministic drivers wall-clock-free.
	Sleep func(time.Duration)
	// Logf receives one line per retry (default: silent).
	Logf func(format string, a ...any)

	hc      *http.Client
	retries int
	base    time.Duration
	max     time.Duration
	// rngMu guards rng: one Client is shared across goroutines (the
	// gateway fans one client out per replica, sweeps run trials in
	// parallel), and rand.Rand is not safe for concurrent use. The mutex
	// serializes draws so the seeded sequence itself stays intact —
	// deterministic drivers that retry serially still see the exact
	// seeded draw order.
	rngMu   sync.Mutex
	rng     *rand.Rand
	retried atomic.Int64
	now     func() time.Time // injectable for Retry-After date tests
}

// New builds a client retrying up to retries times with backoff starting
// at base (jittered, capped at 30×base). seed makes the jitter sequence
// reproducible for the deterministic drivers (chaos soak, sweeps).
func New(hc *http.Client, retries int, base time.Duration, seed int64) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if retries < 0 {
		retries = 0
	}
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	return &Client{
		hc:      hc,
		retries: retries,
		base:    base,
		max:     30 * base,
		rng:     rand.New(rand.NewSource(seed)),
		Sleep:   time.Sleep,
		Logf:    func(string, ...any) {},
		now:     time.Now,
	}
}

// Retries returns the number of retried attempts so far — the count of
// round trips beyond each request's first. Sweep trial records report it.
func (c *Client) Retries() int64 { return c.retried.Load() }

// retryableStatus reports whether a status is worth retrying.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do round-trips one JSON request with retries. body may be nil; out may
// be nil to discard the response.
func (c *Client) Do(method, url string, body []byte, out any) error {
	for attempt := 0; ; attempt++ {
		retryAfter, permanent, err := c.attempt(method, url, body, out)
		if err == nil {
			return nil
		}
		if permanent || attempt >= c.retries {
			// Always report how many round trips were burned — a
			// first-attempt failure reads "after 1 attempt", not a bare
			// error that hides whether the budget was even used.
			return fmt.Errorf("%w (after %s)", err, plural(attempt+1, "attempt"))
		}
		// Always draw the jitter so the PRNG consumption order — and with
		// it every seeded driver's output — does not depend on which
		// attempts carried a Retry-After header.
		delay := c.backoff(attempt)
		if retryAfter >= 0 {
			delay = retryAfter
		}
		c.retried.Add(1)
		c.Logf("retry %d/%d for %s %s in %s: %v", attempt+1, c.retries, method, url, delay, err)
		c.Sleep(delay)
	}
}

// attempt performs one round trip. permanent reports a failure retries
// cannot help. retryAfter is the server's Retry-After translated to a
// wait: -1 when absent or unparseable (use the computed backoff), 0 or
// more to honor the server's ask — an explicit `Retry-After: 0` means
// "retry immediately", which is distinct from no header at all.
func (c *Client) attempt(method, url string, body []byte, out any) (retryAfter time.Duration, permanent bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return -1, true, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return -1, false, err // transport failure: connection reset, refused, dropped response
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1, false, fmt.Errorf("%s: reading response: %w", url, err)
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return -1, true, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return -1, true, fmt.Errorf("%s: %w", url, err)
		}
		return -1, true, nil
	}
	apiErr := api.Error{Code: fmt.Sprintf("http_%d", resp.StatusCode), Error: string(raw)}
	var decoded api.Error
	if json.Unmarshal(raw, &decoded) == nil && decoded.Error != "" {
		apiErr = decoded
	}
	err = &StatusError{Status: resp.StatusCode, Code: apiErr.Code, Message: apiErr.Error, URL: url}
	if !retryableStatus(resp.StatusCode) {
		return -1, true, err
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if d, ok := parseRetryAfter(s, c.now()); ok {
			if d > c.max {
				d = c.max // a server may ask for minutes; the retry budget won't survive that
			}
			return d, false, err
		}
	}
	return -1, false, err
}

// parseRetryAfter decodes both RFC 9110 forms of Retry-After: a
// non-negative decimal count of seconds, or an HTTP-date (RFC 1123 and
// the obsolete variants net/http accepts). A date in the past — the
// server said "now" — and an explicit 0 both mean retry immediately.
// Negative seconds and anything unparseable are rejected so the caller
// falls back to computed backoff.
func parseRetryAfter(s string, now time.Time) (time.Duration, bool) {
	s = strings.TrimSpace(s)
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(s); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// backoff computes the jittered exponential delay for one attempt:
// half the window deterministic, half uniform random, capped at max.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.base << uint(attempt)
	if d > c.max || d <= 0 {
		d = c.max
	}
	c.rngMu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d/2) + 1))
	c.rngMu.Unlock()
	return d/2 + jitter
}

// plural formats "1 attempt" / "3 attempts".
func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("%d %s", n, noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}

// StatusError is a non-2xx API response surfaced as an error: the HTTP
// status plus the decoded api.Error body. Callers that must distinguish
// "the service answered with an error" from "the request never got an
// answer" (transport failure, *url.Error) unwrap it with errors.As — the
// fleet gateway does exactly that to decide between surfacing a
// replica's verdict and failing the session over.
type StatusError struct {
	Status  int    // HTTP status code
	Code    string // api.Error.Code (or synthesized "http_<status>")
	Message string // api.Error.Error
	URL     string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s: %s (%s)", e.URL, e.Message, e.Code)
}
