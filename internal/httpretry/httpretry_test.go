package httpretry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"soundboost/api"
)

// sleepRecorder captures the delays a client would have waited out.
type sleepRecorder struct{ delays []time.Duration }

func (r *sleepRecorder) sleep(d time.Duration) { r.delays = append(r.delays, d) }

// serveSequence returns a test server that answers each request with the
// next scripted response, repeating the last one once the script runs
// out.
func serveSequence(t *testing.T, script []func(http.ResponseWriter)) (*httptest.Server, *int) {
	t.Helper()
	calls := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		i := *calls
		*calls++
		if i >= len(script) {
			i = len(script) - 1
		}
		script[i](w)
	}))
	t.Cleanup(srv.Close)
	return srv, calls
}

func ok(w http.ResponseWriter) { w.Write([]byte(`{"schema_version":"v1"}`)) }

func status(code int, retryAfter string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(code)
		w.Write([]byte(`{"code":"capacity","error":"at capacity"}`))
	}
}

// TestRetryAfterSeconds pins the integer form: the server's ask
// overrides the computed backoff exactly.
func TestRetryAfterSeconds(t *testing.T) {
	srv, calls := serveSequence(t, []func(http.ResponseWriter){status(429, "2"), ok})
	rec := &sleepRecorder{}
	c := New(nil, 3, 100*time.Millisecond, 1) // cap 30×base = 3s, above the ask
	c.Sleep = rec.sleep
	if err := c.Do("GET", srv.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	if *calls != 2 {
		t.Fatalf("server saw %d calls, want 2", *calls)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly [2s]", rec.delays)
	}
	if c.Retries() != 1 {
		t.Fatalf("Retries() = %d, want 1", c.Retries())
	}
}

// TestRetryAfterZero is the regression test for the explicit-zero hole:
// `Retry-After: 0` means "retry immediately", but the old positive-only
// parse dropped it to computed (nonzero, jittered) backoff.
func TestRetryAfterZero(t *testing.T) {
	srv, _ := serveSequence(t, []func(http.ResponseWriter){status(429, "0"), ok})
	rec := &sleepRecorder{}
	c := New(nil, 3, time.Second, 1) // base so large any computed backoff is >= 500ms
	c.Sleep = rec.sleep
	if err := c.Do("GET", srv.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 0 {
		t.Fatalf("slept %v, want exactly [0s] (explicit zero honored)", rec.delays)
	}
}

// TestRetryAfterHTTPDate is the regression test for the HTTP-date form,
// which the integer-only parse silently ignored: a future date waits
// until that date, and a date already past means retry immediately.
func TestRetryAfterHTTPDate(t *testing.T) {
	now := time.Now()
	t.Run("future", func(t *testing.T) {
		date := now.Add(3 * time.Second).UTC().Format(http.TimeFormat)
		srv, _ := serveSequence(t, []func(http.ResponseWriter){status(503, date), ok})
		rec := &sleepRecorder{}
		c := New(nil, 3, 200*time.Millisecond, 1) // cap 6s, above the ~3s ask
		c.Sleep = rec.sleep
		c.now = func() time.Time { return now }
		if err := c.Do("GET", srv.URL, nil, nil); err != nil {
			t.Fatal(err)
		}
		if len(rec.delays) != 1 {
			t.Fatalf("slept %v, want one delay", rec.delays)
		}
		// The date format has 1 s resolution, so the wait lands in (2, 3].
		if d := rec.delays[0]; d <= 2*time.Second || d > 3*time.Second {
			t.Fatalf("slept %v, want ~3s from the HTTP-date", d)
		}
	})
	t.Run("past", func(t *testing.T) {
		date := now.Add(-time.Hour).UTC().Format(http.TimeFormat)
		srv, _ := serveSequence(t, []func(http.ResponseWriter){status(503, date), ok})
		rec := &sleepRecorder{}
		c := New(nil, 3, time.Second, 1)
		c.Sleep = rec.sleep
		c.now = func() time.Time { return now }
		if err := c.Do("GET", srv.URL, nil, nil); err != nil {
			t.Fatal(err)
		}
		if len(rec.delays) != 1 || rec.delays[0] != 0 {
			t.Fatalf("slept %v, want [0s] (past date = retry now)", rec.delays)
		}
	})
}

// TestRetryAfterClamped bounds a hostile or misconfigured server: an ask
// far beyond the client's own backoff cap is clamped to it.
func TestRetryAfterClamped(t *testing.T) {
	srv, _ := serveSequence(t, []func(http.ResponseWriter){status(429, "3600"), ok})
	rec := &sleepRecorder{}
	c := New(nil, 3, 100*time.Millisecond, 1) // cap = 30×base = 3s
	c.Sleep = rec.sleep
	if err := c.Do("GET", srv.URL, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(rec.delays) != 1 || rec.delays[0] != 3*time.Second {
		t.Fatalf("slept %v, want [3s] (clamped to 30×base)", rec.delays)
	}
}

// TestRetryAfterGarbage keeps the fallback: unparseable or negative
// values mean computed backoff, never a panic or a zero-delay spin.
func TestRetryAfterGarbage(t *testing.T) {
	for _, bad := range []string{"soon", "-5", "1.5"} {
		srv, _ := serveSequence(t, []func(http.ResponseWriter){status(429, bad), ok})
		rec := &sleepRecorder{}
		c := New(nil, 3, 10*time.Millisecond, 1)
		c.Sleep = rec.sleep
		if err := c.Do("GET", srv.URL, nil, nil); err != nil {
			t.Fatalf("Retry-After %q: %v", bad, err)
		}
		if len(rec.delays) != 1 || rec.delays[0] < 5*time.Millisecond {
			t.Fatalf("Retry-After %q: slept %v, want computed backoff >= base/2", bad, rec.delays)
		}
	}
}

// TestParseRetryAfter covers the parser table directly.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"7", 7 * time.Second, true},
		{" 7 ", 7 * time.Second, true},
		{"0", 0, true},
		{"-1", 0, false},
		{"1.5", 0, false},
		{"soon", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if ok != tc.ok || got != tc.want {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestPermanentStatusNotRetried keeps the permanent-failure contract: a
// plain 500 (session_failed and friends) must fail fast.
func TestPermanentStatusNotRetried(t *testing.T) {
	srv, calls := serveSequence(t, []func(http.ResponseWriter){
		func(w http.ResponseWriter) {
			w.WriteHeader(500)
			w.Write([]byte(`{"code":"session_failed","error":"engine died"}`))
		},
	})
	c := New(nil, 5, time.Millisecond, 1)
	c.Sleep = func(time.Duration) {}
	err := c.Do("GET", srv.URL, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "session_failed") {
		t.Fatalf("err = %v, want session_failed", err)
	}
	if *calls != 1 {
		t.Fatalf("server saw %d calls, want 1 (500 is permanent)", *calls)
	}
	if c.Retries() != 0 {
		t.Fatalf("Retries() = %d, want 0", c.Retries())
	}
}

// TestRetryBudgetExhausted surfaces the attempt count in the error.
func TestRetryBudgetExhausted(t *testing.T) {
	srv, calls := serveSequence(t, []func(http.ResponseWriter){status(503, "")})
	c := New(nil, 2, time.Millisecond, 1)
	c.Sleep = func(time.Duration) {}
	err := c.Do("GET", srv.URL, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want the attempt count", err)
	}
	if *calls != 3 {
		t.Fatalf("server saw %d calls, want 3", *calls)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// TestAttemptCountAlwaysReported is the regression test for the hidden
// first attempt: a request that dies on its very first round trip must
// still say how much of the budget was used — "(after 1 attempt)" — not
// return a bare error that reads as if no retry machinery ran at all.
func TestAttemptCountAlwaysReported(t *testing.T) {
	t.Run("permanent first attempt", func(t *testing.T) {
		srv, _ := serveSequence(t, []func(http.ResponseWriter){
			func(w http.ResponseWriter) {
				w.WriteHeader(500)
				w.Write([]byte(`{"code":"session_failed","error":"engine died"}`))
			},
		})
		c := New(nil, 5, time.Millisecond, 1)
		c.Sleep = func(time.Duration) {}
		err := c.Do("GET", srv.URL, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "(after 1 attempt)") {
			t.Fatalf("err = %v, want \"(after 1 attempt)\"", err)
		}
		if strings.Contains(err.Error(), "1 attempts") {
			t.Fatalf("err = %v, singular noun mangled", err)
		}
	})
	t.Run("zero retry budget", func(t *testing.T) {
		srv, calls := serveSequence(t, []func(http.ResponseWriter){status(503, "")})
		c := New(nil, 0, time.Millisecond, 1)
		c.Sleep = func(time.Duration) {}
		err := c.Do("GET", srv.URL, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "(after 1 attempt)") {
			t.Fatalf("err = %v, want \"(after 1 attempt)\"", err)
		}
		if *calls != 1 {
			t.Fatalf("server saw %d calls, want 1", *calls)
		}
	})
}

// TestStatusErrorTyped pins the typed error contract the fleet gateway
// relies on: an API-level failure unwraps to *StatusError carrying the
// HTTP status (even through the attempt-count wrapper), while a
// transport failure does not — that distinction is how the gateway
// decides between surfacing a replica's answer and failing over.
func TestStatusErrorTyped(t *testing.T) {
	srv, _ := serveSequence(t, []func(http.ResponseWriter){status(429, "")})
	c := New(nil, 1, time.Millisecond, 1)
	c.Sleep = func(time.Duration) {}
	err := c.Do("GET", srv.URL, nil, nil)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.Status != 429 || se.Code != "capacity" || se.Message != "at capacity" {
		t.Fatalf("StatusError = %+v", se)
	}
	if !strings.Contains(err.Error(), "at capacity (capacity)") {
		t.Fatalf("err = %v, message format drifted", err)
	}

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	url := dead.URL
	dead.Close()
	c2 := New(nil, 0, time.Millisecond, 1)
	c2.Sleep = func(time.Duration) {}
	err = c2.Do("GET", url, nil, nil)
	if errors.As(err, &se) {
		t.Fatalf("transport failure decoded as StatusError: %v", err)
	}
}

// TestConcurrentRetriesSharedClient is the regression test for the
// unguarded jitter PRNG: many goroutines hammering one shared client
// through the retry path must not race on the rand.Rand (run under
// -race), and the seeded sequence must stay intact — a serial client
// with the same seed still produces the exact same delays.
func TestConcurrentRetriesSharedClient(t *testing.T) {
	// Always 503 with no Retry-After: every Do exhausts its full budget
	// and every retry draws jitter from the shared PRNG.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(503)
		w.Write([]byte(`{"code":"capacity","error":"at capacity"}`))
	}))
	t.Cleanup(srv.Close)
	const goroutines = 12
	c := New(nil, 3, time.Millisecond, 42)
	c.Sleep = func(time.Duration) {}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := c.Do("GET", srv.URL, nil, nil)
			if err == nil || !strings.Contains(err.Error(), "(after 4 attempts)") {
				t.Errorf("err = %v, want exhausted budget after 4 attempts", err)
			}
		}()
	}
	wg.Wait()
	if got := c.Retries(); got != goroutines*3 {
		t.Fatalf("Retries() = %d, want %d", got, goroutines*3)
	}

	// Draw-order determinism survives the mutex: two fresh same-seeded
	// clients used serially replay identical jittered delays.
	delays := func() []time.Duration {
		srv2, _ := serveSequence(t, []func(http.ResponseWriter){status(503, ""), status(503, ""), ok})
		rec := &sleepRecorder{}
		c := New(nil, 3, 10*time.Millisecond, 7)
		c.Sleep = rec.sleep
		if err := c.Do("GET", srv2.URL, nil, nil); err != nil {
			t.Fatal(err)
		}
		return rec.delays
	}
	a, b := delays(), delays()
	if len(a) != 2 || !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded jitter no longer deterministic: %v vs %v", a, b)
	}
}

// TestDoDecodesInto checks the happy path decodes the response body.
func TestDoDecodesInto(t *testing.T) {
	srv, _ := serveSequence(t, []func(http.ResponseWriter){ok})
	c := New(nil, 0, time.Millisecond, 1)
	var h api.Health
	if err := c.Do("GET", srv.URL, nil, &h); err != nil {
		t.Fatal(err)
	}
	if h.SchemaVersion != "v1" {
		t.Fatalf("decoded schema_version %q, want v1", h.SchemaVersion)
	}
}

// TestTransportErrorRetried covers connection-level failures: they are
// retryable (the service may be restarting under the client).
func TestTransportErrorRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { ok(w) }))
	url := srv.URL
	srv.Close() // connection refused from here on
	c := New(nil, 1, time.Millisecond, 1)
	c.Sleep = func(time.Duration) {}
	err := c.Do("GET", url, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("err = %v, want transport failure after 2 attempts", err)
	}
}
