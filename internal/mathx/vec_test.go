package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApproxEq(a, b Vec3, tol float64) bool {
	return approxEq(a.X, b.X, tol) && approxEq(a.Y, b.Y, tol) && approxEq(a.Z, b.Z, tol)
}

func TestVec3Arithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Vec3
		want Vec3
	}{
		{"add", Vec3{1, 2, 3}.Add(Vec3{4, 5, 6}), Vec3{5, 7, 9}},
		{"sub", Vec3{1, 2, 3}.Sub(Vec3{4, 5, 6}), Vec3{-3, -3, -3}},
		{"scale", Vec3{1, 2, 3}.Scale(2), Vec3{2, 4, 6}},
		{"neg", Vec3{1, -2, 3}.Neg(), Vec3{-1, 2, -3}},
		{"hadamard", Vec3{1, 2, 3}.Hadamard(Vec3{4, 5, 6}), Vec3{4, 10, 18}},
		{"cross-xy", Vec3{1, 0, 0}.Cross(Vec3{0, 1, 0}), Vec3{0, 0, 1}},
		{"cross-yz", Vec3{0, 1, 0}.Cross(Vec3{0, 0, 1}), Vec3{1, 0, 0}},
		{"clamp", Vec3{-5, 0.5, 5}.Clamp(-1, 1), Vec3{-1, 0.5, 1}},
		{"lerp-mid", Vec3{0, 0, 0}.Lerp(Vec3{2, 4, 6}, 0.5), Vec3{1, 2, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !vecApproxEq(tt.got, tt.want, eps) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVec3DotNorm(t *testing.T) {
	v := Vec3{3, 4, 0}
	if got := v.Norm(); !approxEq(got, 5, eps) {
		t.Errorf("Norm() = %v, want 5", got)
	}
	if got := v.NormSq(); !approxEq(got, 25, eps) {
		t.Errorf("NormSq() = %v, want 25", got)
	}
	if got := v.Dot(Vec3{1, 1, 1}); !approxEq(got, 7, eps) {
		t.Errorf("Dot() = %v, want 7", got)
	}
	if got := v.Dist(Vec3{0, 0, 0}); !approxEq(got, 5, eps) {
		t.Errorf("Dist() = %v, want 5", got)
	}
}

func TestVec3Normalized(t *testing.T) {
	v := Vec3{10, 0, 0}.Normalized()
	if !vecApproxEq(v, Vec3{1, 0, 0}, eps) {
		t.Errorf("Normalized() = %v, want (1,0,0)", v)
	}
	zero := Vec3{}.Normalized()
	if !vecApproxEq(zero, Vec3{}, eps) {
		t.Errorf("Normalized zero = %v, want zero", zero)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVec3SliceRoundTrip(t *testing.T) {
	v := Vec3{1.5, -2.5, 3.25}
	got := Vec3FromSlice(v.Slice())
	if got != v {
		t.Errorf("round trip = %v, want %v", got, v)
	}
}

// Property: cross product is orthogonal to both operands.
func TestVec3CrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampForQuick(ax), clampForQuick(ay), clampForQuick(az)}
		b := Vec3{clampForQuick(bx), clampForQuick(by), clampForQuick(bz)}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-6 && math.Abs(c.Dot(b))/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |a+b| <= |a| + |b| (triangle inequality).
func TestVec3TriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampForQuick(ax), clampForQuick(ay), clampForQuick(az)}
		b := Vec3{clampForQuick(bx), clampForQuick(by), clampForQuick(bz)}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampForQuick maps arbitrary quick-generated floats into a sane finite
// range so properties are not dominated by overflow.
func clampForQuick(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestMat3MulVec(t *testing.T) {
	m := Mat3{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	got := m.MulVec(Vec3{1, 0, -1})
	want := Vec3{-2, -2, -2}
	if !vecApproxEq(got, want, eps) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
}

func TestMat3Inverse(t *testing.T) {
	m := Mat3{{2, 0, 0}, {0, 4, 0}, {1, 0, 8}}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("Inverse() reported singular for invertible matrix")
	}
	prod := m.Mul(inv)
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approxEq(prod[i][j], id[i][j], 1e-9) {
				t.Errorf("m*m^-1[%d][%d] = %v, want %v", i, j, prod[i][j], id[i][j])
			}
		}
	}
}

func TestMat3InverseSingular(t *testing.T) {
	m := Mat3{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}
	if _, ok := m.Inverse(); ok {
		t.Error("Inverse() succeeded on a singular matrix")
	}
}

func TestMat3TransposeInvolution(t *testing.T) {
	m := Mat3{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if got := m.Transpose().Transpose(); got != m {
		t.Errorf("double transpose = %v, want %v", got, m)
	}
}

func TestDiag3(t *testing.T) {
	d := Diag3(1, 2, 3)
	got := d.MulVec(Vec3{1, 1, 1})
	if !vecApproxEq(got, Vec3{1, 2, 3}, eps) {
		t.Errorf("Diag3 mul = %v", got)
	}
}

func TestClampScalar(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 1, 1},
		{-5, 0, 1, 0},
		{0.5, 0, 1, 0.5},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}
