package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func matApproxEq(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > tol {
				t.Fatalf("at (%d,%d): got %v, want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows([][]float64{{19, 22}, {43, 50}})
	matApproxEq(t, got, want, eps)
}

func TestMatrixMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := MustFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got, err := a.MulVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 || got[1] != 6 {
		t.Errorf("MulVec = %v, want [7 6]", got)
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	b := MustFromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	matApproxEq(t, sum, MustFromRows([][]float64{{5, 5}, {5, 5}}), eps)
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	matApproxEq(t, diff, MustFromRows([][]float64{{-3, -1}, {1, 3}}), eps)
	matApproxEq(t, a.Scale(2), MustFromRows([][]float64{{2, 4}, {6, 8}}), eps)
}

func TestMatrixInverseIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			m.Set(i, i, m.At(i, i)+float64(n)) // diagonally dominant: invertible
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		matApproxEq(t, prod, Identity(n), 1e-8)
	}
}

func TestMatrixInverseSingular(t *testing.T) {
	m := MustFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestMatrixInverseNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Inverse(); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestMatrixSolve(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 => x = 1, y = 3
	a := MustFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := a.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 1, 1e-9) || !approxEq(x[1], 3, 1e-9) {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
}

func TestMatrixSolveNeedsPivot(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := MustFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := a.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 3, 1e-9) || !approxEq(x[1], 2, 1e-9) {
		t.Errorf("Solve = %v, want [3 2]", x)
	}
}

func TestMatrixSolveSingular(t *testing.T) {
	a := MustFromRows([][]float64{{1, 1}, {2, 2}})
	if _, err := a.Solve([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// Fit y = 2x + 1 from noisy samples; with many points the estimate
	// should be close to the true coefficients.
	rng := rand.New(rand.NewSource(5))
	n := 500
	design := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		design.Set(i, 0, x)
		design.Set(i, 1, 1)
		b[i] = 2*x + 1 + rng.NormFloat64()*0.01
	}
	coef, err := LeastSquares(design, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(coef[0], 2, 1e-2) || !approxEq(coef[1], 1, 1e-2) {
		t.Errorf("coef = %v, want [2 1]", coef)
	}
}

func TestLeastSquaresDamped(t *testing.T) {
	// Perfectly collinear columns: plain least squares is singular, but
	// Tikhonov damping produces a finite solution.
	design := MustFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(design, []float64{2, 4, 6}, 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("undamped err = %v, want ErrSingular", err)
	}
	coef, err := LeastSquares(design, []float64{2, 4, 6}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got := coef[0] + coef[1]; !approxEq(got, 2, 1e-3) {
		t.Errorf("coef sum = %v, want 2", got)
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.Transpose()
	want := MustFromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	matApproxEq(t, got, want, eps)
}

func TestMatrixSymmetrize(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	matApproxEq(t, a, MustFromRows([][]float64{{1, 3}, {3, 3}}), eps)
}

func TestMatrixRowColClone(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if r := a.Row(1); r[0] != 3 || r[1] != 4 {
		t.Errorf("Row(1) = %v", r)
	}
	if c := a.Col(0); c[0] != 1 || c[1] != 3 {
		t.Errorf("Col(0) = %v", c)
	}
	clone := a.Clone()
	clone.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestDiagAndIdentity(t *testing.T) {
	d := Diag(1, 2, 3)
	for i := 0; i < 3; i++ {
		if d.At(i, i) != float64(i+1) {
			t.Errorf("Diag(%d,%d) = %v", i, i, d.At(i, i))
		}
	}
	id := Identity(4)
	v, err := id.MulVec([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x != float64(i+1) {
			t.Errorf("identity mul changed vector: %v", v)
		}
	}
}

func TestCholesky(t *testing.T) {
	// A = B*Bᵀ + n*I is symmetric positive definite.
	rng := rand.New(rand.NewSource(21))
	n := 5
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	bt := b.Transpose()
	a, err := b.Mul(bt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	// L must be lower triangular and reconstruct A.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L[%d][%d] = %v, want 0 above diagonal", i, j, l.At(i, j))
			}
		}
	}
	recon, err := l.Mul(l.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	matApproxEq(t, recon, a, 1e-9)
}

func TestCholeskyNotPD(t *testing.T) {
	a := MustFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := a.Cholesky(); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	b := NewMatrix(2, 3)
	if _, err := b.Cholesky(); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}
