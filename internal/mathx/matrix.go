package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. It is the workhorse for the
// Kalman filters (covariance propagation) and the LTI system-identification
// baseline (normal-equation least squares). The zero value is an empty
// matrix; use NewMatrix or FromRows to construct a usable one.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("mathx: dimension mismatch")

// ErrSingular is returned when a matrix inversion or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mathx: singular matrix")

// NewMatrix returns a rows×cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square diagonal matrix with the given diagonal entries.
func Diag(entries ...float64) *Matrix {
	m := NewMatrix(len(entries), len(entries))
	for i, e := range entries {
		m.Set(i, i, e)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimensionMismatch, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFromRows is FromRows that panics on ragged input; for tests and
// compile-time-constant matrices.
func MustFromRows(rows [][]float64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Mul returns the product m*n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrDimensionMismatch, m.rows, m.cols, n.rows, n.cols)
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowN := n.data[k*n.cols : (k+1)*n.cols]
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			for j, b := range rowN {
				rowOut[j] += a * b
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m+n.
func (m *Matrix) Add(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrDimensionMismatch, m.rows, m.cols, n.rows, n.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += n.data[i]
	}
	return out, nil
}

// Sub returns m-n.
func (m *Matrix) Sub(n *Matrix) (*Matrix, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrDimensionMismatch, m.rows, m.cols, n.rows, n.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= n.data[i]
	}
	return out, nil
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting. It returns ErrSingular when a pivot
// falls below 1e-12 in magnitude.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrDimensionMismatch, m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			inv.swapRows(col, pivot)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (m *Matrix) swapRows(i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves m*x = b for x using Gaussian elimination, returning
// ErrSingular for rank-deficient systems. m must be square.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: solve with %dx%d", ErrDimensionMismatch, m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrDimensionMismatch, len(b), m.rows)
	}
	n := m.rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			x[col], x[pivot] = x[pivot], x[col]
		}
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / a.At(col, col)
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// LeastSquares solves the overdetermined system A*x ≈ b in the least-squares
// sense via the normal equations (AᵀA)x = Aᵀb with Tikhonov damping lambda
// (pass 0 for plain least squares). It is used by the LTI system
// identification baseline, where mild damping stabilises near-collinear
// regressors from hover data.
func LeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("%w: design %dx%d, rhs %d", ErrDimensionMismatch, a.Rows(), a.Cols(), len(b))
	}
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.Rows(); i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return ata.Solve(atb)
}

// Symmetrize replaces m with (m + mᵀ)/2 in place; Kalman covariance updates
// use it to cancel floating-point asymmetry drift.
func (m *Matrix) Symmetrize() {
	if m.rows != m.cols {
		return
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// String implements fmt.Stringer with a compact row layout.
func (m *Matrix) String() string {
	s := "["
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// Cholesky computes the lower-triangular factor L with m = L*Lᵀ for a
// symmetric positive-definite matrix. It returns ErrSingular when the
// matrix is not positive definite (within tolerance).
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrDimensionMismatch, m.rows, m.cols)
	}
	n := m.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 1e-12 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}
