package mathx

import "math"

// Quat is a unit quaternion (W + Xi + Yj + Zk) representing a rotation from
// the body frame to the world (NED) frame.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds a quaternion rotating by angle (radians) around
// the given axis. The axis need not be normalized.
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalized()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// QuatFromEuler builds a quaternion from aerospace (roll, pitch, yaw) Euler
// angles in radians, using the Z-Y-X (yaw-pitch-roll) intrinsic convention
// standard in flight dynamics.
func QuatFromEuler(roll, pitch, yaw float64) Quat {
	sr, cr := math.Sincos(roll / 2)
	sp, cp := math.Sincos(pitch / 2)
	sy, cy := math.Sincos(yaw / 2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// Euler returns the (roll, pitch, yaw) Euler angles of q in radians.
func (q Quat) Euler() (roll, pitch, yaw float64) {
	// roll (x-axis rotation)
	sinr := 2 * (q.W*q.X + q.Y*q.Z)
	cosr := 1 - 2*(q.X*q.X+q.Y*q.Y)
	roll = math.Atan2(sinr, cosr)

	// pitch (y-axis rotation); clamp for numerical safety at the gimbal poles.
	sinp := 2 * (q.W*q.Y - q.Z*q.X)
	if math.Abs(sinp) >= 1 {
		pitch = math.Copysign(math.Pi/2, sinp)
	} else {
		pitch = math.Asin(sinp)
	}

	// yaw (z-axis rotation)
	siny := 2 * (q.W*q.Z + q.X*q.Y)
	cosy := 1 - 2*(q.Y*q.Y+q.Z*q.Z)
	yaw = math.Atan2(siny, cosy)
	return roll, pitch, yaw
}

// Mul returns the Hamilton product q*r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Norm returns the quaternion norm.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit norm. The zero quaternion becomes the
// identity, which keeps integrators well defined under degenerate input.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{W: q.W / n, X: q.X / n, Y: q.Y / n, Z: q.Z / n}
}

// Rotate applies the rotation q to vector v (body → world for an attitude
// quaternion).
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q * (0,v) * q^-1, expanded for speed.
	t := Vec3{X: q.X, Y: q.Y, Z: q.Z}.Cross(v).Scale(2)
	return v.Add(t.Scale(q.W)).Add(Vec3{X: q.X, Y: q.Y, Z: q.Z}.Cross(t))
}

// RotateInv applies the inverse rotation (world → body).
func (q Quat) RotateInv(v Vec3) Vec3 { return q.Conj().Rotate(v) }

// Integrate advances the attitude by the body angular velocity omega
// (rad/s) over dt seconds using the exponential map, returning a unit
// quaternion. This is the attitude integrator used by the flight simulator.
func (q Quat) Integrate(omega Vec3, dt float64) Quat {
	angle := omega.Norm() * dt
	if angle < 1e-12 {
		return q.Normalized()
	}
	dq := QuatFromAxisAngle(omega, angle)
	return q.Mul(dq).Normalized()
}

// RotationMatrix returns the 3x3 rotation matrix equivalent of q
// (body → world).
func (q Quat) RotationMatrix() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}
