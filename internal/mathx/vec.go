// Package mathx provides the small linear-algebra toolkit used across the
// SoundBoost reproduction: 3-vectors, 3x3 matrices, quaternions, and dense
// NxN matrix routines (inversion, Cholesky, least squares) required by the
// Kalman filters and the LTI system-identification baseline.
//
// Everything is stdlib-only and allocation-conscious: the hot paths used by
// the flight simulator (Vec3, Mat3, Quat) are value types.
package mathx

import (
	"fmt"
	"math"
)

// Vec3 is a 3-dimensional vector. The coordinate convention throughout the
// repository is North-East-Down (NED), matching the paper's Kalman filter
// formulation ("North-East-Down transformed acceleration").
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Hadamard returns the element-wise product of v and w.
func (v Vec3) Hadamard(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Clamp returns v with each component clamped to [lo, hi].
func (v Vec3) Clamp(lo, hi float64) Vec3 {
	return Vec3{clamp(v.X, lo, hi), clamp(v.Y, lo, hi), clamp(v.Z, lo, hi)}
}

// IsFinite reports whether every component is finite (not NaN or Inf).
func (v Vec3) IsFinite() bool {
	return isFinite(v.X) && isFinite(v.Y) && isFinite(v.Z)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Lerp returns the linear interpolation between v and w at parameter t,
// where t=0 yields v and t=1 yields w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z) }

// Slice returns the components as a fresh []float64{X, Y, Z}.
func (v Vec3) Slice() []float64 { return []float64{v.X, v.Y, v.Z} }

// Vec3FromSlice builds a Vec3 from the first three elements of s.
// It panics if len(s) < 3; callers own length validation at boundaries.
func Vec3FromSlice(s []float64) Vec3 {
	return Vec3{X: s[0], Y: s[1], Z: s[2]}
}

func clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Clamp returns x clamped to [lo, hi].
func Clamp(x, lo, hi float64) float64 { return clamp(x, lo, hi) }

// Mat3 is a 3x3 matrix in row-major order.
type Mat3 [3][3]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec returns m*v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		Y: m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		Z: m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m*n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[i][k] * n[k][j]
			}
			out[i][j] = s
		}
	}
	return out
}

// Transpose returns the transpose of m.
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[j][i]
		}
	}
	return out
}

// Scale returns s*m.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = s * m[i][j]
		}
	}
	return out
}

// Add returns m+n.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[i][j] + n[i][j]
		}
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Inverse returns the inverse of m. ok is false when m is singular
// (|det| below 1e-12), in which case the returned matrix is unspecified.
func (m Mat3) Inverse() (inv Mat3, ok bool) {
	d := m.Det()
	if math.Abs(d) < 1e-12 {
		return Mat3{}, false
	}
	id := 1 / d
	inv[0][0] = (m[1][1]*m[2][2] - m[1][2]*m[2][1]) * id
	inv[0][1] = (m[0][2]*m[2][1] - m[0][1]*m[2][2]) * id
	inv[0][2] = (m[0][1]*m[1][2] - m[0][2]*m[1][1]) * id
	inv[1][0] = (m[1][2]*m[2][0] - m[1][0]*m[2][2]) * id
	inv[1][1] = (m[0][0]*m[2][2] - m[0][2]*m[2][0]) * id
	inv[1][2] = (m[0][2]*m[1][0] - m[0][0]*m[1][2]) * id
	inv[2][0] = (m[1][0]*m[2][1] - m[1][1]*m[2][0]) * id
	inv[2][1] = (m[0][1]*m[2][0] - m[0][0]*m[2][1]) * id
	inv[2][2] = (m[0][0]*m[1][1] - m[0][1]*m[1][0]) * id
	return inv, true
}

// Diag3 returns a diagonal matrix with the given entries.
func Diag3(a, b, c float64) Mat3 {
	return Mat3{{a, 0, 0}, {0, b, 0}, {0, 0, c}}
}
