package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotation(t *testing.T) {
	q := IdentityQuat()
	v := Vec3{1, 2, 3}
	if got := q.Rotate(v); !vecApproxEq(got, v, eps) {
		t.Errorf("identity rotation = %v, want %v", got, v)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	tests := []struct {
		name  string
		axis  Vec3
		angle float64
		in    Vec3
		want  Vec3
	}{
		{"z90", Vec3{0, 0, 1}, math.Pi / 2, Vec3{1, 0, 0}, Vec3{0, 1, 0}},
		{"z180", Vec3{0, 0, 1}, math.Pi, Vec3{1, 0, 0}, Vec3{-1, 0, 0}},
		{"x90", Vec3{1, 0, 0}, math.Pi / 2, Vec3{0, 1, 0}, Vec3{0, 0, 1}},
		{"y90", Vec3{0, 1, 0}, math.Pi / 2, Vec3{0, 0, 1}, Vec3{1, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := QuatFromAxisAngle(tt.axis, tt.angle)
			if got := q.Rotate(tt.in); !vecApproxEq(got, tt.want, 1e-9) {
				t.Errorf("rotate %v = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		roll := (rng.Float64() - 0.5) * 2 // within ±1 rad, away from gimbal lock
		pitch := (rng.Float64() - 0.5) * 2
		yaw := (rng.Float64() - 0.5) * 6
		q := QuatFromEuler(roll, pitch, yaw)
		r, p, y := q.Euler()
		if !approxEq(r, roll, 1e-9) || !approxEq(p, pitch, 1e-9) || !approxEq(angleWrap(y-yaw), 0, 1e-9) {
			t.Fatalf("round trip (%v,%v,%v) -> (%v,%v,%v)", roll, pitch, yaw, r, p, y)
		}
	}
}

func angleWrap(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

func TestQuatRotateInv(t *testing.T) {
	q := QuatFromEuler(0.3, -0.2, 1.1)
	v := Vec3{1, -2, 3}
	got := q.RotateInv(q.Rotate(v))
	if !vecApproxEq(got, v, 1e-9) {
		t.Errorf("RotateInv(Rotate(v)) = %v, want %v", got, v)
	}
}

// Property: rotation preserves vector length.
func TestQuatRotationPreservesNorm(t *testing.T) {
	f := func(roll, pitch, yaw, vx, vy, vz float64) bool {
		q := QuatFromEuler(math.Mod(clampForQuick(roll), math.Pi),
			math.Mod(clampForQuick(pitch), math.Pi/2),
			math.Mod(clampForQuick(yaw), math.Pi))
		v := Vec3{clampForQuick(vx), clampForQuick(vy), clampForQuick(vz)}
		got := q.Rotate(v)
		return approxEq(got.Norm(), v.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quaternion multiplication of unit quaternions stays unit norm.
func TestQuatMulUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		q1 := QuatFromEuler(rng.NormFloat64(), rng.NormFloat64()/2, rng.NormFloat64())
		q2 := QuatFromEuler(rng.NormFloat64(), rng.NormFloat64()/2, rng.NormFloat64())
		if n := q1.Mul(q2).Norm(); !approxEq(n, 1, 1e-9) {
			t.Fatalf("unit*unit norm = %v", n)
		}
	}
}

func TestQuatIntegrate(t *testing.T) {
	// Integrating a constant yaw rate of pi/2 rad/s for 1 s in small steps
	// should rotate the attitude by ~90 degrees about z.
	q := IdentityQuat()
	omega := Vec3{0, 0, math.Pi / 2}
	const steps = 1000
	for i := 0; i < steps; i++ {
		q = q.Integrate(omega, 1.0/steps)
	}
	_, _, yaw := q.Euler()
	if !approxEq(yaw, math.Pi/2, 1e-6) {
		t.Errorf("yaw after integration = %v, want %v", yaw, math.Pi/2)
	}
	if !approxEq(q.Norm(), 1, 1e-9) {
		t.Errorf("attitude norm drifted to %v", q.Norm())
	}
}

func TestQuatIntegrateZeroRate(t *testing.T) {
	q := QuatFromEuler(0.1, 0.2, 0.3)
	got := q.Integrate(Vec3{}, 0.01)
	if !approxEq(got.Norm(), 1, eps) {
		t.Errorf("norm = %v, want 1", got.Norm())
	}
	r1, p1, y1 := q.Euler()
	r2, p2, y2 := got.Euler()
	if !approxEq(r1, r2, eps) || !approxEq(p1, p2, eps) || !approxEq(y1, y2, eps) {
		t.Error("zero-rate integration changed attitude")
	}
}

func TestQuatRotationMatrixAgrees(t *testing.T) {
	q := QuatFromEuler(0.4, -0.3, 0.9)
	v := Vec3{0.5, -1.5, 2.5}
	got := q.RotationMatrix().MulVec(v)
	want := q.Rotate(v)
	if !vecApproxEq(got, want, 1e-9) {
		t.Errorf("rotation matrix %v, quaternion %v", got, want)
	}
}

func TestQuatNormalizedZero(t *testing.T) {
	q := Quat{}
	if got := q.Normalized(); got != IdentityQuat() {
		t.Errorf("Normalized zero quat = %v, want identity", got)
	}
}
