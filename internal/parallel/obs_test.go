package parallel

import (
	"testing"

	"soundboost/internal/obs"
)

// TestPoolMetrics pins the pool's instrumentation: item/batch counters
// advance, the queue depth drains back to zero, and per-worker
// utilization lands one sample per worker per batch.
func TestPoolMetrics(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable()
	t.Cleanup(func() {
		if !prev {
			obs.Disable()
		}
	})

	items := obs.Default.Counter("parallel.items")
	batches := obs.Default.Counter("parallel.batches")
	depth := obs.Default.Gauge("parallel.queue_depth")
	util := obs.Default.Histogram("parallel.worker.utilization")

	itemsBefore, batchesBefore, utilBefore := items.Value(), batches.Value(), util.Count()

	const n, workers = 64, 4
	ForEach(workers, n, func(i int) {})

	if got := items.Value() - itemsBefore; got != n {
		t.Errorf("items counter advanced by %d, want %d", got, n)
	}
	if got := batches.Value() - batchesBefore; got != 1 {
		t.Errorf("batches counter advanced by %d, want 1", got)
	}
	if got := depth.Value(); got != 0 {
		t.Errorf("queue depth after drain = %g, want 0", got)
	}
	if got := util.Count() - utilBefore; got != workers {
		t.Errorf("utilization samples advanced by %d, want %d", got, workers)
	}

	// The serial path records under its own counter and never touches
	// batch metrics.
	serial := obs.Default.Counter("parallel.items_serial")
	serialBefore, batchesBefore := serial.Value(), batches.Value()
	ForEach(1, 10, func(i int) {})
	if got := serial.Value() - serialBefore; got != 10 {
		t.Errorf("serial items advanced by %d, want 10", got)
	}
	if got := batches.Value() - batchesBefore; got != 0 {
		t.Errorf("serial path advanced batch counter by %d", got)
	}
}

// TestPoolMetricsDisabled pins the off-by-default contract for the
// pool: a disabled layer records nothing.
func TestPoolMetricsDisabled(t *testing.T) {
	if obs.Enabled() {
		t.Skip("obs layer enabled by another harness")
	}
	items := obs.Default.Counter("parallel.items")
	before := items.Value()
	ForEach(4, 32, func(i int) {})
	if got := items.Value() - before; got != 0 {
		t.Errorf("disabled layer counted %d items", got)
	}
}
