package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -3, func(int) { called = true })
	if called {
		t.Error("fn called for n <= 0")
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	want := make([]int, 500)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := Map(workers, len(want), func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := MapErr(workers, 20, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestMapErrSuccess(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 2*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := Run(2,
		func() error { return nil },
		func() error { return boom },
		func() error { return nil },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if err := Run(2); err != nil {
		t.Fatalf("empty Run = %v, want nil", err)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	ForEach(4, 10, func(i int) {
		if i == 5 {
			panic("worker panic")
		}
	})
}

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("unset default = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("default = %d, want 3", got)
	}
	SetDefaultWorkers(-1)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative reset: default = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestSerialPathStaysOnCallerGoroutine(t *testing.T) {
	// workers=1 must not spawn goroutines: fn observes the same goroutine
	// for every index. Detect by writing to a plain (unsynchronised) local
	// under -race; any second goroutine would trip the detector.
	sum := 0
	ForEach(1, 50, func(i int) { sum += i })
	if sum != 49*50/2 {
		t.Fatalf("sum = %d", sum)
	}
}
