package parallel

import (
	"context"
	"fmt"

	"soundboost/internal/obs"
)

// Limiter is a non-blocking admission semaphore for long-lived job
// pools. Where ForEach/Map/Run fan one batch out over workers, a Limiter
// bounds how many independent batches may be in flight at once — the
// server uses one to cap concurrent flight analyses, shedding the
// overflow with backpressure instead of queueing unboundedly. A per-name
// obs gauge (parallel.limiter.<name>.in_use) tracks the live slot count.
type Limiter struct {
	slots chan struct{}
	inUse *obs.Gauge
}

// NewLimiter builds a limiter with the given slot capacity (minimum 1).
// name labels the limiter's metrics.
func NewLimiter(name string, capacity int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	return &Limiter{
		slots: make(chan struct{}, capacity),
		inUse: obs.Default.Gauge(fmt.Sprintf("parallel.limiter.%s.in_use", name)),
	}
}

// Cap returns the limiter's slot capacity.
func (l *Limiter) Cap() int { return cap(l.slots) }

// InUse returns the number of currently held slots.
func (l *Limiter) InUse() int { return len(l.slots) }

// TryAcquire claims a slot without blocking; it reports false when the
// limiter is saturated (the caller should shed the work).
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		l.inUse.Set(float64(len(l.slots)))
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot frees or the context is done.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		l.inUse.Set(float64(len(l.slots)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by TryAcquire or Acquire. Releasing
// more than was acquired panics — it means a bookkeeping bug upstream.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
		l.inUse.Set(float64(len(l.slots)))
	default:
		panic("parallel: Limiter.Release without a held slot")
	}
}
