package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterTryAcquire(t *testing.T) {
	l := NewLimiter("test-try", 2)
	if l.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", l.Cap())
	}
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("TryAcquire failed with free slots")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire succeeded past capacity")
	}
	if got := l.InUse(); got != 2 {
		t.Fatalf("InUse() = %d, want 2", got)
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	l.Release()
	l.Release()
}

func TestLimiterAcquireContext(t *testing.T) {
	l := NewLimiter("test-ctx", 1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire on empty limiter: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full limiter = %v, want deadline exceeded", err)
	}
	l.Release()
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without a held slot did not panic")
		}
	}()
	NewLimiter("test-panic", 1).Release()
}

// TestLimiterConcurrentCap hammers the limiter from many goroutines and
// checks the in-flight count never exceeds capacity.
func TestLimiterConcurrentCap(t *testing.T) {
	const capacity = 3
	l := NewLimiter("test-conc", capacity)
	var inFlight, peak, admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !l.TryAcquire() {
					continue
				}
				admitted.Add(1)
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inFlight.Add(-1)
				l.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Errorf("peak in-flight %d exceeds capacity %d", p, capacity)
	}
	if admitted.Load() == 0 {
		t.Error("no acquisitions admitted at all")
	}
	if l.InUse() != 0 {
		t.Errorf("InUse() = %d after drain, want 0", l.InUse())
	}
}
