// Package parallel provides the bounded worker pool used by SoundBoost's
// hot paths (signature extraction, detector calibration, experiment table
// runners). Work items are dispatched by index and results land in
// index-addressed slots, so the output of every helper is bitwise
// identical regardless of worker count: workers only change wall-clock,
// never results. Passing workers == 1 (or calling SetDefaultWorkers(1))
// keeps every call on the caller's goroutine — the fully serial path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soundboost/internal/obs"
)

// Pool metrics, gated by obs.Enable: batch/item throughput counters,
// the live queue depth (items dispatched but not yet claimed by a
// worker, summed over in-flight batches), and per-worker utilization
// (busy time over batch wall time, one sample per worker per batch).
var (
	poolBatches     = obs.Default.Counter("parallel.batches")
	poolItems       = obs.Default.Counter("parallel.items")
	poolSerialItems = obs.Default.Counter("parallel.items_serial")
	poolQueueDepth  = obs.Default.Gauge("parallel.queue_depth")
	poolUtilization = obs.Default.Histogram("parallel.worker.utilization")
	poolBatchTimer  = obs.Default.Timer("parallel.batch")
)

// defaultWorkers holds the process-wide worker count configured by the
// -workers CLI flag; 0 means "use GOMAXPROCS".
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used when a
// helper is called with workers <= 0. Passing n <= 0 restores the
// GOMAXPROCS default. The CLIs thread their -workers flag through here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the effective default worker count: the value set
// by SetDefaultWorkers, or GOMAXPROCS when unset.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// resolve clamps a requested worker count to [1, n] items, applying the
// process default when the request is <= 0.
func resolve(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach calls fn(i) for every i in [0, n). With workers <= 0 the process
// default applies; with an effective worker count of 1 every call runs on
// the caller's goroutine in index order. Panics inside fn are re-raised on
// the caller's goroutine after all workers drain.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = resolve(workers, n)
	if workers == 1 {
		poolSerialItems.Add(int64(n))
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Metrics only record while the layer is enabled; the instrumented
	// branch is skipped wholesale otherwise so the hot path stays at one
	// atomic load per batch.
	instrumented := obs.Enabled()
	var batchStart time.Time
	if instrumented {
		poolBatches.Inc()
		poolItems.Add(int64(n))
		poolQueueDepth.Add(float64(n))
		batchStart = time.Now()
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked {
						panicked, panicVal = true, r
					}
					panicMu.Unlock()
				}
			}()
			var busy time.Duration
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if instrumented {
					poolQueueDepth.Add(-1)
					t0 := time.Now()
					fn(i)
					busy += time.Since(t0)
					continue
				}
				fn(i)
			}
			if instrumented {
				if wall := time.Since(batchStart); wall > 0 {
					poolUtilization.Observe(busy.Seconds() / wall.Seconds())
				}
			}
		}()
	}
	wg.Wait()
	if instrumented {
		poolBatchTimer.Observe(time.Since(batchStart))
	}
	if panicked {
		panic(panicVal)
	}
}

// Map computes fn(i) for every i in [0, n) and returns the results in
// index order. The result slice is identical for any worker count.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr computes fn(i) for every i in [0, n), returning results in index
// order. Every index runs even after a failure, so the returned error is
// always the one of the lowest failing index — deterministic for any
// worker count and schedule.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Run executes the given functions concurrently (bounded by the worker
// count) and returns the error of the lowest-index failure, if any. It is
// the fan-out primitive for heterogeneous jobs such as the analyzer's
// detector calibrations.
func Run(workers int, fns ...func() error) error {
	_, err := MapErr(workers, len(fns), func(i int) (struct{}, error) {
		return struct{}{}, fns[i]()
	})
	return err
}
