package sim

import (
	"fmt"
	"math"
)

// BatteryConfig models the flight battery. The paper's evaluation met one
// IMU-stage false positive attributed to "unstable flight caused by
// critically low battery levels" — reproducing that failure mode needs a
// battery whose sag degrades actuation.
type BatteryConfig struct {
	// CapacityWh is the pack energy (Wh). An X500-class 4S 3500 mAh pack
	// is ~52 Wh.
	CapacityWh float64
	// Cells is the series cell count.
	Cells int
	// InternalOhm is the pack's internal resistance (sag under load).
	InternalOhm float64
	// InitialSoC is the starting state of charge in (0, 1].
	InitialSoC float64
	// CriticalSoC is the level below which voltage ripple destabilises
	// actuation (and a real vehicle would enter landing failsafe).
	CriticalSoC float64
	// MotorEfficiency converts mechanical rotor power to electrical draw.
	MotorEfficiency float64
	// RippleHz and RippleAmp shape the low-battery actuation disturbance.
	RippleHz  float64
	RippleAmp float64
}

// DefaultBatteryConfig returns an X500-class 4S pack, fully charged.
func DefaultBatteryConfig() BatteryConfig {
	return BatteryConfig{
		CapacityWh:      52,
		Cells:           4,
		InternalOhm:     0.02,
		InitialSoC:      1.0,
		CriticalSoC:     0.12,
		MotorEfficiency: 0.7,
		RippleHz:        2.5,
		RippleAmp:       0.15,
	}
}

// Validate reports configuration errors.
func (c BatteryConfig) Validate() error {
	switch {
	case c.CapacityWh <= 0:
		return fmt.Errorf("sim: battery capacity %g must be positive", c.CapacityWh)
	case c.Cells < 1:
		return fmt.Errorf("sim: battery cells %d must be >= 1", c.Cells)
	case c.InitialSoC <= 0 || c.InitialSoC > 1:
		return fmt.Errorf("sim: initial SoC %g out of (0, 1]", c.InitialSoC)
	case c.CriticalSoC < 0 || c.CriticalSoC >= 1:
		return fmt.Errorf("sim: critical SoC %g out of [0, 1)", c.CriticalSoC)
	case c.MotorEfficiency <= 0 || c.MotorEfficiency > 1:
		return fmt.Errorf("sim: motor efficiency %g out of (0, 1]", c.MotorEfficiency)
	default:
		return nil
	}
}

// Battery tracks charge and produces the actuation derating factor.
type Battery struct {
	cfg  BatteryConfig
	soc  float64
	time float64
	// lastPower is the most recent electrical draw (W), for telemetry.
	lastPower float64
}

// NewBattery builds a battery after validating the config.
func NewBattery(cfg BatteryConfig) (*Battery, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Battery{cfg: cfg, soc: cfg.InitialSoC}, nil
}

// SoC returns the current state of charge in [0, 1].
func (b *Battery) SoC() float64 { return b.soc }

// Power returns the last electrical draw in watts.
func (b *Battery) Power() float64 { return b.lastPower }

// Critical reports whether the pack is below the critical level.
func (b *Battery) Critical() bool { return b.soc < b.cfg.CriticalSoC }

// cellVoltage approximates a LiPo discharge curve per cell.
func (b *Battery) cellVoltage() float64 {
	// 4.2 V full, ~3.6 V at mid charge, 3.0 V empty, with a steep knee.
	soc := b.soc
	return 3.0 + 0.6*soc + 0.6*math.Pow(soc, 6)
}

// Step drains the pack given the rotor mechanical power demand (sum of
// torque*omega over motors, in watts) over dt seconds, and returns the
// actuation factor in (0, 1]: the ratio by which the motor speed ceiling
// is derated, including low-battery ripple.
func (b *Battery) Step(mechPower, dt float64) float64 {
	elec := mechPower / b.cfg.MotorEfficiency
	b.lastPower = elec
	drain := elec * dt / 3600 / b.cfg.CapacityWh
	b.soc -= drain
	if b.soc < 0 {
		b.soc = 0
	}
	b.time += dt

	vCell := b.cellVoltage()
	// Sag: approximate current from power at pack voltage.
	vPack := vCell * float64(b.cfg.Cells)
	if vPack > 0 {
		current := elec / vPack
		vPack -= current * b.cfg.InternalOhm
	}
	nominal := 3.7 * float64(b.cfg.Cells)
	factor := vPack / nominal
	if factor > 1 {
		factor = 1
	}
	if factor < 0.5 {
		factor = 0.5
	}
	// Below critical charge the regulator struggles: actuation ripples.
	if b.soc < b.cfg.CriticalSoC && b.cfg.RippleAmp > 0 {
		depth := 1 - b.soc/b.cfg.CriticalSoC
		factor *= 1 + b.cfg.RippleAmp*depth*math.Sin(2*math.Pi*b.cfg.RippleHz*b.time)
	}
	return factor
}

// MechanicalPower returns the rotor power demand (W) for the given motor
// speeds under the vehicle's torque model.
func MechanicalPower(v VehicleConfig, motorSpeed [NumMotors]float64) float64 {
	var p float64
	for _, w := range motorSpeed {
		p += v.TorqueCoeff * w * w * w
	}
	return p
}
