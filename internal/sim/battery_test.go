package sim

import (
	"math"
	"testing"

	"soundboost/internal/mathx"
)

func TestBatteryConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*BatteryConfig)
		wantOK bool
	}{
		{"default", func(c *BatteryConfig) {}, true},
		{"zero capacity", func(c *BatteryConfig) { c.CapacityWh = 0 }, false},
		{"zero cells", func(c *BatteryConfig) { c.Cells = 0 }, false},
		{"soc above 1", func(c *BatteryConfig) { c.InitialSoC = 1.5 }, false},
		{"critical 1", func(c *BatteryConfig) { c.CriticalSoC = 1 }, false},
		{"bad efficiency", func(c *BatteryConfig) { c.MotorEfficiency = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultBatteryConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err == nil) != tt.wantOK {
				t.Errorf("Validate() = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestBatteryDrainsUnderLoad(t *testing.T) {
	b, err := NewBattery(DefaultBatteryConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := b.SoC()
	// 300 W of mechanical demand for 60 simulated seconds.
	for i := 0; i < 6000; i++ {
		b.Step(300, 0.01)
	}
	if b.SoC() >= start {
		t.Error("battery did not drain")
	}
	// ~430 W electrical for a minute on a 52 Wh pack ~ 14% drain.
	drained := start - b.SoC()
	if drained < 0.05 || drained > 0.3 {
		t.Errorf("drained %.1f%% in a minute, implausible", drained*100)
	}
	if b.Power() <= 300 {
		t.Errorf("electrical power %v should exceed mechanical", b.Power())
	}
}

func TestBatteryFactorDegradesWithCharge(t *testing.T) {
	cfg := DefaultBatteryConfig()
	full, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.InitialSoC = 0.3
	low, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fFull := full.Step(300, 0.01)
	fLow := low.Step(300, 0.01)
	if fLow >= fFull {
		t.Errorf("low-charge factor %v not below full-charge %v", fLow, fFull)
	}
	if fFull > 1 || fLow < 0.5 {
		t.Errorf("factors out of range: %v, %v", fFull, fLow)
	}
}

func TestBatteryCriticalRipple(t *testing.T) {
	cfg := DefaultBatteryConfig()
	cfg.InitialSoC = 0.05 // below critical
	b, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Critical() {
		t.Fatal("5% SoC not critical")
	}
	var minF, maxF = math.Inf(1), math.Inf(-1)
	for i := 0; i < 200; i++ {
		f := b.Step(300, 0.005)
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if maxF-minF < 0.01 {
		t.Errorf("no ripple below critical charge: range %v", maxF-minF)
	}
}

func TestBatterySoCFloor(t *testing.T) {
	cfg := DefaultBatteryConfig()
	cfg.CapacityWh = 0.001
	b, err := NewBattery(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		b.Step(500, 0.1)
	}
	if b.SoC() < 0 {
		t.Errorf("SoC went negative: %v", b.SoC())
	}
}

func TestMechanicalPowerHover(t *testing.T) {
	v := DefaultVehicleConfig()
	w := v.HoverMotorSpeed()
	p := MechanicalPower(v, [NumMotors]float64{w, w, w, w})
	// An X500-class quad hovers at roughly 150-300 W mechanical.
	if p < 100 || p > 400 {
		t.Errorf("hover mechanical power %v W implausible", p)
	}
}

// The paper's false-positive mechanism: a critically low battery makes
// hover visibly less stable.
func TestLowBatteryDestabilisesHover(t *testing.T) {
	accelStd := func(batt *BatteryConfig, seed int64) float64 {
		cfg := DefaultWorldConfig()
		cfg.Seed = seed
		cfg.Battery = batt
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		recs := w.Run(HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 10})
		var sum, sumSq float64
		n := 0
		for _, r := range recs[len(recs)/2:] {
			sum += r.TrueAccel.Z
			sumSq += r.TrueAccel.Z * r.TrueAccel.Z
			n++
		}
		mean := sum / float64(n)
		return math.Sqrt(sumSq/float64(n) - mean*mean)
	}
	healthy := accelStd(nil, 5)
	lowCfg := DefaultBatteryConfig()
	lowCfg.InitialSoC = 0.06
	low := accelStd(&lowCfg, 5)
	if low < 1.5*healthy {
		t.Errorf("low-battery accel std %v not much above healthy %v", low, healthy)
	}
}

func TestWorldRejectsBadBattery(t *testing.T) {
	cfg := DefaultWorldConfig()
	bad := DefaultBatteryConfig()
	bad.CapacityWh = -1
	cfg.Battery = &bad
	if _, err := NewWorld(cfg); err == nil {
		t.Error("invalid battery accepted")
	}
}
