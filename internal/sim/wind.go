package sim

import (
	"math"
	"math/rand"

	"soundboost/internal/mathx"
)

// WindConfig parameterises the gust model.
type WindConfig struct {
	// Mean is the steady wind vector in NED (m/s).
	Mean mathx.Vec3
	// GustStd is the standard deviation of the gust process (m/s).
	GustStd float64
	// GustTau is the gust correlation time (s); larger values give slower,
	// rolling gusts, smaller values choppier air.
	GustTau float64
}

// CalmWind returns still air.
func CalmWind() WindConfig { return WindConfig{} }

// BreezyWind returns a light-breeze condition (~2 m/s mean, mild gusts).
func BreezyWind() WindConfig {
	return WindConfig{Mean: mathx.Vec3{X: 1.5, Y: 1.0}, GustStd: 0.8, GustTau: 3}
}

// GustyWind returns the windy outdoor condition used for robustness
// experiments (~4 m/s mean with strong gusts).
func GustyWind() WindConfig {
	return WindConfig{Mean: mathx.Vec3{X: 3.0, Y: 2.0}, GustStd: 2.0, GustTau: 2}
}

// Wind generates a temporally-correlated wind velocity via an
// Ornstein-Uhlenbeck process around the mean (a light-weight stand-in for
// the Dryden turbulence spectrum).
type Wind struct {
	cfg  WindConfig
	rng  *rand.Rand
	gust mathx.Vec3
}

// NewWind builds a wind process; rng must be non-nil.
func NewWind(cfg WindConfig, rng *rand.Rand) *Wind {
	return &Wind{cfg: cfg, rng: rng}
}

// Step advances the gust process by dt and returns the total wind vector.
func (w *Wind) Step(dt float64) mathx.Vec3 {
	if w.cfg.GustStd > 0 && w.cfg.GustTau > 0 {
		decay := math.Exp(-dt / w.cfg.GustTau)
		drive := w.cfg.GustStd * math.Sqrt(1-decay*decay)
		w.gust = w.gust.Scale(decay).Add(mathx.Vec3{
			X: w.rng.NormFloat64() * drive,
			Y: w.rng.NormFloat64() * drive,
			Z: w.rng.NormFloat64() * drive * 0.3, // vertical gusts are weaker
		})
	}
	return w.cfg.Mean.Add(w.gust)
}

// Current returns the wind vector without advancing the process.
func (w *Wind) Current() mathx.Vec3 { return w.cfg.Mean.Add(w.gust) }
