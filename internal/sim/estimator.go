package sim

import (
	"math"

	"soundboost/internal/mathx"
	"soundboost/internal/sensors"
)

// Estimator is the autopilot's onboard navigation filter: a complementary
// filter that dead-reckons attitude and velocity from the IMU at high rate
// and corrects position/velocity toward GPS fixes and tilt toward the
// accelerometer's gravity direction. It deliberately trusts its sensors,
// which is what makes GPS spoofing and IMU biasing effective against the
// vehicle — exactly the vulnerability SoundBoost diagnoses post hoc.
type Estimator struct {
	// gains
	tiltGain float64 // accelerometer tilt correction gain
	yawGain  float64 // compass correction gain
	posGain  float64 // GPS position correction gain
	velGain  float64 // GPS velocity correction gain
	// innovation gates: GPS corrections are clamped to these magnitudes
	// per fix, mirroring the innovation gating of PX4's EKF. Gating keeps
	// a spoofed fix from instantaneously teleporting the estimate, which
	// bounds (but does not prevent) attack-induced drift.
	posGate float64 // m
	velGate float64 // m/s

	nav     NavState
	accBody mathx.Vec3 // last IMU specific force
	init    bool
}

// NewEstimator builds the filter with standard complementary gains.
func NewEstimator() *Estimator {
	return &Estimator{
		tiltGain: 1.0,
		yawGain:  1.0,
		posGain:  2.0,
		velGain:  3.0,
		posGate:  4.0,
		velGate:  2.0,
	}
}

// Init seeds the filter with a known starting state (pre-arm alignment).
func (e *Estimator) Init(pos, vel mathx.Vec3, att mathx.Quat) {
	e.nav = NavState{Pos: pos, Vel: vel, Att: att}
	e.init = true
}

// Nav returns the current state estimate.
func (e *Estimator) Nav() NavState { return e.nav }

// PredictIMU advances the estimate by dt using an IMU measurement. This is
// the high-rate path (every IMU sample).
func (e *Estimator) PredictIMU(m sensors.IMUMeasurement, dt float64) {
	if !e.init {
		e.Init(mathx.Vec3{}, mathx.Vec3{}, mathx.IdentityQuat())
	}
	e.accBody = m.Accel
	e.nav.GyroW = m.Gyro

	// Attitude: integrate gyro, then nudge tilt toward the accelerometer's
	// gravity direction when the specific force magnitude is near 1 g
	// (i.e. the vehicle is not aggressively accelerating).
	e.nav.Att = e.nav.Att.Integrate(m.Gyro, dt)
	fMag := m.Accel.Norm()
	if fMag > 0.8*sensors.Gravity && fMag < 1.2*sensors.Gravity {
		// Accelerometer's view of "down" in body frame is -accel direction.
		downBody := m.Accel.Scale(-1 / fMag)
		predDown := e.nav.Att.RotateInv(mathx.Vec3{Z: 1})
		// Body-rate correction that rotates predDown toward downBody: with
		// q <- q*exp(w dt), predDown evolves as predDown - dt*(w x predDown),
		// so w = downBody x predDown moves it the right way.
		corrRate := downBody.Cross(predDown).Scale(e.tiltGain)
		e.nav.Att = e.nav.Att.Integrate(corrRate, dt)
	}

	// Velocity & position dead reckoning: rotate specific force to world,
	// add gravity back.
	accWorld := e.nav.Att.Rotate(m.Accel).Add(mathx.Vec3{Z: sensors.Gravity})
	e.nav.Vel = e.nav.Vel.Add(accWorld.Scale(dt))
	e.nav.Pos = e.nav.Pos.Add(e.nav.Vel.Scale(dt))
}

// CorrectGPS blends a GPS fix into the estimate. This is the low-rate path
// (every fix). dt is the time since the previous correction. Innovations
// larger than the gates are clamped (partial trust), like a real EKF.
func (e *Estimator) CorrectGPS(f sensors.GPSFix, dt float64) {
	if !f.Valid {
		return
	}
	a := mathx.Clamp(e.posGain*dt, 0, 1)
	b := mathx.Clamp(e.velGain*dt, 0, 1)
	posInnov := gateVec(f.Pos.Sub(e.nav.Pos), e.posGate)
	velInnov := gateVec(f.Vel.Sub(e.nav.Vel), e.velGate)
	e.nav.Pos = e.nav.Pos.Add(posInnov.Scale(a))
	e.nav.Vel = e.nav.Vel.Add(velInnov.Scale(b))
}

// gateVec clamps a vector's magnitude to gate (0 disables gating).
func gateVec(v mathx.Vec3, gate float64) mathx.Vec3 {
	if gate <= 0 {
		return v
	}
	n := v.Norm()
	if n <= gate {
		return v
	}
	return v.Scale(gate / n)
}

// CorrectYaw blends a compass heading (radians) into the attitude estimate.
func (e *Estimator) CorrectYaw(heading float64, dt float64) {
	roll, pitch, yaw := e.nav.Att.Euler()
	diff := wrapAngle(heading - yaw)
	yaw += mathx.Clamp(e.yawGain*dt, 0, 1) * diff
	e.nav.Att = mathx.QuatFromEuler(roll, pitch, yaw)
}

func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
