package sim

import (
	"math"
	"testing"

	"soundboost/internal/mathx"
)

func TestVehicleConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*VehicleConfig)
		wantOK bool
	}{
		{"default ok", func(c *VehicleConfig) {}, true},
		{"zero mass", func(c *VehicleConfig) { c.Mass = 0 }, false},
		{"negative inertia", func(c *VehicleConfig) { c.Inertia.Y = -1 }, false},
		{"zero arm", func(c *VehicleConfig) { c.ArmLength = 0 }, false},
		{"zero tau", func(c *VehicleConfig) { c.MotorTau = 0 }, false},
		{"zero thrust coeff", func(c *VehicleConfig) { c.ThrustCoeff = 0 }, false},
		{"max below min", func(c *VehicleConfig) { c.MaxMotorSpeed = 50 }, false},
		{"zero blades", func(c *VehicleConfig) { c.Blades = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultVehicleConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() err = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestHoverMotorSpeedBalancesGravity(t *testing.T) {
	cfg := DefaultVehicleConfig()
	w := cfg.HoverMotorSpeed()
	totalThrust := float64(NumMotors) * cfg.MotorThrust(w)
	if math.Abs(totalThrust-cfg.Mass*gravity) > 1e-9 {
		t.Errorf("hover thrust %v != weight %v", totalThrust, cfg.Mass*gravity)
	}
	// Blade passing frequency should land near the paper's 200 Hz group.
	bpf := w / (2 * math.Pi) * float64(cfg.Blades)
	if bpf < 150 || bpf > 300 {
		t.Errorf("hover blade-passing frequency %v Hz outside the 200 Hz group", bpf)
	}
}

func TestMotorPositionsSymmetric(t *testing.T) {
	cfg := DefaultVehicleConfig()
	var sum mathx.Vec3
	for i := 0; i < NumMotors; i++ {
		sum = sum.Add(cfg.MotorPosition(i))
	}
	if sum.Norm() > 1e-12 {
		t.Errorf("motor positions not symmetric: sum %v", sum)
	}
	// Spin directions must cancel.
	var spin float64
	for i := 0; i < NumMotors; i++ {
		spin += MotorSpinDir(i)
	}
	if spin != 0 {
		t.Errorf("spin directions sum to %v, want 0", spin)
	}
}

func TestDynamicsFreeFall(t *testing.T) {
	cfg := DefaultVehicleConfig()
	cfg.MinMotorSpeed = 0
	cfg.LinearDrag = 0
	dyn, err := NewDynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := State{Att: mathx.IdentityQuat()}
	dt := 1.0 / 500
	for i := 0; i < 500; i++ { // one second, motors off
		s = dyn.Step(s, [NumMotors]float64{}, mathx.Vec3{}, dt)
	}
	// After 1 s of free fall: v ~ g, z ~ g/2.
	if math.Abs(s.Vel.Z-gravity) > 0.1 {
		t.Errorf("free-fall velocity %v, want ~%v", s.Vel.Z, gravity)
	}
	if math.Abs(s.Pos.Z-gravity/2) > 0.1 {
		t.Errorf("free-fall drop %v, want ~%v", s.Pos.Z, gravity/2)
	}
}

func TestDynamicsHoverEquilibrium(t *testing.T) {
	cfg := DefaultVehicleConfig()
	dyn, err := NewDynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hover := cfg.HoverMotorSpeed()
	s := State{Att: mathx.IdentityQuat()}
	for i := range s.MotorSpeed {
		s.MotorSpeed[i] = hover
	}
	cmd := [NumMotors]float64{hover, hover, hover, hover}
	dt := 1.0 / 500
	for i := 0; i < 2500; i++ { // five seconds
		s = dyn.Step(s, cmd, mathx.Vec3{}, dt)
	}
	if s.Pos.Norm() > 0.01 {
		t.Errorf("hover drifted %v m", s.Pos.Norm())
	}
	if s.AngVel.Norm() > 1e-9 {
		t.Errorf("hover picked up rotation %v", s.AngVel)
	}
}

func TestDynamicsYawTorqueFromSpinImbalance(t *testing.T) {
	cfg := DefaultVehicleConfig()
	dyn, err := NewDynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hover := cfg.HoverMotorSpeed()
	s := State{Att: mathx.IdentityQuat()}
	for i := range s.MotorSpeed {
		s.MotorSpeed[i] = hover
	}
	// Speed up the CCW pair, slow the CW pair: net reaction torque must yaw
	// the vehicle.
	cmd := [NumMotors]float64{hover * 1.05, hover * 1.05, hover * 0.95, hover * 0.95}
	dt := 1.0 / 500
	for i := 0; i < 250; i++ {
		s = dyn.Step(s, cmd, mathx.Vec3{}, dt)
	}
	if math.Abs(s.AngVel.Z) < 0.01 {
		t.Errorf("no yaw rate from spin imbalance: %v", s.AngVel)
	}
	if math.Abs(s.AngVel.X) > math.Abs(s.AngVel.Z)/10 || math.Abs(s.AngVel.Y) > math.Abs(s.AngVel.Z)/10 {
		t.Errorf("spin imbalance produced roll/pitch: %v", s.AngVel)
	}
}

func TestSpecificForceAtHover(t *testing.T) {
	s := State{Att: mathx.IdentityQuat(), Accel: mathx.Vec3{}}
	sf := s.SpecificForceBody()
	want := mathx.Vec3{Z: -gravity}
	if sf.Sub(want).Norm() > 1e-9 {
		t.Errorf("hover specific force %v, want %v", sf, want)
	}
}

func TestPIDProportional(t *testing.T) {
	p := PID{Kp: 2}
	if got := p.Update(1.5, 0.01); got != 3 {
		t.Errorf("P output = %v, want 3", got)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	p := PID{Ki: 1}
	var out float64
	for i := 0; i < 100; i++ {
		out = p.Update(1, 0.01)
	}
	if math.Abs(out-1.0) > 1e-9 {
		t.Errorf("I output after 1s of unit error = %v, want 1", out)
	}
}

func TestPIDIntegralClamp(t *testing.T) {
	p := PID{Ki: 1, IntLimit: 0.5}
	var out float64
	for i := 0; i < 1000; i++ {
		out = p.Update(1, 0.01)
	}
	if out > 0.5+1e-9 {
		t.Errorf("integral exceeded clamp: %v", out)
	}
}

func TestPIDOutputLimit(t *testing.T) {
	p := PID{Kp: 100, OutLimit: 1}
	if got := p.Update(5, 0.01); got != 1 {
		t.Errorf("clamped output = %v, want 1", got)
	}
	if got := p.Update(-5, 0.01); got < -1.001 {
		t.Errorf("clamped output = %v, want >= -1", got)
	}
}

func TestPIDReset(t *testing.T) {
	p := PID{Kp: 1, Ki: 1, Kd: 1}
	p.Update(1, 0.01)
	p.Update(2, 0.01)
	p.Reset()
	q := PID{Kp: 1, Ki: 1, Kd: 1}
	if got, want := p.Update(1, 0.01), q.Update(1, 0.01); got != want {
		t.Errorf("after Reset, Update = %v, fresh = %v", got, want)
	}
}

func TestWorldHoverHoldsPosition(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Seed = 3
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mission := HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 12}
	recs := w.Run(mission)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	// After settling, the vehicle must stay within 1.5 m of the hover point.
	var worst float64
	for _, r := range recs[len(recs)/2:] {
		if d := r.TruePos.Sub(mission.Point).Norm(); d > worst {
			worst = d
		}
	}
	if worst > 1.5 {
		t.Errorf("hover error %v m, want < 1.5", worst)
	}
}

func TestWorldHoverSurvivesWind(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Wind = GustyWind()
	cfg.Seed = 4
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mission := HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 12}
	recs := w.Run(mission)
	var worst float64
	for _, r := range recs[len(recs)/2:] {
		if d := r.TruePos.Sub(mission.Point).Norm(); d > worst {
			worst = d
		}
	}
	if worst > 4.0 {
		t.Errorf("hover error in gusts %v m, want < 4", worst)
	}
}

func TestWorldWaypointTracking(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Seed = 5
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mission := NewWaypointMission("test", mathx.Vec3{Z: -10}, []Waypoint{
		{Pos: mathx.Vec3{X: 10, Z: -10}, Speed: 3, HoldSeconds: 3},
	})
	recs := w.Run(mission)
	final := recs[len(recs)-1]
	if d := final.TruePos.Sub(mathx.Vec3{X: 10, Z: -10}).Norm(); d > 1.5 {
		t.Errorf("final position error %v m, want < 1.5", d)
	}
}

func TestWorldRecordsGroundTruthAccel(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Seed = 6
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := w.Run(HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 5})
	// In steady hover, true world-frame acceleration hovers near zero.
	var sum float64
	n := 0
	for _, r := range recs[len(recs)/2:] {
		sum += r.TrueAccel.Norm()
		n++
	}
	// Sensor noise drives small corrective actuation, so a real hover sits
	// around ~1 m/s^2 of jitter; divergence would show up far above this.
	if mean := sum / float64(n); mean > 2.0 {
		t.Errorf("mean hover acceleration %v m/s^2, want small", mean)
	}
}

func TestWorldConfigValidation(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.PhysicsRate = 0
	if _, err := NewWorld(cfg); err == nil {
		t.Error("zero physics rate accepted")
	}
	cfg = DefaultWorldConfig()
	cfg.ControlRate = cfg.PhysicsRate * 2
	if _, err := NewWorld(cfg); err == nil {
		t.Error("control rate above physics rate accepted")
	}
	cfg = DefaultWorldConfig()
	cfg.Vehicle.Mass = -1
	if _, err := NewWorld(cfg); err == nil {
		t.Error("invalid vehicle accepted")
	}
}

func TestWorldDeterministicWithSeed(t *testing.T) {
	run := func() []StepRecord {
		cfg := DefaultWorldConfig()
		cfg.Seed = 42
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w.Run(HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 2})
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TruePos != b[i].TruePos || a[i].MotorSpeed != b[i].MotorSpeed {
			t.Fatalf("step %d differs between identical seeds", i)
		}
	}
}

func TestMissionSetpoints(t *testing.T) {
	h := HoverMission{Point: mathx.Vec3{X: 1, Z: -5}, Seconds: 10, Heading: 0.5}
	sp := h.Setpoint(3)
	if sp.Pos != h.Point || sp.Yaw != 0.5 {
		t.Errorf("hover setpoint = %+v", sp)
	}
	if h.Duration() != 10 || h.Name() != "hover" {
		t.Errorf("hover metadata wrong")
	}

	wm := NewWaypointMission("wm", mathx.Vec3{Z: -5}, []Waypoint{
		{Pos: mathx.Vec3{X: 6, Z: -5}, Speed: 3, HoldSeconds: 2},
		{Pos: mathx.Vec3{X: 6, Y: 6, Z: -5}, Speed: 3},
	})
	if got, want := wm.Duration(), 2.0+2+2; math.Abs(got-want) > 1e-9 {
		t.Errorf("Duration = %v, want %v", got, want)
	}
	// Mid-leg setpoint moves along the leg.
	sp = wm.Setpoint(1)
	if sp.Pos.X <= 0 || sp.Pos.X >= 6 {
		t.Errorf("mid-leg X = %v, want in (0,6)", sp.Pos.X)
	}
	if sp.VelFF.Norm() == 0 {
		t.Error("no velocity feed-forward mid-leg")
	}
	// During hold, the setpoint parks at the waypoint.
	sp = wm.Setpoint(3)
	if sp.Pos != (mathx.Vec3{X: 6, Z: -5}) {
		t.Errorf("hold setpoint = %v", sp.Pos)
	}
	// Past the end, the setpoint stays at the last waypoint.
	sp = wm.Setpoint(100)
	if sp.Pos != (mathx.Vec3{X: 6, Y: 6, Z: -5}) {
		t.Errorf("post-mission setpoint = %v", sp.Pos)
	}
}

func TestStandardMissions(t *testing.T) {
	for variant := 0; variant < 3; variant++ {
		ms := StandardMissions(variant)
		if len(ms) != 6 {
			t.Fatalf("variant %d: %d missions, want 6", variant, len(ms))
		}
		names := map[string]bool{}
		for _, m := range ms {
			if m.Duration() <= 0 {
				t.Errorf("mission %q has non-positive duration", m.Name())
			}
			names[m.Name()] = true
		}
		if len(names) != 6 {
			t.Errorf("variant %d: duplicate mission names %v", variant, names)
		}
	}
}

func TestMissionByName(t *testing.T) {
	if _, err := MissionByName("square", 0); err != nil {
		t.Errorf("square mission not found: %v", err)
	}
	if _, err := MissionByName("nonexistent", 0); err == nil {
		t.Error("unknown mission accepted")
	}
}

func TestWindProcess(t *testing.T) {
	rngWind := NewWind(GustyWind(), newRand(7))
	var sum mathx.Vec3
	const n = 10000
	for i := 0; i < n; i++ {
		sum = sum.Add(rngWind.Step(0.01))
	}
	mean := sum.Scale(1.0 / n)
	want := GustyWind().Mean
	if mean.Sub(want).Norm() > 1.0 {
		t.Errorf("wind mean %v, want ~%v", mean, want)
	}
	calm := NewWind(CalmWind(), newRand(8))
	if v := calm.Step(0.01); v.Norm() != 0 {
		t.Errorf("calm wind = %v, want zero", v)
	}
	if v := calm.Current(); v.Norm() != 0 {
		t.Errorf("calm Current = %v, want zero", v)
	}
}

func TestEstimatorTracksTruthInBenignFlight(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Seed = 9
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := w.Run(HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 10})
	var sumErr float64
	n := 0
	for _, r := range recs[len(recs)/2:] {
		sumErr += r.EstPos.Sub(r.TruePos).Norm()
		n++
	}
	if mean := sumErr / float64(n); mean > 1.5 {
		t.Errorf("mean estimation error %v m, want < 1.5", mean)
	}
}
