// Package sim implements the quadcopter substrate of the SoundBoost
// reproduction: 6-DoF rigid-body dynamics, first-order motor response, a
// motor mixer, the cascaded position/velocity/attitude/rate controller stack
// of a PX4-class autopilot, a complementary-filter navigation estimator,
// waypoint missions, and a gusty wind model.
//
// The design invariant the whole repository rests on: motor angular
// velocities are the single shared physical state. They produce thrust
// (hence the true accelerations the IMU and GPS observe) and they produce
// sound (synthesised by the acoustics package). Everything SoundBoost
// learns exploits that coupling.
package sim

import (
	"fmt"
	"math"

	"soundboost/internal/mathx"
)

// NumMotors is the rotor count of the simulated airframe (quad-X).
const NumMotors = 4

// VehicleConfig holds the physical parameters of the airframe.
type VehicleConfig struct {
	// Mass in kg.
	Mass float64
	// Inertia is the diagonal of the body inertia tensor (kg m^2).
	Inertia mathx.Vec3
	// ArmLength is the motor boom length from center (m).
	ArmLength float64
	// MotorTau is the first-order motor response time constant (s).
	MotorTau float64
	// ThrustCoeff maps motor speed squared to thrust: T = k_T * w^2 (N s^2).
	ThrustCoeff float64
	// TorqueCoeff maps motor speed squared to reaction torque (N m s^2).
	TorqueCoeff float64
	// MaxMotorSpeed is the rotor speed ceiling (rad/s).
	MaxMotorSpeed float64
	// MinMotorSpeed is the idle rotor speed while armed (rad/s).
	MinMotorSpeed float64
	// LinearDrag is the translational drag coefficient (N s/m).
	LinearDrag float64
	// AngularDrag is the rotational drag coefficient (N m s/rad).
	AngularDrag float64
	// Blades is the propeller blade count (sets the blade-passing frequency).
	Blades int
}

// DefaultVehicleConfig models a Holybro X500-class quadcopter: ~2 kg takeoff
// mass, 0.25 m arms, 2-blade 10-inch props hovering near 105 rev/s — which
// puts the blade-passing line near 210 Hz, matching the paper's "200 Hz
// group".
func DefaultVehicleConfig() VehicleConfig {
	return VehicleConfig{
		Mass:          2.0,
		Inertia:       mathx.Vec3{X: 0.022, Y: 0.022, Z: 0.038},
		ArmLength:     0.25,
		MotorTau:      0.05,
		ThrustCoeff:   1.125e-5,
		TorqueCoeff:   1.8e-7,
		MaxMotorSpeed: 1150,
		MinMotorSpeed: 120,
		Blades:        2,
		LinearDrag:    0.35,
		AngularDrag:   0.005,
	}
}

// Validate reports configuration errors that would break the dynamics.
func (c VehicleConfig) Validate() error {
	switch {
	case c.Mass <= 0:
		return fmt.Errorf("sim: mass %g must be positive", c.Mass)
	case c.Inertia.X <= 0 || c.Inertia.Y <= 0 || c.Inertia.Z <= 0:
		return fmt.Errorf("sim: inertia %v must be positive", c.Inertia)
	case c.ArmLength <= 0:
		return fmt.Errorf("sim: arm length %g must be positive", c.ArmLength)
	case c.MotorTau <= 0:
		return fmt.Errorf("sim: motor tau %g must be positive", c.MotorTau)
	case c.ThrustCoeff <= 0:
		return fmt.Errorf("sim: thrust coefficient %g must be positive", c.ThrustCoeff)
	case c.MaxMotorSpeed <= c.MinMotorSpeed:
		return fmt.Errorf("sim: max motor speed %g must exceed min %g", c.MaxMotorSpeed, c.MinMotorSpeed)
	case c.Blades < 1:
		return fmt.Errorf("sim: blade count %d must be at least 1", c.Blades)
	default:
		return nil
	}
}

// HoverMotorSpeed returns the per-motor speed (rad/s) that balances gravity.
func (c VehicleConfig) HoverMotorSpeed() float64 {
	return math.Sqrt(c.Mass * gravity / (NumMotors * c.ThrustCoeff))
}

// MotorThrust returns the thrust (N) produced at motor speed w (rad/s).
func (c VehicleConfig) MotorThrust(w float64) float64 {
	return c.ThrustCoeff * w * w
}

// MotorPosition returns the body-frame position of motor i for the quad-X
// layout. Motor order: 0 front-right, 1 rear-left, 2 front-left,
// 3 rear-right (PX4 numbering). NED body frame: +x forward, +y right.
func (c VehicleConfig) MotorPosition(i int) mathx.Vec3 {
	d := c.ArmLength / math.Sqrt2
	switch i {
	case 0:
		return mathx.Vec3{X: d, Y: d}
	case 1:
		return mathx.Vec3{X: -d, Y: -d}
	case 2:
		return mathx.Vec3{X: d, Y: -d}
	case 3:
		return mathx.Vec3{X: -d, Y: d}
	default:
		panic(fmt.Sprintf("sim: motor index %d out of range", i))
	}
}

// MotorSpinDir returns +1 for CCW motors (0, 1) and -1 for CW motors (2, 3).
func MotorSpinDir(i int) float64 {
	if i == 0 || i == 1 {
		return 1
	}
	return -1
}

const gravity = 9.80665

// State is the complete physical state of the vehicle.
type State struct {
	// Time is simulation time in seconds.
	Time float64
	// Pos is position in the local NED world frame (m); Z is negative above
	// the origin.
	Pos mathx.Vec3
	// Vel is world-frame velocity (m/s).
	Vel mathx.Vec3
	// Att is the body-to-world attitude quaternion.
	Att mathx.Quat
	// AngVel is the body-frame angular velocity (rad/s).
	AngVel mathx.Vec3
	// MotorSpeed holds the current rotor speeds (rad/s).
	MotorSpeed [NumMotors]float64
	// Accel is the world-frame acceleration (m/s^2) from the last dynamics
	// step; recorded so sensors and logs can read ground truth.
	Accel mathx.Vec3
}

// SpecificForceBody returns the specific force an ideal accelerometer
// strapped to the body would measure: f = R^T (a - g) where a is inertial
// acceleration and g = (0,0,+9.81) in NED.
func (s State) SpecificForceBody() mathx.Vec3 {
	g := mathx.Vec3{Z: gravity}
	return s.Att.RotateInv(s.Accel.Sub(g))
}

// Dynamics integrates the rigid-body equations of motion.
type Dynamics struct {
	cfg VehicleConfig
}

// NewDynamics builds the integrator after validating the config.
func NewDynamics(cfg VehicleConfig) (*Dynamics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Dynamics{cfg: cfg}, nil
}

// Config returns the vehicle configuration.
func (d *Dynamics) Config() VehicleConfig { return d.cfg }

// Step advances the state by dt seconds given per-motor speed commands
// (rad/s) and the current world-frame wind velocity (m/s). It uses
// semi-implicit Euler integration, which is stable for the stiff motor +
// attitude dynamics at the simulation rates used here (>= 250 Hz).
func (d *Dynamics) Step(s State, motorCmd [NumMotors]float64, wind mathx.Vec3, dt float64) State {
	c := d.cfg

	// Motor first-order response toward the (clamped) command.
	for i := 0; i < NumMotors; i++ {
		cmd := mathx.Clamp(motorCmd[i], c.MinMotorSpeed, c.MaxMotorSpeed)
		s.MotorSpeed[i] += (cmd - s.MotorSpeed[i]) * dt / c.MotorTau
	}

	// Thrust and torques in the body frame.
	var totalThrust float64
	var torque mathx.Vec3
	for i := 0; i < NumMotors; i++ {
		w := s.MotorSpeed[i]
		f := c.ThrustCoeff * w * w
		totalThrust += f
		p := c.MotorPosition(i)
		// Thrust acts along -z body; torque = r x F.
		torque.X += -p.Y * f
		torque.Y += p.X * f
		torque.Z += MotorSpinDir(i) * c.TorqueCoeff * w * w
	}
	// Translational dynamics (world/NED frame).
	thrustWorld := s.Att.Rotate(mathx.Vec3{Z: -totalThrust})
	relWind := wind.Sub(s.Vel)
	drag := relWind.Scale(c.LinearDrag)
	accel := thrustWorld.Add(drag).Scale(1 / c.Mass).Add(mathx.Vec3{Z: gravity})

	// Rotational dynamics (body frame): I*dw = tau - w x (I w) - drag.
	iw := s.AngVel.Hadamard(c.Inertia)
	gyroTorque := s.AngVel.Cross(iw)
	angDrag := s.AngVel.Scale(c.AngularDrag)
	angAccel := torque.Sub(gyroTorque).Sub(angDrag)
	angAccel = mathx.Vec3{
		X: angAccel.X / c.Inertia.X,
		Y: angAccel.Y / c.Inertia.Y,
		Z: angAccel.Z / c.Inertia.Z,
	}

	// Semi-implicit Euler: update velocities first, then positions.
	s.Vel = s.Vel.Add(accel.Scale(dt))
	s.Pos = s.Pos.Add(s.Vel.Scale(dt))
	s.AngVel = s.AngVel.Add(angAccel.Scale(dt))
	s.Att = s.Att.Integrate(s.AngVel, dt)
	s.Accel = accel
	s.Time += dt
	return s
}
