package sim

import (
	"math"

	"soundboost/internal/mathx"
)

// PID is a scalar proportional-integral-derivative controller with
// integrator clamping and an output limit.
type PID struct {
	// Kp, Ki, Kd are the standard gains.
	Kp, Ki, Kd float64
	// IntLimit bounds the absolute value of the integral term contribution.
	IntLimit float64
	// OutLimit bounds the absolute output (0 disables the bound).
	OutLimit float64

	integral float64
	prevErr  float64
	havePrev bool
}

// Update advances the controller by dt with the given error and returns the
// control output.
func (p *PID) Update(err, dt float64) float64 {
	p.integral += err * dt
	if p.Ki > 0 && p.IntLimit > 0 {
		bound := p.IntLimit / p.Ki
		p.integral = mathx.Clamp(p.integral, -bound, bound)
	}
	var deriv float64
	if p.havePrev && dt > 0 {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.havePrev = true
	out := p.Kp*err + p.Ki*p.integral + p.Kd*deriv
	if p.OutLimit > 0 {
		out = mathx.Clamp(out, -p.OutLimit, p.OutLimit)
	}
	return out
}

// Reset clears the integrator and derivative history.
func (p *PID) Reset() {
	p.integral = 0
	p.prevErr = 0
	p.havePrev = false
}

// PIDVec3 bundles three independent scalar PIDs for vector signals.
type PIDVec3 struct {
	X, Y, Z PID
}

// NewPIDVec3 builds a PIDVec3 with identical gains on all axes.
func NewPIDVec3(kp, ki, kd, intLimit, outLimit float64) PIDVec3 {
	mk := func() PID { return PID{Kp: kp, Ki: ki, Kd: kd, IntLimit: intLimit, OutLimit: outLimit} }
	return PIDVec3{X: mk(), Y: mk(), Z: mk()}
}

// Update advances all three axes.
func (p *PIDVec3) Update(err mathx.Vec3, dt float64) mathx.Vec3 {
	return mathx.Vec3{
		X: p.X.Update(err.X, dt),
		Y: p.Y.Update(err.Y, dt),
		Z: p.Z.Update(err.Z, dt),
	}
}

// Reset clears all three axes.
func (p *PIDVec3) Reset() {
	p.X.Reset()
	p.Y.Reset()
	p.Z.Reset()
}

// Setpoint is the navigation target handed to the controller each step.
type Setpoint struct {
	// Pos is the desired NED position (m).
	Pos mathx.Vec3
	// VelFF is an optional velocity feed-forward (m/s).
	VelFF mathx.Vec3
	// Yaw is the desired heading (rad).
	Yaw float64
}

// ControllerConfig holds the cascade gains. Defaults are tuned for the
// DefaultVehicleConfig airframe and verified by the hover/waypoint tests.
type ControllerConfig struct {
	PosP       float64 // position error -> velocity setpoint
	MaxVel     float64 // m/s horizontal velocity limit
	MaxVertVel float64 // m/s vertical velocity limit
	VelP       float64
	VelI       float64
	VelD       float64
	MaxTilt    float64 // rad
	AttP       float64 // attitude error -> body rate setpoint
	MaxRate    float64 // rad/s
	RateP      float64
	RateI      float64
	RateD      float64
	YawP       float64
	MaxYawRate float64
}

// DefaultControllerConfig returns the tuned cascade gains.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		PosP:       1.1,
		MaxVel:     6.0,
		MaxVertVel: 3.0,
		VelP:       2.6,
		VelI:       0.6,
		VelD:       0.08,
		MaxTilt:    0.45,
		AttP:       7.0,
		MaxRate:    3.5,
		RateP:      0.12,
		RateI:      0.05,
		RateD:      0.003,
		YawP:       2.5,
		MaxYawRate: 1.5,
	}
}

// Controller is the cascaded flight controller: position P -> velocity PID
// -> attitude P -> body-rate PID -> motor mixer, the structure used by
// PX4-class autopilots (paper §II-A).
type Controller struct {
	vehicle VehicleConfig
	cfg     ControllerConfig
	velPID  PIDVec3
	ratePID PIDVec3
}

// NewController builds a controller for the given airframe.
func NewController(vehicle VehicleConfig, cfg ControllerConfig) *Controller {
	return &Controller{
		vehicle: vehicle,
		cfg:     cfg,
		velPID:  NewPIDVec3(cfg.VelP, cfg.VelI, cfg.VelD, 3.0, 0),
		ratePID: NewPIDVec3(cfg.RateP, cfg.RateI, cfg.RateD, 0.3, 0),
	}
}

// Reset clears all integrators (used on arming).
func (c *Controller) Reset() {
	c.velPID.Reset()
	c.ratePID.Reset()
}

// NavState is the controller's view of the vehicle — the *estimated* state
// from the navigation filter, not ground truth. Sensor attacks corrupt this
// view, which is exactly how they bend the flight path.
type NavState struct {
	Pos   mathx.Vec3
	Vel   mathx.Vec3
	Att   mathx.Quat
	GyroW mathx.Vec3 // body angular velocity as measured by the gyro
}

// Update runs one control step and returns per-motor speed commands (rad/s).
func (c *Controller) Update(nav NavState, sp Setpoint, dt float64) [NumMotors]float64 {
	cfg := c.cfg
	v := c.vehicle

	// --- Position loop: P controller to a velocity setpoint.
	posErr := sp.Pos.Sub(nav.Pos)
	velSp := posErr.Scale(cfg.PosP).Add(sp.VelFF)
	// Limit horizontal and vertical speed separately.
	h := math.Hypot(velSp.X, velSp.Y)
	if h > cfg.MaxVel {
		scale := cfg.MaxVel / h
		velSp.X *= scale
		velSp.Y *= scale
	}
	velSp.Z = mathx.Clamp(velSp.Z, -cfg.MaxVertVel, cfg.MaxVertVel)

	// --- Velocity loop: PID to a desired world acceleration.
	accSp := c.velPID.Update(velSp.Sub(nav.Vel), dt)

	// --- Acceleration to thrust vector and attitude setpoint.
	// Desired specific thrust (world) must cancel gravity: f = a_sp - g.
	fWorld := accSp.Sub(mathx.Vec3{Z: gravity})
	// The commanded thrust direction is -f normalized... thrust acts along
	// -z body, so the desired body z axis is -f/|f|.
	fMag := fWorld.Norm()
	if fMag < 1e-6 {
		fWorld = mathx.Vec3{Z: -gravity}
		fMag = gravity
	}
	zDes := fWorld.Scale(-1 / fMag)

	// Limit tilt: the angle between desired body z and world down (-z up in
	// NED means body z points to +z when level... body z desired for hover
	// is (0,0,1)). zDes.Z close to 1 means level.
	if zDes.Z < math.Cos(cfg.MaxTilt) {
		// Pull the vector toward vertical while keeping its heading.
		horiz := math.Hypot(zDes.X, zDes.Y)
		if horiz > 1e-9 {
			maxHoriz := math.Sin(cfg.MaxTilt)
			scale := maxHoriz / horiz
			zDes.X *= scale
			zDes.Y *= scale
			zDes.Z = math.Cos(cfg.MaxTilt)
		}
	}

	// Build the desired attitude from zDes and the yaw setpoint.
	attSp := attitudeFromZAndYaw(zDes, sp.Yaw)

	// Total thrust command: project desired force onto the actual body z
	// axis so thrust tracks while attitude converges.
	bodyZ := nav.Att.Rotate(mathx.Vec3{Z: 1})
	thrust := v.Mass * fMag * math.Max(0.3, bodyZ.Neg().Dot(zDes.Neg()))

	// --- Attitude loop: quaternion error P controller to body rates.
	attErr := nav.Att.Conj().Mul(attSp)
	if attErr.W < 0 { // take the short way around
		attErr = mathx.Quat{W: -attErr.W, X: -attErr.X, Y: -attErr.Y, Z: -attErr.Z}
	}
	rateSp := mathx.Vec3{X: attErr.X, Y: attErr.Y, Z: attErr.Z}.Scale(2 * cfg.AttP)
	rateSp = rateSp.Clamp(-cfg.MaxRate, cfg.MaxRate)
	rateSp.Z = mathx.Clamp(rateSp.Z, -cfg.MaxYawRate, cfg.MaxYawRate)

	// --- Rate loop: PID to body torques.
	torque := c.ratePID.Update(rateSp.Sub(nav.GyroW), dt)
	torque = mathx.Vec3{
		X: torque.X * v.Inertia.X / 0.02, // normalize gains across airframes
		Y: torque.Y * v.Inertia.Y / 0.02,
		Z: torque.Z * v.Inertia.Z / 0.02,
	}

	return c.mix(thrust, torque)
}

// mix inverts the quad-X geometry to per-motor thrusts and converts to
// rotor speed commands. It matches the torque model in Dynamics.Step:
// tau_x = -sum(y_i f_i), tau_y = sum(x_i f_i), tau_z = sum(s_i kQ w_i^2).
func (c *Controller) mix(thrust float64, torque mathx.Vec3) [NumMotors]float64 {
	v := c.vehicle
	d := v.ArmLength / math.Sqrt2
	kc := v.TorqueCoeff / v.ThrustCoeff // yaw torque per unit thrust

	f := [NumMotors]float64{
		thrust/4 - torque.X/(4*d) + torque.Y/(4*d) + torque.Z/(4*kc),
		thrust/4 + torque.X/(4*d) - torque.Y/(4*d) + torque.Z/(4*kc),
		thrust/4 + torque.X/(4*d) + torque.Y/(4*d) - torque.Z/(4*kc),
		thrust/4 - torque.X/(4*d) - torque.Y/(4*d) - torque.Z/(4*kc),
	}
	var cmd [NumMotors]float64
	for i, fi := range f {
		if fi < 0 {
			fi = 0
		}
		w := math.Sqrt(fi / v.ThrustCoeff)
		cmd[i] = mathx.Clamp(w, v.MinMotorSpeed, v.MaxMotorSpeed)
	}
	return cmd
}

// attitudeFromZAndYaw constructs the attitude whose body z axis equals zDes
// (unit vector, world frame) and whose heading is yaw.
func attitudeFromZAndYaw(zDes mathx.Vec3, yaw float64) mathx.Quat {
	// Desired x axis: heading direction projected onto the plane normal to z.
	xC := mathx.Vec3{X: math.Cos(yaw), Y: math.Sin(yaw)}
	yB := zDes.Cross(xC)
	n := yB.Norm()
	if n < 1e-9 {
		// zDes parallel to heading vector (pathological); fall back to level.
		return mathx.QuatFromEuler(0, 0, yaw)
	}
	yB = yB.Scale(1 / n)
	xB := yB.Cross(zDes)
	// Rotation matrix with columns xB, yB, zDes -> quaternion.
	return quatFromMatrixColumns(xB, yB, zDes)
}

// quatFromMatrixColumns converts a rotation matrix given by its column
// vectors into a quaternion (Shepperd's method).
func quatFromMatrixColumns(x, y, z mathx.Vec3) mathx.Quat {
	m00, m01, m02 := x.X, y.X, z.X
	m10, m11, m12 := x.Y, y.Y, z.Y
	m20, m21, m22 := x.Z, y.Z, z.Z
	trace := m00 + m11 + m22
	var q mathx.Quat
	switch {
	case trace > 0:
		s := math.Sqrt(trace+1) * 2
		q = mathx.Quat{
			W: s / 4,
			X: (m21 - m12) / s,
			Y: (m02 - m20) / s,
			Z: (m10 - m01) / s,
		}
	case m00 > m11 && m00 > m22:
		s := math.Sqrt(1+m00-m11-m22) * 2
		q = mathx.Quat{
			W: (m21 - m12) / s,
			X: s / 4,
			Y: (m01 + m10) / s,
			Z: (m02 + m20) / s,
		}
	case m11 > m22:
		s := math.Sqrt(1+m11-m00-m22) * 2
		q = mathx.Quat{
			W: (m02 - m20) / s,
			X: (m01 + m10) / s,
			Y: s / 4,
			Z: (m12 + m21) / s,
		}
	default:
		s := math.Sqrt(1+m22-m00-m11) * 2
		q = mathx.Quat{
			W: (m10 - m01) / s,
			X: (m02 + m20) / s,
			Y: (m12 + m21) / s,
			Z: s / 4,
		}
	}
	return q.Normalized()
}
