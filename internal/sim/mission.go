package sim

import (
	"fmt"
	"math"

	"soundboost/internal/mathx"
)

// Mission produces the position/yaw setpoint stream the controller follows.
type Mission interface {
	// Setpoint returns the navigation target at time t (seconds from
	// mission start).
	Setpoint(t float64) Setpoint
	// Duration returns the nominal mission length in seconds.
	Duration() float64
	// Name identifies the mission in logs and reports.
	Name() string
}

// HoverMission holds position at a fixed point.
type HoverMission struct {
	// Point is the hover location in NED (Z negative above ground).
	Point mathx.Vec3
	// Seconds is the hover duration.
	Seconds float64
	// Heading is the yaw to hold (rad).
	Heading float64
}

// Setpoint implements Mission.
func (m HoverMission) Setpoint(t float64) Setpoint {
	return Setpoint{Pos: m.Point, Yaw: m.Heading}
}

// Duration implements Mission.
func (m HoverMission) Duration() float64 { return m.Seconds }

// Name implements Mission.
func (m HoverMission) Name() string { return "hover" }

// Waypoint is a single mission leg target.
type Waypoint struct {
	// Pos is the NED target (m).
	Pos mathx.Vec3
	// Speed is the cruise speed toward the target (m/s).
	Speed float64
	// HoldSeconds pauses at the waypoint before the next leg.
	HoldSeconds float64
}

// WaypointMission flies a sequence of legs with trapezoidal timing: the
// setpoint moves along each leg at the waypoint speed, then holds.
type WaypointMission struct {
	// Start is the initial position.
	Start mathx.Vec3
	// Points are the successive targets.
	Points []Waypoint
	// MissionName labels the mission.
	MissionName string

	legs []leg
}

type leg struct {
	from, to mathx.Vec3
	startT   float64
	travelT  float64
	holdT    float64
	yaw      float64
}

// NewWaypointMission precomputes leg timing. Waypoints with non-positive
// speed default to 3 m/s.
func NewWaypointMission(name string, start mathx.Vec3, points []Waypoint) *WaypointMission {
	m := &WaypointMission{Start: start, Points: points, MissionName: name}
	cur := start
	t := 0.0
	for _, wp := range points {
		speed := wp.Speed
		if speed <= 0 {
			speed = 3
		}
		dist := wp.Pos.Sub(cur).Norm()
		travel := dist / speed
		yaw := 0.0
		d := wp.Pos.Sub(cur)
		if math.Hypot(d.X, d.Y) > 0.5 {
			yaw = math.Atan2(d.Y, d.X)
		}
		m.legs = append(m.legs, leg{
			from:    cur,
			to:      wp.Pos,
			startT:  t,
			travelT: travel,
			holdT:   wp.HoldSeconds,
			yaw:     yaw,
		})
		t += travel + wp.HoldSeconds
		cur = wp.Pos
	}
	return m
}

// Setpoint implements Mission.
func (m *WaypointMission) Setpoint(t float64) Setpoint {
	if len(m.legs) == 0 {
		return Setpoint{Pos: m.Start}
	}
	for i, l := range m.legs {
		end := l.startT + l.travelT + l.holdT
		if t < end || i == len(m.legs)-1 {
			if t >= l.startT+l.travelT {
				return Setpoint{Pos: l.to, Yaw: l.yaw}
			}
			frac := 0.0
			if l.travelT > 0 {
				frac = (t - l.startT) / l.travelT
			}
			frac = mathx.Clamp(frac, 0, 1)
			dir := l.to.Sub(l.from)
			var ff mathx.Vec3
			if l.travelT > 0 {
				ff = dir.Scale(1 / l.travelT)
			}
			return Setpoint{Pos: l.from.Lerp(l.to, frac), VelFF: ff, Yaw: l.yaw}
		}
	}
	last := m.legs[len(m.legs)-1]
	return Setpoint{Pos: last.to, Yaw: last.yaw}
}

// Duration implements Mission.
func (m *WaypointMission) Duration() float64 {
	if len(m.legs) == 0 {
		return 0
	}
	last := m.legs[len(m.legs)-1]
	return last.startT + last.travelT + last.holdT
}

// Name implements Mission.
func (m *WaypointMission) Name() string { return m.MissionName }

// Verify interface compliance.
var (
	_ Mission = HoverMission{}
	_ Mission = (*WaypointMission)(nil)
)

// StandardMissions returns the six extended navigation scenario families
// used to build the paper's 36-flight training corpus: hover, ascent/descent
// column, forward dash, square patrol, lawnmower sweep, and a mixed-turn
// circuit. The variant index perturbs geometry so repeated flights differ.
func StandardMissions(variant int) []Mission {
	alt := -8.0 - float64(variant%3)*2 // 8-12 m AGL
	s := 6.0 + float64(variant%4)*2    // leg scale
	v := 2.0 + float64(variant%3)      // cruise speed
	hover := HoverMission{Point: mathx.Vec3{Z: alt}, Seconds: 24, Heading: 0}
	column := NewWaypointMission("column", mathx.Vec3{Z: alt}, []Waypoint{
		{Pos: mathx.Vec3{Z: alt - 6}, Speed: v, HoldSeconds: 2},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 2},
		{Pos: mathx.Vec3{Z: alt - 4}, Speed: v / 2, HoldSeconds: 2},
	})
	dash := NewWaypointMission("dash", mathx.Vec3{Z: alt}, []Waypoint{
		{Pos: mathx.Vec3{X: 2 * s, Z: alt}, Speed: v + 1, HoldSeconds: 1},
		{Pos: mathx.Vec3{Z: alt}, Speed: v + 1, HoldSeconds: 1},
	})
	square := NewWaypointMission("square", mathx.Vec3{Z: alt}, []Waypoint{
		{Pos: mathx.Vec3{X: s, Z: alt}, Speed: v, HoldSeconds: 1},
		{Pos: mathx.Vec3{X: s, Y: s, Z: alt}, Speed: v, HoldSeconds: 1},
		{Pos: mathx.Vec3{Y: s, Z: alt}, Speed: v, HoldSeconds: 1},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 1},
	})
	sweep := NewWaypointMission("sweep", mathx.Vec3{Z: alt}, []Waypoint{
		{Pos: mathx.Vec3{X: s, Z: alt}, Speed: v},
		{Pos: mathx.Vec3{X: s, Y: s / 2, Z: alt}, Speed: v / 2},
		{Pos: mathx.Vec3{Y: s / 2, Z: alt}, Speed: v},
		{Pos: mathx.Vec3{Y: s, Z: alt}, Speed: v / 2},
		{Pos: mathx.Vec3{X: s, Y: s, Z: alt}, Speed: v},
	})
	circuit := NewWaypointMission("circuit", mathx.Vec3{Z: alt}, []Waypoint{
		{Pos: mathx.Vec3{X: s, Y: -s / 2, Z: alt - 2}, Speed: v},
		{Pos: mathx.Vec3{X: s / 2, Y: s, Z: alt}, Speed: v + 1},
		{Pos: mathx.Vec3{X: -s / 3, Y: s / 2, Z: alt - 1}, Speed: v},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 2},
	})
	return []Mission{hover, column, dash, square, sweep, circuit}
}

// MissionByName returns a standard mission by name, for CLI tools.
func MissionByName(name string, variant int) (Mission, error) {
	for _, m := range StandardMissions(variant) {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("sim: unknown mission %q", name)
}
