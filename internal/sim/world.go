package sim

import (
	"fmt"
	"math/rand"

	"soundboost/internal/mathx"
	"soundboost/internal/sensors"
)

// WorldConfig assembles a full simulation run.
type WorldConfig struct {
	Vehicle    VehicleConfig
	Controller ControllerConfig
	IMU        sensors.IMUConfig
	GPS        sensors.GPSConfig
	Wind       WindConfig
	// Battery, when non-nil, models pack drain and low-charge actuation
	// ripple (nil = ideal power).
	Battery *BatteryConfig
	// PhysicsRate is the dynamics integration rate in Hz.
	PhysicsRate float64
	// ControlRate is the controller update rate in Hz.
	ControlRate float64
	// AuxIMUs is the number of redundant IMUs beyond the primary (many
	// flight controllers carry 2-3). Aux units share the primary's error
	// model but have independent noise and are NOT reachable by the
	// primary's attack interceptor — resonant injection is tuned to one
	// sensor model (paper §V-B).
	AuxIMUs int
	// CompassNoiseStd is the heading noise sigma (rad).
	CompassNoiseStd float64
	// Seed drives all stochastic components of the run.
	Seed int64
}

// DefaultWorldConfig returns the standard outdoor-calm configuration.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		Vehicle:         DefaultVehicleConfig(),
		Controller:      DefaultControllerConfig(),
		IMU:             sensors.DefaultIMUConfig(),
		GPS:             sensors.DefaultGPSConfig(),
		Wind:            CalmWind(),
		PhysicsRate:     500,
		ControlRate:     250,
		CompassNoiseStd: 0.01,
		Seed:            1,
	}
}

// StepRecord is one physics-rate snapshot of everything observable,
// the raw material for flight logs and acoustic synthesis.
type StepRecord struct {
	// Time is the simulation timestamp (s).
	Time float64
	// True ground-truth kinematics.
	TruePos    mathx.Vec3
	TrueVel    mathx.Vec3
	TrueAccel  mathx.Vec3 // world frame, inertial
	TrueAtt    mathx.Quat
	MotorSpeed [NumMotors]float64
	// Estimated state (the autopilot's belief).
	EstPos mathx.Vec3
	EstVel mathx.Vec3
	// Latest sensor outputs (held between samples).
	IMU sensors.IMUMeasurement
	// AuxIMU holds the redundant IMU measurements (may be empty).
	AuxIMU []sensors.IMUMeasurement
	GPS    sensors.GPSFix
	// Wind is the world-frame wind vector.
	Wind mathx.Vec3
}

// ActuatorInterceptor rewrites motor commands in flight — the hook for
// physical-layer actuator attacks (e.g. PWM block-waveform DoS).
type ActuatorInterceptor interface {
	// InterceptMotors maps the controller's motor commands to the ones the
	// ESCs actually receive at time t.
	InterceptMotors(t float64, cmd [NumMotors]float64) [NumMotors]float64
}

// World owns one simulated flight.
type World struct {
	cfg        WorldConfig
	dyn        *Dynamics
	ctrl       *Controller
	est        *Estimator
	imu        *sensors.IMU
	auxIMU     []*sensors.IMU
	gps        *sensors.GPS
	compass    *sensors.Compass
	wind       *Wind
	state      State
	battery    *Battery
	actuator   ActuatorInterceptor
	lastIMU    sensors.IMUMeasurement
	lastAux    []sensors.IMUMeasurement
	lastGPS    sensors.GPSFix
	lastGPSAt  float64
	lastIMUAt  float64
	motorCmd   [NumMotors]float64
	ctrlPeriod float64
	nextCtrl   float64
}

// NewWorld wires up a simulation. The vehicle starts at the origin on the
// ground... more precisely at the mission's first setpoint altitude with
// zero velocity (missions in this reproduction start airborne, mirroring
// the paper's "attacks happen after take-off" threat model).
func NewWorld(cfg WorldConfig) (*World, error) {
	dyn, err := NewDynamics(cfg.Vehicle)
	if err != nil {
		return nil, err
	}
	if cfg.PhysicsRate <= 0 || cfg.ControlRate <= 0 {
		return nil, fmt.Errorf("sim: rates must be positive (physics %g, control %g)", cfg.PhysicsRate, cfg.ControlRate)
	}
	if cfg.ControlRate > cfg.PhysicsRate {
		return nil, fmt.Errorf("sim: control rate %g exceeds physics rate %g", cfg.ControlRate, cfg.PhysicsRate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		cfg:        cfg,
		dyn:        dyn,
		ctrl:       NewController(cfg.Vehicle, cfg.Controller),
		est:        NewEstimator(),
		imu:        sensors.NewIMU(cfg.IMU, rand.New(rand.NewSource(rng.Int63()))),
		gps:        sensors.NewGPS(cfg.GPS, rand.New(rand.NewSource(rng.Int63()))),
		compass:    sensors.NewCompass(cfg.CompassNoiseStd, rand.New(rand.NewSource(rng.Int63()))),
		wind:       NewWind(cfg.Wind, rand.New(rand.NewSource(rng.Int63()))),
		ctrlPeriod: 1 / cfg.ControlRate,
	}
	for i := 0; i < cfg.AuxIMUs; i++ {
		w.auxIMU = append(w.auxIMU, sensors.NewIMU(cfg.IMU, rand.New(rand.NewSource(rng.Int63())))) //nolint:gosec
	}
	if cfg.Battery != nil {
		b, err := NewBattery(*cfg.Battery)
		if err != nil {
			return nil, err
		}
		w.battery = b
	}
	return w, nil
}

// IMUSensor exposes the primary IMU for attack installation.
func (w *World) IMUSensor() *sensors.IMU { return w.imu }

// AuxIMUSensors exposes the redundant IMUs.
func (w *World) AuxIMUSensors() []*sensors.IMU { return w.auxIMU }

// GPSSensor exposes the GPS for attack installation.
func (w *World) GPSSensor() *sensors.GPS { return w.gps }

// State returns the current ground-truth state.
func (w *World) State() State { return w.state }

// Battery exposes the battery model (nil when disabled).
func (w *World) Battery() *Battery { return w.battery }

// SetActuatorInterceptor installs (or clears, with nil) the actuator
// attack hook.
func (w *World) SetActuatorInterceptor(a ActuatorInterceptor) { w.actuator = a }

// Nav returns the autopilot's current state estimate.
func (w *World) Nav() NavState { return w.est.Nav() }

// Run flies the mission and returns one StepRecord per physics step.
// The vehicle is initialised hovering at the mission's first setpoint.
func (w *World) Run(m Mission) []StepRecord {
	sp0 := m.Setpoint(0)
	hover := w.cfg.Vehicle.HoverMotorSpeed()
	w.state = State{
		Pos: sp0.Pos,
		Att: mathx.QuatFromEuler(0, 0, sp0.Yaw),
	}
	for i := range w.state.MotorSpeed {
		w.state.MotorSpeed[i] = hover
		w.motorCmd[i] = hover
	}
	w.est.Init(sp0.Pos, mathx.Vec3{}, w.state.Att)
	w.ctrl.Reset()
	w.nextCtrl = 0

	dt := 1 / w.cfg.PhysicsRate
	steps := int(m.Duration() * w.cfg.PhysicsRate)
	records := make([]StepRecord, 0, steps)
	for i := 0; i < steps; i++ {
		t := w.state.Time
		wind := w.wind.Step(dt)

		// --- Sensors sample ground truth (possibly intercepted by attacks).
		if w.imu.Due(t) {
			// Vibration level: total rotor kinetic intensity relative to
			// hover, driving the accelerometer's rectification bias.
			hover := w.cfg.Vehicle.HoverMotorSpeed()
			var sumSq float64
			for _, ms := range w.state.MotorSpeed {
				sumSq += ms * ms
			}
			w.imu.SetVibration(sumSq / (float64(len(w.state.MotorSpeed)) * hover * hover))
			sf := w.state.SpecificForceBody()
			m := w.imu.Sample(t, sf, w.state.AngVel)
			for _, aux := range w.auxIMU {
				aux.SetVibration(sumSq / (float64(len(w.state.MotorSpeed)) * hover * hover))
			}
			imuDt := t - w.lastIMUAt
			if imuDt <= 0 || w.lastIMUAt == 0 && t == 0 {
				imuDt = 1 / w.cfg.IMU.SampleRate
			}
			w.est.PredictIMU(m, imuDt)
			_, _, trueYaw := w.state.Att.Euler()
			w.est.CorrectYaw(w.compass.Heading(trueYaw), imuDt)
			w.lastIMU = m
			w.lastAux = w.lastAux[:0]
			for _, aux := range w.auxIMU {
				w.lastAux = append(w.lastAux, aux.Sample(t, sf, w.state.AngVel))
			}
			w.lastIMUAt = t
		}
		if w.gps.Due(t) {
			f := w.gps.Fix(t, w.state.Pos, w.state.Vel)
			gpsDt := t - w.lastGPSAt
			if gpsDt <= 0 {
				gpsDt = 1 / w.cfg.GPS.SampleRate
			}
			w.est.CorrectGPS(f, gpsDt)
			w.lastGPS = f
			w.lastGPSAt = t
		}

		// --- Controller at its own rate, consuming the estimate.
		if t >= w.nextCtrl {
			sp := m.Setpoint(t)
			w.motorCmd = w.ctrl.Update(w.est.Nav(), sp, w.ctrlPeriod)
			w.nextCtrl = t + w.ctrlPeriod
		}

		// --- Physics (with battery-derated actuation when modelled).
		cmd := w.motorCmd
		if w.actuator != nil {
			cmd = w.actuator.InterceptMotors(t, cmd)
		}
		if w.battery != nil {
			factor := w.battery.Step(MechanicalPower(w.cfg.Vehicle, w.state.MotorSpeed), dt)
			for i := range cmd {
				cmd[i] *= factor
			}
		}
		w.state = w.dyn.Step(w.state, cmd, wind, dt)

		nav := w.est.Nav()
		records = append(records, StepRecord{
			Time:       w.state.Time,
			TruePos:    w.state.Pos,
			TrueVel:    w.state.Vel,
			TrueAccel:  w.state.Accel,
			TrueAtt:    w.state.Att,
			MotorSpeed: w.state.MotorSpeed,
			EstPos:     nav.Pos,
			EstVel:     nav.Vel,
			IMU:        w.lastIMU,
			AuxIMU:     append([]sensors.IMUMeasurement(nil), w.lastAux...),
			GPS:        w.lastGPS,
			Wind:       wind,
		})
	}
	return records
}
