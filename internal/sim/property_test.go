package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soundboost/internal/mathx"
)

// Property: the motor mixer inverts the dynamics' torque model — commanding
// (thrust, torque) through mix and evaluating the quad-X geometry on the
// resulting per-motor thrusts recovers the request (when no motor clamps).
func TestMixerInvertsTorqueModelProperty(t *testing.T) {
	vcfg := DefaultVehicleConfig()
	ctrl := NewController(vcfg, DefaultControllerConfig())
	hoverThrust := vcfg.Mass * gravity

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		thrust := hoverThrust * (0.7 + 0.6*rng.Float64())
		torque := mathx.Vec3{
			X: rng.NormFloat64() * 0.2,
			Y: rng.NormFloat64() * 0.2,
			Z: rng.NormFloat64() * 0.05,
		}
		cmd := ctrl.mix(thrust, torque)
		// Reject the sample if any motor clamped (inversion only holds in
		// the linear region).
		for _, w := range cmd {
			if w <= vcfg.MinMotorSpeed+1e-9 || w >= vcfg.MaxMotorSpeed-1e-9 {
				return true
			}
		}
		var gotThrust float64
		var gotTorque mathx.Vec3
		for i, w := range cmd {
			fi := vcfg.ThrustCoeff * w * w
			gotThrust += fi
			p := vcfg.MotorPosition(i)
			gotTorque.X += -p.Y * fi
			gotTorque.Y += p.X * fi
			gotTorque.Z += MotorSpinDir(i) * vcfg.TorqueCoeff * w * w
		}
		return math.Abs(gotThrust-thrust) < 1e-6*thrust &&
			gotTorque.Sub(torque).Norm() < 1e-6+1e-6*torque.Norm()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with motors off and no drag, the dynamics conserve horizontal
// momentum (gravity acts only on z).
func TestDynamicsMomentumConservationProperty(t *testing.T) {
	cfg := DefaultVehicleConfig()
	cfg.MinMotorSpeed = 0
	cfg.LinearDrag = 0
	cfg.AngularDrag = 0
	dyn, err := NewDynamics(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vx, vy, vz float64) bool {
		v0 := mathx.Vec3{
			X: math.Mod(clampQ(vx), 20),
			Y: math.Mod(clampQ(vy), 20),
			Z: math.Mod(clampQ(vz), 20),
		}
		s := State{Att: mathx.IdentityQuat(), Vel: v0}
		for i := 0; i < 100; i++ {
			s = dyn.Step(s, [NumMotors]float64{}, mathx.Vec3{}, 0.002)
		}
		return math.Abs(s.Vel.X-v0.X) < 1e-9 && math.Abs(s.Vel.Y-v0.Y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func clampQ(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

// Property: the paper's core physical coupling — more rotor speed means
// both more thrust (more negative specific force z) and more sound. Tested
// on the dynamics half here; the acoustics half lives in the acoustics
// package tests.
func TestThrustMonotoneInRotorSpeedProperty(t *testing.T) {
	cfg := DefaultVehicleConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w1 := cfg.MinMotorSpeed + rng.Float64()*(cfg.MaxMotorSpeed-cfg.MinMotorSpeed)
		w2 := cfg.MinMotorSpeed + rng.Float64()*(cfg.MaxMotorSpeed-cfg.MinMotorSpeed)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		return cfg.MotorThrust(w1) <= cfg.MotorThrust(w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
