package experiments

import (
	"fmt"
	"strings"

	soundboost "soundboost/internal/core"
	"soundboost/internal/parallel"
	"soundboost/internal/stats"
)

// IMUResult summarises the §IV-B IMU biasing experiment: the paper reports
// all 10 attacks detected (average delay 2.3 s) with one benign false
// positive in 10 flights.
type IMUResult struct {
	// BenignFlights / BenignAlerted count the benign side.
	BenignFlights int
	BenignAlerted int
	// AttackFlights / AttackAlerted count the attack side.
	AttackFlights int
	AttackAlerted int
	// PerMode breaks detections down by attack mode.
	PerMode map[string][2]int // mode -> [detected, total]
	// LowBatteryAlerted reports whether the critically-low-battery benign
	// flight raised the (expected) false positive, as in the paper.
	LowBatteryAlerted bool
	// MeanDelay is the mean detection delay after attack onset (s).
	MeanDelay float64
	// MeanAttackStd is the mean residual sigma over detected attacks
	// (Fig. 6's widened distribution; the paper reports 2.81).
	MeanAttackStd float64
	// TPR and FPR are the derived rates.
	TPR float64
	FPR float64
}

// String renders the experiment summary.
func (r IMUResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IMU biasing RCA: %d/%d attacks detected (TPR %.2f), %d/%d benign alerted (FPR %.2f)\n",
		r.AttackAlerted, r.AttackFlights, r.TPR, r.BenignAlerted, r.BenignFlights, r.FPR)
	fmt.Fprintf(&b, "mean detection delay %.1f s after onset; attack residual sigma %.2f\n", r.MeanDelay, r.MeanAttackStd)
	if r.LowBatteryAlerted {
		b.WriteString("low-battery benign flight raised the expected false positive\n")
	}
	for mode, c := range r.PerMode {
		fmt.Fprintf(&b, "  %-12s %d/%d detected\n", mode, c[0], c[1])
	}
	return b.String()
}

// RunIMUExperiment executes the §IV-B protocol: hover flights, half under
// synthesized side-swing / DoS injection, analysed by the IMU RCA stage.
func RunIMUExperiment(lab *Lab, logf func(string, ...any)) (IMUResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	result := IMUResult{PerMode: map[string][2]int{}}
	var counts stats.ConfusionCounts
	var delays, sigmas []float64
	specs := lab.Scale.IMUFlights()
	// Flights generate and analyse independently; verdicts fold into the
	// aggregate below in spec order, matching the serial sweep.
	type imuOutcome struct {
		name    string
		verdict soundboost.IMUVerdict
	}
	outcomes, err := parallel.MapErr(0, len(specs), func(i int) (imuOutcome, error) {
		spec := specs[i]
		f, err := lab.Scale.GenerateIMUFlight(spec)
		if err != nil {
			return imuOutcome{}, fmt.Errorf("experiments: imu flight %d: %w", spec.Index, err)
		}
		v, err := lab.IMUDetector.Detect(f)
		if err != nil {
			return imuOutcome{}, fmt.Errorf("experiments: imu detect %s: %w", f.Name, err)
		}
		return imuOutcome{name: f.Name, verdict: v}, nil
	})
	if err != nil {
		return IMUResult{}, err
	}
	for i, o := range outcomes {
		spec := specs[i]
		v := o.verdict
		counts.Record(spec.Attack, v.Attacked)
		if spec.LowBattery && v.Attacked {
			result.LowBatteryAlerted = true
		}
		if spec.Attack {
			mode := string(spec.Mode)
			c := result.PerMode[mode]
			c[1]++
			if v.Attacked {
				c[0]++
				if v.DetectionTime >= spec.Window.Start {
					delays = append(delays, v.DetectionTime-spec.Window.Start)
				}
				if v.AttackStd > 0 {
					sigmas = append(sigmas, v.AttackStd)
				}
			}
			result.PerMode[mode] = c
		}
		logf("imu flight %s: attack=%v detected=%v t=%.1f", o.name, spec.Attack, v.Attacked, v.DetectionTime)
	}
	result.BenignFlights = counts.FP + counts.TN
	result.BenignAlerted = counts.FP
	result.AttackFlights = counts.TP + counts.FN
	result.AttackAlerted = counts.TP
	result.TPR = counts.TPR()
	result.FPR = counts.FPR()
	result.MeanDelay = stats.Mean(delays)
	result.MeanAttackStd = stats.Mean(sigmas)
	return result, nil
}
