package experiments

import (
	"fmt"
	"strings"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/nn"
)

// Table1Row is one augmentation configuration's result (paper Tab. I).
type Table1Row struct {
	// Label names the augmentation ("No Aug.", "w/ 5x", ...).
	Label string
	// Factors are the augmentation window multipliers applied.
	Factors []float64
	// TrainMSE, ValMSE, TestMSE are raw-space mean squared errors.
	TrainMSE float64
	ValMSE   float64
	TestMSE  float64
}

// Table1Result is the full augmentation sweep.
type Table1Result struct {
	Rows []Table1Row
	// Best is the label of the lowest-validation-MSE row.
	Best string
}

// String renders the table like the paper's Tab. I.
func (r Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %14s %10s\n", "Augment", "Train MSE", "Validation MSE", "Test MSE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10.4f %14.4f %10.4f\n", row.Label, row.TrainMSE, row.ValMSE, row.TestMSE)
	}
	fmt.Fprintf(&b, "best by validation: %s\n", r.Best)
	return b.String()
}

// RunTable1 sweeps the time-shift augmentation factors of Tab. I: for each
// configuration it retrains the acoustic model and reports train /
// validation / test MSE. The sweep reuses one generated corpus.
func RunTable1(scale Scale, logf func(string, ...any)) (Table1Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := scale.Validate(); err != nil {
		return Table1Result{}, err
	}
	sigCfg := soundboost.DefaultSignatureConfig(scale.SignatureConfig())

	// Corpus: bounded subset of the scale's training counts so the sweep's
	// repeated re-extraction stays affordable.
	nTrain := scale.TrainFlights
	if nTrain > 12 {
		nTrain = 12
	}
	nVal := scale.ValFlights
	if nVal < 1 {
		nVal = 1
	}
	nTest := nVal
	gen := func(kind string, i int, seedBase int64) (*dataset.Flight, error) {
		missions := trainingMissions(scale, i)
		mission := missions[i%len(missions)]
		cfg := scale.genConfig(mission, seedBase+int64(i)*7, windCycle(i))
		cfg.Name = fmt.Sprintf("t1-%s-%02d", kind, i)
		return dataset.Generate(cfg)
	}
	var train, val, test []*dataset.Flight
	for i := 0; i < nTrain; i++ {
		f, err := gen("train", i, scale.Seed+1100)
		if err != nil {
			return Table1Result{}, err
		}
		train = append(train, f)
	}
	for i := 0; i < nVal; i++ {
		f, err := gen("val", i, scale.Seed+1400)
		if err != nil {
			return Table1Result{}, err
		}
		val = append(val, f)
	}
	for i := 0; i < nTest; i++ {
		f, err := gen("test", i, scale.Seed+1700)
		if err != nil {
			return Table1Result{}, err
		}
		test = append(test, f)
	}

	configs := []struct {
		label   string
		factors []float64
	}{
		{"w/ 0.5x", []float64{0.5}},
		{"No Aug.", nil},
		{"w/ 1x", []float64{1}},
		{"w/ 2x", []float64{2}},
		{"w/ 3x", []float64{3}},
		{"w/ 5x", []float64{5}},
	}
	var result Table1Result
	bestVal := 0.0
	for _, c := range configs {
		mapCfg := soundboost.DefaultMappingConfig(sigCfg)
		mapCfg.Hidden = scale.Hidden
		mapCfg.Train.Epochs = scale.Epochs
		mapCfg.Seed = scale.Seed
		mapCfg.AugmentFactors = c.factors

		model, _, err := soundboost.TrainModel(train, nil, mapCfg)
		if err != nil {
			return Table1Result{}, fmt.Errorf("experiments: table1 %s: %w", c.label, err)
		}
		trainMSE, err := soundboost.EvaluateMSE(model, train)
		if err != nil {
			return Table1Result{}, err
		}
		valMSE, err := soundboost.EvaluateMSE(model, val)
		if err != nil {
			return Table1Result{}, err
		}
		testMSE, err := soundboost.EvaluateMSE(model, test)
		if err != nil {
			return Table1Result{}, err
		}
		row := Table1Row{Label: c.label, Factors: c.factors, TrainMSE: trainMSE, ValMSE: valMSE, TestMSE: testMSE}
		result.Rows = append(result.Rows, row)
		logf("table1 %-8s train %.4f val %.4f test %.4f", c.label, trainMSE, valMSE, testMSE)
		if result.Best == "" || valMSE < bestVal {
			result.Best = c.label
			bestVal = valMSE
		}
	}
	return result, nil
}

// WindowSweepRow is one window-size result (paper §IV-A text: 0.1-2 s
// sweep with the optimum at 0.5 s).
type WindowSweepRow struct {
	// WindowSeconds is the signature window size.
	WindowSeconds float64
	// ValMSE is the validation MSE at this window.
	ValMSE float64
}

// RunWindowSweep sweeps the signature window size.
func RunWindowSweep(scale Scale, windows []float64, logf func(string, ...any)) ([]WindowSweepRow, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(windows) == 0 {
		windows = []float64{0.1, 0.25, 0.5, 1.0, 2.0}
	}
	nTrain := scale.TrainFlights
	if nTrain > 8 {
		nTrain = 8
	}
	var train, val []*dataset.Flight
	for i := 0; i < nTrain; i++ {
		missions := trainingMissions(scale, i)
		cfg := scale.genConfig(missions[i%len(missions)], scale.Seed+2100+int64(i)*7, windCycle(i))
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		train = append(train, f)
	}
	for i := 0; i < 2; i++ {
		missions := trainingMissions(scale, i+1)
		cfg := scale.genConfig(missions[(i+3)%len(missions)], scale.Seed+2400+int64(i)*7, windCycle(i))
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		val = append(val, f)
	}
	// The sweep varies the *feature* window while keeping the prediction
	// target fixed (the IMU mean over the base 0.5 s window): the paper's
	// trade-off is context vs responsiveness at a fixed estimation task.
	baseCfg := soundboost.DefaultSignatureConfig(scale.SignatureConfig())
	var rows []WindowSweepRow
	for _, w := range windows {
		factor := w / baseCfg.WindowSeconds
		mapCfg := soundboost.DefaultMappingConfig(baseCfg)
		mapCfg.Hidden = scale.Hidden
		mapCfg.Train.Epochs = scale.Epochs
		mapCfg.AugmentFactors = nil
		var xs, ys, vx, vy [][]float64
		collect := func(flights []*dataset.Flight, fx, fy *[][]float64) error {
			for i, f := range flights {
				windows, err := soundboost.BuildWindows(f, baseCfg, i, factor)
				if err != nil {
					return err
				}
				for _, win := range windows {
					*fx = append(*fx, win.Features)
					*fy = append(*fy, win.Label.Slice())
				}
			}
			return nil
		}
		if err := collect(train, &xs, &ys); err != nil {
			return nil, err
		}
		if err := collect(val, &vx, &vy); err != nil {
			return nil, err
		}
		model, _, err := soundboost.TrainModelFromSamples(xs, ys, nil, nil, mapCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: window %.2gs: %w", w, err)
		}
		var total float64
		var count int
		for i := range vx {
			pred := model.Predict(vx[i])
			d := pred.Sub(mathx.Vec3FromSlice(vy[i]))
			total += d.NormSq()
			count += 3
		}
		mse := total / float64(count)
		rows = append(rows, WindowSweepRow{WindowSeconds: w, ValMSE: mse})
		logf("window %.2fs: val MSE %.4f", w, mse)
	}
	return rows, nil
}

// ModelFamilyRow compares the three regressor families (paper §III-B).
type ModelFamilyRow struct {
	// Kind is the model family.
	Kind string
	// ValMSE is the validation MSE.
	ValMSE float64
}

// RunModelFamilies trains each regressor family on a shared corpus.
func RunModelFamilies(scale Scale, logf func(string, ...any)) ([]ModelFamilyRow, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	nTrain := scale.TrainFlights
	if nTrain > 8 {
		nTrain = 8
	}
	var train, val []*dataset.Flight
	for i := 0; i < nTrain; i++ {
		missions := trainingMissions(scale, i)
		cfg := scale.genConfig(missions[i%len(missions)], scale.Seed+2700+int64(i)*7, windCycle(i))
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		train = append(train, f)
	}
	for i := 0; i < 2; i++ {
		missions := trainingMissions(scale, i+2)
		cfg := scale.genConfig(missions[(i+1)%len(missions)], scale.Seed+2900+int64(i)*7, windCycle(i))
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		val = append(val, f)
	}
	sigCfg := soundboost.DefaultSignatureConfig(scale.SignatureConfig())
	var rows []ModelFamilyRow
	for _, kind := range []string{"mlp", "resmlp", "ode"} {
		mapCfg := soundboost.DefaultMappingConfig(sigCfg)
		mapCfg.Hidden = scale.Hidden
		mapCfg.Train.Epochs = scale.Epochs
		mapCfg.Model = nn.ModelKind(kind)
		model, _, err := soundboost.TrainModel(train, nil, mapCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: family %s: %w", kind, err)
		}
		mse, err := soundboost.EvaluateMSE(model, val)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ModelFamilyRow{Kind: kind, ValMSE: mse})
		logf("model %s: val MSE %.4f", kind, mse)
	}
	return rows, nil
}
