package experiments

import (
	"fmt"
	"strings"

	"soundboost/internal/baselines"
	"soundboost/internal/dataset"
	"soundboost/internal/stats"
)

// Table2Row is one detector's Tab. II line.
type Table2Row struct {
	// Detector names the system input configuration.
	Detector string
	// BenignFlights / BenignAlerted and AttackFlights / AttackAlerted are
	// the raw counts the paper reports.
	BenignFlights int
	BenignAlerted int
	AttackFlights int
	AttackAlerted int
	// TPR and FPR are the derived rates.
	TPR float64
	FPR float64
	// MeanDelay is the mean detection delay after attack onset (s), over
	// detected attacks.
	MeanDelay float64
}

// Table2Result is the full detection comparison.
type Table2Result struct {
	Rows []Table2Row
}

// String renders the table like the paper's Tab. II.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s %6s %6s %8s\n",
		"Detector", "#Benign", "#Alert", "#Attack", "#Alert", "TPR", "FPR", "Delay(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %8d %8d %8d %8d %6.2f %6.2f %8.1f\n",
			row.Detector, row.BenignFlights, row.BenignAlerted,
			row.AttackFlights, row.AttackAlerted, row.TPR, row.FPR, row.MeanDelay)
	}
	return b.String()
}

// detectFn adapts every detector to one signature.
type detectFn func(f *dataset.Flight) (attacked bool, detectionTime float64, err error)

// RunTable2 evaluates all seven Tab. II detectors over the scale's GPS
// periods, streaming one period at a time. SoundBoost's two variants are
// evaluated unconditionally on every period (the paper's table reports
// each input configuration over the full period sets).
func RunTable2(lab *Lab, logf func(string, ...any)) (Table2Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	detectors := []struct {
		name string
		fn   detectFn
	}{
		{"soundboost audio", func(f *dataset.Flight) (bool, float64, error) {
			v, err := lab.GPSAudioOnly.Detect(f)
			return v.Attacked, v.DetectionTime, err
		}},
		{"soundboost audio+imu", func(f *dataset.Flight) (bool, float64, error) {
			v, err := lab.GPSAudioIMU.Detect(f)
			return v.Attacked, v.DetectionTime, err
		}},
		{"failsafe imu-only", func(f *dataset.Flight) (bool, float64, error) {
			v, err := lab.Failsafe.Detect(f)
			return v.Attacked, v.DetectionTime, err
		}},
		{"lti yaw", baselineFn(lab.LTIYaw)},
		{"lti vx", baselineFn(lab.LTIVx)},
		{"lti vy", baselineFn(lab.LTIVy)},
		{"dnn lstm", baselineFn(lab.DNN)},
	}

	counts := make([]stats.ConfusionCounts, len(detectors))
	delays := make([][]float64, len(detectors))
	specs := lab.Scale.GPSPeriods()
	for si, spec := range specs {
		f, err := lab.Scale.GeneratePeriod(spec)
		if err != nil {
			return Table2Result{}, fmt.Errorf("experiments: period %d: %w", si, err)
		}
		for di, d := range detectors {
			attacked, at, err := d.fn(f)
			if err != nil {
				return Table2Result{}, fmt.Errorf("experiments: %s on period %d: %w", d.name, si, err)
			}
			counts[di].Record(spec.Attack, attacked)
			if spec.Attack && attacked && at >= spec.Window.Start {
				delays[di] = append(delays[di], at-spec.Window.Start)
			}
		}
		logf("period %d/%d (%s, attack=%v) done", si+1, len(specs), spec.Mission, spec.Attack)
	}

	var result Table2Result
	for di, d := range detectors {
		c := counts[di]
		row := Table2Row{
			Detector:      d.name,
			BenignFlights: c.FP + c.TN,
			BenignAlerted: c.FP,
			AttackFlights: c.TP + c.FN,
			AttackAlerted: c.TP,
			TPR:           c.TPR(),
			FPR:           c.FPR(),
			MeanDelay:     stats.Mean(delays[di]),
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func baselineFn(d baselines.Detector) detectFn {
	return func(f *dataset.Flight) (bool, float64, error) {
		v, err := d.Detect(f)
		return v.Attacked, v.DetectionTime, err
	}
}

// RCAOutcome is one flight's full two-stage RCA result in the end-to-end
// experiment.
type RCAOutcome struct {
	// Flight names the period.
	Flight string
	// TrueKind is the ground-truth scenario kind.
	TrueKind string
	// Cause is the attributed root cause.
	Cause string
}

// RunEndToEndRCA exercises the complete pipeline (stage 1 then stage 2
// with the mode chosen by stage 1) over a mixed set of benign, IMU-attack
// and GPS-attack flights, returning the attribution for each.
func RunEndToEndRCA(lab *Lab, logf func(string, ...any)) ([]RCAOutcome, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	an := lab.Analyzer()
	var out []RCAOutcome
	analyze := func(f *dataset.Flight) error {
		r, err := an.Analyze(f)
		if err != nil {
			return err
		}
		out = append(out, RCAOutcome{Flight: f.Name, TrueKind: f.Scenario.Kind, Cause: string(r.Cause)})
		logf("rca %s: true=%s cause=%s", f.Name, f.Scenario.Kind, r.Cause)
		return nil
	}
	// A benign period, one GPS attack period, and one of each IMU attack.
	specs := lab.Scale.GPSPeriods()
	var benign, gps *PeriodSpec
	for i := range specs {
		if specs[i].Attack && gps == nil {
			gps = &specs[i]
		}
		if !specs[i].Attack && benign == nil {
			benign = &specs[i]
		}
	}
	for _, spec := range []*PeriodSpec{benign, gps} {
		if spec == nil {
			continue
		}
		f, err := lab.Scale.GeneratePeriod(*spec)
		if err != nil {
			return nil, err
		}
		if err := analyze(f); err != nil {
			return nil, err
		}
	}
	for _, spec := range lab.Scale.IMUFlights() {
		if !spec.Attack {
			continue
		}
		f, err := lab.Scale.GenerateIMUFlight(spec)
		if err != nil {
			return nil, err
		}
		if err := analyze(f); err != nil {
			return nil, err
		}
		break // one representative IMU attack
	}
	return out, nil
}
