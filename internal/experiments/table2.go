package experiments

import (
	"fmt"
	"math"
	"strings"

	"soundboost/internal/baselines"
	"soundboost/internal/dataset"
	"soundboost/internal/parallel"
	"soundboost/internal/stats"
)

// Table2Row is one detector's Tab. II line.
type Table2Row struct {
	// Detector names the system input configuration.
	Detector string
	// BenignFlights / BenignAlerted and AttackFlights / AttackAlerted are
	// the raw counts the paper reports.
	BenignFlights int
	BenignAlerted int
	AttackFlights int
	AttackAlerted int
	// TPR and FPR are the derived rates.
	TPR float64
	FPR float64
	// MeanDelay is the mean detection delay after attack onset (s), over
	// detected attacks.
	MeanDelay float64
}

// Table2Result is the full detection comparison.
type Table2Result struct {
	Rows []Table2Row
}

// String renders the table like the paper's Tab. II.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s %6s %6s %8s\n",
		"Detector", "#Benign", "#Alert", "#Attack", "#Alert", "TPR", "FPR", "Delay(s)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %8d %8d %8d %8d %6.2f %6.2f %8.1f\n",
			row.Detector, row.BenignFlights, row.BenignAlerted,
			row.AttackFlights, row.AttackAlerted, row.TPR, row.FPR, row.MeanDelay)
	}
	return b.String()
}

// detectFn adapts every detector to one signature.
type detectFn func(f *dataset.Flight) (attacked bool, detectionTime float64, err error)

// RunTable2 evaluates all seven Tab. II detectors over the scale's GPS
// periods, streaming one period at a time. SoundBoost's two variants are
// evaluated unconditionally on every period (the paper's table reports
// each input configuration over the full period sets).
func RunTable2(lab *Lab, logf func(string, ...any)) (Table2Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	detectors := []struct {
		name string
		fn   detectFn
	}{
		{"soundboost audio", func(f *dataset.Flight) (bool, float64, error) {
			v, err := lab.GPSAudioOnly.Detect(f)
			return v.Attacked, v.DetectionTime, err
		}},
		{"soundboost audio+imu", func(f *dataset.Flight) (bool, float64, error) {
			v, err := lab.GPSAudioIMU.Detect(f)
			return v.Attacked, v.DetectionTime, err
		}},
		{"failsafe imu-only", func(f *dataset.Flight) (bool, float64, error) {
			v, err := lab.Failsafe.Detect(f)
			return v.Attacked, v.DetectionTime, err
		}},
		{"lti yaw", baselineFn(lab.LTIYaw)},
		{"lti vx", baselineFn(lab.LTIVx)},
		{"lti vy", baselineFn(lab.LTIVy)},
		{"dnn lstm", baselineFn(lab.DNN)},
	}

	specs := lab.Scale.GPSPeriods()
	// Periods are independent (generate + judge); fan them out and fold the
	// per-period outcomes into the confusion counts afterwards in period
	// order, so the aggregate is identical to the serial sweep.
	type periodOutcome struct {
		attacked []bool
		delay    []float64 // NaN when no valid delay
	}
	outcomes, err := parallel.MapErr(0, len(specs), func(si int) (periodOutcome, error) {
		spec := specs[si]
		f, err := lab.Scale.GeneratePeriod(spec)
		if err != nil {
			return periodOutcome{}, fmt.Errorf("experiments: period %d: %w", si, err)
		}
		po := periodOutcome{
			attacked: make([]bool, len(detectors)),
			delay:    make([]float64, len(detectors)),
		}
		for di, d := range detectors {
			attacked, at, err := d.fn(f)
			if err != nil {
				return periodOutcome{}, fmt.Errorf("experiments: %s on period %d: %w", d.name, si, err)
			}
			po.attacked[di] = attacked
			po.delay[di] = math.NaN()
			if spec.Attack && attacked && at >= spec.Window.Start {
				po.delay[di] = at - spec.Window.Start
			}
		}
		return po, nil
	})
	if err != nil {
		return Table2Result{}, err
	}
	counts := make([]stats.ConfusionCounts, len(detectors))
	delays := make([][]float64, len(detectors))
	for si, po := range outcomes {
		spec := specs[si]
		for di := range detectors {
			counts[di].Record(spec.Attack, po.attacked[di])
			if !math.IsNaN(po.delay[di]) {
				delays[di] = append(delays[di], po.delay[di])
			}
		}
		logf("period %d/%d (%s, attack=%v) done", si+1, len(specs), spec.Mission, spec.Attack)
	}

	var result Table2Result
	for di, d := range detectors {
		c := counts[di]
		row := Table2Row{
			Detector:      d.name,
			BenignFlights: c.FP + c.TN,
			BenignAlerted: c.FP,
			AttackFlights: c.TP + c.FN,
			AttackAlerted: c.TP,
			TPR:           c.TPR(),
			FPR:           c.FPR(),
			MeanDelay:     stats.Mean(delays[di]),
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func baselineFn(d baselines.Detector) detectFn {
	return func(f *dataset.Flight) (bool, float64, error) {
		v, err := d.Detect(f)
		return v.Attacked, v.DetectionTime, err
	}
}

// RCAOutcome is one flight's full two-stage RCA result in the end-to-end
// experiment.
type RCAOutcome struct {
	// Flight names the period.
	Flight string
	// TrueKind is the ground-truth scenario kind.
	TrueKind string
	// Cause is the attributed root cause.
	Cause string
}

// RunEndToEndRCA exercises the complete pipeline (stage 1 then stage 2
// with the mode chosen by stage 1) over a mixed set of benign, IMU-attack
// and GPS-attack flights, returning the attribution for each.
func RunEndToEndRCA(lab *Lab, logf func(string, ...any)) ([]RCAOutcome, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	an := lab.Analyzer()
	var out []RCAOutcome
	analyze := func(f *dataset.Flight) error {
		r, err := an.Analyze(f)
		if err != nil {
			return err
		}
		out = append(out, RCAOutcome{Flight: f.Name, TrueKind: f.Scenario.Kind, Cause: string(r.Cause)})
		logf("rca %s: true=%s cause=%s", f.Name, f.Scenario.Kind, r.Cause)
		return nil
	}
	// A benign period, one GPS attack period, and one of each IMU attack.
	specs := lab.Scale.GPSPeriods()
	var benign, gps *PeriodSpec
	for i := range specs {
		if specs[i].Attack && gps == nil {
			gps = &specs[i]
		}
		if !specs[i].Attack && benign == nil {
			benign = &specs[i]
		}
	}
	for _, spec := range []*PeriodSpec{benign, gps} {
		if spec == nil {
			continue
		}
		f, err := lab.Scale.GeneratePeriod(*spec)
		if err != nil {
			return nil, err
		}
		if err := analyze(f); err != nil {
			return nil, err
		}
	}
	for _, spec := range lab.Scale.IMUFlights() {
		if !spec.Attack {
			continue
		}
		f, err := lab.Scale.GenerateIMUFlight(spec)
		if err != nil {
			return nil, err
		}
		if err := analyze(f); err != nil {
			return nil, err
		}
		break // one representative IMU attack
	}
	return out, nil
}
