package experiments

import (
	"math"
	"sync"
	"testing"
)

var (
	labOnce sync.Once
	lab     *Lab
	labErr  error
)

func getLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		lab, labErr = NewLab(QuickScale())
	})
	if labErr != nil {
		t.Fatalf("lab: %v", labErr)
	}
	return lab
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{PaperScale(), BenchScale(), QuickScale()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s scale invalid: %v", s.Name, err)
		}
	}
	bad := QuickScale()
	bad.TrainFlights = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero training flights accepted")
	}
	bad = QuickScale()
	bad.AeroFreq = bad.AudioRate
	if err := bad.Validate(); err == nil {
		t.Error("aero above Nyquist accepted")
	}
}

func TestGPSPeriodsDeterministic(t *testing.T) {
	s := QuickScale()
	a := s.GPSPeriods()
	b := s.GPSPeriods()
	if len(a) != s.GPSBenign+s.GPSAttack {
		t.Fatalf("period count %d, want %d", len(a), s.GPSBenign+s.GPSAttack)
	}
	for i := range a {
		if a[i].Seed != b[i].Seed || a[i].Duration != b[i].Duration {
			t.Fatal("periods not deterministic")
		}
		if a[i].Attack {
			if a[i].Window.Start <= 0 || a[i].Window.End > a[i].Duration {
				t.Errorf("period %d window %+v outside duration %v", i, a[i].Window, a[i].Duration)
			}
			if a[i].Offset.Norm() == 0 {
				t.Errorf("period %d has zero spoof offset", i)
			}
		}
	}
}

func TestIMUFlightsSpec(t *testing.T) {
	s := QuickScale()
	specs := s.IMUFlights()
	if len(specs) != s.IMUBenign+s.IMUAttack {
		t.Fatalf("flight count %d", len(specs))
	}
	modes := map[string]bool{}
	for _, spec := range specs {
		if spec.Attack {
			modes[string(spec.Mode)] = true
		}
	}
	if len(modes) != 2 {
		t.Errorf("attack modes %v, want both side-swing and dos", modes)
	}
}

func TestLabBuilds(t *testing.T) {
	l := getLab(t)
	if l.Model == nil {
		t.Fatal("no model")
	}
	if len(l.Calib) != QuickScale().CalibFlights {
		t.Errorf("calib flights %d", len(l.Calib))
	}
	if l.TestMSE <= 0 || l.TestMSE > 2 {
		t.Errorf("test MSE %v out of plausible range", l.TestMSE)
	}
	if l.IMUDetector == nil || l.GPSAudioOnly == nil || l.GPSAudioIMU == nil ||
		l.Failsafe == nil || l.LTIYaw == nil || l.LTIVx == nil || l.LTIVy == nil || l.DNN == nil {
		t.Error("missing calibrated detectors")
	}
	if an := l.Analyzer(); an == nil || an.Model != l.Model {
		t.Error("analyzer wiring wrong")
	}
}

func TestRunIMUExperiment(t *testing.T) {
	l := getLab(t)
	r, err := RunIMUExperiment(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.AttackFlights != QuickScale().IMUAttack {
		t.Errorf("attack flights %d", r.AttackFlights)
	}
	// The paper's headline: all IMU attacks detected, few benign alerts.
	if r.TPR < 0.99 {
		t.Errorf("IMU TPR %.2f, want 1.0 (per mode: %v)", r.TPR, r.PerMode)
	}
	if r.BenignAlerted > r.BenignFlights/2 {
		t.Errorf("too many benign alerts: %d/%d", r.BenignAlerted, r.BenignFlights)
	}
	if r.String() == "" {
		t.Error("empty summary")
	}
}

func TestRunTable2(t *testing.T) {
	l := getLab(t)
	r, err := RunTable2(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows %d, want 7", len(r.Rows))
	}
	byName := map[string]Table2Row{}
	for _, row := range r.Rows {
		byName[row.Detector] = row
		if row.BenignFlights != QuickScale().GPSBenign || row.AttackFlights != QuickScale().GPSAttack {
			t.Errorf("%s: wrong counts %+v", row.Detector, row)
		}
	}
	// Shape checks (quick scale is tiny, so only coarse ordering).
	sb := byName["soundboost audio+imu"]
	if sb.TPR < 0.5 {
		t.Errorf("audio+imu TPR %.2f too low", sb.TPR)
	}
	if r.String() == "" {
		t.Error("empty table rendering")
	}
}

func TestRunTable1(t *testing.T) {
	l := getLab(t) // ensures corpus generation paths are warm; lab unused otherwise
	_ = l
	s := QuickScale()
	s.Epochs = 25 // keep the 6-row sweep fast
	r, err := RunTable1(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TrainMSE <= 0 || row.ValMSE <= 0 || row.TestMSE <= 0 {
			t.Errorf("%s: non-positive MSE %+v", row.Label, row)
		}
		if math.IsNaN(row.ValMSE) {
			t.Errorf("%s: NaN MSE", row.Label)
		}
	}
	if r.Best == "" {
		t.Error("no best row")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestRunTable3(t *testing.T) {
	l := getLab(t)
	r, err := RunTable3(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 8*4 {
		t.Fatalf("cells %d, want 32", len(r.Cells))
	}
	// Amplification on all four channels should not beat the clean
	// baseline TPR (attack degrades detection).
	var amp200ch4 Table3Cell
	for _, c := range r.Cells {
		if c.Amplitude == 2.0 && c.Channels == 4 {
			amp200ch4 = c
		}
	}
	if amp200ch4.TPR > r.BaselineTPR {
		t.Errorf("200%% amplification improved TPR: %.2f > baseline %.2f", amp200ch4.TPR, r.BaselineTPR)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestRunRealWorldInterference(t *testing.T) {
	l := getLab(t)
	r, err := RunRealWorldInterference(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d, want 5", len(r.Rows))
	}
	// Real-world (non-phase-synced) interference must leave predictions
	// close to clean (the paper reports no measurable effect).
	for _, row := range r.Rows {
		if math.Abs(row.MSEChangePc) > 60 {
			t.Errorf("%s at %.1fm changed MSE by %.1f%%, want small", row.Kind, row.Distance, row.MSEChangePc)
		}
	}
}

func TestRunFig2(t *testing.T) {
	r, err := RunFig2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SpectrumFreqs) == 0 {
		t.Fatal("no spectrum")
	}
	// The three groups must rise above the gap.
	for _, g := range []string{"blade", "mech", "aero"} {
		if r.GroupPeaks[g] <= r.GroupPeaks["gap"] {
			t.Errorf("group %s (%.3f) not above gap (%.3f)", g, r.GroupPeaks[g], r.GroupPeaks["gap"])
		}
	}
	// Band amplitude correlates positively with thrust while maneuvering.
	for _, name := range []string{"accelerating", "decelerating"} {
		if s := r.Series[name]; s.Correlation < 0.2 {
			t.Errorf("%s correlation %.2f, want positive", name, s.Correlation)
		}
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestRunFig3(t *testing.T) {
	r, err := RunFig3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Factors) < 4 {
		t.Fatalf("factors %v", r.Factors)
	}
	// The 1x window must be identical to the base (distance 0).
	for i, f := range r.Factors {
		if f == 1 && r.FeatureDistance[i] > 1e-9 {
			t.Errorf("1x distance %v, want 0", r.FeatureDistance[i])
		}
	}
}

func TestRunFig6(t *testing.T) {
	l := getLab(t)
	r, err := RunFig6(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.AttackFit.Sigma <= r.BenignFit.Sigma {
		t.Errorf("attack sigma %.2f not wider than benign %.2f", r.AttackFit.Sigma, r.BenignFit.Sigma)
	}
	if r.BenignHist.Total() == 0 || r.AttackHist.Total() == 0 {
		t.Error("empty histograms")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestRunFig7(t *testing.T) {
	l := getLab(t)
	r, err := RunFig7(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace.Time) == 0 {
		t.Fatal("empty trace")
	}
	if r.SpoofWindow[1] <= r.SpoofWindow[0] {
		t.Errorf("bad spoof window %v", r.SpoofWindow)
	}
}

func TestRunFrequencyImportance(t *testing.T) {
	l := getLab(t)
	rows, base, err := RunFrequencyImportance(l)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatalf("baseline MSE %v", base)
	}
	byGroup := map[string]ImportanceRow{}
	for _, r := range rows {
		byGroup[r.Group] = r
	}
	// §IV-A ordering: removing the aerodynamic group hurts most.
	aero := byGroup["aerodynamic"].Ratio
	if aero <= byGroup["blade-passing"].Ratio {
		t.Errorf("aero ratio %.2f not above blade %.2f", aero, byGroup["blade-passing"].Ratio)
	}
	if aero <= byGroup["other-noise"].Ratio {
		t.Errorf("aero ratio %.2f not above other-noise %.2f", aero, byGroup["other-noise"].Ratio)
	}
	if aero < 1.1 {
		t.Errorf("aero removal barely hurt: ratio %.2f", aero)
	}
}

func TestRunTiming(t *testing.T) {
	l := getLab(t)
	r, err := RunTiming(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.SignatureSecondsPerFlightSecond <= 0 {
		t.Error("no signature timing")
	}
	// Post hoc analysis must be far cheaper than the flight itself.
	if r.SignatureSecondsPerFlightSecond > 0.5 {
		t.Errorf("signature overhead %.2f s/s implausibly high", r.SignatureSecondsPerFlightSecond)
	}
}

func TestRunEndToEndRCA(t *testing.T) {
	l := getLab(t)
	outcomes, err := RunEndToEndRCA(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) < 3 {
		t.Fatalf("outcomes %d, want >= 3", len(outcomes))
	}
	for _, o := range outcomes {
		switch o.TrueKind {
		case "benign":
			if o.Cause != "none" {
				t.Errorf("%s: benign attributed to %s", o.Flight, o.Cause)
			}
		case "gps-drift":
			if o.Cause != "gps" {
				t.Errorf("%s: gps attack attributed to %s", o.Flight, o.Cause)
			}
		case "imu-side-swing", "imu-accel-dos":
			if o.Cause != "imu" && o.Cause != "imu+gps" {
				t.Errorf("%s: imu attack attributed to %s", o.Flight, o.Cause)
			}
		}
	}
}

func TestRunKFAblation(t *testing.T) {
	l := getLab(t)
	r, err := RunKFAblation(l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows %d, want 5", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
		if row.Threshold <= 0 {
			t.Errorf("%s: degenerate threshold", row.Variant)
		}
	}
	// Removing bias tracking must not reduce the false-positive side below
	// the full pipeline's (it is there to suppress benign drift).
	full := byName["full audio+imu"]
	noTrack := byName["no bias tracking"]
	if noTrack.FPR+1e-9 < full.FPR {
		t.Errorf("no-tracking FPR %.2f below full %.2f", noTrack.FPR, full.FPR)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}
