package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/dsp"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
	"soundboost/internal/stats"
)

// Fig2Result holds the Fig. 2 data: (a) the mean spectrum of a hover
// recording, and (b-d) per-window aerodynamic band amplitude paired with
// measured acceleration for hover / decelerate / accelerate segments.
type Fig2Result struct {
	// SpectrumFreqs / SpectrumMags sample the mean magnitude spectrum.
	SpectrumFreqs []float64
	SpectrumMags  []float64
	// GroupPeaks reports the mean magnitude of each named group.
	GroupPeaks map[string]float64
	// Series holds amplitude-vs-acceleration time series per maneuver.
	Series map[string]Fig2Series
}

// Fig2Series is one maneuver's paired series.
type Fig2Series struct {
	Time    []float64
	BandAmp []float64
	AccelZ  []float64
	// Correlation is the Pearson correlation between band amplitude and
	// thrust (-AccelZ includes gravity; thrust proxy is -AccelZ).
	Correlation float64
}

// String renders a compact summary.
func (r Fig2Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 2a: mean spectrum group magnitudes\n")
	for _, name := range []string{"blade", "mech", "aero", "gap"} {
		if v, ok := r.GroupPeaks[name]; ok {
			fmt.Fprintf(&b, "  %-6s %.3f\n", name, v)
		}
	}
	b.WriteString("Fig 2b-d: aero band amplitude vs thrust correlation\n")
	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.Series[name]
		fmt.Fprintf(&b, "  %-12s corr %.2f over %d windows\n", name, s.Correlation, len(s.Time))
	}
	return b.String()
}

// RunFig2 regenerates the Fig. 2 data from scripted maneuvers.
func RunFig2(scale Scale) (Fig2Result, error) {
	result := Fig2Result{GroupPeaks: map[string]float64{}, Series: map[string]Fig2Series{}}

	// (a) Hover spectrum.
	hover := sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 10}
	cfg := scale.genConfig(hover, scale.Seed+4100, sim.CalmWind())
	f, err := dataset.Generate(cfg)
	if err != nil {
		return result, err
	}
	spec, err := dsp.STFT(f.Audio.Channels[0], scale.AudioRate, dsp.STFTConfig{
		WindowSize: dsp.NextPow2(int(scale.AudioRate / 4)), HopSize: dsp.NextPow2(int(scale.AudioRate / 8)),
	})
	if err != nil {
		return result, err
	}
	mean := spec.MeanSpectrum()
	// Downsample the spectrum for reporting.
	stride := len(mean) / 256
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < len(mean); k += stride {
		result.SpectrumFreqs = append(result.SpectrumFreqs, dsp.BinFrequency(k, spec.NFFT, scale.AudioRate))
		result.SpectrumMags = append(result.SpectrumMags, mean[k])
	}
	groupMean := func(lo, hi float64) float64 {
		if hi < lo {
			lo, hi = hi, lo
		}
		a := dsp.FrequencyBin(lo, spec.NFFT, scale.AudioRate)
		b := dsp.FrequencyBin(hi, spec.NFFT, scale.AudioRate)
		if b >= len(mean) {
			b = len(mean) - 1
		}
		if b < a {
			return 0
		}
		s := 0.0
		for k := a; k <= b; k++ {
			s += mean[k]
		}
		return s / float64(b-a+1)
	}
	synth := scale.SignatureConfig()
	blade := float64(synth.Blades) * synth.HoverSpeed / (2 * math.Pi)
	result.GroupPeaks["blade"] = groupMean(blade*0.7, blade*1.5)
	result.GroupPeaks["mech"] = groupMean(scale.MechFreq*0.8, scale.MechFreq*1.2)
	result.GroupPeaks["aero"] = groupMean(scale.AeroFreq*0.85, scale.AeroFreq*1.12)
	result.GroupPeaks["gap"] = groupMean(blade*3, scale.MechFreq*0.6)

	// (b-d) Maneuver series: hover, descent (decelerating climb effort),
	// ascent (accelerating climb effort).
	maneuvers := map[string]sim.Mission{
		"hovering": sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 8},
		"decelerating": sim.NewWaypointMission("desc", mathx.Vec3{Z: -14}, []sim.Waypoint{
			{Pos: mathx.Vec3{Z: -8}, Speed: 1.5, HoldSeconds: 4},
		}),
		"accelerating": sim.NewWaypointMission("asc", mathx.Vec3{Z: -8}, []sim.Waypoint{
			{Pos: mathx.Vec3{Z: -16}, Speed: 2.5, HoldSeconds: 4},
		}),
	}
	sigCfg := soundboost.DefaultSignatureConfig(synth)
	for name, m := range maneuvers {
		cfg := scale.genConfig(m, scale.Seed+4200+int64(len(name)), sim.CalmWind())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return result, err
		}
		ex, err := soundboost.NewExtractor(f.Audio, sigCfg)
		if err != nil {
			return result, err
		}
		var series Fig2Series
		aeroIdx := sigCfg.BandFeatureIndices("aero-lo")
		for _, t0 := range ex.WindowStarts(sigCfg.WindowSeconds) {
			feat := ex.Features(t0, sigCfg.WindowSeconds)
			if feat == nil {
				continue
			}
			amp := 0.0
			for _, i := range aeroIdx {
				amp += feat[i]
			}
			amp /= float64(len(aeroIdx))
			tel := f.TelemetryBetween(t0, t0+sigCfg.WindowSeconds)
			if len(tel) == 0 {
				continue
			}
			var az float64
			for _, s := range tel {
				az += s.IMUAccel.Z
			}
			az /= float64(len(tel))
			series.Time = append(series.Time, t0)
			series.BandAmp = append(series.BandAmp, amp)
			series.AccelZ = append(series.AccelZ, az)
		}
		series.Correlation = pearson(series.BandAmp, negate(series.AccelZ))
		result.Series[name] = series
	}
	return result, nil
}

func negate(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = -v
	}
	return out
}

func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// Fig3Result demonstrates time-shift augmentation: the same actuation seen
// through windows of different lengths (tailwind = shorter, headwind =
// longer), all projected onto the fixed feature layout.
type Fig3Result struct {
	// Factors are the window multipliers.
	Factors []float64
	// FeatureDistance is the L2 distance of each augmented signature from
	// the base signature (grows smoothly with the factor).
	FeatureDistance []float64
}

// RunFig3 regenerates the augmentation demonstration.
func RunFig3(scale Scale) (Fig3Result, error) {
	m := sim.NewWaypointMission("accel", mathx.Vec3{Z: -10}, []sim.Waypoint{
		{Pos: mathx.Vec3{X: 10, Z: -10}, Speed: 2.5, HoldSeconds: 2},
	})
	cfg := scale.genConfig(m, scale.Seed+4400, sim.CalmWind())
	f, err := dataset.Generate(cfg)
	if err != nil {
		return Fig3Result{}, err
	}
	sigCfg := soundboost.DefaultSignatureConfig(scale.SignatureConfig())
	ex, err := soundboost.NewExtractor(f.Audio, sigCfg)
	if err != nil {
		return Fig3Result{}, err
	}
	base := ex.Features(1.0, sigCfg.WindowSeconds)
	if base == nil {
		return Fig3Result{}, fmt.Errorf("experiments: fig3 base window unavailable")
	}
	var result Fig3Result
	for _, factor := range []float64{0.5, 1, 2, 3, 5} {
		feat := ex.Features(1.0, sigCfg.WindowSeconds*factor)
		if feat == nil {
			continue
		}
		var d float64
		for i := range feat {
			diff := feat[i] - base[i]
			d += diff * diff
		}
		result.Factors = append(result.Factors, factor)
		result.FeatureDistance = append(result.FeatureDistance, math.Sqrt(d))
	}
	return result, nil
}

// Fig6Result holds the residual histograms of Fig. 6.
type Fig6Result struct {
	// BenignHist / AttackHist are the z-axis residual histograms.
	BenignHist *stats.Histogram
	AttackHist *stats.Histogram
	// BenignFit / AttackFit are fitted normals.
	BenignFit stats.Normal
	AttackFit stats.Normal
}

// String renders the distribution comparison.
func (r Fig6Result) String() string {
	return fmt.Sprintf("Fig 6: benign residuals N(%.2f, %.2f); attack residuals N(%.2f, %.2f)",
		r.BenignFit.Mu, r.BenignFit.Sigma, r.AttackFit.Mu, r.AttackFit.Sigma)
}

// RunFig6 regenerates the residual-distribution comparison from one benign
// and one DoS-attacked hover flight.
func RunFig6(lab *Lab) (Fig6Result, error) {
	var result Fig6Result
	specs := lab.Scale.IMUFlights()
	var benignSpec, attackSpec *IMUSpec
	for i := range specs {
		if specs[i].Attack && attackSpec == nil {
			attackSpec = &specs[i]
		}
		if !specs[i].Attack && benignSpec == nil {
			benignSpec = &specs[i]
		}
	}
	if benignSpec == nil || attackSpec == nil {
		return result, fmt.Errorf("experiments: fig6 needs both flight kinds")
	}
	collect := func(spec IMUSpec) (*stats.Histogram, stats.Normal, error) {
		f, err := lab.Scale.GenerateIMUFlight(spec)
		if err != nil {
			return nil, stats.Normal{}, err
		}
		h, err := lab.IMUDetector.ResidualHistogram(f, -8, 8, 60)
		if err != nil {
			return nil, stats.Normal{}, err
		}
		// Refit from the histogram samples via windows for the normal curve.
		windows, err := soundboost.BuildWindows(f, lab.Model.Config().Signature, 0, 1)
		if err != nil {
			return nil, stats.Normal{}, err
		}
		var residuals []float64
		for _, w := range windows {
			pred := lab.Model.Predict(w.Features)
			residuals = append(residuals, pred.Z-w.Label.Z)
		}
		fit, err := stats.FitNormal(residuals)
		if err != nil {
			return nil, stats.Normal{}, err
		}
		return h, fit, nil
	}
	var err error
	result.BenignHist, result.BenignFit, err = collect(*benignSpec)
	if err != nil {
		return result, err
	}
	result.AttackHist, result.AttackFit, err = collect(*attackSpec)
	if err != nil {
		return result, err
	}
	return result, nil
}

// Fig7Result holds the z-axis position/velocity estimation trace during a
// GPS spoofing period.
type Fig7Result struct {
	// Trace is the detector's diagnostic series.
	Trace *soundboost.GPSTrace
	// SpoofWindow bounds the attack.
	SpoofWindow [2]float64
	// Verdict is the detection outcome.
	Attacked      bool
	DetectionTime float64
}

// RunFig7 regenerates the Fig. 7 trace: a hover mission under a vertical
// drift spoof analysed with the audio+IMU KF.
func RunFig7(lab *Lab) (Fig7Result, error) {
	var zSpec *PeriodSpec
	specs := lab.Scale.GPSPeriods()
	for i := range specs {
		if specs[i].Attack && specs[i].Offset.Z != 0 {
			zSpec = &specs[i]
			break
		}
	}
	if zSpec == nil {
		for i := range specs {
			if specs[i].Attack {
				zSpec = &specs[i]
				break
			}
		}
	}
	if zSpec == nil {
		return Fig7Result{}, fmt.Errorf("experiments: no attack period for fig7")
	}
	f, err := lab.Scale.GeneratePeriod(*zSpec)
	if err != nil {
		return Fig7Result{}, err
	}
	trace, err := lab.GPSAudioIMU.Trace(f)
	if err != nil {
		return Fig7Result{}, err
	}
	v, err := lab.GPSAudioIMU.Detect(f)
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7Result{
		Trace:         trace,
		SpoofWindow:   [2]float64{zSpec.Window.Start, zSpec.Window.End},
		Attacked:      v.Attacked,
		DetectionTime: v.DetectionTime,
	}, nil
}

// ImportanceRow is one frequency-group counterfactual result (§IV-A).
type ImportanceRow struct {
	// Group names the removed frequency group.
	Group string
	// MSE is the model error with the group removed from the signal.
	MSE float64
	// Ratio is MSE / baseline MSE.
	Ratio float64
}

// RunFrequencyImportance regenerates the counterfactual band-removal
// analysis over the lab's calibration flights.
func RunFrequencyImportance(lab *Lab) ([]ImportanceRow, float64, error) {
	flights := lab.Calib
	if len(flights) > 3 {
		flights = flights[:3]
	}
	base, err := soundboost.EvaluateMSE(lab.Model, flights)
	if err != nil {
		return nil, 0, err
	}
	synth := lab.Scale.SignatureConfig()
	blade := float64(synth.Blades) * synth.HoverSpeed / (2 * math.Pi)
	groups := []struct {
		name   string
		center float64
		q      float64
	}{
		{"aerodynamic", lab.Scale.AeroFreq, 3},
		{"blade-passing", blade, 2},
		{"mechanical", lab.Scale.MechFreq, 3},
		{"other-noise", (blade*3 + lab.Scale.MechFreq*0.6) / 2, 1.5},
	}
	var rows []ImportanceRow
	for _, g := range groups {
		mse, err := soundboost.EvaluateMSEBandRemoved(lab.Model, flights, g.center, g.q)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, ImportanceRow{Group: g.name, MSE: mse, Ratio: mse / base})
	}
	return rows, base, nil
}

// TimingResult reports the runtime overhead figures of §IV-C.
type TimingResult struct {
	// SignatureSecondsPerFlightSecond is the signature-generation cost per
	// second of flight (the paper reports 2.4% overhead).
	SignatureSecondsPerFlightSecond float64
	// IMUDetectSeconds and GPSDetectSeconds are per-flight analysis times.
	IMUDetectSeconds float64
	GPSDetectSeconds float64
}

// RunTiming measures the analysis overheads on one calibration flight.
func RunTiming(lab *Lab) (TimingResult, error) {
	f := lab.Calib[0]
	var result TimingResult

	start := time.Now()
	sigCfg := lab.Model.Config().Signature
	ex, err := soundboost.NewExtractor(f.Audio, sigCfg)
	if err != nil {
		return result, err
	}
	n := 0
	for _, t0 := range ex.WindowStarts(sigCfg.WindowSeconds) {
		if ex.Features(t0, sigCfg.WindowSeconds) != nil {
			n++
		}
	}
	if n == 0 {
		return result, fmt.Errorf("experiments: timing flight too short")
	}
	result.SignatureSecondsPerFlightSecond = time.Since(start).Seconds() / f.Duration()

	start = time.Now()
	if _, err := lab.IMUDetector.Detect(f); err != nil {
		return result, err
	}
	result.IMUDetectSeconds = time.Since(start).Seconds()

	start = time.Now()
	if _, err := lab.GPSAudioIMU.Detect(f); err != nil {
		return result, err
	}
	result.GPSDetectSeconds = time.Since(start).Seconds()
	return result, nil
}
