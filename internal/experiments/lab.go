package experiments

import (
	"fmt"
	"time"

	"soundboost/internal/baselines"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/nn"
	"soundboost/internal/obs"
	"soundboost/internal/parallel"
)

// Lab-build stage timers, gated by obs.Enable: corpus generation (all
// simulated flights), model training, and detector calibration, plus
// the end-to-end build.
var (
	labBuildTimer     = obs.Default.Timer("experiments.lab.build")
	labCorpusTimer    = obs.Default.Timer("experiments.lab.corpus")
	labTrainTimer     = obs.Default.Timer("experiments.lab.train")
	labCalibrateTimer = obs.Default.Timer("experiments.lab.calibrate")
)

// Lab holds the trained model, calibrated detectors, and the benign
// corpora shared by all experiments at one scale. Building a Lab is the
// expensive one-time step (paper §IV-C: "offline training and parameter
// tuning... only need to be performed once for each UAV model").
type Lab struct {
	// Scale is the experiment scale.
	Scale Scale
	// Model is the trained acoustic model.
	Model *soundboost.AcousticModel
	// History is the model's training history.
	History nn.TrainHistory
	// TrainMSE, ValMSE, TestMSE summarise the model fit.
	TrainMSE, ValMSE, TestMSE float64

	// Calib are the benign detector-calibration flights (held in memory).
	Calib []*dataset.Flight
	// GPSCalib are benign flights with the *period* duration profile, used
	// to calibrate the velocity-error detectors: thresholds must be learned
	// on flights as long as the periods they will judge, or accumulated
	// drift makes them systematically optimistic.
	GPSCalib []*dataset.Flight
	// Val are the validation flights.
	Val []*dataset.Flight

	// Detectors calibrated once.
	IMUDetector  *soundboost.IMUDetector
	GPSAudioOnly *soundboost.GPSDetector
	GPSAudioIMU  *soundboost.GPSDetector
	Failsafe     *baselines.Failsafe
	LTIYaw       *baselines.LTI
	LTIVx        *baselines.LTI
	LTIVy        *baselines.LTI
	DNN          *baselines.DNN

	// BuildSeconds records how long the lab took to assemble.
	BuildSeconds float64

	// logf receives progress lines.
	logf func(format string, args ...any)
}

// LabOption customises lab construction.
type LabOption func(*labOptions)

type labOptions struct {
	logf func(format string, args ...any)
}

// WithLogf streams progress lines during lab construction.
func WithLogf(f func(format string, args ...any)) LabOption {
	return func(o *labOptions) { o.logf = f }
}

// NewLab generates the training corpus, trains the acoustic model, and
// calibrates every detector (SoundBoost's two stages plus all baselines).
func NewLab(scale Scale, opts ...LabOption) (*Lab, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	var o labOptions
	for _, opt := range opts {
		opt(&o)
	}
	logf := o.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	buildSpan := labBuildTimer.Start()
	defer buildSpan.Stop()
	corpusSpan := labCorpusTimer.Start()

	sigCfg := soundboost.DefaultSignatureConfig(scale.SignatureConfig())
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = scale.Hidden
	mapCfg.Train.Epochs = scale.Epochs
	mapCfg.Seed = scale.Seed

	lab := &Lab{Scale: scale, logf: logf}

	// --- Training corpus: flights generate and extract independently, so
	// they fan out across the worker pool; pairs concatenate in flight
	// order, keeping the dataset identical to the serial build.
	type flightPairs struct {
		mission string
		xs, ys  [][]float64
	}
	trainParts, err := parallel.MapErr(0, scale.TrainFlights, func(i int) (flightPairs, error) {
		missions := trainingMissions(scale, i)
		mission := missions[i%len(missions)]
		cfg := scale.genConfig(mission, scale.Seed+100+int64(i)*7, windCycle(i))
		cfg.Name = fmt.Sprintf("train-%02d-%s", i, mission.Name())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return flightPairs{}, fmt.Errorf("experiments: train flight %d: %w", i, err)
		}
		fx, fy, err := soundboost.ExtractTrainingWindows(f, mapCfg, i)
		if err != nil {
			return flightPairs{}, fmt.Errorf("experiments: extract flight %d: %w", i, err)
		}
		return flightPairs{mission: mission.Name(), xs: fx, ys: fy}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys [][]float64
	for i, part := range trainParts {
		xs = append(xs, part.xs...)
		ys = append(ys, part.ys...)
		logf("train flight %d/%d (%s): %d windows", i+1, scale.TrainFlights, part.mission, len(part.xs))
	}

	// --- Validation corpus (kept for MSE reporting).
	lab.Val, err = parallel.MapErr(0, scale.ValFlights, func(i int) (*dataset.Flight, error) {
		missions := trainingMissions(scale, i+1)
		mission := missions[(i*2+1)%len(missions)]
		cfg := scale.genConfig(mission, scale.Seed+300+int64(i)*11, windCycle(i+1))
		cfg.Name = fmt.Sprintf("val-%02d-%s", i, mission.Name())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: val flight %d: %w", i, err)
		}
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	var valX, valY [][]float64
	for i, f := range lab.Val {
		windows, err := soundboost.BuildWindows(f, sigCfg, i, 1)
		if err != nil {
			return nil, err
		}
		for _, w := range windows {
			valX = append(valX, w.Features)
			valY = append(valY, w.Label.Slice())
		}
	}

	corpusSpan.Stop()

	logf("training model on %d windows (%d val)", len(xs), len(valX))
	trainSpan := labTrainTimer.Start()
	model, hist, err := soundboost.TrainModelFromSamples(xs, ys, valX, valY, mapCfg)
	trainSpan.Stop()
	if err != nil {
		return nil, fmt.Errorf("experiments: train model: %w", err)
	}
	lab.Model = model
	lab.History = hist
	if n := len(hist.TrainMSE); n > 0 {
		lab.TrainMSE = hist.TrainMSE[n-1]
	}
	if n := len(hist.ValMSE); n > 0 {
		lab.ValMSE = hist.ValMSE[n-1]
	}

	// --- Calibration corpus: mission-diverse benign flights.
	calibSpan := labCalibrateTimer.Start()
	defer calibSpan.Stop()
	lab.Calib, err = parallel.MapErr(0, scale.CalibFlights, func(i int) (*dataset.Flight, error) {
		missions := trainingMissions(scale, i+2)
		mission := missions[i%len(missions)]
		cfg := scale.genConfig(mission, scale.Seed+500+int64(i)*13, windCycle(i))
		cfg.Name = fmt.Sprintf("calib-%02d-%s", i, mission.Name())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: calib flight %d: %w", i, err)
		}
		return f, nil
	})
	if err != nil {
		return nil, err
	}
	if mse, err := soundboost.EvaluateMSE(model, lab.Calib); err == nil {
		lab.TestMSE = mse
	}

	// --- GPS calibration corpus: benign periods with the same duration
	// profile as the Tab. II periods.
	nGPSCalib := scale.CalibFlights
	if nGPSCalib < 8 {
		nGPSCalib = 8
	}
	lab.GPSCalib, err = parallel.MapErr(0, nGPSCalib, func(i int) (*dataset.Flight, error) {
		spec := PeriodSpec{
			Index:    i,
			Seed:     scale.Seed + 700 + int64(i)*29,
			Duration: scale.GPSPeriodMin + float64(i%3)/2*(scale.GPSPeriodMax-scale.GPSPeriodMin),
			Mission:  map[bool]string{true: "square", false: "hover"}[i%2 == 1],
		}
		f, err := scale.GeneratePeriod(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: gps calib %d: %w", i, err)
		}
		f.Name = fmt.Sprintf("gps-calib-%02d", i)
		return f, nil
	})
	if err != nil {
		return nil, err
	}

	// --- Detectors: the eight calibrations are independent, so they run
	// concurrently on the worker pool. Each writes a distinct Lab field.
	logf("calibrating detectors on %d benign flights", len(lab.Calib))
	dnnCfg := baselines.DefaultDNNConfig()
	if scale.Name == "quick" {
		dnnCfg.Train.Epochs = 8
	}
	err = parallel.Run(0,
		func() (err error) {
			lab.IMUDetector, err = soundboost.NewIMUDetector(model, lab.Calib, soundboost.DefaultIMUDetectorConfig())
			if err != nil {
				err = fmt.Errorf("experiments: IMU detector: %w", err)
			}
			return
		},
		func() (err error) {
			lab.GPSAudioOnly, err = soundboost.NewGPSDetector(model, lab.GPSCalib, soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioOnly))
			if err != nil {
				err = fmt.Errorf("experiments: audio-only detector: %w", err)
			}
			return
		},
		func() (err error) {
			lab.GPSAudioIMU, err = soundboost.NewGPSDetector(model, lab.GPSCalib, soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioIMU))
			if err != nil {
				err = fmt.Errorf("experiments: audio+IMU detector: %w", err)
			}
			return
		},
		func() (err error) {
			lab.Failsafe, err = baselines.NewFailsafe(lab.GPSCalib, baselines.DefaultFailsafeConfig())
			if err != nil {
				err = fmt.Errorf("experiments: failsafe: %w", err)
			}
			return
		},
		func() (err error) {
			lab.LTIYaw, err = baselines.NewLTI(lab.Calib, baselines.DefaultLTIConfig(baselines.LTIYaw))
			if err != nil {
				err = fmt.Errorf("experiments: LTI yaw: %w", err)
			}
			return
		},
		func() (err error) {
			lab.LTIVx, err = baselines.NewLTI(lab.Calib, baselines.DefaultLTIConfig(baselines.LTIVx))
			if err != nil {
				err = fmt.Errorf("experiments: LTI vx: %w", err)
			}
			return
		},
		func() (err error) {
			lab.LTIVy, err = baselines.NewLTI(lab.Calib, baselines.DefaultLTIConfig(baselines.LTIVy))
			if err != nil {
				err = fmt.Errorf("experiments: LTI vy: %w", err)
			}
			return
		},
		func() (err error) {
			lab.DNN, err = baselines.NewDNN(lab.Calib, dnnCfg)
			if err != nil {
				err = fmt.Errorf("experiments: DNN: %w", err)
			}
			return
		},
	)
	if err != nil {
		return nil, err
	}

	lab.BuildSeconds = time.Since(start).Seconds()
	logf("lab ready in %.1fs (train MSE %.4f, val MSE %.4f, test MSE %.4f)",
		lab.BuildSeconds, lab.TrainMSE, lab.ValMSE, lab.TestMSE)
	return lab, nil
}

// Analyzer assembles the full two-stage RCA pipeline from the lab's
// detectors.
func (l *Lab) Analyzer() *soundboost.Analyzer {
	return &soundboost.Analyzer{
		Model:        l.Model,
		IMU:          l.IMUDetector,
		GPSAudioOnly: l.GPSAudioOnly,
		GPSAudioIMU:  l.GPSAudioIMU,
	}
}
