package experiments

import (
	"fmt"
	"time"

	"soundboost/internal/baselines"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/nn"
)

// Lab holds the trained model, calibrated detectors, and the benign
// corpora shared by all experiments at one scale. Building a Lab is the
// expensive one-time step (paper §IV-C: "offline training and parameter
// tuning... only need to be performed once for each UAV model").
type Lab struct {
	// Scale is the experiment scale.
	Scale Scale
	// Model is the trained acoustic model.
	Model *soundboost.AcousticModel
	// History is the model's training history.
	History nn.TrainHistory
	// TrainMSE, ValMSE, TestMSE summarise the model fit.
	TrainMSE, ValMSE, TestMSE float64

	// Calib are the benign detector-calibration flights (held in memory).
	Calib []*dataset.Flight
	// GPSCalib are benign flights with the *period* duration profile, used
	// to calibrate the velocity-error detectors: thresholds must be learned
	// on flights as long as the periods they will judge, or accumulated
	// drift makes them systematically optimistic.
	GPSCalib []*dataset.Flight
	// Val are the validation flights.
	Val []*dataset.Flight

	// Detectors calibrated once.
	IMUDetector  *soundboost.IMUDetector
	GPSAudioOnly *soundboost.GPSDetector
	GPSAudioIMU  *soundboost.GPSDetector
	Failsafe     *baselines.Failsafe
	LTIYaw       *baselines.LTI
	LTIVx        *baselines.LTI
	LTIVy        *baselines.LTI
	DNN          *baselines.DNN

	// BuildSeconds records how long the lab took to assemble.
	BuildSeconds float64

	// logf receives progress lines.
	logf func(format string, args ...any)
}

// LabOption customises lab construction.
type LabOption func(*labOptions)

type labOptions struct {
	logf func(format string, args ...any)
}

// WithLogf streams progress lines during lab construction.
func WithLogf(f func(format string, args ...any)) LabOption {
	return func(o *labOptions) { o.logf = f }
}

// NewLab generates the training corpus, trains the acoustic model, and
// calibrates every detector (SoundBoost's two stages plus all baselines).
func NewLab(scale Scale, opts ...LabOption) (*Lab, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	var o labOptions
	for _, opt := range opts {
		opt(&o)
	}
	logf := o.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()

	sigCfg := soundboost.DefaultSignatureConfig(scale.SignatureConfig())
	mapCfg := soundboost.DefaultMappingConfig(sigCfg)
	mapCfg.Hidden = scale.Hidden
	mapCfg.Train.Epochs = scale.Epochs
	mapCfg.Seed = scale.Seed

	lab := &Lab{Scale: scale, logf: logf}

	// --- Training corpus: stream flights into feature pairs.
	var xs, ys [][]float64
	missionCounter := 0
	for i := 0; i < scale.TrainFlights; i++ {
		missions := trainingMissions(scale, i)
		mission := missions[missionCounter%len(missions)]
		missionCounter++
		cfg := scale.genConfig(mission, scale.Seed+100+int64(i)*7, windCycle(i))
		cfg.Name = fmt.Sprintf("train-%02d-%s", i, mission.Name())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: train flight %d: %w", i, err)
		}
		fx, fy, err := soundboost.ExtractTrainingWindows(f, mapCfg, i)
		if err != nil {
			return nil, fmt.Errorf("experiments: extract flight %d: %w", i, err)
		}
		xs = append(xs, fx...)
		ys = append(ys, fy...)
		logf("train flight %d/%d (%s): %d windows", i+1, scale.TrainFlights, mission.Name(), len(fx))
	}

	// --- Validation corpus (kept for MSE reporting).
	for i := 0; i < scale.ValFlights; i++ {
		missions := trainingMissions(scale, i+1)
		mission := missions[(i*2+1)%len(missions)]
		cfg := scale.genConfig(mission, scale.Seed+300+int64(i)*11, windCycle(i+1))
		cfg.Name = fmt.Sprintf("val-%02d-%s", i, mission.Name())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: val flight %d: %w", i, err)
		}
		lab.Val = append(lab.Val, f)
	}
	var valX, valY [][]float64
	for i, f := range lab.Val {
		windows, err := soundboost.BuildWindows(f, sigCfg, i, 1)
		if err != nil {
			return nil, err
		}
		for _, w := range windows {
			valX = append(valX, w.Features)
			valY = append(valY, w.Label.Slice())
		}
	}

	logf("training model on %d windows (%d val)", len(xs), len(valX))
	model, hist, err := soundboost.TrainModelFromSamples(xs, ys, valX, valY, mapCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: train model: %w", err)
	}
	lab.Model = model
	lab.History = hist
	if n := len(hist.TrainMSE); n > 0 {
		lab.TrainMSE = hist.TrainMSE[n-1]
	}
	if n := len(hist.ValMSE); n > 0 {
		lab.ValMSE = hist.ValMSE[n-1]
	}

	// --- Calibration corpus: mission-diverse benign flights.
	for i := 0; i < scale.CalibFlights; i++ {
		missions := trainingMissions(scale, i+2)
		mission := missions[i%len(missions)]
		cfg := scale.genConfig(mission, scale.Seed+500+int64(i)*13, windCycle(i))
		cfg.Name = fmt.Sprintf("calib-%02d-%s", i, mission.Name())
		f, err := dataset.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: calib flight %d: %w", i, err)
		}
		lab.Calib = append(lab.Calib, f)
	}
	if mse, err := soundboost.EvaluateMSE(model, lab.Calib); err == nil {
		lab.TestMSE = mse
	}

	// --- GPS calibration corpus: benign periods with the same duration
	// profile as the Tab. II periods.
	nGPSCalib := scale.CalibFlights
	if nGPSCalib < 8 {
		nGPSCalib = 8
	}
	for i := 0; i < nGPSCalib; i++ {
		spec := PeriodSpec{
			Index:    i,
			Seed:     scale.Seed + 700 + int64(i)*29,
			Duration: scale.GPSPeriodMin + float64(i%3)/2*(scale.GPSPeriodMax-scale.GPSPeriodMin),
			Mission:  map[bool]string{true: "square", false: "hover"}[i%2 == 1],
		}
		f, err := scale.GeneratePeriod(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: gps calib %d: %w", i, err)
		}
		f.Name = fmt.Sprintf("gps-calib-%02d", i)
		lab.GPSCalib = append(lab.GPSCalib, f)
	}

	// --- Detectors.
	logf("calibrating detectors on %d benign flights", len(lab.Calib))
	lab.IMUDetector, err = soundboost.NewIMUDetector(model, lab.Calib, soundboost.DefaultIMUDetectorConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: IMU detector: %w", err)
	}
	lab.GPSAudioOnly, err = soundboost.NewGPSDetector(model, lab.GPSCalib, soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioOnly))
	if err != nil {
		return nil, fmt.Errorf("experiments: audio-only detector: %w", err)
	}
	lab.GPSAudioIMU, err = soundboost.NewGPSDetector(model, lab.GPSCalib, soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioIMU))
	if err != nil {
		return nil, fmt.Errorf("experiments: audio+IMU detector: %w", err)
	}
	lab.Failsafe, err = baselines.NewFailsafe(lab.GPSCalib, baselines.DefaultFailsafeConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: failsafe: %w", err)
	}
	lab.LTIYaw, err = baselines.NewLTI(lab.Calib, baselines.DefaultLTIConfig(baselines.LTIYaw))
	if err != nil {
		return nil, fmt.Errorf("experiments: LTI yaw: %w", err)
	}
	lab.LTIVx, err = baselines.NewLTI(lab.Calib, baselines.DefaultLTIConfig(baselines.LTIVx))
	if err != nil {
		return nil, fmt.Errorf("experiments: LTI vx: %w", err)
	}
	lab.LTIVy, err = baselines.NewLTI(lab.Calib, baselines.DefaultLTIConfig(baselines.LTIVy))
	if err != nil {
		return nil, fmt.Errorf("experiments: LTI vy: %w", err)
	}
	dnnCfg := baselines.DefaultDNNConfig()
	if scale.Name == "quick" {
		dnnCfg.Train.Epochs = 8
	}
	lab.DNN, err = baselines.NewDNN(lab.Calib, dnnCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: DNN: %w", err)
	}

	lab.BuildSeconds = time.Since(start).Seconds()
	logf("lab ready in %.1fs (train MSE %.4f, val MSE %.4f, test MSE %.4f)",
		lab.BuildSeconds, lab.TrainMSE, lab.ValMSE, lab.TestMSE)
	return lab, nil
}

// Analyzer assembles the full two-stage RCA pipeline from the lab's
// detectors.
func (l *Lab) Analyzer() *soundboost.Analyzer {
	return &soundboost.Analyzer{
		Model:        l.Model,
		IMU:          l.IMUDetector,
		GPSAudioOnly: l.GPSAudioOnly,
		GPSAudioIMU:  l.GPSAudioIMU,
	}
}
