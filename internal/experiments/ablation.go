package experiments

import (
	"fmt"
	"strings"

	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/stats"
)

// AblationRow is one detector variant's result in the design-choice
// ablation.
type AblationRow struct {
	// Variant names the configuration.
	Variant string
	// TPR and FPR over the subsampled period set.
	TPR float64
	FPR float64
	// Threshold is the variant's calibrated threshold.
	Threshold float64
}

// AblationResult compares the GPS RCA design choices: the full audio+IMU
// pipeline against variants with alignment, bias tracking, or adaptive
// measurement trust disabled.
type AblationResult struct {
	Rows []AblationRow
}

// String renders the comparison.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %6s %10s\n", "Variant", "TPR", "FPR", "Threshold")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %6.2f %6.2f %10.2f\n", row.Variant, row.TPR, row.FPR, row.Threshold)
	}
	return b.String()
}

// RunKFAblation evaluates the GPS-stage design choices over the Tab. III
// period subsample. Each variant is recalibrated on the lab's GPS
// calibration corpus so thresholds stay fair.
func RunKFAblation(lab *Lab, logf func(string, ...any)) (AblationResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	scale := lab.Scale

	variants := []struct {
		name   string
		mutate func(*soundboost.GPSDetectorConfig)
	}{
		{"full audio+imu", func(c *soundboost.GPSDetectorConfig) {}},
		{"no alignment", func(c *soundboost.GPSDetectorConfig) { c.AlignSeconds = 0 }},
		{"no bias tracking", func(c *soundboost.GPSDetectorConfig) { c.BiasTauSeconds = 0 }},
		{"no adaptive trust", func(c *soundboost.GPSDetectorConfig) { c.Velocity.AdaptiveR = false }},
		{"audio-only kf", func(c *soundboost.GPSDetectorConfig) {
			c.Mode = kalman.ModeAudioOnly
			c.Velocity = kalman.DefaultVelocityConfig(kalman.ModeAudioOnly)
		}},
	}

	// Shared period subsample (same as Tab. III).
	var specs []PeriodSpec
	var nb, na int
	for _, spec := range scale.GPSPeriods() {
		if spec.Attack && na < scale.Tab3Attack {
			specs = append(specs, spec)
			na++
		}
		if !spec.Attack && nb < scale.Tab3Benign {
			specs = append(specs, spec)
			nb++
		}
	}
	flights := make([]*flightWithSpec, 0, len(specs))
	for _, spec := range specs {
		f, err := scale.GeneratePeriod(spec)
		if err != nil {
			return AblationResult{}, err
		}
		flights = append(flights, &flightWithSpec{flight: f, attack: spec.Attack})
	}

	var result AblationResult
	for _, v := range variants {
		cfg := soundboost.DefaultGPSDetectorConfig(kalman.ModeAudioIMU)
		v.mutate(&cfg)
		det, err := soundboost.NewGPSDetector(lab.Model, lab.GPSCalib, cfg)
		if err != nil {
			return AblationResult{}, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		var counts stats.ConfusionCounts
		for _, fw := range flights {
			verdict, err := det.Detect(fw.flight)
			if err != nil {
				return AblationResult{}, err
			}
			counts.Record(fw.attack, verdict.Attacked)
		}
		row := AblationRow{Variant: v.name, TPR: counts.TPR(), FPR: counts.FPR(), Threshold: det.Threshold()}
		result.Rows = append(result.Rows, row)
		logf("ablation %-20s TPR %.2f FPR %.2f", v.name, row.TPR, row.FPR)
	}
	return result, nil
}

type flightWithSpec struct {
	flight *dataset.Flight
	attack bool
}
