// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) from the simulated substrate: Tab. I (augmentation
// sweep), the frequency-importance analysis, the IMU biasing experiment,
// Tab. II (GPS spoofing detection vs baselines), Tab. III (adversarial
// phase-synchronised sound attacks), and Figs. 2, 3, 6 and 7.
//
// Every experiment is parameterised by a Scale: PaperScale reproduces the
// paper's corpus sizes (36 training flights, 30 benign + 19 attack GPS
// periods, 20 IMU flights); BenchScale is a reduced but representative
// configuration for the benchmark harness; QuickScale is a minimal smoke
// configuration for tests.
package experiments

import (
	"fmt"
	"math/rand"

	"soundboost/internal/acoustics"
	"soundboost/internal/attack"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// Scale sets the corpus sizes, signal rates, and model budget of an
// experiment run.
type Scale struct {
	// Name labels the scale in output.
	Name string

	// TrainFlights is the training corpus size (paper: 36).
	TrainFlights int
	// ValFlights is the validation corpus size.
	ValFlights int
	// CalibFlights is the benign detector-calibration corpus size.
	CalibFlights int

	// GPSBenign and GPSAttack are the Tab. II period counts (paper: 30/19).
	GPSBenign int
	GPSAttack int
	// GPSPeriodMin/Max bound the per-period duration (paper: 60-90 s).
	GPSPeriodMin float64
	GPSPeriodMax float64

	// IMUBenign and IMUAttack are the §IV-B flight counts (paper: 10/10).
	IMUBenign int
	IMUAttack int
	// IMUFlightSeconds is the hover length of each IMU-experiment flight.
	IMUFlightSeconds float64
	// IMUAttackSeconds is the spoofing-event length (paper: 10 s).
	IMUAttackSeconds float64

	// Tab3Benign / Tab3Attack subsample the period counts for the
	// adversarial grid (the grid multiplies runs by amplitude x channels).
	Tab3Benign int
	Tab3Attack int

	// AudioRate, MechFreq, AeroFreq set the acoustic layout.
	AudioRate float64
	MechFreq  float64
	AeroFreq  float64
	// PhysicsRate, ControlRate, IMURate set the simulation rates.
	PhysicsRate float64
	ControlRate float64
	IMURate     float64
	// MaxVel caps the autopilot's velocity envelope (m/s).
	MaxVel float64

	// Hidden and Epochs set the acoustic model budget.
	Hidden int
	Epochs int

	// Seed drives all randomness of the run.
	Seed int64
}

// PaperScale mirrors the paper's corpus sizes at full signal rates.
func PaperScale() Scale {
	return Scale{
		Name:             "paper",
		TrainFlights:     36,
		ValFlights:       6,
		CalibFlights:     10,
		GPSBenign:        30,
		GPSAttack:        19,
		GPSPeriodMin:     60,
		GPSPeriodMax:     90,
		IMUBenign:        10,
		IMUAttack:        10,
		IMUFlightSeconds: 30,
		IMUAttackSeconds: 10,
		Tab3Benign:       10,
		Tab3Attack:       10,
		AudioRate:        16000,
		MechFreq:         2500,
		AeroFreq:         5500,
		PhysicsRate:      500,
		ControlRate:      250,
		IMURate:          250,
		MaxVel:           3,
		Hidden:           64,
		Epochs:           60,
		Seed:             1,
	}
}

// BenchScale is a reduced configuration sized for the benchmark harness on
// a single-core host. The frequency layout stays at the paper's values so
// spectra remain faithful.
func BenchScale() Scale {
	s := PaperScale()
	s.Name = "bench"
	s.TrainFlights = 18
	s.ValFlights = 3
	s.CalibFlights = 8
	s.GPSBenign = 8
	s.GPSAttack = 6
	s.GPSPeriodMin = 30
	s.GPSPeriodMax = 40
	s.IMUBenign = 4
	s.IMUAttack = 4
	s.IMUFlightSeconds = 18
	s.IMUAttackSeconds = 8
	s.Tab3Benign = 4
	s.Tab3Attack = 4
	s.AudioRate = 16000
	s.Epochs = 40
	return s
}

// QuickScale is the minimal smoke configuration for tests: reduced rates
// and a shifted (but proportionate) frequency layout.
func QuickScale() Scale {
	s := BenchScale()
	s.Name = "quick"
	s.TrainFlights = 9
	s.ValFlights = 1
	s.CalibFlights = 4
	s.GPSBenign = 3
	s.GPSAttack = 2
	s.GPSPeriodMin = 28
	s.GPSPeriodMax = 34
	s.IMUBenign = 2
	s.IMUAttack = 2
	s.IMUFlightSeconds = 14
	s.IMUAttackSeconds = 6
	s.Tab3Benign = 2
	s.Tab3Attack = 2
	s.AudioRate = 4000
	s.MechFreq = 900
	s.AeroFreq = 1500
	s.PhysicsRate = 250
	s.ControlRate = 125
	s.IMURate = 125
	s.Hidden = 48
	s.Epochs = 60
	return s
}

// Validate reports scale configuration errors.
func (s Scale) Validate() error {
	switch {
	case s.TrainFlights < 1:
		return fmt.Errorf("experiments: need at least 1 training flight")
	case s.CalibFlights < 1:
		return fmt.Errorf("experiments: need at least 1 calibration flight")
	case s.AeroFreq >= s.AudioRate/2:
		return fmt.Errorf("experiments: aero band %g above Nyquist %g", s.AeroFreq, s.AudioRate/2)
	case s.GPSPeriodMax < s.GPSPeriodMin:
		return fmt.Errorf("experiments: GPS period bounds inverted")
	default:
		return nil
	}
}

// genConfig builds the dataset generation config for one flight.
func (s Scale) genConfig(mission sim.Mission, seed int64, wind sim.WindConfig) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = s.PhysicsRate
	cfg.World.ControlRate = s.ControlRate
	cfg.World.IMU.SampleRate = s.IMURate
	cfg.World.Controller.MaxVel = s.MaxVel
	cfg.World.Wind = wind
	cfg.Synth.SampleRate = s.AudioRate
	cfg.Synth.MechFreq = s.MechFreq
	cfg.Synth.AeroFreq = s.AeroFreq
	return cfg
}

// windCycle rotates the outdoor conditions the paper's corpus covers.
func windCycle(i int) sim.WindConfig {
	switch i % 3 {
	case 1:
		return sim.BreezyWind()
	case 2:
		return sim.GustyWind()
	default:
		return sim.CalmWind()
	}
}

// trainingMissions builds the 6-family mission rotation (paper §IV-A: six
// extended navigation scenarios), bounded by the scale's envelope.
func trainingMissions(s Scale, variant int) []sim.Mission {
	alt := -8.0 - float64(variant%3)*2
	leg := 6.0 + float64(variant%3)*2
	v := mathx.Clamp(1.5+float64(variant%3), 1, s.MaxVel)
	hover := sim.HoverMission{Point: mathx.Vec3{Z: alt}, Seconds: 22}
	column := sim.NewWaypointMission("column", mathx.Vec3{Z: alt}, []sim.Waypoint{
		{Pos: mathx.Vec3{Z: alt - 5}, Speed: v, HoldSeconds: 2},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 2},
	})
	dash := sim.NewWaypointMission("dash", mathx.Vec3{Z: alt}, []sim.Waypoint{
		{Pos: mathx.Vec3{X: leg * 1.5, Z: alt}, Speed: v, HoldSeconds: 2},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 2},
	})
	square := sim.NewWaypointMission("square", mathx.Vec3{Z: alt}, []sim.Waypoint{
		{Pos: mathx.Vec3{X: leg, Z: alt}, Speed: v, HoldSeconds: 1},
		{Pos: mathx.Vec3{X: leg, Y: leg, Z: alt}, Speed: v, HoldSeconds: 1},
		{Pos: mathx.Vec3{Y: leg, Z: alt}, Speed: v, HoldSeconds: 1},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 1},
	})
	sweep := sim.NewWaypointMission("sweep", mathx.Vec3{Z: alt}, []sim.Waypoint{
		{Pos: mathx.Vec3{X: leg, Z: alt}, Speed: v},
		{Pos: mathx.Vec3{X: leg, Y: leg / 2, Z: alt}, Speed: v / 2},
		{Pos: mathx.Vec3{Y: leg / 2, Z: alt}, Speed: v},
		{Pos: mathx.Vec3{Z: alt}, Speed: v / 2, HoldSeconds: 2},
	})
	circuit := sim.NewWaypointMission("circuit", mathx.Vec3{Z: alt}, []sim.Waypoint{
		{Pos: mathx.Vec3{X: leg, Y: -leg / 2, Z: alt - 2}, Speed: v},
		{Pos: mathx.Vec3{X: leg / 2, Y: leg, Z: alt}, Speed: v},
		{Pos: mathx.Vec3{Z: alt}, Speed: v, HoldSeconds: 2},
	})
	return []sim.Mission{hover, column, dash, square, sweep, circuit}
}

// PeriodSpec describes one Tab. II flight period.
type PeriodSpec struct {
	// Index numbers the period within its class.
	Index int
	// Attack marks GPS-spoofed periods.
	Attack bool
	// Seed drives the period's generation.
	Seed int64
	// Duration is the period length (s).
	Duration float64
	// Window is the spoofing window (attack periods).
	Window attack.Window
	// Offset is the spoof drift offset (attack periods).
	Offset mathx.Vec3
	// Mission names the flight plan family ("hover" or "square").
	Mission string
}

// GPSPeriods enumerates the Tab. II periods for the scale,
// deterministically from the scale seed.
func (s Scale) GPSPeriods() []PeriodSpec {
	rng := rand.New(rand.NewSource(s.Seed + 5000))
	var specs []PeriodSpec
	for i := 0; i < s.GPSBenign; i++ {
		dur := s.GPSPeriodMin + rng.Float64()*(s.GPSPeriodMax-s.GPSPeriodMin)
		mission := "hover"
		if i%2 == 1 {
			mission = "square"
		}
		specs = append(specs, PeriodSpec{
			Index:    i,
			Seed:     s.Seed + 6000 + int64(i)*13,
			Duration: dur,
			Mission:  mission,
		})
	}
	for i := 0; i < s.GPSAttack; i++ {
		dur := s.GPSPeriodMin + rng.Float64()*(s.GPSPeriodMax-s.GPSPeriodMin)
		start := dur * (0.12 + rng.Float64()*0.1)
		end := dur * 0.95
		// Drift takeover: 3-6 m/s pull in a random direction — the
		// velocity scale of real takeovers (the paper's Fig. 7 shows
		// multi-m/s velocity errors; hijacks displace drones by hundreds
		// of meters). The weakest pulls sit near the benign noise floor,
		// which is what produces the paper's sub-1.0 TPR. A vertical
		// component lands on every third period (the Fig. 7 z scenario).
		rate := 3.0 + rng.Float64()*3.0
		dir := mathx.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		if i%3 == 2 {
			dir = mathx.Vec3{Z: 1}
		}
		dir = dir.Normalized()
		mission := "hover"
		if i%2 == 1 {
			mission = "square"
		}
		specs = append(specs, PeriodSpec{
			Index:    i,
			Attack:   true,
			Seed:     s.Seed + 7000 + int64(i)*17,
			Duration: dur,
			Window:   attack.Window{Start: start, End: end},
			Offset:   dir.Scale(rate * (end - start)),
			Mission:  mission,
		})
	}
	return specs
}

// GeneratePeriod simulates one Tab. II period.
func (s Scale) GeneratePeriod(spec PeriodSpec) (*dataset.Flight, error) {
	alt := -10.0
	var mission sim.Mission
	switch spec.Mission {
	case "square":
		leg := 8.0
		v := mathx.Clamp(2, 1, s.MaxVel)
		var wps []sim.Waypoint
		// Repeat the square until the period duration is covered.
		base := []mathx.Vec3{
			{X: leg, Z: alt}, {X: leg, Y: leg, Z: alt}, {Y: leg, Z: alt}, {Z: alt},
		}
		lapTime := 4 * (leg/v + 1)
		laps := int(spec.Duration/lapTime) + 1
		for l := 0; l < laps; l++ {
			for _, p := range base {
				wps = append(wps, sim.Waypoint{Pos: p, Speed: v, HoldSeconds: 1})
			}
		}
		mission = sim.NewWaypointMission("square", mathx.Vec3{Z: alt}, wps)
	default:
		mission = sim.HoverMission{Point: mathx.Vec3{Z: alt}, Seconds: spec.Duration}
	}
	cfg := s.genConfig(mission, spec.Seed, windCycle(spec.Index))
	cfg.Name = fmt.Sprintf("gps-%v-%d", spec.Attack, spec.Index)
	if spec.Attack {
		cfg.Scenario = attack.Scenario{
			Name: "gps-drift",
			GPS: &attack.GPSSpoofer{
				Window:      spec.Window,
				Mode:        attack.GPSSpoofDrift,
				SpoofOffset: spec.Offset,
			},
		}
	}
	return dataset.Generate(cfg)
}

// IMUSpec describes one §IV-B flight.
type IMUSpec struct {
	// Index numbers the flight within its class.
	Index int
	// Attack marks IMU-biased flights.
	Attack bool
	// Mode is the bias profile for attack flights.
	Mode attack.IMUBiasMode
	// Seed drives generation.
	Seed int64
	// Window is the spoofing event window.
	Window attack.Window
	// LowBattery marks the benign flight flown on a critically low pack —
	// the unstable-hover condition behind the paper's one false positive.
	LowBattery bool
}

// IMUFlights enumerates the §IV-B experiment flights.
func (s Scale) IMUFlights() []IMUSpec {
	var specs []IMUSpec
	for i := 0; i < s.IMUBenign; i++ {
		specs = append(specs, IMUSpec{
			Index: i,
			Seed:  s.Seed + 8000 + int64(i)*19,
			// The last benign flight launches on a critically low pack,
			// reproducing the paper's battery-induced false positive.
			LowBattery: i == s.IMUBenign-1,
		})
	}
	for i := 0; i < s.IMUAttack; i++ {
		mode := attack.IMUSideSwing
		if i%2 == 1 {
			mode = attack.IMUAccelDoS
		}
		start := s.IMUFlightSeconds * 0.3
		specs = append(specs, IMUSpec{
			Index:  i,
			Attack: true,
			Mode:   mode,
			Seed:   s.Seed + 9000 + int64(i)*23,
			Window: attack.Window{Start: start, End: start + s.IMUAttackSeconds},
		})
	}
	return specs
}

// GenerateIMUFlight simulates one §IV-B hover flight.
func (s Scale) GenerateIMUFlight(spec IMUSpec) (*dataset.Flight, error) {
	mission := sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: s.IMUFlightSeconds}
	cfg := s.genConfig(mission, spec.Seed, windCycle(spec.Index))
	cfg.Name = fmt.Sprintf("imu-%v-%d", spec.Attack, spec.Index)
	if spec.LowBattery {
		batt := sim.DefaultBatteryConfig()
		batt.InitialSoC = 0.07
		cfg.World.Battery = &batt
		cfg.Name += "-lowbatt"
	}
	if spec.Attack {
		biaser := &attack.IMUBiaser{
			Window: spec.Window,
			Mode:   spec.Mode,
			Axis:   mathx.Vec3{Z: 1},
		}
		switch spec.Mode {
		case attack.IMUSideSwing:
			biaser.Axis = mathx.Vec3{X: 1}
			biaser.Magnitude = 1.2
			biaser.RampSeconds = 1
			biaser.OscillateHz = 0.9
		case attack.IMUAccelDoS:
			biaser.Magnitude = 3
			biaser.Rng = rand.New(rand.NewSource(spec.Seed + 1))
		}
		cfg.Scenario = attack.Scenario{Name: string(spec.Mode), IMU: biaser}
	}
	return dataset.Generate(cfg)
}

// SignatureConfig derives the analysis layout for the scale.
func (s Scale) SignatureConfig() (cfg acoustics.SynthConfig) {
	cfg = acoustics.DefaultSynthConfig()
	cfg.SampleRate = s.AudioRate
	cfg.MechFreq = s.MechFreq
	cfg.AeroFreq = s.AeroFreq
	world := sim.DefaultWorldConfig()
	cfg.Blades = world.Vehicle.Blades
	cfg.HoverSpeed = world.Vehicle.HoverMotorSpeed()
	return cfg
}
