package experiments

import "testing"

func TestRunThroughputQuick(t *testing.T) {
	lab := getLab(t)
	res, err := RunThroughput(lab, true, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flights < 2 {
		t.Fatalf("throughput corpus has %d flights", res.Flights)
	}
	if res.CleanFraction <= 0.5 {
		t.Errorf("corpus is not clean-majority: %.2f", res.CleanFraction)
	}
	if res.BaselineFPS <= 0 || res.TriageFPS <= 0 {
		t.Fatalf("non-positive throughput: baseline %.3f triage %.3f", res.BaselineFPS, res.TriageFPS)
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup %.3f", res.Speedup)
	}
	if res.FastpathRatio <= 0 {
		t.Errorf("no flight took the fast path (ratio %.2f); triage buys nothing", res.FastpathRatio)
	}
	if res.BaselineP99FlightSeconds <= 0 || res.P99FlightSeconds <= 0 {
		t.Errorf("non-positive p99: baseline %.4f triage %.4f", res.BaselineP99FlightSeconds, res.P99FlightSeconds)
	}
}
