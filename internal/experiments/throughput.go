package experiments

import (
	"fmt"
	"sort"
	"time"

	"soundboost/internal/attack"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/triage"
)

// ThroughputResult reports batch RCA throughput over a clean-majority
// corpus, with and without the triage screening tier — the headline
// number behind the committed BENCH_*.json baselines and the CI
// bench-gate.
type ThroughputResult struct {
	// Flights is the corpus size; CleanFraction the benign share of it.
	Flights       int
	CleanFraction float64
	// BaselineFPS is flights/sec through the full two-stage pipeline.
	BaselineFPS float64
	// TriageFPS is flights/sec with the screening tier attached
	// (0 when the triage measurement was skipped).
	TriageFPS float64
	// Speedup is TriageFPS / BaselineFPS (0 when skipped).
	Speedup float64
	// FastpathRatio is the fraction of flights the tier short-circuited.
	FastpathRatio float64
	// BaselineP99FlightSeconds / P99FlightSeconds are the per-flight
	// p99 latencies of the two paths.
	BaselineP99FlightSeconds float64
	P99FlightSeconds         float64
	// Float32BaselineFPS / Float32TriageFPS repeat the two measurements
	// under the float32 fast path (threshold-preserving
	// Analyzer.WithPrecision clone, so verdicts are comparable).
	Float32BaselineFPS float64
	Float32TriageFPS   float64
	// Float32Speedup is Float32BaselineFPS / BaselineFPS — the precision
	// win on the full pipeline, independent of triage screening. The
	// bench gate holds this above a committed floor.
	Float32Speedup float64
	// Float32BaselineP99FlightSeconds / Float32P99FlightSeconds are the
	// per-flight p99 latencies of the float32 paths.
	Float32BaselineP99FlightSeconds float64
	Float32P99FlightSeconds         float64
}

// TriageAnalyzer trains the KNN screening tier on the lab's calibration
// flights plus one attack flight per family, attaches it to the lab
// analyzer, and verifies the zero verdict-flip guarantee over that
// corpus. The attack flights ride along in the returned corpus so
// callers can reuse them.
func TriageAnalyzer(lab *Lab) (*soundboost.Analyzer, []*dataset.Flight, error) {
	corpus := append([]*dataset.Flight(nil), lab.Calib...)
	attacks, err := labAttackFlights(lab)
	if err != nil {
		return nil, nil, err
	}
	corpus = append(corpus, attacks...)

	sigCfg := lab.Model.Config().Signature
	tier, err := soundboost.TrainTriage(corpus, sigCfg, triage.Config{})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: train triage: %w", err)
	}
	an := lab.Analyzer()
	an.Triage = tier
	if _, _, err := an.VerifyTriage(corpus); err != nil {
		return nil, nil, fmt.Errorf("experiments: verify triage: %w", err)
	}
	return an, corpus, nil
}

// labAttackFlights generates one representative attack flight per
// family (IMU side-swing, IMU accel-DoS, GPS drift) at the lab's scale.
func labAttackFlights(lab *Lab) ([]*dataset.Flight, error) {
	var out []*dataset.Flight
	seen := map[attack.IMUBiasMode]bool{}
	for _, spec := range lab.Scale.IMUFlights() {
		if !spec.Attack || seen[spec.Mode] {
			continue
		}
		seen[spec.Mode] = true
		f, err := lab.Scale.GenerateIMUFlight(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	for _, spec := range lab.Scale.GPSPeriods() {
		if !spec.Attack {
			continue
		}
		f, err := lab.Scale.GeneratePeriod(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
		break
	}
	return out, nil
}

// RunThroughput measures flights/sec over a clean-majority corpus —
// the lab's benign calibration flights plus one attack flight, the
// traffic mix a fleet-monitoring deployment sees — first through the
// full pipeline, then with the triage tier screening. withTriage=false
// skips the second measurement (the -no-triage baseline run).
func RunThroughput(lab *Lab, withTriage bool, logf func(string, ...any)) (ThroughputResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	an, corpus, err := TriageAnalyzer(lab)
	if err != nil {
		return ThroughputResult{}, err
	}
	// Clean-majority traffic: every benign calibration flight plus the
	// first attack flight from the triage corpus.
	var flights []*dataset.Flight
	flights = append(flights, lab.Calib...)
	for _, f := range corpus[len(lab.Calib):] {
		flights = append(flights, f)
		break
	}
	res := ThroughputResult{Flights: len(flights)}
	res.CleanFraction = float64(len(lab.Calib)) / float64(len(flights))

	measure := func(a *soundboost.Analyzer) (fps, p99 float64, fast int, err error) {
		perFlight := make([]float64, 0, len(flights))
		start := time.Now()
		for _, f := range flights {
			t0 := time.Now()
			rep, err := a.Analyze(f)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("experiments: throughput %s: %w", f.Name, err)
			}
			perFlight = append(perFlight, time.Since(t0).Seconds())
			if rep == soundboost.FastBenignReport(f.Name, a) {
				fast++
			}
		}
		total := time.Since(start).Seconds()
		sort.Float64s(perFlight)
		return float64(len(flights)) / total, perFlight[(len(perFlight)-1)*99/100], fast, nil
	}

	base := an.WithoutTriage()
	res.BaselineFPS, res.BaselineP99FlightSeconds, _, err = measure(base)
	if err != nil {
		return res, err
	}
	logf("baseline: %.2f flights/sec (p99 %.3fs/flight)", res.BaselineFPS, res.BaselineP99FlightSeconds)
	if withTriage {
		var fast int
		res.TriageFPS, res.P99FlightSeconds, fast, err = measure(an)
		if err != nil {
			return res, err
		}
		res.Speedup = res.TriageFPS / res.BaselineFPS
		res.FastpathRatio = float64(fast) / float64(len(flights))
		logf("triage: %.2f flights/sec (p99 %.3fs/flight, %.0f%% fast-path, %.2fx)",
			res.TriageFPS, res.P99FlightSeconds, 100*res.FastpathRatio, res.Speedup)
	}

	// Float32 fast path over the same corpus: a threshold-preserving
	// precision clone, so any verdict divergence would surface as an
	// Analyze error or a different fast-path count, not silent skew.
	an32, err := an.WithPrecision(soundboost.Float32)
	if err != nil {
		return res, err
	}
	res.Float32BaselineFPS, res.Float32BaselineP99FlightSeconds, _, err = measure(an32.WithoutTriage())
	if err != nil {
		return res, err
	}
	res.Float32Speedup = res.Float32BaselineFPS / res.BaselineFPS
	logf("float32 baseline: %.2f flights/sec (p99 %.3fs/flight, %.2fx vs float64)",
		res.Float32BaselineFPS, res.Float32BaselineP99FlightSeconds, res.Float32Speedup)
	if withTriage {
		res.Float32TriageFPS, res.Float32P99FlightSeconds, _, err = measure(an32)
		if err != nil {
			return res, err
		}
		logf("float32 triage: %.2f flights/sec (p99 %.3fs/flight)",
			res.Float32TriageFPS, res.Float32P99FlightSeconds)
	}
	return res, nil
}
