package experiments

import (
	"fmt"
	"strings"

	"soundboost/internal/acoustics"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/parallel"
	"soundboost/internal/stats"
)

// Table3Cell is one (attack amplitude, channel count) grid entry of the
// adversarial phase-synchronised sound experiment (paper Tab. III).
type Table3Cell struct {
	// Amplitude is the band amplitude fraction (0 = full cancel, 2 = 200%).
	Amplitude float64
	// Channels is the number of attacked microphone channels (1-4).
	Channels int
	// TPR and FPR are the audio+IMU detector's rates under the attack.
	TPR float64
	FPR float64
}

// Table3Result is the full adversarial grid plus the clean baseline.
type Table3Result struct {
	// BaselineTPR and BaselineFPR are the no-interference rates over the
	// same period subset.
	BaselineTPR float64
	BaselineFPR float64
	// Cells are the grid entries, cancel rows first.
	Cells []Table3Cell
}

// String renders the grid like the paper's Tab. III.
func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline (no interference): TPR %.2f FPR %.2f\n", r.BaselineTPR, r.BaselineFPR)
	fmt.Fprintf(&b, "%-10s %9s", "Attack", "Amplitude")
	for ch := 1; ch <= 4; ch++ {
		fmt.Fprintf(&b, "   ch%d TPR  FPR", ch)
	}
	b.WriteString("\n")
	byAmp := map[float64]map[int]Table3Cell{}
	var amps []float64
	for _, c := range r.Cells {
		if byAmp[c.Amplitude] == nil {
			byAmp[c.Amplitude] = map[int]Table3Cell{}
			amps = append(amps, c.Amplitude)
		}
		byAmp[c.Amplitude][c.Channels] = c
	}
	for _, a := range amps {
		kind := "Canceling"
		if a > 1 {
			kind = "Amplifying"
		}
		fmt.Fprintf(&b, "%-10s %8.0f%%", kind, a*100)
		for ch := 1; ch <= 4; ch++ {
			c := byAmp[a][ch]
			fmt.Fprintf(&b, "   %.2f %6.2f", c.TPR, c.FPR)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunTable3 evaluates the audio+IMU detector under the idealised
// phase-synchronised attacker: the aerodynamic band of 1-4 channels is
// cancelled (0-75%) or amplified (125-200%). Periods are re-used across
// grid cells; only the interference differs.
func RunTable3(lab *Lab, logf func(string, ...any)) (Table3Result, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	scale := lab.Scale
	// Subsample the period set.
	var specs []PeriodSpec
	var nb, na int
	for _, spec := range scale.GPSPeriods() {
		if spec.Attack && na < scale.Tab3Attack {
			specs = append(specs, spec)
			na++
		}
		if !spec.Attack && nb < scale.Tab3Benign {
			specs = append(specs, spec)
			nb++
		}
	}
	flights, err := parallel.MapErr(0, len(specs), func(i int) (*dataset.Flight, error) {
		return scale.GeneratePeriod(specs[i])
	})
	if err != nil {
		return Table3Result{}, err
	}

	// Flights within one grid cell are judged independently; the verdicts
	// fold into the confusion counts in flight order afterwards.
	evaluate := func(interfere func(*dataset.Flight) *dataset.Flight) (tpr, fpr float64, err error) {
		attacked, err := parallel.MapErr(0, len(flights), func(i int) (bool, error) {
			target := flights[i]
			if interfere != nil {
				target = interfere(target)
			}
			v, err := lab.GPSAudioIMU.Detect(target)
			if err != nil {
				return false, err
			}
			return v.Attacked, nil
		})
		if err != nil {
			return 0, 0, err
		}
		var counts stats.ConfusionCounts
		for i, a := range attacked {
			counts.Record(specs[i].Attack, a)
		}
		return counts.TPR(), counts.FPR(), nil
	}

	var result Table3Result
	result.BaselineTPR, result.BaselineFPR, err = evaluate(nil)
	if err != nil {
		return Table3Result{}, err
	}
	logf("table3 baseline: TPR %.2f FPR %.2f", result.BaselineTPR, result.BaselineFPR)

	amplitudes := []float64{0, 0.25, 0.5, 0.75, 1.25, 1.5, 1.75, 2.0}
	for _, amp := range amplitudes {
		for ch := 1; ch <= acoustics.NumMics; ch++ {
			channels := make([]int, ch)
			for i := range channels {
				channels[i] = i
			}
			amp, ch := amp, ch
			interfere := func(f *dataset.Flight) *dataset.Flight {
				clone := &dataset.Flight{
					Name:      f.Name,
					Mission:   f.Mission,
					Scenario:  f.Scenario,
					Telemetry: f.Telemetry,
					Audio:     f.Audio.Clone(),
				}
				acoustics.PhaseSyncedBandAttack{
					Channels:   channels,
					Amplitude:  amp,
					BandCenter: scale.AeroFreq,
					BandQ:      3,
				}.Apply(clone.Audio)
				return clone
			}
			tpr, fpr, err := evaluate(interfere)
			if err != nil {
				return Table3Result{}, err
			}
			result.Cells = append(result.Cells, Table3Cell{Amplitude: amp, Channels: ch, TPR: tpr, FPR: fpr})
			logf("table3 amp %.0f%% ch %d: TPR %.2f FPR %.2f", amp*100, ch, tpr, fpr)
		}
	}
	return result, nil
}

// RealWorldInterferenceResult summarises the §IV-D real-world experiments:
// a second UAV at several distances and a record-and-replay speaker, both
// of which should leave predictions essentially unchanged.
type RealWorldInterferenceResult struct {
	// Rows map a distance (m) to the relative change in model MSE.
	Rows []struct {
		Kind        string
		Distance    float64
		MSEChangePc float64
	}
}

// RunRealWorldInterference measures the prediction-MSE impact of
// non-phase-synchronised interference (second UAV, replay speaker).
func RunRealWorldInterference(lab *Lab, logf func(string, ...any)) (RealWorldInterferenceResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var result RealWorldInterferenceResult
	f := lab.Calib[0]
	base, err := evalFlightMSE(lab, f)
	if err != nil {
		return result, err
	}
	synthCfg := lab.Scale.SignatureConfig()
	addRow := func(kind string, dist float64, sig []float64) error {
		clone := &dataset.Flight{
			Name: f.Name, Mission: f.Mission, Scenario: f.Scenario,
			Telemetry: f.Telemetry, Audio: f.Audio.Clone(),
		}
		acoustics.ExternalSourceInterference{
			Signal:              sig,
			Distance:            dist,
			RefDistance:         0.25,
			IntensityLossFactor: 0.46, // the paper's measured diffusion loss
		}.Apply(clone.Audio)
		mse, err := evalFlightMSE(lab, clone)
		if err != nil {
			return err
		}
		change := 100 * (mse - base) / base
		result.Rows = append(result.Rows, struct {
			Kind        string
			Distance    float64
			MSEChangePc float64
		}{kind, dist, change})
		logf("interference %s at %.1fm: MSE change %+.1f%%", kind, dist, change)
		return nil
	}
	uavSig, err := acoustics.SecondUAVSignal(synthCfg, synthCfg.HoverSpeed, f.Audio.Samples(), lab.Scale.Seed+42)
	if err != nil {
		return result, err
	}
	for _, dist := range []float64{2.0, 1.5, 1.0, 0.5} {
		if err := addRow("second-uav", dist, uavSig); err != nil {
			return result, err
		}
	}
	// A portable speaker tops out well below rotor SPL at the array
	// (paper threat model: ~100 dB cap), hence the sub-unity gain.
	replay := acoustics.ReplaySignal{Recording: f.Audio.Channels[0], VolumeGain: 0.5}
	if err := addRow("replay-speaker", 0.5, replay.Signal()); err != nil {
		return result, err
	}
	return result, nil
}

// evalFlightMSE computes the model MSE over one flight.
func evalFlightMSE(lab *Lab, f *dataset.Flight) (float64, error) {
	return soundboost.EvaluateMSE(lab.Model, []*dataset.Flight{f})
}
