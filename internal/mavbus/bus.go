// Package mavbus is a lightweight typed publish/subscribe telemetry bus
// modelled on the MAVLink/MAVSDK dataflow between the PX4 autopilot and the
// companion computer running SoundBoost (paper §III-D). Topics carry typed
// messages; subscribers receive them over buffered channels with
// drop-oldest backpressure, mirroring how a telemetry link sheds stale
// samples rather than stalling the flight stack. A bounded replay buffer
// per topic supports the post hoc analysis pattern: RCA runs after the
// mission, reading back what was recorded — and the online engine in
// internal/stream consumes the same topics live.
package mavbus

import (
	"fmt"
	"sort"
	"sync"

	"soundboost/internal/faults"
	"soundboost/internal/obs"
)

// Bus-wide metrics, resolved once at init and gated by obs.Enable.
// mavbus.published counts accepted Publish calls; mavbus.dropped counts
// messages shed by backpressure across all topics (per-topic counters are
// registered lazily as mavbus.dropped.<topic>).
var (
	busPublished = obs.Default.Counter("mavbus.published")
	busDropped   = obs.Default.Counter("mavbus.dropped")
)

// ErrClosed is returned when operating on a closed bus. It aliases
// faults.ErrBusClosed, the repository-wide error set, so errors.Is
// matches under either name.
var ErrClosed = faults.ErrBusClosed

// Message is one telemetry item on the bus.
type Message struct {
	// Topic names the stream (e.g. "imu", "gps", "audio-frame").
	Topic string
	// Time is the message timestamp in flight seconds.
	Time float64
	// Payload is the typed message body.
	Payload any
}

// Subscription receives messages for one topic.
type Subscription struct {
	// C delivers messages. It is closed when the bus closes or the
	// subscription is cancelled.
	C <-chan Message

	bus   *Bus
	topic string
	ch    chan Message
	done  bool // guarded by bus.mu
}

// Cancel detaches the subscription and closes its channel. It is
// idempotent, and safe to call before, after, or concurrently with
// Bus.Close: whichever runs first closes the channel, the other is a
// no-op.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	s.cancelLocked(true)
}

// cancelLocked closes the subscription under the bus lock. detach removes
// it from the topic map (Close clears the whole map itself).
func (s *Subscription) cancelLocked(detach bool) {
	if s.done {
		return
	}
	s.done = true
	if detach {
		subs := s.bus.subs[s.topic]
		for i, sub := range subs {
			if sub == s {
				s.bus.subs[s.topic] = append(subs[:i], subs[i+1:]...)
				break
			}
		}
		if len(s.bus.subs[s.topic]) == 0 {
			delete(s.bus.subs, s.topic)
		}
	}
	close(s.ch)
}

// topicState is the per-topic bookkeeping: exact drop count plus the
// lazily registered obs counter mirroring it.
type topicState struct {
	dropped    int
	obsDropped *obs.Counter
}

// Bus is a concurrency-safe topic bus with per-topic replay buffers.
type Bus struct {
	mu      sync.Mutex
	subs    map[string][]*Subscription
	replay  map[string][]Message
	topics  map[string]*topicState
	replayN int
	closed  bool
	dropped int
}

// NewBus builds a bus retaining up to replayN messages per topic for
// post hoc reads (0 disables replay).
func NewBus(replayN int) *Bus {
	return &Bus{
		subs:    make(map[string][]*Subscription),
		replay:  make(map[string][]Message),
		topics:  make(map[string]*topicState),
		replayN: replayN,
	}
}

// topicLocked returns (creating if needed) the state for a topic.
func (b *Bus) topicLocked(topic string) *topicState {
	ts, ok := b.topics[topic]
	if !ok {
		ts = &topicState{obsDropped: obs.Default.Counter("mavbus.dropped." + topic)}
		b.topics[topic] = ts
	}
	return ts
}

// Publish posts a message to a topic. Subscribers with full buffers drop
// their oldest message (telemetry semantics: newest data wins). Exactly
// one message is counted dropped per shed message: either the drained
// oldest, or — if the buffer state changed under a racing consumer — the
// new message itself, never both.
func (b *Bus) Publish(msg Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	busPublished.Inc()
	if b.replayN > 0 {
		r := append(b.replay[msg.Topic], msg)
		if len(r) > b.replayN {
			r = r[len(r)-b.replayN:]
		}
		b.replay[msg.Topic] = r
	}
	for _, s := range b.subs[msg.Topic] {
		select {
		case s.ch <- msg:
			continue
		default:
		}
		// Full buffer: shed the oldest queued message to make room for
		// the newest. A consumer may drain the channel between the probe
		// and the drain; the accounting below stays exact either way.
		shed := false
		select {
		case <-s.ch:
			shed = true
		default:
		}
		select {
		case s.ch <- msg:
		default:
			// Only consumers remove from s.ch while the lock is held, so
			// this branch means the drain lost the race to an emptying
			// consumer and the buffer refilled is impossible — but if it
			// ever triggers, the new message is the one shed.
			shed = true
		}
		if shed {
			b.dropped++
			ts := b.topicLocked(msg.Topic)
			ts.dropped++
			busDropped.Inc()
			ts.obsDropped.Inc()
		}
	}
	return nil
}

// Subscribe attaches to a topic with the given channel buffer size
// (minimum 1).
func (b *Bus) Subscribe(topic string, buffer int) (*Subscription, error) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	ch := make(chan Message, buffer)
	sub := &Subscription{C: ch, bus: b, topic: topic, ch: ch}
	b.subs[topic] = append(b.subs[topic], sub)
	return sub, nil
}

// Replay returns a copy of the retained messages for a topic in
// publication order.
func (b *Bus) Replay(topic string) []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Message(nil), b.replay[topic]...)
}

// Dropped reports how many messages were shed due to backpressure across
// all topics.
func (b *Bus) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// DroppedTopic reports how many messages were shed on one topic.
func (b *Bus) DroppedTopic(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[topic]; ok {
		return ts.dropped
	}
	return 0
}

// Close shuts the bus; all subscription channels are closed. Close is
// idempotent and safe against concurrent Cancel calls.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, subs := range b.subs {
		for _, s := range subs {
			s.cancelLocked(false)
		}
	}
	b.subs = make(map[string][]*Subscription)
}

// Topics returns the replayable topic names (sorted insertion is not
// guaranteed; callers sort if needed).
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.replay))
	for t := range b.replay {
		out = append(out, t)
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (b *Bus) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var drops []string
	for t, ts := range b.topics {
		if ts.dropped > 0 {
			drops = append(drops, fmt.Sprintf("%s:%d", t, ts.dropped))
		}
	}
	sort.Strings(drops)
	return fmt.Sprintf("mavbus{topics=%d dropped=%d %v closed=%v}", len(b.replay), b.dropped, drops, b.closed)
}
