// Package mavbus is a lightweight typed publish/subscribe telemetry bus
// modelled on the MAVLink/MAVSDK dataflow between the PX4 autopilot and the
// companion computer running SoundBoost (paper §III-D). Topics carry typed
// messages; subscribers receive them over buffered channels with
// drop-oldest backpressure, mirroring how a telemetry link sheds stale
// samples rather than stalling the flight stack. A bounded replay buffer
// per topic supports the post hoc analysis pattern: RCA runs after the
// mission, reading back what was recorded.
package mavbus

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned when operating on a closed bus.
var ErrClosed = errors.New("mavbus: bus closed")

// Message is one telemetry item on the bus.
type Message struct {
	// Topic names the stream (e.g. "imu", "gps", "audio-frame").
	Topic string
	// Time is the message timestamp in flight seconds.
	Time float64
	// Payload is the typed message body.
	Payload any
}

// Subscription receives messages for one topic.
type Subscription struct {
	// C delivers messages. It is closed when the bus closes or the
	// subscription is cancelled.
	C <-chan Message

	bus   *Bus
	topic string
	ch    chan Message
	once  sync.Once
}

// Cancel detaches the subscription and closes its channel.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.bus.mu.Lock()
		defer s.bus.mu.Unlock()
		subs := s.bus.subs[s.topic]
		for i, sub := range subs {
			if sub == s {
				s.bus.subs[s.topic] = append(subs[:i], subs[i+1:]...)
				break
			}
		}
		close(s.ch)
	})
}

// Bus is a concurrency-safe topic bus with per-topic replay buffers.
type Bus struct {
	mu      sync.Mutex
	subs    map[string][]*Subscription
	replay  map[string][]Message
	replayN int
	closed  bool
	dropped int
}

// NewBus builds a bus retaining up to replayN messages per topic for
// post hoc reads (0 disables replay).
func NewBus(replayN int) *Bus {
	return &Bus{
		subs:    make(map[string][]*Subscription),
		replay:  make(map[string][]Message),
		replayN: replayN,
	}
}

// Publish posts a message to a topic. Subscribers with full buffers drop
// their oldest message (telemetry semantics: newest data wins).
func (b *Bus) Publish(msg Message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if b.replayN > 0 {
		r := append(b.replay[msg.Topic], msg)
		if len(r) > b.replayN {
			r = r[len(r)-b.replayN:]
		}
		b.replay[msg.Topic] = r
	}
	for _, s := range b.subs[msg.Topic] {
		select {
		case s.ch <- msg:
		default:
			// Drop the oldest queued message to make room.
			select {
			case <-s.ch:
				b.dropped++
			default:
			}
			select {
			case s.ch <- msg:
			default:
				b.dropped++
			}
		}
	}
	return nil
}

// Subscribe attaches to a topic with the given channel buffer size
// (minimum 1).
func (b *Bus) Subscribe(topic string, buffer int) (*Subscription, error) {
	if buffer < 1 {
		buffer = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	ch := make(chan Message, buffer)
	sub := &Subscription{C: ch, bus: b, topic: topic, ch: ch}
	b.subs[topic] = append(b.subs[topic], sub)
	return sub, nil
}

// Replay returns a copy of the retained messages for a topic in
// publication order.
func (b *Bus) Replay(topic string) []Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Message(nil), b.replay[topic]...)
}

// Dropped reports how many messages were shed due to backpressure.
func (b *Bus) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close shuts the bus; all subscription channels are closed.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for topic, subs := range b.subs {
		for _, s := range subs {
			s.once.Do(func() { close(s.ch) })
		}
		delete(b.subs, topic)
	}
}

// Topics returns the replayable topic names (sorted insertion is not
// guaranteed; callers sort if needed).
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.replay))
	for t := range b.replay {
		out = append(out, t)
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (b *Bus) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fmt.Sprintf("mavbus{topics=%d dropped=%d closed=%v}", len(b.replay), b.dropped, b.closed)
}
