package mavbus

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus(10)
	defer b.Close()
	sub, err := b.Subscribe("imu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Message{Topic: "imu", Time: 1, Payload: "a"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C:
		if m.Time != 1 || m.Payload != "a" {
			t.Errorf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("no message delivered")
	}
}

func TestTopicIsolation(t *testing.T) {
	b := NewBus(10)
	defer b.Close()
	imu, err := b.Subscribe("imu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Message{Topic: "gps", Time: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-imu.C:
		t.Errorf("imu subscriber got gps message %+v", m)
	default:
	}
}

func TestDropOldestBackpressure(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	sub, err := b.Subscribe("imu", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Publish(Message{Topic: "imu", Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer of 2: the two newest messages (3, 4) must survive.
	m1 := <-sub.C
	m2 := <-sub.C
	if m1.Time != 3 || m2.Time != 4 {
		t.Errorf("surviving messages %v, %v; want 3, 4", m1.Time, m2.Time)
	}
	if b.Dropped() == 0 {
		t.Error("Dropped() = 0 after overflow")
	}
}

func TestReplayBuffer(t *testing.T) {
	b := NewBus(3)
	defer b.Close()
	for i := 0; i < 5; i++ {
		if err := b.Publish(Message{Topic: "gps", Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := b.Replay("gps")
	if len(r) != 3 {
		t.Fatalf("replay length %d, want 3", len(r))
	}
	for i, m := range r {
		if m.Time != float64(i+2) {
			t.Errorf("replay[%d].Time = %v, want %v", i, m.Time, i+2)
		}
	}
	if got := b.Replay("nonexistent"); len(got) != 0 {
		t.Errorf("unknown topic replay = %v", got)
	}
}

func TestCancelSubscription(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	sub, err := b.Subscribe("imu", 1)
	if err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Error("channel not closed after Cancel")
	}
	// Publishing after cancel must not panic.
	if err := b.Publish(Message{Topic: "imu"}); err != nil {
		t.Fatal(err)
	}
	// Double cancel is safe.
	sub.Cancel()
}

func TestCloseBus(t *testing.T) {
	b := NewBus(0)
	sub, err := b.Subscribe("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Error("subscription channel open after Close")
	}
	if err := b.Publish(Message{Topic: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe("x", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBus(1000)
	defer b.Close()
	sub, err := b.Subscribe("imu", 1000)
	if err != nil {
		t.Fatal(err)
	}
	const publishers = 8
	const perPublisher = 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				_ = b.Publish(Message{Topic: "imu", Time: float64(p*1000 + i)})
			}
		}(p)
	}
	wg.Wait()
	if got := len(b.Replay("imu")); got != publishers*perPublisher {
		t.Errorf("replay has %d messages, want %d", got, publishers*perPublisher)
	}
	received := 0
	for {
		select {
		case <-sub.C:
			received++
		default:
			if received != publishers*perPublisher {
				t.Errorf("received %d, want %d", received, publishers*perPublisher)
			}
			return
		}
	}
}

func TestTopicsAndString(t *testing.T) {
	b := NewBus(5)
	defer b.Close()
	_ = b.Publish(Message{Topic: "a"})
	_ = b.Publish(Message{Topic: "b"})
	if got := len(b.Topics()); got != 2 {
		t.Errorf("Topics() has %d entries, want 2", got)
	}
	if s := b.String(); s == "" {
		t.Error("empty String()")
	}
}
