package mavbus

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus(10)
	defer b.Close()
	sub, err := b.Subscribe("imu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Message{Topic: "imu", Time: 1, Payload: "a"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C:
		if m.Time != 1 || m.Payload != "a" {
			t.Errorf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("no message delivered")
	}
}

func TestTopicIsolation(t *testing.T) {
	b := NewBus(10)
	defer b.Close()
	imu, err := b.Subscribe("imu", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(Message{Topic: "gps", Time: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-imu.C:
		t.Errorf("imu subscriber got gps message %+v", m)
	default:
	}
}

func TestDropOldestBackpressure(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	sub, err := b.Subscribe("imu", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Publish(Message{Topic: "imu", Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer of 2: the two newest messages (3, 4) must survive.
	m1 := <-sub.C
	m2 := <-sub.C
	if m1.Time != 3 || m2.Time != 4 {
		t.Errorf("surviving messages %v, %v; want 3, 4", m1.Time, m2.Time)
	}
	if b.Dropped() == 0 {
		t.Error("Dropped() = 0 after overflow")
	}
}

func TestReplayBuffer(t *testing.T) {
	b := NewBus(3)
	defer b.Close()
	for i := 0; i < 5; i++ {
		if err := b.Publish(Message{Topic: "gps", Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := b.Replay("gps")
	if len(r) != 3 {
		t.Fatalf("replay length %d, want 3", len(r))
	}
	for i, m := range r {
		if m.Time != float64(i+2) {
			t.Errorf("replay[%d].Time = %v, want %v", i, m.Time, i+2)
		}
	}
	if got := b.Replay("nonexistent"); len(got) != 0 {
		t.Errorf("unknown topic replay = %v", got)
	}
}

func TestCancelSubscription(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	sub, err := b.Subscribe("imu", 1)
	if err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	if _, ok := <-sub.C; ok {
		t.Error("channel not closed after Cancel")
	}
	// Publishing after cancel must not panic.
	if err := b.Publish(Message{Topic: "imu"}); err != nil {
		t.Fatal(err)
	}
	// Double cancel is safe.
	sub.Cancel()
}

func TestCloseBus(t *testing.T) {
	b := NewBus(0)
	sub, err := b.Subscribe("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Error("subscription channel open after Close")
	}
	if err := b.Publish(Message{Topic: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe("x", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBus(1000)
	defer b.Close()
	sub, err := b.Subscribe("imu", 1000)
	if err != nil {
		t.Fatal(err)
	}
	const publishers = 8
	const perPublisher = 100
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				_ = b.Publish(Message{Topic: "imu", Time: float64(p*1000 + i)})
			}
		}(p)
	}
	wg.Wait()
	if got := len(b.Replay("imu")); got != publishers*perPublisher {
		t.Errorf("replay has %d messages, want %d", got, publishers*perPublisher)
	}
	received := 0
	for {
		select {
		case <-sub.C:
			received++
		default:
			if received != publishers*perPublisher {
				t.Errorf("received %d, want %d", received, publishers*perPublisher)
			}
			return
		}
	}
}

// TestDropAccountingExact checks the core backpressure invariant with a
// racing consumer: every published message is either delivered, still
// queued, or counted dropped — never double-counted, never lost silently.
func TestDropAccountingExact(t *testing.T) {
	const total = 5000
	b := NewBus(0)
	sub, err := b.Subscribe("imu", 2)
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan int)
	go func() {
		n := 0
		for range sub.C {
			n++
		}
		received <- n
	}()
	for i := 0; i < total; i++ {
		if err := b.Publish(Message{Topic: "imu", Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	got := <-received
	if got+b.Dropped() != total {
		t.Errorf("delivered %d + dropped %d = %d, want %d", got, b.Dropped(), got+b.Dropped(), total)
	}
	if b.DroppedTopic("imu") != b.Dropped() {
		t.Errorf("per-topic dropped %d != total %d with a single topic", b.DroppedTopic("imu"), b.Dropped())
	}
	if b.DroppedTopic("gps") != 0 {
		t.Errorf("untouched topic reports %d drops", b.DroppedTopic("gps"))
	}
}

// TestDropAccountingPerTopic isolates counters across topics.
func TestDropAccountingPerTopic(t *testing.T) {
	b := NewBus(0)
	defer b.Close()
	if _, err := b.Subscribe("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("b", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = b.Publish(Message{Topic: "a", Time: float64(i)})
	}
	_ = b.Publish(Message{Topic: "b", Time: 0})
	if got := b.DroppedTopic("a"); got != 3 {
		t.Errorf("topic a dropped = %d, want 3", got)
	}
	if got := b.DroppedTopic("b"); got != 0 {
		t.Errorf("topic b dropped = %d, want 0", got)
	}
	if got := b.Dropped(); got != 3 {
		t.Errorf("total dropped = %d, want 3", got)
	}
}

// TestCancelAfterClose: both orders must be silent no-ops with the
// channel closed exactly once and the topic map left clean.
func TestCancelAfterClose(t *testing.T) {
	b := NewBus(0)
	sub, err := b.Subscribe("imu", 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	sub.Cancel() // must not panic, must not resurrect topic state
	sub.Cancel()
	b.Close()
	if _, ok := <-sub.C; ok {
		t.Error("channel open after Close+Cancel")
	}

	// Reverse order on a fresh bus.
	b2 := NewBus(0)
	sub2, err := b2.Subscribe("imu", 1)
	if err != nil {
		t.Fatal(err)
	}
	sub2.Cancel()
	b2.Close()
	sub2.Cancel()
	if _, ok := <-sub2.C; ok {
		t.Error("channel open after Cancel+Close")
	}
}

// TestConcurrentPublishCancelClose hammers every mutating entry point at
// once; run under -race it guards the locking discipline, and it must
// terminate (the old sync.Once design could deadlock Close against a
// concurrent Cancel).
func TestConcurrentPublishCancelClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		b := NewBus(4)
		var subs []*Subscription
		for i := 0; i < 8; i++ {
			s, err := b.Subscribe("imu", 2)
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, s)
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					_ = b.Publish(Message{Topic: "imu", Time: float64(p*1000 + i)})
				}
			}(p)
		}
		for _, s := range subs {
			wg.Add(2)
			go func(s *Subscription) {
				defer wg.Done()
				for range s.C {
				}
			}(s)
			go func(s *Subscription) {
				defer wg.Done()
				s.Cancel()
			}(s)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Close()
		}()
		wg.Wait()
		b.Close()
	}
}

func TestTopicsAndString(t *testing.T) {
	b := NewBus(5)
	defer b.Close()
	_ = b.Publish(Message{Topic: "a"})
	_ = b.Publish(Message{Topic: "b"})
	if got := len(b.Topics()); got != 2 {
		t.Errorf("Topics() has %d entries, want 2", got)
	}
	if s := b.String(); s == "" {
		t.Error("empty String()")
	}
}
