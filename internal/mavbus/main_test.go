package mavbus

import (
	"testing"

	"soundboost/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a goroutine — a subscriber
// blocked on a channel nobody closes, a publisher stuck after Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
