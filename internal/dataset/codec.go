package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"soundboost/internal/acoustics"
)

// flightHeader is the JSON metadata written alongside the binary audio.
type flightHeader struct {
	Name      string            `json:"name"`
	Mission   string            `json:"mission"`
	Scenario  ScenarioMeta      `json:"scenario"`
	Telemetry []TelemetrySample `json:"telemetry"`
	// AudioRate and AudioSamples describe the binary payload that follows.
	AudioRate    float64 `json:"audio_rate"`
	AudioSamples int     `json:"audio_samples"`
}

const audioMagic = "SBAU"

// Save writes the flight to w: a JSON header line followed by the raw
// little-endian float32 audio payload (channel-interleaved). float32 halves
// the footprint with no measurable effect on band energies.
func (f *Flight) Save(w io.Writer) error {
	samples := 0
	rate := 0.0
	if f.Audio != nil {
		samples = f.Audio.Samples()
		rate = f.Audio.SampleRate
	}
	hdr := flightHeader{
		Name:         f.Name,
		Mission:      f.Mission,
		Scenario:     f.Scenario,
		Telemetry:    f.Telemetry,
		AudioRate:    rate,
		AudioSamples: samples,
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("dataset: encode header: %w", err)
	}
	if _, err := bw.WriteString(audioMagic); err != nil {
		return err
	}
	if f.Audio != nil {
		buf := make([]byte, 4)
		for i := 0; i < samples; i++ {
			for m := range f.Audio.Channels {
				binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(f.Audio.Channels[m][i])))
				if _, err := bw.Write(buf); err != nil {
					return fmt.Errorf("dataset: write audio: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// Load reads a flight written by Save.
func Load(r io.Reader) (*Flight, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	var hdr flightHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("dataset: decode header: %w", err)
	}
	magic := make([]byte, len(audioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: read audio magic: %w", err)
	}
	if string(magic) != audioMagic {
		return nil, fmt.Errorf("dataset: bad audio magic %q", magic)
	}
	f := &Flight{
		Name:      hdr.Name,
		Mission:   hdr.Mission,
		Scenario:  hdr.Scenario,
		Telemetry: hdr.Telemetry,
	}
	if hdr.AudioSamples > 0 {
		rec := &acoustics.Recording{SampleRate: hdr.AudioRate}
		for m := range rec.Channels {
			rec.Channels[m] = make([]float64, hdr.AudioSamples)
		}
		buf := make([]byte, 4)
		for i := 0; i < hdr.AudioSamples; i++ {
			for m := range rec.Channels {
				if _, err := io.ReadFull(br, buf); err != nil {
					return nil, fmt.Errorf("dataset: read audio sample %d: %w", i, err)
				}
				rec.Channels[m][i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf)))
			}
		}
		f.Audio = rec
	}
	return f, nil
}

// SaveFile writes the flight to path, creating parent directories.
func (f *Flight) SaveFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("dataset: mkdir: %w", err)
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: create: %w", err)
	}
	defer file.Close()
	if err := f.Save(file); err != nil {
		return err
	}
	return file.Close()
}

// LoadFile reads a flight from path.
func LoadFile(path string) (*Flight, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open: %w", err)
	}
	defer file.Close()
	return Load(file)
}
