package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteSeriesCSV writes a generic numeric table: header names plus rows of
// float columns. Ragged rows are rejected.
func WriteSeriesCSV(w io.Writer, header []string, rows [][]float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	record := make([]string, len(header))
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("dataset: csv row %d has %d columns, want %d", i, len(row), len(header))
		}
		for j, v := range row {
			record[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTelemetryCSV exports a flight's telemetry log for external
// plotting/analysis. Ground-truth columns are included (they exist only in
// simulation and are convenient for figure regeneration).
func (f *Flight) WriteTelemetryCSV(w io.Writer) error {
	header := []string{
		"time",
		"imu_ax", "imu_ay", "imu_az",
		"imu_gx", "imu_gy", "imu_gz",
		"gps_px", "gps_py", "gps_pz",
		"gps_vx", "gps_vy", "gps_vz",
		"motor0", "motor1", "motor2", "motor3",
		"true_px", "true_py", "true_pz",
		"true_vx", "true_vy", "true_vz",
	}
	rows := make([][]float64, 0, len(f.Telemetry))
	for _, s := range f.Telemetry {
		rows = append(rows, []float64{
			s.Time,
			s.IMUAccel.X, s.IMUAccel.Y, s.IMUAccel.Z,
			s.IMUGyro.X, s.IMUGyro.Y, s.IMUGyro.Z,
			s.GPSPos.X, s.GPSPos.Y, s.GPSPos.Z,
			s.GPSVel.X, s.GPSVel.Y, s.GPSVel.Z,
			s.Motor[0], s.Motor[1], s.Motor[2], s.Motor[3],
			s.TruePos.X, s.TruePos.Y, s.TruePos.Z,
			s.TrueVel.X, s.TrueVel.Y, s.TrueVel.Z,
		})
	}
	return WriteSeriesCSV(w, header, rows)
}
