package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"soundboost/internal/mavbus"
	"soundboost/internal/sim"
)

func TestPublishAndRecordFlight(t *testing.T) {
	f, err := Generate(quickGenConfig(sim.HoverMission{Seconds: 2}, 41))
	if err != nil {
		t.Fatal(err)
	}
	bus := mavbus.NewBus(len(f.Telemetry) + 8)
	defer bus.Close()
	rec, err := NewRecorder(bus, len(f.Telemetry)+8)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := PublishFlight(bus, f); err != nil {
		t.Fatal(err)
	}
	got := rec.Drain()
	if len(got) != len(f.Telemetry) {
		t.Fatalf("recorded %d rows, want %d", len(got), len(f.Telemetry))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], f.Telemetry[i]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
	// Post hoc replay path (how RCA reads a completed mission).
	replayed := ReplayTelemetry(bus)
	if len(replayed) != len(f.Telemetry) {
		t.Fatalf("replayed %d rows, want %d", len(replayed), len(f.Telemetry))
	}
	// Scenario metadata also travels the bus.
	scen := bus.Replay(TopicScenario)
	if len(scen) != 1 {
		t.Fatalf("scenario messages %d, want 1", len(scen))
	}
	if meta, ok := scen[0].Payload.(ScenarioMeta); !ok || meta.Kind != "benign" {
		t.Errorf("scenario payload %+v", scen[0].Payload)
	}
}

func TestPublishFlightClosedBus(t *testing.T) {
	f := &Flight{Telemetry: []TelemetrySample{{Time: 1}}}
	bus := mavbus.NewBus(4)
	bus.Close()
	if err := PublishFlight(bus, f); err == nil {
		t.Error("publish on closed bus accepted")
	}
}

func TestWriteTelemetryCSV(t *testing.T) {
	f, err := Generate(quickGenConfig(sim.HoverMission{Seconds: 1}, 43))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteTelemetryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(f.Telemetry)+1 {
		t.Fatalf("%d csv lines, want %d", len(lines), len(f.Telemetry)+1)
	}
	if !strings.HasPrefix(lines[0], "time,imu_ax") {
		t.Errorf("header = %q", lines[0])
	}
	if cols := strings.Count(lines[1], ",") + 1; cols != 23 {
		t.Errorf("row has %d columns, want 23", cols)
	}
}

func TestWriteSeriesCSVRagged(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []string{"a", "b"}, [][]float64{{1, 2}, {3}})
	if err == nil {
		t.Error("ragged rows accepted")
	}
}
