package dataset

import (
	"fmt"

	"soundboost/internal/mavbus"
)

// Bus topics used by the telemetry recorder, mirroring MAVLink stream
// names.
const (
	TopicTelemetry = "telemetry"
	TopicScenario  = "scenario"
)

// PublishFlight streams a flight's telemetry over the bus the way the
// companion computer receives it from the autopilot: one message per
// telemetry row, plus a scenario-metadata message.
func PublishFlight(bus *mavbus.Bus, f *Flight) error {
	if err := bus.Publish(mavbus.Message{Topic: TopicScenario, Time: 0, Payload: f.Scenario}); err != nil {
		return fmt.Errorf("dataset: publish scenario: %w", err)
	}
	for _, s := range f.Telemetry {
		if err := bus.Publish(mavbus.Message{Topic: TopicTelemetry, Time: s.Time, Payload: s}); err != nil {
			return fmt.Errorf("dataset: publish telemetry: %w", err)
		}
	}
	return nil
}

// Recorder assembles telemetry received over the bus back into rows —
// the subscriber side of the companion-computer dataflow.
type Recorder struct {
	sub *mavbus.Subscription
}

// NewRecorder subscribes to the telemetry topic with a buffer large enough
// for bufferRows in-flight messages.
func NewRecorder(bus *mavbus.Bus, bufferRows int) (*Recorder, error) {
	sub, err := bus.Subscribe(TopicTelemetry, bufferRows)
	if err != nil {
		return nil, err
	}
	return &Recorder{sub: sub}, nil
}

// Drain collects every telemetry row currently queued, in order. It does
// not block waiting for more.
func (r *Recorder) Drain() []TelemetrySample {
	var out []TelemetrySample
	for {
		select {
		case m, ok := <-r.sub.C:
			if !ok {
				return out
			}
			if s, ok := m.Payload.(TelemetrySample); ok {
				out = append(out, s)
			}
		default:
			return out
		}
	}
}

// Close cancels the subscription.
func (r *Recorder) Close() { r.sub.Cancel() }

// ReplayTelemetry reads the bus's retained telemetry history (post hoc —
// exactly how SoundBoost's RCA consumes a flight after a mission failure).
func ReplayTelemetry(bus *mavbus.Bus) []TelemetrySample {
	msgs := bus.Replay(TopicTelemetry)
	out := make([]TelemetrySample, 0, len(msgs))
	for _, m := range msgs {
		if s, ok := m.Payload.(TelemetrySample); ok {
			out = append(out, s)
		}
	}
	return out
}
