// Package dataset generates, stores, and windows the flight corpora used
// throughout the reproduction: it glues the flight simulator, the sensor
// attack models, and the acoustic synthesiser into complete "flights"
// (telemetry log + 4-channel recording), and provides the window-alignment
// and train/val/test-split utilities the learning pipeline consumes.
package dataset

import (
	"fmt"
	"math/rand"

	"soundboost/internal/acoustics"
	"soundboost/internal/attack"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// TelemetrySample is one logged telemetry row at the IMU rate — what the
// companion computer records from MAVLink during a real flight.
type TelemetrySample struct {
	// Time is the flight timestamp (s).
	Time float64
	// IMUAccel is the logged accelerometer specific force (body frame,
	// possibly attacked).
	IMUAccel mathx.Vec3
	// IMUGyro is the logged gyroscope rate (body frame, possibly attacked).
	IMUGyro mathx.Vec3
	// AuxIMUAccel holds the redundant IMUs' specific-force readings (body
	// frame); empty for single-IMU vehicles. Redundant units are not
	// reachable by a primary-tuned resonant injection (paper §V-B).
	AuxIMUAccel []mathx.Vec3 `json:"aux_imu_accel,omitempty"`
	// GPSPos and GPSVel are the latest GPS fix (NED, possibly spoofed).
	GPSPos mathx.Vec3
	GPSVel mathx.Vec3
	// EstAtt is the autopilot's attitude estimate, used for NED transforms
	// (the paper's pipeline has the same dependency).
	EstAtt mathx.Quat
	// Motor is the ESC RPM feedback (rad/s) — actuator telemetry real
	// autopilots log; the LTI control-invariant baseline consumes it.
	Motor [sim.NumMotors]float64
	// TruePos / TrueVel / TrueAccel are simulation ground truth, kept for
	// evaluation only — detectors never read them.
	TruePos   mathx.Vec3
	TrueVel   mathx.Vec3
	TrueAccel mathx.Vec3
}

// Flight is one complete simulated flight.
type Flight struct {
	// Name labels the flight.
	Name string
	// Mission is the mission name flown.
	Mission string
	// Scenario records the attack configuration metadata.
	Scenario ScenarioMeta
	// Telemetry holds the logged sensor rows at IMU rate.
	Telemetry []TelemetrySample
	// Audio is the microphone-array recording.
	Audio *acoustics.Recording
}

// ScenarioMeta is the serializable description of a flight's attack.
type ScenarioMeta struct {
	// Kind is "benign", "gps-static", "gps-drift", "imu-side-swing" or
	// "imu-accel-dos".
	Kind string
	// Window bounds the attack (zero for benign).
	Window attack.Window
}

// IsAttack reports whether the flight contains an attack.
func (m ScenarioMeta) IsAttack() bool { return m.Kind != "" && m.Kind != "benign" }

// Duration returns the flight length in seconds.
func (f *Flight) Duration() float64 {
	if len(f.Telemetry) == 0 {
		return 0
	}
	return f.Telemetry[len(f.Telemetry)-1].Time - f.Telemetry[0].Time
}

// GenConfig assembles one flight generation.
type GenConfig struct {
	// World configures the simulator.
	World sim.WorldConfig
	// Synth configures the acoustic source model.
	Synth acoustics.SynthConfig
	// Array configures the microphone geometry.
	Array acoustics.ArrayConfig
	// Mission is the flight plan.
	Mission sim.Mission
	// Scenario installs attacks (Benign() for clean flights).
	Scenario attack.Scenario
	// Interference optionally post-processes the recording (sound attacks).
	Interference []acoustics.Interference
	// Name labels the produced flight.
	Name string
}

// DefaultGenConfig returns a ready-to-run configuration for the default
// airframe, wiring the synthesiser's hover speed and blade count to the
// vehicle so acoustic lines land where the physics puts them.
func DefaultGenConfig(mission sim.Mission, seed int64) GenConfig {
	world := sim.DefaultWorldConfig()
	world.Seed = seed
	synth := acoustics.DefaultSynthConfig()
	synth.Seed = seed + 1
	synth.Blades = world.Vehicle.Blades
	synth.HoverSpeed = world.Vehicle.HoverMotorSpeed()
	return GenConfig{
		World:   world,
		Synth:   synth,
		Array:   acoustics.DefaultArrayConfig(world.Vehicle.ArmLength),
		Mission: mission,
		Name:    mission.Name(),
	}
}

// Generate runs the simulation and acoustic synthesis for one flight.
func Generate(cfg GenConfig) (*Flight, error) {
	if cfg.Mission == nil {
		return nil, fmt.Errorf("dataset: nil mission")
	}
	world, err := sim.NewWorld(cfg.World)
	if err != nil {
		return nil, fmt.Errorf("dataset: world: %w", err)
	}
	if cfg.Scenario.GPS != nil {
		world.GPSSensor().SetInterceptor(cfg.Scenario.GPS)
	}
	if cfg.Scenario.IMU != nil {
		if err := cfg.Scenario.IMU.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: imu attack: %w", err)
		}
		world.IMUSensor().SetInterceptor(cfg.Scenario.IMU)
	}
	if cfg.Scenario.Actuator != nil {
		if err := cfg.Scenario.Actuator.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: actuator attack: %w", err)
		}
		world.SetActuatorInterceptor(cfg.Scenario.Actuator)
	}

	records := world.Run(cfg.Mission)
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: mission %q produced no records", cfg.Mission.Name())
	}

	// Telemetry at IMU sample boundaries (deduplicated on IMU timestamps).
	var telemetry []TelemetrySample
	lastIMUTime := -1.0
	for _, r := range records {
		if r.IMU.Time == lastIMUTime {
			continue
		}
		lastIMUTime = r.IMU.Time
		var aux []mathx.Vec3
		for _, a := range r.AuxIMU {
			aux = append(aux, a.Accel)
		}
		telemetry = append(telemetry, TelemetrySample{
			Time:        r.IMU.Time,
			IMUAccel:    r.IMU.Accel,
			IMUGyro:     r.IMU.Gyro,
			AuxIMUAccel: aux,
			GPSPos:      r.GPS.Pos,
			GPSVel:      r.GPS.Vel,
			EstAtt:      r.TrueAtt, // attitude estimation is benign in the threat model
			Motor:       r.MotorSpeed,
			TruePos:     r.TruePos,
			TrueVel:     r.TrueVel,
			TrueAccel:   r.TrueAccel,
		})
	}

	// Rotor frames for the synthesiser: physics-rate motor speeds.
	frames := make([]acoustics.RotorFrame, len(records))
	for i, r := range records {
		frames[i] = acoustics.RotorFrame{
			Time:      r.Time,
			Speed:     r.MotorSpeed,
			WindSpeed: r.Wind.Sub(r.TrueVel).Norm(),
		}
	}
	audio, err := acoustics.RenderFlight(frames, cfg.Synth, cfg.Array, cfg.Interference...)
	if err != nil {
		return nil, fmt.Errorf("dataset: render audio: %w", err)
	}

	meta := ScenarioMeta{Kind: "benign"}
	switch {
	case cfg.Scenario.GPS != nil:
		meta.Kind = "gps-" + string(cfg.Scenario.GPS.Mode)
		meta.Window = cfg.Scenario.GPS.Window
	case cfg.Scenario.IMU != nil:
		meta.Kind = "imu-" + string(cfg.Scenario.IMU.Mode)
		meta.Window = cfg.Scenario.IMU.Window
	case cfg.Scenario.Actuator != nil:
		meta.Kind = "actuator-dos"
		meta.Window = cfg.Scenario.Actuator.Window
	}
	name := cfg.Name
	if name == "" {
		name = cfg.Mission.Name()
	}
	return &Flight{
		Name:      name,
		Mission:   cfg.Mission.Name(),
		Scenario:  meta,
		Telemetry: telemetry,
		Audio:     audio,
	}, nil
}

// SplitIndices partitions n items into train/val/test index sets with the
// given validation and test fractions, shuffled by seed.
func SplitIndices(n int, valFrac, testFrac float64, seed int64) (train, val, test []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nVal := int(float64(n) * valFrac)
	nTest := int(float64(n) * testFrac)
	val = idx[:nVal]
	test = idx[nVal : nVal+nTest]
	train = idx[nVal+nTest:]
	return train, val, test
}

// TelemetryBetween returns the telemetry samples with Time in [t0, t1).
func (f *Flight) TelemetryBetween(t0, t1 float64) []TelemetrySample {
	var out []TelemetrySample
	for _, s := range f.Telemetry {
		if s.Time >= t0 && s.Time < t1 {
			out = append(out, s)
		}
	}
	return out
}

// IMUSampleRate estimates the telemetry rate from timestamps.
func (f *Flight) IMUSampleRate() float64 {
	if len(f.Telemetry) < 2 {
		return 0
	}
	dt := (f.Telemetry[len(f.Telemetry)-1].Time - f.Telemetry[0].Time) / float64(len(f.Telemetry)-1)
	if dt <= 0 {
		return 0
	}
	return 1 / dt
}
