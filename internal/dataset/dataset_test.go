package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"soundboost/internal/attack"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// quickGenConfig returns a fast low-rate configuration for tests.
func quickGenConfig(mission sim.Mission, seed int64) GenConfig {
	cfg := DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125 // divides the physics rate evenly
	cfg.Synth.SampleRate = 4000
	cfg.Synth.AeroFreq = 1500 // keep the band under the reduced Nyquist
	return cfg
}

func TestGenerateBenignFlight(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 4}, 1)
	f, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario.IsAttack() {
		t.Error("benign flight marked as attack")
	}
	if f.Scenario.Kind != "benign" {
		t.Errorf("Kind = %q", f.Scenario.Kind)
	}
	if got := f.Duration(); math.Abs(got-4) > 0.5 {
		t.Errorf("Duration = %v, want ~4", got)
	}
	if rate := f.IMUSampleRate(); math.Abs(rate-125) > 10 {
		t.Errorf("IMU rate = %v, want ~125", rate)
	}
	if f.Audio == nil || f.Audio.Samples() == 0 {
		t.Fatal("no audio")
	}
	if math.Abs(f.Audio.Duration()-4) > 0.5 {
		t.Errorf("audio duration = %v", f.Audio.Duration())
	}
}

func TestGenerateNilMission(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Seconds: 1}, 1)
	cfg.Mission = nil
	if _, err := Generate(cfg); err == nil {
		t.Error("nil mission accepted")
	}
}

func TestGenerateWithGPSSpoof(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 6}, 2)
	cfg.Scenario = attack.Scenario{
		Name: "gps",
		GPS: &attack.GPSSpoofer{
			Window:        attack.Window{Start: 2, End: 6},
			Mode:          attack.GPSSpoofStatic,
			SpoofOffset:   mathx.Vec3{X: 10},
			ReportZeroVel: true,
		},
	}
	f, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario.Kind != "gps-static" {
		t.Errorf("Kind = %q", f.Scenario.Kind)
	}
	// During the spoof the logged GPS must diverge from truth, and the
	// vehicle must physically deviate as the controller chases the lie.
	var maxGap, maxDev float64
	for _, s := range f.TelemetryBetween(3, 6) {
		if gap := s.GPSPos.Sub(s.TruePos).Norm(); gap > maxGap {
			maxGap = gap
		}
		if dev := s.TruePos.Sub(mathx.Vec3{Z: -10}).Norm(); dev > maxDev {
			maxDev = dev
		}
	}
	if maxGap < 3 {
		t.Errorf("GPS-truth gap %v m during spoof, want > 3", maxGap)
	}
	if maxDev < 3 {
		t.Errorf("physical deviation %v m during spoof, want > 3 (controller chased the spoof)", maxDev)
	}
}

func TestGenerateWithIMUBias(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 6}, 3)
	cfg.Scenario = attack.Scenario{
		Name: "imu",
		IMU: &attack.IMUBiaser{
			Window:    attack.Window{Start: 2, End: 5},
			Mode:      attack.IMUAccelDoS,
			Axis:      mathx.Vec3{Z: 1},
			Magnitude: 2,
			Rng:       rand.New(rand.NewSource(9)),
		},
	}
	f, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario.Kind != "imu-accel-dos" {
		t.Errorf("Kind = %q", f.Scenario.Kind)
	}
	// Logged IMU accel during the attack must be noisier than before it.
	variance := func(samples []TelemetrySample) float64 {
		var vals []float64
		for _, s := range samples {
			vals = append(vals, s.IMUAccel.Z)
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return ss / float64(len(vals))
	}
	pre := variance(f.TelemetryBetween(0, 2))
	during := variance(f.TelemetryBetween(2, 5))
	if during < 10*pre {
		t.Errorf("attack variance %v not much larger than benign %v", during, pre)
	}
}

func TestGenerateInvalidIMUAttack(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Seconds: 1}, 1)
	cfg.Scenario = attack.Scenario{IMU: &attack.IMUBiaser{}}
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid IMU attack accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -8}, Seconds: 2}, 4)
	f, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != f.Name || loaded.Mission != f.Mission || loaded.Scenario != f.Scenario {
		t.Error("metadata mismatch after round trip")
	}
	if len(loaded.Telemetry) != len(f.Telemetry) {
		t.Fatalf("telemetry length %d, want %d", len(loaded.Telemetry), len(f.Telemetry))
	}
	if !reflect.DeepEqual(loaded.Telemetry[10], f.Telemetry[10]) {
		t.Error("telemetry sample mismatch")
	}
	if loaded.Audio.Samples() != f.Audio.Samples() {
		t.Fatalf("audio length %d, want %d", loaded.Audio.Samples(), f.Audio.Samples())
	}
	// float32 storage: samples agree to float32 precision.
	for i := 0; i < loaded.Audio.Samples(); i += 1000 {
		a, b := loaded.Audio.Channels[2][i], f.Audio.Channels[2][i]
		if math.Abs(a-b) > 1e-5*(1+math.Abs(b)) {
			t.Fatalf("audio sample %d: %v vs %v", i, a, b)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	cfg := quickGenConfig(sim.HoverMission{Point: mathx.Vec3{Z: -8}, Seconds: 1}, 5)
	f, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flights", "f1.sbf")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != f.Name {
		t.Error("name mismatch")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json\nXXXX")); err == nil {
		t.Error("corrupt header accepted")
	}
	if _, err := Load(bytes.NewBufferString("{}\nBAD!")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSplitIndices(t *testing.T) {
	train, val, test := SplitIndices(100, 0.2, 0.1, 7)
	if len(val) != 20 || len(test) != 10 || len(train) != 70 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
	seen := map[int]bool{}
	for _, set := range [][]int{train, val, test} {
		for _, i := range set {
			if seen[i] {
				t.Fatalf("index %d in multiple splits", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Errorf("%d unique indices, want 100", len(seen))
	}
	// Deterministic per seed.
	train2, _, _ := SplitIndices(100, 0.2, 0.1, 7)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestTelemetryBetween(t *testing.T) {
	f := &Flight{Telemetry: []TelemetrySample{
		{Time: 0}, {Time: 1}, {Time: 2}, {Time: 3},
	}}
	got := f.TelemetryBetween(1, 3)
	if len(got) != 2 || got[0].Time != 1 || got[1].Time != 2 {
		t.Errorf("TelemetryBetween = %+v", got)
	}
	if f.IMUSampleRate() != 1 {
		t.Errorf("IMUSampleRate = %v", f.IMUSampleRate())
	}
	empty := &Flight{}
	if empty.Duration() != 0 || empty.IMUSampleRate() != 0 {
		t.Error("empty flight stats wrong")
	}
}
