package attack

import (
	"fmt"
	"math"

	"soundboost/internal/sim"
)

// ActuatorDoS is the PWM block-waveform actuator attack of Dayanıklı et
// al. that the paper's §V-B discusses: injected block waveforms
// periodically drive PWM-controlled motors to idle. SoundBoost
// generalises to it because stopped rotors go quiet — the acoustic model
// predicts near-zero thrust, physically impossible for an airborne
// vehicle.
type ActuatorDoS struct {
	// Window bounds the attack.
	Window Window
	// PeriodSeconds is the block waveform period.
	PeriodSeconds float64
	// DutyOff is the fraction of each period the motors are forced to
	// idle, in (0, 1).
	DutyOff float64
	// Motors lists the attacked motor indices; empty = all. A quadcopter
	// cannot be uniformly attacked in practice (paper §V-B), but the
	// simulated worst case is useful for bounding.
	Motors []int
	// IdleSpeed is the forced motor speed (rad/s) during the off phase.
	IdleSpeed float64
}

// Verify interface compliance.
var _ sim.ActuatorInterceptor = (*ActuatorDoS)(nil)

// Validate reports configuration errors.
func (a *ActuatorDoS) Validate() error {
	if err := a.Window.Validate(); err != nil {
		return err
	}
	if a.PeriodSeconds <= 0 {
		return fmt.Errorf("attack: actuator DoS period %g must be positive", a.PeriodSeconds)
	}
	if a.DutyOff <= 0 || a.DutyOff >= 1 {
		return fmt.Errorf("attack: actuator DoS duty %g out of (0, 1)", a.DutyOff)
	}
	return nil
}

// InterceptMotors implements sim.ActuatorInterceptor.
func (a *ActuatorDoS) InterceptMotors(t float64, cmd [sim.NumMotors]float64) [sim.NumMotors]float64 {
	if !a.Window.Contains(t) {
		return cmd
	}
	phase := math.Mod(t-a.Window.Start, a.PeriodSeconds) / a.PeriodSeconds
	if phase >= a.DutyOff {
		return cmd
	}
	idle := a.IdleSpeed
	if len(a.Motors) == 0 {
		for i := range cmd {
			cmd[i] = idle
		}
		return cmd
	}
	for _, m := range a.Motors {
		if m >= 0 && m < sim.NumMotors {
			cmd[m] = idle
		}
	}
	return cmd
}

// Active reports whether the attack is live at time t.
func (a *ActuatorDoS) Active(t float64) bool { return a.Window.Contains(t) }
