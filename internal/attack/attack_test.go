package attack

import (
	"math"
	"math/rand"
	"testing"

	"soundboost/internal/mathx"
	"soundboost/internal/sensors"
)

func TestWindow(t *testing.T) {
	w := Window{Start: 10, End: 20}
	tests := []struct {
		t    float64
		want bool
	}{
		{9.9, false}, {10, true}, {15, true}, {19.99, true}, {20, false},
	}
	for _, tt := range tests {
		if got := w.Contains(tt.t); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if w.Duration() != 10 {
		t.Errorf("Duration = %v", w.Duration())
	}
	if err := w.Validate(); err != nil {
		t.Errorf("valid window rejected: %v", err)
	}
	if err := (Window{Start: 5, End: 5}).Validate(); err == nil {
		t.Error("empty window accepted")
	}
}

func TestGPSSpooferStatic(t *testing.T) {
	sp := &GPSSpoofer{
		Window:        Window{Start: 10, End: 70},
		Mode:          GPSSpoofStatic,
		SpoofOffset:   mathx.Vec3{X: 10},
		ReportZeroVel: true,
	}
	// Before the window: passthrough.
	f := sp.InterceptGPS(sensors.GPSFix{Time: 5, Pos: mathx.Vec3{X: 1}, Vel: mathx.Vec3{X: 2}, Valid: true})
	if f.Pos.X != 1 || f.Vel.X != 2 {
		t.Errorf("pre-attack fix modified: %+v", f)
	}
	// At onset: counterfeit location = onset position + offset.
	f = sp.InterceptGPS(sensors.GPSFix{Time: 10, Pos: mathx.Vec3{X: 3}, Vel: mathx.Vec3{X: 2}, Valid: true})
	if f.Pos.X != 13 {
		t.Errorf("onset spoofed X = %v, want 13", f.Pos.X)
	}
	if f.Vel.Norm() != 0 {
		t.Errorf("spoofed velocity = %v, want zero", f.Vel)
	}
	// Later fixes keep reporting the same static location even as the true
	// position moves.
	f = sp.InterceptGPS(sensors.GPSFix{Time: 30, Pos: mathx.Vec3{X: 50}, Valid: true})
	if f.Pos.X != 13 {
		t.Errorf("static spoof moved: X = %v, want 13", f.Pos.X)
	}
	// After the window: passthrough again, onset state reset.
	f = sp.InterceptGPS(sensors.GPSFix{Time: 80, Pos: mathx.Vec3{X: 7}, Valid: true})
	if f.Pos.X != 7 {
		t.Errorf("post-attack fix modified: %v", f.Pos.X)
	}
	if sp.Active(30) != true || sp.Active(80) != false {
		t.Error("Active() wrong")
	}
}

func TestGPSSpooferDrift(t *testing.T) {
	sp := &GPSSpoofer{
		Window:      Window{Start: 0, End: 10},
		Mode:        GPSSpoofDrift,
		SpoofOffset: mathx.Vec3{Y: 20},
	}
	f := sp.InterceptGPS(sensors.GPSFix{Time: 5, Pos: mathx.Vec3{}, Valid: true})
	if math.Abs(f.Pos.Y-10) > 1e-9 {
		t.Errorf("mid-drift Y = %v, want 10", f.Pos.Y)
	}
	if math.Abs(f.Vel.Y-2) > 1e-9 {
		t.Errorf("drift velocity Y = %v, want 2", f.Vel.Y)
	}
}

func TestIMUBiaserSideSwing(t *testing.T) {
	b := &IMUBiaser{
		Window:      Window{Start: 10, End: 20},
		Mode:        IMUSideSwing,
		Axis:        mathx.Vec3{Z: 1},
		Magnitude:   0.5,
		RampSeconds: 5,
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Pre-attack: passthrough.
	m := b.InterceptIMU(sensors.IMUMeasurement{Time: 5, Gyro: mathx.Vec3{Z: 0.1}})
	if m.Gyro.Z != 0.1 {
		t.Errorf("pre-attack gyro modified: %v", m.Gyro.Z)
	}
	// Mid-ramp: half magnitude.
	m = b.InterceptIMU(sensors.IMUMeasurement{Time: 12.5, Gyro: mathx.Vec3{}})
	if math.Abs(m.Gyro.Z-0.25) > 1e-9 {
		t.Errorf("mid-ramp bias = %v, want 0.25", m.Gyro.Z)
	}
	// Past ramp: full magnitude.
	m = b.InterceptIMU(sensors.IMUMeasurement{Time: 18, Gyro: mathx.Vec3{}})
	if math.Abs(m.Gyro.Z-0.5) > 1e-9 {
		t.Errorf("post-ramp bias = %v, want 0.5", m.Gyro.Z)
	}
	// Accel untouched by side-swing.
	m = b.InterceptIMU(sensors.IMUMeasurement{Time: 18, Accel: mathx.Vec3{X: 1}})
	if m.Accel.X != 1 {
		t.Error("side-swing modified accelerometer")
	}
}

func TestIMUBiaserDoS(t *testing.T) {
	b := &IMUBiaser{
		Window:    Window{Start: 0, End: 10},
		Mode:      IMUAccelDoS,
		Axis:      mathx.Vec3{Z: 1},
		Magnitude: 2,
		Rng:       rand.New(rand.NewSource(1)),
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		m := b.InterceptIMU(sensors.IMUMeasurement{Time: 5, Accel: mathx.Vec3{}})
		sum += m.Accel.Z
		sumSq += m.Accel.Z * m.Accel.Z
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	// DoS noise is oscillatory: near-zero mean, large spread.
	if math.Abs(mean) > 0.2 {
		t.Errorf("DoS mean %v, want ~0", mean)
	}
	if std < 1 {
		t.Errorf("DoS std %v, want ~2", std)
	}
	// Gyro untouched by DoS.
	m := b.InterceptIMU(sensors.IMUMeasurement{Time: 5, Gyro: mathx.Vec3{X: 0.3}})
	if m.Gyro.X != 0.3 {
		t.Error("DoS modified gyroscope")
	}
}

func TestIMUBiaserValidate(t *testing.T) {
	tests := []struct {
		name string
		b    IMUBiaser
	}{
		{"bad window", IMUBiaser{Window: Window{1, 1}, Mode: IMUSideSwing, Axis: mathx.Vec3{Z: 1}, Magnitude: 1}},
		{"zero axis", IMUBiaser{Window: Window{0, 1}, Mode: IMUSideSwing, Magnitude: 1}},
		{"zero magnitude", IMUBiaser{Window: Window{0, 1}, Mode: IMUSideSwing, Axis: mathx.Vec3{Z: 1}}},
		{"dos without rng", IMUBiaser{Window: Window{0, 1}, Mode: IMUAccelDoS, Axis: mathx.Vec3{Z: 1}, Magnitude: 1}},
		{"unknown mode", IMUBiaser{Window: Window{0, 1}, Mode: "bogus", Axis: mathx.Vec3{Z: 1}, Magnitude: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.b.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestScenario(t *testing.T) {
	if Benign().HasAttack() {
		t.Error("benign scenario has attack")
	}
	s := Scenario{
		Name: "gps",
		GPS:  &GPSSpoofer{Window: Window{Start: 30, End: 90}},
	}
	if !s.HasAttack() {
		t.Error("GPS scenario reports no attack")
	}
	if w := s.AttackWindow(); w.Start != 30 {
		t.Errorf("AttackWindow = %+v", w)
	}
	both := Scenario{
		GPS: &GPSSpoofer{Window: Window{Start: 30, End: 90}},
		IMU: &IMUBiaser{Window: Window{Start: 10, End: 20}},
	}
	if w := both.AttackWindow(); w.Start != 10 {
		t.Errorf("earliest AttackWindow = %+v", w)
	}
	if w := Benign().AttackWindow(); w != (Window{}) {
		t.Errorf("benign AttackWindow = %+v", w)
	}
}

func TestActuatorDoS(t *testing.T) {
	a := &ActuatorDoS{
		Window:        Window{Start: 10, End: 20},
		PeriodSeconds: 1.0,
		DutyOff:       0.5,
		IdleSpeed:     120,
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cmd := [4]float64{700, 700, 700, 700}
	// Outside the window: passthrough.
	if got := a.InterceptMotors(5, cmd); got != cmd {
		t.Errorf("pre-attack commands modified: %v", got)
	}
	// Off phase (first half of each period): forced idle.
	got := a.InterceptMotors(10.2, cmd)
	for i, v := range got {
		if v != 120 {
			t.Errorf("motor %d = %v during off phase, want 120", i, v)
		}
	}
	// On phase: passthrough.
	if got := a.InterceptMotors(10.7, cmd); got != cmd {
		t.Errorf("on-phase commands modified: %v", got)
	}
	if !a.Active(15) || a.Active(25) {
		t.Error("Active() wrong")
	}
}

func TestActuatorDoSSelectedMotors(t *testing.T) {
	a := &ActuatorDoS{
		Window:        Window{Start: 0, End: 10},
		PeriodSeconds: 1,
		DutyOff:       0.9,
		Motors:        []int{0, 2},
		IdleSpeed:     100,
	}
	cmd := [4]float64{700, 700, 700, 700}
	got := a.InterceptMotors(0.1, cmd)
	if got[0] != 100 || got[2] != 100 {
		t.Errorf("targeted motors not idled: %v", got)
	}
	if got[1] != 700 || got[3] != 700 {
		t.Errorf("untargeted motors modified: %v", got)
	}
}

func TestActuatorDoSValidate(t *testing.T) {
	bad := []*ActuatorDoS{
		{Window: Window{1, 1}, PeriodSeconds: 1, DutyOff: 0.5},
		{Window: Window{0, 1}, PeriodSeconds: 0, DutyOff: 0.5},
		{Window: Window{0, 1}, PeriodSeconds: 1, DutyOff: 0},
		{Window: Window{0, 1}, PeriodSeconds: 1, DutyOff: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestScenarioActuator(t *testing.T) {
	s := Scenario{Actuator: &ActuatorDoS{Window: Window{Start: 3, End: 9}, PeriodSeconds: 1, DutyOff: 0.5}}
	if !s.HasAttack() {
		t.Error("actuator scenario reports no attack")
	}
	if w := s.AttackWindow(); w.Start != 3 {
		t.Errorf("AttackWindow = %+v", w)
	}
}
