// Package attack implements the sensor attacks SoundBoost is evaluated
// against (paper §IV-B, §IV-C): GPS spoofing via a counterfeit-signal
// receiver takeover (the GPS-SDR-SIM + HackRF setup), and IMU biasing via
// firmware-level injection of gyroscope side-swing bias and accelerometer
// DoS noise (the Tu et al. acoustic-injection attack family). Attacks
// install as sensor interceptors, corrupting exactly what the autopilot
// and flight logs see — never the physical truth, and never the
// microphone channel.
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"soundboost/internal/mathx"
	"soundboost/internal/sensors"
)

// Window is a half-open activation interval [Start, End) in flight seconds.
type Window struct {
	Start float64
	End   float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Duration returns the window length.
func (w Window) Duration() float64 { return w.End - w.Start }

// Validate reports malformed windows.
func (w Window) Validate() error {
	if w.End <= w.Start {
		return fmt.Errorf("attack: window end %g not after start %g", w.End, w.Start)
	}
	return nil
}

// GPSSpoofMode selects the spoofed-trajectory profile.
type GPSSpoofMode string

const (
	// GPSSpoofStatic reports a fixed counterfeit location for the whole
	// attack (the paper's experiments: a static spoof point 10 m away or
	// on the mission path).
	GPSSpoofStatic GPSSpoofMode = "static"
	// GPSSpoofDrift ramps a position offset at a constant rate — the
	// stealthy pull-away profile of takeover attacks.
	GPSSpoofDrift GPSSpoofMode = "drift"
)

// GPSSpoofer intercepts GPS fixes during its window.
type GPSSpoofer struct {
	// Window bounds the attack.
	Window Window
	// Mode selects the profile.
	Mode GPSSpoofMode
	// SpoofOffset: for static mode, the counterfeit location is the fix
	// position at onset plus this offset; for drift mode, the offset ramps
	// from zero to this value over the window.
	SpoofOffset mathx.Vec3
	// ReportZeroVel, when true, reports near-zero velocity during static
	// spoofing (a static counterfeit constellation implies no motion).
	ReportZeroVel bool

	onsetPos mathx.Vec3
	hasOnset bool
}

// Verify interface compliance.
var _ sensors.GPSInterceptor = (*GPSSpoofer)(nil)

// InterceptGPS implements sensors.GPSInterceptor.
func (g *GPSSpoofer) InterceptGPS(f sensors.GPSFix) sensors.GPSFix {
	if !g.Window.Contains(f.Time) {
		g.hasOnset = false
		return f
	}
	if !g.hasOnset {
		g.onsetPos = f.Pos
		g.hasOnset = true
	}
	switch g.Mode {
	case GPSSpoofDrift:
		frac := (f.Time - g.Window.Start) / g.Window.Duration()
		f.Pos = f.Pos.Add(g.SpoofOffset.Scale(frac))
		f.Vel = f.Vel.Add(g.SpoofOffset.Scale(1 / g.Window.Duration()))
	default: // static
		f.Pos = g.onsetPos.Add(g.SpoofOffset)
		if g.ReportZeroVel {
			f.Vel = mathx.Vec3{}
		}
	}
	return f
}

// Active reports whether the spoof is live at time t.
func (g *GPSSpoofer) Active(t float64) bool { return g.Window.Contains(t) }

// IMUBiasMode selects the IMU injection profile.
type IMUBiasMode string

const (
	// IMUSideSwing injects an incrementally growing bias into the
	// gyroscope along a target axis — the controllable Side-Swing attack.
	IMUSideSwing IMUBiasMode = "side-swing"
	// IMUAccelDoS injects zero-mean oscillatory noise into the
	// accelerometer — the uncontrollable DoS attack.
	IMUAccelDoS IMUBiasMode = "accel-dos"
)

// IMUBiaser intercepts IMU measurements during its window.
type IMUBiaser struct {
	// Window bounds the attack.
	Window Window
	// Mode selects side-swing or DoS.
	Mode IMUBiasMode
	// Axis is the attacked body axis (unit vector); Side-Swing uses it for
	// the gyro bias direction, DoS for the dominant noise axis.
	Axis mathx.Vec3
	// Magnitude is the peak gyro bias (rad/s) for side-swing, or the noise
	// standard deviation (m/s^2) for DoS.
	Magnitude float64
	// RampSeconds is the time the side-swing bias takes to reach peak.
	RampSeconds float64
	// OscillateHz modulates the side-swing bias with a positive-biased
	// swing (0.5 + 0.5*sin) at this rate, reproducing the rocking motion
	// of real resonant gyroscope injection; 0 holds the bias constant.
	OscillateHz float64
	// Rng drives DoS noise; required for IMUAccelDoS.
	Rng *rand.Rand
}

// Verify interface compliance.
var _ sensors.IMUInterceptor = (*IMUBiaser)(nil)

// InterceptIMU implements sensors.IMUInterceptor.
func (b *IMUBiaser) InterceptIMU(m sensors.IMUMeasurement) sensors.IMUMeasurement {
	if !b.Window.Contains(m.Time) {
		return m
	}
	axis := b.Axis.Normalized()
	switch b.Mode {
	case IMUSideSwing:
		frac := 1.0
		if b.RampSeconds > 0 {
			frac = mathx.Clamp((m.Time-b.Window.Start)/b.RampSeconds, 0, 1)
		}
		if b.OscillateHz > 0 {
			frac *= 0.5 + 0.5*math.Sin(2*math.Pi*b.OscillateHz*(m.Time-b.Window.Start))
		}
		m.Gyro = m.Gyro.Add(axis.Scale(b.Magnitude * frac))
	case IMUAccelDoS:
		if b.Rng != nil {
			// Oscillatory, roughly zero-mean: contributes "almost
			// equivalently to both directions" (paper §IV-B).
			n := b.Rng.NormFloat64() * b.Magnitude
			cross := mathx.Vec3{
				X: b.Rng.NormFloat64(),
				Y: b.Rng.NormFloat64(),
				Z: b.Rng.NormFloat64(),
			}.Scale(b.Magnitude * 0.3)
			m.Accel = m.Accel.Add(axis.Scale(n)).Add(cross)
		}
	}
	return m
}

// Active reports whether the bias is live at time t.
func (b *IMUBiaser) Active(t float64) bool { return b.Window.Contains(t) }

// Validate reports configuration errors.
func (b *IMUBiaser) Validate() error {
	if err := b.Window.Validate(); err != nil {
		return err
	}
	if b.Axis.Norm() == 0 {
		return fmt.Errorf("attack: IMU bias axis is zero")
	}
	if b.Magnitude <= 0 {
		return fmt.Errorf("attack: IMU bias magnitude %g must be positive", b.Magnitude)
	}
	if b.Mode == IMUAccelDoS && b.Rng == nil {
		return fmt.Errorf("attack: accel DoS requires an Rng")
	}
	switch b.Mode {
	case IMUSideSwing, IMUAccelDoS:
		return nil
	default:
		return fmt.Errorf("attack: unknown IMU bias mode %q", b.Mode)
	}
}

// Scenario describes one flight's attack configuration for dataset
// generation and experiment bookkeeping.
type Scenario struct {
	// Name labels the scenario in logs and reports.
	Name string
	// GPS, when non-nil, spoofs the GPS during its window.
	GPS *GPSSpoofer
	// IMU, when non-nil, biases the IMU during its window.
	IMU *IMUBiaser
	// Actuator, when non-nil, injects the PWM block-waveform DoS.
	Actuator *ActuatorDoS
}

// Benign returns the no-attack scenario.
func Benign() Scenario { return Scenario{Name: "benign"} }

// HasAttack reports whether any attack is configured.
func (s Scenario) HasAttack() bool { return s.GPS != nil || s.IMU != nil || s.Actuator != nil }

// AttackWindow returns the earliest attack window, or a zero Window when
// benign.
func (s Scenario) AttackWindow() Window {
	earliest := Window{}
	consider := func(w Window) {
		if earliest == (Window{}) || w.Start < earliest.Start {
			earliest = w
		}
	}
	if s.GPS != nil {
		consider(s.GPS.Window)
	}
	if s.IMU != nil {
		consider(s.IMU.Window)
	}
	if s.Actuator != nil {
		consider(s.Actuator.Window)
	}
	return earliest
}
