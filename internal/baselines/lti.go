package baselines

import (
	"fmt"

	"soundboost/internal/dataset"
	"soundboost/internal/stats"
	"soundboost/internal/sysid"
)

// LTIOutput selects which state the Control Invariant monitor watches —
// the three columns of Tab. II.
type LTIOutput int

const (
	// LTIYaw monitors the yaw rate (gyro z).
	LTIYaw LTIOutput = iota
	// LTIVx monitors the north velocity.
	LTIVx
	// LTIVy monitors the east velocity.
	LTIVy
)

// String implements fmt.Stringer.
func (o LTIOutput) String() string {
	switch o {
	case LTIYaw:
		return "yaw"
	case LTIVx:
		return "vx"
	case LTIVy:
		return "vy"
	default:
		return fmt.Sprintf("LTIOutput(%d)", int(o))
	}
}

// LTIConfig tunes the Control Invariant baseline.
type LTIConfig struct {
	// Output selects the monitored state.
	Output LTIOutput
	// StepSeconds downsamples telemetry to this step before fitting
	// (GPS-rate, per the original method's sampling).
	StepSeconds float64
	// Damping stabilises the least-squares fit.
	Damping float64
	// ThresholdMargin scales the calibrated benign ceiling.
	ThresholdMargin float64
	// Decay leaks the error accumulator per step.
	Decay float64
}

// DefaultLTIConfig returns the tuned configuration for an output.
func DefaultLTIConfig(output LTIOutput) LTIConfig {
	return LTIConfig{Output: output, StepSeconds: 0.1, Damping: 1e-6, ThresholdMargin: 1.3, Decay: 0.05}
}

// LTI is the Control Invariant baseline: a least-squares LTI model of the
// vehicle's observed kinematics (gyro rates + GPS velocity driven by motor
// commands) serves as an invariant monitor with a leaky error accumulator.
type LTI struct {
	cfg     LTIConfig
	model   *sysid.LTIModel
	monitor sysid.Monitor
}

// flightSeries extracts (state, control) rows at the configured step.
// State: [gyroX, gyroY, gyroZ, vx, vy, vz]; control: motor speeds
// normalised by 1000 (keeps the regression well conditioned).
func flightSeries(f *dataset.Flight, step float64) (states, controls [][]float64) {
	if len(f.Telemetry) == 0 {
		return nil, nil
	}
	next := f.Telemetry[0].Time
	for _, s := range f.Telemetry {
		if s.Time < next {
			continue
		}
		next = s.Time + step
		states = append(states, []float64{
			s.IMUGyro.X, s.IMUGyro.Y, s.IMUGyro.Z,
			s.GPSVel.X, s.GPSVel.Y, s.GPSVel.Z,
		})
		controls = append(controls, []float64{
			s.Motor[0] / 1000, s.Motor[1] / 1000, s.Motor[2] / 1000, s.Motor[3] / 1000,
		})
	}
	return states, controls
}

// NewLTI fits the invariant model and calibrates the monitor threshold on
// benign flights.
func NewLTI(benign []*dataset.Flight, cfg LTIConfig) (*LTI, error) {
	if len(benign) == 0 {
		return nil, fmt.Errorf("baselines: LTI needs benign calibration flights")
	}
	var allStates, allControls [][]float64
	for _, f := range benign {
		s, c := flightSeries(f, cfg.StepSeconds)
		if len(s) > 1 {
			allStates = append(allStates, s...)
			allControls = append(allControls, c...)
		}
	}
	if len(allStates) < 10 {
		return nil, fmt.Errorf("baselines: insufficient LTI fitting data (%d rows)", len(allStates))
	}
	model, err := sysid.Fit(allStates, allControls[:len(allStates)-1], cfg.Damping)
	if err != nil {
		return nil, fmt.Errorf("baselines: LTI fit: %w", err)
	}
	outIdx := map[LTIOutput]int{LTIYaw: 2, LTIVx: 3, LTIVy: 4}[cfg.Output]
	b := &LTI{cfg: cfg, model: model}
	b.monitor = sysid.Monitor{Model: model, Output: outIdx, Decay: cfg.Decay}

	// Calibrate: highest accumulator value over each benign flight.
	var peaks []float64
	for _, f := range benign {
		s, c := flightSeries(f, cfg.StepSeconds)
		if len(s) < 2 {
			continue
		}
		b.monitor.Reset()
		b.monitor.Threshold = 1e308
		peak := 0.0
		for k := 0; k+1 < len(s); k++ {
			acc, _, err := b.monitor.Step(s[k], c[k], s[k+1])
			if err != nil {
				return nil, err
			}
			if acc > peak {
				peak = acc
			}
		}
		peaks = append(peaks, peak)
	}
	b.monitor.Threshold = stats.Max(stats.TrimOutliers(peaks, 3)) * cfg.ThresholdMargin
	b.monitor.Reset()
	return b, nil
}

// Name implements Detector.
func (b *LTI) Name() string { return "lti-" + b.cfg.Output.String() }

// Detect implements Detector.
func (b *LTI) Detect(f *dataset.Flight) (Verdict, error) {
	s, c := flightSeries(f, b.cfg.StepSeconds)
	if len(s) < 2 {
		return Verdict{}, fmt.Errorf("baselines: flight too short for LTI")
	}
	b.monitor.Reset()
	v := Verdict{Threshold: b.monitor.Threshold}
	start := f.Telemetry[0].Time
	for k := 0; k+1 < len(s); k++ {
		acc, alarmed, err := b.monitor.Step(s[k], c[k], s[k+1])
		if err != nil {
			return Verdict{}, err
		}
		if acc > v.PeakStat {
			v.PeakStat = acc
		}
		if alarmed && !v.Attacked {
			v.Attacked = true
			v.DetectionTime = start + float64(k)*b.cfg.StepSeconds
		}
	}
	return v, nil
}

// Verify interface compliance.
var _ Detector = (*LTI)(nil)
