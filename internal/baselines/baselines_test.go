package baselines

import (
	"sync"
	"testing"

	"soundboost/internal/attack"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

func quickGen(mission sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.World.Controller.MaxVel = 3
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	return cfg
}

type corpus struct {
	benign []*dataset.Flight
	gps    *dataset.Flight
}

var (
	corpOnce sync.Once
	corp     *corpus
	corpErr  error
)

func getCorpus(t *testing.T) *corpus {
	t.Helper()
	corpOnce.Do(func() {
		c := &corpus{}
		missions := []sim.Mission{
			sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
			sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
				{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
				{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
			}),
			sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
		}
		seed := int64(300)
		for _, m := range missions {
			f, err := dataset.Generate(quickGen(m, seed))
			if err != nil {
				corpErr = err
				return
			}
			c.benign = append(c.benign, f)
			seed += 11
		}
		gpsCfg := quickGen(sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 20}, seed)
		gpsCfg.Scenario = attack.Scenario{
			Name: "gps",
			GPS: &attack.GPSSpoofer{
				Window:      attack.Window{Start: 5, End: 18},
				Mode:        attack.GPSSpoofDrift,
				SpoofOffset: mathx.Vec3{X: 14},
			},
		}
		g, err := dataset.Generate(gpsCfg)
		if err != nil {
			corpErr = err
			return
		}
		c.gps = g
		corp = c
	})
	if corpErr != nil {
		t.Fatalf("corpus: %v", corpErr)
	}
	return corp
}

func TestFailsafeBenignQuiet(t *testing.T) {
	c := getCorpus(t)
	det, err := NewFailsafe(c.benign[:2], DefaultFailsafeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != "failsafe-imu-only" {
		t.Errorf("Name = %q", det.Name())
	}
	v, err := det.Detect(c.benign[2])
	if err != nil {
		t.Fatal(err)
	}
	if v.Attacked {
		t.Errorf("false positive: %+v", v)
	}
}

func TestFailsafeDetectsGPSSpoof(t *testing.T) {
	c := getCorpus(t)
	det, err := NewFailsafe(c.benign, DefaultFailsafeConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Detect(c.gps)
	if err != nil {
		t.Fatal(err)
	}
	// The failsafe sees IMU vs GPS velocity inconsistency; with a clean
	// IMU it should catch a drift spoof of this size.
	if !v.Attacked {
		t.Errorf("drift spoof missed: peak %v threshold %v", v.PeakStat, v.Threshold)
	}
}

func TestFailsafeNeedsCalibration(t *testing.T) {
	if _, err := NewFailsafe(nil, DefaultFailsafeConfig()); err == nil {
		t.Error("no calibration accepted")
	}
}

func TestLTIMonitorsBuildAndRun(t *testing.T) {
	c := getCorpus(t)
	for _, out := range []LTIOutput{LTIYaw, LTIVx, LTIVy} {
		t.Run(out.String(), func(t *testing.T) {
			det, err := NewLTI(c.benign[:2], DefaultLTIConfig(out))
			if err != nil {
				t.Fatal(err)
			}
			if det.Name() != "lti-"+out.String() {
				t.Errorf("Name = %q", det.Name())
			}
			// Benign continuation stays quiet.
			v, err := det.Detect(c.benign[2])
			if err != nil {
				t.Fatal(err)
			}
			if v.Attacked {
				t.Errorf("benign false positive: %+v", v)
			}
			// GPS drift spoofs preserve the control invariant (the spoofed
			// velocity evolves smoothly), so the LTI monitor is largely
			// blind to them — the paper's Tab. II finding. Just confirm it
			// runs; either verdict is acceptable for a single flight.
			if _, err := det.Detect(c.gps); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLTINeedsData(t *testing.T) {
	if _, err := NewLTI(nil, DefaultLTIConfig(LTIYaw)); err == nil {
		t.Error("no calibration accepted")
	}
}

func TestLTIOutputString(t *testing.T) {
	if LTIOutput(99).String() == "" {
		t.Error("unknown output String empty")
	}
}

func TestDNNBuildsAndDetects(t *testing.T) {
	c := getCorpus(t)
	cfg := DefaultDNNConfig()
	cfg.Train.Epochs = 10 // keep the test fast
	det, err := NewDNN(c.benign[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != "dnn-lstm" {
		t.Errorf("Name = %q", det.Name())
	}
	// The DNN baseline is trigger-happy by construction; we only require
	// that it runs on both benign and attack flights and produces a higher
	// peak statistic on the attack flight than its benign median.
	vb, err := det.Detect(c.benign[2])
	if err != nil {
		t.Fatal(err)
	}
	va, err := det.Detect(c.gps)
	if err != nil {
		t.Fatal(err)
	}
	if va.PeakStat <= 0 || vb.PeakStat <= 0 {
		t.Errorf("degenerate peak stats: benign %v, attack %v", vb.PeakStat, va.PeakStat)
	}
}

func TestDNNValidation(t *testing.T) {
	if _, err := NewDNN(nil, DefaultDNNConfig()); err == nil {
		t.Error("no training flights accepted")
	}
	c := getCorpus(t)
	cfg := DefaultDNNConfig()
	cfg.SeqLen = 1
	if _, err := NewDNN(c.benign[:1], cfg); err == nil {
		t.Error("seq length 1 accepted")
	}
}
