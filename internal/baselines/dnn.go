package baselines

import (
	"fmt"
	"math/rand"

	"soundboost/internal/dataset"
	"soundboost/internal/nn"
	"soundboost/internal/stats"
)

// DNNConfig tunes the LSTM control-dynamics baseline (Ding et al. [15]).
type DNNConfig struct {
	// SeqLen is the input sequence length (telemetry steps).
	SeqLen int
	// StepSeconds downsamples telemetry to this step.
	StepSeconds float64
	// Hidden is the LSTM width.
	Hidden int
	// Train configures the optimisation loop.
	Train nn.TrainConfig
	// ThresholdQuantile sets the alarm level at this quantile of the
	// *training* prediction errors — the original method thresholds on
	// data it has already fit, which is what makes it trigger-happy on
	// unseen flights (Tab. II: FPR 0.73).
	ThresholdQuantile float64
	// DetectSteps is how many consecutive threshold crossings alarm.
	DetectSteps int
	// Seed drives initialisation.
	Seed int64
}

// DefaultDNNConfig returns the tuned configuration.
func DefaultDNNConfig() DNNConfig {
	return DNNConfig{
		SeqLen:            8,
		StepSeconds:       0.1,
		Hidden:            16,
		Train:             nn.TrainConfig{Epochs: 25, BatchSize: 32, LR: 5e-3, Seed: 3},
		ThresholdQuantile: 0.995,
		DetectSteps:       3,
		Seed:              3,
	}
}

// DNN approximates the UAV's control dynamics with an LSTM: it predicts the
// next control-state vector from the recent telemetry series and flags
// sustained prediction errors.
type DNN struct {
	cfg       DNNConfig
	lstm      *nn.LSTM
	threshold float64
	inNorm    []float64 // per-feature scale
}

// dnnRow is one telemetry feature row: [gyro xyz, accel z, vx, vy, vz].
func dnnRow(s dataset.TelemetrySample) []float64 {
	return []float64{
		s.IMUGyro.X, s.IMUGyro.Y, s.IMUGyro.Z,
		s.IMUAccel.Z / 10,
		s.GPSVel.X, s.GPSVel.Y, s.GPSVel.Z,
	}
}

const dnnFeatures = 7

// dnnSeries downsamples one flight into feature rows.
func dnnSeries(f *dataset.Flight, step float64) [][]float64 {
	var rows [][]float64
	if len(f.Telemetry) == 0 {
		return nil
	}
	next := f.Telemetry[0].Time
	for _, s := range f.Telemetry {
		if s.Time < next {
			continue
		}
		next = s.Time + step
		rows = append(rows, dnnRow(s))
	}
	return rows
}

// NewDNN trains the LSTM on benign flights and sets its threshold from the
// training-error distribution.
func NewDNN(benign []*dataset.Flight, cfg DNNConfig) (*DNN, error) {
	if len(benign) == 0 {
		return nil, fmt.Errorf("baselines: DNN needs benign training flights")
	}
	if cfg.SeqLen < 2 {
		return nil, fmt.Errorf("baselines: sequence length %d too short", cfg.SeqLen)
	}
	var seqs [][][]float64
	var targets [][]float64
	for _, f := range benign {
		rows := dnnSeries(f, cfg.StepSeconds)
		for i := 0; i+cfg.SeqLen < len(rows); i++ {
			seqs = append(seqs, rows[i:i+cfg.SeqLen])
			targets = append(targets, rows[i+cfg.SeqLen])
		}
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("baselines: no training sequences")
	}
	l := nn.NewLSTM(dnnFeatures, cfg.Hidden, dnnFeatures, rand.New(rand.NewSource(cfg.Seed)))
	if _, err := nn.TrainLSTM(l, seqs, targets, cfg.Train); err != nil {
		return nil, err
	}
	// Threshold from training-set errors (the method's own weakness).
	var errs []float64
	for i, s := range seqs {
		pred := l.Infer(s)
		var e float64
		for j, p := range pred {
			d := p - targets[i][j]
			e += d * d
		}
		errs = append(errs, e)
	}
	threshold := stats.Quantile(errs, cfg.ThresholdQuantile)
	if threshold <= 0 {
		return nil, fmt.Errorf("baselines: degenerate DNN threshold")
	}
	return &DNN{cfg: cfg, lstm: l, threshold: threshold}, nil
}

// Name implements Detector.
func (b *DNN) Name() string { return "dnn-lstm" }

// Detect implements Detector.
func (b *DNN) Detect(f *dataset.Flight) (Verdict, error) {
	rows := dnnSeries(f, b.cfg.StepSeconds)
	if len(rows) <= b.cfg.SeqLen {
		return Verdict{}, fmt.Errorf("baselines: flight too short for DNN")
	}
	v := Verdict{Threshold: b.threshold}
	consecutive := 0
	start := f.Telemetry[0].Time
	for i := 0; i+b.cfg.SeqLen < len(rows); i++ {
		pred := b.lstm.Infer(rows[i : i+b.cfg.SeqLen])
		var e float64
		for j, p := range pred {
			d := p - rows[i+b.cfg.SeqLen][j]
			e += d * d
		}
		if e > v.PeakStat {
			v.PeakStat = e
		}
		if e > b.threshold {
			consecutive++
			if consecutive >= b.cfg.DetectSteps && !v.Attacked {
				v.Attacked = true
				v.DetectionTime = start + float64(i+b.cfg.SeqLen)*b.cfg.StepSeconds
			}
		} else {
			consecutive = 0
		}
	}
	return v, nil
}

// Verify interface compliance.
var _ Detector = (*DNN)(nil)
