// Package baselines implements the detectors SoundBoost is compared
// against in Tab. II: the ArduPilot-style failsafe using IMU-only Kalman
// estimation, the Control Invariant LTI monitors of Choi et al. (yaw rate,
// vx, vy), and the DNN (LSTM) control-dynamics approximation of Ding et
// al. All baselines consume only flight telemetry — never audio and never
// simulation ground truth.
package baselines

import (
	"fmt"

	"soundboost/internal/dataset"
	"soundboost/internal/kalman"
	"soundboost/internal/mathx"
	"soundboost/internal/sensors"
	"soundboost/internal/stats"
)

// Verdict is a baseline detector's decision on one flight period.
type Verdict struct {
	// Attacked reports whether an alarm was raised.
	Attacked bool
	// DetectionTime is the flight time of the first alarm (s).
	DetectionTime float64
	// PeakStat is the maximum monitored statistic.
	PeakStat float64
	// Threshold is the calibrated alarm level.
	Threshold float64
}

// Detector is a calibrated flight-period attack detector.
type Detector interface {
	// Name identifies the detector in tables.
	Name() string
	// Detect analyses one flight period.
	Detect(f *dataset.Flight) (Verdict, error)
}

// ---------------------------------------------------------------------------
// Failsafe: IMU-only Kalman velocity estimation vs GPS velocity.

// FailsafeConfig tunes the IMU-only failsafe baseline.
type FailsafeConfig struct {
	// StepSeconds is the fusion step (matches SoundBoost's hop for a fair
	// comparison).
	StepSeconds float64
	// ThresholdMargin scales the benign ceiling.
	ThresholdMargin float64
	// OutlierSigma trims benign peaks before the max.
	OutlierSigma float64
	// ErrorAlpha is the running-mean weight.
	ErrorAlpha float64
}

// DefaultFailsafeConfig returns the tuned configuration.
func DefaultFailsafeConfig() FailsafeConfig {
	return FailsafeConfig{StepSeconds: 0.25, ThresholdMargin: 1.1, OutlierSigma: 3, ErrorAlpha: 0.05}
}

// Failsafe is the IMU-only ablation: the same running-mean velocity-error
// monitor as SoundBoost, but the Kalman filter sees only IMU data — so an
// IMU-consistent spoof (or plain IMU drift) degrades it.
type Failsafe struct {
	cfg       FailsafeConfig
	threshold float64
}

// failsafeTrace runs the IMU-only KF over a flight and returns the running
// error series with timestamps.
func (b *Failsafe) trace(f *dataset.Flight) (times, running []float64, err error) {
	if len(f.Telemetry) == 0 {
		return nil, nil, fmt.Errorf("baselines: empty telemetry")
	}
	est, err := kalman.NewVelocityEstimator(kalman.DefaultVelocityConfig(kalman.ModeIMUOnly), f.Telemetry[0].GPSVel)
	if err != nil {
		return nil, nil, err
	}
	monitor := stats.RunningMean{Alpha: b.cfg.ErrorAlpha}
	gravity := mathx.Vec3{Z: sensors.Gravity}
	step := b.cfg.StepSeconds
	start := f.Telemetry[0].Time
	for t := start; t+step <= f.Telemetry[len(f.Telemetry)-1].Time; t += step {
		tel := f.TelemetryBetween(t, t+step)
		if len(tel) == 0 {
			continue
		}
		att := tel[len(tel)/2].EstAtt
		var imuSum mathx.Vec3
		for _, s := range tel {
			imuSum = imuSum.Add(s.IMUAccel)
		}
		imuNED := att.Rotate(imuSum.Scale(1 / float64(len(tel)))).Add(gravity)
		if err := est.Step(imuNED, imuNED, step); err != nil {
			return nil, nil, err
		}
		e := est.Velocity().Sub(tel[len(tel)-1].GPSVel).Norm()
		times = append(times, t+step)
		running = append(running, monitor.Add(e))
	}
	return times, running, nil
}

// NewFailsafe calibrates the failsafe threshold on benign flights.
func NewFailsafe(benign []*dataset.Flight, cfg FailsafeConfig) (*Failsafe, error) {
	if len(benign) == 0 {
		return nil, fmt.Errorf("baselines: failsafe needs benign calibration flights")
	}
	b := &Failsafe{cfg: cfg}
	var peaks []float64
	for _, f := range benign {
		_, running, err := b.trace(f)
		if err != nil {
			return nil, err
		}
		peaks = append(peaks, stats.Max(running))
	}
	b.threshold = stats.Max(stats.TrimOutliers(peaks, cfg.OutlierSigma)) * cfg.ThresholdMargin
	if b.threshold <= 0 {
		return nil, fmt.Errorf("baselines: degenerate failsafe threshold")
	}
	return b, nil
}

// Name implements Detector.
func (b *Failsafe) Name() string { return "failsafe-imu-only" }

// Detect implements Detector.
func (b *Failsafe) Detect(f *dataset.Flight) (Verdict, error) {
	times, running, err := b.trace(f)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{Threshold: b.threshold}
	for i, e := range running {
		if e > v.PeakStat {
			v.PeakStat = e
		}
		if e > b.threshold && !v.Attacked {
			v.Attacked = true
			v.DetectionTime = times[i]
		}
	}
	return v, nil
}

// Verify interface compliance.
var _ Detector = (*Failsafe)(nil)
