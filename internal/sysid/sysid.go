// Package sysid implements the Control Invariant baseline (Choi et al.,
// CCS'18) that the paper compares against in Tab. II: System Identification
// fits a discrete linear time-invariant model x_{k+1} = A x_k + B u_k to
// benign flight data; the fitted model then serves as an invariant monitor
// whose cumulative prediction error flags attacks.
package sysid

import (
	"errors"
	"fmt"

	"soundboost/internal/mathx"
)

// ErrNotFitted is returned when a model is used before Fit.
var ErrNotFitted = errors.New("sysid: model not fitted")

// LTIModel is a fitted discrete-time linear model x_{k+1} = A x_k + B u_k.
type LTIModel struct {
	// A is the state transition matrix (n x n).
	A *mathx.Matrix
	// B is the control matrix (n x m).
	B      *mathx.Matrix
	fitted bool
}

// Fit estimates A and B from trajectories by least squares. states[k] is
// x_k, controls[k] is u_k; the regression pairs x_{k+1} with [x_k; u_k].
// Damping stabilises near-collinear hover data (pass ~1e-6).
func Fit(states [][]float64, controls [][]float64, damping float64) (*LTIModel, error) {
	if len(states) < 2 {
		return nil, fmt.Errorf("sysid: need at least 2 state samples, got %d", len(states))
	}
	if len(controls) < len(states)-1 {
		return nil, fmt.Errorf("sysid: need %d control samples, got %d", len(states)-1, len(controls))
	}
	n := len(states[0])
	m := len(controls[0])
	rows := len(states) - 1
	design := mathx.NewMatrix(rows, n+m)
	for k := 0; k < rows; k++ {
		if len(states[k]) != n || len(controls[k]) != m {
			return nil, fmt.Errorf("sysid: ragged sample %d", k)
		}
		for j := 0; j < n; j++ {
			design.Set(k, j, states[k][j])
		}
		for j := 0; j < m; j++ {
			design.Set(k, n+j, controls[k][j])
		}
	}
	model := &LTIModel{A: mathx.NewMatrix(n, n), B: mathx.NewMatrix(n, m), fitted: true}
	for i := 0; i < n; i++ {
		target := make([]float64, rows)
		for k := 0; k < rows; k++ {
			target[k] = states[k+1][i]
		}
		coef, err := mathx.LeastSquares(design, target, damping)
		if err != nil {
			return nil, fmt.Errorf("sysid: solve row %d: %w", i, err)
		}
		for j := 0; j < n; j++ {
			model.A.Set(i, j, coef[j])
		}
		for j := 0; j < m; j++ {
			model.B.Set(i, j, coef[n+j])
		}
	}
	return model, nil
}

// Predict returns the model's one-step prediction from x_k and u_k.
func (m *LTIModel) Predict(x, u []float64) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	ax, err := m.A.MulVec(x)
	if err != nil {
		return nil, err
	}
	bu, err := m.B.MulVec(u)
	if err != nil {
		return nil, err
	}
	for i := range ax {
		ax[i] += bu[i]
	}
	return ax, nil
}

// Monitor accumulates per-step prediction error of an output channel and
// alarms when a CUSUM-style accumulator exceeds a threshold — the invariant
// check of the baseline.
type Monitor struct {
	// Model is the fitted invariant.
	Model *LTIModel
	// Output selects the monitored state index (e.g. yaw rate, vx, vy).
	Output int
	// Threshold is the alarm level on the error accumulator.
	Threshold float64
	// Decay leaks the accumulator per step in [0,1); 1-Decay of the
	// accumulated error survives each step.
	Decay float64

	accum   float64
	alarmed bool
}

// Step feeds one (x_k, u_k, x_{k+1}) observation; it returns the current
// accumulator value and whether the monitor is in alarm.
func (mo *Monitor) Step(x, u, xNext []float64) (float64, bool, error) {
	pred, err := mo.Model.Predict(x, u)
	if err != nil {
		return 0, false, err
	}
	if mo.Output < 0 || mo.Output >= len(pred) {
		return 0, false, fmt.Errorf("sysid: output index %d out of range %d", mo.Output, len(pred))
	}
	e := xNext[mo.Output] - pred[mo.Output]
	if e < 0 {
		e = -e
	}
	mo.accum = mo.accum*(1-mo.Decay) + e
	if mo.accum > mo.Threshold {
		mo.alarmed = true
	}
	return mo.accum, mo.alarmed, nil
}

// Alarmed reports whether the threshold was ever crossed.
func (mo *Monitor) Alarmed() bool { return mo.alarmed }

// Reset clears the accumulator and alarm state.
func (mo *Monitor) Reset() { mo.accum = 0; mo.alarmed = false }

// CalibrateThreshold sets the monitor threshold to the maximum accumulator
// value observed over a benign trajectory, scaled by margin (>1). It leaves
// the monitor reset.
func (mo *Monitor) CalibrateThreshold(states, controls [][]float64, margin float64) error {
	if len(states) < 2 {
		return fmt.Errorf("sysid: calibration needs at least 2 states")
	}
	mo.Reset()
	mo.Threshold = 1e308 // disable alarm during calibration
	maxAcc := 0.0
	for k := 0; k+1 < len(states) && k < len(controls); k++ {
		acc, _, err := mo.Step(states[k], controls[k], states[k+1])
		if err != nil {
			return err
		}
		if acc > maxAcc {
			maxAcc = acc
		}
	}
	mo.Threshold = maxAcc * margin
	mo.Reset()
	return nil
}
