package sysid

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// simulateLTI rolls out a known LTI system with noise.
func simulateLTI(a, b [][]float64, steps int, noise float64, seed int64) (states, controls [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	n := len(a)
	m := len(b[0])
	x := make([]float64, n)
	for k := 0; k < steps; k++ {
		u := make([]float64, m)
		for j := range u {
			u[j] = rng.NormFloat64()
		}
		controls = append(controls, u)
		states = append(states, append([]float64(nil), x...))
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[i] += a[i][j] * x[j]
			}
			for j := 0; j < m; j++ {
				next[i] += b[i][j] * u[j]
			}
			next[i] += rng.NormFloat64() * noise
		}
		x = next
	}
	states = append(states, x)
	return states, controls
}

func TestFitRecoversKnownSystem(t *testing.T) {
	a := [][]float64{{0.9, 0.1}, {0, 0.8}}
	b := [][]float64{{0.5}, {1.0}}
	states, controls := simulateLTI(a, b, 500, 0.001, 1)
	model, err := Fit(states, controls, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(model.A.At(i, j)-a[i][j]) > 0.01 {
				t.Errorf("A[%d][%d] = %v, want %v", i, j, model.A.At(i, j), a[i][j])
			}
		}
		if math.Abs(model.B.At(i, 0)-b[i][0]) > 0.01 {
			t.Errorf("B[%d][0] = %v, want %v", i, model.B.At(i, 0), b[i][0])
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, nil, 0); err == nil {
		t.Error("single state accepted")
	}
	if _, err := Fit([][]float64{{1}, {2}}, nil, 0); err == nil {
		t.Error("missing controls accepted")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, [][]float64{{0}}, 0); err == nil {
		t.Error("ragged states accepted")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	var m LTIModel
	if _, err := m.Predict([]float64{1}, []float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v, want ErrNotFitted", err)
	}
}

func TestPredictKnownValues(t *testing.T) {
	a := [][]float64{{1, 0.1}, {0, 1}}
	b := [][]float64{{0}, {0.5}}
	states, controls := simulateLTI(a, b, 300, 0, 2)
	model, err := Fit(states, controls, 0)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.Predict([]float64{2, 1}, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	// x0' = 2 + 0.1*1 = 2.1; x1' = 1 + 0.5*4 = 3
	if math.Abs(pred[0]-2.1) > 0.01 || math.Abs(pred[1]-3) > 0.01 {
		t.Errorf("Predict = %v, want [2.1 3]", pred)
	}
}

func TestMonitorStaysQuietOnMatchingDynamics(t *testing.T) {
	a := [][]float64{{0.95, 0}, {0, 0.9}}
	b := [][]float64{{0.3}, {0.7}}
	states, controls := simulateLTI(a, b, 600, 0.005, 3)
	model, err := Fit(states[:300], controls[:300], 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{Model: model, Output: 0, Decay: 0.05}
	if err := mon.CalibrateThreshold(states[:300], controls[:300], 1.3); err != nil {
		t.Fatal(err)
	}
	for k := 300; k+1 < len(states); k++ {
		if _, _, err := mon.Step(states[k], controls[k], states[k+1]); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Alarmed() {
		t.Error("monitor alarmed on benign continuation")
	}
}

func TestMonitorAlarmsOnDynamicsChange(t *testing.T) {
	a := [][]float64{{0.95, 0}, {0, 0.9}}
	b := [][]float64{{0.3}, {0.7}}
	states, controls := simulateLTI(a, b, 400, 0.005, 4)
	model, err := Fit(states, controls, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{Model: model, Output: 0, Decay: 0.05}
	if err := mon.CalibrateThreshold(states, controls, 1.3); err != nil {
		t.Fatal(err)
	}
	// Attack: the observed next state is biased away from the model.
	aAtk := [][]float64{{0.95, 0}, {0, 0.9}}
	bAtk := [][]float64{{0.3}, {0.7}}
	atkStates, atkControls := simulateLTI(aAtk, bAtk, 200, 0.005, 5)
	for k := 0; k+1 < len(atkStates); k++ {
		next := append([]float64(nil), atkStates[k+1]...)
		next[0] += 0.5 // injected deviation on the monitored output
		if _, _, err := mon.Step(atkStates[k], atkControls[k], next); err != nil {
			t.Fatal(err)
		}
	}
	if !mon.Alarmed() {
		t.Error("monitor missed injected deviation")
	}
	mon.Reset()
	if mon.Alarmed() {
		t.Error("Reset did not clear alarm")
	}
}

func TestMonitorOutputRange(t *testing.T) {
	a := [][]float64{{1}}
	b := [][]float64{{1}}
	states, controls := simulateLTI(a, b, 50, 0, 6)
	model, err := Fit(states, controls, 0)
	if err != nil {
		t.Fatal(err)
	}
	mon := &Monitor{Model: model, Output: 5, Threshold: 1}
	if _, _, err := mon.Step(states[0], controls[0], states[1]); err == nil {
		t.Error("out-of-range output accepted")
	}
}

func TestCalibrateThresholdNeedsData(t *testing.T) {
	mon := &Monitor{Model: &LTIModel{fitted: true}}
	if err := mon.CalibrateThreshold(nil, nil, 1.2); err == nil {
		t.Error("empty calibration accepted")
	}
}
