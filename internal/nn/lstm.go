package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// LSTM is a single-layer LSTM sequence regressor with a dense head:
// it consumes a sequence of input vectors and predicts a target vector
// from the final hidden state. It implements the DNN baseline of the paper
// (Ding et al. [15]): learning the UAV's normal control dynamics as a time
// series and flagging prediction-error anomalies.
type LSTM struct {
	In, Hidden, Out int

	// Gate weights, each Hidden x (In + Hidden + 1) row-major, the +1
	// column being the bias: order [input | recurrent | bias].
	Wi, Wf, Wo, Wg []float64
	// Head is the output projection.
	Head *Dense

	dWi, dWf, dWo, dWg []float64

	// caches for BPTT
	seq            [][]float64
	hs, cs         [][]float64
	is, fs, os, gs [][]float64
}

// NewLSTM builds an LSTM regressor. The forget-gate bias starts at 1,
// the standard trick for gradient flow on short sequences.
func NewLSTM(in, hidden, out int, rng *rand.Rand) *LSTM {
	if in <= 0 || hidden <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid lstm shape in=%d hidden=%d out=%d", in, hidden, out))
	}
	cols := in + hidden + 1
	mk := func() []float64 {
		w := make([]float64, hidden*cols)
		limit := math.Sqrt(6.0 / float64(cols))
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * limit
		}
		return w
	}
	l := &LSTM{
		In: in, Hidden: hidden, Out: out,
		Wi: mk(), Wf: mk(), Wo: mk(), Wg: mk(),
		Head: NewDense(hidden, out, rng),
	}
	for h := 0; h < hidden; h++ {
		l.Wf[h*cols+cols-1] = 1 // forget bias
	}
	l.dWi = make([]float64, len(l.Wi))
	l.dWf = make([]float64, len(l.Wf))
	l.dWo = make([]float64, len(l.Wo))
	l.dWg = make([]float64, len(l.Wg))
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// gate computes W [x; h; 1] for one gate weight matrix.
func (l *LSTM) gate(w, x, h []float64) []float64 {
	cols := l.In + l.Hidden + 1
	out := make([]float64, l.Hidden)
	for r := 0; r < l.Hidden; r++ {
		row := w[r*cols : (r+1)*cols]
		s := row[cols-1]
		for i, xi := range x {
			s += row[i] * xi
		}
		for j, hj := range h {
			s += row[l.In+j] * hj
		}
		out[r] = s
	}
	return out
}

// Forward runs the sequence and returns the prediction, caching
// intermediates for Backward.
func (l *LSTM) Forward(seq [][]float64) []float64 {
	l.seq = seq
	T := len(seq)
	l.hs = make([][]float64, T+1)
	l.cs = make([][]float64, T+1)
	l.is = make([][]float64, T)
	l.fs = make([][]float64, T)
	l.os = make([][]float64, T)
	l.gs = make([][]float64, T)
	l.hs[0] = make([]float64, l.Hidden)
	l.cs[0] = make([]float64, l.Hidden)
	for t := 0; t < T; t++ {
		x := seq[t]
		h, c := l.hs[t], l.cs[t]
		iRaw := l.gate(l.Wi, x, h)
		fRaw := l.gate(l.Wf, x, h)
		oRaw := l.gate(l.Wo, x, h)
		gRaw := l.gate(l.Wg, x, h)
		nh := make([]float64, l.Hidden)
		nc := make([]float64, l.Hidden)
		for k := 0; k < l.Hidden; k++ {
			iRaw[k] = sigmoid(iRaw[k])
			fRaw[k] = sigmoid(fRaw[k])
			oRaw[k] = sigmoid(oRaw[k])
			gRaw[k] = math.Tanh(gRaw[k])
			nc[k] = fRaw[k]*c[k] + iRaw[k]*gRaw[k]
			nh[k] = oRaw[k] * math.Tanh(nc[k])
		}
		l.is[t], l.fs[t], l.os[t], l.gs[t] = iRaw, fRaw, oRaw, gRaw
		l.hs[t+1], l.cs[t+1] = nh, nc
	}
	return l.Head.Forward(l.hs[T])
}

// Infer runs the sequence and returns the prediction without touching the
// BPTT caches, so it is safe for concurrent use on a trained model. The
// arithmetic is identical to Forward.
func (l *LSTM) Infer(seq [][]float64) []float64 {
	h := make([]float64, l.Hidden)
	c := make([]float64, l.Hidden)
	for _, x := range seq {
		iRaw := l.gate(l.Wi, x, h)
		fRaw := l.gate(l.Wf, x, h)
		oRaw := l.gate(l.Wo, x, h)
		gRaw := l.gate(l.Wg, x, h)
		nh := make([]float64, l.Hidden)
		nc := make([]float64, l.Hidden)
		for k := 0; k < l.Hidden; k++ {
			ik := sigmoid(iRaw[k])
			fk := sigmoid(fRaw[k])
			ok := sigmoid(oRaw[k])
			gk := math.Tanh(gRaw[k])
			nc[k] = fk*c[k] + ik*gk
			nh[k] = ok * math.Tanh(nc[k])
		}
		h, c = nh, nc
	}
	return l.Head.Infer(h)
}

// Backward backpropagates dL/dOutput through the head and the full
// sequence (BPTT), accumulating parameter gradients.
func (l *LSTM) Backward(grad []float64) {
	T := len(l.seq)
	dh := l.Head.Backward(grad)
	dc := make([]float64, l.Hidden)
	cols := l.In + l.Hidden + 1
	for t := T - 1; t >= 0; t-- {
		x := l.seq[t]
		hPrev, cPrev := l.hs[t], l.cs[t]
		i, f, o, g := l.is[t], l.fs[t], l.os[t], l.gs[t]
		c := l.cs[t+1]
		dhNext := make([]float64, l.Hidden)
		dcNext := make([]float64, l.Hidden)
		for k := 0; k < l.Hidden; k++ {
			tc := math.Tanh(c[k])
			do := dh[k] * tc
			dck := dc[k] + dh[k]*o[k]*(1-tc*tc)
			di := dck * g[k]
			dg := dck * i[k]
			df := dck * cPrev[k]
			dcNext[k] += dck * f[k]

			// raw (pre-activation) gate gradients
			diRaw := di * i[k] * (1 - i[k])
			dfRaw := df * f[k] * (1 - f[k])
			doRaw := do * o[k] * (1 - o[k])
			dgRaw := dg * (1 - g[k]*g[k])

			accum := func(w, dw []float64, raw float64) {
				row := w[k*cols : (k+1)*cols]
				dRow := dw[k*cols : (k+1)*cols]
				for a, xa := range x {
					dRow[a] += raw * xa
				}
				for b, hb := range hPrev {
					dRow[l.In+b] += raw * hb
					dhNext[b] += raw * row[l.In+b]
				}
				dRow[cols-1] += raw
			}
			accum(l.Wi, l.dWi, diRaw)
			accum(l.Wf, l.dWf, dfRaw)
			accum(l.Wo, l.dWo, doRaw)
			accum(l.Wg, l.dWg, dgRaw)
		}
		dh = dhNext
		dc = dcNext
	}
}

// Params returns all parameter/gradient pairs for optimisation.
func (l *LSTM) Params() []Param {
	out := []Param{
		{Value: l.Wi, Grad: l.dWi},
		{Value: l.Wf, Grad: l.dWf},
		{Value: l.Wo, Grad: l.dWo},
		{Value: l.Wg, Grad: l.dWg},
	}
	return append(out, l.Head.Params()...)
}

// TrainLSTM fits the LSTM on sequences with Adam + MSE.
func TrainLSTM(l *LSTM, seqs [][][]float64, targets [][]float64, cfg TrainConfig) (TrainHistory, error) {
	if len(seqs) == 0 || len(seqs) != len(targets) {
		return TrainHistory{}, fmt.Errorf("%w: %d sequences, %d targets", ErrBadDataset, len(seqs), len(targets))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	opt := &Adam{LR: cfg.LR}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	params := l.Params()
	var hist TrainHistory
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var loss float64
		var count int
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			invB := 1.0 / float64(len(batch))
			for _, s := range batch {
				pred := l.Forward(seqs[s])
				grad := make([]float64, len(pred))
				for j, p := range pred {
					d := p - targets[s][j]
					loss += d * d
					grad[j] = 2 * d * invB / float64(len(pred))
				}
				l.Backward(grad)
				count++
			}
			opt.Step(params)
		}
		hist.TrainMSE = append(hist.TrainMSE, loss/float64(count*l.Out))
	}
	return hist, nil
}

// LSTMMSE evaluates mean squared prediction error over sequences.
func LSTMMSE(l *LSTM, seqs [][][]float64, targets [][]float64) float64 {
	if len(seqs) == 0 {
		return 0
	}
	var total float64
	var count int
	for i, s := range seqs {
		pred := l.Forward(s)
		for j, p := range pred {
			d := p - targets[i][j]
			total += d * d
			count++
		}
	}
	return total / float64(count)
}
