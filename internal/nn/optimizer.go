package nn

import "math"

// Optimizer updates parameters from their accumulated gradients and zeroes
// the accumulators.
type Optimizer interface {
	// Step applies one update over all parameter tensors.
	Step(params []Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	// LR is the learning rate.
	LR float64
	// Momentum in [0,1) enables classical momentum.
	Momentum float64

	velocity [][]float64
}

// Step implements Optimizer.
func (s *SGD) Step(params []Param) {
	if s.Momentum > 0 && s.velocity == nil {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p.Value))
		}
	}
	for i, p := range params {
		for j := range p.Value {
			g := p.Grad[j]
			if s.Momentum > 0 {
				s.velocity[i][j] = s.Momentum*s.velocity[i][j] + g
				g = s.velocity[i][j]
			}
			p.Value[j] -= s.LR * g
			p.Grad[j] = 0
		}
	}
}

// Adam is the Adam optimiser (Kingma & Ba) with bias correction.
type Adam struct {
	// LR is the learning rate (default 1e-3 if zero).
	LR float64
	// Beta1, Beta2 are the moment decay rates (defaults 0.9 / 0.999).
	Beta1, Beta2 float64
	// Eps is the numerical-stability constant (default 1e-8).
	Eps float64

	m, v [][]float64
	t    int
}

// Step implements Optimizer.
func (a *Adam) Step(params []Param) {
	if a.LR == 0 {
		a.LR = 1e-3
	}
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Value))
			a.v[i] = make([]float64, len(p.Value))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		for j := range p.Value {
			g := p.Grad[j]
			a.m[i][j] = a.Beta1*a.m[i][j] + (1-a.Beta1)*g
			a.v[i][j] = a.Beta2*a.v[i][j] + (1-a.Beta2)*g*g
			mHat := a.m[i][j] / c1
			vHat := a.v[i][j] / c2
			p.Value[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			p.Grad[j] = 0
		}
	}
}

// Verify interface compliance.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)
