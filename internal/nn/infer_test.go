package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInferMatchesForward checks that the cache-free inference path is
// bitwise identical to Forward for every regressor family.
func TestInferMatchesForward(t *testing.T) {
	for _, kind := range []ModelKind{ModelMLP, ModelResMLP, ModelODE} {
		rng := rand.New(rand.NewSource(7))
		net, err := NewRegressor(kind, 6, 16, 3, rng)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for trial := 0; trial < 10; trial++ {
			x := make([]float64, 6)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := net.Forward(x)
			got := net.Infer(x)
			if len(got) != len(want) {
				t.Fatalf("%s: width mismatch", kind)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Infer[%d] = %v, Forward = %v", kind, i, got[i], want[i])
				}
			}
		}
	}
}

// TestLSTMInferMatchesForward checks the same equivalence for the LSTM and
// that concurrent Infer calls do not interfere (run under -race).
func TestLSTMInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM(4, 8, 4, rng)
	mkSeq := func() [][]float64 {
		seq := make([][]float64, 5)
		for t := range seq {
			seq[t] = make([]float64, 4)
			for i := range seq[t] {
				seq[t][i] = rng.NormFloat64()
			}
		}
		return seq
	}
	seqs := make([][][]float64, 16)
	want := make([][]float64, len(seqs))
	for i := range seqs {
		seqs[i] = mkSeq()
		want[i] = l.Forward(seqs[i])
	}
	var wg sync.WaitGroup
	got := make([][]float64, len(seqs))
	for i := range seqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = l.Infer(seqs[i])
		}(i)
	}
	wg.Wait()
	for i := range seqs {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("seq %d out %d: Infer %v != Forward %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
