package nn

import (
	"fmt"
	"math/rand"

	"soundboost/internal/obs"
)

// inferCalls counts cache-free inference passes (including nested
// sub-network passes inside residual/ODE blocks). Gated by obs.Enable.
var inferCalls = obs.Default.Counter("nn.infer.calls")

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward implements Layer.
func (s *Sequential) Forward(x []float64) []float64 {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Infer implements Layer.
func (s *Sequential) Infer(x []float64) []float64 {
	inferCalls.Inc()
	for _, l := range s.Layers {
		x = l.Infer(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad []float64) []float64 {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []Param {
	var out []Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// OutputSize implements Layer.
func (s *Sequential) OutputSize(in int) int {
	for _, l := range s.Layers {
		in = l.OutputSize(in)
	}
	return in
}

var _ Layer = (*Sequential)(nil)

// ModelKind selects one of the three audio-regressor families the paper
// compares (§III-B "DL Model Selection").
type ModelKind string

const (
	// ModelMLP is a compact plain MLP, the MobileNetV2 stand-in (the
	// paper's best performer and default).
	ModelMLP ModelKind = "mlp"
	// ModelResMLP uses residual blocks, the ResNet101 stand-in.
	ModelResMLP ModelKind = "resmlp"
	// ModelODE uses a weight-tied Euler-integrated block, the Neural-ODE
	// stand-in.
	ModelODE ModelKind = "ode"
)

// NewRegressor builds one of the model families mapping in features to out
// targets. Hidden controls capacity; rng seeds initialisation.
func NewRegressor(kind ModelKind, in, hidden, out int, rng *rand.Rand) (*Sequential, error) {
	if in <= 0 || hidden <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: invalid regressor shape in=%d hidden=%d out=%d", in, hidden, out)
	}
	switch kind {
	case ModelMLP:
		return NewSequential(
			NewDense(in, hidden, rng),
			&ReLU{},
			NewDense(hidden, hidden/2+1, rng),
			&ReLU{},
			NewDense(hidden/2+1, out, rng),
		), nil
	case ModelResMLP:
		block := func() Layer {
			return &Residual{Inner: NewSequential(
				NewDense(hidden, hidden, rng),
				&ReLU{},
				NewDense(hidden, hidden, rng),
			)}
		}
		return NewSequential(
			NewDense(in, hidden, rng),
			&ReLU{},
			block(),
			block(),
			NewDense(hidden, out, rng),
		), nil
	case ModelODE:
		f := NewSequential(
			NewDense(hidden, hidden, rng),
			&Tanh{},
			NewDense(hidden, hidden, rng),
		)
		return NewSequential(
			NewDense(in, hidden, rng),
			&Tanh{},
			&ODEBlock{F: f, Steps: 4, H: 0.25},
			NewDense(hidden, out, rng),
		), nil
	default:
		return nil, fmt.Errorf("nn: unknown model kind %q", kind)
	}
}
