package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"soundboost/internal/obs"
)

// epochTimer times one optimisation epoch (shuffle + minibatch sweep +
// validation pass). Gated by obs.Enable.
var epochTimer = obs.Default.Timer("nn.train.epoch")

// ErrBadDataset is returned when training data is malformed.
var ErrBadDataset = errors.New("nn: bad dataset")

// TrainConfig controls the training loop.
type TrainConfig struct {
	// Epochs is the number of passes over the data.
	Epochs int
	// BatchSize is the minibatch size (gradients are averaged per batch).
	BatchSize int
	// LR is the learning rate (Adam).
	LR float64
	// Seed drives shuffling.
	Seed int64
	// Verbose emits per-epoch losses through Logf when set.
	Verbose bool
	// Logf receives progress lines when Verbose (default: discard). Not
	// serialized when the config is embedded in a saved model.
	Logf func(format string, args ...any) `json:"-"`
	// ValX, ValY optionally provide a validation split; when present the
	// returned history includes validation MSE per epoch. Not serialized.
	ValX [][]float64 `json:"-"`
	ValY [][]float64 `json:"-"`
}

// TrainHistory records per-epoch losses.
type TrainHistory struct {
	TrainMSE []float64
	ValMSE   []float64
}

// MSE computes the mean squared error of the model over a dataset,
// averaged over samples and output dimensions.
func MSE(model *Sequential, xs, ys [][]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total float64
	var count int
	for i, x := range xs {
		pred := model.Forward(x)
		for j, p := range pred {
			d := p - ys[i][j]
			total += d * d
			count++
		}
	}
	return total / float64(count)
}

// Train fits the model to (xs, ys) with Adam and MSE loss, returning the
// loss history. xs and ys must be non-empty and congruent.
func Train(model *Sequential, xs, ys [][]float64, cfg TrainConfig) (TrainHistory, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return TrainHistory{}, fmt.Errorf("%w: %d inputs, %d targets", ErrBadDataset, len(xs), len(ys))
	}
	for i := range xs {
		if len(xs[i]) != len(xs[0]) || len(ys[i]) != len(ys[0]) {
			return TrainHistory{}, fmt.Errorf("%w: ragged sample %d", ErrBadDataset, i)
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	opt := &Adam{LR: cfg.LR}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	params := model.Params()

	var hist TrainHistory
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		span := epochTimer.Start()
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var samples int
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			invB := 1.0 / float64(len(batch))
			for _, s := range batch {
				pred := model.Forward(xs[s])
				grad := make([]float64, len(pred))
				for j, p := range pred {
					d := p - ys[s][j]
					epochLoss += d * d
					grad[j] = 2 * d * invB / float64(len(pred))
				}
				model.Backward(grad)
				samples++
			}
			opt.Step(params)
		}
		trainMSE := epochLoss / float64(samples*len(ys[0]))
		hist.TrainMSE = append(hist.TrainMSE, trainMSE)
		if len(cfg.ValX) > 0 {
			v := MSE(model, cfg.ValX, cfg.ValY)
			hist.ValMSE = append(hist.ValMSE, v)
			if cfg.Verbose {
				logf("epoch %3d: train MSE %.4f, val MSE %.4f", epoch, trainMSE, v)
			}
		} else if cfg.Verbose {
			logf("epoch %3d: train MSE %.4f", epoch, trainMSE)
		}
		span.Stop()
	}
	return hist, nil
}
