package nn

import (
	"fmt"
	"math"
	"sync"
)

// Net32 is a float32 inference-only lowering of a trained Sequential:
// flat row-major float32 weight slabs walked by tight component loops,
// with pooled activation scratch so concurrent Infer calls never
// contend or allocate per layer. It exists for the opt-in float32 hot
// path — training and the default float64 verdict path never touch it.
type Net32 struct {
	in, out int
	ops     []op32
	maxDim  int // widest activation across the program
	scratch sync.Pool
}

// op32 is one lowered layer. Exactly one of the fields below is used,
// selected by kind.
type op32 struct {
	kind  opKind32
	dense *dense32
	inner *Net32 // residual / ODE sub-program
	steps int    // ODE forward-Euler steps
	h     float32
}

type opKind32 uint8

const (
	opDense32 opKind32 = iota
	opReLU32
	opTanh32
	opResidual32
	opODE32
)

type dense32 struct {
	in, out int
	w       []float32 // row-major out x in
	b       []float32
}

// Compile32 lowers a trained Sequential into a Net32. It understands
// the concrete layer set NewRegressor emits (Dense, ReLU, Tanh,
// Residual, ODEBlock, nested Sequential); any other Layer
// implementation returns an error so callers can fall back to the
// float64 path.
func Compile32(s *Sequential) (*Net32, error) {
	if s == nil {
		return nil, fmt.Errorf("nn: compile nil network")
	}
	n := &Net32{in: -1, out: -1}
	dim := -1
	for i, l := range s.Layers {
		switch v := l.(type) {
		case *Dense:
			w := make([]float32, len(v.W))
			for j, x := range v.W {
				w[j] = float32(x)
			}
			b := make([]float32, len(v.B))
			for j, x := range v.B {
				b[j] = float32(x)
			}
			n.ops = append(n.ops, op32{kind: opDense32, dense: &dense32{in: v.In, out: v.Out, w: w, b: b}})
			if n.in < 0 {
				n.in = v.In
			}
			dim = v.Out
		case *ReLU:
			n.ops = append(n.ops, op32{kind: opReLU32})
		case *Tanh:
			n.ops = append(n.ops, op32{kind: opTanh32})
		case *Residual:
			inner, err := Compile32(v.Inner)
			if err != nil {
				return nil, fmt.Errorf("nn: residual layer %d: %w", i, err)
			}
			n.ops = append(n.ops, op32{kind: opResidual32, inner: inner})
		case *ODEBlock:
			inner, err := Compile32(v.F)
			if err != nil {
				return nil, fmt.Errorf("nn: ODE layer %d: %w", i, err)
			}
			n.ops = append(n.ops, op32{kind: opODE32, inner: inner, steps: v.Steps, h: float32(v.H)})
		default:
			return nil, fmt.Errorf("nn: cannot lower layer %d (%T) to float32", i, l)
		}
	}
	if n.in < 0 {
		return nil, fmt.Errorf("nn: network has no dense layers")
	}
	n.out = dim
	n.maxDim = n.widest(n.in)
	n.scratch.New = func() any {
		buf := make([]float32, 2*n.maxDim)
		return &buf
	}
	return n, nil
}

// widest computes the maximum activation width of the program starting
// from an input of width in, including sub-programs.
func (n *Net32) widest(in int) int {
	max := in
	dim := in
	for _, o := range n.ops {
		switch o.kind {
		case opDense32:
			dim = o.dense.out
		case opResidual32, opODE32:
			if w := o.inner.widest(dim); w > max {
				max = w
			}
		}
		if dim > max {
			max = dim
		}
	}
	return max
}

// InDim and OutDim report the compiled input/output widths.
func (n *Net32) InDim() int  { return n.in }
func (n *Net32) OutDim() int { return n.out }

// Infer runs one sample through the program and returns a fresh output
// slice. It is safe for concurrent use; all intermediate activations
// live on pooled scratch.
func (n *Net32) Infer(x []float32) []float32 {
	bufp := n.scratch.Get().(*[]float32)
	defer n.scratch.Put(bufp)
	cur := (*bufp)[:len(x)]
	copy(cur, x)
	cur = n.run(cur, (*bufp)[n.maxDim:])
	out := make([]float32, len(cur))
	copy(out, cur)
	return out
}

// run executes the program in place over cur, using tmp (maxDim wide)
// for dense outputs and sub-program state. It returns the final
// activation, which aliases either cur or tmp.
func (n *Net32) run(cur, tmp []float32) []float32 {
	for _, o := range n.ops {
		switch o.kind {
		case opDense32:
			d := o.dense
			out := tmp[:d.out]
			for r := 0; r < d.out; r++ {
				sum := d.b[r]
				row := d.w[r*d.in : (r+1)*d.in]
				for i, xi := range cur[:d.in] {
					sum += row[i] * xi
				}
				out[r] = sum
			}
			cur, tmp = out, cur[:cap(cur)]
		case opReLU32:
			for i, v := range cur {
				if v < 0 {
					cur[i] = 0
				}
			}
		case opTanh32:
			for i, v := range cur {
				cur[i] = float32(math.Tanh(float64(v)))
			}
		case opResidual32:
			inner := o.inner
			ibufp := inner.scratch.Get().(*[]float32)
			icur := (*ibufp)[:len(cur)]
			copy(icur, cur)
			res := inner.run(icur, (*ibufp)[inner.maxDim:])
			for i := range cur {
				cur[i] += res[i]
			}
			inner.scratch.Put(ibufp)
		case opODE32:
			inner := o.inner
			ibufp := inner.scratch.Get().(*[]float32)
			for s := 0; s < o.steps; s++ {
				icur := (*ibufp)[:len(cur)]
				copy(icur, cur)
				fx := inner.run(icur, (*ibufp)[inner.maxDim:])
				for i := range cur {
					cur[i] += o.h * fx[i]
				}
			}
			inner.scratch.Put(ibufp)
		}
	}
	return cur
}
