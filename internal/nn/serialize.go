package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// modelSpec is the serialised form of a regressor: its architecture plus a
// flat list of parameter tensors in Params() order.
type modelSpec struct {
	Kind   ModelKind   `json:"kind"`
	In     int         `json:"in"`
	Hidden int         `json:"hidden"`
	Out    int         `json:"out"`
	Params [][]float64 `json:"params"`
}

// SaveRegressor writes a regressor built by NewRegressor to w as JSON.
// The architecture hyper-parameters must match those used at construction.
func SaveRegressor(w io.Writer, model *Sequential, kind ModelKind, in, hidden, out int) error {
	spec := modelSpec{Kind: kind, In: in, Hidden: hidden, Out: out}
	for _, p := range model.Params() {
		spec.Params = append(spec.Params, append([]float64(nil), p.Value...))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(spec)
}

// LoadRegressor reads a model saved by SaveRegressor and reconstructs it.
func LoadRegressor(r io.Reader) (*Sequential, ModelKind, error) {
	var spec modelSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, "", fmt.Errorf("nn: decode model: %w", err)
	}
	model, err := NewRegressor(spec.Kind, spec.In, spec.Hidden, spec.Out, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, "", err
	}
	params := model.Params()
	if len(params) != len(spec.Params) {
		return nil, "", fmt.Errorf("nn: model has %d parameter tensors, file has %d", len(params), len(spec.Params))
	}
	for i, p := range params {
		if len(p.Value) != len(spec.Params[i]) {
			return nil, "", fmt.Errorf("nn: parameter tensor %d has %d values, file has %d", i, len(p.Value), len(spec.Params[i]))
		}
		copy(p.Value, spec.Params[i])
	}
	return model, spec.Kind, nil
}
