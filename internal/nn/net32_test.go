package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// compileAll builds one regressor per model family for the float32
// lowering tests.
func compileAll(t testing.TB) map[ModelKind]*Sequential {
	t.Helper()
	out := map[ModelKind]*Sequential{}
	for _, kind := range []ModelKind{ModelMLP, ModelResMLP, ModelODE} {
		net, err := NewRegressor(kind, 12, 16, 3, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		out[kind] = net
	}
	return out
}

func TestCompile32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for kind, net := range compileAll(t) {
		n32, err := Compile32(net)
		if err != nil {
			t.Fatalf("%s: compile: %v", kind, err)
		}
		if n32.InDim() != 12 || n32.OutDim() != 3 {
			t.Fatalf("%s: dims %d->%d, want 12->3", kind, n32.InDim(), n32.OutDim())
		}
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, 12)
			x32 := make([]float32, 12)
			for i := range x {
				x[i] = rng.NormFloat64()
				x32[i] = float32(x[i])
			}
			want := net.Infer(x)
			got := n32.Infer(x32)
			if len(got) != len(want) {
				t.Fatalf("%s: output length %d, want %d", kind, len(got), len(want))
			}
			for i := range want {
				if math.Abs(float64(got[i])-want[i]) > 1e-3*(1+math.Abs(want[i])) {
					t.Fatalf("%s trial %d out %d: float32 %g, float64 %g", kind, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCompile32Concurrent(t *testing.T) {
	net := compileAll(t)[ModelODE]
	n32, err := Compile32(net)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 12)
	for i := range x {
		x[i] = float32(i) * 0.1
	}
	want := n32.Infer(x)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got := n32.Infer(x)
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent Infer diverged at %d: %g vs %g", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// opaqueLayer is a Layer implementation Compile32 has no lowering for.
type opaqueLayer struct{ ReLU }

func TestCompile32RejectsUnknownLayer(t *testing.T) {
	net := NewSequential(NewDense(4, 4, rand.New(rand.NewSource(1))), &opaqueLayer{})
	if _, err := Compile32(net); err == nil {
		t.Fatal("want error for unsupported layer, got nil")
	}
	if _, err := Compile32(nil); err == nil {
		t.Fatal("want error for nil network, got nil")
	}
}

func BenchmarkInferFloat64(b *testing.B) {
	net := compileAll(b)[ModelMLP]
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Infer(x)
	}
}

func BenchmarkInferFloat32(b *testing.B) {
	net := compileAll(b)[ModelMLP]
	n32, err := Compile32(net)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, 12)
	for i := range x {
		x[i] = float32(i) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n32.Infer(x)
	}
}
