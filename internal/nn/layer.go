// Package nn is a compact, stdlib-only neural-network library built for the
// SoundBoost reproduction. It provides dense feed-forward regressors (plain,
// residual, and ODE-style weight-tied variants standing in for the paper's
// MobileNetV2 / ResNet101 / Neural-ODE audio models), an LSTM for the
// DNN control-dynamics baseline, SGD and Adam optimisers, and JSON model
// serialization.
//
// The implementation is per-sample (no batched matrix kernels): model sizes
// in this project are tens of inputs and tens of hidden units, where the
// simple loops are fast enough and trivially verifiable. Every layer's
// backward pass is validated against numerical gradients in the tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a network. Layers are stateful
// across a Forward/Backward pair: Backward must be called with the
// gradient of the loss w.r.t. the output of the immediately preceding
// Forward call.
type Layer interface {
	// Forward computes the layer output for one sample.
	Forward(x []float64) []float64
	// Infer computes the same output as Forward without touching the
	// layer's backprop caches. It is safe for concurrent use (the only
	// state read is the parameters, which inference never mutates) and is
	// the path the parallel RCA pipeline predicts through.
	Infer(x []float64) []float64
	// Backward receives dL/dOutput and returns dL/dInput, accumulating
	// parameter gradients internally.
	Backward(grad []float64) []float64
	// Params returns the layer's parameter tensors and their gradient
	// accumulators, in matching order. Stateless layers return nil.
	Params() []Param
	// OutputSize reports the layer's output width given its input width.
	OutputSize(inputSize int) int
}

// Param couples a parameter vector with its gradient accumulator.
type Param struct {
	// Value is the parameter storage (mutated by optimisers).
	Value []float64
	// Grad is the accumulated gradient (zeroed by optimisers after a step).
	Grad []float64
}

// Dense is a fully-connected layer: y = W x + b.
type Dense struct {
	In, Out int
	W       []float64 // row-major Out x In
	B       []float64
	dW      []float64
	dB      []float64

	lastIn []float64
}

// NewDense builds a dense layer with He-uniform initialisation.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", in, out))
	}
	d := &Dense{
		In:  in,
		Out: out,
		W:   make([]float64, in*out),
		B:   make([]float64, out),
		dW:  make([]float64, in*out),
		dB:  make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	d.lastIn = x
	return d.Infer(x)
}

// Infer implements Layer.
func (d *Dense) Infer(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, len(x)))
	}
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		out[o] = s
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	gradIn := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		d.dB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		dRow := d.dW[o*d.In : (o+1)*d.In]
		for i, xi := range d.lastIn {
			dRow[i] += g * xi
			gradIn[i] += g * row[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{Value: d.W, Grad: d.dW}, {Value: d.B, Grad: d.dB}}
}

// OutputSize implements Layer.
func (d *Dense) OutputSize(int) int { return d.Out }

// ReLU is the rectified linear activation.
type ReLU struct {
	lastIn []float64
}

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	r.lastIn = x
	return r.Infer(x)
}

// Infer implements Layer.
func (r *ReLU) Infer(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		if r.lastIn[i] > 0 {
			out[i] = g
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// OutputSize implements Layer.
func (r *ReLU) OutputSize(in int) int { return in }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut []float64
}

// Forward implements Layer.
func (t *Tanh) Forward(x []float64) []float64 {
	out := t.Infer(x)
	t.lastOut = out
	return out
}

// Infer implements Layer.
func (t *Tanh) Infer(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Tanh(v)
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(grad []float64) []float64 {
	out := make([]float64, len(grad))
	for i, g := range grad {
		y := t.lastOut[i]
		out[i] = g * (1 - y*y)
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []Param { return nil }

// OutputSize implements Layer.
func (t *Tanh) OutputSize(in int) int { return in }

// Residual wraps an inner stack with a skip connection: y = x + f(x).
// The inner stack must preserve width.
type Residual struct {
	Inner *Sequential
}

// Forward implements Layer.
func (r *Residual) Forward(x []float64) []float64 {
	return r.combine(x, r.Inner.Forward(x))
}

// Infer implements Layer.
func (r *Residual) Infer(x []float64) []float64 {
	return r.combine(x, r.Inner.Infer(x))
}

func (r *Residual) combine(x, fx []float64) []float64 {
	if len(fx) != len(x) {
		panic("nn: residual inner stack changed width")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + fx[i]
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(grad []float64) []float64 {
	gradInner := r.Inner.Backward(grad)
	out := make([]float64, len(grad))
	for i := range grad {
		out[i] = grad[i] + gradInner[i]
	}
	return out
}

// Params implements Layer.
func (r *Residual) Params() []Param { return r.Inner.Params() }

// OutputSize implements Layer.
func (r *Residual) OutputSize(in int) int { return in }

// ODEBlock applies a weight-tied residual map K times with step size h:
// x_{k+1} = x_k + h*f(x_k) — a forward-Euler neural ODE. Backward
// propagates through all K applications with shared parameters.
type ODEBlock struct {
	F     *Sequential
	Steps int
	H     float64

	states [][]float64
}

// Forward implements Layer.
func (o *ODEBlock) Forward(x []float64) []float64 {
	o.states = o.states[:0]
	cur := x
	for k := 0; k < o.Steps; k++ {
		o.states = append(o.states, cur)
		fx := o.F.Forward(cur)
		next := make([]float64, len(cur))
		for i := range cur {
			next[i] = cur[i] + o.H*fx[i]
		}
		cur = next
	}
	return cur
}

// Infer implements Layer.
func (o *ODEBlock) Infer(x []float64) []float64 {
	cur := x
	for k := 0; k < o.Steps; k++ {
		fx := o.F.Infer(cur)
		next := make([]float64, len(cur))
		for i := range cur {
			next[i] = cur[i] + o.H*fx[i]
		}
		cur = next
	}
	return cur
}

// Backward implements Layer.
func (o *ODEBlock) Backward(grad []float64) []float64 {
	// Because F's Forward caches only the last call, replay each step's
	// forward pass before its backward pass, walking backward in time.
	cur := grad
	for k := o.Steps - 1; k >= 0; k-- {
		o.F.Forward(o.states[k]) // re-establish layer caches for step k
		scaled := make([]float64, len(cur))
		for i, g := range cur {
			scaled[i] = g * o.H
		}
		gradF := o.F.Backward(scaled)
		next := make([]float64, len(cur))
		for i := range cur {
			next[i] = cur[i] + gradF[i]
		}
		cur = next
	}
	return cur
}

// Params implements Layer.
func (o *ODEBlock) Params() []Param { return o.F.Params() }

// OutputSize implements Layer.
func (o *ODEBlock) OutputSize(in int) int { return in }

// Verify interface compliance.
var (
	_ Layer = (*Dense)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*Tanh)(nil)
	_ Layer = (*Residual)(nil)
	_ Layer = (*ODEBlock)(nil)
)
