package nn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// numericalGradCheck compares a layer's analytic input gradient and
// parameter gradients against central differences.
func numericalGradCheck(t *testing.T, layer Layer, in int, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	x := make([]float64, in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	out := layer.Forward(x)
	// Loss = sum of c_j * y_j with random c, so dL/dy = c.
	c := make([]float64, len(out))
	for j := range c {
		c[j] = rng.NormFloat64()
	}
	loss := func() float64 {
		y := layer.Forward(x)
		s := 0.0
		for j, v := range y {
			s += c[j] * v
		}
		return s
	}

	// Analytic gradients.
	layer.Forward(x)
	for _, p := range layer.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	gradIn := layer.Backward(c)

	const h = 1e-5
	// Input gradient.
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		lp := loss()
		x[i] = orig - h
		lm := loss()
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradIn[i]) > tol*(1+math.Abs(num)) {
			t.Errorf("input grad [%d]: analytic %v, numeric %v", i, gradIn[i], num)
		}
	}
	// Parameter gradients.
	for pi, p := range layer.Params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + h
			lp := loss()
			p.Value[i] = orig - h
			lm := loss()
			p.Value[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad[i]) > tol*(1+math.Abs(num)) {
				t.Errorf("param %d grad [%d]: analytic %v, numeric %v", pi, i, p.Grad[i], num)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	numericalGradCheck(t, NewDense(5, 3, rng), 5, 1e-6)
}

func TestTanhGradients(t *testing.T) {
	numericalGradCheck(t, &Tanh{}, 4, 1e-6)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewSequential(NewDense(6, 8, rng), &Tanh{}, NewDense(8, 2, rng))
	numericalGradCheck(t, net, 6, 1e-5)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := &Residual{Inner: NewSequential(NewDense(4, 4, rng), &Tanh{}, NewDense(4, 4, rng))}
	numericalGradCheck(t, res, 4, 1e-5)
}

func TestODEBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := NewSequential(NewDense(3, 3, rng), &Tanh{}, NewDense(3, 3, rng))
	ode := &ODEBlock{F: f, Steps: 3, H: 0.3}
	numericalGradCheck(t, ode, 3, 1e-5)
}

// ReLU's kink makes central differences unreliable exactly at 0, so test
// it away from the kink with a fixed input.
func TestReLUGradients(t *testing.T) {
	r := &ReLU{}
	x := []float64{1.5, -2.0, 0.5, -0.1}
	r.Forward(x)
	grad := r.Backward([]float64{1, 1, 1, 1})
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if grad[i] != want[i] {
			t.Errorf("ReLU grad[%d] = %v, want %v", i, grad[i], want[i])
		}
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: []float64{2, 3}, B: []float64{1},
		dW: make([]float64, 2), dB: make([]float64, 1)}
	got := d.Forward([]float64{4, 5})
	if got[0] != 2*4+3*5+1 {
		t.Errorf("Forward = %v, want 24", got[0])
	}
}

func TestTrainLearnsLinearMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// y = [x0 + 2*x1, x0 - x1]
	n := 400
	xs := make([][]float64, n)
	ys := make([][]float64, n)
	for i := range xs {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		xs[i] = []float64{x0, x1}
		ys[i] = []float64{x0 + 2*x1, x0 - x1}
	}
	model, err := NewRegressor(ModelMLP, 2, 16, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(model, xs, ys, TrainConfig{Epochs: 120, BatchSize: 32, LR: 5e-3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := MSE(model, xs, ys); got > 0.01 {
		t.Errorf("final MSE = %v, want < 0.01", got)
	}
}

func TestTrainNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 600
	xs := make([][]float64, n)
	ys := make([][]float64, n)
	for i := range xs {
		x := rng.Float64()*4 - 2
		xs[i] = []float64{x}
		ys[i] = []float64{math.Sin(x)}
	}
	for _, kind := range []ModelKind{ModelMLP, ModelResMLP, ModelODE} {
		t.Run(string(kind), func(t *testing.T) {
			model, err := NewRegressor(kind, 1, 16, 1, rng)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Train(model, xs, ys, TrainConfig{Epochs: 150, BatchSize: 32, LR: 5e-3, Seed: 2}); err != nil {
				t.Fatal(err)
			}
			if got := MSE(model, xs, ys); got > 0.02 {
				t.Errorf("%s: sin fit MSE = %v, want < 0.02", kind, got)
			}
		})
	}
}

func TestTrainValidationHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := [][]float64{{2}, {4}, {6}, {8}}
	model, err := NewRegressor(ModelMLP, 1, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := Train(model, xs, ys, TrainConfig{Epochs: 5, ValX: xs, ValY: ys, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.TrainMSE) != 5 || len(hist.ValMSE) != 5 {
		t.Errorf("history lengths = %d/%d, want 5/5", len(hist.TrainMSE), len(hist.ValMSE))
	}
}

func TestTrainBadData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model, err := NewRegressor(ModelMLP, 1, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(model, nil, nil, TrainConfig{}); !errors.Is(err, ErrBadDataset) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Train(model, [][]float64{{1}}, [][]float64{}, TrainConfig{}); !errors.Is(err, ErrBadDataset) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := Train(model, [][]float64{{1}, {1, 2}}, [][]float64{{1}, {2}}, TrainConfig{}); !errors.Is(err, ErrBadDataset) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestNewRegressorUnknownKind(t *testing.T) {
	if _, err := NewRegressor("bogus", 1, 4, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewRegressor(ModelMLP, 0, 4, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero input accepted")
	}
}

func TestSGDDecreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDense(2, 1, rng)
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	x := []float64{1, -1}
	target := 3.0
	var first, last float64
	for i := 0; i < 200; i++ {
		y := d.Forward(x)
		diff := y[0] - target
		if i == 0 {
			first = diff * diff
		}
		last = diff * diff
		d.Backward([]float64{2 * diff})
		opt.Step(d.Params())
	}
	if last > first/100 {
		t.Errorf("SGD loss %v -> %v: insufficient decrease", first, last)
	}
}

func TestAdamZeroesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense(2, 2, rng)
	d.Forward([]float64{1, 2})
	d.Backward([]float64{1, 1})
	opt := &Adam{LR: 1e-3}
	opt.Step(d.Params())
	for _, p := range d.Params() {
		for i, g := range p.Grad {
			if g != 0 {
				t.Fatalf("grad[%d] = %v after step, want 0", i, g)
			}
		}
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLSTM(2, 3, 2, rng)
	seq := [][]float64{{0.5, -0.2}, {0.1, 0.8}, {-0.4, 0.3}}
	out := l.Forward(seq)
	c := make([]float64, len(out))
	for j := range c {
		c[j] = rng.NormFloat64()
	}
	loss := func() float64 {
		y := l.Forward(seq)
		s := 0.0
		for j, v := range y {
			s += c[j] * v
		}
		return s
	}
	l.Forward(seq)
	for _, p := range l.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	l.Backward(c)
	const h = 1e-5
	for pi, p := range l.Params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + h
			lp := loss()
			p.Value[i] = orig - h
			lm := loss()
			p.Value[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.Grad[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("lstm param %d grad[%d]: analytic %v, numeric %v", pi, i, p.Grad[i], num)
			}
		}
	}
}

func TestLSTMLearnsSequenceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 300
	seqs := make([][][]float64, n)
	targets := make([][]float64, n)
	for i := range seqs {
		T := 4
		seq := make([][]float64, T)
		sum := 0.0
		for t := 0; t < T; t++ {
			v := rng.Float64()*2 - 1
			seq[t] = []float64{v}
			sum += v
		}
		seqs[i] = seq
		targets[i] = []float64{sum / 4}
	}
	l := NewLSTM(1, 8, 1, rng)
	if _, err := TrainLSTM(l, seqs, targets, TrainConfig{Epochs: 60, BatchSize: 16, LR: 1e-2, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if got := LSTMMSE(l, seqs, targets); got > 0.01 {
		t.Errorf("sequence-mean MSE = %v, want < 0.01", got)
	}
}

func TestTrainLSTMBadData(t *testing.T) {
	l := NewLSTM(1, 2, 1, rand.New(rand.NewSource(13)))
	if _, err := TrainLSTM(l, nil, nil, TrainConfig{}); !errors.Is(err, ErrBadDataset) {
		t.Errorf("err = %v, want ErrBadDataset", err)
	}
}

func TestSaveLoadRegressorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, kind := range []ModelKind{ModelMLP, ModelResMLP, ModelODE} {
		t.Run(string(kind), func(t *testing.T) {
			model, err := NewRegressor(kind, 3, 8, 2, rng)
			if err != nil {
				t.Fatal(err)
			}
			x := []float64{0.3, -0.7, 1.2}
			want := model.Forward(x)
			var buf bytes.Buffer
			if err := SaveRegressor(&buf, model, kind, 3, 8, 2); err != nil {
				t.Fatal(err)
			}
			loaded, loadedKind, err := LoadRegressor(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loadedKind != kind {
				t.Errorf("loaded kind = %v, want %v", loadedKind, kind)
			}
			got := loaded.Forward(x)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Errorf("output[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestLoadRegressorCorrupt(t *testing.T) {
	if _, _, err := LoadRegressor(bytes.NewBufferString("{not json")); err == nil {
		t.Error("corrupt input accepted")
	}
}

func TestMSEEmpty(t *testing.T) {
	model, err := NewRegressor(ModelMLP, 1, 2, 1, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	if got := MSE(model, nil, nil); got != 0 {
		t.Errorf("MSE(empty) = %v", got)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model, err := NewRegressor(ModelMLP, 80, 64, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Forward(x)
	}
}

func BenchmarkMLPTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model, err := NewRegressor(ModelMLP, 80, 64, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	opt := &Adam{LR: 1e-3}
	params := model.Params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := model.Forward(x)
		grad := make([]float64, len(y))
		for j := range grad {
			grad[j] = y[j] * 0.01
		}
		model.Backward(grad)
		opt.Step(params)
	}
}
