// Package testfix is the shared integration-test fixture: one trained,
// calibrated analyzer over the reduced-rate simulation corpus (4 kHz
// audio, 125 Hz telemetry), built once per test binary and reused by
// every test that needs a live RCA pipeline. The server and fleet test
// suites both stand real services on top of it, so their equivalence
// assertions (streamed == batch, fleet == single node) run against the
// same model and the same flights.
package testfix

import (
	"sync"
	"testing"

	"soundboost/api"
	soundboost "soundboost/internal/core"
	"soundboost/internal/dataset"
	"soundboost/internal/mathx"
	"soundboost/internal/sim"
)

// GenConfig mirrors the reduced-rate configuration the core and stream
// tests use so fixtures stay fast while the sample arithmetic stays
// representative.
func GenConfig(mission sim.Mission, seed int64) dataset.GenConfig {
	cfg := dataset.DefaultGenConfig(mission, seed)
	cfg.World.PhysicsRate = 250
	cfg.World.ControlRate = 125
	cfg.World.IMU.SampleRate = 125
	cfg.Synth.SampleRate = 4000
	cfg.Synth.MechFreq = 900
	cfg.Synth.AeroFreq = 1500
	cfg.World.Controller.MaxVel = 3.0
	return cfg
}

// F is the built fixture: calibration flights plus the analyzer trained
// over the sibling training corpus.
type F struct {
	Calib    []*dataset.Flight
	Analyzer *soundboost.Analyzer
}

var (
	once sync.Once
	fix  *F
	err  error
)

// Get builds (once per binary) and returns the shared fixture.
func Get(t *testing.T) *F {
	t.Helper()
	once.Do(func() { fix, err = build() })
	if err != nil {
		t.Fatalf("testfix: %v", err)
	}
	return fix
}

func build() (*F, error) {
	f := &F{}
	missions := []sim.Mission{
		sim.HoverMission{Point: mathx.Vec3{Z: -10}, Seconds: 14},
		sim.NewWaypointMission("dash", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{X: 8, Z: -10}, Speed: 2, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 2, HoldSeconds: 2},
		}),
		sim.NewWaypointMission("column", mathx.Vec3{Z: -10}, []sim.Waypoint{
			{Pos: mathx.Vec3{Z: -14}, Speed: 1.5, HoldSeconds: 2},
			{Pos: mathx.Vec3{Z: -10}, Speed: 1.5, HoldSeconds: 2},
		}),
	}
	var train []*dataset.Flight
	seed := int64(700)
	for rep := 0; rep < 2; rep++ {
		for _, m := range missions {
			fl, err := dataset.Generate(GenConfig(m, seed))
			if err != nil {
				return nil, err
			}
			train = append(train, fl)
			seed += 7
		}
	}
	for _, m := range missions {
		fl, err := dataset.Generate(GenConfig(m, seed))
		if err != nil {
			return nil, err
		}
		f.Calib = append(f.Calib, fl)
		seed += 7
	}
	sig := soundboost.DefaultSignatureConfig(GenConfig(missions[0], 0).Synth)
	mcfg := soundboost.DefaultMappingConfig(sig)
	mcfg.Hidden = 48
	mcfg.Train.Epochs = 100
	model, _, err := soundboost.TrainModel(train, nil, mcfg)
	if err != nil {
		return nil, err
	}
	an, err := soundboost.NewAnalyzer(model, f.Calib)
	if err != nil {
		return nil, err
	}
	f.Analyzer = an
	return f, nil
}

// Frames chunks a flight into roughly nBatches time-ordered frame
// requests via the api package's client-side chunker — the same code
// path `soundboost push -mode session` uses.
func Frames(f *dataset.Flight, nBatches int) ([]api.FramesRequest, error) {
	duration := float64(f.Audio.Samples()) / f.Audio.SampleRate
	if n := len(f.Telemetry); n > 0 && f.Telemetry[n-1].Time > duration {
		duration = f.Telemetry[n-1].Time
	}
	return api.ChunkFlight(f, 0.05, duration/float64(nBatches))
}
