package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"soundboost/api"
	"soundboost/internal/chaos"
	"soundboost/internal/dataset"
	"soundboost/internal/server"
	"soundboost/internal/testfix"
)

// replica is one live `serve`-equivalent backend: a real server.Server
// behind a real listener, with its journal directory visible to the
// gateway (the shared-journal failover source).
type replica struct {
	name       string
	srv        *server.Server
	ts         *httptest.Server
	journalDir string
	killOnce   sync.Once
}

// kill drops the replica's listener without any drain — the SIGKILL
// shape: in-flight state is gone, only the fsynced journal survives.
func (r *replica) kill() { r.killOnce.Do(r.ts.Close) }

func (r *replica) host() string {
	u, err := url.Parse(r.ts.URL)
	if err != nil {
		panic(err)
	}
	return u.Host
}

func startReplica(t *testing.T, name string) *replica {
	t.Helper()
	dir := t.TempDir()
	s, err := server.New(testfix.Get(t).Analyzer, server.Config{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r := &replica{name: name, srv: s, journalDir: dir}
	r.ts = httptest.NewServer(s)
	t.Cleanup(func() {
		r.kill()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("replica %s shutdown: %v", name, err)
		}
	})
	return r
}

// startFleet stands up n replicas and a gateway over them. cfg's
// Replicas field is filled in; other fields are respected.
func startFleet(t *testing.T, n int, cfg Config) (*Gateway, []*replica) {
	t.Helper()
	reps := make([]*replica, n)
	for i := range reps {
		reps[i] = startReplica(t, fmt.Sprintf("r%d", i+1))
		cfg.Replicas = append(cfg.Replicas, Replica{
			Name:       reps[i].name,
			BaseURL:    reps[i].ts.URL,
			JournalDir: reps[i].journalDir,
		})
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	cfg.Logf = t.Logf
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
	})
	return g, reps
}

// hdo runs one request through an http.Handler (gateway or single-node
// server — both serve the same /v1 surface).
func hdo(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	if t != nil {
		t.Helper()
	}
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case io.Reader:
		rd = b
	case []byte:
		rd = bytes.NewReader(b)
	default:
		raw, err := json.Marshal(b)
		if err != nil {
			panic(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder, wantStatus int) T {
	t.Helper()
	var v T
	if w.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, wantStatus, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %T from %q: %v", v, w.Body.String(), err)
	}
	return v
}

// openVia opens a session through a handler and returns its base path.
func openVia(t *testing.T, h http.Handler, f *dataset.Flight) (base, id string) {
	t.Helper()
	created := decode[api.SessionResponse](t, hdo(t, h, "POST", "/v1/sessions", api.SessionRequest{
		Flight:       f.Name,
		SampleRateHz: f.Audio.SampleRate,
		Buffer:       1 << 15,
	}), http.StatusCreated)
	if created.State != api.SessionOpen {
		t.Fatalf("new session state = %q", created.State)
	}
	return "/v1/sessions/" + created.ID, created.ID
}

// reportBytes streams a whole flight through a handler's session
// surface and returns the raw report body — the byte-identity oracle.
func reportBytes(t *testing.T, h http.Handler, f *dataset.Flight, nBatches int) []byte {
	t.Helper()
	reqs, err := testfix.Frames(f, nBatches)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := openVia(t, h, f)
	for _, r := range reqs {
		fr := decode[api.FramesResponse](t, hdo(t, h, "POST", base+"/frames", r), http.StatusOK)
		if fr.Shed != 0 {
			t.Fatalf("bus shed %d messages; equivalence void", fr.Shed)
		}
	}
	w := hdo(t, h, "GET", base+"/report", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report: status %d: %s", w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

// TestFleetVerdictEquivalence is the fleet-level correctness gate: a
// 3-replica fleet behind the gateway must produce byte-identical
// verdicts to a single-node server, for both the streaming and the
// batch surface, with gateway ids (not backend ids) on every response.
func TestFleetVerdictEquivalence(t *testing.T) {
	fx := testfix.Get(t)
	single, err := server.New(fx.Analyzer, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		single.Shutdown(ctx)
	})
	g, _ := startFleet(t, 3, Config{})

	for i, flight := range fx.Calib[:2] {
		want := reportBytes(t, single, flight, 5)
		got := reportBytes(t, g, flight, 5)
		if !bytes.Equal(got, want) {
			t.Errorf("flight %d: fleet report differs from single-node:\nsingle: %s\nfleet:  %s", i, want, got)
		}
	}

	// Batch surface: same recording, byte-identical response report.
	var buf bytes.Buffer
	if err := fx.Calib[0].Save(&buf); err != nil {
		t.Fatal(err)
	}
	wantBatch := decode[api.FlightResponse](t, hdo(t, single, "POST", "/v1/flights", bytes.NewReader(buf.Bytes())), http.StatusOK)
	gotBatch := decode[api.FlightResponse](t, hdo(t, g, "POST", "/v1/flights", bytes.NewReader(buf.Bytes())), http.StatusOK)
	wantRaw, _ := json.Marshal(wantBatch.Report)
	gotRaw, _ := json.Marshal(gotBatch.Report)
	if !bytes.Equal(wantRaw, gotRaw) {
		t.Errorf("fleet batch report differs from single-node:\nsingle: %s\nfleet:  %s", wantRaw, gotRaw)
	}

	// The gateway speaks gateway ids everywhere.
	base, gwID := openVia(t, g, fx.Calib[0])
	if !strings.HasPrefix(gwID, "g-") {
		t.Errorf("gateway session id %q does not carry the gateway prefix", gwID)
	}
	st := decode[api.SessionStatus](t, hdo(t, g, "GET", base+"/status", nil), http.StatusOK)
	if st.ID != gwID {
		t.Errorf("status id = %q, want gateway id %q", st.ID, gwID)
	}
	exp := decode[api.SessionJournal](t, hdo(t, g, "GET", base+"/journal", nil), http.StatusOK)
	if exp.ID != gwID {
		t.Errorf("journal id = %q, want gateway id %q", exp.ID, gwID)
	}
	hdo(t, g, "POST", base+"/frames", api.FramesRequest{Close: true})

	h := decode[api.Health](t, hdo(t, g, "GET", "/v1/healthz", nil), http.StatusOK)
	if h.Status != "ok" || h.SessionCap == 0 {
		t.Errorf("fleet healthz = %+v, want ok with aggregated capacity", h)
	}
}

// TestFleetMidFlightKillFailover is the handoff gate (ISSUE satellite):
// SIGKILL the owning replica between chunk k and k+1, resend through the
// gateway, and require (a) the journal-backed replay onto a successor to
// preserve the acknowledged prefix — the resend of chunk k comes back
// Duplicate — and (b) the final report to be byte-identical to an
// unsharded run of the same flight.
func TestFleetMidFlightKillFailover(t *testing.T) {
	fx := testfix.Get(t)
	single, err := server.New(fx.Analyzer, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		single.Shutdown(ctx)
	})
	flight := fx.Calib[0]
	want := reportBytes(t, single, flight, 6)

	// A probe interval far beyond the test forces the lazy path: the
	// failover must be triggered by the failing frames request itself,
	// not by the health prober getting there first.
	g, reps := startFleet(t, 3, Config{ProbeInterval: time.Hour, Retries: 1})

	reqs, err := testfix.Frames(flight, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 4 {
		t.Fatalf("want >= 4 chunks, got %d", len(reqs))
	}
	base, gwID := openVia(t, g, flight)
	k := len(reqs) / 2
	for _, r := range reqs[:k] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}

	owner, ok := g.Placement(gwID)
	if !ok {
		t.Fatalf("no placement for %s", gwID)
	}
	faultPlane := chaos.NewFleet()
	for _, r := range reps {
		if r.name == owner {
			faultPlane.Kill(r.name, r.kill)
		}
	}
	if faultPlane.Counts()[chaos.KindReplicaKill] != 1 {
		t.Fatal("kill not recorded")
	}

	// The client's view: its last ack was chunk k, so it resends k —
	// transport failure triggers the journal-backed migration, and the
	// successor (holding the replayed prefix) answers Duplicate.
	resent := decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", reqs[k-1]), http.StatusOK)
	if !resent.Duplicate {
		t.Fatalf("resend after failover: %+v, want Duplicate (acknowledged prefix lost)", resent)
	}
	after, _ := g.Placement(gwID)
	if after == owner {
		t.Fatalf("session still placed on killed replica %s", owner)
	}
	for _, r := range reqs[k:] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}
	w := hdo(t, g, "GET", base+"/report", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report after failover: %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("post-failover report differs from unsharded run:\nsingle: %s\nfleet:  %s", want, w.Body.Bytes())
	}

	// The killed replica's state must stay dead to routing: a new
	// session never lands on it (its ring slots are gone after MarkDown).
	for i := 0; i < 5; i++ {
		b2, id2 := openVia(t, g, flight)
		if rep, _ := g.Placement(id2); rep == owner {
			t.Fatalf("new session %s placed on killed replica", id2)
		}
		hdo(t, g, "POST", b2+"/frames", api.FramesRequest{Close: true})
	}
}

// TestFleetDrainEvacuation covers the cooperative half of handoff: a
// replica that starts draining (its healthz flips) is marked down by the
// prober and its sessions are proactively migrated through the live
// journal-export endpoint; the client finishes the stream on the
// successor and the verdict matches the unsharded run.
func TestFleetDrainEvacuation(t *testing.T) {
	fx := testfix.Get(t)
	single, err := server.New(fx.Analyzer, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		single.Shutdown(ctx)
	})
	flight := fx.Calib[1]
	want := reportBytes(t, single, flight, 6)

	g, reps := startFleet(t, 2, Config{ProbeInterval: 20 * time.Millisecond, DownAfter: 1, UpAfter: 1, Retries: 1})
	reqs, err := testfix.Frames(flight, 6)
	if err != nil {
		t.Fatal(err)
	}
	base, gwID := openVia(t, g, flight)
	k := len(reqs) / 2
	for _, r := range reqs[:k] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}
	owner, _ := g.Placement(gwID)

	// Drain the owning replica (graceful: journal export keeps working).
	for _, r := range reps {
		if r.name == owner {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := r.srv.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The prober notices the drain and evacuates without any client
	// traffic driving it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rep, _ := g.Placement(gwID); rep != owner {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never evacuated from draining replica %s", owner)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The migrated session is OPEN on the successor even though the
	// drain force-closed it on the original — a close the client never
	// sent must not strand the upload.
	st := decode[api.SessionStatus](t, hdo(t, g, "GET", base+"/status", nil), http.StatusOK)
	if st.State != api.SessionOpen {
		t.Fatalf("evacuated session state = %q, want open", st.State)
	}
	if st.LastSeq != k {
		t.Fatalf("evacuated last_seq = %d, want %d", st.LastSeq, k)
	}
	for _, r := range reqs[k:] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}
	w := hdo(t, g, "GET", base+"/report", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report after evacuation: %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("post-evacuation report differs from unsharded run:\nsingle: %s\nfleet:  %s", want, w.Body.Bytes())
	}
}

// TestFleetPartitionFailover uses the chaos partition plane: the owning
// replica stays alive but unreachable, so the live export fails and the
// gateway falls back to reading the replica's journal directory.
func TestFleetPartitionFailover(t *testing.T) {
	fx := testfix.Get(t)
	flight := fx.Calib[0]
	faultPlane := chaos.NewFleet()
	g, reps := startFleet(t, 2, Config{
		ProbeInterval: time.Hour, // lazy path only
		Retries:       1,
		Transport:     faultPlane.Transport(nil),
	})
	reqs, err := testfix.Frames(flight, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, gwID := openVia(t, g, flight)
	for _, r := range reqs[:2] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}
	owner, _ := g.Placement(gwID)
	for _, r := range reps {
		if r.name == owner {
			faultPlane.Partition(r.host())
		}
	}
	if faultPlane.Counts()[chaos.KindPartition] != 1 {
		t.Fatal("partition not recorded")
	}
	// Next chunk: transport reset → failover via the journal directory
	// (the live export is behind the same partition).
	decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", reqs[2]), http.StatusOK)
	after, _ := g.Placement(gwID)
	if after == owner {
		t.Fatal("session not migrated off partitioned replica")
	}
	decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", reqs[3]), http.StatusOK)
	if w := hdo(t, g, "GET", base+"/report", nil); w.Code != http.StatusOK {
		t.Fatalf("report after partition failover: %d: %s", w.Code, w.Body.String())
	}
	// Heal so the gateway's drain (cleanup) can reach both replicas.
	for _, r := range reps {
		faultPlane.Heal(r.host())
	}
}
