package fleet

import (
	"testing"

	"soundboost/internal/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }
