package fleet

import "soundboost/internal/obs"

// Gateway metrics, gated by obs.Enable (serve with -debug-addr).
// fleet.routed.* splits forwarded requests by destination replica so an
// unbalanced ring shows up in the snapshot; fleet.failover.* counts
// session migrations — attempts, successes, and sessions lost because no
// journal (or no successor) was available.
var (
	sessionsRouted = obs.Default.Counter("fleet.sessions.opened")
	routedTo       = func(replica string) *obs.Counter {
		return obs.Default.Counter("fleet.routed." + replica)
	}
	failoverAttempts = obs.Default.Counter("fleet.failover.attempts")
	failoverSuccess  = obs.Default.Counter("fleet.failover.success")
	failoverFailed   = obs.Default.Counter("fleet.failover.failed")
	// failover.chunks counts journal chunks replayed into successor
	// replicas during migrations.
	failoverChunks = obs.Default.Counter("fleet.failover.chunks")
	replicasUp     = obs.Default.Gauge("fleet.replicas.up")
	// health.transitions counts mark-down + mark-up events (hysteresis
	// already applied).
	healthTransitions = obs.Default.Counter("fleet.health.transitions")
)
