package fleet

import "soundboost/internal/obs"

// Gateway metrics, gated by obs.Enable (serve with -debug-addr).
// fleet.routed.* splits forwarded requests by destination replica so an
// unbalanced ring shows up in the snapshot; fleet.failover.* counts
// session migrations — attempts, successes, and sessions lost because no
// journal (or no successor) was available.
var (
	sessionsRouted = obs.Default.Counter("fleet.sessions.opened")
	routedTo       = func(replica string) *obs.Counter {
		return obs.Default.Counter("fleet.routed." + replica)
	}
	failoverAttempts = obs.Default.Counter("fleet.failover.attempts")
	failoverSuccess  = obs.Default.Counter("fleet.failover.success")
	failoverFailed   = obs.Default.Counter("fleet.failover.failed")
	// failover.chunks counts journal chunks replayed into successor
	// replicas during migrations.
	failoverChunks = obs.Default.Counter("fleet.failover.chunks")
	replicasUp     = obs.Default.Gauge("fleet.replicas.up")
	// health.transitions counts mark-down + mark-up events (hysteresis
	// already applied).
	healthTransitions = obs.Default.Counter("fleet.health.transitions")

	// failover.from_follower counts migrations whose journal came from a
	// follower copy — the owner and its disk were both gone.
	failoverFromFollower = obs.Default.Counter("fleet.failover.from_follower")
	// replication.* track the gateway-driven journal replication stream:
	// appends are chunk copies acked by followers, errors are appends a
	// follower failed (the session keeps serving; lag shows the debt),
	// lag.<gwID> gauges each session's owner-to-slowest-follower chunk
	// gap, and behind gauges how many sessions currently have lag > 0.
	replicationAppends = obs.Default.Counter("fleet.replication.appends")
	replicationErrors  = obs.Default.Counter("fleet.replication.errors")
	replicationBehind  = obs.Default.Gauge("fleet.replication.behind")
	replicationLag     = func(gwID string) *obs.Gauge {
		return obs.Default.Gauge("fleet.replication.lag." + gwID)
	}
	// rebalance.* track rejoin draining: events are up-transitions that
	// started a rebalance pass, moved / skipped split its per-session
	// outcomes (skips: terminal sessions, export or migrate failures,
	// the per-event cap).
	rebalanceEvents  = obs.Default.Counter("fleet.rebalance.events")
	rebalanceMoved   = obs.Default.Counter("fleet.rebalance.moved")
	rebalanceSkipped = obs.Default.Counter("fleet.rebalance.skipped")
	// standby.takeovers counts warm-standby promotions; sessions.parked
	// gauges restored sessions awaiting a live replica (served as 503 +
	// Retry-After until revived).
	standbyTakeovers = obs.Default.Counter("fleet.standby.takeovers")
	sessionsParked   = obs.Default.Gauge("fleet.sessions.parked")
	// state.checkpoints counts routing-state file writes.
	stateCheckpoints = obs.Default.Counter("fleet.state.checkpoints")
)
