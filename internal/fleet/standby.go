package fleet

import (
	"context"
	"fmt"
	"os"
	"time"
)

// Standby is a warm spare for a gateway: it watches the primary's lease
// file and, once the lease goes stale, rebuilds a Gateway from the
// routing-state checkpoint and starts serving. The standby holds no
// live state of its own while waiting — everything it needs at takeover
// is in the checkpoint plus the replicas themselves.
//
// Lease expiry is measured on the standby's own clock (time since the
// lease file's content last changed), so primary and standby clocks
// need not agree. The TTL must comfortably exceed the primary's renew
// interval; a TTL chosen too close to it risks a false takeover with
// the primary still alive — a split brain this single-lease scheme does
// not arbitrate (see DESIGN.md "Replication & availability contract").
type Standby struct {
	cfg Config
}

// NewStandby validates a standby over the same Config the primary runs
// with. StatePath is required — it names both the checkpoint to restore
// from and the lease to watch.
func NewStandby(cfg Config) (*Standby, error) {
	cfg = cfg.withDefaults()
	if cfg.StatePath == "" {
		return nil, fmt.Errorf("fleet: standby requires a state path")
	}
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	return &Standby{cfg: cfg}, nil
}

// WaitLease blocks until the primary's lease expires (returns nil) or
// ctx is done (returns its error). A lease file that never appears
// counts as stale too: a standby started with no primary ever alive
// takes over after one TTL.
func (s *Standby) WaitLease(ctx context.Context) error {
	poll := s.cfg.LeaseInterval
	if poll > s.cfg.LeaseTTL/4 {
		poll = s.cfg.LeaseTTL / 4
	}
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	last, _ := os.ReadFile(leasePath(s.cfg.StatePath))
	lastChange := time.Now()
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		cur, _ := os.ReadFile(leasePath(s.cfg.StatePath))
		if string(cur) != string(last) {
			last, lastChange = cur, time.Now()
			continue
		}
		if time.Since(lastChange) > s.cfg.LeaseTTL {
			s.cfg.Logf("lease stale for %s: taking over", time.Since(lastChange).Round(time.Millisecond))
			return nil
		}
	}
}

// Takeover promotes the standby: it builds a Gateway from the same
// Config, which restores placements from the checkpoint, verifies each
// against its replica (failing over or parking the unverifiable), and
// starts renewing the lease as the new primary.
func (s *Standby) Takeover() (*Gateway, error) {
	standbyTakeovers.Inc()
	return New(s.cfg)
}
