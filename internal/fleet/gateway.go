package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"soundboost/api"
	"soundboost/internal/httpretry"
	"soundboost/internal/journal"
)

// Replica is one `soundboost serve` backend behind the gateway.
type Replica struct {
	// Name keys the replica on the hash ring and in metrics
	// (fleet.routed.<name>).
	Name string
	// BaseURL is the replica's HTTP root, e.g. "http://127.0.0.1:8801".
	BaseURL string
	// JournalDir, when set, is the replica's journal directory as seen
	// from the gateway process. It is the failover source of last resort:
	// when the replica is dead (no live export possible), the gateway
	// reads the session's write-ahead log straight from disk and replays
	// it onto a successor.
	JournalDir string
}

// Config tunes the gateway. The zero value of each field selects the
// default noted on it.
type Config struct {
	// Replicas is the fleet (at least one; names must be unique).
	Replicas []Replica
	// VNodes is the virtual-node count per replica (default 64).
	VNodes int
	// ProbeInterval is the health-check cadence (default 500ms).
	ProbeInterval time.Duration
	// DownAfter / UpAfter are the hysteresis thresholds: consecutive
	// failed probes before mark-down, consecutive good probes before
	// mark-up (default 2 each).
	DownAfter int
	UpAfter   int
	// Retries / RetryBase tune the forwarding client's retry budget
	// (defaults 3 / 100ms). 429s from a replica honor its Retry-After.
	Retries   int
	RetryBase time.Duration
	// Seed makes the forwarding client's backoff jitter reproducible.
	Seed int64
	// MaxBodyBytes caps request bodies (default 256 MiB).
	MaxBodyBytes int64
	// Transport overrides the forwarding/probe transport (chaos partition
	// injection in tests; nil = http.DefaultTransport).
	Transport http.RoundTripper
	// Replication is the total number of durable journal copies per
	// session, the serving owner included (default 2: owner plus one
	// follower; 1 disables replication). See replication.go.
	Replication int
	// StatePath, when set, enables gateway high availability: routing
	// state is checkpointed to this file on every placement change, a
	// lease file beside it is renewed every LeaseInterval, and a warm
	// standby (NewStandby) can take over from the checkpoint when the
	// lease goes stale. A restarted primary recovers from its own
	// checkpoint the same way.
	StatePath string
	// LeaseInterval is the primary's lease renew cadence (default 250ms);
	// LeaseTTL is how long a standby waits without a renewal before
	// taking over (default 8× LeaseInterval). TTL must comfortably exceed
	// the interval or a slow disk causes a false takeover.
	LeaseInterval time.Duration
	LeaseTTL      time.Duration
	// RebalanceLimit caps sessions drained back per rejoin event
	// (default 32); RebalancePace is the pause between moves (default
	// 10ms). Together they bound how hard a recovering replica is hit.
	RebalanceLimit int
	RebalancePace  time.Duration
	// Logf receives one line per routing event (default: silent).
	Logf func(format string, a ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = 250 * time.Millisecond
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 8 * c.LeaseInterval
	}
	if c.RebalanceLimit <= 0 {
		c.RebalanceLimit = 32
	}
	if c.RebalancePace <= 0 {
		c.RebalancePace = 10 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// route is the gateway's record of one placed session: which replica
// holds it and under what backend id. Its mutex serializes forwarding
// and failover per session, so a migration never interleaves with a
// chunk post for the same session.
type route struct {
	gwID string

	mu        sync.Mutex
	replica   string
	backendID string
	lastSeq   int // highest acknowledged client Seq seen through this gateway

	// req is the original SessionRequest — what failover replays a
	// zero-chunk session from, and what replication stamps on every
	// follower copy so a future owner can rebuild the engine.
	req api.SessionRequest
	// followers / repSeq / repAcked / prevLag drive journal replication
	// (see replication.go): the follower set, the owner-acknowledged
	// chunk count, each follower's acked high-water mark, and the last
	// published lag (for the behind gauge's deltas).
	followers []string
	repSeq    int
	repAcked  map[string]int
	prevLag   int
	// needReseed schedules a full follower reseed: set after a takeover
	// (marks died with the old process) or a follower gap 409.
	needReseed bool
	// parked marks a restored session no replica could serve at takeover:
	// requests answer 503 + Retry-After and retry the revive.
	parked bool
}

// Gateway re-serves the single-node /v1 surface over a fleet of
// replicas. Sessions are placed by consistent-hashing the gateway's own
// session id; batch flights round-robin over healthy replicas. When a
// replica dies or drains mid-session, the gateway migrates the session:
// it fetches the session's journal (live export, or the journal
// directory when the replica is gone), replays it through a successor's
// normal publish path — the engine is deterministic, so the successor
// converges to the byte-identical verdict — and re-pins the session's
// hash slot to the successor.
type Gateway struct {
	cfg      Config
	replicas map[string]Replica
	ring     *Ring
	health   *Health
	client   *httpretry.Client
	// repClient is the replication append path: a tighter retry budget
	// than client forwarding, because a follower append runs inside the
	// client's frames request and replication is best-effort anyway.
	repClient *httpretry.Client
	probeHC   *http.Client
	mux       *http.ServeMux

	mu       sync.Mutex
	routes   map[string]*route
	placed   map[string]RouteState // checkpoint mirror (see state.go)
	epoch    int
	nextID   int
	rrFlight int // round-robin cursor for batch flights
	draining bool

	// stateMu serializes checkpoint writers so state-file epochs land in
	// order. Lock order: stateMu before g.mu; neither is ever taken while
	// the other side holds a route lock it might wait on.
	stateMu sync.Mutex

	wg          sync.WaitGroup // in-flight evacuations, rebalances, lease loop
	probeStop   chan struct{}
	probeDone   chan struct{}
	probeCtx    context.Context // cancelled at Shutdown: no probe blocks in dial
	probeCancel context.CancelFunc
}

// New builds a gateway over the fleet, restores any routing-state
// checkpoint at Config.StatePath (warm-standby takeover and primary
// restart both land here), and starts its health probe and lease loops.
// Callers must Shutdown to stop it.
func New(cfg Config) (*Gateway, error) {
	g, err := newGateway(cfg)
	if err != nil {
		return nil, err
	}
	if g.cfg.StatePath != "" {
		if err := g.restore(); err != nil {
			// A checkpoint that cannot be parsed must not brick the
			// gateway: new sessions matter more than a corrupt file.
			g.logf("state restore failed, starting fresh: %v", err)
		}
		g.verifyRestored()
	}
	g.start()
	return g, nil
}

// newGateway constructs the gateway without starting any goroutine, so
// restore can verify placements before the first probe or lease tick.
func newGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	g := &Gateway{
		cfg:       cfg,
		replicas:  make(map[string]Replica, len(cfg.Replicas)),
		ring:      NewRing(cfg.VNodes),
		routes:    make(map[string]*route),
		placed:    make(map[string]RouteState),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	g.probeCtx, g.probeCancel = context.WithCancel(context.Background())
	names := make([]string, 0, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		if r.Name == "" || r.BaseURL == "" {
			return nil, fmt.Errorf("fleet: replica needs name and base URL: %+v", r)
		}
		if _, dup := g.replicas[r.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica name %q", r.Name)
		}
		g.replicas[r.Name] = r
		g.ring.Add(r.Name)
		names = append(names, r.Name)
	}
	g.health = NewHealth(names, cfg.DownAfter, cfg.UpAfter)
	replicasUp.Set(float64(len(names)))
	hc := &http.Client{Transport: cfg.Transport}
	g.client = httpretry.New(hc, cfg.Retries, cfg.RetryBase, cfg.Seed)
	g.client.Logf = cfg.Logf
	repRetries := 1
	if cfg.Retries < 1 {
		repRetries = cfg.Retries
	}
	g.repClient = httpretry.New(hc, repRetries, cfg.RetryBase, cfg.Seed+1)
	g.repClient.Logf = cfg.Logf
	// Probe timeout is tied to the cadence but floored at 1s: a loaded
	// replica answering healthz slowly is degraded, not dead, and a
	// too-tight timeout would flap it down spuriously.
	probeTimeout := 2 * cfg.ProbeInterval
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	g.probeHC = &http.Client{Transport: cfg.Transport, Timeout: probeTimeout}
	g.mux = g.routesMux()
	return g, nil
}

// start launches the gateway's background loops and, when HA is on,
// writes the first checkpoint + lease of this process life so a standby
// sees a live primary immediately.
func (g *Gateway) start() {
	go g.probeLoop()
	if g.cfg.StatePath != "" {
		g.checkpoint()
		g.wg.Add(1)
		go g.leaseLoop()
	}
}

func (g *Gateway) logf(format string, a ...any) { g.cfg.Logf(format, a...) }

func (g *Gateway) base(replica string) string { return g.replicas[replica].BaseURL }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) routesMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /"+api.Version+"/flights", g.handleFlights)
	mux.HandleFunc("POST /"+api.Version+"/sessions", g.handleSessionCreate)
	mux.HandleFunc("POST /"+api.Version+"/sessions/{id}/frames", g.handleFrames)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/report", g.handleReport)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/status", g.handleStatus)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/journal", g.handleJournal)
	mux.HandleFunc("GET /"+api.Version+"/healthz", g.handleHealthz)
	return mux
}

// --- health probing ---

// jitteredInterval spreads one probe period ±25% around d using the
// caller's seeded rng, so N gateways (or one gateway's restarts) don't
// probe every replica in lockstep.
func jitteredInterval(rng *rand.Rand, d time.Duration) time.Duration {
	span := int64(d) / 2
	if span <= 0 {
		return d
	}
	return d - d/4 + time.Duration(rng.Int63n(span+1))
}

// probeLoop polls every replica's /v1/healthz on the configured cadence
// (jittered ±25%, seeded by Config.Seed) and folds the outcomes through
// the hysteretic health tracker. A replica that transitions down is
// removed from the ring (new sessions stop landing on it) and its
// sessions evacuate; one that recovers is re-added and rebalance drains
// its ring-home sessions back (bounded — see rebalance).
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	t := time.NewTimer(jitteredInterval(rng, g.cfg.ProbeInterval))
	defer t.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-t.C:
		}
		for name, rep := range g.replicas {
			err := g.probe(rep)
			transitioned, up := g.health.Observe(name, err)
			if !transitioned {
				continue
			}
			healthTransitions.Inc()
			if up {
				g.ring.Add(name)
				g.logf("replica %s up", name)
				// Drain the rejoined replica's ring-home sessions back to
				// it, bounded by the rebalance limit and pace.
				g.wg.Add(1)
				go func(name string) {
					defer g.wg.Done()
					g.rebalance(name)
				}(name)
			} else {
				g.ring.Remove(name)
				g.logf("replica %s down: %v", name, err)
				// Evacuate proactively: sessions on a draining replica
				// migrate while it can still serve journal exports; a dead
				// replica's sessions migrate from its journal directory
				// (or follower copies) without waiting for client traffic
				// to trip over it.
				g.wg.Add(1)
				go func(name string) {
					defer g.wg.Done()
					g.evacuate(name)
				}(name)
			}
			replicasUp.Set(float64(g.health.UpCount()))
		}
		t.Reset(jitteredInterval(rng, g.cfg.ProbeInterval))
	}
}

// probe performs one health check. A replica that answers but reports
// "draining" is treated as failing: it must stop receiving new sessions,
// and its open sessions fail over on their next request. The request
// rides probeCtx, so Shutdown cancels a probe blocked in dial instead
// of leaving its goroutine behind.
func (g *Gateway) probe(rep Replica) error {
	req, err := http.NewRequestWithContext(g.probeCtx, "GET", rep.BaseURL+"/"+api.Version+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := g.probeHC.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("healthz decode: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q", h.Status)
	}
	return nil
}

// rebalance drains sessions whose ring-home is the rejoined replica
// back to it via the normal journal-replay migration — only ring-home
// sessions move (everything else stays put), at most RebalanceLimit of
// them per rejoin, paced by RebalancePace. Terminal sessions are left
// where they are: moving one recomputes a verdict already served.
func (g *Gateway) rebalance(name string) {
	rebalanceEvents.Inc()
	g.mu.Lock()
	rts := make([]*route, 0, len(g.routes))
	for _, rt := range g.routes {
		rts = append(rts, rt)
	}
	g.mu.Unlock()
	moved := 0
	for _, rt := range rts {
		if home, ok := g.ring.Home(rt.gwID); !ok || home != name {
			continue
		}
		if moved >= g.cfg.RebalanceLimit {
			rebalanceSkipped.Inc()
			continue
		}
		if !g.health.Up(name) {
			return // went down again mid-drain
		}
		rt.mu.Lock()
		if rt.replica == name || rt.parked {
			rt.mu.Unlock()
			continue
		}
		var st api.SessionStatus
		if err := g.client.Do("GET", g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+"/status", nil, &st); err == nil &&
			(st.State == api.SessionDone || st.State == api.SessionFailed) {
			rebalanceSkipped.Inc()
			rt.mu.Unlock()
			continue
		}
		err := func() error {
			exp, err := g.exportJournal(rt)
			if err != nil {
				return err
			}
			return g.migrateLocked(rt, name, exp)
		}()
		if err != nil {
			rebalanceSkipped.Inc()
			g.logf("session %s rebalance to %s failed: %v", rt.gwID, name, err)
		} else {
			// The session is back on its hash-assigned home: the pin that
			// recorded its exile is no longer needed.
			g.ring.Unpin(rt.gwID)
			rebalanceMoved.Inc()
			moved++
			g.logf("session %s rebalanced home to %s", rt.gwID, name)
		}
		rt.mu.Unlock()
		select {
		case <-g.probeStop:
			return
		case <-time.After(g.cfg.RebalancePace):
		}
	}
}

// --- placement and failover ---

// failoverWorthy reports whether a forwarding error means the replica
// (not the request) is the problem: a transport failure, a replica
// mid-drain, or a replica that restarted without the session. API-level
// answers (409 conflict, 422, 429, a failed session's 500) are the
// service speaking and must surface to the client unchanged.
func failoverWorthy(err error) bool {
	var se *httpretry.StatusError
	if !errors.As(err, &se) {
		return true // transport-level: the replica never answered
	}
	switch se.Code {
	case api.CodeShuttingDown, api.CodeNotFound:
		// Draining replica, or a replica that came back empty-handed
		// after a crash (the journal still has the session).
		return true
	}
	return false
}

// pickSuccessor returns the first healthy replica other than exclude in
// the session's ring preference order.
func (g *Gateway) pickSuccessor(gwID, exclude string) (string, bool) {
	for _, name := range g.ring.Successors(gwID, len(g.replicas)) {
		if name != exclude && g.health.Up(name) {
			return name, true
		}
	}
	// The ring may have already dropped every healthy candidate's vnodes
	// (e.g. mid-transition); fall back to any healthy member.
	for name := range g.replicas {
		if name != exclude && g.health.Up(name) {
			return name, true
		}
	}
	return "", false
}

// exportJournal fetches the session's durable journal for migration,
// in degrading order of freshness: from the replica itself while it can
// still answer (the drain case); straight from its journal directory
// when the process is gone (the SIGKILL case); and from the freshest
// follower copy when the disk is gone too (the journal-dir-wipe case).
// A journal dir that answers "empty journal" means the session never
// got durable state — creation crashed before the first meta landed —
// so the original request replays as a clean zero-chunk session.
func (g *Gateway) exportJournal(rt *route) (api.SessionJournal, error) {
	exp, liveErr := g.liveExport(rt)
	if liveErr == nil {
		return exp, nil
	}
	if dir := g.replicas[rt.replica].JournalDir; dir != "" {
		exp, dirErr := g.dirExport(rt, dir)
		if dirErr == nil {
			return exp, nil
		}
		if errors.Is(dirErr, journal.ErrEmptyJournal) {
			g.logf("session %s: empty journal on %s, replaying as new", rt.gwID, rt.replica)
			return api.SessionJournal{
				SchemaVersion: api.Version,
				ID:            rt.backendID,
				Request:       rt.req,
				State:         api.SessionOpen,
			}, nil
		}
		g.logf("session %s: journal dir read failed (%v), trying follower copies", rt.gwID, dirErr)
	}
	exp, folErr := g.followerExport(rt)
	if folErr == nil {
		failoverFromFollower.Inc()
		g.logf("session %s: journal served from follower copy (%d chunk(s))", rt.gwID, len(exp.Chunks))
		return exp, nil
	}
	return exp, fmt.Errorf("fleet: no journal source for %s: live: %v; followers: %v", rt.gwID, liveErr, folErr)
}

// dirExport reads the session's journal straight off the replica's
// journal directory. Empty journals surface as journal.ErrEmptyJournal
// (note: a wiped-and-recreated dir reads as plain not-found instead —
// no meta AND no chunk log — which correctly falls through to the
// follower copies).
func (g *Gateway) dirExport(rt *route, dir string) (api.SessionJournal, error) {
	var exp api.SessionJournal
	st, err := journal.Open(dir)
	if err != nil {
		return exp, fmt.Errorf("fleet: journal dir for %s: %w", rt.replica, err)
	}
	rec, err := st.LoadSession(rt.backendID)
	if err != nil {
		return exp, fmt.Errorf("fleet: journal read for %s/%s: %w", rt.replica, rt.backendID, err)
	}
	if rec.Corrupt != "" {
		return exp, fmt.Errorf("fleet: journal for %s/%s unreadable: %s", rt.replica, rt.backendID, rec.Corrupt)
	}
	return api.SessionJournal{
		SchemaVersion: api.Version,
		ID:            rt.backendID,
		Request:       rec.Meta.Req,
		State:         rec.Meta.State,
		LastSeq:       rec.Meta.LastSeq,
		FailCause:     rec.Meta.FailCause,
		Chunks:        rec.Chunks,
	}, nil
}

// failoverLocked migrates rt's session to a successor replica: mark the
// current one down, export the journal (live → disk → follower copy),
// and replay onto the first healthy successor. Caller holds rt.mu.
func (g *Gateway) failoverLocked(rt *route) error {
	failoverAttempts.Inc()
	from := rt.replica
	// React faster than the probe cadence: the forwarding failure that
	// got us here is evidence enough to stop placing new sessions there.
	if g.health.MarkDown(from) {
		healthTransitions.Inc()
		g.ring.Remove(from)
		replicasUp.Set(float64(g.health.UpCount()))
		g.logf("replica %s down (forwarding failure)", from)
	}
	exp, err := g.exportJournal(rt)
	if err != nil {
		failoverFailed.Inc()
		return err
	}
	target, ok := g.pickSuccessor(rt.gwID, from)
	if !ok {
		failoverFailed.Inc()
		return fmt.Errorf("fleet: no healthy successor for session %s", rt.gwID)
	}
	if err := g.migrateLocked(rt, target, exp); err != nil {
		failoverFailed.Inc()
		return err
	}
	failoverSuccess.Inc()
	g.logf("session %s failed over %s -> %s (%d chunk(s) replayed, last_seq %d)",
		rt.gwID, from, target, len(exp.Chunks), exp.LastSeq)
	return nil
}

// migrateLocked re-homes rt's session onto target from an exported
// journal: open a fresh backend session with the original request,
// replay every acknowledged chunk through target's normal publish path
// (the engine is deterministic, so the verdict is byte-identical),
// re-pin the hash slot, re-seed the follower set, and checkpoint the
// new placement. Failover and rejoin rebalancing share it. Caller
// holds rt.mu.
func (g *Gateway) migrateLocked(rt *route, target string, exp api.SessionJournal) error {
	from := rt.replica
	body, err := json.Marshal(exp.Request)
	if err != nil {
		return err
	}
	var created api.SessionResponse
	if err := g.client.Do("POST", g.base(target)+"/"+api.Version+"/sessions", body, &created); err != nil {
		return fmt.Errorf("fleet: successor %s rejected session: %w", target, err)
	}
	for _, c := range exp.Chunks {
		raw, err := json.Marshal(c)
		if err != nil {
			return err
		}
		var fr api.FramesResponse
		if err := g.client.Do("POST", g.base(target)+"/"+api.Version+"/sessions/"+created.ID+"/frames", raw, &fr); err != nil {
			return fmt.Errorf("fleet: replay chunk %d onto %s: %w", c.Seq, target, err)
		}
		failoverChunks.Inc()
	}
	// The successor's stream state is now exactly what the CLIENT asked
	// for: a journaled Close chunk re-closed it during replay; absent
	// one, it stays open even if the exported state was terminal — a
	// close the client never requested (drain, idle timeout) must not
	// lock the migrated session against a client mid-upload. The client
	// finishes the stream, or the successor's janitor re-times it out.
	g.ring.Pin(rt.gwID, target)
	rt.replica, rt.backendID = target, created.ID
	if rt.req.Flight == "" && rt.req.SampleRateHz == 0 {
		rt.req = exp.Request
	}
	// The old follower set may now include the new owner (or the dead
	// replica): recompute it and bring every copy to the export's
	// high-water mark. The export is the authoritative chunk list here —
	// fresher than whatever the copies held, never staler than from.
	rt.followers = g.pickFollowersKeeping(rt, target, from)
	rt.repAcked = make(map[string]int, len(rt.followers))
	g.seedFollowersLocked(rt, exp)
	g.recordPlacement(rt)
	return nil
}

// pickFollowersKeeping recomputes rt's follower set for a new owner:
// ring successors first, but keeping existing followers that still
// qualify (their copies are already warm) and never the owner or the
// replica the session just left involuntarily.
func (g *Gateway) pickFollowersKeeping(rt *route, owner, exclude string) []string {
	n := g.cfg.Replication - 1
	if n <= 0 {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, f := range rt.followers {
		if len(out) < n && f != owner && f != exclude && !seen[f] && g.health.Up(f) {
			out = append(out, f)
			seen[f] = true
		}
	}
	for _, f := range g.ring.Successors(rt.gwID, len(g.replicas)) {
		if len(out) >= n {
			break
		}
		if f != owner && f != exclude && !seen[f] && g.health.Up(f) {
			out = append(out, f)
			seen[f] = true
		}
	}
	return out
}

// evacuate migrates every session currently routed to a downed replica.
// Run by the probe loop on a mark-down transition, so sessions move off
// a draining replica while its journal-export endpoint still answers,
// and off a dead one without waiting for client traffic to trip over it.
func (g *Gateway) evacuate(name string) {
	g.mu.Lock()
	rts := make([]*route, 0, len(g.routes))
	for _, rt := range g.routes {
		rts = append(rts, rt)
	}
	g.mu.Unlock()
	for _, rt := range rts {
		rt.mu.Lock()
		// Re-check under the route lock: a frames request may have
		// already migrated it.
		if rt.replica == name {
			if err := g.failoverLocked(rt); err != nil {
				g.logf("session %s evacuation from %s failed: %v", rt.gwID, name, err)
			}
		}
		rt.mu.Unlock()
	}
}

// Placement reports which replica currently holds a gateway session —
// observability for operators and the fleet tests.
func (g *Gateway) Placement(gwID string) (replica string, ok bool) {
	rt, ok := g.lookupRoute(gwID)
	if !ok {
		return "", false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.replica, true
}

// forward sends one request for rt's session, failing over (once) when
// the replica itself is the problem. Caller holds rt.mu.
func (g *Gateway) forwardLocked(rt *route, method, suffix string, body []byte, out any) error {
	err := g.client.Do(method, g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+suffix, body, out)
	if err == nil || !failoverWorthy(err) {
		return err
	}
	if ferr := g.failoverLocked(rt); ferr != nil {
		return fmt.Errorf("%w (failover: %v)", err, ferr)
	}
	return g.client.Do(method, g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+suffix, body, out)
}

// --- handlers ---

func (g *Gateway) lookupRoute(id string) (*route, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rt, ok := g.routes[id]
	return rt, ok
}

// healthyOrder returns the healthy replicas starting at the round-robin
// cursor — the batch-flight placement order.
func (g *Gateway) healthyOrder() []string {
	members := g.ring.Members()
	if len(members) == 0 {
		return nil
	}
	g.mu.Lock()
	start := g.rrFlight
	g.rrFlight++
	g.mu.Unlock()
	out := make([]string, 0, len(members))
	for i := 0; i < len(members); i++ {
		name := members[(start+i)%len(members)]
		if g.health.Up(name) {
			out = append(out, name)
		}
	}
	return out
}

// handleFlights forwards a batch upload to a healthy replica,
// round-robin, advancing to the next on transport failure.
func (g *Gateway) handleFlights(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		g.writeError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: shutting down")
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	var lastErr error
	for _, name := range g.healthyOrder() {
		var out api.FlightResponse
		err := g.client.Do("POST", g.base(name)+"/"+api.Version+"/flights", buf.Bytes(), &out)
		if err == nil {
			routedTo(name).Inc()
			g.writeJSON(w, http.StatusOK, out)
			return
		}
		lastErr = err
		if !failoverWorthy(err) {
			g.writeUpstreamError(w, err)
			return
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replicas")
	}
	g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, fmt.Sprintf("gateway: %v", lastErr))
}

// handleSessionCreate places a session: the gateway allocates its own id
// (the hash key), consistent-hashes it to a replica, and opens the
// backend session there. The client only ever sees the gateway id.
func (g *Gateway) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req api.SessionRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.writeError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: shutting down")
		return
	}
	g.nextID++
	gwID := fmt.Sprintf("g-%08d", g.nextID)
	g.mu.Unlock()

	owner, ok := g.ring.Lookup(gwID)
	if !ok {
		g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, "gateway: no healthy replicas")
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	// Preference order: ring owner first, then its successors. A replica
	// that refuses with an API-level answer (429 capacity, 422) speaks
	// for the fleet — surface it; only replica-level failures advance.
	tried := map[string]bool{}
	candidates := append([]string{owner}, g.ring.Successors(gwID, len(g.replicas))...)
	var lastErr error
	for _, name := range candidates {
		if tried[name] || !g.health.Up(name) {
			continue
		}
		tried[name] = true
		var created api.SessionResponse
		err := g.client.Do("POST", g.base(name)+"/"+api.Version+"/sessions", body, &created)
		if err == nil {
			rt := &route{
				gwID: gwID, replica: name, backendID: created.ID,
				req:       req,
				followers: g.pickFollowers(gwID, name),
				repAcked:  make(map[string]int),
			}
			g.mu.Lock()
			g.routes[gwID] = rt
			g.notePlacementLocked(rt)
			g.mu.Unlock()
			g.checkpoint()
			if name != owner {
				// Hash said owner, health said otherwise: pin so every
				// later lookup agrees with where the session actually is.
				g.ring.Pin(gwID, name)
			}
			sessionsRouted.Inc()
			routedTo(name).Inc()
			g.logf("session %s -> %s/%s (flight %q)", gwID, name, created.ID, req.Flight)
			g.writeJSON(w, http.StatusCreated, api.SessionResponse{
				SchemaVersion: created.SchemaVersion,
				ID:            gwID,
				State:         created.State,
			})
			return
		}
		lastErr = err
		if !failoverWorthy(err) {
			g.writeUpstreamError(w, err)
			return
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replicas")
	}
	g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, fmt.Sprintf("gateway: %v", lastErr))
}

// handleFrames forwards a chunk to the session's replica, migrating the
// session first if that replica is gone. The chunk itself rides the
// sequence-number contract: after a mid-flight failover the replay
// restored every acknowledged chunk, so the client's in-flight resend is
// either the next expected Seq (accepted) or an already-replayed one
// (acknowledged as duplicate).
func (g *Gateway) handleFrames(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	var req api.FramesRequest
	if err := api.DecodeStrict(bytes.NewReader(buf.Bytes()), &req); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !g.ensureLiveLocked(rt, w) {
		return
	}
	var out api.FramesResponse
	if err := g.forwardLocked(rt, "POST", "/frames", buf.Bytes(), &out); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	if req.Seq > rt.lastSeq {
		rt.lastSeq = req.Seq
	}
	// Stream the accepted chunk to the session's followers before the
	// client's ack: once the 200 lands, the chunk survives losing the
	// owner and its disk (best-effort per follower — see replication.go).
	g.replicateLocked(rt, req, out.Duplicate)
	g.writeJSON(w, http.StatusOK, out)
}

// ensureLiveLocked clears a parked route before serving it: each
// request retries the revive, and failure answers 503 + Retry-After —
// degraded, not lost. Caller holds rt.mu; a false return means the
// response has been written.
func (g *Gateway) ensureLiveLocked(rt *route, w http.ResponseWriter) bool {
	if !rt.parked {
		return true
	}
	if err := g.reviveLocked(rt); err != nil {
		w.Header().Set("Retry-After", "1")
		g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream,
			fmt.Sprintf("gateway: session %s parked (no replica can serve it yet): %v", rt.gwID, err))
		return false
	}
	return true
}

// handleReport forwards a report read, failing the session over first if
// its replica died before serving the verdict — the journal replay
// reproduces it on the successor.
func (g *Gateway) handleReport(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !g.ensureLiveLocked(rt, w) {
		return
	}
	var out json.RawMessage
	if err := g.forwardLocked(rt, "GET", "/report", nil, &out); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	g.writeJSON(w, http.StatusOK, out)
}

// handleStatus forwards a status read and rewrites the backend session
// id to the gateway's — clients address sessions only by gateway id.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !g.ensureLiveLocked(rt, w) {
		return
	}
	var st api.SessionStatus
	if err := g.forwardLocked(rt, "GET", "/status", nil, &st); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	st.ID = rt.gwID
	g.writeJSON(w, http.StatusOK, st)
}

// handleJournal forwards a journal export, rewriting the id like status.
func (g *Gateway) handleJournal(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !g.ensureLiveLocked(rt, w) {
		return
	}
	var exp api.SessionJournal
	if err := g.forwardLocked(rt, "GET", "/journal", nil, &exp); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	exp.ID = rt.gwID
	g.writeJSON(w, http.StatusOK, exp)
}

// handleHealthz reports fleet-level liveness: "ok" while every replica
// is up, "degraded" when some are down, "draining" during shutdown.
// Occupancy aggregates the up replicas' own healthz answers.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	draining := g.draining
	sessions := len(g.routes)
	g.mu.Unlock()
	status := "ok"
	if g.health.UpCount() < len(g.replicas) {
		status = "degraded"
	}
	if draining {
		status = "draining"
	}
	agg := api.Health{
		SchemaVersion:  api.Version,
		Status:         status,
		ActiveSessions: sessions,
	}
	for name, rep := range g.replicas {
		if !g.health.Up(name) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), "GET", rep.BaseURL+"/"+api.Version+"/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := g.probeHC.Do(req)
		if err != nil {
			continue
		}
		var h api.Health
		if json.NewDecoder(resp.Body).Decode(&h) == nil {
			agg.SessionCap += h.SessionCap
			agg.JobsInFlight += h.JobsInFlight
			agg.JobCap += h.JobCap
		}
		resp.Body.Close()
	}
	g.writeJSON(w, http.StatusOK, agg)
}

// --- lifecycle ---

// Shutdown drains the gateway: new sessions and batch flights are
// refused (503 shutting_down), the probe loop stops, and existing
// sessions keep flowing — frames, failover, and report reads continue —
// until every tracked session reaches a terminal state or ctx expires.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	already := g.draining
	g.draining = true
	open := make([]*route, 0, len(g.routes))
	for _, rt := range g.routes {
		open = append(open, rt)
	}
	g.mu.Unlock()
	if !already {
		g.probeCancel() // unblock any probe stuck in dial
		close(g.probeStop)
		<-g.probeDone
		g.wg.Wait() // let in-flight evacuations, rebalances, lease renewals settle
		g.checkpoint()
		g.logf("drain: %d tracked session(s)", len(open))
	}
	for {
		pending := 0
		for _, rt := range open {
			rt.mu.Lock()
			if rt.parked {
				// No replica can serve it; nothing a drain can wait on.
				rt.mu.Unlock()
				continue
			}
			var st api.SessionStatus
			err := g.client.Do("GET", g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+"/status", nil, &st)
			rt.mu.Unlock()
			if err == nil && st.State != api.SessionDone && st.State != api.SessionFailed {
				pending++
			}
		}
		if pending == 0 {
			g.logf("drain: complete")
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// --- response plumbing ---

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, code, msg string) {
	g.writeJSON(w, status, api.Error{Code: code, Error: msg})
}

// writeUpstreamError relays a forwarding failure: an API-level answer
// from the replica passes through with its original status and code (the
// gateway is transparent to the service's own error contract); a
// transport-level failure becomes 503 upstream_unavailable.
func (g *Gateway) writeUpstreamError(w http.ResponseWriter, err error) {
	var se *httpretry.StatusError
	if errors.As(err, &se) {
		g.writeError(w, se.Status, se.Code, se.Message)
		return
	}
	g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, fmt.Sprintf("gateway: %v", err))
}
