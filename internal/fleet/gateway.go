package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"soundboost/api"
	"soundboost/internal/httpretry"
	"soundboost/internal/journal"
)

// Replica is one `soundboost serve` backend behind the gateway.
type Replica struct {
	// Name keys the replica on the hash ring and in metrics
	// (fleet.routed.<name>).
	Name string
	// BaseURL is the replica's HTTP root, e.g. "http://127.0.0.1:8801".
	BaseURL string
	// JournalDir, when set, is the replica's journal directory as seen
	// from the gateway process. It is the failover source of last resort:
	// when the replica is dead (no live export possible), the gateway
	// reads the session's write-ahead log straight from disk and replays
	// it onto a successor.
	JournalDir string
}

// Config tunes the gateway. The zero value of each field selects the
// default noted on it.
type Config struct {
	// Replicas is the fleet (at least one; names must be unique).
	Replicas []Replica
	// VNodes is the virtual-node count per replica (default 64).
	VNodes int
	// ProbeInterval is the health-check cadence (default 500ms).
	ProbeInterval time.Duration
	// DownAfter / UpAfter are the hysteresis thresholds: consecutive
	// failed probes before mark-down, consecutive good probes before
	// mark-up (default 2 each).
	DownAfter int
	UpAfter   int
	// Retries / RetryBase tune the forwarding client's retry budget
	// (defaults 3 / 100ms). 429s from a replica honor its Retry-After.
	Retries   int
	RetryBase time.Duration
	// Seed makes the forwarding client's backoff jitter reproducible.
	Seed int64
	// MaxBodyBytes caps request bodies (default 256 MiB).
	MaxBodyBytes int64
	// Transport overrides the forwarding/probe transport (chaos partition
	// injection in tests; nil = http.DefaultTransport).
	Transport http.RoundTripper
	// Logf receives one line per routing event (default: silent).
	Logf func(format string, a ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// route is the gateway's record of one placed session: which replica
// holds it and under what backend id. Its mutex serializes forwarding
// and failover per session, so a migration never interleaves with a
// chunk post for the same session.
type route struct {
	gwID string

	mu        sync.Mutex
	replica   string
	backendID string
	lastSeq   int // highest acknowledged Seq seen through this gateway
}

// Gateway re-serves the single-node /v1 surface over a fleet of
// replicas. Sessions are placed by consistent-hashing the gateway's own
// session id; batch flights round-robin over healthy replicas. When a
// replica dies or drains mid-session, the gateway migrates the session:
// it fetches the session's journal (live export, or the journal
// directory when the replica is gone), replays it through a successor's
// normal publish path — the engine is deterministic, so the successor
// converges to the byte-identical verdict — and re-pins the session's
// hash slot to the successor.
type Gateway struct {
	cfg      Config
	replicas map[string]Replica
	ring     *Ring
	health   *Health
	client   *httpretry.Client
	probeHC  *http.Client
	mux      *http.ServeMux

	mu       sync.Mutex
	routes   map[string]*route
	nextID   int
	rrFlight int // round-robin cursor for batch flights
	draining bool

	wg        sync.WaitGroup // in-flight evacuations
	probeStop chan struct{}
	probeDone chan struct{}
}

// New builds a gateway over the fleet and starts its health probe loop.
// Callers must Shutdown to stop it.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: no replicas configured")
	}
	g := &Gateway{
		cfg:       cfg,
		replicas:  make(map[string]Replica, len(cfg.Replicas)),
		ring:      NewRing(cfg.VNodes),
		routes:    make(map[string]*route),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	names := make([]string, 0, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		if r.Name == "" || r.BaseURL == "" {
			return nil, fmt.Errorf("fleet: replica needs name and base URL: %+v", r)
		}
		if _, dup := g.replicas[r.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica name %q", r.Name)
		}
		g.replicas[r.Name] = r
		g.ring.Add(r.Name)
		names = append(names, r.Name)
	}
	g.health = NewHealth(names, cfg.DownAfter, cfg.UpAfter)
	replicasUp.Set(float64(len(names)))
	hc := &http.Client{Transport: cfg.Transport}
	g.client = httpretry.New(hc, cfg.Retries, cfg.RetryBase, cfg.Seed)
	g.client.Logf = cfg.Logf
	// Probe timeout is tied to the cadence but floored at 1s: a loaded
	// replica answering healthz slowly is degraded, not dead, and a
	// too-tight timeout would flap it down spuriously.
	probeTimeout := 2 * cfg.ProbeInterval
	if probeTimeout < time.Second {
		probeTimeout = time.Second
	}
	g.probeHC = &http.Client{Transport: cfg.Transport, Timeout: probeTimeout}
	g.mux = g.routesMux()
	go g.probeLoop()
	return g, nil
}

func (g *Gateway) logf(format string, a ...any) { g.cfg.Logf(format, a...) }

func (g *Gateway) base(replica string) string { return g.replicas[replica].BaseURL }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) routesMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /"+api.Version+"/flights", g.handleFlights)
	mux.HandleFunc("POST /"+api.Version+"/sessions", g.handleSessionCreate)
	mux.HandleFunc("POST /"+api.Version+"/sessions/{id}/frames", g.handleFrames)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/report", g.handleReport)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/status", g.handleStatus)
	mux.HandleFunc("GET /"+api.Version+"/sessions/{id}/journal", g.handleJournal)
	mux.HandleFunc("GET /"+api.Version+"/healthz", g.handleHealthz)
	return mux
}

// --- health probing ---

// probeLoop polls every replica's /v1/healthz on the configured cadence
// and folds the outcomes through the hysteretic health tracker. A
// replica that transitions down is removed from the ring (new sessions
// stop landing on it); one that recovers is re-added — but sessions
// already migrated away stay with their successor via their pins.
func (g *Gateway) probeLoop() {
	defer close(g.probeDone)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-t.C:
		}
		for name, rep := range g.replicas {
			err := g.probe(rep)
			transitioned, up := g.health.Observe(name, err)
			if !transitioned {
				continue
			}
			healthTransitions.Inc()
			if up {
				g.ring.Add(name)
				g.logf("replica %s up", name)
			} else {
				g.ring.Remove(name)
				g.logf("replica %s down: %v", name, err)
				// Evacuate proactively: sessions on a draining replica
				// migrate while it can still serve journal exports; a dead
				// replica's sessions migrate from its journal directory
				// without waiting for client traffic to trip over it.
				g.wg.Add(1)
				go func(name string) {
					defer g.wg.Done()
					g.evacuate(name)
				}(name)
			}
			replicasUp.Set(float64(g.health.UpCount()))
		}
	}
}

// probe performs one health check. A replica that answers but reports
// "draining" is treated as failing: it must stop receiving new sessions,
// and its open sessions fail over on their next request.
func (g *Gateway) probe(rep Replica) error {
	resp, err := g.probeHC.Get(rep.BaseURL + "/" + api.Version + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("healthz decode: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q", h.Status)
	}
	return nil
}

// --- placement and failover ---

// failoverWorthy reports whether a forwarding error means the replica
// (not the request) is the problem: a transport failure, a replica
// mid-drain, or a replica that restarted without the session. API-level
// answers (409 conflict, 422, 429, a failed session's 500) are the
// service speaking and must surface to the client unchanged.
func failoverWorthy(err error) bool {
	var se *httpretry.StatusError
	if !errors.As(err, &se) {
		return true // transport-level: the replica never answered
	}
	switch se.Code {
	case api.CodeShuttingDown, api.CodeNotFound:
		// Draining replica, or a replica that came back empty-handed
		// after a crash (the journal still has the session).
		return true
	}
	return false
}

// pickSuccessor returns the first healthy replica other than exclude in
// the session's ring preference order.
func (g *Gateway) pickSuccessor(gwID, exclude string) (string, bool) {
	for _, name := range g.ring.Successors(gwID, len(g.replicas)) {
		if name != exclude && g.health.Up(name) {
			return name, true
		}
	}
	// The ring may have already dropped every healthy candidate's vnodes
	// (e.g. mid-transition); fall back to any healthy member.
	for name := range g.replicas {
		if name != exclude && g.health.Up(name) {
			return name, true
		}
	}
	return "", false
}

// exportJournal fetches the session's durable journal for migration:
// from the replica itself while it can still answer (the drain case),
// else straight from its journal directory (the SIGKILL case).
func (g *Gateway) exportJournal(rt *route) (api.SessionJournal, error) {
	var exp api.SessionJournal
	liveErr := g.client.Do("GET", g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+"/journal", nil, &exp)
	if liveErr == nil {
		return exp, nil
	}
	dir := g.replicas[rt.replica].JournalDir
	if dir == "" {
		return exp, fmt.Errorf("fleet: journal export from %s failed and no journal dir configured: %w", rt.replica, liveErr)
	}
	st, err := journal.Open(dir)
	if err != nil {
		return exp, fmt.Errorf("fleet: journal dir for %s: %w", rt.replica, err)
	}
	rec, err := st.LoadSession(rt.backendID)
	if err != nil {
		return exp, fmt.Errorf("fleet: journal read for %s/%s: %w", rt.replica, rt.backendID, err)
	}
	if rec.Corrupt != "" {
		return exp, fmt.Errorf("fleet: journal for %s/%s unreadable: %s", rt.replica, rt.backendID, rec.Corrupt)
	}
	return api.SessionJournal{
		SchemaVersion: api.Version,
		ID:            rt.backendID,
		Request:       rec.Meta.Req,
		State:         rec.Meta.State,
		LastSeq:       rec.Meta.LastSeq,
		FailCause:     rec.Meta.FailCause,
		Chunks:        rec.Chunks,
	}, nil
}

// failoverLocked migrates rt's session to a successor replica: export
// the journal, open a fresh session with the original request, replay
// every acknowledged chunk through the successor's normal publish path,
// and re-pin the session's hash slot. Caller holds rt.mu.
func (g *Gateway) failoverLocked(rt *route) error {
	failoverAttempts.Inc()
	from := rt.replica
	// React faster than the probe cadence: the forwarding failure that
	// got us here is evidence enough to stop placing new sessions there.
	if g.health.MarkDown(from) {
		healthTransitions.Inc()
		g.ring.Remove(from)
		replicasUp.Set(float64(g.health.UpCount()))
		g.logf("replica %s down (forwarding failure)", from)
	}
	exp, err := g.exportJournal(rt)
	if err != nil {
		failoverFailed.Inc()
		return err
	}
	target, ok := g.pickSuccessor(rt.gwID, from)
	if !ok {
		failoverFailed.Inc()
		return fmt.Errorf("fleet: no healthy successor for session %s", rt.gwID)
	}
	body, err := json.Marshal(exp.Request)
	if err != nil {
		failoverFailed.Inc()
		return err
	}
	var created api.SessionResponse
	if err := g.client.Do("POST", g.base(target)+"/"+api.Version+"/sessions", body, &created); err != nil {
		failoverFailed.Inc()
		return fmt.Errorf("fleet: successor %s rejected session: %w", target, err)
	}
	for _, c := range exp.Chunks {
		raw, err := json.Marshal(c)
		if err != nil {
			failoverFailed.Inc()
			return err
		}
		var fr api.FramesResponse
		if err := g.client.Do("POST", g.base(target)+"/"+api.Version+"/sessions/"+created.ID+"/frames", raw, &fr); err != nil {
			failoverFailed.Inc()
			return fmt.Errorf("fleet: replay chunk %d onto %s: %w", c.Seq, target, err)
		}
		failoverChunks.Inc()
	}
	// The successor's stream state is now exactly what the CLIENT asked
	// for: a journaled Close chunk re-closed it during replay; absent
	// one, it stays open even if the exported state was terminal — a
	// close the client never requested (drain, idle timeout) must not
	// lock the migrated session against a client mid-upload. The client
	// finishes the stream, or the successor's janitor re-times it out.
	g.ring.Pin(rt.gwID, target)
	rt.replica, rt.backendID = target, created.ID
	failoverSuccess.Inc()
	g.logf("session %s failed over %s -> %s (%d chunk(s) replayed, last_seq %d)",
		rt.gwID, from, target, len(exp.Chunks), exp.LastSeq)
	return nil
}

// evacuate migrates every session currently routed to a downed replica.
// Run by the probe loop on a mark-down transition, so sessions move off
// a draining replica while its journal-export endpoint still answers,
// and off a dead one without waiting for client traffic to trip over it.
func (g *Gateway) evacuate(name string) {
	g.mu.Lock()
	rts := make([]*route, 0, len(g.routes))
	for _, rt := range g.routes {
		rts = append(rts, rt)
	}
	g.mu.Unlock()
	for _, rt := range rts {
		rt.mu.Lock()
		// Re-check under the route lock: a frames request may have
		// already migrated it.
		if rt.replica == name {
			if err := g.failoverLocked(rt); err != nil {
				g.logf("session %s evacuation from %s failed: %v", rt.gwID, name, err)
			}
		}
		rt.mu.Unlock()
	}
}

// Placement reports which replica currently holds a gateway session —
// observability for operators and the fleet tests.
func (g *Gateway) Placement(gwID string) (replica string, ok bool) {
	rt, ok := g.lookupRoute(gwID)
	if !ok {
		return "", false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.replica, true
}

// forward sends one request for rt's session, failing over (once) when
// the replica itself is the problem. Caller holds rt.mu.
func (g *Gateway) forwardLocked(rt *route, method, suffix string, body []byte, out any) error {
	err := g.client.Do(method, g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+suffix, body, out)
	if err == nil || !failoverWorthy(err) {
		return err
	}
	if ferr := g.failoverLocked(rt); ferr != nil {
		return fmt.Errorf("%w (failover: %v)", err, ferr)
	}
	return g.client.Do(method, g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+suffix, body, out)
}

// --- handlers ---

func (g *Gateway) lookupRoute(id string) (*route, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rt, ok := g.routes[id]
	return rt, ok
}

// healthyOrder returns the healthy replicas starting at the round-robin
// cursor — the batch-flight placement order.
func (g *Gateway) healthyOrder() []string {
	members := g.ring.Members()
	if len(members) == 0 {
		return nil
	}
	g.mu.Lock()
	start := g.rrFlight
	g.rrFlight++
	g.mu.Unlock()
	out := make([]string, 0, len(members))
	for i := 0; i < len(members); i++ {
		name := members[(start+i)%len(members)]
		if g.health.Up(name) {
			out = append(out, name)
		}
	}
	return out
}

// handleFlights forwards a batch upload to a healthy replica,
// round-robin, advancing to the next on transport failure.
func (g *Gateway) handleFlights(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		g.writeError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: shutting down")
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	var lastErr error
	for _, name := range g.healthyOrder() {
		var out api.FlightResponse
		err := g.client.Do("POST", g.base(name)+"/"+api.Version+"/flights", buf.Bytes(), &out)
		if err == nil {
			routedTo(name).Inc()
			g.writeJSON(w, http.StatusOK, out)
			return
		}
		lastErr = err
		if !failoverWorthy(err) {
			g.writeUpstreamError(w, err)
			return
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replicas")
	}
	g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, fmt.Sprintf("gateway: %v", lastErr))
}

// handleSessionCreate places a session: the gateway allocates its own id
// (the hash key), consistent-hashes it to a replica, and opens the
// backend session there. The client only ever sees the gateway id.
func (g *Gateway) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req api.SessionRequest
	if err := api.DecodeStrict(r.Body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.writeError(w, http.StatusServiceUnavailable, api.CodeShuttingDown, "gateway: shutting down")
		return
	}
	g.nextID++
	gwID := fmt.Sprintf("g-%08d", g.nextID)
	g.mu.Unlock()

	owner, ok := g.ring.Lookup(gwID)
	if !ok {
		g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, "gateway: no healthy replicas")
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	// Preference order: ring owner first, then its successors. A replica
	// that refuses with an API-level answer (429 capacity, 422) speaks
	// for the fleet — surface it; only replica-level failures advance.
	tried := map[string]bool{}
	candidates := append([]string{owner}, g.ring.Successors(gwID, len(g.replicas))...)
	var lastErr error
	for _, name := range candidates {
		if tried[name] || !g.health.Up(name) {
			continue
		}
		tried[name] = true
		var created api.SessionResponse
		err := g.client.Do("POST", g.base(name)+"/"+api.Version+"/sessions", body, &created)
		if err == nil {
			rt := &route{gwID: gwID, replica: name, backendID: created.ID}
			g.mu.Lock()
			g.routes[gwID] = rt
			g.mu.Unlock()
			if name != owner {
				// Hash said owner, health said otherwise: pin so every
				// later lookup agrees with where the session actually is.
				g.ring.Pin(gwID, name)
			}
			sessionsRouted.Inc()
			routedTo(name).Inc()
			g.logf("session %s -> %s/%s (flight %q)", gwID, name, created.ID, req.Flight)
			g.writeJSON(w, http.StatusCreated, api.SessionResponse{
				SchemaVersion: created.SchemaVersion,
				ID:            gwID,
				State:         created.State,
			})
			return
		}
		lastErr = err
		if !failoverWorthy(err) {
			g.writeUpstreamError(w, err)
			return
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replicas")
	}
	g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, fmt.Sprintf("gateway: %v", lastErr))
}

// handleFrames forwards a chunk to the session's replica, migrating the
// session first if that replica is gone. The chunk itself rides the
// sequence-number contract: after a mid-flight failover the replay
// restored every acknowledged chunk, so the client's in-flight resend is
// either the next expected Seq (accepted) or an already-replayed one
// (acknowledged as duplicate).
func (g *Gateway) handleFrames(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	var req api.FramesRequest
	if err := api.DecodeStrict(bytes.NewReader(buf.Bytes()), &req); err != nil {
		g.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out api.FramesResponse
	if err := g.forwardLocked(rt, "POST", "/frames", buf.Bytes(), &out); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	if req.Seq > rt.lastSeq {
		rt.lastSeq = req.Seq
	}
	g.writeJSON(w, http.StatusOK, out)
}

// handleReport forwards a report read, failing the session over first if
// its replica died before serving the verdict — the journal replay
// reproduces it on the successor.
func (g *Gateway) handleReport(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out json.RawMessage
	if err := g.forwardLocked(rt, "GET", "/report", nil, &out); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	g.writeJSON(w, http.StatusOK, out)
}

// handleStatus forwards a status read and rewrites the backend session
// id to the gateway's — clients address sessions only by gateway id.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var st api.SessionStatus
	if err := g.forwardLocked(rt, "GET", "/status", nil, &st); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	st.ID = rt.gwID
	g.writeJSON(w, http.StatusOK, st)
}

// handleJournal forwards a journal export, rewriting the id like status.
func (g *Gateway) handleJournal(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookupRoute(r.PathValue("id"))
	if !ok {
		g.writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var exp api.SessionJournal
	if err := g.forwardLocked(rt, "GET", "/journal", nil, &exp); err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	exp.ID = rt.gwID
	g.writeJSON(w, http.StatusOK, exp)
}

// handleHealthz reports fleet-level liveness: "ok" while every replica
// is up, "degraded" when some are down, "draining" during shutdown.
// Occupancy aggregates the up replicas' own healthz answers.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	draining := g.draining
	sessions := len(g.routes)
	g.mu.Unlock()
	status := "ok"
	if g.health.UpCount() < len(g.replicas) {
		status = "degraded"
	}
	if draining {
		status = "draining"
	}
	agg := api.Health{
		SchemaVersion:  api.Version,
		Status:         status,
		ActiveSessions: sessions,
	}
	for name, rep := range g.replicas {
		if !g.health.Up(name) {
			continue
		}
		resp, err := g.probeHC.Get(rep.BaseURL + "/" + api.Version + "/healthz")
		if err != nil {
			continue
		}
		var h api.Health
		if json.NewDecoder(resp.Body).Decode(&h) == nil {
			agg.SessionCap += h.SessionCap
			agg.JobsInFlight += h.JobsInFlight
			agg.JobCap += h.JobCap
		}
		resp.Body.Close()
	}
	g.writeJSON(w, http.StatusOK, agg)
}

// --- lifecycle ---

// Shutdown drains the gateway: new sessions and batch flights are
// refused (503 shutting_down), the probe loop stops, and existing
// sessions keep flowing — frames, failover, and report reads continue —
// until every tracked session reaches a terminal state or ctx expires.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	already := g.draining
	g.draining = true
	open := make([]*route, 0, len(g.routes))
	for _, rt := range g.routes {
		open = append(open, rt)
	}
	g.mu.Unlock()
	if !already {
		close(g.probeStop)
		<-g.probeDone
		g.wg.Wait() // let in-flight evacuations settle
		g.logf("drain: %d tracked session(s)", len(open))
	}
	for {
		pending := 0
		for _, rt := range open {
			rt.mu.Lock()
			var st api.SessionStatus
			err := g.client.Do("GET", g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+"/status", nil, &st)
			rt.mu.Unlock()
			if err == nil && st.State != api.SessionDone && st.State != api.SessionFailed {
				pending++
			}
		}
		if pending == 0 {
			g.logf("drain: complete")
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// --- response plumbing ---

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, code, msg string) {
	g.writeJSON(w, status, api.Error{Code: code, Error: msg})
}

// writeUpstreamError relays a forwarding failure: an API-level answer
// from the replica passes through with its original status and code (the
// gateway is transparent to the service's own error contract); a
// transport-level failure becomes 503 upstream_unavailable.
func (g *Gateway) writeUpstreamError(w http.ResponseWriter, err error) {
	var se *httpretry.StatusError
	if errors.As(err, &se) {
		g.writeError(w, se.Status, se.Code, se.Message)
		return
	}
	g.writeError(w, http.StatusServiceUnavailable, api.CodeUpstream, fmt.Sprintf("gateway: %v", err))
}
