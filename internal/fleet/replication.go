package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"soundboost/api"
	"soundboost/internal/httpretry"
)

// Journal replication: the gateway streams every owner-acknowledged
// chunk to R−1 follower replicas (POST /v1/sessions/{gwID}/journal/
// append), so a session's write-ahead log survives the loss of the
// owner AND its disk — exportJournal falls back to the freshest
// follower copy and the replay path reproduces the verdict unchanged.
//
// The gateway drives the stream; replicas never talk to each other.
// Copies are keyed by the gateway session id (fleet-unique), and the
// replication seq is the chunk's position in the owner's accept order —
// independent of the client's own chunk Seq, which optional-idempotency
// clients may not even send. Followers fsync before acking, absorb
// duplicates at or below their high-water mark, and 409 a gap; the
// gateway answers a gap (or a takeover, where the mark is unknown) by
// reseeding the copy from a full live export, under which duplicates
// absorb harmlessly.
//
// Replication is best-effort per chunk and never fails the client: the
// owner's fsynced journal already made the chunk durable, so a follower
// falling behind is a visible (fleet.replication.lag.*) reduction in
// failure coverage, not an error. Appends ride a tighter retry budget
// than client forwarding — the client is waiting.

// pickFollowers selects up to Replication−1 healthy followers for a
// session: its ring successors after the owner, in preference order.
func (g *Gateway) pickFollowers(gwID, owner string) []string {
	n := g.cfg.Replication - 1
	if n <= 0 {
		return nil
	}
	var out []string
	for _, name := range g.ring.Successors(gwID, len(g.replicas)) {
		if len(out) >= n {
			break
		}
		if name != owner && g.health.Up(name) {
			out = append(out, name)
		}
	}
	return out
}

// appendFollower replicates one chunk to one follower.
func (g *Gateway) appendFollower(rt *route, follower string, seq int, chunk api.FramesRequest) error {
	body, err := json.Marshal(api.JournalAppend{
		SchemaVersion: api.Version,
		Seq:           seq,
		Request:       rt.req,
		Chunk:         chunk,
	})
	if err != nil {
		return err
	}
	var resp api.JournalAppendResponse
	return g.repClient.Do("POST",
		g.base(follower)+"/"+api.Version+"/sessions/"+rt.gwID+"/journal/append",
		body, &resp)
}

// replicateLocked streams one newly owner-acknowledged chunk to the
// session's followers. Caller holds rt.mu; duplicate is the owner's
// verdict on the chunk (an absorbed resend carries nothing new — unless
// a reseed is pending, in which case the full export covers it).
func (g *Gateway) replicateLocked(rt *route, chunk api.FramesRequest, duplicate bool) {
	if g.cfg.Replication <= 1 {
		return
	}
	if rt.needReseed {
		// The copies' high-water marks are unknown (gateway takeover) or
		// known-holed (a follower 409'd a gap): rebuild them from a full
		// live export, which includes this chunk too.
		exp, err := g.liveExport(rt)
		if err != nil {
			replicationErrors.Inc()
			g.logf("session %s: reseed export failed: %v", rt.gwID, err)
			return
		}
		g.seedFollowersLocked(rt, exp)
		return
	}
	if duplicate {
		return
	}
	rt.repSeq++
	for _, f := range rt.followers {
		if f == rt.replica || !g.health.Up(f) {
			continue // lag accrues; a later reseed or append catches up
		}
		if err := g.appendFollower(rt, f, rt.repSeq, chunk); err != nil {
			replicationErrors.Inc()
			var se *httpretry.StatusError
			if errors.As(err, &se) && se.Code == api.CodeConflict {
				// The follower's copy has a hole (it restarted, or we
				// did): schedule a full reseed rather than papering over
				// the gap.
				rt.needReseed = true
			}
			g.logf("session %s: replicate seq %d to %s failed: %v", rt.gwID, rt.repSeq, f, err)
			continue
		}
		rt.repAcked[f] = rt.repSeq
		replicationAppends.Inc()
	}
	g.updateLagLocked(rt)
}

// seedFollowersLocked replays a full journal export into every
// follower, bringing each copy to the owner's high-water mark.
// Duplicates absorb on the follower side, so seeding over a partial
// copy is safe. Caller holds rt.mu.
func (g *Gateway) seedFollowersLocked(rt *route, exp api.SessionJournal) {
	if g.cfg.Replication <= 1 {
		return
	}
	if len(rt.followers) == 0 {
		rt.followers = g.pickFollowers(rt.gwID, rt.replica)
	}
	if rt.repAcked == nil {
		rt.repAcked = make(map[string]int, len(rt.followers))
	}
	rt.repSeq = len(exp.Chunks)
	rt.needReseed = false
	for _, f := range rt.followers {
		if f == rt.replica || !g.health.Up(f) {
			continue
		}
		seeded := true
		for i, c := range exp.Chunks {
			if err := g.appendFollower(rt, f, i+1, c); err != nil {
				replicationErrors.Inc()
				g.logf("session %s: seed chunk %d to %s failed: %v", rt.gwID, i+1, f, err)
				seeded = false
				break
			}
		}
		if seeded {
			rt.repAcked[f] = rt.repSeq
			replicationAppends.Add(int64(len(exp.Chunks)))
		}
	}
	g.updateLagLocked(rt)
}

// updateLagLocked refreshes the session's replication-lag gauge (owner
// high-water mark minus the slowest follower's) and the fleet-wide
// behind count. Caller holds rt.mu.
func (g *Gateway) updateLagLocked(rt *route) {
	lag := 0
	for _, f := range rt.followers {
		if f == rt.replica {
			continue
		}
		if l := rt.repSeq - rt.repAcked[f]; l > lag {
			lag = l
		}
	}
	replicationLag(rt.gwID).Set(float64(lag))
	switch {
	case lag > 0 && rt.prevLag == 0:
		replicationBehind.Add(1)
	case lag == 0 && rt.prevLag > 0:
		replicationBehind.Add(-1)
	}
	rt.prevLag = lag
}

// liveExport fetches the session's journal from its current owner.
func (g *Gateway) liveExport(rt *route) (api.SessionJournal, error) {
	var exp api.SessionJournal
	err := g.client.Do("GET", g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+"/journal", nil, &exp)
	return exp, err
}

// followerExport fetches the freshest follower copy of the session's
// journal — the failover source when the owner and its disk are both
// gone. Copies are keyed by gateway id and live behind the same journal
// route; the one with the most chunks wins (followers can lag, never
// lead, the owner).
func (g *Gateway) followerExport(rt *route) (api.SessionJournal, error) {
	var (
		best  api.SessionJournal
		found bool
		errs  []error
	)
	for _, f := range rt.followers {
		if f == rt.replica || !g.health.Up(f) {
			continue
		}
		var exp api.SessionJournal
		if err := g.client.Do("GET", g.base(f)+"/"+api.Version+"/sessions/"+rt.gwID+"/journal", nil, &exp); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", f, err))
			continue
		}
		if !found || len(exp.Chunks) > len(best.Chunks) {
			best, found = exp, true
		}
	}
	if !found {
		return best, fmt.Errorf("fleet: no follower copy of %s available: %v", rt.gwID, errs)
	}
	return best, nil
}
