package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"soundboost/api"
)

// Gateway routing-state checkpoint: with Config.StatePath set, every
// placement change (session created, migrated, parked, revived) rewrites
// an fsync'd state file holding gwID→replica placements, follower sets,
// the id allocator, and a monotonic epoch. A warm standby (-standby)
// tails the lease file beside it and, on lease expiry, rebuilds a
// gateway from the checkpoint — so a gateway kill mid-flight is
// survivable without clients ever learning a new address.
//
// Checkpoints are placement-granular on purpose: per-chunk state
// (last_seq, replication marks) is NOT persisted, because the replicas
// themselves are the durable source — a restored gateway re-learns
// last_seq from the owner's status and reseeds follower marks from a
// live export. Persisting them would put an fsync on the chunk hot path
// for state that is reconstructible anyway.

// RouteState is one session's checkpointed placement.
type RouteState struct {
	GwID      string   `json:"gw_id"`
	Replica   string   `json:"replica"`
	BackendID string   `json:"backend_id"`
	Followers []string `json:"followers,omitempty"`
	// Parked marks a restored session no replica could be found for —
	// served as 503 + Retry-After until a revive succeeds.
	Parked  bool               `json:"parked,omitempty"`
	Request api.SessionRequest `json:"request"`
}

// State is the gateway's checkpointed routing state.
type State struct {
	SchemaVersion string       `json:"schema_version"`
	Epoch         int          `json:"epoch"`
	NextID        int          `json:"next_id"`
	Routes        []RouteState `json:"routes"`
}

// checkpoint snapshots the placement mirror and rewrites the state file
// (atomic temp + rename + fsync). No-op without StatePath. Safe to call
// with any rt.mu held: it takes only g.stateMu (serializing writers in
// epoch order) and g.mu (briefly, for the snapshot) — never a route
// lock, since the mirror is maintained at mutation sites instead.
func (g *Gateway) checkpoint() {
	if g.cfg.StatePath == "" {
		return
	}
	g.stateMu.Lock()
	defer g.stateMu.Unlock()
	g.mu.Lock()
	g.epoch++
	st := State{SchemaVersion: api.Version, Epoch: g.epoch, NextID: g.nextID}
	st.Routes = make([]RouteState, 0, len(g.placed))
	for _, rs := range g.placed {
		st.Routes = append(st.Routes, rs)
	}
	g.mu.Unlock()
	sort.Slice(st.Routes, func(i, j int) bool { return st.Routes[i].GwID < st.Routes[j].GwID })
	if err := writeFileSync(g.cfg.StatePath, mustJSON(st)); err != nil {
		g.logf("state checkpoint failed: %v", err)
		return
	}
	stateCheckpoints.Inc()
}

// notePlacementLocked updates the placement mirror for rt. Caller holds
// g.mu AND knows rt's current placement (typically holding rt.mu, or
// owning the route before it is published).
func (g *Gateway) notePlacementLocked(rt *route) {
	g.placed[rt.gwID] = RouteState{
		GwID:      rt.gwID,
		Replica:   rt.replica,
		BackendID: rt.backendID,
		Followers: append([]string(nil), rt.followers...),
		Parked:    rt.parked,
		Request:   rt.req,
	}
}

// recordPlacement mirrors rt's placement and checkpoints. Caller may
// hold rt.mu but must not hold g.mu.
func (g *Gateway) recordPlacement(rt *route) {
	g.mu.Lock()
	g.notePlacementLocked(rt)
	g.mu.Unlock()
	g.checkpoint()
}

// loadState reads a checkpoint file.
func loadState(path string) (State, error) {
	var st State
	raw, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(bytes.TrimSpace(raw), &st); err != nil {
		return st, fmt.Errorf("fleet: state file %s: %w", path, err)
	}
	return st, nil
}

// restore rebuilds routes from the checkpoint at StatePath — the warm
// standby's takeover path, and a restarted primary's own recovery. Each
// restored session is pinned to its checkpointed replica and marked for
// a replication reseed (the copies' high-water marks died with the old
// process); verification and re-placement happen in verifyRestored once
// construction finishes.
func (g *Gateway) restore() error {
	st, err := loadState(g.cfg.StatePath)
	if os.IsNotExist(err) {
		return nil // first life: nothing to restore
	}
	if err != nil {
		return err
	}
	g.nextID, g.epoch = st.NextID, st.Epoch
	for _, rs := range st.Routes {
		rt := &route{
			gwID:       rs.GwID,
			replica:    rs.Replica,
			backendID:  rs.BackendID,
			req:        rs.Request,
			followers:  append([]string(nil), rs.Followers...),
			repAcked:   make(map[string]int, len(rs.Followers)),
			parked:     rs.Parked,
			needReseed: true,
		}
		g.routes[rs.GwID] = rt
		g.placed[rs.GwID] = rs
		g.ring.Pin(rs.GwID, rs.Replica)
		if rs.Parked {
			sessionsParked.Add(1)
		}
	}
	g.logf("restored %d session(s) from %s (epoch %d)", len(st.Routes), g.cfg.StatePath, st.Epoch)
	return nil
}

// verifyRestored confirms each restored placement against its replica:
// a reachable owner re-teaches last_seq; an unreachable one triggers
// the normal failover (live export → journal dir → follower copies);
// a session no replica can serve is parked, not failed — clients see
// 503 + Retry-After and every request retries the revive.
func (g *Gateway) verifyRestored() {
	g.mu.Lock()
	rts := make([]*route, 0, len(g.routes))
	for _, rt := range g.routes {
		rts = append(rts, rt)
	}
	g.mu.Unlock()
	for _, rt := range rts {
		rt.mu.Lock()
		if !rt.parked {
			var stt api.SessionStatus
			err := g.client.Do("GET", g.base(rt.replica)+"/"+api.Version+"/sessions/"+rt.backendID+"/status", nil, &stt)
			switch {
			case err == nil:
				rt.lastSeq = stt.LastSeq
			case failoverWorthy(err):
				if ferr := g.failoverLocked(rt); ferr != nil {
					g.parkLocked(rt, ferr)
				}
			}
		}
		rt.mu.Unlock()
	}
}

// parkLocked marks rt unplaceable: kept, checkpointed, and served as
// 503 + Retry-After until a later revive finds it a replica. Caller
// holds rt.mu.
func (g *Gateway) parkLocked(rt *route, cause error) {
	if rt.parked {
		return
	}
	rt.parked = true
	sessionsParked.Add(1)
	g.logf("session %s parked: %v", rt.gwID, cause)
	g.recordPlacement(rt)
}

// reviveLocked tries to bring a parked session back by running the
// normal failover path. Caller holds rt.mu.
func (g *Gateway) reviveLocked(rt *route) error {
	if err := g.failoverLocked(rt); err != nil {
		return err
	}
	rt.parked = false
	sessionsParked.Add(-1)
	g.logf("session %s revived on %s", rt.gwID, rt.replica)
	g.recordPlacement(rt)
	return nil
}

// --- lease heartbeat ---

// leasePath returns the lease file beside a state path.
func leasePath(statePath string) string { return statePath + ".lease" }

// leaseLoop renews the primary's lease every LeaseInterval until
// shutdown. The standby declares the lease expired after LeaseTTL
// without a change — both sides measure the gap on their own clock, so
// nothing couples the two hosts' clocks.
func (g *Gateway) leaseLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.LeaseInterval)
	defer t.Stop()
	n := 0
	for {
		n++
		if err := writeFileSync(leasePath(g.cfg.StatePath), []byte(strconv.Itoa(os.Getpid())+":"+strconv.Itoa(n)+"\n")); err != nil {
			g.logf("lease renew failed: %v", err)
		}
		select {
		case <-g.probeStop:
			return
		case <-t.C:
		}
	}
}

// writeFileSync writes a file atomically (temp + rename) and fsyncs it,
// so readers never observe a torn snapshot and the rename survives
// power loss.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func mustJSON(v any) []byte {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err) // all checkpointed types marshal by construction
	}
	return append(raw, '\n')
}
