// Package fleet shards the RCA service across replicas: a consistent-
// hash ring places sessions, a hysteretic health checker tracks replica
// liveness, and the gateway re-serves the single-node /v1 surface while
// routing each session to its ring-assigned replica — migrating sessions
// off draining or dead replicas by replaying their journals onto a
// successor. See DESIGN.md "Fleet routing & handoff".
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Keys (gateway
// session ids) hash onto a circle of vnode points; a key is owned by the
// first vnode at or clockwise of its hash. Virtual nodes smooth the
// per-replica load; removing a replica moves only the keys it owned.
//
// Pins override the hash: after a failover migrates a session to a
// successor, the gateway pins the session's key to that replica so the
// dead replica's return (mark-up) cannot silently re-route an already-
// moved session back to a node that no longer holds it.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]bool   // current membership
	points []ringPoint       // sorted vnode points for current members
	pins   map[string]string // key → node override
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 selects 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{
		vnodes: vnodes,
		nodes:  make(map[string]bool),
		pins:   make(map[string]string),
	}
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a clusters on short, similar keys ("r1#0", "r1#1", …), which
	// skews vnode placement badly; a splitmix64 finalizer scatters the
	// avalanche-poor output across the full circle.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hashKey(node + "#" + strconv.Itoa(i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent). Keys it owned fall to their next
// clockwise member; keys pinned to it stay pinned — the pin records
// where the session's state actually lives, which removal does not
// change.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the member owning key: its pin when one is set, the
// ring assignment otherwise. ok is false on an empty ring with no pin.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n, pinned := r.pins[key]; pinned {
		return n, true
	}
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// search returns the index of the first vnode at or clockwise of key's
// hash. Caller holds at least the read lock; len(r.points) > 0.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point lands on the first
	}
	return i
}

// Home returns key's hash-assigned owner among current members,
// ignoring pins — the replica the key would live on had it never been
// moved. Rejoin rebalancing uses it to decide which migrated sessions
// a recovered replica should get back. ok is false on an empty ring.
func (r *Ring) Home(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// Successors returns up to n distinct members in ring order starting at
// key's owner — the failover preference list. A pin does not reorder it:
// successors are for choosing where to move next, not where the key is.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Pin overrides key's assignment to node until Unpin. The pin survives
// the node's removal and re-addition: it tracks where the session's
// state lives, not ring membership.
func (r *Ring) Pin(key, node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pins[key] = node
}

// Unpin drops key's override, returning it to hash placement.
func (r *Ring) Unpin(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pins, key)
}
