package fleet

import "sync"

// Health tracks replica liveness with hysteresis: a replica is marked
// down only after DownAfter consecutive probe failures and marked up
// again only after UpAfter consecutive successes, so one dropped probe
// does not evacuate a replica and one lucky probe does not resurrect a
// flapping one. Health is passive — the gateway's probe loop feeds it
// observations and acts on the reported transitions — which keeps the
// state machine clock-free and directly testable.
type Health struct {
	mu        sync.Mutex
	states    map[string]*replicaHealth
	downAfter int
	upAfter   int
}

type replicaHealth struct {
	up        bool
	failures  int // consecutive, while up
	successes int // consecutive, while down
}

// NewHealth tracks the named replicas, all initially up. Thresholds
// <= 0 select 2.
func NewHealth(names []string, downAfter, upAfter int) *Health {
	if downAfter <= 0 {
		downAfter = 2
	}
	if upAfter <= 0 {
		upAfter = 2
	}
	h := &Health{
		states:    make(map[string]*replicaHealth, len(names)),
		downAfter: downAfter,
		upAfter:   upAfter,
	}
	for _, n := range names {
		h.states[n] = &replicaHealth{up: true}
	}
	return h
}

// Observe records one probe outcome (err == nil is a success) and
// reports whether the replica transitioned, and to which state.
func (h *Health) Observe(name string, err error) (transitioned, up bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[name]
	if !ok {
		return false, false
	}
	if err == nil {
		st.failures = 0
		if st.up {
			return false, true
		}
		st.successes++
		if st.successes >= h.upAfter {
			st.up = true
			st.successes = 0
			return true, true
		}
		return false, false
	}
	st.successes = 0
	if !st.up {
		return false, false
	}
	st.failures++
	if st.failures >= h.downAfter {
		st.up = false
		st.failures = 0
		return true, false
	}
	return false, true
}

// MarkDown forces a replica down immediately — the gateway calls it when
// a forwarded request (not just a probe) hits a transport failure, so
// routing reacts faster than the probe cadence. Reports whether this
// call performed the transition.
func (h *Health) MarkDown(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[name]
	if !ok || !st.up {
		return false
	}
	st.up = false
	st.failures = 0
	st.successes = 0
	return true
}

// Up reports a replica's current state (unknown replicas are down).
func (h *Health) Up(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.states[name]
	return ok && st.up
}

// UpCount returns how many replicas are currently up.
func (h *Health) UpCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.states {
		if st.up {
			n++
		}
	}
	return n
}
