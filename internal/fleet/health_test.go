package fleet

import (
	"errors"
	"testing"
)

var errProbe = errors.New("probe failed")

// TestHealthHysteresis walks the state machine: one failure is absorbed,
// DownAfter consecutive failures transition down, one success while down
// is absorbed, UpAfter consecutive successes transition up — and mixed
// outcomes reset the streaks.
func TestHealthHysteresis(t *testing.T) {
	h := NewHealth([]string{"r1"}, 3, 2)
	if !h.Up("r1") {
		t.Fatal("replicas must start up")
	}
	// Two failures: still up (streak < DownAfter).
	for i := 0; i < 2; i++ {
		if tr, _ := h.Observe("r1", errProbe); tr {
			t.Fatalf("transitioned after %d failures, DownAfter=3", i+1)
		}
	}
	// A success resets the failure streak.
	h.Observe("r1", nil)
	for i := 0; i < 2; i++ {
		if tr, _ := h.Observe("r1", errProbe); tr {
			t.Fatal("failure streak not reset by intervening success")
		}
	}
	// Third consecutive failure: down.
	tr, up := h.Observe("r1", errProbe)
	if !tr || up {
		t.Fatalf("Observe = (%v, %v), want transition to down", tr, up)
	}
	if h.Up("r1") || h.UpCount() != 0 {
		t.Fatal("state not down after transition")
	}
	// One success while down: absorbed (streak < UpAfter).
	if tr, _ := h.Observe("r1", nil); tr {
		t.Fatal("came back up after one success, UpAfter=2")
	}
	// A failure resets the success streak.
	h.Observe("r1", errProbe)
	h.Observe("r1", nil)
	if tr, _ := h.Observe("r1", nil); !tr {
		t.Fatal("no transition up after UpAfter consecutive successes")
	}
	if !h.Up("r1") {
		t.Fatal("state not up after recovery")
	}
	// Steady-state success: no spurious transitions.
	if tr, _ := h.Observe("r1", nil); tr {
		t.Fatal("transition reported with no state change")
	}
}

// TestHealthMarkDown pins the fast path: a forwarding failure forces
// down immediately, skipping the probe hysteresis, and recovery still
// requires the full UpAfter streak.
func TestHealthMarkDown(t *testing.T) {
	h := NewHealth([]string{"r1", "r2"}, 3, 2)
	if !h.MarkDown("r1") {
		t.Fatal("MarkDown on an up replica must transition")
	}
	if h.MarkDown("r1") {
		t.Fatal("MarkDown must be idempotent")
	}
	if h.Up("r1") || !h.Up("r2") || h.UpCount() != 1 {
		t.Fatal("MarkDown leaked to the wrong replica")
	}
	h.Observe("r1", nil)
	if tr, up := h.Observe("r1", nil); !tr || !up {
		t.Fatal("marked-down replica cannot recover through probes")
	}
}

// TestHealthUnknownReplica keeps unknown names inert.
func TestHealthUnknownReplica(t *testing.T) {
	h := NewHealth([]string{"r1"}, 2, 2)
	if tr, _ := h.Observe("ghost", nil); tr {
		t.Fatal("unknown replica transitioned")
	}
	if h.Up("ghost") || h.MarkDown("ghost") {
		t.Fatal("unknown replica is not down/inert")
	}
}
