package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"soundboost/api"
	"soundboost/internal/chaos"
	"soundboost/internal/obs"
	"soundboost/internal/server"
	"soundboost/internal/testfix"
)

// withObs turns metric recording on for one test and restores the
// prior state afterwards — the fleet.* counters asserted below are
// no-ops while obs is disabled.
func withObs(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.Enable()
	t.Cleanup(func() {
		if !prev {
			obs.Disable()
		}
	})
}

// singleNodeGolden computes the byte-identity oracle for a flight: the
// report a plain single-node server produces for the same chunking.
func singleNodeGolden(t *testing.T, nBatches int, flightIdx int) []byte {
	t.Helper()
	fx := testfix.Get(t)
	single, err := server.New(fx.Analyzer, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		single.Shutdown(ctx)
	})
	return reportBytes(t, single, fx.Calib[flightIdx], nBatches)
}

// abandon simulates the gateway process dying: background loops stop
// (the lease is never renewed again) but no session is drained — the
// shape a standby takes over from. The already-cancelled context makes
// Shutdown bail out of the drain immediately.
func abandon(t *testing.T, g *Gateway) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Shutdown(ctx); err == nil {
		t.Fatal("abandoning drain with open sessions: want context error, got nil")
	}
}

// TestFleetFollowerCopyFailover is the ISSUE's hardest failure mode:
// SIGKILL the owning replica AND destroy its journal directory
// mid-flight. The live export and the disk fallback are both gone, so
// the gateway must rebuild the session from a follower's replicated
// journal copy — and the verdict must still be byte-identical to a
// single-node run.
func TestFleetFollowerCopyFailover(t *testing.T) {
	withObs(t)
	fx := testfix.Get(t)
	flight := fx.Calib[0]
	want := singleNodeGolden(t, 6, 0)

	// Replication 2 (the default): owner plus one follower copy. The
	// hour-long probe interval forces the lazy path — the failing frames
	// request itself must drive the follower-backed migration.
	g, reps := startFleet(t, 3, Config{ProbeInterval: time.Hour, Retries: 1})

	reqs, err := testfix.Frames(flight, 6)
	if err != nil {
		t.Fatal(err)
	}
	base, gwID := openVia(t, g, flight)
	k := len(reqs) / 2
	for _, r := range reqs[:k] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}

	owner, ok := g.Placement(gwID)
	if !ok {
		t.Fatalf("no placement for %s", gwID)
	}
	fromFollowerBefore := failoverFromFollower.Value()
	faultPlane := chaos.NewFleet()
	for _, r := range reps {
		if r.name == owner {
			faultPlane.Kill(r.name, r.kill)
			if err := faultPlane.Wipe(r.name, r.journalDir); err != nil {
				t.Fatalf("wipe journal dir: %v", err)
			}
		}
	}
	if faultPlane.Counts()[chaos.KindReplicaKill] != 1 || faultPlane.Counts()[chaos.KindJournalWipe] != 1 {
		t.Fatalf("faults not recorded: %v", faultPlane.Counts())
	}

	// The client resends its last unacked chunk: transport failure, live
	// export dead, journal dir empty — the follower copy carries the
	// acknowledged prefix, so the resend comes back Duplicate.
	resent := decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", reqs[k-1]), http.StatusOK)
	if !resent.Duplicate {
		t.Fatalf("resend after kill+wipe: %+v, want Duplicate (acknowledged prefix lost)", resent)
	}
	if after, _ := g.Placement(gwID); after == owner {
		t.Fatalf("session still placed on killed replica %s", owner)
	}
	if got := failoverFromFollower.Value(); got != fromFollowerBefore+1 {
		t.Errorf("fleet.failover.from_follower = %d, want %d (journal must have come from a follower copy)",
			got, fromFollowerBefore+1)
	}

	for _, r := range reqs[k:] {
		decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
	}
	w := hdo(t, g, "GET", base+"/report", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report after follower-copy failover: %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("post-failover report differs from unsharded run:\nsingle: %s\nfleet:  %s", want, w.Body.Bytes())
	}
}

// TestFleetRejoinRebalance partitions a replica, lets its sessions
// evacuate, heals it, and requires the rejoin drain to move back ONLY
// the sessions whose ring-home is the recovered replica — everything
// else stays put — with no verdict flipping anywhere.
func TestFleetRejoinRebalance(t *testing.T) {
	withObs(t)
	fx := testfix.Get(t)
	flight := fx.Calib[0]
	want := singleNodeGolden(t, 4, 0)

	faultPlane := chaos.NewFleet()
	g, reps := startFleet(t, 3, Config{
		ProbeInterval: 15 * time.Millisecond,
		DownAfter:     1, UpAfter: 1,
		Retries:   1,
		Transport: faultPlane.Transport(nil),
	})
	reqs, err := testfix.Frames(flight, 4)
	if err != nil {
		t.Fatal(err)
	}

	type sess struct {
		base, id, home, placed string
	}
	var sessions []sess
	for i := 0; i < 8; i++ {
		base, id := openVia(t, g, flight)
		for _, r := range reqs[:2] {
			decode[api.FramesResponse](t, hdo(t, g, "POST", base+"/frames", r), http.StatusOK)
		}
		home, ok := g.ring.Home(id)
		if !ok {
			t.Fatalf("no ring home for %s", id)
		}
		placed, _ := g.Placement(id)
		if placed != home {
			t.Fatalf("session %s placed on %s, home %s: all replicas healthy, placement should be home", id, placed, home)
		}
		sessions = append(sessions, sess{base: base, id: id, home: home, placed: placed})
	}

	// Partition the first session's home replica — the victim.
	victim := sessions[0].home
	var victimRep *replica
	for _, r := range reps {
		if r.name == victim {
			victimRep = r
		}
	}
	faultPlane.Partition(victimRep.host())
	deadline := time.Now().Add(15 * time.Second)
	for _, s := range sessions {
		if s.home != victim {
			continue
		}
		for {
			if rep, _ := g.Placement(s.id); rep != victim {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s never evacuated from partitioned %s", s.id, victim)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Heal: the prober marks the victim back up and the rejoin drain
	// returns its ring-home sessions.
	movedBefore := rebalanceMoved.Value()
	faultPlane.Heal(victimRep.host())
	for _, s := range sessions {
		if s.home != victim {
			continue
		}
		for {
			if rep, _ := g.Placement(s.id); rep == victim {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s (home %s) never rebalanced back after heal", s.id, victim)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if moved := rebalanceMoved.Value() - movedBefore; moved == 0 {
		t.Error("fleet.rebalance.moved did not advance across a rejoin")
	}

	// Only ring-home sessions moved: everything homed elsewhere is
	// exactly where it started.
	for _, s := range sessions {
		if s.home == victim {
			continue
		}
		if rep, _ := g.Placement(s.id); rep != s.placed {
			t.Errorf("session %s (home %s) moved %s -> %s during a rejoin that was not its own",
				s.id, s.home, s.placed, rep)
		}
	}

	// Verdicts don't flip: every stream finishes and matches the
	// single-node golden, whether it moved twice, once, or never.
	for _, s := range sessions {
		for _, r := range reqs[2:] {
			decode[api.FramesResponse](t, hdo(t, g, "POST", s.base+"/frames", r), http.StatusOK)
		}
		w := hdo(t, g, "GET", s.base+"/report", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("report for %s after rejoin: %d: %s", s.id, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Errorf("session %s report differs from unsharded run after rejoin:\nsingle: %s\nfleet:  %s",
				s.id, want, w.Body.Bytes())
		}
	}
}

// TestGatewayStandbyTakeover kills the primary gateway mid-stream and
// promotes a warm standby from the routing-state checkpoint: the lease
// goes stale, the standby rebuilds every placement, and the client
// finishes the SAME session through the new gateway — resumed ack
// state, byte-identical verdict.
func TestGatewayStandbyTakeover(t *testing.T) {
	withObs(t)
	fx := testfix.Get(t)
	flight := fx.Calib[1]
	want := singleNodeGolden(t, 5, 1)

	reps := []*replica{startReplica(t, "r1"), startReplica(t, "r2")}
	cfg := Config{
		StatePath:     filepath.Join(t.TempDir(), "gateway.state"),
		LeaseInterval: 20 * time.Millisecond,
		LeaseTTL:      120 * time.Millisecond,
		ProbeInterval: time.Hour,
		Retries:       1,
		RetryBase:     time.Millisecond,
		Logf:          t.Logf,
	}
	for _, r := range reps {
		cfg.Replicas = append(cfg.Replicas, Replica{Name: r.name, BaseURL: r.ts.URL, JournalDir: r.journalDir})
	}
	primary, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reqs, err := testfix.Frames(flight, 5)
	if err != nil {
		t.Fatal(err)
	}
	base, gwID := openVia(t, primary, flight)
	k := len(reqs) / 2
	for _, r := range reqs[:k] {
		decode[api.FramesResponse](t, hdo(t, primary, "POST", base+"/frames", r), http.StatusOK)
	}

	takeoversBefore := standbyTakeovers.Value()
	faultPlane := chaos.NewFleet()
	faultPlane.KillGateway(func() { abandon(t, primary) })
	if faultPlane.Counts()[chaos.KindGatewayKill] != 1 {
		t.Fatal("gateway kill not recorded")
	}

	sb, err := NewStandby(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := sb.WaitLease(wctx); err != nil {
		t.Fatalf("standby never saw the lease expire: %v", err)
	}
	g2, err := sb.Takeover()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g2.Shutdown(ctx); err != nil {
			t.Errorf("standby gateway shutdown: %v", err)
		}
	})
	if got := standbyTakeovers.Value(); got != takeoversBefore+1 {
		t.Errorf("fleet.standby.takeovers = %d, want %d", got, takeoversBefore+1)
	}

	// The restored route already knows the acknowledged prefix: the
	// client's resend of its last chunk is answered Duplicate, and the
	// stream finishes through the standby with the golden verdict.
	resent := decode[api.FramesResponse](t, hdo(t, g2, "POST", base+"/frames", reqs[k-1]), http.StatusOK)
	if !resent.Duplicate {
		t.Fatalf("resend through standby: %+v, want Duplicate (ack state lost across takeover)", resent)
	}
	if _, ok := g2.Placement(gwID); !ok {
		t.Fatalf("standby lost placement for %s", gwID)
	}
	for _, r := range reqs[k:] {
		decode[api.FramesResponse](t, hdo(t, g2, "POST", base+"/frames", r), http.StatusOK)
	}
	w := hdo(t, g2, "GET", base+"/report", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report through standby: %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Errorf("post-takeover report differs from unsharded run:\nsingle: %s\nfleet:  %s", want, w.Body.Bytes())
	}
}

// TestGatewayParkedSession restores a checkpoint whose only session has
// lost its replica, its disk, and every follower: the session parks
// instead of vanishing, and requests answer 503 + Retry-After until a
// revive could succeed.
func TestGatewayParkedSession(t *testing.T) {
	withObs(t)
	fx := testfix.Get(t)
	flight := fx.Calib[0]
	rep := startReplica(t, "r1")
	cfg := Config{
		Replicas:      []Replica{{Name: rep.name, BaseURL: rep.ts.URL, JournalDir: rep.journalDir}},
		StatePath:     filepath.Join(t.TempDir(), "gateway.state"),
		LeaseInterval: 20 * time.Millisecond,
		ProbeInterval: time.Hour,
		Retries:       1,
		RetryBase:     time.Millisecond,
		Logf:          t.Logf,
	}
	primary, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := testfix.Frames(flight, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, gwID := openVia(t, primary, flight)
	decode[api.FramesResponse](t, hdo(t, primary, "POST", base+"/frames", reqs[0]), http.StatusOK)
	abandon(t, primary)

	// Replica, disk, and (with a single replica) any follower copy: gone.
	rep.kill()
	if err := os.RemoveAll(rep.journalDir); err != nil {
		t.Fatal(err)
	}

	parkedBefore := sessionsParked.Value()
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g2.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown with parked session: %v", err)
		}
	})
	if got := sessionsParked.Value(); got != parkedBefore+1 {
		t.Errorf("fleet.sessions.parked = %v, want %v", got, parkedBefore+1)
	}

	w := hdo(t, g2, "POST", base+"/frames", reqs[1])
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("frames to parked session: status %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("parked 503 carries no Retry-After header")
	}
	var apiErr api.Error
	if err := json.Unmarshal(w.Body.Bytes(), &apiErr); err != nil || apiErr.Code != api.CodeUpstream {
		t.Errorf("parked error = %+v (%v), want code %q", apiErr, err, api.CodeUpstream)
	}
	// The session is parked, not forgotten: still tracked, still
	// addressable, same answer on the read side.
	if _, ok := g2.Placement(gwID); !ok {
		t.Error("parked session dropped from routing")
	}
	if w := hdo(t, g2, "GET", base+"/status", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("status of parked session: %d, want 503", w.Code)
	}
}

// TestStateCheckpointRoundTrip covers the checkpoint file contract:
// every placement lands in the fsync'd state file with a monotonic
// epoch, and the lease file beside it keeps changing while the primary
// is alive.
func TestStateCheckpointRoundTrip(t *testing.T) {
	fx := testfix.Get(t)
	flight := fx.Calib[0]
	statePath := filepath.Join(t.TempDir(), "gateway.state")
	g, _ := startFleet(t, 2, Config{StatePath: statePath, LeaseInterval: 15 * time.Millisecond})

	reqs, err := testfix.Frames(flight, 3)
	if err != nil {
		t.Fatal(err)
	}
	base1, id1 := openVia(t, g, flight)
	decode[api.FramesResponse](t, hdo(t, g, "POST", base1+"/frames", reqs[0]), http.StatusOK)
	base2, id2 := openVia(t, g, flight)

	st, err := loadState(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if st.SchemaVersion != api.Version {
		t.Errorf("state schema_version = %q, want %q", st.SchemaVersion, api.Version)
	}
	if st.NextID != 2 || len(st.Routes) != 2 {
		t.Fatalf("state has next_id %d, %d routes; want 2 and 2", st.NextID, len(st.Routes))
	}
	for i, wantID := range []string{id1, id2} {
		rs := st.Routes[i]
		if rs.GwID != wantID {
			t.Errorf("route %d gw_id = %q, want %q (sorted order)", i, rs.GwID, wantID)
		}
		placed, _ := g.Placement(rs.GwID)
		if rs.Replica != placed {
			t.Errorf("route %s checkpointed on %s, live placement %s", rs.GwID, rs.Replica, placed)
		}
		if rs.BackendID == "" || rs.Request.Flight != flight.Name {
			t.Errorf("route %s missing backend id or request: %+v", rs.GwID, rs)
		}
		if rs.Parked {
			t.Errorf("route %s checkpointed parked", rs.GwID)
		}
	}

	// Epoch moves with every placement change.
	base3, _ := openVia(t, g, flight)
	st2, err := loadState(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch <= st.Epoch {
		t.Errorf("epoch did not advance across a placement: %d -> %d", st.Epoch, st2.Epoch)
	}

	// The lease keeps renewing while the primary lives.
	l1, err := os.ReadFile(leasePath(statePath))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l2, err := os.ReadFile(leasePath(statePath))
		if err == nil && !bytes.Equal(l1, l2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease file never renewed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Close everything so the cleanup drain finishes.
	for _, b := range []string{base1, base2, base3} {
		hdo(t, g, "POST", b+"/frames", api.FramesRequest{Close: true})
	}
}

// TestJitteredInterval pins the probe-jitter contract: every draw lands
// within ±25% of the period, the sequence is deterministic under a
// fixed seed, and a period too small to jitter passes through intact.
func TestJitteredInterval(t *testing.T) {
	d := 100 * time.Millisecond
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		v := jitteredInterval(rng, d)
		if v < d-d/4 || v > d+d/4 {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, v, d-d/4, d+d/4)
		}
	}
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if av, bv := jitteredInterval(a, d), jitteredInterval(b, d); av != bv {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, av, bv)
		}
	}
	if v := jitteredInterval(rng, 1); v != 1 {
		t.Errorf("degenerate period jittered: %v", v)
	}
}

// TestProbeShutdownCancelsInflight pins the probe-leak fix: a probe
// parked in a replica that never answers must be context-cancelled by
// Shutdown, not waited out. The package-level leakcheck catches the
// goroutine if the cancellation regresses; the elapsed bound below
// catches Shutdown stalling on the probe's own 1s HTTP timeout.
func TestProbeShutdownCancelsInflight(t *testing.T) {
	probing := make(chan struct{}, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case probing <- struct{}{}:
		default:
		}
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)

	g, err := New(Config{
		Replicas:      []Replica{{Name: "r1", BaseURL: ts.URL}},
		ProbeInterval: 10 * time.Millisecond,
		Retries:       1,
		RetryBase:     time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-probing:
	case <-time.After(5 * time.Second):
		t.Fatal("no probe ever reached the replica")
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with a probe in flight: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("shutdown took %v: the in-flight probe was waited out, not cancelled", elapsed)
	}
}
