package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("g-%08d", i+1)
	}
	return out
}

// TestRingDeterminism pins placement: two rings built the same way place
// every key identically — routing must not depend on construction
// order beyond membership.
func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(64), NewRing(64)
	for _, n := range []string{"r1", "r2", "r3"} {
		a.Add(n)
	}
	for _, n := range []string{"r3", "r1", "r2"} {
		b.Add(n)
	}
	for _, k := range keys(200) {
		na, _ := a.Lookup(k)
		nb, _ := b.Lookup(k)
		if na != nb {
			t.Fatalf("key %s: %s vs %s (placement depends on add order)", k, na, nb)
		}
	}
}

// TestRingBalance requires the virtual nodes to spread load: with 3
// replicas and 64 vnodes no replica should own a wildly skewed share.
func TestRingBalance(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"r1", "r2", "r3"} {
		r.Add(n)
	}
	counts := map[string]int{}
	const total = 3000
	for _, k := range keys(total) {
		n, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed on populated ring")
		}
		counts[n]++
	}
	for n, c := range counts {
		if c < total/6 || c > total/2+total/6 {
			t.Errorf("replica %s owns %d/%d keys — balance broken: %v", n, c, total, counts)
		}
	}
}

// TestRingMinimalDisruption is the consistent-hashing contract: removing
// one member must move only the keys it owned; everything else stays.
func TestRingMinimalDisruption(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"r1", "r2", "r3"} {
		r.Add(n)
	}
	before := map[string]string{}
	for _, k := range keys(1000) {
		before[k], _ = r.Lookup(k)
	}
	r.Remove("r2")
	moved := 0
	for k, owner := range before {
		now, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed after removal")
		}
		if owner == "r2" {
			if now == "r2" {
				t.Fatalf("key %s still owned by removed replica", k)
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved that the removed replica did not own", moved)
	}
	// Re-adding restores the original placement exactly.
	r.Add("r2")
	for k, owner := range before {
		if now, _ := r.Lookup(k); now != owner {
			t.Fatalf("key %s: %s after re-add, want %s", k, now, owner)
		}
	}
}

// TestRingPin pins the failover override: a pinned key routes to its pin
// regardless of hash placement or the pin target's membership, and
// Unpin restores hash placement.
func TestRingPin(t *testing.T) {
	r := NewRing(64)
	r.Add("r1")
	r.Add("r2")
	const k = "g-00000042"
	hashOwner, _ := r.Lookup(k)
	other := "r1"
	if hashOwner == "r1" {
		other = "r2"
	}
	r.Pin(k, other)
	if n, _ := r.Lookup(k); n != other {
		t.Fatalf("pinned lookup = %s, want %s", n, other)
	}
	// The pin survives the target's removal — it records where the
	// session's state lives, not membership.
	r.Remove(other)
	if n, _ := r.Lookup(k); n != other {
		t.Fatalf("pin lost on removal: %s", n)
	}
	r.Add(other)
	r.Unpin(k)
	if n, _ := r.Lookup(k); n != hashOwner {
		t.Fatalf("unpinned lookup = %s, want hash owner %s", n, hashOwner)
	}
}

// TestRingSuccessors checks the failover preference list: distinct
// members, owner first, covering the whole fleet.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(64)
	for _, n := range []string{"r1", "r2", "r3"} {
		r.Add(n)
	}
	const k = "g-00000007"
	owner, _ := r.Lookup(k)
	succ := r.Successors(k, 3)
	if len(succ) != 3 {
		t.Fatalf("successors = %v, want 3 distinct members", succ)
	}
	if succ[0] != owner {
		t.Errorf("successors[0] = %s, want owner %s", succ[0], owner)
	}
	seen := map[string]bool{}
	for _, n := range succ {
		if seen[n] {
			t.Fatalf("duplicate successor %s in %v", n, succ)
		}
		seen[n] = true
	}
	if got := r.Successors(k, 2); len(got) != 2 {
		t.Errorf("Successors(k, 2) = %v", got)
	}
	empty := NewRing(8)
	if got := empty.Successors(k, 2); got != nil {
		t.Errorf("empty ring successors = %v", got)
	}
}
