package chaos

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"soundboost/internal/mavbus"
)

// recorder captures the published sequence for comparison across runs.
type recorder struct {
	msgs []mavbus.Message
}

func (r *recorder) pub(m mavbus.Message) error {
	r.msgs = append(r.msgs, m)
	return nil
}

// testCorrupt is a minimal CorruptFunc over float64 payloads: NaN
// replaces the value, truncate is not applicable, bit-flip adds 1,
// freeze returns prev, retime passes the payload through.
func testCorrupt(_ *rand.Rand, kind Corruption, cur, prev any, _ float64) (any, bool) {
	v, ok := cur.(float64)
	if !ok {
		return nil, false
	}
	switch kind {
	case CorruptNaN:
		return math.NaN(), true
	case CorruptBitFlip:
		return v + 1, true
	case CorruptFreeze:
		if prev == nil {
			return nil, false
		}
		return prev, true
	case CorruptRetime:
		return v, true
	}
	return nil, false
}

// feed offers n messages on two topics with advancing clocks.
func feed(in *Injector, pub PubFunc, n int) {
	for i := 0; i < n; i++ {
		t := float64(i) * 0.01
		topic := "imu"
		if i%3 == 0 {
			topic = "gps"
		}
		_ = in.Offer(mavbus.Message{Topic: topic, Time: t, Payload: float64(i)}, pub)
	}
	_ = in.Flush(pub)
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{
		Seed: 7,
		Default: Rates{
			Drop: 0.1, Dup: 0.1, Reorder: 0.1,
			NaN: 0.05, BitFlip: 0.05, Freeze: 0.02,
		},
		SkewPerSecond: 0.001,
		JitterSeconds: 0.0005,
		Sleep:         func(time.Duration) {},
	}
	var runs [2]*recorder
	var counts [2]map[Kind]int64
	for i := range runs {
		runs[i] = &recorder{}
		in := NewInjector(cfg, testCorrupt)
		feed(in, runs[i].pub, 500)
		counts[i] = in.Counts()
	}
	if !reflect.DeepEqual(counts[0], counts[1]) {
		t.Fatalf("same seed produced different fault counts:\n%v\n%v", counts[0], counts[1])
	}
	if len(runs[0].msgs) != len(runs[1].msgs) {
		t.Fatalf("same seed published %d vs %d messages", len(runs[0].msgs), len(runs[1].msgs))
	}
	for i := range runs[0].msgs {
		a, b := runs[0].msgs[i], runs[1].msgs[i]
		if a.Topic != b.Topic || a.Time != b.Time {
			t.Fatalf("message %d differs: %+v vs %+v", i, a, b)
		}
		// NaN != NaN, so compare payloads via their formatted form.
		if fmt.Sprint(a.Payload) != fmt.Sprint(b.Payload) {
			t.Fatalf("message %d payload differs: %v vs %v", i, a.Payload, b.Payload)
		}
	}
	if total := NewInjector(cfg, testCorrupt); total.Total() != 0 {
		t.Fatalf("fresh injector reports %d faults", total.Total())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := Config{Default: Rates{Drop: 0.2}, Sleep: func(time.Duration) {}}
	var published [2]int
	for i, seed := range []int64{1, 2} {
		cfg.Seed = seed
		rec := &recorder{}
		in := NewInjector(cfg, testCorrupt)
		feed(in, rec.pub, 1000)
		published[i] = len(rec.msgs)
	}
	if published[0] == published[1] {
		t.Fatalf("seeds 1 and 2 both published exactly %d messages — schedule looks seed-independent", published[0])
	}
}

// TestZeroRatesConsumeNoRandomness pins the determinism contract that
// lets per-topic schedules compose: a topic with zero rates must not
// advance the PRNG, so adding a quiet topic cannot shift another
// topic's fault schedule.
func TestZeroRatesConsumeNoRandomness(t *testing.T) {
	cfg := Config{
		Seed:     3,
		PerTopic: map[string]Rates{"imu": {Drop: 0.3}},
		Sleep:    func(time.Duration) {},
	}
	run := func(quiet int) []mavbus.Message {
		rec := &recorder{}
		in := NewInjector(cfg, testCorrupt)
		for i := 0; i < 200; i++ {
			// Interleave quiet-topic messages; they must not perturb imu.
			for q := 0; q < quiet; q++ {
				_ = in.Offer(mavbus.Message{Topic: "audio", Time: float64(i), Payload: 0.0}, rec.pub)
			}
			_ = in.Offer(mavbus.Message{Topic: "imu", Time: float64(i), Payload: float64(i)}, rec.pub)
		}
		var imu []mavbus.Message
		for _, m := range rec.msgs {
			if m.Topic == "imu" {
				imu = append(imu, m)
			}
		}
		return imu
	}
	a, b := run(0), run(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("quiet topic perturbed the imu schedule: %d vs %d imu messages survived", len(a), len(b))
	}
}

func TestInjectedFaultsAreCounted(t *testing.T) {
	rec := &recorder{}
	in := NewInjector(Config{
		Seed:    11,
		Default: Rates{Drop: 0.15, Dup: 0.1},
		Sleep:   func(time.Duration) {},
	}, nil)
	const n = 2000
	feed(in, rec.pub, n)
	counts := in.Counts()
	if counts[KindDrop] == 0 || counts[KindDup] == 0 {
		t.Fatalf("expected drops and dups at these rates, got %v", counts)
	}
	// Conservation: published == offered - dropped + duplicated.
	want := int64(n) - counts[KindDrop] + counts[KindDup]
	if got := int64(len(rec.msgs)); got != want {
		t.Fatalf("published %d messages, want %d (offered %d - drop %d + dup %d)",
			got, want, n, counts[KindDrop], counts[KindDup])
	}
}

func TestCutoffDropsTail(t *testing.T) {
	rec := &recorder{}
	in := NewInjector(Config{CutoffSeconds: 1.0, Sleep: func(time.Duration) {}}, nil)
	feed(in, rec.pub, 200) // clocks run to 1.99s
	for _, m := range rec.msgs {
		if m.Time >= 1.0 {
			t.Fatalf("message at t=%.2f survived a 1.0s cutoff", m.Time)
		}
	}
	counts := in.Counts()
	if got := counts[KindCutoff]; got != 100 {
		t.Fatalf("cutoff counted %d messages, want 100", got)
	}
	if len(rec.msgs)+int(counts[KindCutoff]) != 200 {
		t.Fatalf("published %d + cutoff %d != offered 200", len(rec.msgs), counts[KindCutoff])
	}
}

func TestPoisonPillReplacesNthMessage(t *testing.T) {
	rec := &recorder{}
	in := NewInjector(Config{PoisonAfter: 3, Sleep: func(time.Duration) {}}, nil)
	feed(in, rec.pub, 10)
	if len(rec.msgs) != 10 {
		t.Fatalf("published %d messages, want 10", len(rec.msgs))
	}
	if _, ok := rec.msgs[2].Payload.(PoisonPill); !ok {
		t.Fatalf("3rd message payload is %T, want PoisonPill", rec.msgs[2].Payload)
	}
	for i, m := range rec.msgs {
		if _, ok := m.Payload.(PoisonPill); ok && i != 2 {
			t.Fatalf("unexpected extra poison pill at index %d", i)
		}
	}
	if got := in.Counts()[KindPoison]; got != 1 {
		t.Fatalf("poison counted %d times, want 1", got)
	}
}

func TestReorderSwapsAndFlushReleases(t *testing.T) {
	rec := &recorder{}
	// Reorder every message: each Offer holds the message and releases
	// the previously held one, swapping neighbours pairwise.
	in := NewInjector(Config{Default: Rates{Reorder: 1}, Sleep: func(time.Duration) {}}, nil)
	for i := 0; i < 5; i++ {
		_ = in.Offer(mavbus.Message{Topic: "imu", Time: float64(i), Payload: i}, rec.pub)
	}
	// Messages 0..4: 0 held; 1 arrives -> publish 1,0; 2 held... Flush
	// must release the final held message.
	if err := in.Flush(rec.pub); err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, m := range rec.msgs {
		order = append(order, m.Payload.(int))
	}
	want := []int{1, 0, 3, 2, 4}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("reorder produced %v, want %v", order, want)
	}
	if in.Counts()[KindReorder] == 0 {
		t.Fatal("reordering happened but was not counted")
	}
}

func TestFreezeLatchesPayload(t *testing.T) {
	rec := &recorder{}
	in := NewInjector(Config{
		Default:       Rates{Freeze: 1}, // episode starts immediately
		FreezeSeconds: 0.5,
		Sleep:         func(time.Duration) {},
	}, testCorrupt)
	for i := 0; i < 10; i++ {
		_ = in.Offer(mavbus.Message{Topic: "imu", Time: float64(i) * 0.1, Payload: float64(i)}, rec.pub)
	}
	counts := in.Counts()
	if counts[KindFreeze] == 0 {
		t.Fatalf("no freeze injections at rate 1: %v", counts)
	}
	frozen := 0
	for i, m := range rec.msgs {
		if m.Payload.(float64) != float64(i) {
			frozen++
		}
	}
	if int64(frozen) != counts[KindFreeze] {
		t.Fatalf("%d payloads latched but %d freezes counted", frozen, counts[KindFreeze])
	}
}

func TestHTTPTransportDeterministicAndCounted(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer backend.Close()

	run := func() (map[Kind]int64, []string) {
		tr := NewTransport(nil, HTTPConfig{
			Seed:             21,
			ResetRate:        0.2,
			DropResponseRate: 0.15,
			Error5xxRate:     0.15,
			SlowRate:         0.2,
			Sleep:            func(time.Duration) {},
		})
		client := &http.Client{Transport: tr}
		var outcomes []string
		for i := 0; i < 200; i++ {
			resp, err := client.Get(backend.URL)
			switch {
			case err != nil:
				if !errors.Is(err, ErrInjectedReset) {
					// http.Client wraps transport errors in *url.Error; unwrap
					// check above handles it, anything else is a real failure.
					t.Fatalf("request %d: non-injected error: %v", i, err)
				}
				outcomes = append(outcomes, "reset")
			case resp.StatusCode == http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Fatalf("request %d: injected 503 without Retry-After", i)
				}
				resp.Body.Close()
				outcomes = append(outcomes, "503")
			default:
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || string(b) != `{"ok":true}` {
					t.Fatalf("request %d: body %q err %v", i, b, err)
				}
				outcomes = append(outcomes, "ok")
			}
		}
		return tr.Counts(), outcomes
	}
	c1, o1 := run()
	c2, o2 := run()
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed, different HTTP fault counts:\n%v\n%v", c1, c2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same seed produced a different request-outcome sequence")
	}
	for _, k := range []Kind{KindHTTPReset, KindHTTP5xx, KindHTTPSlow, KindHTTPDropResponse} {
		if c1[k] == 0 {
			t.Fatalf("no %s injected at these rates over 200 requests: %v", k, c1)
		}
	}
	// Every outcome ties back to a counted fault or a clean pass.
	resets := int64(0)
	for _, o := range o1 {
		if o == "reset" {
			resets++
		}
	}
	if want := c1[KindHTTPReset] + c1[KindHTTPDropResponse]; resets != want {
		t.Fatalf("%d reset outcomes, want %d (reset %d + dropped response %d)",
			resets, want, c1[KindHTTPReset], c1[KindHTTPDropResponse])
	}
}
