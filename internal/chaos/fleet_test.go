package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFleetKillCounts pins the kill accounting: each Kill runs the stop
// hook exactly once and counts one replica_kill, nil stops included.
func TestFleetKillCounts(t *testing.T) {
	f := NewFleet()
	stopped := 0
	f.Kill("r1", func() { stopped++ })
	f.Kill("r2", nil)
	if stopped != 1 {
		t.Fatalf("stop hook ran %d times, want 1", stopped)
	}
	if got := f.Counts()[KindReplicaKill]; got != 2 {
		t.Fatalf("replica_kill count = %d, want 2", got)
	}
}

// TestFleetPartitionTransport pins the partition plane: requests to a
// partitioned host fail with ErrInjectedReset before touching the
// network, other hosts pass through, Partition is idempotent in its
// accounting, and Heal restores traffic without a restart.
func TestFleetPartitionTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "up")
	}))
	defer ts.Close()
	host := ts.Listener.Addr().String()

	f := NewFleet()
	client := &http.Client{Transport: f.Transport(nil)}
	get := func() error {
		resp, err := client.Get(ts.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return err
	}

	if err := get(); err != nil {
		t.Fatalf("unpartitioned request failed: %v", err)
	}
	f.Partition(host)
	f.Partition(host) // idempotent: still one fault
	err := get()
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("partitioned request error = %v, want ErrInjectedReset", err)
	}
	f.Partition("10.0.0.1:1") // a different host: second fault
	if got := f.Counts()[KindPartition]; got != 2 {
		t.Fatalf("partition count = %d, want 2", got)
	}
	f.Heal(host)
	if err := get(); err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	// The replica itself never died: only the path to it was cut.
	if got := f.Counts()[KindReplicaKill]; got != 0 {
		t.Fatalf("replica_kill count = %d, want 0", got)
	}
}
