package chaos

import (
	"fmt"
	"net/http"
	"os"
	"sync"

	"soundboost/internal/obs"
)

// Fleet-plane fault kinds (Fleet).
const (
	// KindReplicaKill records a whole replica killed without warning —
	// no drain, no flush; its journal directory is all that survives.
	KindReplicaKill Kind = "replica_kill"
	// KindPartition blackholes traffic to a replica: requests addressed
	// to its host fail with ErrInjectedReset while the replica itself
	// keeps running. Heals without a restart — the asymmetric cousin of
	// a kill.
	KindPartition Kind = "partition"
	// KindJournalWipe records a replica's journal directory destroyed —
	// the disk-loss fault. Combined with KindReplicaKill, follower copies
	// are the only surviving source of the replica's sessions.
	KindJournalWipe Kind = "journal_wipe"
	// KindGatewayKill records the gateway process itself killed without
	// drain — the fault a warm standby's lease watch recovers from.
	KindGatewayKill Kind = "gateway_kill"
)

// FleetKinds lists the fleet-plane fault kinds in stable order.
var FleetKinds = []Kind{KindReplicaKill, KindPartition, KindJournalWipe, KindGatewayKill}

// fleetKindCounter resolves the registry counter for one fleet fault
// kind, matching the chaos.injected.<kind> convention of the other
// fault planes.
func fleetKindCounter(k Kind) *obs.Counter {
	return obs.Default.Counter("chaos.injected." + string(k))
}

// Fleet injects replica-level faults for fleet soaks and tests: killing
// whole replicas and partitioning them from the gateway. It pairs with
// the message-plane Injector and the HTTP-plane Transport as the third
// fault domain — process-level failure — and like them it keeps exact
// per-kind counts for end-of-run reconciliation.
type Fleet struct {
	mu          sync.Mutex
	partitioned map[string]bool // host ("127.0.0.1:8801") → blackholed
	counts      map[Kind]int64
}

// NewFleet builds an empty fleet fault plane (nothing partitioned).
func NewFleet() *Fleet {
	return &Fleet{
		partitioned: make(map[string]bool),
		counts:      make(map[Kind]int64),
	}
}

// Kill terminates one replica through its stop function (close a
// listener, SIGKILL a process) and records the fault. The stop runs
// under no lock — it may block on process teardown.
func (f *Fleet) Kill(name string, stop func()) {
	f.mu.Lock()
	f.counts[KindReplicaKill]++
	f.mu.Unlock()
	fleetKindCounter(KindReplicaKill).Inc()
	if stop != nil {
		stop()
	}
}

// Wipe destroys a replica's journal directory and records the fault —
// the disk is gone, not just the process. Errors from the removal are
// returned so tests can distinguish "wiped" from "was already gone".
func (f *Fleet) Wipe(name, dir string) error {
	f.mu.Lock()
	f.counts[KindJournalWipe]++
	f.mu.Unlock()
	fleetKindCounter(KindJournalWipe).Inc()
	return os.RemoveAll(dir)
}

// KillGateway terminates the gateway through its stop function and
// records the fault. Like Kill, the stop runs under no lock.
func (f *Fleet) KillGateway(stop func()) {
	f.mu.Lock()
	f.counts[KindGatewayKill]++
	f.mu.Unlock()
	fleetKindCounter(KindGatewayKill).Inc()
	if stop != nil {
		stop()
	}
}

// Partition blackholes all traffic to host (as it appears in request
// URLs, e.g. "127.0.0.1:8801"). Idempotent; each call that newly cuts a
// host counts one fault.
func (f *Fleet) Partition(host string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitioned[host] {
		return
	}
	f.partitioned[host] = true
	f.counts[KindPartition]++
	fleetKindCounter(KindPartition).Inc()
}

// Heal restores traffic to host.
func (f *Fleet) Heal(host string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitioned, host)
}

// Counts returns an exact snapshot of the fleet faults injected so far.
func (f *Fleet) Counts() map[Kind]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Kind]int64, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Transport wraps base (nil = http.DefaultTransport) so requests to a
// partitioned host fail with ErrInjectedReset before touching the
// network — the replica stays up, the gateway just cannot reach it.
func (f *Fleet) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &partitionTransport{fleet: f, base: base}
}

type partitionTransport struct {
	fleet *Fleet
	base  http.RoundTripper
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.fleet.mu.Lock()
	cut := t.fleet.partitioned[req.URL.Host]
	t.fleet.mu.Unlock()
	if cut {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: partitioned host %s", ErrInjectedReset, req.URL.Host)
	}
	return t.base.RoundTrip(req)
}
