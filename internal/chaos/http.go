package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"soundboost/internal/obs"
)

// HTTP-plane fault kinds (Transport).
const (
	// KindHTTPReset fails the request before it reaches the server — a
	// connection reset on send. The server never sees the request.
	KindHTTPReset Kind = "http_reset"
	// KindHTTPDropResponse lets the request through, then discards the
	// response — the ack-lost case that makes idempotent chunk resend
	// (FramesRequest.Seq) necessary.
	KindHTTPDropResponse Kind = "http_drop_response"
	// KindHTTP5xx short-circuits the request with a synthesized 503 +
	// Retry-After, never reaching the server.
	KindHTTP5xx Kind = "http_5xx"
	// KindHTTPSlow delivers the response body in dribbled chunks with a
	// sleep between each — a slow-loris server.
	KindHTTPSlow Kind = "http_slow"
	// KindHTTPLatency sleeps before forwarding the request.
	KindHTTPLatency Kind = "http_latency"
)

// HTTPKinds lists the HTTP-plane fault kinds in stable order.
var HTTPKinds = []Kind{KindHTTPReset, KindHTTPDropResponse, KindHTTP5xx, KindHTTPSlow, KindHTTPLatency}

var httpInjected = func() map[Kind]*obs.Counter {
	m := make(map[Kind]*obs.Counter, len(HTTPKinds))
	for _, k := range HTTPKinds {
		m[k] = obs.Default.Counter("chaos.injected." + string(k))
	}
	return m
}()

// ErrInjectedReset is the transport error surfaced for injected
// connection resets; clients match it with errors.Is to distinguish
// injected faults from real network failures in test assertions.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// HTTPConfig is one seeded schedule of client-transport faults. All
// rates are per request, in [0, 1].
type HTTPConfig struct {
	Seed int64
	// ResetRate fails the request with ErrInjectedReset before sending.
	ResetRate float64
	// DropResponseRate forwards the request but discards the response,
	// surfacing ErrInjectedReset — the server did the work, the client
	// never learns.
	DropResponseRate float64
	// Error5xxRate synthesizes a 503 with Retry-After: RetryAfterSeconds.
	Error5xxRate      float64
	RetryAfterSeconds int
	// SlowRate dribbles the response body SlowChunkBytes at a time with
	// SlowDelay between chunks (defaults 64 bytes / 1 ms).
	SlowRate       float64
	SlowChunkBytes int
	SlowDelay      time.Duration
	// LatencyRate / Latency sleep before forwarding.
	LatencyRate float64
	Latency     time.Duration
	// Sleep is injectable for fast soaks (nil = time.Sleep).
	Sleep func(time.Duration)
}

// Transport wraps an http.RoundTripper with the fault schedule. Like the
// Injector, decisions come from one seeded PRNG in request order, so a
// client issuing requests sequentially sees a reproducible fault
// sequence.
type Transport struct {
	base http.RoundTripper
	cfg  HTTPConfig

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[Kind]int64
}

// NewTransport wraps base (nil = http.DefaultTransport) with the
// schedule in cfg.
func NewTransport(base http.RoundTripper, cfg HTTPConfig) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	if cfg.SlowChunkBytes <= 0 {
		cfg.SlowChunkBytes = 64
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = time.Millisecond
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Transport{
		base:   base,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[Kind]int64),
	}
}

// Counts returns an exact snapshot of the HTTP faults injected so far.
func (t *Transport) Counts() map[Kind]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Kind]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

func (t *Transport) count(k Kind) {
	t.counts[k]++
	httpInjected[k].Inc()
}

func (t *Transport) hit(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return t.rng.Float64() < rate
}

// RoundTrip implements http.RoundTripper. Faults are decided in a fixed
// order — reset, 5xx, latency, forward, drop-response, slow-loris — with
// at most one terminal fault per request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	if t.hit(t.cfg.ResetRate) {
		t.count(KindHTTPReset)
		t.mu.Unlock()
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: %s %s", ErrInjectedReset, req.Method, req.URL.Path)
	}
	if t.hit(t.cfg.Error5xxRate) {
		t.count(KindHTTP5xx)
		retryAfter := t.cfg.RetryAfterSeconds
		t.mu.Unlock()
		if req.Body != nil {
			req.Body.Close()
		}
		resp := &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (chaos)",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Retry-After": []string{strconv.Itoa(retryAfter)}},
			Body:    io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}
		return resp, nil
	}
	var delay time.Duration
	if t.hit(t.cfg.LatencyRate) && t.cfg.Latency > 0 {
		t.count(KindHTTPLatency)
		delay = t.cfg.Latency
	}
	dropResponse := t.hit(t.cfg.DropResponseRate)
	slow := !dropResponse && t.hit(t.cfg.SlowRate)
	if dropResponse {
		t.count(KindHTTPDropResponse)
	}
	if slow {
		t.count(KindHTTPSlow)
	}
	sleep := t.cfg.Sleep
	t.mu.Unlock()

	if delay > 0 {
		sleep(delay)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if dropResponse {
		// The server processed the request; the client never hears back.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped for %s %s", ErrInjectedReset, req.Method, req.URL.Path)
	}
	if slow {
		resp.Body = &slowBody{r: resp.Body, chunk: t.cfg.SlowChunkBytes, delay: t.cfg.SlowDelay, sleep: sleep}
	}
	return resp, nil
}

// slowBody dribbles reads chunk bytes at a time with a sleep between —
// the receive side of a slow-loris peer.
type slowBody struct {
	r     io.ReadCloser
	chunk int
	delay time.Duration
	sleep func(time.Duration)
	first bool
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.first {
		s.sleep(s.delay)
	}
	s.first = true
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.r.Read(p)
}

func (s *slowBody) Close() error { return s.r.Close() }
